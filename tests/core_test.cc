// Unit tests for core/: terms, symbols, tuples, relations, instances.

#include <gtest/gtest.h>

#include "core/instance.h"
#include "core/relation.h"
#include "core/symbol_table.h"
#include "core/tuple.h"

namespace pw {
namespace {

TEST(TermTest, ConstAndVarAreDistinct) {
  EXPECT_NE(Term::Const(3), Term::Var(3));
  EXPECT_TRUE(Term::Const(3).is_constant());
  EXPECT_TRUE(Term::Var(3).is_variable());
  EXPECT_EQ(Term::Const(3).constant(), 3);
  EXPECT_EQ(Term::Var(3).variable(), 3);
}

TEST(TermTest, DefaultIsConstantZero) {
  Term t;
  EXPECT_TRUE(t.is_constant());
  EXPECT_EQ(t.constant(), 0);
}

TEST(TermTest, OrderingConstantsBeforeVariables) {
  EXPECT_LT(Term::Const(100), Term::Var(0));
  EXPECT_LT(Term::Const(1), Term::Const(2));
  EXPECT_LT(Term::Var(1), Term::Var(2));
}

TEST(TermTest, ToStringFormats) {
  EXPECT_EQ(ToString(Term::Const(7)), "7");
  EXPECT_EQ(ToString(Term::Var(7)), "x7");
}

TEST(TermTest, HashDistinguishesKinds) {
  std::hash<Term> h;
  EXPECT_NE(h(Term::Const(5)), h(Term::Var(5)));
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable symbols;
  ConstId a = symbols.Intern("alice");
  EXPECT_EQ(symbols.Intern("alice"), a);
  EXPECT_EQ(symbols.size(), 1u);
}

TEST(SymbolTableTest, LookupAndName) {
  SymbolTable symbols;
  ConstId a = symbols.Intern("alice");
  EXPECT_EQ(symbols.Lookup("alice"), a);
  EXPECT_EQ(symbols.Name(a), "alice");
  EXPECT_EQ(symbols.Lookup("bob"), std::nullopt);
  EXPECT_EQ(symbols.Name(a + 999), std::nullopt);
}

TEST(SymbolTableTest, IdsStartAtConfiguredBase) {
  SymbolTable symbols(5000);
  EXPECT_GE(symbols.Intern("x"), 5000);
}

TEST(SymbolTableTest, ConstNameFallsBackToDecimal) {
  SymbolTable symbols;
  ConstId a = symbols.Intern("alice");
  EXPECT_EQ(ConstName(a, &symbols), "alice");
  EXPECT_EQ(ConstName(42, &symbols), "42");
  EXPECT_EQ(ConstName(42, nullptr), "42");
}

TEST(TupleTest, GroundnessAndConversion) {
  Tuple ground{C(1), C(2)};
  Tuple open{C(1), V(0)};
  EXPECT_TRUE(IsGround(ground));
  EXPECT_FALSE(IsGround(open));
  EXPECT_EQ(ToFact(ground), (Fact{1, 2}));
  EXPECT_EQ(ToTuple(Fact{1, 2}), ground);
}

TEST(TupleTest, UnifiableRespectsConstants) {
  EXPECT_TRUE(Unifiable(Tuple{C(1), V(0)}, Fact{1, 9}));
  EXPECT_FALSE(Unifiable(Tuple{C(1), V(0)}, Fact{2, 9}));
}

TEST(TupleTest, UnifiableRespectsRepeatedVariables) {
  Tuple repeated{V(0), V(0)};
  EXPECT_TRUE(Unifiable(repeated, Fact{5, 5}));
  EXPECT_FALSE(Unifiable(repeated, Fact{5, 6}));
}

TEST(TupleTest, UnifiableRejectsArityMismatch) {
  EXPECT_FALSE(Unifiable(Tuple{V(0)}, Fact{1, 2}));
}

TEST(RelationTest, SetSemantics) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(Fact{1, 2}));
  EXPECT_FALSE(r.Insert(Fact{1, 2}));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Fact{1, 2}));
  EXPECT_FALSE(r.Contains(Fact{2, 1}));
}

TEST(RelationTest, EqualityIsStructural) {
  Relation a(2, {{1, 2}, {3, 4}});
  Relation b(2, {{3, 4}, {1, 2}});
  EXPECT_EQ(a, b);
  b.Insert(Fact{5, 6});
  EXPECT_NE(a, b);
}

TEST(RelationTest, UnionWith) {
  Relation a(1, {{1}, {2}});
  Relation b(1, {{2}, {3}});
  EXPECT_EQ(a.UnionWith(b), Relation(1, {{1}, {2}, {3}}));
}

TEST(RelationTest, ContainsAll) {
  Relation a(1, {{1}, {2}, {3}});
  Relation b(1, {{1}, {3}});
  EXPECT_TRUE(a.ContainsAll(b));
  EXPECT_FALSE(b.ContainsAll(a));
}

TEST(RelationTest, ConstantsSortedDeduplicated) {
  Relation a(2, {{3, 1}, {1, 2}});
  EXPECT_EQ(a.Constants(), (std::vector<ConstId>{1, 2, 3}));
}

TEST(RelationTest, ZeroArityRelationHoldsEmptyFact) {
  Relation r(0);
  EXPECT_TRUE(r.Insert(Fact{}));
  EXPECT_FALSE(r.Insert(Fact{}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(InstanceTest, ConstructionAndEquality) {
  Instance a({Relation(1, {{1}}), Relation(2, {{1, 2}})});
  Instance b({Relation(1, {{1}}), Relation(2, {{1, 2}})});
  EXPECT_EQ(a, b);
  b.mutable_relation(0).Insert(Fact{9});
  EXPECT_NE(a, b);
}

TEST(InstanceTest, AritiesAndCounts) {
  Instance a({Relation(1, {{1}}), Relation(2, {{1, 2}, {3, 4}})});
  EXPECT_EQ(a.Arities(), (std::vector<int>{1, 2}));
  EXPECT_EQ(a.TotalFacts(), 3u);
  EXPECT_EQ(a.Constants(), (std::vector<ConstId>{1, 2, 3, 4}));
}

TEST(InstanceTest, EmptyFromArities) {
  Instance a(std::vector<int>{3, 1});
  EXPECT_EQ(a.num_relations(), 2u);
  EXPECT_EQ(a.relation(0).arity(), 3);
  EXPECT_EQ(a.TotalFacts(), 0u);
}

TEST(InstanceTest, ContainsAllLocatedFacts) {
  Instance a({Relation(1, {{1}}), Relation(2, {{1, 2}})});
  EXPECT_TRUE(ContainsAll(a, {{0, {1}}, {1, {1, 2}}}));
  EXPECT_FALSE(ContainsAll(a, {{0, {2}}}));
  EXPECT_FALSE(ContainsAll(a, {{7, {1}}}));
}

}  // namespace
}  // namespace pw
