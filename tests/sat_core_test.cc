// The CDCL solver core: unit tests, the regression shapes for the seed
// solver's latent bugs (recursion-depth hazard, the num_forall >= 64 shift),
// the assumptions interface, certificate round-trips through the independent
// checker, and randomized differentials CDCL vs. seed DPLL vs. brute-force
// enumeration. Every randomized case replays via PW_DIFF_SEED, e.g.
//
//   PW_DIFF_SEED=9102 ctest -R SatDifferential --output-on-failure

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>

#include "reductions/sat_encode.h"
#include "solvers/cnf.h"
#include "solvers/dnf_tautology.h"
#include "solvers/graph.h"
#include "solvers/graph_color.h"
#include "solvers/proof.h"
#include "solvers/qbf.h"
#include "solvers/sat.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

/// The PW_DIFF_SEED filter, or 0 when unset.
unsigned SeedFilter() {
  const char* s = std::getenv("PW_DIFF_SEED");
  return s == nullptr ? 0u
                      : static_cast<unsigned>(std::strtoul(s, nullptr, 10));
}

bool RunSeed(unsigned seed) {
  unsigned filter = SeedFilter();
  return filter == 0u || filter == seed;
}

#define PW_DIFF_CASE(seed)                                       \
  if (!RunSeed(seed)) GTEST_SKIP() << "skipped by PW_DIFF_SEED"; \
  SCOPED_TRACE("replay with PW_DIFF_SEED=" + std::to_string(seed))

/// Ground-truth satisfiability by exhaustive enumeration (num_vars <= 20).
bool BruteForceSat(const ClausalFormula& formula) {
  EXPECT_LE(formula.num_vars, 20);
  std::vector<bool> assignment(formula.num_vars);
  for (uint64_t mask = 0; mask < (uint64_t{1} << formula.num_vars); ++mask) {
    for (int i = 0; i < formula.num_vars; ++i) {
      assignment[i] = ((mask >> i) & 1) != 0;
    }
    if (formula.EvalCnf(assignment)) return true;
  }
  return false;
}

/// The universal prefix of `x` as assumption literals.
std::vector<Literal> UniversalAssumptions(const std::vector<bool>& x) {
  std::vector<Literal> assumptions;
  assumptions.reserve(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    assumptions.push_back({static_cast<int>(i), !x[i]});
  }
  return assumptions;
}

/// Solves with both engines, cross-checks them, verifies the CDCL
/// certificate with the independent checker, and returns the shared verdict.
bool SolveCheckedBothEngines(const ClausalFormula& formula) {
  SatResult cdcl = SolveCnf(formula);
  SatResult dpll = SolveCnf(formula, SatOptions{.use_cdcl = false});
  EXPECT_EQ(cdcl.sat, dpll.sat) << formula.ToString(/*as_cnf=*/true);
  if (cdcl.sat) {
    EXPECT_TRUE(formula.EvalCnf(cdcl.model));
    EXPECT_TRUE(formula.EvalCnf(dpll.model));
  }
  std::string error;
  EXPECT_TRUE(VerifyCertificate(formula, {}, cdcl.Certificate(), &error))
      << error;
  return cdcl.sat;
}

// --- CDCL basics ------------------------------------------------------------

TEST(CdclTest, EmptyFormulaIsSat) {
  ClausalFormula f;
  f.num_vars = 3;
  SatResult result = SolveCnf(f);
  EXPECT_TRUE(result.sat);
  EXPECT_EQ(result.model.size(), 3u);
  EXPECT_TRUE(VerifyCertificate(f, {}, result.Certificate()));
}

TEST(CdclTest, EmptyClauseIsUnsat) {
  ClausalFormula f;
  f.num_vars = 2;
  f.clauses.push_back({});
  SatResult result = SolveCnf(f);
  EXPECT_FALSE(result.sat);
  EXPECT_TRUE(VerifyCertificate(f, {}, result.Certificate()));
}

TEST(CdclTest, UnitPropagationChain) {
  // x0, x0 -> x1, x1 -> x2: forced model 111.
  ClausalFormula f;
  f.num_vars = 3;
  f.clauses = {{Literal::Pos(0)},
               {Literal::Neg(0), Literal::Pos(1)},
               {Literal::Neg(1), Literal::Pos(2)}};
  SatResult result = SolveCnf(f);
  ASSERT_TRUE(result.sat);
  EXPECT_EQ(result.model, std::vector<bool>({true, true, true}));
}

TEST(CdclTest, ContradictoryUnitsAreUnsatWithCheckableProof) {
  ClausalFormula f;
  f.num_vars = 1;
  f.clauses = {{Literal::Pos(0)}, {Literal::Neg(0)}};
  SatResult result = SolveCnf(f);
  ASSERT_FALSE(result.sat);
  std::string error;
  EXPECT_TRUE(CheckUnsatProof(f, {}, result.proof, &error)) << error;
}

TEST(CdclTest, PaperFig5CnfAgreesWithSeedSolver) {
  EXPECT_TRUE(SolveCheckedBothEngines(PaperFig5Cnf()));
}

TEST(CdclTest, ConflictDrivenInstanceNeedsLearning) {
  // PHP(4, 3): forces real conflict analysis, not just propagation.
  ClausalFormula f = PigeonholeCnf(3);
  SatResult result = SolveCnf(f);
  ASSERT_FALSE(result.sat);
  EXPECT_GT(result.stats.conflicts, 0);
  EXPECT_GT(result.stats.learned_clauses, 0);
  std::string error;
  EXPECT_TRUE(CheckUnsatProof(f, {}, result.proof, &error)) << error;
}

TEST(CdclTest, LegacySolveSatApiStillWorks) {
  auto model = SolveSat(PaperFig5Cnf());
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->size(), 5u);
  EXPECT_TRUE(PaperFig5Cnf().EvalCnf(*model));
  EXPECT_TRUE(IsSatisfiable(PaperFig5Cnf()));
  EXPECT_FALSE(IsSatisfiable(PigeonholeCnf(2)));
}

TEST(CdclTest, ProofLoggingCanBeDisabled) {
  SatOptions options;
  options.log_proof = false;
  SatResult result = SolveCnf(PigeonholeCnf(3), options);
  EXPECT_FALSE(result.sat);
  EXPECT_TRUE(result.proof.empty());
}

// --- Regression: recursion-depth hazard in the seed DPLL --------------------

TEST(DeepInstanceTest, DecisionLadderOnBothEngines) {
  // Small enough for the recursive baseline's stack, large enough to verify
  // both engines walk the same satisfiable ladder.
  ClausalFormula f = DecisionLadderCnf(2000);
  EXPECT_TRUE(SolveCheckedBothEngines(f));
}

TEST(DeepInstanceTest, HugeDecisionLadderIsIterative) {
  // 300k variables with no unit clause anywhere: the seed DPLL recursed once
  // per decision and overflowed the stack at this depth. The trail-based
  // loop must handle it outright.
  ClausalFormula f = DecisionLadderCnf(300'000);
  SatResult result = SolveCnf(f);
  ASSERT_TRUE(result.sat);
  EXPECT_TRUE(f.EvalCnf(result.model));
}

TEST(DeepInstanceTest, ScrambledImplicationChainOnBothEngines) {
  ClausalFormula f = ScrambledImplicationChainCnf(2000);
  EXPECT_FALSE(SolveCheckedBothEngines(f));
}

TEST(DeepInstanceTest, HugeScrambledChainUnsatWithCheckableProof) {
  ClausalFormula f = ScrambledImplicationChainCnf(200'000);
  SatResult result = SolveCnf(f);
  ASSERT_FALSE(result.sat);
  std::string error;
  EXPECT_TRUE(CheckUnsatProof(f, {}, result.proof, &error)) << error;
}

// --- The assumptions interface ----------------------------------------------

TEST(AssumptionsTest, IncrementalSolvesReuseOneSolver) {
  SatSolver solver;
  solver.EnsureVars(3);
  solver.AddClause({Literal::Pos(0), Literal::Pos(1)});
  solver.AddClause({Literal::Neg(0), Literal::Pos(2)});

  SatResult under_not_x1 = solver.SolveUnderAssumptions({Literal::Neg(1)});
  ASSERT_TRUE(under_not_x1.sat);
  EXPECT_TRUE(under_not_x1.model[0]);
  EXPECT_FALSE(under_not_x1.model[1]);
  EXPECT_TRUE(under_not_x1.model[2]);

  SatResult under_not_x2 = solver.SolveUnderAssumptions({Literal::Neg(2)});
  ASSERT_TRUE(under_not_x2.sat);
  EXPECT_FALSE(under_not_x2.model[0]);
  EXPECT_TRUE(under_not_x2.model[1]);
  EXPECT_FALSE(under_not_x2.model[2]);
}

TEST(AssumptionsTest, ConflictingAssumptionsYieldCoreAndProof) {
  SatSolver solver;
  solver.EnsureVars(2);
  solver.AddClause({Literal::Pos(0), Literal::Pos(1)});
  std::vector<Literal> assumptions = {Literal::Pos(0), Literal::Neg(0)};
  SatResult result = solver.SolveUnderAssumptions(assumptions);
  ASSERT_FALSE(result.sat);
  ASSERT_FALSE(result.core.empty());
  for (const Literal& lit : result.core) {
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), lit),
              assumptions.end());
  }
  ClausalFormula f;
  f.num_vars = 2;
  f.clauses = {{Literal::Pos(0), Literal::Pos(1)}};
  std::string error;
  EXPECT_TRUE(CheckUnsatProof(f, assumptions, result.proof, &error)) << error;
}

TEST(AssumptionsTest, CoreExcludesIrrelevantAssumptions) {
  // x0 -> x1 -> x2 with assumptions {x5, x0, -x2}: the failed core must name
  // x0 and -x2 but not the unconstrained x5.
  ClausalFormula f;
  f.num_vars = 6;
  f.clauses = {{Literal::Neg(0), Literal::Pos(1)},
               {Literal::Neg(1), Literal::Pos(2)}};
  std::vector<Literal> assumptions = {Literal::Pos(5), Literal::Pos(0),
                                      Literal::Neg(2)};
  SatResult result = SolveCnfUnderAssumptions(f, assumptions);
  ASSERT_FALSE(result.sat);
  ASSERT_FALSE(result.core.empty());
  for (const Literal& lit : result.core) {
    EXPECT_NE(lit.var, 5) << "core names the irrelevant assumption x5";
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), lit),
              assumptions.end());
  }
  // Semantic check: the formula plus the core as units is unsatisfiable.
  ClausalFormula with_core = f;
  for (const Literal& lit : result.core) with_core.clauses.push_back({lit});
  EXPECT_FALSE(BruteForceSat(with_core));
  std::string error;
  EXPECT_TRUE(CheckUnsatProof(f, assumptions, result.proof, &error)) << error;
}

TEST(AssumptionsTest, AddClauseBetweenSolvesNarrowsModels) {
  SatSolver solver;
  solver.EnsureVars(2);
  solver.AddClause({Literal::Pos(0), Literal::Pos(1)});
  ASSERT_TRUE(solver.Solve().sat);

  solver.AddClause({Literal::Neg(0)});
  SatResult narrowed = solver.Solve();
  ASSERT_TRUE(narrowed.sat);
  EXPECT_FALSE(narrowed.model[0]);
  EXPECT_TRUE(narrowed.model[1]);

  solver.AddClause({Literal::Neg(1)});
  SatResult unsat = solver.Solve();
  ASSERT_FALSE(unsat.sat);
  ClausalFormula f;
  f.num_vars = 2;
  f.clauses = {{Literal::Pos(0), Literal::Pos(1)},
               {Literal::Neg(0)},
               {Literal::Neg(1)}};
  std::string error;
  EXPECT_TRUE(CheckUnsatProof(f, {}, unsat.proof, &error)) << error;
}

TEST(AssumptionsTest, AssumptionOnFreshVariableGrowsSolver) {
  SatSolver solver;
  solver.AddClause({Literal::Pos(0)});
  SatResult result = solver.SolveUnderAssumptions({Literal::Neg(7)});
  ASSERT_TRUE(result.sat);
  ASSERT_GE(solver.num_vars(), 8);
  EXPECT_TRUE(result.model[0]);
  EXPECT_FALSE(result.model[7]);
}

// --- The independent checker rejects bad certificates -----------------------

TEST(ProofCheckerTest, RejectsNonRupClause) {
  ClausalFormula f;
  f.num_vars = 2;
  f.clauses = {{Literal::Pos(0)}};
  DratProof bogus;
  bogus.added = {{Literal::Pos(1)}, {}};  // x1 is not a consequence
  std::string error;
  EXPECT_FALSE(CheckUnsatProof(f, {}, bogus, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ProofCheckerTest, RejectsProofOfSatisfiableFormula) {
  ClausalFormula f;
  f.num_vars = 2;
  f.clauses = {{Literal::Pos(0), Literal::Pos(1)}};
  DratProof empty_proof;
  EXPECT_FALSE(CheckUnsatProof(f, {}, empty_proof));
}

TEST(ProofCheckerTest, RejectsFalsifyingModel) {
  ClausalFormula f = PaperFig5Cnf();
  SatResult result = SolveCnf(f);
  ASSERT_TRUE(result.sat);
  std::vector<bool> corrupted = result.model;
  // Find a flip that actually falsifies the formula.
  bool falsified = false;
  for (size_t i = 0; i < corrupted.size() && !falsified; ++i) {
    corrupted[i] = !corrupted[i];
    falsified = !f.EvalCnf(corrupted);
    if (!falsified) corrupted[i] = !corrupted[i];
  }
  ASSERT_TRUE(falsified);
  std::string error;
  EXPECT_FALSE(CheckModel(f, corrupted, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ProofCheckerTest, RejectsCertificateViolatingAssumptions) {
  ClausalFormula f;
  f.num_vars = 1;
  f.clauses = {};
  SatCertificate cert;
  cert.sat = true;
  cert.model = {false};
  EXPECT_TRUE(VerifyCertificate(f, {}, cert));
  EXPECT_FALSE(VerifyCertificate(f, {Literal::Pos(0)}, cert));
}

TEST(ProofCheckerTest, TamperedLearnedClauseIsRejected) {
  ClausalFormula f = PigeonholeCnf(3);
  SatResult result = SolveCnf(f);
  ASSERT_FALSE(result.sat);
  ASSERT_FALSE(result.proof.added.empty());
  // Replace the first learned clause with an unsupported unit over a fresh
  // variable: RUP verification of that step must fail.
  DratProof tampered = result.proof;
  tampered.added.front() = {Literal::Pos(f.num_vars - 1)};
  ClausalFormula widened = f;
  std::string error;
  bool tampered_ok = CheckUnsatProof(widened, {}, tampered, &error);
  // Either the tampered step is caught outright, or (if that unit happened
  // to be RUP) the rest of the derivation no longer matters; the genuine
  // proof must still verify.
  EXPECT_TRUE(CheckUnsatProof(f, {}, result.proof));
  if (tampered_ok) {
    GTEST_SKIP() << "tampered unit was coincidentally RUP for this instance";
  }
  EXPECT_FALSE(error.empty());
}

// --- DNF tautology with certificates ----------------------------------------

TEST(DnfCertificateTest, TautologyCarriesUnsatProofOfComplement) {
  // x0 OR -x0 as 1-term-wide DNF.
  ClausalFormula dnf;
  dnf.num_vars = 1;
  dnf.clauses = {{Literal::Pos(0)}, {Literal::Neg(0)}};
  TautologyVerdict verdict = CheckDnfTautology(dnf);
  EXPECT_TRUE(verdict.is_tautology);
  EXPECT_FALSE(verdict.counterexample.has_value());
  std::string error;
  EXPECT_TRUE(
      VerifyCertificate(DnfComplementCnf(dnf), {}, verdict.certificate, &error))
      << error;
}

TEST(DnfCertificateTest, NonTautologyCarriesCounterexample) {
  ClausalFormula dnf = PaperFig5Dnf();
  TautologyVerdict verdict = CheckDnfTautology(dnf);
  ASSERT_FALSE(verdict.is_tautology);
  ASSERT_TRUE(verdict.counterexample.has_value());
  EXPECT_FALSE(dnf.EvalDnf(*verdict.counterexample));
  EXPECT_TRUE(
      VerifyCertificate(DnfComplementCnf(dnf), {}, verdict.certificate));
}

TEST(DnfCertificateTest, EmptyDnfIsNotATautology) {
  ClausalFormula dnf;
  dnf.num_vars = 2;
  TautologyVerdict verdict = CheckDnfTautology(dnf);
  EXPECT_FALSE(verdict.is_tautology);
  ASSERT_TRUE(verdict.counterexample.has_value());
  EXPECT_FALSE(dnf.EvalDnf(*verdict.counterexample));
}

// --- Regression: the num_forall >= 64 shift in the enumeration baseline -----

TEST(QbfGuardTest, EnumerationRejectsSixtyFourUniversals) {
  // Pre-fix this executed `1 << 64` (undefined behavior); now it must come
  // back as a structured rejection naming the limit.
  ForallExistsCnf instance;
  instance.num_forall = 64;
  instance.formula.num_vars = 64;
  QbfOptions options;
  options.use_cegar = false;
  QbfResult result = SolveForallExistsCertified(instance, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("num_forall must be < 64"), std::string::npos)
      << result.error;
}

TEST(QbfGuardTest, MalformedQuantifierSplitIsRejected) {
  ForallExistsCnf instance;
  instance.num_forall = 5;
  instance.formula.num_vars = 3;
  QbfResult result = SolveForallExistsCertified(instance);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("malformed"), std::string::npos) << result.error;
}

// --- QBF: the CEGAR engine ---------------------------------------------------

TEST(QbfCegarTest, FindsCounterexampleBeyondEnumerationLimit) {
  // 70 universals, one existential y (var 70), clauses (-x0 v y) and
  // (-x0 v -y): exactly the universal assignments with x0 = 1 fail. The
  // enumeration baseline rejects this size outright; CEGAR needs two
  // candidates and one refinement.
  ForallExistsCnf instance;
  instance.num_forall = 70;
  instance.formula.num_vars = 71;
  instance.formula.clauses = {{Literal::Neg(0), Literal::Pos(70)},
                              {Literal::Neg(0), Literal::Neg(70)}};
  QbfResult result = SolveForallExistsCertified(instance);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.holds);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_TRUE((*result.counterexample)[0]);
  EXPECT_LE(result.candidates, 4);
  std::string error;
  EXPECT_TRUE(VerifyCertificate(instance.formula,
                                UniversalAssumptions(*result.counterexample),
                                result.certificate, &error))
      << error;
}

TEST(QbfCegarTest, HoldsWithPureExistentialWitness) {
  // 80 universals that never occur: the single witness y = 1 repairs every
  // universal assignment, so CEGAR concludes after one candidate.
  ForallExistsCnf instance;
  instance.num_forall = 80;
  instance.formula.num_vars = 81;
  instance.formula.clauses = {{Literal::Pos(80)}};
  QbfResult result = SolveForallExistsCertified(instance);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.holds);
  EXPECT_EQ(result.candidates, 1);
  EXPECT_EQ(result.refinements, 0);
}

TEST(QbfCegarTest, PaperFig5ForallExistsMatchesLegacyApi) {
  ForallExistsCnf instance = PaperFig5ForallExists();
  QbfResult cegar = SolveForallExistsCertified(instance);
  ASSERT_TRUE(cegar.ok);
  QbfOptions brute;
  brute.use_cegar = false;
  QbfResult enumerated = SolveForallExistsCertified(instance, brute);
  ASSERT_TRUE(enumerated.ok);
  EXPECT_EQ(cegar.holds, enumerated.holds);
  EXPECT_EQ(cegar.holds, SolveForallExists(instance));
}

// --- Reduction-shaped stress corpus -----------------------------------------

TEST(SatEncodeTest, ColoringCnfMatchesBacktrackingOracle) {
  std::mt19937 rng(20260808);
  for (int round = 0; round < 20; ++round) {
    // Mixed bag: planted 3-colorable graphs and dense random graphs.
    Graph g = RandomThreeColorableGraph(8, 0.5, rng);
    if (round % 2 == 1) {
      // Densify: extra random edges can break 3-colorability.
      std::uniform_int_distribution<int> node(0, g.num_nodes() - 1);
      for (int e = 0; e < 6; ++e) {
        int a = node(rng);
        int b = node(rng);
        if (a != b) g.AddEdge(a, b);
      }
    }
    ClausalFormula cnf = GraphColoringToCnf(g, 3);
    SatResult result = SolveCnf(cnf);
    EXPECT_EQ(result.sat, IsThreeColorable(g)) << g.ToString();
    if (result.sat) {
      std::vector<int> coloring = DecodeColoring(g, 3, result.model);
      for (const auto& [a, b] : g.edges()) {
        EXPECT_NE(coloring[a], coloring[b]) << g.ToString();
      }
    } else {
      std::string error;
      EXPECT_TRUE(CheckUnsatProof(cnf, {}, result.proof, &error)) << error;
    }
  }
}

TEST(SatEncodeTest, CompleteGraphNeedsAsManyColorsAsNodes) {
  Graph k4(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) k4.AddEdge(a, b);
  }
  EXPECT_FALSE(SolveCnf(GraphColoringToCnf(k4, 3)).sat);
  SatResult with_four = SolveCnf(GraphColoringToCnf(k4, 4));
  ASSERT_TRUE(with_four.sat);
  std::vector<int> coloring = DecodeColoring(k4, 4, with_four.model);
  std::sort(coloring.begin(), coloring.end());
  EXPECT_EQ(coloring, std::vector<int>({0, 1, 2, 3}));
}

TEST(SatEncodeTest, SelfLoopIsNeverColorable) {
  Graph g(2);
  g.AddEdge(0, 0);
  EXPECT_FALSE(SolveCnf(GraphColoringToCnf(g, 3)).sat);
  EXPECT_FALSE(IsThreeColorable(g));
}

TEST(SatEncodeTest, PigeonholeFamilyIsUnsatWithCheckableProofs) {
  for (int holes = 1; holes <= 4; ++holes) {
    ClausalFormula f = PigeonholeCnf(holes);
    SatResult result = SolveCnf(f);
    ASSERT_FALSE(result.sat) << "PHP(" << holes + 1 << ", " << holes << ")";
    std::string error;
    EXPECT_TRUE(CheckUnsatProof(f, {}, result.proof, &error))
        << "PHP(" << holes + 1 << ", " << holes << "): " << error;
  }
}

TEST(SatEncodeTest, ChainShapesHaveExpectedVerdicts) {
  EXPECT_FALSE(SolveCheckedBothEngines(ScrambledImplicationChainCnf(50)));
  EXPECT_TRUE(SolveCheckedBothEngines(DecisionLadderCnf(50)));
}

// --- Randomized differentials -----------------------------------------------

class SatDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatDifferentialTest, CdclVsDpllVsBruteForce) {
  unsigned seed = GetParam();
  PW_DIFF_CASE(seed);
  std::mt19937 rng(seed);
  // Mostly small instances (exhaustively checkable fast), a few at the
  // 20-variable enumeration ceiling.
  int num_vars = 4 + static_cast<int>(seed % 11);
  if (seed % 7 == 0) num_vars = 20;
  int num_clauses = 2 + static_cast<int>(rng() % (3 * num_vars));
  int width = 2 + static_cast<int>(rng() % 3);
  ClausalFormula f = RandomClausalFormula(num_vars, num_clauses, width, rng);

  SatResult cdcl = SolveCnf(f);
  SatResult dpll = SolveCnf(f, SatOptions{.use_cdcl = false});
  bool truth = BruteForceSat(f);
  EXPECT_EQ(cdcl.sat, truth) << f.ToString(/*as_cnf=*/true);
  EXPECT_EQ(dpll.sat, truth) << f.ToString(/*as_cnf=*/true);
  if (truth) {
    EXPECT_TRUE(f.EvalCnf(cdcl.model));
    EXPECT_TRUE(f.EvalCnf(dpll.model));
  }
  std::string error;
  EXPECT_TRUE(VerifyCertificate(f, {}, cdcl.Certificate(), &error))
      << error << "\n"
      << f.ToString(/*as_cnf=*/true);
}

TEST_P(SatDifferentialTest, AssumptionSolveAgreesWithUnitClauses) {
  unsigned seed = GetParam();
  PW_DIFF_CASE(seed);
  std::mt19937 rng(seed ^ 0x5a5a5a5au);
  int num_vars = 4 + static_cast<int>(seed % 9);
  ClausalFormula f = RandomClausalFormula(num_vars, 2 * num_vars, 3, rng);
  // Random assumptions over a prefix of the variables.
  std::vector<Literal> assumptions;
  for (int v = 0; v < num_vars / 2; ++v) {
    if (rng() % 2 == 0) assumptions.push_back({v, rng() % 2 == 0});
  }
  SatResult assumed = SolveCnfUnderAssumptions(f, assumptions);
  ClausalFormula with_units = f;
  for (const Literal& lit : assumptions) with_units.clauses.push_back({lit});
  EXPECT_EQ(assumed.sat, BruteForceSat(with_units))
      << with_units.ToString(/*as_cnf=*/true);
  std::string error;
  EXPECT_TRUE(
      VerifyCertificate(f, assumptions, assumed.Certificate(), &error))
      << error;
  if (!assumed.sat) {
    // The failed core must itself refute the formula.
    ClausalFormula with_core = f;
    for (const Literal& lit : assumed.core) with_core.clauses.push_back({lit});
    EXPECT_FALSE(BruteForceSat(with_core));
  }
}

TEST_P(SatDifferentialTest, CegarVsEnumerationOnRandomQbf) {
  unsigned seed = GetParam();
  PW_DIFF_CASE(seed);
  std::mt19937 rng(seed ^ 0xc3c3c3c3u);
  int num_forall = 2 + static_cast<int>(seed % 4);
  int num_exists = 2 + static_cast<int>(rng() % 4);
  int num_clauses = 3 + static_cast<int>(rng() % 8);
  ForallExistsCnf instance =
      RandomForallExists(num_forall, num_exists, num_clauses, rng);

  QbfResult cegar = SolveForallExistsCertified(instance);
  ASSERT_TRUE(cegar.ok) << cegar.error;
  QbfOptions brute;
  brute.use_cegar = false;
  QbfResult enumerated = SolveForallExistsCertified(instance, brute);
  ASSERT_TRUE(enumerated.ok) << enumerated.error;
  EXPECT_EQ(cegar.holds, enumerated.holds);
  if (!cegar.holds) {
    ASSERT_TRUE(cegar.counterexample.has_value());
    std::string error;
    EXPECT_TRUE(VerifyCertificate(instance.formula,
                                  UniversalAssumptions(*cegar.counterexample),
                                  cegar.certificate, &error))
        << error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatDifferentialTest,
                         ::testing::Range(9100u, 9140u));

}  // namespace
}  // namespace pw
