// Unit tests for datalog/: programs, naive and semi-naive evaluation, and
// the PTIME certain-answer algorithm on g-tables (Theorem 5.3(1)).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "datalog/certain.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

/// Transitive closure program: preds 0 = edge (EDB), 1 = path (IDB).
DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  DatalogRule base;
  base.head = {1, Tuple{V(0), V(1)}};
  base.body = {{0, Tuple{V(0), V(1)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(0), V(2)}};
  step.body = {{1, Tuple{V(0), V(1)}}, {0, Tuple{V(1), V(2)}}};
  p.AddRule(step);
  return p;
}

TEST(DatalogProgramTest, ValidProgramPasses) {
  EXPECT_EQ(TransitiveClosure().Validate(), "");
}

TEST(DatalogProgramTest, HeadMustBeIntensional) {
  DatalogProgram p({2, 2}, 1);
  DatalogRule bad;
  bad.head = {0, Tuple{V(0), V(1)}};
  bad.body = {{1, Tuple{V(0), V(1)}}};
  p.AddRule(bad);
  EXPECT_NE(p.Validate(), "");
}

TEST(DatalogProgramTest, RangeRestrictionEnforced) {
  DatalogProgram p({2, 2}, 1);
  DatalogRule bad;
  bad.head = {1, Tuple{V(0), V(9)}};
  bad.body = {{0, Tuple{V(0), V(1)}}};
  p.AddRule(bad);
  EXPECT_NE(p.Validate(), "");
}

TEST(DatalogProgramTest, ArityMismatchDetected) {
  DatalogProgram p({2, 2}, 1);
  DatalogRule bad;
  bad.head = {1, Tuple{V(0)}};
  bad.body = {{0, Tuple{V(0), V(1)}}};
  p.AddRule(bad);
  EXPECT_NE(p.Validate(), "");
}

TEST(DatalogEvalTest, TransitiveClosureChain) {
  Instance edb({Relation(2, {{1, 2}, {2, 3}, {3, 4}})});
  Instance out = SemiNaiveEval(TransitiveClosure(), edb);
  EXPECT_EQ(out.relation(1),
            Relation(2, {{1, 2}, {2, 3}, {3, 4}, {1, 3}, {2, 4}, {1, 4}}));
}

TEST(DatalogEvalTest, CycleClosure) {
  Instance edb({Relation(2, {{1, 2}, {2, 1}})});
  Instance out = SemiNaiveEval(TransitiveClosure(), edb);
  EXPECT_EQ(out.relation(1), Relation(2, {{1, 2}, {2, 1}, {1, 1}, {2, 2}}));
}

TEST(DatalogEvalTest, NaiveAndSemiNaiveAgree) {
  std::mt19937 rng(3);
  for (int round = 0; round < 15; ++round) {
    Instance edb({RandomRelation(2, 12, 6, rng)});
    EXPECT_EQ(NaiveEval(TransitiveClosure(), edb),
              SemiNaiveEval(TransitiveClosure(), edb));
  }
}

TEST(DatalogEvalTest, ConstantsInRules) {
  // reach1(x) :- edge(1, x);  reach1(y) :- reach1(x), edge(x, y).
  DatalogProgram p({2, 1}, 1);
  DatalogRule base;
  base.head = {1, Tuple{V(0)}};
  base.body = {{0, Tuple{C(1), V(0)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(1)}};
  step.body = {{1, Tuple{V(0)}}, {0, Tuple{V(0), V(1)}}};
  p.AddRule(step);
  Instance edb({Relation(2, {{1, 2}, {2, 3}, {5, 6}})});
  Instance out = SemiNaiveEval(p, edb);
  EXPECT_EQ(out.relation(1), Relation(1, {{2}, {3}}));
}

TEST(DatalogEvalTest, RepeatedVariablesInBodyAtom) {
  // loop(x) :- edge(x, x).
  DatalogProgram p({2, 1}, 1);
  DatalogRule r;
  r.head = {1, Tuple{V(0)}};
  r.body = {{0, Tuple{V(0), V(0)}}};
  p.AddRule(r);
  Instance edb({Relation(2, {{1, 1}, {1, 2}, {3, 3}})});
  EXPECT_EQ(SemiNaiveEval(p, edb).relation(1), Relation(1, {{1}, {3}}));
}

TEST(DatalogEvalTest, MultipleIdbPredicatesInterleave) {
  // even(x) :- zero(x);  odd(y) :- even(x), succ(x, y);
  // even(y) :- odd(x), succ(x, y).
  DatalogProgram p({1, 2, 1, 1}, 2);  // zero, succ | even, odd
  DatalogRule r1;
  r1.head = {2, Tuple{V(0)}};
  r1.body = {{0, Tuple{V(0)}}};
  p.AddRule(r1);
  DatalogRule r2;
  r2.head = {3, Tuple{V(1)}};
  r2.body = {{2, Tuple{V(0)}}, {1, Tuple{V(0), V(1)}}};
  p.AddRule(r2);
  DatalogRule r3;
  r3.head = {2, Tuple{V(1)}};
  r3.body = {{3, Tuple{V(0)}}, {1, Tuple{V(0), V(1)}}};
  p.AddRule(r3);
  Instance edb({Relation(1, {{0}}),
                Relation(2, {{0, 1}, {1, 2}, {2, 3}, {3, 4}})});
  Instance out = SemiNaiveEval(p, edb);
  EXPECT_EQ(out.relation(2), Relation(1, {{0}, {2}, {4}}));
  EXPECT_EQ(out.relation(3), Relation(1, {{1}, {3}}));
}

TEST(DatalogCertainTest, GroundGTableBehavesAsInstance) {
  CDatabase db(CTable::FromRelation(Relation(2, {{1, 2}, {2, 3}})));
  auto out = DatalogCertainAnswers(TransitiveClosure(), db);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->relation(1), Relation(2, {{1, 2}, {2, 3}, {1, 3}}));
}

TEST(DatalogCertainTest, NullsBlockUncertainDerivations) {
  // edge = {(1, x), (2, 3)}: path(2,3) certain; path(1, anything) is not.
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{C(2), C(3)});
  CDatabase db{t};
  auto out = DatalogCertainAnswers(TransitiveClosure(), db);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->relation(1), Relation(2, {{2, 3}}));
}

TEST(DatalogCertainTest, JoinThroughSharedNull) {
  // edge = {(1, x), (x, 3)}: path(1,3) IS certain (joins through x for any
  // value of x).
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{V(0), C(3)});
  CDatabase db{t};
  auto out = DatalogCertainAnswers(TransitiveClosure(), db);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->relation(1).Contains(Fact{1, 3}));
  EXPECT_FALSE(out->relation(1).Contains(Fact{1, 2}));
}

TEST(DatalogCertainTest, GlobalEqualityIncorporated) {
  // edge = {(1, x)} with global x = 2: path(1,2) certain.
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.SetGlobal(Conjunction{Eq(V(0), C(2))});
  CDatabase db{t};
  auto out = DatalogCertainAnswers(TransitiveClosure(), db);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->relation(1).Contains(Fact{1, 2}));
}

TEST(DatalogCertainTest, RejectsLocalConditions) {
  CTable t(2);
  t.AddRow(Tuple{C(1), C(2)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  EXPECT_FALSE(DatalogCertainAnswers(TransitiveClosure(), db).has_value());
}

TEST(DatalogCertainTest, AgreesWithWorldEnumerationOnRandomGTables) {
  std::mt19937 rng(29);
  DatalogProgram tc = TransitiveClosure();
  for (int round = 0; round < 15; ++round) {
    RandomCTableOptions options =
        testutil::SmallCTableOptions(/*arity=*/2, /*num_rows=*/3,
            /*num_constants=*/3, /*num_variables=*/2, /*num_local_atoms=*/0,
            /*num_global_atoms=*/1);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};
    if (RepIsEmpty(db)) continue;
    auto fast = DatalogCertainAnswers(tc, db);
    ASSERT_TRUE(fast.has_value());
    // Oracle: intersect q(world) over all enumerated worlds. Facts using
    // constants outside the database's own domain cannot be certain (some
    // valuation avoids them), so filter them from the intersection — the
    // representative enumeration cannot rename a lone fresh constant away.
    bool first = true;
    Relation certain(2);
    ForEachWorld(db, {}, [&](const Instance& world, const Valuation&) {
      Relation paths = SemiNaiveEval(tc, world).relation(1);
      if (first) {
        certain = paths;
        first = false;
      } else {
        Relation kept(2);
        for (const Fact& f : certain) {
          if (paths.Contains(f)) kept.Insert(f);
        }
        certain = kept;
      }
      return true;
    });
    std::vector<ConstId> domain = db.Constants();
    Relation filtered(2);
    for (const Fact& f : certain) {
      bool in_domain = true;
      for (ConstId c : f) {
        if (std::find(domain.begin(), domain.end(), c) == domain.end()) {
          in_domain = false;
          break;
        }
      }
      if (in_domain) filtered.Insert(f);
    }
    EXPECT_EQ(fast->relation(1), filtered) << t.ToString();
  }
}

}  // namespace
}  // namespace pw
