// Tests for the possibility problems POSS(*, q) and POSS(k, q)
// (Theorems 5.1, 5.2): the PTIME matching algorithm on Codd-tables, the
// PTIME bounded algorithm via the Imielinski–Lipski image, the general
// search, and randomized cross-validation.

#include <gtest/gtest.h>

#include <random>

#include "decision/possibility.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(PossUnboundedCoddTest, EachFactNeedsDistinctRow) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.AddRow(Tuple{V(1)});
  CDatabase db{t};
  EXPECT_EQ(PossUnboundedCoddTables(db, Instance({Relation(1, {{1}, {2}})})),
            true);
  EXPECT_EQ(
      PossUnboundedCoddTables(db, Instance({Relation(1, {{1}, {2}, {3}})})),
      false);
}

TEST(PossUnboundedCoddTest, ConstantsRestrictRows) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{C(2), V(1)});
  CDatabase db{t};
  EXPECT_EQ(PossUnboundedCoddTables(
                db, Instance({Relation(2, {{1, 7}, {2, 8}})})),
            true);
  EXPECT_EQ(PossUnboundedCoddTables(db, Instance({Relation(2, {{3, 7}})})),
            false);
}

TEST(PossUnboundedCoddTest, EmptyPatternAlwaysPossible) {
  CDatabase db{CTable(1)};
  EXPECT_EQ(PossUnboundedCoddTables(db, Instance(std::vector<int>{1})), true);
}

TEST(PossUnboundedCoddTest, NotApplicableToETables) {
  CTable t(2);
  t.AddRow(Tuple{V(0), V(0)});
  CDatabase db{t};
  EXPECT_FALSE(PossUnboundedCoddTables(db, Instance({Relation(2, {{1, 1}})}))
                   .has_value());
}

TEST(PossBoundedTest, IdentityOnCTable) {
  // Row (1, x) with local x != 2, global x != 3.
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)}, Conjunction{Neq(V(0), C(2))});
  t.SetGlobal(Conjunction{Neq(V(0), C(3))});
  CDatabase db{t};
  RaQuery id = {RaExpr::Rel(0, 2)};
  EXPECT_EQ(PossBoundedPosExistential(id, db, {{0, {1, 5}}}), true);
  EXPECT_EQ(PossBoundedPosExistential(id, db, {{0, {1, 2}}}), false);
  EXPECT_EQ(PossBoundedPosExistential(id, db, {{0, {1, 3}}}), false);
  EXPECT_EQ(PossBoundedPosExistential(id, db, {{0, {2, 5}}}), false);
}

TEST(PossBoundedTest, TwoFactsMustBeJointlyPossible) {
  // T = {(x), (y)} with global x != y: {(1)} and {(2)} jointly possible;
  // {(1)}, {(1)} is just one fact.
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.AddRow(Tuple{V(1)});
  t.SetGlobal(Conjunction{Neq(V(0), V(1))});
  CDatabase db{t};
  RaQuery id = {RaExpr::Rel(0, 1)};
  EXPECT_EQ(PossBoundedPosExistential(id, db, {{0, {1}}, {0, {2}}}), true);
  // Three distinct facts need three rows.
  EXPECT_EQ(
      PossBoundedPosExistential(id, db, {{0, {1}}, {0, {2}}, {0, {3}}}),
      false);
}

TEST(PossBoundedTest, JointConsistencyThroughSharedVariable) {
  // T = {(1, x), (2, x)}: (1, a) and (2, b) possible only when a == b.
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{C(2), V(0)});
  CDatabase db{t};
  RaQuery id = {RaExpr::Rel(0, 2)};
  EXPECT_EQ(PossBoundedPosExistential(id, db, {{0, {1, 7}}, {0, {2, 7}}}),
            true);
  EXPECT_EQ(PossBoundedPosExistential(id, db, {{0, {1, 7}}, {0, {2, 8}}}),
            false);
}

TEST(PossBoundedTest, QueryImageConditions) {
  // q = pi_1(sigma_{c0 = c1}(R)) on T = {(x, y)}: (c) possible for any c
  // (set x = y = c).
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)});
  CDatabase db{t};
  RaQuery q = {RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Col(1))}),
      {1})};
  EXPECT_EQ(PossBoundedPosExistential(q, db, {{0, {5}}}), true);
}

TEST(PossBoundedTest, RejectsFirstOrderQueries) {
  CDatabase db{CTable(1)};
  RaQuery fo = {RaExpr::Diff(RaExpr::Rel(0, 1), RaExpr::Rel(0, 1))};
  EXPECT_FALSE(PossBoundedPosExistential(fo, db, {}).has_value());
}

TEST(PossBoundedTest, UnsatisfiableGlobalNothingPossible) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{FalseAtom()});
  CDatabase db{t};
  RaQuery id = {RaExpr::Rel(0, 1)};
  EXPECT_EQ(PossBoundedPosExistential(id, db, {{0, {1}}}), false);
}

TEST(PossibilitySearchTest, FirstOrderViewNeedsEnumeration) {
  // q = R - {(1)} on T = {(x)}: (2) possible, (1) not.
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CDatabase db{t};
  View q = View::Ra(
      {RaExpr::Diff(RaExpr::Rel(0, 1), RaExpr::ConstRel(Relation(1, {{1}})))});
  EXPECT_TRUE(PossibilitySearch(q, db, {{0, {2}}}));
  EXPECT_FALSE(PossibilitySearch(q, db, {{0, {1}}}));
}

TEST(PossibilityDispatcherTest, UnboundedUsesMatchingForCodd) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.AddRow(Tuple{V(1)});
  CDatabase db{t};
  EXPECT_TRUE(PossibilityUnbounded(View::Identity(), db,
                                   Instance({Relation(1, {{1}, {2}})})));
  EXPECT_FALSE(PossibilityUnbounded(View::Identity(), db,
                                    Instance({Relation(1, {{1}, {2}, {3}})})));
}

// --- Randomized cross-validation ------------------------------------------

/// Oracle: enumerate worlds and look for one containing the pattern.
bool PossibleOracle(const View& view, const CDatabase& db,
                    const std::vector<LocatedFact>& pattern) {
  WorldEnumOptions options;
  for (const LocatedFact& lf : pattern) {
    for (ConstId c : lf.fact) options.extra_constants.push_back(c);
  }
  bool possible = false;
  ForEachWorld(db, options, [&](const Instance& world, const Valuation&) {
    if (ContainsAll(view.Eval(world), pattern)) {
      possible = true;
      return false;
    }
    return true;
  });
  return possible;
}

class PossibilityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PossibilityPropertyTest, BoundedAlgorithmAgreesWithOracle) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options = testutil::SmallCTableOptions(
      /*arity=*/2, /*num_rows=*/3, /*num_constants=*/3, /*num_variables=*/3,
      /*num_local_atoms=*/GetParam() % 2, /*num_global_atoms=*/GetParam() % 3);
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};
  RaQuery id = {RaExpr::Rel(0, 2)};

  std::uniform_int_distribution<int> c(0, 3);
  for (int round = 0; round < 8; ++round) {
    std::vector<LocatedFact> pattern;
    int k = 1 + (round % 2);
    for (int i = 0; i < k; ++i) {
      pattern.push_back({0, Fact{c(rng), c(rng)}});
    }
    EXPECT_EQ(PossBoundedPosExistential(id, db, pattern),
              PossibleOracle(View::Identity(), db, pattern))
        << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PossibilityPropertyTest,
                         ::testing::Range(1, 31));

TEST(PossibilityAgreementTest, CoddMatchingAgreesWithBoundedSearch) {
  std::mt19937 rng(202);
  for (int round = 0; round < 25; ++round) {
    RandomCTableOptions options = testutil::CoddishCTableOptions(
        /*arity=*/2, /*num_rows=*/4, /*num_constants=*/3);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};
    if (db.Kind() != TableKind::kCoddTable) continue;
    Instance pattern({RandomRelation(2, 2, 4, rng)});
    auto fast = PossUnboundedCoddTables(db, pattern);
    ASSERT_TRUE(fast.has_value());
    RaQuery id = {RaExpr::Rel(0, 2)};
    EXPECT_EQ(*fast, PossBoundedPosExistential(id, db,
                                               ToLocatedFacts(pattern)))
        << t.ToString() << pattern.ToString();
  }
}

}  // namespace
}  // namespace pw
