// Unit tests for the condition interner: atom hash-consing, conjunction
// canonicalization (equality-atom orientation and congruence, duplicate
// atoms), the memoized And, and agreement of the memoized satisfiability
// verdict with the uncached congruence-closure path.

#include <gtest/gtest.h>

#include <random>

#include "condition/interner.h"
#include "core/tuple.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(InternerTest, AtomsAreHashConsed) {
  ConditionInterner interner;
  AtomId a = interner.InternAtom(Eq(V(1), V(2)));
  AtomId b = interner.InternAtom(Eq(V(2), V(1)));  // Eq normalizes orientation
  AtomId c = interner.InternAtom(Neq(V(1), V(2)));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.AtomOf(a), Eq(V(1), V(2)));
}

TEST(InternerTest, TrueAndFalseAreReserved) {
  ConditionInterner interner;
  EXPECT_EQ(interner.Intern(Conjunction()), ConditionInterner::kTrueConj);
  EXPECT_EQ(interner.Intern(Conjunction{FalseAtom()}),
            ConditionInterner::kFalseConj);
  EXPECT_TRUE(interner.Satisfiable(ConditionInterner::kTrueConj));
  EXPECT_FALSE(interner.Satisfiable(ConditionInterner::kFalseConj));
  EXPECT_EQ(interner.Resolve(ConditionInterner::kTrueConj), Conjunction());
}

TEST(InternerTest, AtomOrderAndDuplicatesDoNotMatter) {
  ConditionInterner interner;
  Conjunction a{Eq(V(0), C(1)), Neq(V(2), C(3))};
  Conjunction b{Neq(V(2), C(3)), Eq(V(0), C(1)), Eq(V(0), C(1))};
  EXPECT_EQ(interner.Intern(a), interner.Intern(b));
}

TEST(InternerTest, TriviallyTrueAtomsDrop) {
  ConditionInterner interner;
  Conjunction a{Eq(V(0), V(0)), Eq(C(2), C(2)), Neq(C(1), C(2))};
  EXPECT_EQ(interner.Intern(a), ConditionInterner::kTrueConj);
}

TEST(InternerTest, EqualityCongruenceCanonicalizes) {
  ConditionInterner interner;
  // {x0 = x1, x1 = 3} and {x1 = 3, x0 = 3} force the same classes.
  Conjunction a{Eq(V(0), V(1)), Eq(V(1), C(3))};
  Conjunction b{Eq(V(1), C(3)), Eq(V(0), C(3))};
  EXPECT_EQ(interner.Intern(a), interner.Intern(b));
  // Canonical form binds each variable to the class constant.
  const Conjunction& canonical = interner.Resolve(interner.Intern(a));
  EXPECT_EQ(canonical, (Conjunction{Eq(V(0), C(3)), Eq(V(1), C(3))}));
}

TEST(InternerTest, VariableClassesUseLeastRepresentative) {
  ConditionInterner interner;
  // {x2 = x1, x1 = x0} == {x0 = x2, x0 = x1}: representative is x0.
  Conjunction a{Eq(V(2), V(1)), Eq(V(1), V(0))};
  Conjunction b{Eq(V(0), V(2)), Eq(V(0), V(1))};
  EXPECT_EQ(interner.Intern(a), interner.Intern(b));
  const Conjunction& canonical = interner.Resolve(interner.Intern(a));
  EXPECT_EQ(canonical, (Conjunction{Eq(V(1), V(0)), Eq(V(2), V(0))}));
}

TEST(InternerTest, InequalitiesRewriteThroughRepresentatives) {
  ConditionInterner interner;
  // x0 = x1 makes x1 != x2 the same as x0 != x2.
  Conjunction a{Eq(V(0), V(1)), Neq(V(1), V(2))};
  Conjunction b{Eq(V(0), V(1)), Neq(V(0), V(2))};
  EXPECT_EQ(interner.Intern(a), interner.Intern(b));
}

TEST(InternerTest, UnsatisfiableConjunctionsShareFalse) {
  ConditionInterner interner;
  EXPECT_EQ(interner.Intern(Conjunction{Eq(V(0), C(1)), Eq(V(0), C(2))}),
            ConditionInterner::kFalseConj);
  EXPECT_EQ(interner.Intern(Conjunction{Neq(V(3), V(3))}),
            ConditionInterner::kFalseConj);
  EXPECT_EQ(
      interner.Intern(Conjunction{Eq(V(0), V(1)), Neq(V(1), V(0))}),
      ConditionInterner::kFalseConj);
}

TEST(InternerTest, AndIsMemoizedAndCorrect) {
  ConditionInterner interner;
  ConjId a = interner.Intern(Conjunction{Eq(V(0), V(1))});
  ConjId b = interner.Intern(Conjunction{Eq(V(1), C(3))});
  ConjId ab = interner.And(a, b);
  // The conjoin forces the full closure {x0 = 3, x1 = 3}.
  EXPECT_EQ(ab, interner.Intern(Conjunction{Eq(V(0), C(3)), Eq(V(1), C(3))}));
  // Trivial cases.
  EXPECT_EQ(interner.And(a, ConditionInterner::kTrueConj), a);
  EXPECT_EQ(interner.And(ConditionInterner::kFalseConj, a),
            ConditionInterner::kFalseConj);
  EXPECT_EQ(interner.And(a, a), a);
  // Commutative pair cache: the second query in either order is a hit.
  interner.ResetStats();
  EXPECT_EQ(interner.And(b, a), ab);
  EXPECT_EQ(interner.stats().and_hits, 1u);
}

TEST(InternerTest, AndDetectsContradictionAcrossOperands) {
  ConditionInterner interner;
  ConjId a = interner.Intern(Conjunction{Eq(V(0), C(1))});
  ConjId b = interner.Intern(Conjunction{Eq(V(0), C(2))});
  EXPECT_EQ(interner.And(a, b), ConditionInterner::kFalseConj);
  ConjId c = interner.Intern(Conjunction{Neq(V(0), C(1))});
  EXPECT_EQ(interner.And(a, c), ConditionInterner::kFalseConj);
}

TEST(InternerTest, SyntacticCacheShortCircuitsRepeats) {
  ConditionInterner interner;
  Conjunction c{Eq(V(0), C(1)), Neq(V(1), C(2))};
  ConjId first = interner.Intern(c);
  interner.ResetStats();
  EXPECT_EQ(interner.Intern(c), first);
  EXPECT_EQ(interner.stats().syntactic_hits, 1u);
}

TEST(InternerTest, MemoizedSatisfiabilityAgreesWithUncachedPath) {
  // Randomized agreement: CachedSatisfiable must equal the uncached
  // congruence-closure path (Conjunction::Satisfiable) on every generated
  // condition — including repeats, which exercise the caches.
  ConditionInterner interner;
  std::mt19937 rng(20260726);
  for (int round = 0; round < 500; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/2, /*num_constants=*/3, /*num_variables=*/3,
        /*num_local_atoms=*/3, /*num_global_atoms=*/3);
    CTable t = RandomCTable(options, rng);
    for (const CRow& row : t.rows()) {
      EXPECT_EQ(interner.CachedSatisfiable(row.local), row.local.Satisfiable())
          << row.local.ToString();
    }
    EXPECT_EQ(interner.CachedSatisfiable(t.global()), t.global().Satisfiable())
        << t.global().ToString();
    // Conjoining via the interner agrees with raw concatenation.
    for (const CRow& row : t.rows()) {
      Conjunction raw = Conjunction::And(t.global(), row.local);
      ConjId combined =
          interner.And(interner.Intern(t.global()), interner.Intern(row.local));
      EXPECT_EQ(interner.Satisfiable(combined), raw.Satisfiable())
          << raw.ToString();
    }
  }
}

TEST(InternerTest, CanonicalizationPreservesSemantics) {
  // The canonical form must imply and be implied by the original: check by
  // cross-implication of every atom over randomized conditions.
  ConditionInterner interner;
  std::mt19937 rng(77);
  for (int round = 0; round < 300; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/1, /*num_rows=*/1, /*num_constants=*/3, /*num_variables=*/4,
        /*num_local_atoms=*/4);
    CTable t = RandomCTable(options, rng);
    const Conjunction& original = t.row(0).local;
    if (!original.Satisfiable()) {
      EXPECT_EQ(interner.Intern(original), ConditionInterner::kFalseConj);
      continue;
    }
    const Conjunction& canonical = interner.Resolve(interner.Intern(original));
    for (const CondAtom& atom : canonical.atoms()) {
      EXPECT_TRUE(original.Implies(atom))
          << original.ToString() << " !=> " << ToString(atom);
    }
    for (const CondAtom& atom : original.atoms()) {
      EXPECT_TRUE(canonical.Implies(atom))
          << canonical.ToString() << " !=> " << ToString(atom);
    }
  }
}

}  // namespace
}  // namespace pw
