// Unit tests for the condition interner: atom hash-consing, conjunction
// canonicalization (equality-atom orientation and congruence, duplicate
// atoms), the memoized And, and agreement of the memoized satisfiability
// verdict with the uncached congruence-closure path.

#include <gtest/gtest.h>

#include <random>

#include "condition/interner.h"
#include "core/tuple.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(InternerTest, AtomsAreHashConsed) {
  ConditionInterner interner;
  AtomId a = interner.InternAtom(Eq(V(1), V(2)));
  AtomId b = interner.InternAtom(Eq(V(2), V(1)));  // Eq normalizes orientation
  AtomId c = interner.InternAtom(Neq(V(1), V(2)));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.AtomOf(a), Eq(V(1), V(2)));
}

TEST(InternerTest, TrueAndFalseAreReserved) {
  ConditionInterner interner;
  EXPECT_EQ(interner.Intern(Conjunction()), ConditionInterner::kTrueConj);
  EXPECT_EQ(interner.Intern(Conjunction{FalseAtom()}),
            ConditionInterner::kFalseConj);
  EXPECT_TRUE(interner.Satisfiable(ConditionInterner::kTrueConj));
  EXPECT_FALSE(interner.Satisfiable(ConditionInterner::kFalseConj));
  EXPECT_EQ(interner.Resolve(ConditionInterner::kTrueConj), Conjunction());
}

TEST(InternerTest, AtomOrderAndDuplicatesDoNotMatter) {
  ConditionInterner interner;
  Conjunction a{Eq(V(0), C(1)), Neq(V(2), C(3))};
  Conjunction b{Neq(V(2), C(3)), Eq(V(0), C(1)), Eq(V(0), C(1))};
  EXPECT_EQ(interner.Intern(a), interner.Intern(b));
}

TEST(InternerTest, TriviallyTrueAtomsDrop) {
  ConditionInterner interner;
  Conjunction a{Eq(V(0), V(0)), Eq(C(2), C(2)), Neq(C(1), C(2))};
  EXPECT_EQ(interner.Intern(a), ConditionInterner::kTrueConj);
}

TEST(InternerTest, EqualityCongruenceCanonicalizes) {
  ConditionInterner interner;
  // {x0 = x1, x1 = 3} and {x1 = 3, x0 = 3} force the same classes.
  Conjunction a{Eq(V(0), V(1)), Eq(V(1), C(3))};
  Conjunction b{Eq(V(1), C(3)), Eq(V(0), C(3))};
  EXPECT_EQ(interner.Intern(a), interner.Intern(b));
  // Canonical form binds each variable to the class constant.
  const Conjunction& canonical = interner.Resolve(interner.Intern(a));
  EXPECT_EQ(canonical, (Conjunction{Eq(V(0), C(3)), Eq(V(1), C(3))}));
}

TEST(InternerTest, VariableClassesUseLeastRepresentative) {
  ConditionInterner interner;
  // {x2 = x1, x1 = x0} == {x0 = x2, x0 = x1}: representative is x0.
  Conjunction a{Eq(V(2), V(1)), Eq(V(1), V(0))};
  Conjunction b{Eq(V(0), V(2)), Eq(V(0), V(1))};
  EXPECT_EQ(interner.Intern(a), interner.Intern(b));
  const Conjunction& canonical = interner.Resolve(interner.Intern(a));
  EXPECT_EQ(canonical, (Conjunction{Eq(V(1), V(0)), Eq(V(2), V(0))}));
}

TEST(InternerTest, InequalitiesRewriteThroughRepresentatives) {
  ConditionInterner interner;
  // x0 = x1 makes x1 != x2 the same as x0 != x2.
  Conjunction a{Eq(V(0), V(1)), Neq(V(1), V(2))};
  Conjunction b{Eq(V(0), V(1)), Neq(V(0), V(2))};
  EXPECT_EQ(interner.Intern(a), interner.Intern(b));
}

TEST(InternerTest, UnsatisfiableConjunctionsShareFalse) {
  ConditionInterner interner;
  EXPECT_EQ(interner.Intern(Conjunction{Eq(V(0), C(1)), Eq(V(0), C(2))}),
            ConditionInterner::kFalseConj);
  EXPECT_EQ(interner.Intern(Conjunction{Neq(V(3), V(3))}),
            ConditionInterner::kFalseConj);
  EXPECT_EQ(
      interner.Intern(Conjunction{Eq(V(0), V(1)), Neq(V(1), V(0))}),
      ConditionInterner::kFalseConj);
}

TEST(InternerTest, AndIsMemoizedAndCorrect) {
  ConditionInterner interner;
  ConjId a = interner.Intern(Conjunction{Eq(V(0), V(1))});
  ConjId b = interner.Intern(Conjunction{Eq(V(1), C(3))});
  ConjId ab = interner.And(a, b);
  // The conjoin forces the full closure {x0 = 3, x1 = 3}.
  EXPECT_EQ(ab, interner.Intern(Conjunction{Eq(V(0), C(3)), Eq(V(1), C(3))}));
  // Trivial cases.
  EXPECT_EQ(interner.And(a, ConditionInterner::kTrueConj), a);
  EXPECT_EQ(interner.And(ConditionInterner::kFalseConj, a),
            ConditionInterner::kFalseConj);
  EXPECT_EQ(interner.And(a, a), a);
  // Commutative pair cache: the second query in either order is a hit.
  interner.ResetStats();
  EXPECT_EQ(interner.And(b, a), ab);
  EXPECT_EQ(interner.stats().and_hits, 1u);
}

TEST(InternerTest, AndDetectsContradictionAcrossOperands) {
  ConditionInterner interner;
  ConjId a = interner.Intern(Conjunction{Eq(V(0), C(1))});
  ConjId b = interner.Intern(Conjunction{Eq(V(0), C(2))});
  EXPECT_EQ(interner.And(a, b), ConditionInterner::kFalseConj);
  ConjId c = interner.Intern(Conjunction{Neq(V(0), C(1))});
  EXPECT_EQ(interner.And(a, c), ConditionInterner::kFalseConj);
}

TEST(InternerTest, SyntacticCacheShortCircuitsRepeats) {
  ConditionInterner interner;
  Conjunction c{Eq(V(0), C(1)), Neq(V(1), C(2))};
  ConjId first = interner.Intern(c);
  interner.ResetStats();
  EXPECT_EQ(interner.Intern(c), first);
  EXPECT_EQ(interner.stats().syntactic_hits, 1u);
}

TEST(InternerTest, MemoizedSatisfiabilityAgreesWithUncachedPath) {
  // Randomized agreement: CachedSatisfiable must equal the uncached
  // congruence-closure path (Conjunction::Satisfiable) on every generated
  // condition — including repeats, which exercise the caches.
  ConditionInterner interner;
  std::mt19937 rng(20260726);
  for (int round = 0; round < 500; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/2, /*num_constants=*/3, /*num_variables=*/3,
        /*num_local_atoms=*/3, /*num_global_atoms=*/3);
    CTable t = RandomCTable(options, rng);
    for (const CRow& row : t.rows()) {
      EXPECT_EQ(interner.CachedSatisfiable(row.local()), row.local().Satisfiable())
          << row.local().ToString();
    }
    EXPECT_EQ(interner.CachedSatisfiable(t.global()), t.global().Satisfiable())
        << t.global().ToString();
    // Conjoining via the interner agrees with raw concatenation.
    for (const CRow& row : t.rows()) {
      Conjunction raw = Conjunction::And(t.global(), row.local());
      ConjId combined =
          interner.And(interner.Intern(t.global()), interner.Intern(row.local()));
      EXPECT_EQ(interner.Satisfiable(combined), raw.Satisfiable())
          << raw.ToString();
    }
  }
}

TEST(InternerTest, ImpliesAgreesWithUncachedImplication) {
  ConditionInterner interner;
  // Subset fast path.
  ConjId strong = interner.Intern(Conjunction{Eq(V(0), C(1)), Neq(V(1), C(2))});
  ConjId weak = interner.Intern(Conjunction{Eq(V(0), C(1))});
  EXPECT_TRUE(interner.Implies(strong, weak));
  EXPECT_FALSE(interner.Implies(weak, strong));
  // Congruence-only implication (no canonical-atom subset): x0 = x1 AND
  // x1 = 3 implies x0 = x1, but the canonical form {x0 = 3, x1 = 3} does not
  // contain that atom.
  ConjId merged = interner.Intern(Conjunction{Eq(V(0), V(1)), Eq(V(1), C(3))});
  ConjId link = interner.Intern(Conjunction{Eq(V(0), V(1))});
  EXPECT_TRUE(interner.Implies(merged, link));
  EXPECT_FALSE(interner.Implies(link, merged));
  // Sentinels.
  EXPECT_TRUE(interner.Implies(ConditionInterner::kFalseConj, strong));
  EXPECT_TRUE(interner.Implies(strong, ConditionInterner::kTrueConj));
  EXPECT_FALSE(interner.Implies(strong, ConditionInterner::kFalseConj));

  // Randomized agreement with the uncached per-atom path, repeats exercising
  // the pair cache.
  std::mt19937 rng(424242);
  for (int round = 0; round < 300; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/1, /*num_rows=*/2, /*num_constants=*/3, /*num_variables=*/3,
        /*num_local_atoms=*/3);
    CTable t = RandomCTable(options, rng);
    const Conjunction& a = t.row(0).local();
    const Conjunction& b = t.row(1).local();
    if (!a.Satisfiable()) continue;
    bool expected = true;
    for (const CondAtom& atom : b.atoms()) {
      if (!a.Implies(atom)) {
        expected = false;
        break;
      }
    }
    EXPECT_EQ(interner.Implies(interner.Intern(a), interner.Intern(b)),
              expected)
        << a.ToString() << " => " << b.ToString();
  }
}

// --- Generational lifecycle --------------------------------------------------

TEST(InternerLifecycleTest, ClearStartsAFreshGeneration) {
  ConditionInterner interner;
  uint64_t stamp0 = interner.stamp();
  EXPECT_NE(stamp0, 0u);
  EXPECT_EQ(interner.generation(), 0u);

  Conjunction c{Eq(V(0), C(1)), Neq(V(1), C(2))};
  ConjId id = interner.Intern(c);
  Conjunction canonical = interner.Resolve(id);
  EXPECT_GT(interner.num_conjunctions(), 2u);

  interner.Clear();
  EXPECT_EQ(interner.generation(), 1u);
  EXPECT_NE(interner.stamp(), stamp0);
  // Back to the two sentinels; re-interning reproduces the canonical form.
  EXPECT_EQ(interner.num_conjunctions(), 2u);
  ConjId re = interner.Intern(c);
  EXPECT_TRUE(interner.Satisfiable(re));
  EXPECT_EQ(interner.Resolve(re), canonical);
}

TEST(InternerLifecycleTest, ClearKeepsStampedRowCachesValid) {
  // A CRow memoizes its interned id against the interner's stamp; a
  // generational Clear must make the row re-intern (same canonical verdict)
  // instead of returning a stale id into the emptied table.
  ConditionInterner interner;
  CRow row(Tuple{V(0)}, Conjunction{Eq(V(0), C(1)), Eq(V(1), V(0))});
  ConjId before = row.LocalId(interner);
  EXPECT_EQ(row.LocalId(interner), before);  // memoized
  Conjunction canonical_before = interner.Resolve(before);

  interner.Clear();
  ConjId after = row.LocalId(interner);
  EXPECT_TRUE(interner.Satisfiable(after));
  EXPECT_EQ(interner.Resolve(after), canonical_before);

  // Unsatisfiable rows keep their verdict across generations too.
  CRow dead(Tuple{V(0)}, Conjunction{Eq(V(0), C(1)), Eq(V(0), C(2))});
  EXPECT_EQ(dead.LocalId(interner), ConditionInterner::kFalseConj);
  interner.Clear();
  EXPECT_EQ(dead.LocalId(interner), ConditionInterner::kFalseConj);
}

TEST(InternerLifecycleTest, ChildRebasePreservesMemoizedVerdicts) {
  // Per-request pattern: intern into a scratch child, rebase survivors into
  // the long-lived parent. Every id maps to a parent id with the same
  // canonical form; the false/true verdicts map to themselves.
  ConditionInterner parent;
  ConjId parent_preexisting = parent.Intern(Conjunction{Neq(V(9), C(9))});

  ConditionInterner child;
  std::mt19937 rng(20260726);
  std::vector<ConjId> ids;
  for (int round = 0; round < 50; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/1, /*num_rows=*/1, /*num_constants=*/3, /*num_variables=*/3,
        /*num_local_atoms=*/3);
    ids.push_back(child.Intern(RandomCTable(options, rng).row(0).local()));
  }

  std::vector<ConjId> map = child.RebaseInto(parent);
  ASSERT_EQ(map.size(), child.num_conjunctions());
  EXPECT_EQ(map[ConditionInterner::kTrueConj], ConditionInterner::kTrueConj);
  EXPECT_EQ(map[ConditionInterner::kFalseConj], ConditionInterner::kFalseConj);
  for (ConjId id : ids) {
    EXPECT_EQ(child.Satisfiable(id), parent.Satisfiable(map[id]));
    EXPECT_EQ(child.Resolve(id), parent.Resolve(map[id]));
  }
  // Rebase is pure growth on the parent: pre-existing ids are untouched.
  EXPECT_EQ(parent.Resolve(parent_preexisting),
            (Conjunction{Neq(V(9), C(9))}));
}

TEST(InternerLifecycleTest, RepeatedWorkloadsDoNotGrowTheTable) {
  // Append-only growth bound: re-running the same workload against a live
  // interner interns nothing new — the table size is bounded by the number
  // of distinct conditions, not the number of queries. With a per-request
  // Clear, the size returns to the sentinel floor.
  ConditionInterner interner;
  auto workload = [&interner](int seed) {
    std::mt19937 rng(seed);
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/4, /*num_constants=*/3, /*num_variables=*/3,
        /*num_local_atoms=*/2, /*num_global_atoms=*/2);
    CTable t = RandomCTable(options, rng);
    for (const CRow& row : t.rows()) {
      interner.And(t.GlobalId(interner), row.LocalId(interner));
    }
  };

  workload(1);
  size_t after_first = interner.num_conjunctions();
  for (int repeat = 0; repeat < 10; ++repeat) workload(1);
  EXPECT_EQ(interner.num_conjunctions(), after_first);

  workload(2);  // a genuinely new request may grow the table...
  interner.Clear();
  EXPECT_EQ(interner.num_conjunctions(), 2u);  // ...until its generation ends
  workload(3);
  EXPECT_TRUE(interner.num_conjunctions() >= 2u);
}

TEST(InternerLifecycleTest, TableGlobalIdCacheTracksMutationAndGeneration) {
  ConditionInterner interner;
  CTable t(1);
  t.SetGlobal(Conjunction{Neq(V(0), C(1))});
  ConjId g1 = t.GlobalId(interner);
  EXPECT_EQ(t.GlobalId(interner), g1);
  // Mutating the global condition drops the cache.
  t.AddGlobalAtom(Eq(V(0), C(1)));
  EXPECT_EQ(t.GlobalId(interner), ConditionInterner::kFalseConj);
  // A fresh generation re-interns transparently.
  t.SetGlobal(Conjunction{Neq(V(0), C(1))});
  Conjunction canonical = interner.Resolve(t.GlobalId(interner));
  interner.Clear();
  EXPECT_EQ(interner.Resolve(t.GlobalId(interner)), canonical);
}

TEST(InternerTest, CanonicalizationPreservesSemantics) {
  // The canonical form must imply and be implied by the original: check by
  // cross-implication of every atom over randomized conditions.
  ConditionInterner interner;
  std::mt19937 rng(77);
  for (int round = 0; round < 300; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/1, /*num_rows=*/1, /*num_constants=*/3, /*num_variables=*/4,
        /*num_local_atoms=*/4);
    CTable t = RandomCTable(options, rng);
    const Conjunction& original = t.row(0).local();
    if (!original.Satisfiable()) {
      EXPECT_EQ(interner.Intern(original), ConditionInterner::kFalseConj);
      continue;
    }
    const Conjunction& canonical = interner.Resolve(interner.Intern(original));
    for (const CondAtom& atom : canonical.atoms()) {
      EXPECT_TRUE(original.Implies(atom))
          << original.ToString() << " !=> " << ToString(atom);
    }
    for (const CondAtom& atom : original.atoms()) {
      EXPECT_TRUE(canonical.Implies(atom))
          << canonical.ToString() << " !=> " << ToString(atom);
    }
  }
}

}  // namespace
}  // namespace pw
