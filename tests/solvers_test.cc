// Unit tests for solvers/: bipartite matching, SAT, DNF tautology,
// forall-exists CNF, graph coloring.

#include <gtest/gtest.h>

#include <random>

#include "solvers/bipartite_matching.h"
#include "solvers/cnf.h"
#include "solvers/dnf_tautology.h"
#include "solvers/graph.h"
#include "solvers/graph_color.h"
#include "solvers/qbf.h"
#include "solvers/sat.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(MatchingTest, PerfectMatchingOnIdentity) {
  BipartiteGraph g(3, 3);
  for (int i = 0; i < 3; ++i) g.AddEdge(i, i);
  EXPECT_EQ(MaxBipartiteMatching(g).size, 3);
}

TEST(MatchingTest, AugmentingPathNeeded) {
  // 0-{0,1}, 1-{0}: greedy 0->0 must be augmented to 0->1, 1->0.
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  auto m = MaxBipartiteMatching(g);
  EXPECT_EQ(m.size, 2);
  EXPECT_EQ(m.match_left[1], 0);
  EXPECT_EQ(m.match_left[0], 1);
}

TEST(MatchingTest, DeficientSide) {
  BipartiteGraph g(3, 1);
  for (int i = 0; i < 3; ++i) g.AddEdge(i, 0);
  EXPECT_EQ(MaxBipartiteMatching(g).size, 1);
}

TEST(MatchingTest, DisconnectedNodes) {
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 0);
  auto m = MaxBipartiteMatching(g);
  EXPECT_EQ(m.size, 1);
  EXPECT_EQ(m.match_left[1], -1);
  EXPECT_EQ(m.match_right[1], -1);
}

TEST(MatchingTest, EmptyGraph) {
  BipartiteGraph g(0, 0);
  EXPECT_EQ(MaxBipartiteMatching(g).size, 0);
}

TEST(MatchingTest, MatchingIsConsistent) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> d(0, 9);
  for (int round = 0; round < 20; ++round) {
    BipartiteGraph g(10, 10);
    for (int i = 0; i < 25; ++i) g.AddEdge(d(rng), d(rng));
    auto m = MaxBipartiteMatching(g);
    int count = 0;
    for (int l = 0; l < 10; ++l) {
      if (m.match_left[l] != -1) {
        EXPECT_EQ(m.match_right[m.match_left[l]], l);
        ++count;
      }
    }
    EXPECT_EQ(count, m.size);
  }
}

TEST(SatTest, TrivialSatisfiable) {
  ClausalFormula f;
  f.num_vars = 1;
  f.clauses = {{Literal::Pos(0)}};
  auto a = SolveSat(f);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE((*a)[0]);
}

TEST(SatTest, TrivialUnsatisfiable) {
  ClausalFormula f;
  f.num_vars = 1;
  f.clauses = {{Literal::Pos(0)}, {Literal::Neg(0)}};
  EXPECT_FALSE(IsSatisfiable(f));
}

TEST(SatTest, UnitPropagationChain) {
  // x0, (-x0 v x1), (-x1 v x2), -x2: UNSAT via pure propagation.
  ClausalFormula f;
  f.num_vars = 3;
  f.clauses = {{Literal::Pos(0)},
               {Literal::Neg(0), Literal::Pos(1)},
               {Literal::Neg(1), Literal::Pos(2)},
               {Literal::Neg(2)}};
  EXPECT_FALSE(IsSatisfiable(f));
}

TEST(SatTest, EmptyFormulaSatisfiable) {
  ClausalFormula f;
  f.num_vars = 3;
  EXPECT_TRUE(IsSatisfiable(f));
}

TEST(SatTest, Fig5CnfIsSatisfiable) {
  ClausalFormula f = PaperFig5Cnf();
  auto a = SolveSat(f);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(f.EvalCnf(*a));
}

TEST(SatTest, SolutionsSatisfyOnRandomFormulas) {
  std::mt19937 rng(11);
  for (int round = 0; round < 30; ++round) {
    ClausalFormula f = RandomClausalFormula(6, 10, 3, rng);
    auto a = SolveSat(f);
    if (a.has_value()) {
      EXPECT_TRUE(f.EvalCnf(*a));
    } else {
      // Exhaustive cross-check on 6 variables.
      for (int mask = 0; mask < 64; ++mask) {
        std::vector<bool> t(6);
        for (int i = 0; i < 6; ++i) t[i] = (mask >> i) & 1;
        EXPECT_FALSE(f.EvalCnf(t));
      }
    }
  }
}

TEST(DnfTest, SingleClauseNotTautology) {
  ClausalFormula f;
  f.num_vars = 1;
  f.clauses = {{Literal::Pos(0)}};
  EXPECT_FALSE(IsDnfTautology(f));
  auto cex = FindDnfCounterexample(f);
  ASSERT_TRUE(cex.has_value());
  EXPECT_FALSE(f.EvalDnf(*cex));
}

TEST(DnfTest, ComplementaryPairIsTautology) {
  ClausalFormula f;
  f.num_vars = 1;
  f.clauses = {{Literal::Pos(0)}, {Literal::Neg(0)}};
  EXPECT_TRUE(IsDnfTautology(f));
  EXPECT_FALSE(FindDnfCounterexample(f).has_value());
}

TEST(DnfTest, EmptyDnfIsNotTautology) {
  ClausalFormula f;
  f.num_vars = 2;
  EXPECT_FALSE(IsDnfTautology(f));
}

TEST(DnfTest, Fig5DnfIsNotTautology) {
  // x1 = x2 = false falsifies every conjunct of Fig. 5's DNF reading...
  ClausalFormula f = PaperFig5Dnf();
  bool taut = IsDnfTautology(f);
  // Cross-check exhaustively.
  bool expect = true;
  for (int mask = 0; mask < 32 && expect; ++mask) {
    std::vector<bool> t(5);
    for (int i = 0; i < 5; ++i) t[i] = (mask >> i) & 1;
    if (!f.EvalDnf(t)) expect = false;
  }
  EXPECT_EQ(taut, expect);
}

TEST(DnfTest, AgreesWithExhaustiveOnRandom) {
  std::mt19937 rng(13);
  for (int round = 0; round < 30; ++round) {
    ClausalFormula f = RandomClausalFormula(5, 6, 3, rng);
    bool expect = true;
    for (int mask = 0; mask < 32 && expect; ++mask) {
      std::vector<bool> t(5);
      for (int i = 0; i < 5; ++i) t[i] = (mask >> i) & 1;
      if (!f.EvalDnf(t)) expect = false;
    }
    EXPECT_EQ(IsDnfTautology(f), expect) << f.ToString(false);
  }
}

TEST(QbfTest, NoUniversalsReducesToSat) {
  ForallExistsCnf fe;
  fe.num_forall = 0;
  fe.formula.num_vars = 2;
  fe.formula.clauses = {{Literal::Pos(0), Literal::Pos(1)}};
  EXPECT_TRUE(SolveForallExists(fe));
}

TEST(QbfTest, UniversalContradiction) {
  // forall x0 : x0 — false (x0 = false refutes).
  ForallExistsCnf fe;
  fe.num_forall = 1;
  fe.formula.num_vars = 1;
  fe.formula.clauses = {{Literal::Pos(0)}};
  EXPECT_FALSE(SolveForallExists(fe));
  auto cex = FindForallCounterexample(fe);
  ASSERT_TRUE(cex.has_value());
  EXPECT_FALSE((*cex)[0]);
}

TEST(QbfTest, ExistentialRepair) {
  // forall x0 exists x1 : (x0 v x1) ^ (-x0 v -x1) — true (x1 = -x0).
  ForallExistsCnf fe;
  fe.num_forall = 1;
  fe.formula.num_vars = 2;
  fe.formula.clauses = {{Literal::Pos(0), Literal::Pos(1)},
                        {Literal::Neg(0), Literal::Neg(1)}};
  EXPECT_TRUE(SolveForallExists(fe));
}

TEST(QbfTest, Fig5InstanceAgreesWithExhaustive) {
  ForallExistsCnf fe = PaperFig5ForallExists();
  bool expect = true;
  for (int xmask = 0; xmask < 4 && expect; ++xmask) {
    bool some = false;
    for (int ymask = 0; ymask < 8 && !some; ++ymask) {
      std::vector<bool> t(5);
      t[0] = xmask & 1;
      t[1] = (xmask >> 1) & 1;
      for (int i = 0; i < 3; ++i) t[2 + i] = (ymask >> i) & 1;
      if (fe.formula.EvalCnf(t)) some = true;
    }
    if (!some) expect = false;
  }
  EXPECT_EQ(SolveForallExists(fe), expect);
}

TEST(QbfTest, AgreesWithExhaustiveOnRandom) {
  std::mt19937 rng(17);
  for (int round = 0; round < 20; ++round) {
    ForallExistsCnf fe = RandomForallExists(3, 3, 5, rng);
    bool expect = true;
    for (int xmask = 0; xmask < 8 && expect; ++xmask) {
      bool some = false;
      for (int ymask = 0; ymask < 8 && !some; ++ymask) {
        std::vector<bool> t(6);
        for (int i = 0; i < 3; ++i) t[i] = (xmask >> i) & 1;
        for (int i = 0; i < 3; ++i) t[3 + i] = (ymask >> i) & 1;
        if (fe.formula.EvalCnf(t)) some = true;
      }
      if (!some) expect = false;
    }
    EXPECT_EQ(SolveForallExists(fe), expect);
  }
}

TEST(ColoringTest, TriangleIsThreeColorable) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  EXPECT_TRUE(IsThreeColorable(g));
  EXPECT_FALSE(ColorGraph(g, 2).has_value());
}

TEST(ColoringTest, K4IsNotThreeColorable) {
  Graph g(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) g.AddEdge(a, b);
  }
  EXPECT_FALSE(IsThreeColorable(g));
  EXPECT_TRUE(ColorGraph(g, 4).has_value());
}

TEST(ColoringTest, SelfLoopNeverColorable) {
  Graph g(1);
  g.AddEdge(0, 0);
  EXPECT_FALSE(IsThreeColorable(g));
}

TEST(ColoringTest, PaperFig4aIsThreeColorable) {
  Graph g = Graph::PaperFig4a();
  auto coloring = ColorGraph(g, 3);
  ASSERT_TRUE(coloring.has_value());
  for (const auto& [a, b] : g.edges()) {
    EXPECT_NE((*coloring)[a], (*coloring)[b]);
  }
}

TEST(ColoringTest, ColoringsAreProperOnRandom) {
  std::mt19937 rng(19);
  for (int round = 0; round < 20; ++round) {
    Graph g = RandomGraph(8, 0.4, rng);
    auto coloring = ColorGraph(g, 3);
    if (coloring.has_value()) {
      for (const auto& [a, b] : g.edges()) {
        EXPECT_NE((*coloring)[a], (*coloring)[b]);
      }
    }
  }
}

TEST(ColoringTest, PlantedGraphsAlwaysColorable) {
  std::mt19937 rng(23);
  for (int round = 0; round < 10; ++round) {
    Graph g = RandomThreeColorableGraph(10, 0.5, rng);
    EXPECT_TRUE(IsThreeColorable(g));
  }
}

TEST(GraphTest, AdjacencyListsBothDirections) {
  Graph g(3);
  g.AddEdge(0, 1);
  auto adj = g.AdjacencyLists();
  EXPECT_EQ(adj[0], (std::vector<int>{1}));
  EXPECT_EQ(adj[1], (std::vector<int>{0}));
  EXPECT_TRUE(adj[2].empty());
}

TEST(CnfFormulaTest, EvalCnfAndDnfDiffer) {
  ClausalFormula f = PaperFig5Cnf();
  std::vector<bool> all_true(5, true);
  // CNF reading: clause 5 = (-x1 v -x2 v -x5) is falsified by all-true.
  EXPECT_FALSE(f.EvalCnf(all_true));
  // DNF reading: conjunct 1 = x1 ^ x2 ^ x3 is satisfied by all-true.
  EXPECT_TRUE(f.EvalDnf(all_true));
}

TEST(CnfFormulaTest, IsThree) {
  EXPECT_TRUE(PaperFig5Cnf().IsThree());
  ClausalFormula f;
  f.num_vars = 1;
  f.clauses = {{Literal::Pos(0)}};
  EXPECT_FALSE(f.IsThree());
}

}  // namespace
}  // namespace pw
