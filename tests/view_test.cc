// Tests for the View abstraction and the world-CSP helpers.

#include <gtest/gtest.h>

#include "decision/view.h"
#include "decision/world_csp.h"
#include "tables/ctable.h"

namespace pw {
namespace {

TEST(ViewTest, IdentityEval) {
  Instance i({Relation(1, {{1}})});
  EXPECT_EQ(View::Identity().Eval(i), i);
  EXPECT_TRUE(View::Identity().is_identity());
  EXPECT_TRUE(View::Identity().IsPositiveExistential());
}

TEST(ViewTest, RaEvalAndFragment) {
  View q = View::Ra({RaExpr::ProjectCols(RaExpr::Rel(0, 2), {1})});
  Instance i({Relation(2, {{1, 2}, {3, 4}})});
  EXPECT_EQ(q.Eval(i).relation(0), Relation(1, {{2}, {4}}));
  EXPECT_TRUE(q.IsPositiveExistential());
  View diff = View::Ra(
      {RaExpr::Diff(RaExpr::Rel(0, 1), RaExpr::ConstRel(Relation(1, {{1}})))});
  EXPECT_FALSE(diff.IsPositiveExistential(/*allow_neq=*/true));
}

TEST(ViewTest, DatalogEvalProjectsOutputs) {
  DatalogProgram p({1, 1}, 1);
  DatalogRule copy;
  copy.head = {1, Tuple{V(0)}};
  copy.body = {{0, Tuple{V(0)}}};
  p.AddRule(copy);
  View q = View::Datalog(p, {1});
  Instance i({Relation(1, {{7}})});
  Instance out = q.Eval(i);
  EXPECT_EQ(out.num_relations(), 1u);
  EXPECT_EQ(out.relation(0), Relation(1, {{7}}));
  EXPECT_FALSE(q.IsPositiveExistential());
}

TEST(ViewTest, ConstantsCollected) {
  View q = View::Ra({RaExpr::Project(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Eq(ColOrConst::Col(0),
                                     ColOrConst::Const(42))}),
      {ColOrConst::Const(7)})});
  EXPECT_EQ(q.Constants(), (std::vector<ConstId>{7, 42}));
  EXPECT_TRUE(View::Identity().Constants().empty());

  DatalogProgram p({1, 1}, 1);
  DatalogRule r;
  r.head = {1, Tuple{V(0)}};
  r.body = {{0, Tuple{V(0)}}, {0, Tuple{C(9)}}};
  p.AddRule(r);
  EXPECT_EQ(View::Datalog(p, {1}).Constants(), (std::vector<ConstId>{9}));
}

TEST(ViewTest, ConstRelConstantsCollected) {
  View q = View::Ra({RaExpr::ConstRel(Relation(1, {{5}, {6}}))});
  EXPECT_EQ(q.Constants(), (std::vector<ConstId>{5, 6}));
}

TEST(WorldCspTest, ExistsWorldOtherThanDetectsExtraFact) {
  // Row (x): every singleton is a world, so another world always exists.
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  EXPECT_TRUE(
      ExistsWorldOtherThan(CDatabase{t}, Instance({Relation(1, {{1}})})));
}

TEST(WorldCspTest, ExistsWorldOtherThanGroundSingleton) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  EXPECT_FALSE(
      ExistsWorldOtherThan(CDatabase{t}, Instance({Relation(1, {{1}})})));
  EXPECT_TRUE(
      ExistsWorldOtherThan(CDatabase{t}, Instance({Relation(1, {{2}})})));
}

TEST(WorldCspTest, ExistsWorldOtherThanViaMissingFact) {
  // Row (1) :: u = 1: the empty world differs from {(1)}.
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1))});
  EXPECT_TRUE(
      ExistsWorldOtherThan(CDatabase{t}, Instance({Relation(1, {{1}})})));
}

TEST(WorldCspTest, ShapeMismatchCountsAsDifferent) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  EXPECT_TRUE(ExistsWorldOtherThan(CDatabase{t}, Instance({Relation(2)})));
  EXPECT_TRUE(ExistsWorldOtherThan(CDatabase{t}, Instance({})));
}

TEST(WorldCspTest, MissingFactBasics) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.AddRow(Tuple{V(0)}, Conjunction{Neq(V(0), C(2))});
  CDatabase db{t};
  // (1) is produced by the ground row in every world.
  EXPECT_FALSE(ExistsWorldMissingFact(db, 0, Fact{1}));
  // (3) is missed whenever x != 3.
  EXPECT_TRUE(ExistsWorldMissingFact(db, 0, Fact{3}));
  // (2): the conditioned row can never produce it (x != 2), and the ground
  // row is 1 — always missing.
  EXPECT_TRUE(ExistsWorldMissingFact(db, 0, Fact{2}));
}

TEST(WorldCspTest, MissingFactEmptyRep) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{FalseAtom()});
  EXPECT_FALSE(ExistsWorldMissingFact(CDatabase{t}, 0, Fact{2}));
}

TEST(WorldCspTest, MissingFactForcedCoverThroughGlobal) {
  // Row (x) with global x = 4: (4) never missing, (5) always missing.
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.SetGlobal(Conjunction{Eq(V(0), C(4))});
  CDatabase db{t};
  EXPECT_FALSE(ExistsWorldMissingFact(db, 0, Fact{4}));
  EXPECT_TRUE(ExistsWorldMissingFact(db, 0, Fact{5}));
}

}  // namespace
}  // namespace pw
