// Tests for whole-answer-set computation: possible and certain answers over
// the input constant domain, cross-validated against world enumeration.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "decision/answer_sets.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(AnswerSetsTest, IdentityOnGTable) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.AddRow(Tuple{V(0)});
  t.SetGlobal(Conjunction{Neq(V(0), C(2))});
  CDatabase db{t};
  Instance possible = PossibleAnswers(View::Identity(), db);
  // Ground possible answers over the domain {1, 2}: (1); (2) is forbidden.
  EXPECT_EQ(possible.relation(0), Relation(1, {{1}}));
  Instance certain = CertainAnswers(View::Identity(), db);
  EXPECT_EQ(certain.relation(0), Relation(1, {{1}}));
}

TEST(AnswerSetsTest, ConditionalRowsDifferentiate) {
  // Rows (1) :: u = 5 and (2) :: true over domain {1, 2, 5}.
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(5))});
  t.AddRow(Tuple{C(2)});
  CDatabase db{t};
  Instance possible = PossibleAnswers(View::Identity(), db);
  EXPECT_EQ(possible.relation(0), Relation(1, {{1}, {2}}));
  Instance certain = CertainAnswers(View::Identity(), db);
  EXPECT_EQ(certain.relation(0), Relation(1, {{2}}));
}

TEST(AnswerSetsTest, RaViewAnswers) {
  // q = pi_0(sigma_{#1 = 3}(R)) on {(1, x), (2, 3)}.
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{C(2), C(3)});
  CDatabase db{t};
  View q = View::Ra({RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Eq(ColOrConst::Col(1),
                                     ColOrConst::Const(3))}),
      {0})});
  Instance possible = PossibleAnswers(q, db);
  EXPECT_EQ(possible.relation(0), Relation(1, {{1}, {2}}));
  Instance certain = CertainAnswers(q, db);
  EXPECT_EQ(certain.relation(0), Relation(1, {{2}}));
}

TEST(AnswerSetsTest, DatalogViewAnswers) {
  DatalogProgram tc({2, 2}, 1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  tc.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(100), V(102)}};
  step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
  tc.AddRule(step);
  View q = View::Datalog(tc, {1});

  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{V(0), C(3)});
  CDatabase db{t};
  Instance certain = CertainAnswers(q, db);
  EXPECT_TRUE(certain.relation(0).Contains(Fact{1, 3}));
  Instance possible = PossibleAnswers(q, db);
  EXPECT_TRUE(possible.relation(0).Contains(Fact{1, 1}));   // x = 1
  EXPECT_FALSE(certain.relation(0).Contains(Fact{1, 1}));
}

TEST(AnswerSetsTest, FirstOrderViewFallsBackToEnumeration) {
  // q = R - {(1)} on {(x), (2)}: over domain {1, 2}, (2) is always an
  // answer; (1) never is (subtracted); over the domain nothing else.
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.AddRow(Tuple{C(2)});
  CDatabase db{t};
  View q = View::Ra(
      {RaExpr::Diff(RaExpr::Rel(0, 1), RaExpr::ConstRel(Relation(1, {{1}})))});
  Instance possible = PossibleAnswers(q, db);
  EXPECT_EQ(possible.relation(0), Relation(1, {{2}}));
  Instance certain = CertainAnswers(q, db);
  EXPECT_EQ(certain.relation(0), Relation(1, {{2}}));
}

TEST(AnswerSetsTest, EmptyRepCertainlyVacuous) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{FalseAtom()});
  CDatabase db{t};
  // No worlds: nothing possible; certainty vacuous over candidates.
  Instance possible = PossibleAnswers(View::Identity(), db);
  EXPECT_TRUE(possible.relation(0).empty());
}

// Oracle-based randomized validation.
class AnswerSetsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AnswerSetsPropertyTest, MatchEnumerationOracle) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options =
      testutil::SmallCTableOptions(/*arity=*/2, /*num_rows=*/3,
          /*num_constants=*/3, /*num_variables=*/2,
          /*num_local_atoms=*/GetParam() % 2,
          /*num_global_atoms=*/GetParam() % 2);
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};
  if (RepIsEmpty(db)) return;

  View view = View::Identity();
  Instance possible = PossibleAnswers(view, db);
  Instance certain = CertainAnswers(view, db);

  // Oracle over the same domain.
  std::set<ConstId> dom;
  for (ConstId c : db.Constants()) dom.insert(c);
  Relation oracle_possible(2);
  Relation oracle_certain(2);
  bool first = true;
  WorldEnumOptions wopts;
  ForEachWorld(db, wopts, [&](const Instance& world, const Valuation&) {
    Relation ground(2);
    for (const Fact& f : world.relation(0)) {
      bool in_dom = true;
      for (ConstId c : f) in_dom &= dom.count(c) > 0;
      if (in_dom) ground.Insert(f);
    }
    oracle_possible = oracle_possible.UnionWith(ground);
    if (first) {
      oracle_certain = ground;
      first = false;
    } else {
      Relation kept(2);
      for (const Fact& f : oracle_certain) {
        if (ground.Contains(f)) kept.Insert(f);
      }
      oracle_certain = kept;
    }
    return true;
  });
  EXPECT_EQ(possible.relation(0), oracle_possible) << t.ToString();
  EXPECT_EQ(certain.relation(0), oracle_certain) << t.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnswerSetsPropertyTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace pw
