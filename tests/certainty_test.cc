// Tests for the certainty problems CERT(k, q) / CERT(*, q) (Theorem 5.3):
// the PTIME DATALOG-on-g-tables algorithm, the coNP search, the
// factwise reduction of Proposition 2.1(6), and cross-validation.

#include <gtest/gtest.h>

#include <random>

#include "decision/certainty.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  DatalogRule base;
  base.head = {1, Tuple{V(0), V(1)}};
  base.body = {{0, Tuple{V(0), V(1)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(0), V(2)}};
  step.body = {{1, Tuple{V(0), V(1)}}, {0, Tuple{V(1), V(2)}}};
  p.AddRule(step);
  return p;
}

TEST(CertDatalogTest, CertainPathThroughNull) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{V(0), C(3)});
  CDatabase db{t};
  View q = View::Datalog(TransitiveClosure(), {1});
  EXPECT_EQ(CertDatalogGTables(q, db, {{0, {1, 3}}}), true);
  EXPECT_EQ(CertDatalogGTables(q, db, {{0, {1, 2}}}), false);
}

TEST(CertDatalogTest, IdentityViewOnGTable) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.AddRow(Tuple{V(0)});
  CDatabase db{t};
  EXPECT_EQ(CertDatalogGTables(View::Identity(), db, {{0, {1}}}), true);
  EXPECT_EQ(CertDatalogGTables(View::Identity(), db, {{0, {2}}}), false);
}

TEST(CertDatalogTest, EmptyRepVacuouslyCertain) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{FalseAtom()});
  CDatabase db{t};
  EXPECT_EQ(CertDatalogGTables(View::Identity(), db, {{0, {999}}}), true);
}

TEST(CertDatalogTest, RejectsCTables) {
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  EXPECT_FALSE(
      CertDatalogGTables(View::Identity(), db, {{0, {1}}}).has_value());
}

TEST(CertaintySearchTest, CTableConditionalFact) {
  // Row (1) with local u = 1 and row (1) with local u != 1: (1) is certain.
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1))});
  t.AddRow(Tuple{C(1)}, Conjunction{Neq(V(0), C(1))});
  CDatabase db{t};
  EXPECT_TRUE(CertaintySearch(View::Identity(), db, {{0, {1}}}));

  // A single conditioned row is not certain.
  CTable t2(1);
  t2.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db2{t2};
  EXPECT_FALSE(CertaintySearch(View::Identity(), db2, {{0, {1}}}));
}

TEST(CertaintyDispatcherTest, CTableImagePathAgreesWithSearch) {
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1))});
  t.AddRow(Tuple{C(1)}, Conjunction{Neq(V(0), C(1))});
  CDatabase db{t};
  EXPECT_TRUE(Certainty(View::Identity(), db, {{0, {1}}}));
  EXPECT_FALSE(Certainty(View::Identity(), db, {{0, {2}}}));
}

TEST(CertaintyTest, CertaintyImpliesPossibilityNotConverse) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.AddRow(Tuple{C(1)});
  CDatabase db{t};
  // (1) certain; (2) possible (x -> 2) but not certain.
  EXPECT_TRUE(Certainty(View::Identity(), db, {{0, {1}}}));
  EXPECT_FALSE(Certainty(View::Identity(), db, {{0, {2}}}));
}

TEST(CertaintyTest, FactwiseReductionAgrees) {
  std::mt19937 rng(31);
  for (int round = 0; round < 20; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/1, /*num_rows=*/3, /*num_constants=*/2, /*num_variables=*/2,
        /*num_local_atoms=*/1);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};
    std::vector<LocatedFact> pattern = {{0, {0}}, {0, {1}}};
    EXPECT_EQ(Certainty(View::Identity(), db, pattern),
              CertaintyFactwise(View::Identity(), db, pattern))
        << t.ToString();
  }
}

// --- Randomized cross-validation ------------------------------------------

bool CertainOracle(const View& view, const CDatabase& db,
                   const std::vector<LocatedFact>& pattern) {
  WorldEnumOptions options;
  for (const LocatedFact& lf : pattern) {
    for (ConstId c : lf.fact) options.extra_constants.push_back(c);
  }
  bool certain = true;
  ForEachWorld(db, options, [&](const Instance& world, const Valuation&) {
    if (!ContainsAll(view.Eval(world), pattern)) {
      certain = false;
      return false;
    }
    return true;
  });
  return certain;
}

class CertaintyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CertaintyPropertyTest, DispatcherAgreesWithOracle) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options = testutil::SmallCTableOptions(
      /*arity=*/2, /*num_rows=*/3, /*num_constants=*/3, /*num_variables=*/3,
      /*num_local_atoms=*/GetParam() % 2, /*num_global_atoms=*/GetParam() % 2);
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};

  std::uniform_int_distribution<int> c(0, 3);
  for (int round = 0; round < 6; ++round) {
    std::vector<LocatedFact> pattern = {{0, Fact{c(rng), c(rng)}}};
    EXPECT_EQ(Certainty(View::Identity(), db, pattern),
              CertainOracle(View::Identity(), db, pattern))
        << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertaintyPropertyTest,
                         ::testing::Range(1, 31));

TEST(CertDatalogAgreementTest, FastPathAgreesWithOracleOnGTables) {
  std::mt19937 rng(303);
  View q = View::Datalog(TransitiveClosure(), {1});
  for (int round = 0; round < 20; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3, /*num_constants=*/3, /*num_variables=*/2,
        /*num_local_atoms=*/0, /*num_global_atoms=*/round % 2);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};
    if (RepIsEmpty(db)) continue;
    std::uniform_int_distribution<int> c(0, 2);
    std::vector<LocatedFact> pattern = {{0, Fact{c(rng), c(rng)}}};
    auto fast = CertDatalogGTables(q, db, pattern);
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(*fast, CertainOracle(q, db, pattern)) << t.ToString();
  }
}

}  // namespace
}  // namespace pw
