// Tests for the shared tuple-index layer (tables/tuple_index.h): ground
// buckets vs the wildcard list, ordered candidate enumeration, the lazy
// stamped cache lifecycle, and the per-CTable cached index.

#include <gtest/gtest.h>

#include <vector>

#include "tables/ctable.h"
#include "tables/tuple_index.h"
#include "test_util.h"

namespace pw {
namespace {

TEST(TupleIndexTest, ProbesGroundRowsByKey) {
  TupleIndex index({0});
  index.Add(Tuple{C(1), C(2)}, 0);
  index.Add(Tuple{C(1), C(3)}, 1);
  index.Add(Tuple{C(2), C(4)}, 2);
  EXPECT_EQ(index.Probe(Tuple{C(1)}), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(index.Probe(Tuple{C(2)}), (std::vector<size_t>{2}));
  EXPECT_TRUE(index.Probe(Tuple{C(5)}).empty());
  EXPECT_TRUE(index.wildcard().empty());
}

TEST(TupleIndexTest, VariableInIndexedPositionGoesToWildcard) {
  // A null at an indexed column matches any key under a condition, so the
  // row must be a candidate of every probe.
  TupleIndex index({1});
  index.Add(Tuple{C(1), C(2)}, 0);
  index.Add(Tuple{C(1), V(0)}, 1);
  index.Add(Tuple{V(3), C(2)}, 2);  // variable in a non-indexed column: fine
  EXPECT_EQ(index.wildcard(), (std::vector<size_t>{1}));
  EXPECT_EQ(index.Probe(Tuple{C(2)}), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(index.Candidates(Tuple{C(2)}, 0, 3),
            (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(index.Candidates(Tuple{C(9)}, 0, 3), (std::vector<size_t>{1}));
}

TEST(TupleIndexTest, CandidatesClipToRangeAscending) {
  TupleIndex index({0});
  for (size_t i = 0; i < 6; ++i) {
    // Even ids ground on key 7, odd ids wildcard.
    index.Add(i % 2 == 0 ? Tuple{C(7)} : Tuple{V(0)}, i);
  }
  EXPECT_EQ(index.Candidates(Tuple{C(7)}, 0, 6),
            (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(index.Candidates(Tuple{C(7)}, 2, 5),
            (std::vector<size_t>{2, 3, 4}));
  EXPECT_EQ(index.Candidates(Tuple{C(8)}, 1, 4), (std::vector<size_t>{1, 3}));
}

TEST(TupleIndexTest, PrefixGroundRowsPruneOnTheirPrefix) {
  // Per-column wildcard granularity: a row ground on a prefix of the
  // indexed columns is filed under that prefix, so probes whose key prefix
  // differs never revisit it — only prefix-matching rows and rows with no
  // ground prefix stay candidates of every compatible probe.
  TupleIndex index({0, 1});
  index.Add(Tuple{C(1), C(2)}, 0);  // fully ground
  index.Add(Tuple{C(1), V(0)}, 1);  // ground prefix (1)
  index.Add(Tuple{C(2), V(1)}, 2);  // ground prefix (2)
  index.Add(Tuple{V(2), C(5)}, 3);  // no ground prefix
  EXPECT_EQ(index.wildcard(), (std::vector<size_t>{1, 2, 3}));
  EXPECT_EQ(index.Candidates(Tuple{C(1), C(2)}, 0, 4),
            (std::vector<size_t>{0, 1, 3}));
  EXPECT_EQ(index.Candidates(Tuple{C(1), C(9)}, 0, 4),
            (std::vector<size_t>{1, 3}));
  EXPECT_EQ(index.Candidates(Tuple{C(2), C(9)}, 0, 4),
            (std::vector<size_t>{2, 3}));
  EXPECT_EQ(index.Candidates(Tuple{C(3), C(9)}, 0, 4),
            (std::vector<size_t>{3}));
}

TEST(TupleIndexTest, PrefixGranularityStopsAtFirstVariable) {
  // Only the prefix before the first variable prunes: a ground column
  // *after* a variable cannot (the variable may take any value, and rows
  // are filed by their first variable position).
  TupleIndex index({0, 1, 2});
  index.Add(Tuple{C(1), V(0), C(2)}, 0);  // level 1, prefix (1)
  index.Add(Tuple{C(1), V(0), C(3)}, 1);  // level 1, prefix (1)
  EXPECT_EQ(index.Candidates(Tuple{C(1), C(7), C(2)}, 0, 2),
            (std::vector<size_t>{0, 1}));
  EXPECT_TRUE(index.Candidates(Tuple{C(2), C(7), C(2)}, 0, 2).empty());
}

TEST(TupleIndexTest, PrefixCandidatesClipToRangeAscending) {
  TupleIndex index({0, 1});
  for (size_t i = 0; i < 8; ++i) {
    // Cycle: ground on (7, 1), prefix-ground on (7), prefix-ground on (8),
    // prefix-less wildcard.
    switch (i % 4) {
      case 0: index.Add(Tuple{C(7), C(1)}, i); break;
      case 1: index.Add(Tuple{C(7), V(0)}, i); break;
      case 2: index.Add(Tuple{C(8), V(0)}, i); break;
      default: index.Add(Tuple{V(1), C(1)}, i); break;
    }
  }
  EXPECT_EQ(index.Candidates(Tuple{C(7), C(1)}, 0, 8),
            (std::vector<size_t>{0, 1, 3, 4, 5, 7}));
  EXPECT_EQ(index.Candidates(Tuple{C(7), C(1)}, 2, 6),
            (std::vector<size_t>{3, 4, 5}));
  EXPECT_EQ(index.Candidates(Tuple{C(8), C(9)}, 0, 8),
            (std::vector<size_t>{2, 3, 6, 7}));
}

TEST(TupleIndexTest, MultiColumnKeys) {
  TupleIndex index({0, 2});
  index.Add(Tuple{C(1), C(9), C(2)}, 0);
  index.Add(Tuple{C(1), C(8), C(2)}, 1);
  index.Add(Tuple{C(1), C(9), C(3)}, 2);
  EXPECT_EQ(index.Probe(Tuple{C(1), C(2)}), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(index.Probe(Tuple{C(1), C(3)}), (std::vector<size_t>{2}));
}

TEST(TupleIndexTest, IsGroundKey) {
  EXPECT_TRUE(TupleIndex::IsGroundKey(Tuple{C(1), C(2)}));
  EXPECT_TRUE(TupleIndex::IsGroundKey(Tuple{}));
  EXPECT_FALSE(TupleIndex::IsGroundKey(Tuple{C(1), V(0)}));
}

TEST(TupleIndexCacheTest, BuildsLazilyAndExtendsOnAppend) {
  std::vector<Tuple> rows = {Tuple{C(1), C(2)}, Tuple{C(1), C(3)}};
  auto tuple_of = [&rows](size_t i) -> const Tuple& { return rows[i]; };

  TupleIndexCache cache;
  const TupleIndex& index =
      cache.Get({0}, rows.size(), /*stamp=*/1, tuple_of);
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(index.num_rows_indexed(), 2u);

  // Same columns, unchanged rows: reused outright.
  cache.Get({0}, rows.size(), 1, tuple_of);
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().rows_indexed, 2u);

  // Appended rows extend the same index in place — counted as an extend,
  // never as a (re)build, so build counters cannot double-count a mid-query
  // catch-up.
  rows.push_back(Tuple{C(1), C(4)});
  const TupleIndex& extended = cache.Get({0}, rows.size(), 1, tuple_of);
  EXPECT_EQ(&extended, &index);
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().extends, 1u);
  EXPECT_EQ(extended.num_rows_indexed(), 3u);
  EXPECT_EQ(extended.Probe(Tuple{C(1)}), (std::vector<size_t>{0, 1, 2}));

  // A no-op Get (nothing appended) is neither a build nor an extend.
  cache.Get({0}, rows.size(), 1, tuple_of);
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().extends, 1u);

  // A second column subset is a second index (a build, not an extend).
  cache.Get({1}, rows.size(), 1, tuple_of);
  EXPECT_EQ(cache.num_indexes(), 2u);
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_EQ(cache.stats().extends, 1u);
}

TEST(TupleIndexCacheTest, StampChangeRebuilds) {
  std::vector<Tuple> rows = {Tuple{C(1)}, Tuple{C(2)}};
  auto tuple_of = [&rows](size_t i) -> const Tuple& { return rows[i]; };

  TupleIndexCache cache;
  cache.Get({0}, rows.size(), /*stamp=*/1, tuple_of);
  // The owner replaced its rows wholesale and bumped its stamp: the stale
  // index must be rebuilt, not extended — and the rebuild is one build,
  // not a build plus an extend for the re-indexed rows.
  rows = {Tuple{C(9)}};
  const TupleIndex& rebuilt = cache.Get({0}, rows.size(), 2, tuple_of);
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_EQ(cache.stats().extends, 0u);
  EXPECT_EQ(rebuilt.num_rows_indexed(), 1u);
  EXPECT_EQ(rebuilt.Probe(Tuple{C(9)}), (std::vector<size_t>{0}));
  EXPECT_TRUE(rebuilt.Probe(Tuple{C(1)}).empty());
}

TEST(TupleIndexCacheTest, ShrinkUnderSameStampRebuilds) {
  // An owner that dropped rows without bumping its stamp (an over-delete
  // that cleared and partially regrew its storage): extending would hand
  // out stale row ids past the new end, so the cache must rebuild from
  // scratch.
  std::vector<Tuple> rows = {Tuple{C(1)}, Tuple{C(2)}, Tuple{C(3)}};
  auto tuple_of = [&rows](size_t i) -> const Tuple& { return rows[i]; };

  TupleIndexCache cache;
  cache.Get({0}, rows.size(), /*stamp=*/1, tuple_of);
  EXPECT_EQ(cache.stats().builds, 1u);

  rows = {Tuple{C(5)}};
  const TupleIndex& rebuilt = cache.Get({0}, rows.size(), 1, tuple_of);
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_EQ(cache.stats().extends, 0u);
  EXPECT_EQ(rebuilt.num_rows_indexed(), 1u);
  EXPECT_EQ(rebuilt.Probe(Tuple{C(5)}), (std::vector<size_t>{0}));
  EXPECT_TRUE(rebuilt.Probe(Tuple{C(2)}).empty());
}

TEST(CTableIndexTest, ReplaceRowsRebuildsIndexes) {
  // ReplaceRows swaps the storage wholesale and bumps the stamp: cached
  // indexes must rebuild over the replacement rows.
  CTable t = testutil::MakeTable(2,
      std::vector<Tuple>{{C(1), C(2)}, {C(1), C(3)}});
  bool built = false, extended = false;
  t.Index({0}, &built, &extended);
  ASSERT_TRUE(built);

  std::vector<CRow> replacement;
  replacement.emplace_back(Tuple{C(7), C(8)});
  t.ReplaceRows(std::move(replacement));
  const TupleIndex& index = t.Index({0}, &built, &extended);
  EXPECT_TRUE(built);
  EXPECT_FALSE(extended);
  EXPECT_EQ(index.num_rows_indexed(), 1u);
  EXPECT_EQ(index.Probe(Tuple{C(7)}), (std::vector<size_t>{0}));
  EXPECT_TRUE(index.Probe(Tuple{C(1)}).empty());
}

TEST(CTableIndexTest, BuiltOnceAndReusedAcrossQueries) {
  CTable t = testutil::MakeTable(
      2, std::vector<Tuple>{{C(1), C(2)}, {C(2), C(3)}, {V(0), C(3)}});
  bool built = false;
  const TupleIndex& index = t.Index({0}, &built);
  EXPECT_TRUE(built);
  EXPECT_EQ(index.Probe(Tuple{C(2)}), (std::vector<size_t>{1}));
  EXPECT_EQ(index.wildcard(), (std::vector<size_t>{2}));

  const TupleIndex& again = t.Index({0}, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(&again, &index);
}

TEST(CTableIndexTest, AppendExtendsInPlace) {
  CTable t = testutil::MakeTable(2, std::vector<Tuple>{{C(1), C(2)}});
  bool built = false;
  bool extended = false;
  t.Index({0}, &built, &extended);
  EXPECT_TRUE(built);
  EXPECT_FALSE(extended);  // a fresh build is not also an extend
  t.AddRow(Tuple{C(1), C(9)});
  const TupleIndex& index = t.Index({0}, &built, &extended);
  EXPECT_FALSE(built);  // caught up incrementally, not rebuilt
  EXPECT_TRUE(extended);
  EXPECT_EQ(index.num_rows_indexed(), 2u);
  EXPECT_EQ(index.Probe(Tuple{C(1)}), (std::vector<size_t>{0, 1}));
  // Asking again with nothing appended reports neither.
  t.Index({0}, &built, &extended);
  EXPECT_FALSE(built);
  EXPECT_FALSE(extended);
}

TEST(CTableIndexTest, CopiesRebuildTheirOwnIndexes) {
  CTable t = testutil::MakeTable(2, std::vector<Tuple>{{C(1), C(2)}});
  t.Index({0});
  CTable copy = t;
  copy.AddRow(Tuple{C(1), C(3)});
  bool built = false;
  const TupleIndex& index = copy.Index({0}, &built);
  EXPECT_TRUE(built);  // the copy starts with no cache of its own
  EXPECT_EQ(index.Probe(Tuple{C(1)}), (std::vector<size_t>{0, 1}));
  // The original's index is untouched by the copy's growth.
  EXPECT_EQ(t.Index({0}).num_rows_indexed(), 1u);
}

TEST(CTableIndexTest, NormalizedTableIndexesItsOwnRows) {
  // Normalized() replaces rows wholesale (substituting forced equalities);
  // its table must index the substituted tuples, not the originals.
  CTable t = testutil::MakeTable(1, std::vector<Tuple>{{V(0)}, {C(2)}});
  t.SetGlobal(Conjunction{Eq(V(0), C(1))});
  t.Index({0});  // heat the original's cache
  CTable normalized = t.Normalized();
  const TupleIndex& index = normalized.Index({0});
  EXPECT_TRUE(index.wildcard().empty());
  EXPECT_EQ(index.Probe(Tuple{C(1)}), (std::vector<size_t>{0}));
}

}  // namespace
}  // namespace pw
