// Cross-validation of every hardness reduction in the paper: the generated
// decision-problem instance must answer exactly as the brute-force solver
// answers the source problem.

#include <gtest/gtest.h>

#include <random>

#include "decision/certainty.h"
#include "decision/containment.h"
#include "decision/membership.h"
#include "decision/possibility.h"
#include "decision/uniqueness.h"
#include "reductions/colorability.h"
#include "reductions/datalog_gadget.h"
#include "reductions/forall_exists.h"
#include "reductions/satisfiability.h"
#include "reductions/tautology.h"
#include "solvers/dnf_tautology.h"
#include "solvers/graph_color.h"
#include "solvers/qbf.h"
#include "solvers/sat.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

// === Theorem 3.1: membership ==============================================

class ColorabilityMembershipTest : public ::testing::TestWithParam<int> {};

TEST_P(ColorabilityMembershipTest, ETableReductionAgreesWithSolver) {
  std::mt19937 rng(GetParam());
  Graph g = (GetParam() % 3 == 0) ? RandomThreeColorableGraph(6, 0.5, rng)
                                  : RandomGraph(6, 0.45, rng);
  MembershipInstance inst = ColorabilityToETableMembership(g);
  EXPECT_EQ(MembershipSearch(inst.database, inst.instance),
            IsThreeColorable(g))
      << g.ToString();
}

TEST_P(ColorabilityMembershipTest, ITableReductionAgreesWithSolver) {
  std::mt19937 rng(GetParam() + 100);
  Graph g = (GetParam() % 3 == 0) ? RandomThreeColorableGraph(6, 0.5, rng)
                                  : RandomGraph(6, 0.45, rng);
  MembershipInstance inst = ColorabilityToITableMembership(g);
  EXPECT_EQ(MembershipSearch(inst.database, inst.instance),
            IsThreeColorable(g))
      << g.ToString();
}

TEST_P(ColorabilityMembershipTest, ViewReductionAgreesWithSolver) {
  // The "no" side of this reduction is the NP-hardness engine of Theorem
  // 3.1(4); exact refutation on the view image explodes quickly, so keep
  // the random graphs at 4 nodes (K4, the worst case, is covered below).
  std::mt19937 rng(GetParam() + 200);
  Graph g = (GetParam() % 3 == 0) ? RandomThreeColorableGraph(4, 0.5, rng)
                                  : RandomGraph(4, 0.5, rng);
  if (g.num_edges() == 0) return;  // degenerate: no R rows
  MembershipInstance inst = ColorabilityToViewMembership(g);
  EXPECT_EQ(MembershipInView(inst.view, inst.database, inst.instance),
            IsThreeColorable(g))
      << g.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColorabilityMembershipTest,
                         ::testing::Range(1, 16));

TEST(ColorabilityMembershipTest, PaperFig4Examples) {
  Graph g = Graph::PaperFig4a();  // 3-colorable
  ASSERT_TRUE(IsThreeColorable(g));
  MembershipInstance e = ColorabilityToETableMembership(g);
  EXPECT_TRUE(MembershipSearch(e.database, e.instance));
  MembershipInstance i = ColorabilityToITableMembership(g);
  EXPECT_TRUE(MembershipSearch(i.database, i.instance));
  MembershipInstance v = ColorabilityToViewMembership(g);
  EXPECT_TRUE(MembershipInView(v.view, v.database, v.instance));
}

TEST(ColorabilityMembershipTest, K4IsRejectedEverywhere) {
  Graph k4(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) k4.AddEdge(a, b);
  }
  ASSERT_FALSE(IsThreeColorable(k4));
  MembershipInstance e = ColorabilityToETableMembership(k4);
  EXPECT_FALSE(MembershipSearch(e.database, e.instance));
  MembershipInstance i = ColorabilityToITableMembership(k4);
  EXPECT_FALSE(MembershipSearch(i.database, i.instance));
  MembershipInstance v = ColorabilityToViewMembership(k4);
  EXPECT_FALSE(MembershipInView(v.view, v.database, v.instance));
}

TEST(ColorabilityMembershipTest, GeneratedShapesMatchPaper) {
  Graph g = Graph::PaperFig4a();
  MembershipInstance e = ColorabilityToETableMembership(g);
  EXPECT_EQ(e.database.table(0).num_rows(), 6u + g.num_edges());
  EXPECT_EQ(e.instance.relation(0).size(), 6u);
  MembershipInstance i = ColorabilityToITableMembership(g);
  EXPECT_EQ(i.database.table(0).num_rows(),
            3u + static_cast<size_t>(g.num_nodes()));
  EXPECT_EQ(i.database.table(0).global().size(), g.num_edges());
  MembershipInstance v = ColorabilityToViewMembership(g);
  EXPECT_EQ(v.database.table(0).num_rows(), g.num_edges());
  EXPECT_EQ(v.database.table(1).num_rows(), 6u);
}

// === Theorem 3.2: uniqueness ==============================================

class TautologyUniquenessTest : public ::testing::TestWithParam<int> {};

TEST_P(TautologyUniquenessTest, CTableReductionAgreesWithSolver) {
  std::mt19937 rng(GetParam());
  // Small formulas; tautologies are rare at random, so also plant
  // complementary-pair tautologies.
  ClausalFormula dnf = RandomClausalFormula(4, 4, 3, rng);
  if (GetParam() % 3 == 0) {
    dnf.clauses.push_back({Literal::Pos(0), Literal::Pos(1), Literal::Pos(2)});
    dnf.clauses.push_back({Literal::Neg(0), Literal::Pos(1), Literal::Pos(2)});
    dnf.clauses.push_back({Literal::Neg(1), Literal::Pos(2)});
    dnf.clauses.push_back({Literal::Neg(2)});
  }
  UniquenessInstance inst = TautologyToCTableUniqueness(dnf);
  EXPECT_EQ(UniquenessSearch(inst.view, inst.database, inst.instance),
            IsDnfTautology(dnf))
      << dnf.ToString(false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TautologyUniquenessTest,
                         ::testing::Range(1, 16));

class NonColorabilityUniquenessTest : public ::testing::TestWithParam<int> {};

TEST_P(NonColorabilityUniquenessTest, ViewReductionAgreesWithSolver) {
  std::mt19937 rng(GetParam() + 300);
  Graph g = (GetParam() % 3 == 0) ? RandomThreeColorableGraph(5, 0.6, rng)
                                  : RandomGraph(5, 0.6, rng);
  if (g.num_edges() == 0) return;  // paper assumes a non-empty graph
  UniquenessInstance inst = NonColorabilityToViewUniqueness(g);
  EXPECT_EQ(UniquenessSearch(inst.view, inst.database, inst.instance),
            !IsThreeColorable(g))
      << g.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonColorabilityUniquenessTest,
                         ::testing::Range(1, 16));

// === Theorem 4.2: containment =============================================

class ForallExistsContainmentTest : public ::testing::TestWithParam<int> {};

TEST_P(ForallExistsContainmentTest, TableInITableAgreesWithSolver) {
  std::mt19937 rng(GetParam());
  ForallExistsCnf qbf = RandomForallExists(2, 2, 3, rng);
  ContainmentInstance inst = ForallExistsToTableInITable(qbf);
  EXPECT_EQ(Containment(inst.lhs_view, inst.lhs, inst.rhs_view, inst.rhs),
            SolveForallExists(qbf))
      << qbf.formula.ToString(true);
}

TEST_P(ForallExistsContainmentTest, TableInViewAgreesWithSolver) {
  std::mt19937 rng(GetParam() + 400);
  ForallExistsCnf qbf = RandomForallExists(2, 2, 2, rng);
  ContainmentInstance inst = ForallExistsToTableInViewOfTables(qbf);
  EXPECT_EQ(Containment(inst.lhs_view, inst.lhs, inst.rhs_view, inst.rhs),
            SolveForallExists(qbf))
      << qbf.formula.ToString(true);
}

TEST_P(ForallExistsContainmentTest, ViewInETablesAgreesWithSolver) {
  std::mt19937 rng(GetParam() + 500);
  ForallExistsCnf qbf = RandomForallExists(2, 2, 2, rng);
  ContainmentInstance inst = ForallExistsToViewOfTablesInETables(qbf);
  EXPECT_EQ(Containment(inst.lhs_view, inst.lhs, inst.rhs_view, inst.rhs),
            SolveForallExists(qbf))
      << qbf.formula.ToString(true);
}

TEST_P(ForallExistsContainmentTest, CTableInETablesAgreesWithSolver) {
  std::mt19937 rng(GetParam() + 600);
  ForallExistsCnf qbf = RandomForallExists(2, 2, 2, rng);
  ContainmentInstance inst = ForallExistsToCTableInETables(qbf);
  EXPECT_EQ(Containment(inst.lhs_view, inst.lhs, inst.rhs_view, inst.rhs),
            SolveForallExists(qbf))
      << qbf.formula.ToString(true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForallExistsContainmentTest,
                         ::testing::Range(1, 11));

TEST(ForallExistsContainmentTest, PaperFig5Instance) {
  ForallExistsCnf qbf = PaperFig5ForallExists();
  bool expected = SolveForallExists(qbf);
  ContainmentInstance inst = ForallExistsToTableInITable(qbf);
  EXPECT_EQ(Containment(inst.lhs_view, inst.lhs, inst.rhs_view, inst.rhs),
            expected);
}

class TautologyContainmentTest : public ::testing::TestWithParam<int> {};

TEST_P(TautologyContainmentTest, ViewInTableAgreesWithSolver) {
  std::mt19937 rng(GetParam() + 700);
  ClausalFormula dnf = RandomClausalFormula(3, 3, 3, rng);
  if (GetParam() % 3 == 0) {
    dnf.clauses.push_back({Literal::Pos(0)});
    dnf.clauses.push_back({Literal::Neg(0)});
  }
  ContainmentInstance inst = TautologyToViewInTableContainment(dnf);
  EXPECT_EQ(Containment(inst.lhs_view, inst.lhs, inst.rhs_view, inst.rhs),
            IsDnfTautology(dnf))
      << dnf.ToString(false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TautologyContainmentTest,
                         ::testing::Range(1, 11));

// === Theorem 5.1: unbounded possibility ===================================

class SatPossibilityTest : public ::testing::TestWithParam<int> {};

TEST_P(SatPossibilityTest, ETableReductionAgreesWithSolver) {
  std::mt19937 rng(GetParam());
  ClausalFormula cnf = RandomClausalFormula(4, 6, 3, rng);
  UnboundedPossibilityInstance inst = SatToETablePossibility(cnf);
  EXPECT_EQ(
      PossibilityUnbounded(View::Identity(), inst.database, inst.pattern),
      IsSatisfiable(cnf))
      << cnf.ToString(true);
}

TEST_P(SatPossibilityTest, ITableReductionAgreesWithSolver) {
  std::mt19937 rng(GetParam() + 800);
  ClausalFormula cnf = RandomClausalFormula(4, 6, 3, rng);
  UnboundedPossibilityInstance inst = SatToITablePossibility(cnf);
  EXPECT_EQ(
      PossibilityUnbounded(View::Identity(), inst.database, inst.pattern),
      IsSatisfiable(cnf))
      << cnf.ToString(true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatPossibilityTest, ::testing::Range(1, 16));

TEST(SatPossibilityTest, Fig5CnfInstances) {
  ClausalFormula cnf = PaperFig5Cnf();
  ASSERT_TRUE(IsSatisfiable(cnf));
  UnboundedPossibilityInstance e = SatToETablePossibility(cnf);
  EXPECT_TRUE(PossibilityUnbounded(View::Identity(), e.database, e.pattern));
  UnboundedPossibilityInstance i = SatToITablePossibility(cnf);
  EXPECT_TRUE(PossibilityUnbounded(View::Identity(), i.database, i.pattern));
}

// === Theorem 5.2(2)/5.3(2): first order possibility and certainty =========

class TautologyFoTest : public ::testing::TestWithParam<int> {};

TEST_P(TautologyFoTest, PossibilityAndCertaintyAgreeWithSolver) {
  // The exact procedures here enumerate valuations over the z_{i,k}
  // variables (3 per clause) — that is the point of the coNP lower bound —
  // so keep the formulas small.
  std::mt19937 rng(GetParam() + 900);
  ClausalFormula dnf = RandomClausalFormula(3, 2, 3, rng);
  if (GetParam() % 3 == 0) {
    // A fixed planted tautology of two one-literal conjuncts.
    dnf.clauses.clear();
    dnf.clauses.push_back({Literal::Pos(0)});
    dnf.clauses.push_back({Literal::Neg(0)});
  }
  TautologyFoInstance inst = TautologyToFirstOrderCertainty(dnf);
  bool tautology = IsDnfTautology(dnf);
  EXPECT_EQ(
      PossibilitySearch(inst.possible_view, inst.database, inst.pattern),
      !tautology)
      << dnf.ToString(false);
  EXPECT_EQ(CertaintySearch(inst.certain_view, inst.database, inst.pattern),
            tautology)
      << dnf.ToString(false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TautologyFoTest, ::testing::Range(1, 9));

// === Theorem 5.2(3): DATALOG possibility ==================================

class DatalogPossibilityTest : public ::testing::TestWithParam<int> {};

TEST_P(DatalogPossibilityTest, GadgetAgreesWithSolver) {
  std::mt19937 rng(GetParam() + 1000);
  ClausalFormula cnf = RandomClausalFormula(3, 3, 3, rng);
  DatalogPossibilityInstance inst = SatToDatalogPossibility(cnf);
  EXPECT_EQ(inst.view.datalog().Validate(), "");
  EXPECT_EQ(PossibilitySearch(inst.view, inst.database, inst.pattern),
            IsSatisfiable(cnf))
      << cnf.ToString(true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogPossibilityTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace pw
