// Sanity tests for the seeded random workload generators.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "solvers/graph_color.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(WorkloadTest, RandomGraphRespectsBounds) {
  std::mt19937 rng(1);
  Graph g = RandomGraph(10, 0.5, rng);
  EXPECT_EQ(g.num_nodes(), 10);
  std::set<std::pair<int, int>> seen;
  for (const auto& [a, b] : g.edges()) {
    EXPECT_GE(a, 0);
    EXPECT_LT(b, 10);
    EXPECT_NE(a, b);  // no self loops
    EXPECT_TRUE(seen.insert({a, b}).second);  // no duplicates
  }
}

TEST(WorkloadTest, RandomGraphEdgeProbabilityExtremes) {
  std::mt19937 rng(2);
  EXPECT_EQ(RandomGraph(8, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(RandomGraph(8, 1.0, rng).num_edges(), 28u);  // C(8,2)
}

TEST(WorkloadTest, PlantedGraphsAreThreeColorable) {
  std::mt19937 rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(IsThreeColorable(RandomThreeColorableGraph(9, 0.7, rng)));
  }
}

TEST(WorkloadTest, RandomFormulaShape) {
  std::mt19937 rng(4);
  ClausalFormula f = RandomClausalFormula(6, 12, 3, rng);
  EXPECT_EQ(f.num_vars, 6);
  EXPECT_EQ(f.clauses.size(), 12u);
  EXPECT_TRUE(f.IsThree());
  for (const Clause& c : f.clauses) {
    std::set<int> vars;
    for (const Literal& lit : c) {
      EXPECT_GE(lit.var, 0);
      EXPECT_LT(lit.var, 6);
      vars.insert(lit.var);
    }
    EXPECT_EQ(vars.size(), 3u);  // distinct variables within a clause
  }
}

TEST(WorkloadTest, NarrowFormulaAllowsRepeats) {
  std::mt19937 rng(5);
  // Fewer variables than clause width: generation must still terminate.
  ClausalFormula f = RandomClausalFormula(2, 4, 3, rng);
  EXPECT_EQ(f.clauses.size(), 4u);
}

TEST(WorkloadTest, ForallExistsSplit) {
  std::mt19937 rng(6);
  ForallExistsCnf fe = RandomForallExists(2, 3, 5, rng);
  EXPECT_EQ(fe.num_forall, 2);
  EXPECT_EQ(fe.formula.num_vars, 5);
}

TEST(WorkloadTest, RandomCTableRespectsOptions) {
  std::mt19937 rng(7);
  RandomCTableOptions options;
  options.arity = 3;
  options.num_rows = 5;
  options.num_constants = 2;
  options.num_variables = 2;
  options.num_global_atoms = 2;
  options.num_local_atoms = 1;
  CTable t = RandomCTable(options, rng);
  EXPECT_EQ(t.arity(), 3);
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.global().size(), 2u);
  for (ConstId c : t.Constants()) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 2);
  }
  for (VarId v : t.Variables()) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 2);
  }
}

TEST(WorkloadTest, ZeroVariableProbabilityGivesGroundTable) {
  std::mt19937 rng(8);
  RandomCTableOptions options;
  options.arity = 2;
  options.num_rows = 4;
  options.variable_probability = 0.0;
  CTable t = RandomCTable(options, rng);
  EXPECT_TRUE(t.IsGround());
}

TEST(WorkloadTest, RandomRelationWithinDomain) {
  std::mt19937 rng(9);
  Relation r = RandomRelation(2, 10, 3, rng);
  EXPECT_EQ(r.arity(), 2);
  EXPECT_LE(r.size(), 10u);  // duplicates collapse
  for (ConstId c : r.Constants()) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 3);
  }
}

TEST(WorkloadTest, SeedsAreDeterministic) {
  std::mt19937 a(42), b(42);
  Graph ga = RandomGraph(8, 0.5, a);
  Graph gb = RandomGraph(8, 0.5, b);
  EXPECT_EQ(ga.edges(), gb.edges());
}

}  // namespace
}  // namespace pw
