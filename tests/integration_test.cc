// Integration tests: cross-module consistency of the whole pipeline —
// parse -> query -> minimize -> decide — and the semantic relationships the
// paper states between the decision problems.

#include <gtest/gtest.h>

#include <random>

#include "decision/answer_sets.h"
#include "decision/certainty.h"
#include "decision/containment.h"
#include "decision/membership.h"
#include "decision/possibility.h"
#include "decision/uniqueness.h"
#include "ilalgebra/ctable_eval.h"
#include "tables/text_format.h"
#include "tables/updates.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

CTable SmallRandom(int seed) {
  std::mt19937 rng(seed);
  RandomCTableOptions options =
      testutil::SmallCTableOptions(/*arity=*/2, /*num_rows=*/3,
          /*num_constants=*/3, /*num_variables=*/2,
          /*num_local_atoms=*/seed % 2, /*num_global_atoms=*/seed % 2);
  return RandomCTable(options, rng);
}

class CrossProcedureTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossProcedureTest, EveryEnumeratedWorldIsAMember) {
  CDatabase db{SmallRandom(GetParam())};
  for (const Instance& w : EnumerateWorlds(db)) {
    EXPECT_TRUE(Membership(db, w));
  }
}

TEST_P(CrossProcedureTest, CertainImpliesPossible) {
  CDatabase db{SmallRandom(GetParam())};
  if (RepIsEmpty(db)) return;
  for (ConstId a = 0; a < 3; ++a) {
    for (ConstId b = 0; b < 3; ++b) {
      std::vector<LocatedFact> p = {{0, Fact{a, b}}};
      if (Certainty(View::Identity(), db, p)) {
        EXPECT_TRUE(Possibility(View::Identity(), db, p));
      }
    }
  }
}

TEST_P(CrossProcedureTest, AnswerSetsMatchPointQueries) {
  CDatabase db{SmallRandom(GetParam())};
  if (RepIsEmpty(db)) return;
  Instance possible = PossibleAnswers(View::Identity(), db);
  Instance certain = CertainAnswers(View::Identity(), db);
  std::vector<ConstId> dom = db.Constants();
  for (ConstId a : dom) {
    for (ConstId b : dom) {
      std::vector<LocatedFact> p = {{0, Fact{a, b}}};
      EXPECT_EQ(possible.relation(0).Contains(Fact{a, b}),
                Possibility(View::Identity(), db, p));
      EXPECT_EQ(certain.relation(0).Contains(Fact{a, b}),
                Certainty(View::Identity(), db, p));
    }
  }
}

TEST_P(CrossProcedureTest, UniquenessMeansOneWorld) {
  CDatabase db{SmallRandom(GetParam())};
  auto worlds = EnumerateWorlds(db);
  if (worlds.size() == 1) {
    EXPECT_TRUE(Uniqueness(View::Identity(), db, worlds[0]));
  }
  if (worlds.size() > 1) {
    for (const Instance& w : worlds) {
      EXPECT_FALSE(Uniqueness(View::Identity(), db, w));
    }
  }
}

TEST_P(CrossProcedureTest, SelfContainmentAlwaysHolds) {
  CDatabase db{SmallRandom(GetParam())};
  EXPECT_TRUE(Containment(View::Identity(), db, View::Identity(), db));
}

TEST_P(CrossProcedureTest, MinimizationInvisibleToDecisions) {
  CTable t = SmallRandom(GetParam());
  CDatabase before{t};
  CDatabase after{t.Minimized()};
  for (ConstId a = 0; a < 3; ++a) {
    std::vector<LocatedFact> p = {{0, Fact{a, (a + 1) % 3}}};
    EXPECT_EQ(Possibility(View::Identity(), before, p),
              Possibility(View::Identity(), after, p));
    EXPECT_EQ(Certainty(View::Identity(), before, p),
              Certainty(View::Identity(), after, p));
  }
}

TEST_P(CrossProcedureTest, DeleteMakesFactImpossible) {
  CTable t = SmallRandom(GetParam());
  Fact f{1, 2};
  CTable deleted = DeleteFact(t, f);
  CDatabase db{deleted};
  EXPECT_FALSE(Possibility(View::Identity(), db, {{0, f}}));
}

TEST_P(CrossProcedureTest, InsertMakesFactCertain) {
  CTable t = SmallRandom(GetParam());
  Fact f{1, 2};
  CTable inserted = InsertFact(t, f);
  CDatabase db{inserted};
  if (RepIsEmpty(db)) return;
  EXPECT_TRUE(Certainty(View::Identity(), db, {{0, f}}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossProcedureTest, ::testing::Range(1, 21));

TEST(PipelineTest, ParseQueryDecide) {
  // A parsed incomplete database, queried through the IL algebra, decided
  // with the dispatchers — the full user-facing pipeline.
  SymbolTable sym;
  auto parsed = ParseCDatabase(
      "# supplier database with an unknown city\n"
      "table arity 2\n"
      "global ?city != paris\n"
      "row acme london\n"
      "row initech ?city\n"
      "table arity 2\n"
      "row acme bolts\n"
      "row initech nuts\n",
      &sym);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  CDatabase db = *parsed.database;

  // q: suppliers located in london joined with their parts.
  ConstId london = *sym.Lookup("london");
  RaExpr suppliers = RaExpr::Rel(0, 2);
  RaExpr parts = RaExpr::Rel(1, 2);
  RaExpr q = RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Product(suppliers, parts),
                     {SelectAtom::Eq(ColOrConst::Col(1),
                                     ColOrConst::Const(london)),
                      SelectAtom::Eq(ColOrConst::Col(0),
                                     ColOrConst::Col(2))}),
      {0, 3});
  View view = View::Ra({q});

  ConstId acme = *sym.Lookup("acme");
  ConstId initech = *sym.Lookup("initech");
  ConstId bolts = *sym.Lookup("bolts");
  ConstId nuts = *sym.Lookup("nuts");

  // acme-bolts is certain; initech-nuts only possible (city unknown but
  // not paris).
  EXPECT_TRUE(Certainty(view, db, {{0, {acme, bolts}}}));
  EXPECT_TRUE(Possibility(view, db, {{0, {initech, nuts}}}));
  EXPECT_FALSE(Certainty(view, db, {{0, {initech, nuts}}}));

  // The image c-table agrees with the answer sets.
  Instance possible = PossibleAnswers(view, db);
  EXPECT_TRUE(possible.relation(0).Contains(Fact{acme, bolts}));
  EXPECT_TRUE(possible.relation(0).Contains(Fact{initech, nuts}));
  Instance certain = CertainAnswers(view, db);
  EXPECT_TRUE(certain.relation(0).Contains(Fact{acme, bolts}));
  EXPECT_FALSE(certain.relation(0).Contains(Fact{initech, nuts}));
}

TEST(PipelineTest, ViewContainmentBetweenQueries) {
  // A more selective query's worlds are contained in a less selective
  // one's.
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{C(2), V(1)});
  CDatabase db{t};
  View narrow = View::Ra({RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1))})});
  View wide = View::Ra({RaExpr::Rel(0, 2)});
  // Each narrow world is a subset of the corresponding wide world, but
  // containment asks for world-set inclusion: narrow worlds {(1,c)} are
  // also wide worlds only if some valuation produces exactly them — false
  // here (wide always has two facts). Check both directions honestly.
  EXPECT_FALSE(
      Containment(narrow, db, wide, db));
  // And a view is always contained in itself.
  EXPECT_TRUE(Containment(narrow, db, narrow, db));
}

}  // namespace
}  // namespace pw
