// Unit tests for condition/: atoms, conjunctions, the revertible binding
// environment, the atom-CNF solver and boolean formulas.

#include <gtest/gtest.h>

#include "condition/atom.h"
#include "condition/atom_cnf.h"
#include "condition/binding_env.h"
#include "condition/conjunction.h"
#include "condition/formula.h"
#include "condition/union_find.h"
#include "core/tuple.h"

namespace pw {
namespace {

TEST(AtomTest, NormalizationMakesEqSymmetric) {
  EXPECT_EQ(Eq(V(1), V(2)), Eq(V(2), V(1)));
  EXPECT_EQ(Neq(V(1), C(3)), Neq(C(3), V(1)));
}

TEST(AtomTest, TrivialityChecks) {
  EXPECT_TRUE(IsTriviallyTrue(Eq(C(1), C(1))));
  EXPECT_TRUE(IsTriviallyTrue(Eq(V(1), V(1))));
  EXPECT_TRUE(IsTriviallyTrue(Neq(C(1), C(2))));
  EXPECT_TRUE(IsTriviallyFalse(Eq(C(1), C(2))));
  EXPECT_TRUE(IsTriviallyFalse(Neq(V(1), V(1))));
  EXPECT_FALSE(IsTriviallyTrue(Eq(V(1), C(2))));
  EXPECT_FALSE(IsTriviallyFalse(Eq(V(1), C(2))));
}

TEST(AtomTest, TrueAndFalseAtoms) {
  EXPECT_TRUE(IsTriviallyTrue(TrueAtom()));
  EXPECT_TRUE(IsTriviallyFalse(FalseAtom()));
}

TEST(AtomTest, NegateFlips) {
  CondAtom a = Eq(V(1), C(2));
  EXPECT_FALSE(Negate(a).is_equality);
  EXPECT_EQ(Negate(Negate(a)), a);
}

TEST(AtomTest, VariablesDeduplicated) {
  EXPECT_EQ(AtomVariables(Eq(V(3), V(3))), (std::vector<VarId>{3}));
  EXPECT_EQ(AtomVariables(Eq(V(1), V(2))).size(), 2u);
  EXPECT_TRUE(AtomVariables(Eq(C(1), C(2))).empty());
}

TEST(UnionFindTest, BasicUnions) {
  UnionFind uf(4);
  EXPECT_FALSE(uf.Same(0, 1));
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_FALSE(uf.Union(0, 1));
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Same(0, 3));
}

TEST(UnionFindTest, AddGrows) {
  UnionFind uf(1);
  int id = uf.Add();
  EXPECT_EQ(id, 1);
  EXPECT_FALSE(uf.Same(0, 1));
}

TEST(ConjunctionTest, EmptyIsTautologyAndSatisfiable) {
  Conjunction c;
  EXPECT_TRUE(c.IsTautology());
  EXPECT_TRUE(c.Satisfiable());
}

TEST(ConjunctionTest, SatisfiabilityOverInfiniteDomain) {
  // x != y, x != 1, y != 1 is satisfiable (pick fresh constants).
  Conjunction c{Neq(V(0), V(1)), Neq(V(0), C(1)), Neq(V(1), C(1))};
  EXPECT_TRUE(c.Satisfiable());
}

TEST(ConjunctionTest, EqualityChainConflict) {
  Conjunction c{Eq(V(0), C(1)), Eq(V(0), V(1)), Eq(V(1), C(2))};
  EXPECT_FALSE(c.Satisfiable());
}

TEST(ConjunctionTest, DisequalityWithinClassConflict) {
  Conjunction c{Eq(V(0), V(1)), Neq(V(0), V(1))};
  EXPECT_FALSE(c.Satisfiable());
}

TEST(ConjunctionTest, ImpliesTransitiveEquality) {
  Conjunction c{Eq(V(0), V(1)), Eq(V(1), V(2))};
  EXPECT_TRUE(c.Implies(Eq(V(0), V(2))));
  EXPECT_FALSE(c.Implies(Eq(V(0), C(5))));
}

TEST(ConjunctionTest, ImpliesDisequalityViaConstants) {
  Conjunction c{Eq(V(0), C(1)), Eq(V(1), C(2))};
  EXPECT_TRUE(c.Implies(Neq(V(0), V(1))));
}

TEST(ConjunctionTest, UnsatisfiableImpliesEverything) {
  Conjunction c{FalseAtom()};
  EXPECT_TRUE(c.Implies(Eq(V(0), C(7))));
}

TEST(ConjunctionTest, ForcedConstants) {
  Conjunction c{Eq(V(0), C(3)), Eq(V(1), V(0)), Neq(V(2), C(9))};
  auto forced = c.ForcedConstants();
  EXPECT_EQ(forced.at(0), 3);
  EXPECT_EQ(forced.at(1), 3);
  EXPECT_EQ(forced.count(2), 0u);
}

TEST(ConjunctionTest, CanonicalSubstitution) {
  Conjunction c{Eq(V(2), V(5)), Eq(V(7), C(4))};
  auto canon = c.CanonicalSubstitution();
  EXPECT_EQ(canon.at(5), Term::Var(2));
  EXPECT_EQ(canon.at(2), Term::Var(2));
  EXPECT_EQ(canon.at(7), Term::Const(4));
}

TEST(ConjunctionTest, SubstituteRewritesAtoms) {
  Conjunction c{Eq(V(0), V(1)), Neq(V(1), C(3))};
  std::unordered_map<VarId, Term> sub{{1, Term::Const(3)}};
  Conjunction d = c.Substitute(sub);
  EXPECT_EQ(d.atoms()[0], Eq(V(0), C(3)));
  EXPECT_TRUE(IsTriviallyFalse(d.atoms()[1]));
}

TEST(ConjunctionTest, SimplifiedDropsTrivial) {
  Conjunction c{Eq(C(1), C(1)), Neq(V(0), C(2)), Eq(V(3), V(3))};
  EXPECT_EQ(c.Simplified().size(), 1u);
}

TEST(ConjunctionTest, VariablesAndConstants) {
  Conjunction c{Eq(V(4), C(9)), Neq(V(1), V(4))};
  EXPECT_EQ(c.Variables(), (std::vector<VarId>{1, 4}));
  EXPECT_EQ(c.Constants(), (std::vector<ConstId>{9}));
}

TEST(BindingEnvTest, EqualityPropagatesConstants) {
  BindingEnv env;
  EXPECT_TRUE(env.AssertEqual(V(0), V(1)));
  EXPECT_TRUE(env.AssertEqual(V(1), C(5)));
  EXPECT_EQ(env.ValueOf(V(0)), 5);
}

TEST(BindingEnvTest, DistinctConstantsConflict) {
  BindingEnv env;
  EXPECT_TRUE(env.AssertEqual(V(0), C(1)));
  EXPECT_FALSE(env.AssertEqual(V(0), C(2)));
}

TEST(BindingEnvTest, DisequalityBlocksMerge) {
  BindingEnv env;
  EXPECT_TRUE(env.AssertNotEqual(V(0), V(1)));
  EXPECT_FALSE(env.AssertEqual(V(0), V(1)));
}

TEST(BindingEnvTest, MergeBlocksDisequality) {
  BindingEnv env;
  EXPECT_TRUE(env.AssertEqual(V(0), V(1)));
  EXPECT_FALSE(env.AssertNotEqual(V(0), V(1)));
}

TEST(BindingEnvTest, TransitiveDisequalityConflict) {
  BindingEnv env;
  EXPECT_TRUE(env.AssertNotEqual(V(0), V(1)));
  EXPECT_TRUE(env.AssertEqual(V(0), V(2)));
  EXPECT_FALSE(env.AssertEqual(V(2), V(1)));
}

TEST(BindingEnvTest, RevertRestoresState) {
  BindingEnv env;
  size_t mark = env.Mark();
  EXPECT_TRUE(env.AssertEqual(V(0), C(1)));
  EXPECT_EQ(env.ValueOf(V(0)), 1);
  env.Revert(mark);
  EXPECT_EQ(env.ValueOf(V(0)), std::nullopt);
  EXPECT_TRUE(env.AssertEqual(V(0), C(2)));  // no stale conflict
}

TEST(BindingEnvTest, RevertRestoresDisequalities) {
  BindingEnv env;
  size_t mark = env.Mark();
  EXPECT_TRUE(env.AssertNotEqual(V(0), V(1)));
  env.Revert(mark);
  EXPECT_TRUE(env.AssertEqual(V(0), V(1)));
}

TEST(BindingEnvTest, NestedRevert) {
  BindingEnv env;
  EXPECT_TRUE(env.AssertEqual(V(0), V(1)));
  size_t mark = env.Mark();
  EXPECT_TRUE(env.AssertEqual(V(1), C(7)));
  EXPECT_TRUE(env.AssertNotEqual(V(2), C(7)));
  env.Revert(mark);
  EXPECT_TRUE(env.SameClass(V(0), V(1)));
  EXPECT_EQ(env.ValueOf(V(1)), std::nullopt);
  EXPECT_TRUE(env.AssertEqual(V(2), C(7)));
}

TEST(BindingEnvTest, CanEqualIsNonMutating) {
  BindingEnv env;
  EXPECT_TRUE(env.AssertNotEqual(V(0), V(1)));
  EXPECT_FALSE(env.CanEqual(V(0), V(1)));
  EXPECT_TRUE(env.CanEqual(V(0), V(2)));
  EXPECT_FALSE(env.SameClass(V(0), V(2)));  // unchanged
}

TEST(BindingEnvTest, DistinctConstantsNeverRecordDiseq) {
  BindingEnv env;
  EXPECT_TRUE(env.AssertNotEqual(C(1), C(2)));
  EXPECT_EQ(env.NumDisequalities(), 0u);
}

TEST(BindingEnvTest, AssertConjunction) {
  BindingEnv env;
  EXPECT_TRUE(env.Assert(Conjunction{Eq(V(0), V(1)), Neq(V(1), C(4))}));
  EXPECT_FALSE(env.AssertEqual(V(0), C(4)));
}

TEST(AtomCnfTest, EmptyCnfIsSatisfiable) {
  BindingEnv env;
  EXPECT_TRUE(SolveAtomCnf(env, {}));
}

TEST(AtomCnfTest, UnitClausesPropagate) {
  BindingEnv env;
  std::vector<AtomClause> clauses = {{Eq(V(0), C(1))}, {Eq(V(0), C(2))}};
  EXPECT_FALSE(SolveAtomCnf(env, clauses));
}

TEST(AtomCnfTest, BranchingFindsSolution) {
  BindingEnv env;
  // (x=1 or x=2) and (x!=1) -> x=2.
  std::vector<AtomClause> clauses = {{Eq(V(0), C(1)), Eq(V(0), C(2))},
                                     {Neq(V(0), C(1))}};
  EXPECT_TRUE(SolveAtomCnf(env, clauses));
}

TEST(AtomCnfTest, RespectsPreAssertedEnv) {
  BindingEnv env;
  ASSERT_TRUE(env.AssertEqual(V(0), C(1)));
  EXPECT_FALSE(SolveAtomCnf(env, {{Neq(V(0), C(1))}}));
  EXPECT_TRUE(SolveAtomCnf(env, {{Eq(V(0), C(1))}}));
}

TEST(AtomCnfTest, EnvRestoredAfterSolve) {
  BindingEnv env;
  EXPECT_TRUE(SolveAtomCnf(env, {{Eq(V(0), C(1))}}));
  EXPECT_EQ(env.ValueOf(V(0)), std::nullopt);
}

TEST(AtomCnfTest, TriviallyTrueAtomSatisfiesClause) {
  BindingEnv env;
  EXPECT_TRUE(SolveAtomCnf(env, {{Eq(C(1), C(1)), Eq(V(0), C(9))}}));
  EXPECT_FALSE(SolveAtomCnf(env, {{Eq(C(1), C(2))}}));
}

TEST(FormulaTest, TrueFalseAtoms) {
  EXPECT_TRUE(Formula::True().is_true());
  EXPECT_TRUE(Formula::False().is_false());
  EXPECT_TRUE(Formula::MakeAtom(Eq(C(1), C(1))).is_true());
  EXPECT_TRUE(Formula::MakeAtom(Eq(C(1), C(2))).is_false());
}

TEST(FormulaTest, AndOrShortCircuit) {
  Formula atom = Formula::MakeAtom(Eq(V(0), C(1)));
  EXPECT_TRUE(Formula::And(atom, Formula::False()).is_false());
  EXPECT_TRUE(Formula::Or(atom, Formula::True()).is_true());
}

TEST(FormulaTest, DnfOfConjunction) {
  Conjunction c{Eq(V(0), C(1)), Neq(V(1), C(2))};
  auto dnf = Formula::FromConjunction(c).ToDnf();
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_EQ(dnf[0].size(), 2u);
}

TEST(FormulaTest, DnfDistributesAndOverOr) {
  Formula f = Formula::And(
      Formula::Or(Formula::MakeAtom(Eq(V(0), C(1))),
                  Formula::MakeAtom(Eq(V(0), C(2)))),
      Formula::Or(Formula::MakeAtom(Eq(V(1), C(3))),
                  Formula::MakeAtom(Eq(V(1), C(4)))));
  EXPECT_EQ(f.ToDnf().size(), 4u);
}

TEST(FormulaTest, SatisfiabilityThroughDnf) {
  Formula unsat = Formula::And(Formula::MakeAtom(Eq(V(0), C(1))),
                               Formula::MakeAtom(Eq(V(0), C(2))));
  EXPECT_FALSE(unsat.Satisfiable());
  Formula sat = Formula::Or(unsat, Formula::MakeAtom(Eq(V(1), C(1))));
  EXPECT_TRUE(sat.Satisfiable());
}

TEST(FormulaTest, VariablesCollected) {
  Formula f = Formula::And(Formula::MakeAtom(Eq(V(3), C(1))),
                           Formula::MakeAtom(Neq(V(1), V(3))));
  EXPECT_EQ(f.Variables(), (std::vector<VarId>{1, 3}));
}

}  // namespace
}  // namespace pw
