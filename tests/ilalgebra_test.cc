// Unit and property tests for the Imielinski–Lipski algebra: the result of
// evaluating a positive existential query on a c-table must represent
// exactly the pointwise image of the input's worlds.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "ilalgebra/ctable_eval.h"
#include "ra/eval.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(IlAlgebraTest, RelCopiesRows) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  CDatabase db{t};
  auto out = EvalOnCTables(RaExpr::Rel(0, 2), db);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->row(0).tuple, (Tuple{C(1), V(0)}));
}

TEST(IlAlgebraTest, SelectOnVariableBecomesLocalCondition) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  CDatabase db{t};
  RaExpr e = RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Const(5))});
  auto out = EvalOnCTables(e, db);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->row(0).local().atoms()[0], Eq(V(0), C(5)));
}

TEST(IlAlgebraTest, SelectOnConstantsResolvesImmediately) {
  CTable t(2);
  t.AddRow(Tuple{C(1), C(2)});
  t.AddRow(Tuple{C(3), C(2)});
  CDatabase db{t};
  RaExpr e = RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1))});
  auto out = EvalOnCTables(e, db);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->num_rows(), 1u);  // mismatching row dropped outright
  EXPECT_TRUE(out->row(0).local().IsTautology());
}

TEST(IlAlgebraTest, ProductConjoinsLocals) {
  CTable t(1);
  t.AddRow(Tuple{V(0)}, Conjunction{Eq(V(0), C(1))});
  t.AddRow(Tuple{V(1)}, Conjunction{Neq(V(1), C(2))});
  CDatabase db{t};
  auto out = EvalOnCTables(RaExpr::Product(RaExpr::Rel(0, 1),
                                           RaExpr::Rel(0, 1)),
                           db);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->num_rows(), 4u);
  EXPECT_EQ(out->row(1).local().size(), 2u);  // (row0, row1) pair
}

TEST(IlAlgebraTest, DiffIsRejected) {
  CDatabase db{CTable(1)};
  EXPECT_FALSE(EvalOnCTables(RaExpr::Diff(RaExpr::Rel(0, 1),
                                          RaExpr::Rel(0, 1)),
                             db)
                   .has_value());
}

TEST(IlAlgebraTest, QueryCarriesGlobalCondition) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.SetGlobal(Conjunction{Neq(V(0), C(1))});
  CDatabase db{t};
  auto out = EvalQueryOnCTables({RaExpr::Rel(0, 1)}, db);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->CombinedGlobal().size(), 1u);
}

// --- The representation-system property, randomized ----------------------
// (Canonical world rendering and the per-world oracle live in test_util.h;
// tests/differential_test.cc runs the same identity at scale over random
// queries.)

class IlAlgebraPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IlAlgebraPropertyTest, ImageRepresentsQueryOfWorlds) {
  using testutil::CanonicalImageWorlds;
  using testutil::CanonicalWorlds;
  std::mt19937 rng(GetParam());
  RandomCTableOptions options = testutil::SmallCTableOptions(
      /*arity=*/2, /*num_rows=*/3, /*num_constants=*/2, /*num_variables=*/2,
      /*num_local_atoms=*/1, /*num_global_atoms=*/1);
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};

  // A representative positive existential query exercising every operator:
  // pi_{0, const}(sigma_{c0 = c1}(R)) union pi_{1,0}(R x R restricted).
  RaExpr r = RaExpr::Rel(0, 2);
  RaExpr q = RaExpr::Union(
      RaExpr::Project(
          RaExpr::Select(r, {SelectAtom::Eq(ColOrConst::Col(0),
                                            ColOrConst::Col(1))}),
          {ColOrConst::Col(0), ColOrConst::Const(7)}),
      RaExpr::ProjectCols(
          RaExpr::Select(RaExpr::Product(r, r),
                         {SelectAtom::Neq(ColOrConst::Col(1),
                                          ColOrConst::Col(2))}),
          {0, 3}));

  auto image = EvalQueryOnCTables({q}, db);
  ASSERT_TRUE(image.has_value());

  // rep(image) == q(rep(db)), compared world-by-world over a shared Delta.
  // (Both sides use the same variables, so the same Delta' representatives
  // arise on both sides.)
  std::vector<ConstId> extra = image->Constants();
  for (ConstId c : db.Constants()) extra.push_back(c);
  extra.push_back(7);
  EXPECT_EQ(CanonicalWorlds(*image, extra),
            CanonicalImageWorlds({q}, db, extra))
      << t.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlAlgebraPropertyTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace pw
