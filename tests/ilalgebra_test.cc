// Unit and property tests for the Imielinski–Lipski algebra: the result of
// evaluating a positive existential query on a c-table must represent
// exactly the pointwise image of the input's worlds.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "ilalgebra/ctable_eval.h"
#include "ra/eval.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(IlAlgebraTest, RelCopiesRows) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  CDatabase db{t};
  auto out = EvalOnCTables(RaExpr::Rel(0, 2), db);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->row(0).tuple, (Tuple{C(1), V(0)}));
}

TEST(IlAlgebraTest, SelectOnVariableBecomesLocalCondition) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  CDatabase db{t};
  RaExpr e = RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Const(5))});
  auto out = EvalOnCTables(e, db);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->row(0).local().atoms()[0], Eq(V(0), C(5)));
}

TEST(IlAlgebraTest, SelectOnConstantsResolvesImmediately) {
  CTable t(2);
  t.AddRow(Tuple{C(1), C(2)});
  t.AddRow(Tuple{C(3), C(2)});
  CDatabase db{t};
  RaExpr e = RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1))});
  auto out = EvalOnCTables(e, db);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->num_rows(), 1u);  // mismatching row dropped outright
  EXPECT_TRUE(out->row(0).local().IsTautology());
}

TEST(IlAlgebraTest, ProductConjoinsLocals) {
  CTable t(1);
  t.AddRow(Tuple{V(0)}, Conjunction{Eq(V(0), C(1))});
  t.AddRow(Tuple{V(1)}, Conjunction{Neq(V(1), C(2))});
  CDatabase db{t};
  auto out = EvalOnCTables(RaExpr::Product(RaExpr::Rel(0, 1),
                                           RaExpr::Rel(0, 1)),
                           db);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->num_rows(), 4u);
  EXPECT_EQ(out->row(1).local().size(), 2u);  // (row0, row1) pair
}

TEST(IlAlgebraTest, DiffIsRejected) {
  CDatabase db{CTable(1)};
  EXPECT_FALSE(EvalOnCTables(RaExpr::Diff(RaExpr::Rel(0, 1),
                                          RaExpr::Rel(0, 1)),
                             db)
                   .has_value());
}

// --- Hash-join fusion -----------------------------------------------------

/// Two joinable conditioned tables: edges with a null endpoint and a local
/// condition in the mix, so ground buckets, the wildcard list, and condition
/// accumulation are all exercised.
CDatabase JoinableTables() {
  CTable l(2);
  l.AddRow(Tuple{C(1), C(2)});
  l.AddRow(Tuple{C(2), C(3)});
  l.AddRow(Tuple{C(3), V(0)}, Conjunction{Neq(V(0), C(1))});
  CTable r(2);
  r.AddRow(Tuple{C(2), C(5)});
  r.AddRow(Tuple{V(1), C(6)});
  r.AddRow(Tuple{C(9), C(7)}, Conjunction{Eq(V(1), C(9))});
  return CDatabase(std::vector<CTable>{l, r});
}

TEST(IlAlgebraTest, HashJoinIsOutputIdenticalToNestedLoop) {
  CDatabase db = JoinableTables();
  RaExpr q = RaExpr::Join(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2), {{1, 0}});
  for (bool use_interner : {true, false}) {
    CTableEvalOptions fused;
    fused.use_interner = use_interner;
    CTableEvalOptions nested = fused;
    nested.use_hash_join = false;
    auto a = EvalOnCTables(q, db, fused);
    auto b = EvalOnCTables(q, db, nested);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(*a, *b) << (use_interner ? "interned" : "plain");
    EXPECT_GT(a->num_rows(), 0u);
  }
}

TEST(IlAlgebraTest, HashJoinProbesIndexAndSkipsMismatches) {
  CDatabase db = JoinableTables();
  RaExpr q = RaExpr::Join(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2), {{1, 0}});
  CTableEvalStats stats;
  CTableEvalOptions options;
  options.stats = &stats;
  ASSERT_TRUE(EvalOnCTables(q, db, options).has_value());
  EXPECT_EQ(stats.hash_joins, 1u);
  EXPECT_EQ(stats.nested_loop_products, 0u);
  EXPECT_EQ(stats.index_builds, 1u);
  // Left rows (2,·) and (·,3) probe ground keys; (3, x0) has a null key and
  // falls back to the scan.
  EXPECT_EQ(stats.index_probes, 2u);
  EXPECT_EQ(stats.scan_pairs, 3u);
  // Each ground probe hits the wildcard row (x1, 6) plus at most one ground
  // bucket row — strictly fewer than the 2x3 = 6 pairs a nested loop walks.
  EXPECT_LT(stats.index_hits, 4u);

  // The build side was a relation ref: its index lives on the CTable and is
  // reused by the next query instead of being rebuilt.
  CTableEvalStats again;
  options.stats = &again;
  ASSERT_TRUE(EvalOnCTables(q, db, options).has_value());
  EXPECT_EQ(again.index_builds, 0u);
  EXPECT_EQ(again.hash_joins, 1u);
}

TEST(IlAlgebraTest, HashJoinPushesSelectionsIntoSides) {
  // sigma_{l.0 = 1 AND l.1 = r.0}(L x R): the left-only atom drops left rows
  // (2,3) and (3,x0) before any pairing.
  CDatabase db = JoinableTables();
  RaExpr q = RaExpr::Select(
      RaExpr::Product(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2)),
      {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1)),
       SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(2))});
  CTableEvalStats stats;
  CTableEvalOptions options;
  options.stats = &stats;
  auto out = EvalOnCTables(q, db, options);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(stats.hash_joins, 1u);
  EXPECT_GE(stats.pushdown_dropped_rows, 2u);

  CTableEvalOptions nested;
  nested.use_hash_join = false;
  auto reference = EvalOnCTables(q, db, nested);
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(*out, *reference);
}

// --- N-ary planned joins --------------------------------------------------

/// Three joinable tables for chain joins a.1 = b.0, b.1 = c.0.
CDatabase ThreeChainTables() {
  CTable a(2);
  a.AddRow(Tuple{C(1), C(2)});
  a.AddRow(Tuple{C(2), C(3)});
  a.AddRow(Tuple{C(3), V(0)}, Conjunction{Neq(V(0), C(1))});
  CTable b(2);
  b.AddRow(Tuple{C(2), C(4)});
  b.AddRow(Tuple{V(1), C(5)});
  b.AddRow(Tuple{C(3), C(4)});
  CTable c(2);
  c.AddRow(Tuple{C(4), C(8)});
  c.AddRow(Tuple{C(5), V(2)});
  return CDatabase(std::vector<CTable>{a, b, c});
}

TEST(IlAlgebraTest, TernaryJoinPlansAllLeavesAndMatchesNestedLoop) {
  // select over product(product(a, b), c) — the shape the binary fusion
  // never fused. The planner must fuse all three leaves; the output must be
  // identical to the nested loops on both paths, and to the binary-only
  // baseline.
  CDatabase db = ThreeChainTables();
  RaExpr prod = RaExpr::Product(
      RaExpr::Product(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2)),
      RaExpr::Rel(2, 2));
  RaExpr q = RaExpr::Select(
      prod, {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(2)),
             SelectAtom::Eq(ColOrConst::Col(3), ColOrConst::Col(4))});
  for (bool use_interner : {true, false}) {
    CTableEvalOptions planned;
    planned.use_interner = use_interner;
    CTableEvalStats stats;
    planned.stats = &stats;
    CTableEvalOptions nested = planned;
    nested.use_hash_join = false;
    nested.stats = nullptr;
    CTableEvalOptions binary = planned;
    binary.binary_join_only = true;
    binary.stats = nullptr;
    auto p = EvalOnCTables(q, db, planned);
    auto n = EvalOnCTables(q, db, nested);
    auto b = EvalOnCTables(q, db, binary);
    ASSERT_TRUE(p.has_value() && n.has_value() && b.has_value());
    EXPECT_EQ(*p, *n) << (use_interner ? "interned" : "plain");
    EXPECT_EQ(*b, *n) << (use_interner ? "interned" : "plain");
    EXPECT_GT(p->num_rows(), 0u);
    // Plan shape: one 3-leaf plan, two keyed join steps, no nested loop.
    EXPECT_EQ(stats.planned_joins, 1u);
    EXPECT_EQ(stats.planned_join_leaves, 3u);
    EXPECT_EQ(stats.hash_joins, 2u);
    EXPECT_EQ(stats.nested_loop_products, 0u);
  }
}

TEST(IlAlgebraTest, NestedSelectionsAndProjectionPrefixesFuse) {
  // select(select(product)) and select above a projection of a product —
  // both silently fell back to nested loops before the planner; now they
  // must fuse and stay output-identical.
  CDatabase db = JoinableTables();
  RaExpr join_then_filter = RaExpr::Select(
      RaExpr::Select(RaExpr::Product(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2)),
                     {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(2))}),
      {SelectAtom::Neq(ColOrConst::Col(0), ColOrConst::Const(2))});
  RaExpr over_projection = RaExpr::Select(
      RaExpr::ProjectCols(
          RaExpr::Product(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2)), {3, 0, 2}),
      {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(2))});
  for (const RaExpr& q : {join_then_filter, over_projection}) {
    for (bool use_interner : {true, false}) {
      CTableEvalOptions planned;
      planned.use_interner = use_interner;
      CTableEvalStats stats;
      planned.stats = &stats;
      CTableEvalOptions nested = planned;
      nested.use_hash_join = false;
      nested.stats = nullptr;
      auto p = EvalOnCTables(q, db, planned);
      auto n = EvalOnCTables(q, db, nested);
      ASSERT_TRUE(p.has_value() && n.has_value());
      EXPECT_EQ(*p, *n) << q.ToString();
      EXPECT_EQ(stats.planned_joins, 1u) << q.ToString();
      EXPECT_EQ(stats.nested_loop_products, 0u) << q.ToString();
    }
  }
}

TEST(IlAlgebraTest, PlannerSinksProjectionsAndCountsPushdown) {
  // Projecting the chain join down to its first column leaves the last leaf
  // column unneeded (not an output, not in a conjunct): the plan sinks it.
  CDatabase db = ThreeChainTables();
  RaExpr prod = RaExpr::Product(
      RaExpr::Product(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2)),
      RaExpr::Rel(2, 2));
  RaExpr sel = RaExpr::Select(
      prod, {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(2)),
             SelectAtom::Eq(ColOrConst::Col(3), ColOrConst::Col(4)),
             SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1))});
  RaExpr q = RaExpr::ProjectCols(sel, {0});
  CTableEvalStats stats;
  CTableEvalOptions planned;
  planned.stats = &stats;
  auto p = EvalOnCTables(q, db, planned);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(stats.planned_joins, 1u);
  EXPECT_EQ(stats.conjuncts_pushed, 1u);   // the a.0 = 1 filter
  EXPECT_EQ(stats.projections_sunk, 1u);   // column 5 (c.1) never needed
  EXPECT_GE(stats.pushdown_dropped_rows, 2u);  // a rows (2,3) and (3,x0)
  CTableEvalOptions nested;
  nested.use_hash_join = false;
  auto n = EvalOnCTables(q, db, nested);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*p, *n);
}

// --- Interned-id seeding through the operators ----------------------------

TEST(IlAlgebraTest, InternedEvalSeedsOutputIdCaches) {
  // After an interned evaluation through union/project/join, every output
  // row's condition id (and the table's global id) must already be cached:
  // asking for them again costs zero Intern() calls.
  ConditionInterner interner;
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)}, Conjunction{Neq(V(0), C(2))});
  t.AddRow(Tuple{V(1), C(3)});
  CTable t2 = t;
  t2.SetGlobal(Conjunction{Neq(V(1), C(4))});
  CDatabase db(std::vector<CTable>{t, t2});

  RaExpr r = RaExpr::Rel(0, 2);
  RaExpr q = RaExpr::Union(
      RaExpr::ProjectCols(RaExpr::Join(r, RaExpr::Rel(1, 2), {{1, 0}}),
                          {0, 3}),
      RaExpr::Project(r, {ColOrConst::Col(1), ColOrConst::Col(0)}));

  CTableEvalOptions options;
  options.interner = &interner;
  auto out = EvalQueryOnCTables({q}, db, options);
  ASSERT_TRUE(out.has_value());
  ASSERT_GT(out->table(0).num_rows(), 0u);

  uint64_t interns_before = interner.stats().intern_calls;
  for (const CRow& row : out->table(0).rows()) row.LocalId(interner);
  out->table(0).GlobalId(interner);
  EXPECT_EQ(interner.stats().intern_calls, interns_before);
}

TEST(IlAlgebraTest, PlainEvalPreservesRowIdCachesThroughUnionProject) {
  // The plain path copies rows wholesale (union, relation refs) or rewrites
  // only the tuple (project), so rows whose condition ids were already
  // memoized keep them across the evaluation.
  ConditionInterner interner;
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)}, Conjunction{Neq(V(0), C(2))});
  t.AddRow(Tuple{V(1), C(3)}, Conjunction{Eq(V(1), C(1))});
  CDatabase db{t};
  for (const CRow& row : db.table(0).rows()) row.LocalId(interner);

  RaExpr r = RaExpr::Rel(0, 2);
  RaExpr q = RaExpr::Union(
      r, RaExpr::Project(r, {ColOrConst::Col(1), ColOrConst::Col(0)}));
  CTableEvalOptions plain;
  plain.use_interner = false;
  auto out = EvalOnCTables(q, db, plain);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->num_rows(), 4u);

  uint64_t interns_before = interner.stats().intern_calls;
  for (const CRow& row : out->rows()) row.LocalId(interner);
  EXPECT_EQ(interner.stats().intern_calls, interns_before);
}

TEST(IlAlgebraTest, QueryCarriesGlobalCondition) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.SetGlobal(Conjunction{Neq(V(0), C(1))});
  CDatabase db{t};
  auto out = EvalQueryOnCTables({RaExpr::Rel(0, 1)}, db);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->CombinedGlobal().size(), 1u);
}

// --- The representation-system property, randomized ----------------------
// (Canonical world rendering and the per-world oracle live in test_util.h;
// tests/differential_test.cc runs the same identity at scale over random
// queries.)

class IlAlgebraPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IlAlgebraPropertyTest, ImageRepresentsQueryOfWorlds) {
  using testutil::CanonicalImageWorlds;
  using testutil::CanonicalWorlds;
  std::mt19937 rng(GetParam());
  RandomCTableOptions options = testutil::SmallCTableOptions(
      /*arity=*/2, /*num_rows=*/3, /*num_constants=*/2, /*num_variables=*/2,
      /*num_local_atoms=*/1, /*num_global_atoms=*/1);
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};

  // A representative positive existential query exercising every operator:
  // pi_{0, const}(sigma_{c0 = c1}(R)) union pi_{1,0}(R x R restricted).
  RaExpr r = RaExpr::Rel(0, 2);
  RaExpr q = RaExpr::Union(
      RaExpr::Project(
          RaExpr::Select(r, {SelectAtom::Eq(ColOrConst::Col(0),
                                            ColOrConst::Col(1))}),
          {ColOrConst::Col(0), ColOrConst::Const(7)}),
      RaExpr::ProjectCols(
          RaExpr::Select(RaExpr::Product(r, r),
                         {SelectAtom::Neq(ColOrConst::Col(1),
                                          ColOrConst::Col(2))}),
          {0, 3}));

  auto image = EvalQueryOnCTables({q}, db);
  ASSERT_TRUE(image.has_value());

  // rep(image) == q(rep(db)), compared world-by-world over a shared Delta.
  // (Both sides use the same variables, so the same Delta' representatives
  // arise on both sides.)
  std::vector<ConstId> extra = image->Constants();
  for (ConstId c : db.Constants()) extra.push_back(c);
  extra.push_back(7);
  EXPECT_EQ(CanonicalWorlds(*image, extra),
            CanonicalImageWorlds({q}, db, extra))
      << t.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlAlgebraPropertyTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace pw
