// Tests for c-table updates: pointwise world semantics of insert / delete.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "tables/updates.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(UpdatesTest, InsertAddsFactToEveryWorld) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CTable inserted = InsertFact(t, Fact{9});
  for (const Instance& w : EnumerateWorlds(CDatabase{inserted})) {
    EXPECT_TRUE(w.relation(0).Contains(Fact{9}));
  }
}

TEST(UpdatesTest, DeleteRemovesGroundRow) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.AddRow(Tuple{C(2)});
  CTable deleted = DeleteFact(t, Fact{1});
  auto worlds = EnumerateWorlds(CDatabase{deleted});
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_EQ(worlds[0].relation(0), Relation(1, {{2}}));
}

TEST(UpdatesTest, DeleteGuardsVariableRow) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CTable deleted = DeleteFact(t, Fact{5});
  // Worlds: {c} for c != 5, and {} (when x = 5).
  for (const Instance& w :
       EnumerateWorlds(CDatabase{deleted}, {{5}, 0})) {
    EXPECT_FALSE(w.relation(0).Contains(Fact{5}));
  }
}

TEST(UpdatesTest, DeleteKeepsNonMatchingRowsUnguarded) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  CTable deleted = DeleteFact(t, Fact{2, 2});
  ASSERT_EQ(deleted.num_rows(), 1u);
  EXPECT_TRUE(deleted.row(0).local().IsTautology());
}

TEST(UpdatesTest, DeleteExpandsMatchableRows) {
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)});
  CTable deleted = DeleteFact(t, Fact{1, 2});
  EXPECT_EQ(deleted.num_rows(), 2u);  // one guard per position
}

TEST(UpdatesTest, ConditionalInsert) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  CTable inserted = InsertFactIf(t, Fact{9}, Conjunction{Eq(V(5), C(0))});
  auto worlds = EnumerateWorlds(CDatabase{inserted});
  bool with = false, without = false;
  for (const Instance& w : worlds) {
    (w.relation(0).Contains(Fact{9}) ? with : without) = true;
  }
  EXPECT_TRUE(with);
  EXPECT_TRUE(without);
}

class UpdatesPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(UpdatesPropertyTest, PointwiseSemantics) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options =
      testutil::SmallCTableOptions(/*arity=*/2, /*num_rows=*/3,
          /*num_constants=*/3, /*num_variables=*/2,
          /*num_local_atoms=*/GetParam() % 2);
  CTable t = RandomCTable(options, rng);
  std::uniform_int_distribution<int> c(0, 2);
  Fact f{c(rng), c(rng)};

  // For every valuation: the updated tables' world must equal the plain
  // world with f added / removed.
  CTable ins = InsertFact(t, f);
  CTable del = DeleteFact(t, f);
  WorldEnumOptions wopts;
  wopts.extra_constants = {static_cast<ConstId>(f[0]),
                           static_cast<ConstId>(f[1])};
  bool ok = true;
  ForEachSatisfyingValuation(CDatabase{t}, wopts, [&](const Valuation& v) {
    Relation base = v.Apply(t);
    Relation with = base;
    with.Insert(f);
    Relation without(2);
    for (const Fact& g : base) {
      if (g != f) without.Insert(g);
    }
    if (v.Apply(ins) != with || v.Apply(del) != without) {
      ok = false;
      return false;
    }
    return true;
  });
  EXPECT_TRUE(ok) << t.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdatesPropertyTest, ::testing::Range(1, 25));

}  // namespace
}  // namespace pw
