// Tests for c-table updates: pointwise world semantics of insert / delete.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "tables/updates.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(UpdatesTest, InsertAddsFactToEveryWorld) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CTable inserted = InsertFact(t, Fact{9});
  for (const Instance& w : EnumerateWorlds(CDatabase{inserted})) {
    EXPECT_TRUE(w.relation(0).Contains(Fact{9}));
  }
}

TEST(UpdatesTest, DeleteRemovesGroundRow) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.AddRow(Tuple{C(2)});
  CTable deleted = DeleteFact(t, Fact{1});
  auto worlds = EnumerateWorlds(CDatabase{deleted});
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_EQ(worlds[0].relation(0), Relation(1, {{2}}));
}

TEST(UpdatesTest, DeleteGuardsVariableRow) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CTable deleted = DeleteFact(t, Fact{5});
  // Worlds: {c} for c != 5, and {} (when x = 5).
  for (const Instance& w :
       EnumerateWorlds(CDatabase{deleted}, {{5}, 0})) {
    EXPECT_FALSE(w.relation(0).Contains(Fact{5}));
  }
}

TEST(UpdatesTest, DeleteKeepsNonMatchingRowsUnguarded) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  CTable deleted = DeleteFact(t, Fact{2, 2});
  ASSERT_EQ(deleted.num_rows(), 1u);
  EXPECT_TRUE(deleted.row(0).local().IsTautology());
}

TEST(UpdatesTest, DeleteExpandsMatchableRows) {
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)});
  CTable deleted = DeleteFact(t, Fact{1, 2});
  EXPECT_EQ(deleted.num_rows(), 2u);  // one guard per position
}

TEST(UpdatesTest, ConditionalInsert) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  CTable inserted = InsertFactIf(t, Fact{9}, Conjunction{Eq(V(5), C(0))});
  auto worlds = EnumerateWorlds(CDatabase{inserted});
  bool with = false, without = false;
  for (const Instance& w : worlds) {
    (w.relation(0).Contains(Fact{9}) ? with : without) = true;
  }
  EXPECT_TRUE(with);
  EXPECT_TRUE(without);
}

class UpdatesPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(UpdatesPropertyTest, PointwiseSemantics) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options =
      testutil::SmallCTableOptions(/*arity=*/2, /*num_rows=*/3,
          /*num_constants=*/3, /*num_variables=*/2,
          /*num_local_atoms=*/GetParam() % 2);
  CTable t = RandomCTable(options, rng);
  std::uniform_int_distribution<int> c(0, 2);
  Fact f{c(rng), c(rng)};

  // For every valuation: the updated tables' world must equal the plain
  // world with f added / removed.
  CTable ins = InsertFact(t, f);
  CTable del = DeleteFact(t, f);
  WorldEnumOptions wopts;
  wopts.extra_constants = {static_cast<ConstId>(f[0]),
                           static_cast<ConstId>(f[1])};
  bool ok = true;
  ForEachSatisfyingValuation(CDatabase{t}, wopts, [&](const Valuation& v) {
    Relation base = v.Apply(t);
    Relation with = base;
    with.Insert(f);
    Relation without(2);
    for (const Fact& g : base) {
      if (g != f) without.Insert(g);
    }
    if (v.Apply(ins) != with || v.Apply(del) != without) {
      ok = false;
      return false;
    }
    return true;
  });
  EXPECT_TRUE(ok) << t.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdatesPropertyTest, ::testing::Range(1, 25));

// --- Guard pruning (the interned delete path) --------------------------------

TEST(UpdatesTest, DeleteDedupesCollapsedSiblingGuards) {
  // Deleting (1,1) from the row (x,x): the naive expansion emits the guard
  // x != 1 once per position — identical conditions. The pruned path keeps
  // one; the plain path keeps the historical two; both represent the same
  // worlds.
  CTable t(2);
  t.AddRow(Tuple{V(0), V(0)});
  CTable pruned = DeleteFact(t, Fact{1, 1});
  EXPECT_EQ(pruned.num_rows(), 1u);
  CTable plain = DeleteFact(t, Fact{1, 1}, {.use_interner = false});
  EXPECT_EQ(plain.num_rows(), 2u);
  for (const Instance& w : EnumerateWorlds(CDatabase{pruned}, {{1}, 0})) {
    EXPECT_FALSE(w.relation(0).Contains(Fact{1, 1}));
  }
}

TEST(UpdatesTest, DeleteDropsGuardsUnsatisfiableWithRowCondition) {
  // Row ((x,y), x = 1): deleting (1,2) can only escape through y != 2 — the
  // position-0 guard x != 1 contradicts the row's own condition and holds
  // in no world.
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)}, Conjunction{Eq(V(0), C(1))});
  CTable pruned = DeleteFact(t, Fact{1, 2});
  ASSERT_EQ(pruned.num_rows(), 1u);
  EXPECT_TRUE(pruned.row(0).local().Implies(Neq(V(1), C(2))));
}

TEST(UpdatesTest, DeleteDropsGuardsUnsatisfiableWithGlobalCondition) {
  // The same pruning through the *global* condition: with x forced to 1
  // globally, the guard x != 1 survives in no world.
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)});
  t.SetGlobal(Conjunction{Eq(V(0), C(1))});
  CTable pruned = DeleteFact(t, Fact{1, 2});
  ASSERT_EQ(pruned.num_rows(), 1u);
  EXPECT_TRUE(pruned.row(0).local().Implies(Neq(V(1), C(2))));
}

TEST(UpdatesTest, DeleteKeepsRowWhoseGuardCollapses) {
  // Row ((x,1), x != 3): deleting (3,1) adds nothing the row's condition
  // does not already say, so the row passes through unchanged — and a
  // repeat of the delete is a no-op at the row level (idempotence over
  // rep() strengthens to idempotence over the row set).
  CTable t(2);
  t.AddRow(Tuple{V(0), C(1)}, Conjunction{Neq(V(0), C(3))});
  CTable once = DeleteFact(t, Fact{3, 1});
  ASSERT_EQ(once.num_rows(), 1u);
  EXPECT_EQ(once.row(0).local().ToString(), t.row(0).local().ToString());
  CTable twice = DeleteFact(once, Fact{3, 1});
  ASSERT_EQ(twice.num_rows(), 1u);
  EXPECT_EQ(twice.row(0).local().ToString(), once.row(0).local().ToString());
}

TEST(UpdatesTest, RepeatedDeleteIsIdempotentOnRowSet) {
  // Deleting the same fact twice through a variable row: the second pass
  // rewrites each guarded copy into itself (its guard is already part of
  // its condition), so the row set is unchanged — the naive expansion
  // instead re-expands every copy per position.
  ConditionInterner& interner = ConditionInterner::Global();
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)});
  CTable once = DeleteFact(t, Fact{1, 2});
  CTable twice = DeleteFact(once, Fact{1, 2});
  ASSERT_EQ(twice.num_rows(), once.num_rows());
  for (size_t i = 0; i < once.num_rows(); ++i) {
    EXPECT_EQ(twice.row(i).LocalId(interner), once.row(i).LocalId(interner));
  }
}

// --- Edge cases --------------------------------------------------------------

TEST(UpdatesTest, ArityZeroInsertAndDelete) {
  // A 0-ary table holds at most the empty fact: insertion makes it certain,
  // deletion of the empty fact empties every world (no position can differ,
  // so no guarded copy survives).
  CTable t(0);
  CTable inserted = InsertFact(t, Fact{});
  ASSERT_EQ(inserted.num_rows(), 1u);
  CTable deleted = DeleteFact(inserted, Fact{});
  EXPECT_EQ(deleted.num_rows(), 0u);
}

TEST(UpdatesTest, DeleteMatchedOnlyThroughGlobalForcedEquality) {
  // The row is (x,2) and the global forces x = 1: the only world value of
  // the row is (1,2), so deleting (1,2) must empty the table's rep — the
  // guard x != 1 dies against the global, and y != 2 is trivially false.
  CTable t(2);
  t.AddRow(Tuple{V(0), C(2)});
  t.SetGlobal(Conjunction{Eq(V(0), C(1))});
  CTable deleted = DeleteFact(t, Fact{1, 2});
  EXPECT_EQ(deleted.num_rows(), 0u);
  for (const Instance& w : EnumerateWorlds(CDatabase{deleted})) {
    EXPECT_EQ(w.relation(0).size(), 0u);
  }
}

TEST(UpdatesTest, InsertFactIfUnsatisfiableConditionAddsNothing) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{Eq(V(0), C(1))});
  // The condition contradicts the global: the fact would join no world.
  CTable out = InsertFactIf(t, Fact{9}, Conjunction{Neq(V(0), C(1))});
  EXPECT_EQ(out.num_rows(), 1u);
  // The plain path keeps the dead row (the historical behavior — same
  // rep(), redundant storage).
  CTable plain =
      InsertFactIf(t, Fact{9}, Conjunction{Neq(V(0), C(1))},
                   {.use_interner = false});
  EXPECT_EQ(plain.num_rows(), 2u);
  for (const Instance& w : EnumerateWorlds(CDatabase{plain})) {
    EXPECT_FALSE(w.relation(0).Contains(Fact{9}));
  }
}

// --- In-place variants: delta reporting and cache preservation ---------------

TEST(UpdatesTest, InPlaceDeleteReportsRowLevelDelta) {
  CTable t(2);
  t.AddRow(Tuple{C(1), C(2)});   // removed outright (ground match)
  t.AddRow(Tuple{C(3), V(0)});   // kept: position 0 can never match
  t.AddRow(Tuple{V(1), V(2)});   // rewritten into guarded copies
  DeleteDelta delta = DeleteFactInPlace(t, Fact{1, 2});
  EXPECT_TRUE(delta.changed);
  EXPECT_EQ(delta.kept.size(), 1u);
  EXPECT_EQ(delta.removed.size(), 2u);
  EXPECT_EQ(delta.added.size(), 2u);  // one guard per position of (x,y)
  EXPECT_EQ(t.num_rows(), 3u);        // kept + 2 guarded copies
}

TEST(UpdatesTest, InPlaceDeleteOfUnmatchableFactPreservesIndexCache) {
  // No row can match: the delete must not touch the table, so a cached
  // tuple index stays valid (no rebuild, no extend).
  CTable t(2);
  t.AddRow(Tuple{C(1), C(2)});
  t.AddRow(Tuple{C(3), C(4)});
  bool built = false, extended = false;
  t.Index({0}, &built, &extended);
  ASSERT_TRUE(built);
  DeleteDelta delta = DeleteFactInPlace(t, Fact{9, 9});
  EXPECT_FALSE(delta.changed);
  t.Index({0}, &built, &extended);
  EXPECT_FALSE(built);
  EXPECT_FALSE(extended);
}

TEST(UpdatesTest, InPlaceInsertExtendsIndexCacheInsteadOfRebuilding) {
  // The append path must extend the cached index by the new row, never
  // rebuild it — the regression the incremental maintenance layer pins on.
  CTable t(2);
  t.AddRow(Tuple{C(1), C(2)});
  bool built = false, extended = false;
  t.Index({0}, &built, &extended);
  ASSERT_TRUE(built);
  InsertFactInPlace(t, Fact{3, 4});
  const TupleIndex& index = t.Index({0}, &built, &extended);
  EXPECT_FALSE(built);
  EXPECT_TRUE(extended);
  EXPECT_EQ(index.num_rows_indexed(), 2u);
}

TEST(UpdatesTest, InPlaceRewritingDeleteRebuildsIndexCache) {
  // A delete that rewrites rows replaces the storage wholesale: the cached
  // index must rebuild (stale row ids would otherwise survive).
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)});
  t.AddRow(Tuple{C(1), C(2)});
  bool built = false, extended = false;
  t.Index({0}, &built, &extended);
  ASSERT_TRUE(built);
  DeleteDelta delta = DeleteFactInPlace(t, Fact{1, 2});
  EXPECT_TRUE(delta.changed);
  const TupleIndex& index = t.Index({0}, &built, &extended);
  EXPECT_TRUE(built);
  EXPECT_EQ(index.num_rows_indexed(), t.num_rows());
}

TEST(UpdatesTest, InPlaceVariantsMatchCopyBasedResults) {
  // The in-place family must produce exactly the tables the copy-based
  // seeds produce, across all three update kinds.
  ConditionInterner& interner = ConditionInterner::Global();
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)}, Conjunction{Neq(V(0), C(2))});
  t.AddRow(Tuple{C(1), V(2)});
  t.SetGlobal(Conjunction{Neq(V(1), C(0))});

  CTable by_copy = t;
  by_copy = InsertFact(by_copy, Fact{5, 6});
  by_copy = InsertFactIf(by_copy, Fact{7, 8}, Conjunction{Eq(V(2), C(1))});
  by_copy = DeleteFact(by_copy, Fact{1, 2});

  CTable in_place = t;
  InsertFactInPlace(in_place, Fact{5, 6});
  InsertFactIfInPlace(in_place, Fact{7, 8}, Conjunction{Eq(V(2), C(1))});
  DeleteFactInPlace(in_place, Fact{1, 2});

  ASSERT_EQ(in_place.num_rows(), by_copy.num_rows());
  for (size_t i = 0; i < by_copy.num_rows(); ++i) {
    EXPECT_EQ(in_place.row(i).tuple, by_copy.row(i).tuple);
    EXPECT_EQ(in_place.row(i).LocalId(interner),
              by_copy.row(i).LocalId(interner));
  }
}

}  // namespace
}  // namespace pw
