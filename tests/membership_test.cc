// Tests for the membership problem MEMB (Theorem 3.1): the PTIME matching
// algorithm on Codd-tables, the general backtracking search, view
// membership, and randomized cross-validation against world enumeration.

#include <gtest/gtest.h>

#include <random>

#include "decision/membership.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

// --- Fig. 3 of the paper --------------------------------------------------

TEST(MembershipCoddTest, PaperFig3Example) {
  // I0 = {112, 323, 145, 123}, T = {(x1,1,x2), (x3,2,3), (1,x4,x5),
  // (1,2,3), (1,2,x6)} — the paper's example answers yes.
  CDatabase db{testutil::PaperFig3Table()};
  Instance i0 = testutil::PaperFig3Instance();
  auto result = MembershipCoddTables(db, i0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
  EXPECT_TRUE(MembershipSearch(db, i0));  // general search agrees
}

TEST(MembershipCoddTest, RowWithNoCompatibleFactFails) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{C(9), V(1)});  // nothing in I0 starts with 9
  CDatabase db{t};
  Instance i0({Relation(2, {{1, 5}})});
  EXPECT_EQ(MembershipCoddTables(db, i0), false);
}

TEST(MembershipCoddTest, MoreFactsThanRowsFails) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CDatabase db{t};
  Instance i0({Relation(1, {{1}, {2}})});
  EXPECT_EQ(MembershipCoddTables(db, i0), false);
}

TEST(MembershipCoddTest, RowsCanShareAFact) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.AddRow(Tuple{V(1)});
  t.AddRow(Tuple{C(3)});
  CDatabase db{t};
  EXPECT_EQ(MembershipCoddTables(db, Instance({Relation(1, {{3}})})), true);
  EXPECT_EQ(MembershipCoddTables(db, Instance({Relation(1, {{3}, {4}})})),
            true);
  EXPECT_EQ(
      MembershipCoddTables(db, Instance({Relation(1, {{3}, {4}, {5}})})),
      true);
  EXPECT_EQ(
      MembershipCoddTables(db, Instance({Relation(1, {{4}, {5}, {6}})})),
      false);  // constant row 3 must land in I0
}

TEST(MembershipCoddTest, EmptyTableOnlyMatchesEmptyInstance) {
  CDatabase db{CTable(2)};
  EXPECT_EQ(MembershipCoddTables(db, Instance(std::vector<int>{2})), true);
  EXPECT_EQ(MembershipCoddTables(db, Instance({Relation(2, {{1, 2}})})),
            false);
}

TEST(MembershipCoddTest, NotApplicableToETables) {
  CTable t(2);
  t.AddRow(Tuple{V(0), V(0)});
  CDatabase db{t};
  EXPECT_FALSE(MembershipCoddTables(db, Instance({Relation(2, {{1, 1}})}))
                   .has_value());
}

TEST(MembershipCoddTest, NotApplicableAcrossTables) {
  CTable a(1);
  a.AddRow(Tuple{V(0)});
  CTable b(1);
  b.AddRow(Tuple{V(0)});
  CDatabase db;
  db.AddTable(a);
  db.AddTable(b);
  EXPECT_FALSE(MembershipCoddTables(
                   db, Instance({Relation(1, {{1}}), Relation(1, {{1}})}))
                   .has_value());
}

TEST(MembershipCoddTest, ShapeMismatchIsNotMember) {
  CDatabase db{CTable(2)};
  EXPECT_EQ(MembershipCoddTables(db, Instance({Relation(3)})), false);
  EXPECT_EQ(MembershipCoddTables(db, Instance({})), false);
}

TEST(MembershipSearchTest, ETableRepeatedVariableForcesEquality) {
  CTable t(2);
  t.AddRow(Tuple{V(0), V(0)});
  CDatabase db{t};
  EXPECT_TRUE(MembershipSearch(db, Instance({Relation(2, {{4, 4}})})));
  EXPECT_FALSE(MembershipSearch(db, Instance({Relation(2, {{4, 5}})})));
}

TEST(MembershipSearchTest, CrossRowVariableSharing) {
  // T = {(x, 1), (2, x)}: worlds {(c,1),(2,c)}.
  CTable t(2);
  t.AddRow(Tuple{V(0), C(1)});
  t.AddRow(Tuple{C(2), V(0)});
  CDatabase db{t};
  EXPECT_TRUE(MembershipSearch(db, Instance({Relation(2, {{7, 1}, {2, 7}})})));
  EXPECT_FALSE(
      MembershipSearch(db, Instance({Relation(2, {{7, 1}, {2, 8}})})));
  // x = 2, giving facts (2,1) and (2,2).
  EXPECT_TRUE(MembershipSearch(db, Instance({Relation(2, {{2, 1}, {2, 2}})})));
}

TEST(MembershipSearchTest, GlobalInequalityBlocks) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.SetGlobal(Conjunction{Neq(V(0), C(3))});
  CDatabase db{t};
  EXPECT_FALSE(MembershipSearch(db, Instance({Relation(1, {{3}})})));
  EXPECT_TRUE(MembershipSearch(db, Instance({Relation(1, {{4}})})));
}

TEST(MembershipSearchTest, UnsatisfiableGlobalHasNoMembers) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{FalseAtom()});
  CDatabase db{t};
  EXPECT_FALSE(MembershipSearch(db, Instance({Relation(1, {{1}})})));
  EXPECT_FALSE(MembershipSearch(db, Instance(std::vector<int>{1})));
}

TEST(MembershipSearchTest, LocalConditionSuppressionAllowsEmptyWorld) {
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(5))});
  CDatabase db{t};
  EXPECT_TRUE(MembershipSearch(db, Instance(std::vector<int>{1})));
  EXPECT_TRUE(MembershipSearch(db, Instance({Relation(1, {{1}})})));
  EXPECT_FALSE(MembershipSearch(db, Instance({Relation(1, {{2}})})));
}

TEST(MembershipSearchTest, SuppressionInteractsWithOtherRows) {
  // Row (x) with local x != 1 and row (1): worlds {1} (x = 1 suppressing
  // row 0, or x -> 1 impossible... x=1 makes row 0 off) and {c, 1}.
  CTable t(1);
  t.AddRow(Tuple{V(0)}, Conjunction{Neq(V(0), C(1))});
  t.AddRow(Tuple{C(1)});
  CDatabase db{t};
  EXPECT_TRUE(MembershipSearch(db, Instance({Relation(1, {{1}})})));
  EXPECT_TRUE(MembershipSearch(db, Instance({Relation(1, {{1}, {2}})})));
  EXPECT_FALSE(MembershipSearch(db, Instance({Relation(1, {{2}})})));
}

TEST(MembershipSearchTest, TupleMustLandInsideInstanceWhenOn) {
  // Ground row (7) with local condition x = 1: if x = 1 the world contains
  // 7. So {1} requires x != 1.
  CTable t(1);
  t.AddRow(Tuple{C(7)}, Conjunction{Eq(V(0), C(1))});
  t.AddRow(Tuple{V(0)});
  CDatabase db{t};
  // I0 = {1}: row 1 maps x -> 1, but then local of row 0 fires and 7 would
  // appear. Contradiction: not a member.
  EXPECT_FALSE(MembershipSearch(db, Instance({Relation(1, {{1}})})));
  // I0 = {2}: x -> 2, row 0 suppressed. Member.
  EXPECT_TRUE(MembershipSearch(db, Instance({Relation(1, {{2}})})));
  // I0 = {1, 7}: x -> 1, both rows land inside. Member.
  EXPECT_TRUE(MembershipSearch(db, Instance({Relation(1, {{1}, {7}})})));
}

TEST(MembershipViewTest, IdentityDispatches) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CDatabase db{t};
  EXPECT_TRUE(
      MembershipInView(View::Identity(), db, Instance({Relation(1, {{5}})})));
}

TEST(MembershipViewTest, PositiveExistentialViewViaImage) {
  // q = pi_0(sigma_{c1=3}(R)) on T = {(x, y)}: q(rep) = all {} or {c}...
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)});
  CDatabase db{t};
  RaExpr q = RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Eq(ColOrConst::Col(1),
                                     ColOrConst::Const(3))}),
      {0});
  View view = View::Ra({q});
  EXPECT_TRUE(MembershipInView(view, db, Instance({Relation(1, {{5}})})));
  EXPECT_TRUE(MembershipInView(view, db, Instance(std::vector<int>{1})));
  EXPECT_FALSE(
      MembershipInView(view, db, Instance({Relation(1, {{5}, {6}})})));
}

TEST(MembershipViewTest, FirstOrderViewViaEnumeration) {
  // q = R - {(1)} on T = {(x)}: q(rep) = {{}} union {{c}: c != 1}.
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CDatabase db{t};
  RaExpr q = RaExpr::Diff(RaExpr::Rel(0, 1),
                          RaExpr::ConstRel(Relation(1, {{1}})));
  View view = View::Ra({q});
  EXPECT_TRUE(MembershipInView(view, db, Instance(std::vector<int>{1})));
  EXPECT_TRUE(MembershipInView(view, db, Instance({Relation(1, {{2}})})));
  EXPECT_FALSE(MembershipInView(view, db, Instance({Relation(1, {{1}})})));
}

// --- Randomized cross-validation against the enumeration oracle ----------

class MembershipPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MembershipPropertyTest, SearchAgreesWithEnumeration) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options = testutil::SmallCTableOptions(
      /*arity=*/2, /*num_rows=*/3, /*num_constants=*/3, /*num_variables=*/3,
      /*num_local_atoms=*/(GetParam() % 2 == 0) ? 1 : 0,
      /*num_global_atoms=*/GetParam() % 3);
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};

  // Candidate instances: every enumerated world (must be members) plus a
  // few random instances (checked against the enumeration).
  std::vector<Instance> worlds = EnumerateWorlds(db);
  for (const Instance& w : worlds) {
    EXPECT_TRUE(MembershipSearch(db, w)) << t.ToString() << w.ToString();
  }
  for (int round = 0; round < 6; ++round) {
    Instance candidate({RandomRelation(2, 2, 4, rng)});
    WorldEnumOptions wopts;
    wopts.extra_constants = candidate.Constants();
    bool oracle = false;
    ForEachWorld(db, wopts, [&](const Instance& w, const Valuation&) {
      if (w == candidate) {
        oracle = true;
        return false;
      }
      return true;
    });
    EXPECT_EQ(MembershipSearch(db, candidate), oracle)
        << t.ToString() << candidate.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembershipPropertyTest,
                         ::testing::Range(1, 31));

TEST(MembershipAgreementTest, CoddAlgorithmAgreesWithSearchOnRandom) {
  std::mt19937 rng(101);
  for (int round = 0; round < 30; ++round) {
    // Large variable pool: repeats are unlikely, tables are Codd-ish.
    RandomCTableOptions options = testutil::CoddishCTableOptions(
        /*arity=*/2, /*num_rows=*/4, /*num_constants=*/3,
        /*num_variables=*/100);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};
    Instance candidate({RandomRelation(2, 3, 4, rng)});
    auto fast = MembershipCoddTables(db, candidate);
    if (!fast.has_value()) continue;  // repeated variable by chance
    EXPECT_EQ(*fast, MembershipSearch(db, candidate))
        << t.ToString() << candidate.ToString();
  }
}

}  // namespace
}  // namespace pw
