// Tests for the conditioned DATALOG fixpoint on c-tables: its result must
// represent exactly the pointwise DATALOG image of the input's worlds.

#include <gtest/gtest.h>

#include <random>

#include "ilalgebra/datalog_ctable.h"
#include "datalog/eval.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(100), V(102)}};
  step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
  p.AddRule(step);
  return p;
}

TEST(DatalogCTableTest, GroundInputMatchesOrdinaryEval) {
  CDatabase db(CTable::FromRelation(Relation(2, {{1, 2}, {2, 3}})));
  CDatabase out = DatalogOnCTables(TransitiveClosure(), db);
  Relation result(2);
  for (const CRow& row : out.table(1).rows()) {
    EXPECT_TRUE(row.local.IsTautology());
    result.Insert(ToFact(row.tuple));
  }
  Instance plain = SemiNaiveEval(TransitiveClosure(),
                                 Instance({Relation(2, {{1, 2}, {2, 3}})}));
  EXPECT_EQ(result, plain.relation(1));
}

TEST(DatalogCTableTest, JoinThroughVariableCarriesNoCondition) {
  // edge = {(1, x), (x, 3)}: path(1, 3) derivable with condition true
  // (the shared variable joins to itself).
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{V(0), C(3)});
  CDatabase db{t};
  CDatabase out = DatalogOnCTables(TransitiveClosure(), db);
  bool found_unconditional = false;
  for (const CRow& row : out.table(1).rows()) {
    if (row.tuple == Tuple{C(1), C(3)} && row.local.IsTautology()) {
      found_unconditional = true;
    }
  }
  EXPECT_TRUE(found_unconditional) << out.table(1).ToString();
}

TEST(DatalogCTableTest, JoinAcrossDistinctVariablesGetsEquality) {
  // edge = {(1, x), (y, 3)}: path(1, 3) holds under the condition x = y.
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{V(1), C(3)});
  CDatabase db{t};
  CDatabase out = DatalogOnCTables(TransitiveClosure(), db);
  bool found_conditional = false;
  for (const CRow& row : out.table(1).rows()) {
    if (row.tuple == Tuple{C(1), C(3)}) {
      ASSERT_EQ(row.local.size(), 1u);
      EXPECT_EQ(row.local.atoms()[0], Eq(V(0), V(1)));
      found_conditional = true;
    }
  }
  EXPECT_TRUE(found_conditional) << out.table(1).ToString();
}

TEST(DatalogCTableTest, SubsumptionKeepsWeakerConditions) {
  // edge = {(1, 2) :: true, (1, 2) :: x = 1}: path(1,2) should survive only
  // with the unconditional row.
  CTable t(2);
  t.AddRow(Tuple{C(1), C(2)});
  t.AddRow(Tuple{C(1), C(2)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  ConditionedFixpointStats stats;
  CDatabase out = DatalogOnCTables(TransitiveClosure(), db, &stats);
  int rows_12 = 0;
  for (const CRow& row : out.table(1).rows()) {
    if (row.tuple == Tuple{C(1), C(2)}) {
      ++rows_12;
      EXPECT_TRUE(row.local.IsTautology());
    }
  }
  EXPECT_EQ(rows_12, 1);
  EXPECT_GT(stats.subsumed_rows, 0u);
}

TEST(DatalogCTableTest, CyclicDataTerminates) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{V(0), C(1)});
  t.AddRow(Tuple{C(2), C(1)});
  CDatabase db{t};
  ConditionedFixpointStats stats;
  CDatabase out = DatalogOnCTables(TransitiveClosure(), db, &stats);
  EXPECT_GT(out.table(1).num_rows(), 0u);
  EXPECT_LT(stats.rounds, 100u);
}

// Property: rep(conditioned fixpoint) == fixpoint of each world.
class DatalogCTablePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DatalogCTablePropertyTest, RepresentsFixpointOfEveryWorld) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options =
      testutil::SmallCTableOptions(/*arity=*/2, /*num_rows=*/3,
          /*num_constants=*/3, /*num_variables=*/2,
          /*num_local_atoms=*/GetParam() % 2,
          /*num_global_atoms=*/GetParam() % 2);
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};
  DatalogProgram tc = TransitiveClosure();
  CDatabase image = DatalogOnCTables(tc, db);

  // For every satisfying valuation: sigma(image) must equal the fixpoint of
  // sigma(db), component-wise.
  WorldEnumOptions wopts;
  bool all_match = true;
  ForEachSatisfyingValuation(db, wopts, [&](const Valuation& v) {
    Instance world = v.Apply(db);
    Instance expected = SemiNaiveEval(tc, world);
    Instance got = v.Apply(image);
    if (got != expected) {
      all_match = false;
      return false;
    }
    return true;
  });
  EXPECT_TRUE(all_match) << t.ToString() << image.table(1).ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogCTablePropertyTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace pw
