// Tests for the conditioned DATALOG fixpoint on c-tables: its result must
// represent exactly the pointwise DATALOG image of the input's worlds.

#include <gtest/gtest.h>

#include <random>

#include "ilalgebra/datalog_ctable.h"
#include "datalog/eval.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(100), V(102)}};
  step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
  p.AddRule(step);
  return p;
}

TEST(DatalogCTableTest, GroundInputMatchesOrdinaryEval) {
  CDatabase db(CTable::FromRelation(Relation(2, {{1, 2}, {2, 3}})));
  CDatabase out = DatalogOnCTables(TransitiveClosure(), db);
  Relation result(2);
  for (const CRow& row : out.table(1).rows()) {
    EXPECT_TRUE(row.local().IsTautology());
    result.Insert(ToFact(row.tuple));
  }
  Instance plain = SemiNaiveEval(TransitiveClosure(),
                                 Instance({Relation(2, {{1, 2}, {2, 3}})}));
  EXPECT_EQ(result, plain.relation(1));
}

TEST(DatalogCTableTest, JoinThroughVariableCarriesNoCondition) {
  // edge = {(1, x), (x, 3)}: path(1, 3) derivable with condition true
  // (the shared variable joins to itself).
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{V(0), C(3)});
  CDatabase db{t};
  CDatabase out = DatalogOnCTables(TransitiveClosure(), db);
  bool found_unconditional = false;
  for (const CRow& row : out.table(1).rows()) {
    if (row.tuple == Tuple{C(1), C(3)} && row.local().IsTautology()) {
      found_unconditional = true;
    }
  }
  EXPECT_TRUE(found_unconditional) << out.table(1).ToString();
}

TEST(DatalogCTableTest, JoinAcrossDistinctVariablesGetsEquality) {
  // edge = {(1, x), (y, 3)}: path(1, 3) holds under the condition x = y.
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{V(1), C(3)});
  CDatabase db{t};
  CDatabase out = DatalogOnCTables(TransitiveClosure(), db);
  bool found_conditional = false;
  for (const CRow& row : out.table(1).rows()) {
    if (row.tuple == Tuple{C(1), C(3)}) {
      ASSERT_EQ(row.local().size(), 1u);
      EXPECT_EQ(row.local().atoms()[0], Eq(V(0), V(1)));
      found_conditional = true;
    }
  }
  EXPECT_TRUE(found_conditional) << out.table(1).ToString();
}

TEST(DatalogCTableTest, SubsumptionKeepsWeakerConditions) {
  // edge = {(1, 2) :: true, (1, 2) :: x = 1}: path(1,2) should survive only
  // with the unconditional row.
  CTable t(2);
  t.AddRow(Tuple{C(1), C(2)});
  t.AddRow(Tuple{C(1), C(2)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  ConditionedFixpointStats stats;
  CDatabase out = DatalogOnCTables(TransitiveClosure(), db, &stats);
  int rows_12 = 0;
  for (const CRow& row : out.table(1).rows()) {
    if (row.tuple == Tuple{C(1), C(2)}) {
      ++rows_12;
      EXPECT_TRUE(row.local().IsTautology());
    }
  }
  EXPECT_EQ(rows_12, 1);
  EXPECT_GT(stats.subsumed_rows, 0u);
}

TEST(DatalogCTableTest, CyclicDataTerminates) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{V(0), C(1)});
  t.AddRow(Tuple{C(2), C(1)});
  CDatabase db{t};
  ConditionedFixpointStats stats;
  CDatabase out = DatalogOnCTables(TransitiveClosure(), db, &stats);
  EXPECT_GT(out.table(1).num_rows(), 0u);
  EXPECT_LT(stats.rounds, 100u);
}

TEST(DatalogCTableTest, SemiNaiveSkipsRederivations) {
  // On a chain the naive strategy re-derives every path each round;
  // semi-naive only fires combinations touching the previous delta, so its
  // duplicate count must be strictly smaller while the kept rows coincide.
  // The null edge makes the run intern fresh conditions; private per-run
  // interners keep the growth counter deterministic.
  CTable t(2);
  for (int i = 0; i < 6; ++i) t.AddRow(Tuple{C(i), C(i + 1)});
  t.AddRow(Tuple{C(6), V(0)});
  t.AddRow(Tuple{V(1), C(7)});
  CDatabase db{t};
  ConditionInterner semi_interner;
  ConditionInterner naive_interner;
  DatalogCTableOptions semi_options;
  semi_options.interner = &semi_interner;
  DatalogCTableOptions naive_options;
  naive_options.semi_naive = false;
  naive_options.interner = &naive_interner;
  ConditionedFixpointStats semi;
  ConditionedFixpointStats naive;
  CDatabase fast =
      DatalogOnCTables(TransitiveClosure(), db, &semi, semi_options);
  CDatabase seed =
      DatalogOnCTables(TransitiveClosure(), db, &naive, naive_options);
  EXPECT_EQ(fast.table(1).num_rows(), seed.table(1).num_rows());
  EXPECT_EQ(semi.derived_rows, naive.derived_rows);
  EXPECT_LT(semi.duplicate_rows, naive.duplicate_rows);
  EXPECT_GT(semi.delta_rows, 0u);
  EXPECT_GT(semi.interner_conjunctions, 0u);
}

TEST(DatalogCTableTest, InsertReallocationMidFireRuleIsSafe) {
  // Regression for the iterator-invalidation hazard in FireRule: with the
  // head predicate also in the body (q(x,z) :- q(x,y), q(y,z)), Insert
  // appends to — and repeatedly reallocates — the very row vector the join
  // loop is ranging over, and (on the indexed path) extends the very index
  // whose candidates are being consumed. A 48-edge chain pushes ~1.2k rows
  // through many vector growths; the loop must address rows by id and
  // snapshot candidate lists, never hold references across Insert. Verified
  // against the ordinary ground fixpoint, with the index on and off.
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule square;
  square.head = {1, Tuple{V(100), V(102)}};
  square.body = {{1, Tuple{V(100), V(101)}}, {1, Tuple{V(101), V(102)}}};
  p.AddRule(square);

  Relation edges(2);
  for (int i = 0; i < 48; ++i) edges.Insert({i, i + 1});
  Instance expected = SemiNaiveEval(p, Instance({edges}));
  CDatabase db(CTable::FromRelation(edges));

  for (bool use_index : {true, false}) {
    DatalogCTableOptions options;
    options.use_index = use_index;
    ConditionedFixpointStats stats;
    CDatabase out = DatalogOnCTables(p, db, &stats, options);
    Relation result(2);
    for (const CRow& row : out.table(1).rows()) {
      EXPECT_TRUE(row.local().IsTautology());
      result.Insert(ToFact(row.tuple));
    }
    EXPECT_EQ(result, expected.relation(1)) << "use_index=" << use_index;
    EXPECT_EQ(stats.index_probes > 0, use_index);
  }
}

TEST(DatalogCTableTest, IndexedMatchingIsIdenticalToScan) {
  // Indexed body-atom matching enumerates exactly the rows the scan visits,
  // in the same order, so the result tables must be identical — on input
  // with nulls at join positions (wildcard rows) and local conditions.
  CTable t(2);
  for (int i = 0; i < 10; ++i) t.AddRow(Tuple{C(i), C(i + 1)});
  t.AddRow(Tuple{C(10), V(0)});
  t.AddRow(Tuple{V(0), C(11)}, Conjunction{Neq(V(0), C(3))});
  CDatabase db{t};

  DatalogCTableOptions indexed;
  DatalogCTableOptions scan;
  scan.use_index = false;
  ConditionedFixpointStats indexed_stats;
  ConditionedFixpointStats scan_stats;
  CDatabase fast = DatalogOnCTables(TransitiveClosure(), db, &indexed_stats,
                                    indexed);
  CDatabase seed = DatalogOnCTables(TransitiveClosure(), db, &scan_stats,
                                    scan);
  ASSERT_EQ(fast.num_tables(), seed.num_tables());
  for (size_t p = 0; p < fast.num_tables(); ++p) {
    EXPECT_EQ(fast.table(p), seed.table(p));
  }
  // Identical derivations, drops, and rounds — the index changes only how
  // candidates are found.
  EXPECT_EQ(indexed_stats.derived_rows, scan_stats.derived_rows);
  EXPECT_EQ(indexed_stats.subsumed_rows, scan_stats.subsumed_rows);
  EXPECT_EQ(indexed_stats.duplicate_rows, scan_stats.duplicate_rows);
  EXPECT_EQ(indexed_stats.rounds, scan_stats.rounds);
  // One index per (predicate, bound-column subset), built once and extended
  // across rounds — a mid-query catch-up after an append is an *extend*,
  // never another build, so the build counter stays flat however many
  // rounds the fixpoint runs.
  EXPECT_GT(indexed_stats.index_probes, 0u);
  EXPECT_GT(indexed_stats.index_hits, 0u);
  EXPECT_LE(indexed_stats.index_builds, 4u);
  EXPECT_LT(indexed_stats.index_builds, indexed_stats.rounds);
  EXPECT_GT(indexed_stats.rounds, 3u);
  EXPECT_EQ(scan_stats.index_probes, 0u);
  EXPECT_EQ(scan_stats.index_builds, 0u);
  EXPECT_EQ(scan_stats.index_extends, 0u);
}

TEST(DatalogCTableTest, ProbedIndexExtendsButNeverRebuildsMidQuery) {
  // The step rule q(x,z) :- q(x,y), q(y,z) probes q itself while Insert
  // keeps appending to q: every round's catch-up must register as an
  // extend of the one q-index, never as a rebuild — the counters pin the
  // semantics the bench relies on (builds = distinct (predicate, columns)
  // subsets, extends = incremental catch-ups).
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule square;
  square.head = {1, Tuple{V(100), V(102)}};
  square.body = {{1, Tuple{V(100), V(101)}}, {1, Tuple{V(101), V(102)}}};
  p.AddRule(square);
  Relation edges(2);
  for (int i = 0; i < 16; ++i) edges.Insert({i, i + 1});
  CDatabase db(CTable::FromRelation(edges));

  ConditionedFixpointStats stats;
  DatalogOnCTables(p, db, &stats);
  // Two bound-column subsets are probed — q on its first position (the
  // delta-pos-0 firing binds y from the first atom) and q on its second
  // position (the delta-first rotation of the delta-pos-1 firing binds y
  // from the second atom) — each built exactly once, extending every time
  // the probe catches up on rows derived since.
  EXPECT_EQ(stats.index_builds, 2u);
  EXPECT_GT(stats.index_extends, 0u);
  EXPECT_GT(stats.index_probes, stats.index_builds);
}

TEST(DatalogCTableTest, EmptyBodyRuleFiresOnce) {
  // A ground-fact rule has no body atom to carry a delta; it must still
  // appear in the fixpoint under both strategies.
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  DatalogRule fact;
  fact.head = {1, Tuple{C(7), C(8)}};
  p.AddRule(fact);
  CDatabase db(CTable::FromRelation(Relation(2, {{1, 2}})));
  DatalogCTableOptions naive_options;
  naive_options.semi_naive = false;
  for (const DatalogCTableOptions& options :
       {DatalogCTableOptions{}, naive_options}) {
    CDatabase out = DatalogOnCTables(p, db, nullptr, options);
    ASSERT_EQ(out.table(1).num_rows(), 1u);
    EXPECT_EQ(out.table(1).row(0).tuple, (Tuple{C(7), C(8)}));
  }
}

// Regression for the deleted ad-hoc canonicalizer: datalog_ctable.cc used to
// carry its own AtomSet machinery (sort, dedup, drop trivially-true atoms;
// subset comparison for subsumption). The interner's canonicalization must
// agree with it wherever the old machinery was defined, and strictly extend
// it through equality congruence.
TEST(DatalogCTableTest, InternerSubsumesDeletedAtomSetCanonicalizer) {
  auto old_canonicalize = [](const Conjunction& c) {
    std::vector<CondAtom> atoms;
    for (const CondAtom& a : c.atoms()) {
      if (!IsTriviallyTrue(a)) atoms.push_back(a);
    }
    std::sort(atoms.begin(), atoms.end());
    atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
    return atoms;
  };

  ConditionInterner& interner = ConditionInterner::Global();
  std::mt19937 rng(20260726);
  for (int round = 0; round < 300; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/1, /*num_rows=*/2, /*num_constants=*/3, /*num_variables=*/3,
        /*num_local_atoms=*/3);
    // Inequality-only conditions: exactly the fragment where the old
    // machinery was canonical. The interner must produce the same atom set.
    options.equality_probability = 0.0;
    CTable t = RandomCTable(options, rng);
    for (const CRow& row : t.rows()) {
      std::vector<CondAtom> expected = old_canonicalize(row.local());
      bool expect_false = std::any_of(expected.begin(), expected.end(),
                                      IsTriviallyFalse);
      ConjId id = row.LocalId(interner);
      if (expect_false) {
        EXPECT_EQ(id, ConditionInterner::kFalseConj) << row.local().ToString();
        continue;
      }
      EXPECT_EQ(interner.Resolve(id).atoms(), expected)
          << row.local().ToString();
    }

    // Old subset subsumption must be honored by the interner's implication
    // (which additionally sees congruence consequences the subset test
    // missed).
    const Conjunction& a = t.row(0).local();
    const Conjunction& b = t.row(1).local();
    Conjunction both = Conjunction::And(a, b);
    if (both.Satisfiable()) {
      EXPECT_TRUE(
          interner.Implies(interner.Intern(both), interner.Intern(a)));
      EXPECT_TRUE(
          interner.Implies(interner.Intern(both), interner.Intern(b)));
    }
  }
}

// Property: rep(conditioned fixpoint) == fixpoint of each world.
class DatalogCTablePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DatalogCTablePropertyTest, RepresentsFixpointOfEveryWorld) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options =
      testutil::SmallCTableOptions(/*arity=*/2, /*num_rows=*/3,
          /*num_constants=*/3, /*num_variables=*/2,
          /*num_local_atoms=*/GetParam() % 2,
          /*num_global_atoms=*/GetParam() % 2);
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};
  DatalogProgram tc = TransitiveClosure();
  CDatabase image = DatalogOnCTables(tc, db);

  // For every satisfying valuation: sigma(image) must equal the fixpoint of
  // sigma(db), component-wise.
  WorldEnumOptions wopts;
  bool all_match = true;
  ForEachSatisfyingValuation(db, wopts, [&](const Valuation& v) {
    Instance world = v.Apply(db);
    Instance expected = SemiNaiveEval(tc, world);
    Instance got = v.Apply(image);
    if (got != expected) {
      all_match = false;
      return false;
    }
    return true;
  });
  EXPECT_TRUE(all_match) << t.ToString() << image.table(1).ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogCTablePropertyTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace pw
