// Tests for the containment problem CONT (Theorems 4.1, 4.2): freezing,
// the PTIME/NP/coNP special cases, the general Pi-2-p search, and
// randomized cross-validation against a two-level enumeration oracle.

#include <gtest/gtest.h>

#include <random>

#include "decision/complexity_map.h"
#include "decision/containment.h"
#include "decision/membership.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(FreezeTest, DistinctFreshConstantsPerVariable) {
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)});
  t.AddRow(Tuple{V(2), C(1)});
  CDatabase db{t};
  Instance k0 = Freeze(db, {});
  ASSERT_EQ(k0.relation(0).size(), 2u);
  auto consts = k0.Constants();
  EXPECT_EQ(consts.size(), 4u);  // 1 + three distinct fresh
}

TEST(FreezeTest, ForcedEqualitiesRespected) {
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)});
  t.SetGlobal(Conjunction{Eq(V(0), V(1))});
  CDatabase db{t};
  Instance k0 = Freeze(db, {});
  const Fact& f = *k0.relation(0).begin();
  EXPECT_EQ(f[0], f[1]);
}

TEST(FreezeTest, ForcedConstantsRespected) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.SetGlobal(Conjunction{Eq(V(0), C(9))});
  CDatabase db{t};
  EXPECT_EQ(Freeze(db, {}).relation(0), Relation(1, {{9}}));
}

TEST(FreezeTest, FrozenInstanceIsAMember) {
  std::mt19937 rng(42);
  for (int round = 0; round < 20; ++round) {
    RandomCTableOptions options =
        testutil::SmallCTableOptions(/*arity=*/2, /*num_rows=*/3,
            /*num_constants=*/2, /*num_variables=*/3, /*num_local_atoms=*/0,
            /*num_global_atoms=*/1);
    options.equality_probability = 0.3;
    CTable t = RandomCTable(options, rng);
    if (t.Kind() > TableKind::kGTable) continue;
    CDatabase db{t};
    if (RepIsEmpty(db)) continue;
    Instance k0 = Freeze(db, {});
    EXPECT_TRUE(MembershipSearch(db, k0)) << t.ToString() << k0.ToString();
  }
}

TEST(ContCoddTest, SubsetOfMoreGeneralTable) {
  // {(1, 2)} contained in {(x, y)}.
  CDatabase lhs(CTable::FromRelation(Relation(2, {{1, 2}})));
  CTable general(2);
  general.AddRow(Tuple{V(0), V(1)});
  CDatabase rhs{general};
  EXPECT_EQ(ContGTablesInCoddTables(lhs, rhs), true);
  // And not vice versa: rep(rhs) has worlds like {(3, 4)}.
  EXPECT_EQ(ContGTablesInCoddTables(rhs, lhs), false);
}

TEST(ContCoddTest, SpecializationIsContainment) {
  // T0 = {(x, 1)} contained in T = {(y, z)}.
  CTable t0(2);
  t0.AddRow(Tuple{V(0), C(1)});
  CTable t(2);
  t.AddRow(Tuple{V(1), V(2)});
  EXPECT_EQ(ContGTablesInCoddTables(CDatabase{t0}, CDatabase{t}), true);
  EXPECT_EQ(ContGTablesInCoddTables(CDatabase{t}, CDatabase{t0}), false);
}

TEST(ContCoddTest, RowCountsMatter) {
  // T0 = {(x), (y)} (worlds of size 1 or 2) vs T = {(z)} (size 1 only).
  CTable t0(1);
  t0.AddRow(Tuple{V(0)});
  t0.AddRow(Tuple{V(1)});
  CTable t(1);
  t.AddRow(Tuple{V(2)});
  EXPECT_EQ(ContGTablesInCoddTables(CDatabase{t0}, CDatabase{t}), false);
  EXPECT_EQ(ContGTablesInCoddTables(CDatabase{t}, CDatabase{t0}), true);
}

TEST(ContCoddTest, EmptyLhsRepIsContained) {
  CTable t0(1);
  t0.AddRow(Tuple{C(1)});
  t0.SetGlobal(Conjunction{FalseAtom()});
  CTable t(1);
  t.AddRow(Tuple{C(9)});
  EXPECT_EQ(ContGTablesInCoddTables(CDatabase{t0}, CDatabase{t}), true);
}

TEST(ContCoddTest, GTableLhsUsesNormalization) {
  // T0 = {(x, y)} with x = y contained in T = {(z, z)}? rhs is an e-table,
  // not Codd — so this routes to the e-table procedure instead.
  CTable t0(2);
  t0.AddRow(Tuple{V(0), V(1)});
  t0.SetGlobal(Conjunction{Eq(V(0), V(1))});
  CTable t(2);
  t.AddRow(Tuple{V(2), V(2)});
  EXPECT_FALSE(ContGTablesInCoddTables(CDatabase{t0}, CDatabase{t})
                   .has_value());
  EXPECT_EQ(ContGTablesInETables(CDatabase{t0}, CDatabase{t}), true);
  // Without the equality, lhs has worlds (a, b) with a != b: not contained.
  CTable t1(2);
  t1.AddRow(Tuple{V(0), V(1)});
  EXPECT_EQ(ContGTablesInETables(CDatabase{t1}, CDatabase{t}), false);
}

TEST(ContViewInCoddTest, ViewImagesContained) {
  // lhs = {(x)}, view q = pi_{0,0}: images {(c, c)}; rhs = {(y, y)}?? rhs
  // must be Codd: {(y, z)} contains all images.
  CTable t0(1);
  t0.AddRow(Tuple{V(0)});
  View q = View::Ra({RaExpr::ProjectCols(RaExpr::Rel(0, 1), {0, 0})});
  CTable rhs_wide(2);
  rhs_wide.AddRow(Tuple{V(1), V(2)});
  EXPECT_EQ(ContViewInCoddTables(q, CDatabase{t0}, CDatabase{rhs_wide}),
            true);
  // rhs = {(1, y)} does not contain image {(2, 2)}.
  CTable rhs_narrow(2);
  rhs_narrow.AddRow(Tuple{C(1), V(3)});
  EXPECT_EQ(ContViewInCoddTables(q, CDatabase{t0}, CDatabase{rhs_narrow}),
            false);
}

TEST(ContainmentSearchTest, ITableRhsNeedsSearch) {
  // T0 = {(x)} vs T = {(y)} with y != 1: world {(1)} is not contained.
  CTable t0(1);
  t0.AddRow(Tuple{V(0)});
  CTable t(1);
  t.AddRow(Tuple{V(1)});
  t.SetGlobal(Conjunction{Neq(V(1), C(1))});
  EXPECT_FALSE(ContainmentSearch(View::Identity(), CDatabase{t0},
                                 View::Identity(), CDatabase{t}));
  EXPECT_TRUE(ContainmentSearch(View::Identity(), CDatabase{t},
                                View::Identity(), CDatabase{t0}));
}

TEST(ContainmentSearchTest, FreezingWouldBeWrongForITableRhs) {
  // Classic trap: T0 = {(x)}, T = {(y)} with global y != 1. The freeze of
  // T0 (a fresh constant) IS a member of rep(T), yet containment fails —
  // which is exactly why Theorem 4.2(1) is Pi-2-p-hard. Verify our search
  // does not fall into the trap.
  CTable t0(1);
  t0.AddRow(Tuple{V(0)});
  CTable t(1);
  t.AddRow(Tuple{V(1)});
  t.SetGlobal(Conjunction{Neq(V(1), C(1))});
  CDatabase lhs{t0}, rhs{t};
  Instance k0 = Freeze(lhs, rhs.Constants());
  EXPECT_TRUE(MembershipSearch(rhs, k0));  // freezing alone says "yes"
  EXPECT_FALSE(Containment(View::Identity(), lhs, View::Identity(), rhs));
}

TEST(ContainmentDispatcherTest, MatchesSearchOnRandomGTablePairs) {
  std::mt19937 rng(7);
  for (int round = 0; round < 25; ++round) {
    RandomCTableOptions options =
        testutil::SmallCTableOptions(/*arity=*/1, /*num_rows=*/2,
            /*num_constants=*/2, /*num_variables=*/2, /*num_local_atoms=*/0,
            /*num_global_atoms=*/round % 2);
    options.equality_probability = 0.4;
    CTable a = RandomCTable(options, rng);
    options.num_global_atoms = 0;
    CTable b = RandomCTable(options, rng);
    CDatabase lhs{a}, rhs{b};
    bool dispatched =
        Containment(View::Identity(), lhs, View::Identity(), rhs);
    bool searched = ContainmentSearch(View::Identity(), lhs,
                                      View::Identity(), rhs);
    EXPECT_EQ(dispatched, searched) << a.ToString() << "\nvs\n"
                                    << b.ToString();
  }
}

TEST(ComplexityMapTest, Fig2SpotChecks) {
  using C = ComplexityClass;
  // The landmark cells of Fig. 2.
  EXPECT_EQ(ContainmentComplexity(RepKind::kInstance, RepKind::kInstance),
            C::kPTime);
  EXPECT_EQ(ContainmentComplexity(RepKind::kGTable, RepKind::kCoddTable),
            C::kPTime);  // Thm 4.1(3)
  EXPECT_EQ(ContainmentComplexity(RepKind::kGTable, RepKind::kETable),
            C::kNp);  // Thm 4.1(2)
  EXPECT_EQ(ContainmentComplexity(RepKind::kCoddTable, RepKind::kITable),
            C::kPi2p);  // Thm 4.2(1): the striking cell
  EXPECT_EQ(ContainmentComplexity(RepKind::kView, RepKind::kCoddTable),
            C::kCoNp);  // Thm 4.1(1) + 4.2(4)
  EXPECT_EQ(ContainmentComplexity(RepKind::kCTable, RepKind::kETable),
            C::kPi2p);  // Thm 4.2(3)
  EXPECT_EQ(ContainmentComplexity(RepKind::kCoddTable, RepKind::kView),
            C::kPi2p);  // Thm 4.2(2)
  EXPECT_EQ(ContainmentComplexity(RepKind::kInstance, RepKind::kETable),
            C::kNp);  // MEMB e-table, Thm 3.1(2)
  EXPECT_EQ(ContainmentComplexity(RepKind::kInstance, RepKind::kCoddTable),
            C::kPTime);  // Thm 3.1(1)
}

TEST(ComplexityMapTest, RepKindOfDatabases) {
  CDatabase ground(CTable::FromRelation(Relation(1, {{1}})));
  EXPECT_EQ(RepKindOf(ground), RepKind::kInstance);
  CTable codd(1);
  codd.AddRow(Tuple{V(0)});
  EXPECT_EQ(RepKindOf(CDatabase{codd}), RepKind::kCoddTable);
  CTable itab(1);
  itab.AddRow(Tuple{V(0)});
  itab.SetGlobal(Conjunction{Neq(V(0), C(1))});
  EXPECT_EQ(RepKindOf(CDatabase{itab}), RepKind::kITable);
}

TEST(ComplexityMapTest, OtherProblemClassifications) {
  using C = ComplexityClass;
  EXPECT_EQ(MembershipComplexity(RepKind::kCoddTable), C::kPTime);
  EXPECT_EQ(MembershipComplexity(RepKind::kETable), C::kNp);
  EXPECT_EQ(UniquenessComplexity(RepKind::kGTable), C::kPTime);
  EXPECT_EQ(UniquenessComplexity(RepKind::kCTable), C::kCoNp);
  EXPECT_EQ(PossibilityUnboundedComplexity(RepKind::kCoddTable), C::kPTime);
  EXPECT_EQ(PossibilityUnboundedComplexity(RepKind::kITable), C::kNp);
  EXPECT_EQ(
      PossibilityBoundedComplexity(QueryFragment::kPositiveExistential),
      C::kPTime);
  EXPECT_EQ(PossibilityBoundedComplexity(QueryFragment::kDatalog), C::kNp);
  EXPECT_EQ(CertaintyComplexity(QueryFragment::kDatalog, RepKind::kGTable),
            C::kPTime);
  EXPECT_EQ(CertaintyComplexity(QueryFragment::kFirstOrder,
                                RepKind::kCoddTable),
            C::kCoNp);
}

// --- Randomized cross-validation ------------------------------------------

/// Oracle: for every lhs world, scan rhs worlds for an equal one.
bool ContainmentOracle(const CDatabase& lhs, const CDatabase& rhs) {
  WorldEnumOptions lopts;
  lopts.extra_constants = rhs.Constants();
  bool contained = true;
  ForEachWorld(lhs, lopts, [&](const Instance& lw, const Valuation&) {
    WorldEnumOptions ropts;
    ropts.extra_constants = lw.Constants();
    for (ConstId c : lhs.Constants()) ropts.extra_constants.push_back(c);
    bool found = false;
    ForEachWorld(rhs, ropts, [&](const Instance& rw, const Valuation&) {
      if (lw == rw) {
        found = true;
        return false;
      }
      return true;
    });
    if (!found) {
      contained = false;
      return false;
    }
    return true;
  });
  return contained;
}

class ContainmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentPropertyTest, SearchAgreesWithOracle) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options =
      testutil::SmallCTableOptions(/*arity=*/1, /*num_rows=*/2,
          /*num_constants=*/2, /*num_variables=*/2,
          /*num_local_atoms=*/GetParam() % 2,
          /*num_global_atoms=*/GetParam() % 2);
  CTable a = RandomCTable(options, rng);
  CTable b = RandomCTable(options, rng);
  CDatabase lhs{a}, rhs{b};
  EXPECT_EQ(
      ContainmentSearch(View::Identity(), lhs, View::Identity(), rhs),
      ContainmentOracle(lhs, rhs))
      << a.ToString() << "\nvs\n" << b.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentPropertyTest,
                         ::testing::Range(1, 31));

}  // namespace
}  // namespace pw
