// Tests for incremental view maintenance (datalog/ivm.h): a MaterializedView
// must stay *identical* — same tuples, same interned condition ids — to
// recomputing its fixpoint from scratch on the updated base, across inserts,
// conditional inserts, covered deletes, and cone-rebuild deletes; demand
// views must keep serving exactly DatalogQueryOnCTables' answers. The
// randomized cross-strategy families live in differential_test.cc; these are
// the targeted behaviors and the stats that pin the incremental paths on.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "condition/interner.h"
#include "datalog/ivm.h"
#include "ilalgebra/datalog_ctable.h"
#include "tables/updates.h"
#include "test_util.h"

namespace pw {
namespace {

/// Rows rendered canonically (tuple + interner-canonical local condition),
/// sorted — the "identical up to row order" comparison key.
std::vector<std::string> Canon(const CTable& t) {
  ConditionInterner& interner = ConditionInterner::Global();
  std::vector<std::string> out;
  for (const CRow& row : t.rows()) {
    out.push_back(ToString(row.tuple) + " :: " +
                  interner.Resolve(row.LocalId(interner)).ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool HasTuple(const CTable& t, const Tuple& want) {
  for (const CRow& row : t.rows()) {
    if (row.tuple == want) return true;
  }
  return false;
}

/// Asserts the view's maintained state equals a from-scratch fixpoint of its
/// evaluated program over its current base.
void ExpectMatchesRecompute(const MaterializedView& view) {
  CDatabase live = view.Materialized();
  CDatabase scratch =
      DatalogOnCTables(view.evaluated_program(), view.base());
  ASSERT_EQ(live.num_tables(), scratch.num_tables());
  for (size_t p = 0; p < live.num_tables(); ++p) {
    EXPECT_EQ(Canon(live.table(p)), Canon(scratch.table(p)))
        << "view diverged from recompute on predicate " << p;
  }
}

/// Transitive closure: pred 0 = edge (EDB), pred 1 = tc (IDB).
DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(100), V(102)}};
  step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
  p.AddRule(step);
  return p;
}

CDatabase Chain(int n) {
  CTable edges(2);
  for (int i = 0; i + 1 < n; ++i) {
    edges.AddRow(Tuple{C(i), C(i + 1)});
  }
  return CDatabase{std::move(edges)};
}

TEST(IvmTest, InsertExtendsClosureIncrementally) {
  MaterializedView view(TransitiveClosure(), Chain(4));
  ExpectMatchesRecompute(view);

  view.Insert(0, Fact{3, 4});  // extend the chain
  ExpectMatchesRecompute(view);
  view.Insert(0, Fact{9, 0});  // new component head reaching everything
  ExpectMatchesRecompute(view);

  EXPECT_EQ(view.stats().updates_applied, 2u);
  EXPECT_EQ(view.stats().inserts_seeded, 2u);
  EXPECT_EQ(view.stats().cone_rebuilds, 0u);
}

TEST(IvmTest, DuplicateInsertIsFree) {
  MaterializedView view(TransitiveClosure(), Chain(4));
  size_t derived_before = view.stats().fixpoint.derived_rows;
  view.Insert(0, Fact{0, 1});  // already present
  EXPECT_EQ(view.stats().inserts_seeded, 0u);
  EXPECT_EQ(view.stats().fixpoint.derived_rows, derived_before);
  ExpectMatchesRecompute(view);
}

TEST(IvmTest, InsertsExtendIndexesWithoutRebuilding) {
  // The insertion path must keep extending the fixpoint's cached body-atom
  // indexes: a stream of inserts may add index extends but never another
  // build of an existing index. The first insert is a warm-up — its
  // delta-first firing probes one bound-column subset (tc on its second
  // position) the initial materialization never needed, building that index
  // once; every later insert must only extend.
  MaterializedView view(TransitiveClosure(), Chain(6));
  view.Insert(0, Fact{5, 6});
  size_t builds_after_first = view.stats().fixpoint.index_builds;
  for (int i = 6; i < 10; ++i) {
    view.Insert(0, Fact{i, i + 1});
  }
  EXPECT_EQ(view.stats().fixpoint.index_builds, builds_after_first);
  EXPECT_GT(view.stats().fixpoint.index_extends, 0u);
  ExpectMatchesRecompute(view);
}

TEST(IvmTest, DeleteOfUnmatchableFactIsFree) {
  MaterializedView view(TransitiveClosure(), Chain(4));
  size_t derived_before = view.stats().fixpoint.derived_rows;
  view.Delete(0, Fact{7, 7});  // matches no row
  EXPECT_EQ(view.stats().deletes_covered, 0u);
  EXPECT_EQ(view.stats().cone_rebuilds, 0u);
  EXPECT_EQ(view.stats().fixpoint.derived_rows, derived_before);
  ExpectMatchesRecompute(view);
}

TEST(IvmTest, DeleteOfGroundEdgeRebuildsCone) {
  MaterializedView view(TransitiveClosure(), Chain(5));
  view.Delete(0, Fact{2, 3});  // cuts the chain: closure shrinks
  EXPECT_EQ(view.stats().cone_rebuilds, 1u);
  EXPECT_GT(view.stats().rows_overdeleted, 0u);
  ExpectMatchesRecompute(view);
  // tc must have lost every path across the cut.
  EXPECT_FALSE(HasTuple(view.Materialized().table(1), Tuple{C(0), C(4)}));
}

TEST(IvmTest, CoveredDeleteViaUnsatisfiableRemovedRow) {
  // A base row whose condition cannot hold under the global condition was
  // never seeded into the fixpoint; deleting through it rewrites the base
  // table but leaves no live trace to repair — the covered fast path, no
  // over-deletion.
  CTable edges(2);
  edges.AddRow(Tuple{V(0), V(1)}, Conjunction{Neq(V(3), C(1))});
  edges.AddRow(Tuple{C(0), C(1)});
  edges.SetGlobal(Conjunction{Eq(V(3), C(1))});
  MaterializedView view(TransitiveClosure(), CDatabase{std::move(edges)});
  view.Delete(0, Fact{5, 5});  // matches only the unsatisfiable row
  EXPECT_EQ(view.stats().deletes_covered, 1u);
  EXPECT_EQ(view.stats().cone_rebuilds, 0u);
  ExpectMatchesRecompute(view);
}

TEST(IvmTest, CoveredDeleteViaKeptSubsumingRow) {
  // Rows ((x,1), x != 3) and ((x,1), x = 5): the second is subsumed at seed
  // time (x = 5 implies x != 3), so it has no live trace. Deleting (3,1)
  // leaves the first row unchanged (its guard x != 3 collapses onto its own
  // condition, so it is kept) and rewrites only the subsumed row — whose
  // removal the kept row covers. Fast path, no new derivations.
  CTable edges(2);
  edges.AddRow(Tuple{V(0), C(1)}, Conjunction{Neq(V(0), C(3))});
  edges.AddRow(Tuple{V(0), C(1)}, Conjunction{Eq(V(0), C(5))});
  MaterializedView view(TransitiveClosure(), CDatabase{std::move(edges)});
  size_t derived_before = view.stats().fixpoint.derived_rows;
  view.Delete(0, Fact{3, 1});
  EXPECT_EQ(view.stats().cone_rebuilds, 0u);
  EXPECT_EQ(view.stats().fixpoint.derived_rows, derived_before);
  ExpectMatchesRecompute(view);
}

TEST(IvmTest, ConditionalInsertSeedsConditionedRow) {
  MaterializedView view(TransitiveClosure(), Chain(3));
  EXPECT_TRUE(view.InsertIf(0, Fact{2, 0}, Conjunction{Eq(V(7), C(1))}));
  ExpectMatchesRecompute(view);
  // The cycle exists only in worlds with v7 = 1; tc(0,0) must carry it.
  EXPECT_TRUE(HasTuple(view.Materialized().table(1), Tuple{C(0), C(0)}));
}

TEST(IvmTest, UnsatisfiableConditionalInsertIsRejected) {
  CTable edges(2);
  edges.AddRow(Tuple{C(0), C(1)});
  edges.SetGlobal(Conjunction{Eq(V(3), C(1))});
  MaterializedView view(TransitiveClosure(), CDatabase{std::move(edges)});
  size_t rows_before = view.base().table(0).num_rows();
  EXPECT_FALSE(view.InsertIf(0, Fact{1, 0}, Conjunction{Neq(V(3), C(1))}));
  EXPECT_EQ(view.base().table(0).num_rows(), rows_before);
  ExpectMatchesRecompute(view);
}

TEST(IvmTest, GroundRuleFactsSurviveConeRebuild) {
  // A ground-fact rule whose head is inside the deletion cone: the rebuild
  // clears tc wholesale, so it must re-fire empty-body rules or lose the
  // fact.
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  DatalogRule fact_rule;
  fact_rule.head = {1, Tuple{C(8), C(8)}};
  p.AddRule(fact_rule);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  MaterializedView view(p, Chain(4));
  view.Delete(0, Fact{1, 2});
  EXPECT_EQ(view.stats().cone_rebuilds, 1u);
  ExpectMatchesRecompute(view);
  EXPECT_TRUE(HasTuple(view.Materialized().table(1), Tuple{C(8), C(8)}));
}

TEST(IvmTest, RuleJoiningThroughConeGroundFactSurvivesEmptyRebuild) {
  // P(8,8). ; P(x,y) :- edge(x,y). ; Q(x,y) :- P(x,y). Deleting the only
  // edge leaves the rebuild's first semi-naive round with nothing to derive
  // from the base table, so the re-fired ground fact must already sit
  // inside the first delta window — fired after the windows are
  // snapshotted, it never becomes a delta and Q loses every row joining
  // through it (the RunCone ordering regression).
  DatalogProgram p({2, 2, 2}, /*num_edb=*/1);
  DatalogRule fact_rule;
  fact_rule.head = {1, Tuple{C(8), C(8)}};
  p.AddRule(fact_rule);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule through;
  through.head = {2, Tuple{V(100), V(101)}};
  through.body = {{1, Tuple{V(100), V(101)}}};
  p.AddRule(through);
  MaterializedView view(p, Chain(2));  // a single edge (0,1)
  view.Delete(0, Fact{0, 1});          // base now empty
  EXPECT_EQ(view.stats().cone_rebuilds, 1u);
  ExpectMatchesRecompute(view);
  EXPECT_TRUE(HasTuple(view.Materialized().table(2), Tuple{C(8), C(8)}));
}

#ifdef NDEBUG
TEST(IvmTest, OutOfRangePredicateUpdateIsNoOp) {
  // The public update API must range-check unconditionally: in release
  // builds the asserts are compiled out, and an out-of-range predicate
  // would otherwise index the base and fixpoint state out of bounds.
  // (Debug builds assert instead, so this only runs under NDEBUG.)
  MaterializedView view(TransitiveClosure(), Chain(3));
  view.Insert(-1, Fact{0, 1});
  view.Insert(5, Fact{0, 1});
  EXPECT_FALSE(view.InsertIf(1, Fact{0, 1}, Conjunction{}));  // IDB pred
  view.Delete(7, Fact{0, 1});
  EXPECT_EQ(view.stats().updates_applied, 0u);
  ExpectMatchesRecompute(view);
}
#endif

TEST(IvmTest, VariableRowDeleteStaysIdentical) {
  // Guarded copies produced by deleting through a variable row must seed
  // forward (or rebuild) to exactly the recompute state — the original
  // conditioned-update bug class.
  CTable edges(2);
  edges.AddRow(Tuple{V(0), V(1)});
  edges.AddRow(Tuple{C(1), C(2)});
  MaterializedView view(TransitiveClosure(), CDatabase{std::move(edges)});
  view.Delete(0, Fact{1, 2});
  ExpectMatchesRecompute(view);
  view.Delete(0, Fact{2, 2});
  ExpectMatchesRecompute(view);
}

TEST(IvmTest, DemandViewServesGoalAnswersUnderUpdates) {
  DatalogProgram tc = TransitiveClosure();
  std::vector<std::optional<ConstId>> bindings{ConstId{0}, std::nullopt};
  DatalogGoal goal{1, bindings};
  MaterializedView view(tc, Chain(4), goal);
  ASSERT_TRUE(view.is_demand_view());

  auto check = [&]() {
    CTable live = view.Answers();
    CTable scratch = DatalogQueryOnCTables(tc, view.base(), 1, bindings);
    EXPECT_EQ(Canon(live), Canon(scratch));
  };
  check();
  view.Insert(0, Fact{3, 4});
  check();
  view.Delete(0, Fact{1, 2});
  EXPECT_EQ(view.stats().cone_rebuilds, 1u);
  check();
  view.Insert(0, Fact{1, 2});
  check();
}

TEST(IvmTest, IncrementalBeatsRecomputeOnDerivedRowWork) {
  // The point of the exercise: maintaining a chain's closure across an
  // insert stream must derive far fewer rows than recomputing each time.
  const int n = 12;
  MaterializedView view(TransitiveClosure(), Chain(n));
  size_t init_derived = view.stats().fixpoint.derived_rows;
  size_t recompute_derived = 0;
  for (int i = n - 1; i < n + 3; ++i) {
    view.Insert(0, Fact{i, i + 1});
    ConditionedFixpointStats s;
    DatalogOnCTables(view.program(), view.base(), &s);
    recompute_derived += s.derived_rows;
  }
  size_t incremental_derived =
      view.stats().fixpoint.derived_rows - init_derived;
  EXPECT_LT(incremental_derived * 2, recompute_derived);
  ExpectMatchesRecompute(view);
}

}  // namespace
}  // namespace pw
