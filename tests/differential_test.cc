// Differential test harness: the Imielinski–Lipski c-table evaluation
// (interned fast path AND plain seed path) against the per-world oracle.
//
// For each randomized (query, c-table) pair we check the representation-
// system identity of the paper's Section 4 discussion:
//
//     rep(EvalQueryOnCTables(q, T))  ==  { EvalQuery(q, I) : I in rep(T) }
//
// worlds compared canonically up to renaming of fresh constants over a
// shared constant context. The interned path must additionally agree with
// the un-interned seed path world-for-world. Queries are drawn from a
// generator covering every positive existential operator (select with = and
// !=, generalized project with constants, product, union) at random shapes;
// seeds are fixed, so failures reproduce.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "ilalgebra/ctable_eval.h"
#include "ra/eval.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

/// A random positive existential expression over one binary relation.
/// Depth-bounded; every operator of the fragment can appear.
RaExpr RandomPosExistential(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 0 : 4);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> small_const(0, 3);
  switch (pick(rng)) {
    case 0:
      return RaExpr::Rel(0, 2);
    case 1: {  // select: one or two random atoms over the two columns
      RaExpr in = RandomPosExistential(rng, depth - 1);
      std::uniform_int_distribution<int> col(0, in.arity() - 1);
      std::vector<SelectAtom> atoms;
      int n = 1 + coin(rng);
      for (int i = 0; i < n; ++i) {
        ColOrConst lhs = ColOrConst::Col(col(rng));
        ColOrConst rhs = coin(rng) ? ColOrConst::Col(col(rng))
                                   : ColOrConst::Const(small_const(rng));
        atoms.push_back(coin(rng) ? SelectAtom::Eq(lhs, rhs)
                                  : SelectAtom::Neq(lhs, rhs));
      }
      return RaExpr::Select(in, std::move(atoms));
    }
    case 2: {  // generalized project to arity 2 (may duplicate / emit consts)
      RaExpr in = RandomPosExistential(rng, depth - 1);
      std::uniform_int_distribution<int> col(0, in.arity() - 1);
      std::vector<ColOrConst> outputs;
      for (int i = 0; i < 2; ++i) {
        outputs.push_back(coin(rng) == 0 && i == 1
                              ? ColOrConst::Const(small_const(rng))
                              : ColOrConst::Col(col(rng)));
      }
      return RaExpr::Project(in, std::move(outputs));
    }
    case 3: {  // product of two shallow subexpressions, projected back to 2
      RaExpr l = RandomPosExistential(rng, 0);
      RaExpr r = RandomPosExistential(rng, 0);
      RaExpr prod = RaExpr::Product(l, r);
      std::uniform_int_distribution<int> col(0, prod.arity() - 1);
      return RaExpr::ProjectCols(prod, {col(rng), col(rng)});
    }
    default: {  // union of two same-arity subexpressions
      RaExpr l = RandomPosExistential(rng, depth - 1);
      RaExpr r = RandomPosExistential(rng, depth - 1);
      if (l.arity() != r.arity()) return l;
      return RaExpr::Union(l, r);
    }
  }
}

/// Shared constant context: everything either side could mention.
std::vector<ConstId> SharedContext(const CDatabase& db, const CTable& image) {
  std::vector<ConstId> extra = image.Constants();
  for (ConstId c : db.Constants()) extra.push_back(c);
  for (ConstId c = 0; c <= 3; ++c) extra.push_back(c);  // query constants
  return extra;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, CTableEvalAgreesWithPerWorldEval) {
  // 25 parameter seeds x 5 pairs each = 125 randomized (query, c-table)
  // pairs, each checked on both evaluation paths.
  std::mt19937 rng(1000 + GetParam());
  for (int round = 0; round < 5; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3, /*num_constants=*/2, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 3);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};
    RaExpr q = RandomPosExistential(rng, 2);

    CTableEvalOptions interned;  // default: global interner
    CTableEvalOptions plain;
    plain.use_interner = false;  // seed path

    auto fast = EvalQueryOnCTables({q}, db, interned);
    auto seed = EvalQueryOnCTables({q}, db, plain);
    ASSERT_TRUE(fast.has_value());
    ASSERT_TRUE(seed.has_value());

    std::vector<ConstId> extra = SharedContext(db, fast->table(0));
    for (ConstId c : seed->table(0).Constants()) extra.push_back(c);

    std::vector<std::string> oracle =
        testutil::CanonicalImageWorlds({q}, db, extra);
    EXPECT_EQ(testutil::CanonicalWorlds(*fast, extra), oracle)
        << "interned path diverged on " << q.ToString() << "\n"
        << t.ToString();
    EXPECT_EQ(testutil::CanonicalWorlds(*seed, extra), oracle)
        << "seed path diverged on " << q.ToString() << "\n"
        << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(0, 25));

TEST(DifferentialEdgeTest, UnsatisfiableGlobalYieldsNoWorlds) {
  CTable t = testutil::MakeTable(2, std::vector<Tuple>{{C(1), V(0)}});
  t.SetGlobal(Conjunction{Eq(V(0), C(1)), Eq(V(0), C(2))});
  CDatabase db{t};
  RaExpr q = RaExpr::Rel(0, 2);
  auto image = EvalQueryOnCTables({q}, db);
  ASSERT_TRUE(image.has_value());
  EXPECT_TRUE(testutil::CanonicalWorlds(*image, db.Constants()).empty());
  EXPECT_TRUE(testutil::CanonicalImageWorlds({q}, db, db.Constants()).empty());
}

TEST(DifferentialEdgeTest, InternedPathPrunesUnsatisfiableRows) {
  // A select contradicting a row's local condition: the interned path drops
  // the row outright, the seed path keeps it with an unsatisfiable local —
  // both represent the same worlds.
  CTable t(1);
  t.AddRow(Tuple{V(0)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  RaExpr q = RaExpr::Select(
      RaExpr::Rel(0, 1),
      {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(2))});

  CTableEvalOptions plain;
  plain.use_interner = false;
  auto fast = EvalOnCTables(q, db);
  auto seed = EvalOnCTables(q, db, plain);
  ASSERT_TRUE(fast.has_value() && seed.has_value());
  EXPECT_EQ(fast->num_rows(), 0u);
  EXPECT_EQ(seed->num_rows(), 1u);
  CDatabase fast_db{*fast};
  CDatabase seed_db{*seed};
  EXPECT_EQ(testutil::CanonicalWorlds(fast_db, db.Constants()),
            testutil::CanonicalWorlds(seed_db, db.Constants()));
}

}  // namespace
}  // namespace pw
