// Differential test harness: the fast paths against the per-world oracle.
//
// Families, all randomized with fixed seeds so failures reproduce (set
// PW_DIFF_SEED to rerun a single case — see "Debuggability" below):
//
//  1. Positive existential queries — the Imielinski–Lipski c-table
//     evaluation (interned fast path AND plain seed path) must satisfy the
//     representation-system identity of the paper's Section 4 discussion:
//
//       rep(EvalQueryOnCTables(q, T))  ==  { EvalQuery(q, I) : I in rep(T) }
//
//     worlds compared canonically up to renaming of fresh constants over a
//     shared constant context. Queries are drawn from a generator covering
//     every operator of the fragment (select with = and !=, generalized
//     project with constants, product, equi-join shapes that fuse into hash
//     joins, union) at random shapes; each query runs with the join planner
//     on AND off, which must produce *identical* tables, and the result is
//     additionally piped through Minimized(), which must preserve the
//     represented worlds. Single-table and multi-table (c-database) inputs
//     are both covered, and a dedicated family generates n-ary join shapes
//     (3-5-way products, mixed pushable/cross-side conjuncts, interleaved
//     projections) cross-checked planner-on vs planner-off vs the
//     binary-only baseline vs per-world.
//
//  2. Conditioned DATALOG views — the semi-naive interned fixpoint must
//     produce c-tables identical (up to row order) to the naive strategy
//     and identical (up to nothing — exactly) to the scan-based join loop,
//     and all must represent exactly the pointwise DATALOG fixpoint of the
//     input's worlds, on randomized programs (one or two extensional
//     predicates) over randomized c-tables.
//
//  3. Query-directed (magic-set) evaluation — for random programs and random
//     goal binding patterns, DatalogQueryOnCTables through the magic-set
//     rewrite must return exactly the full fixpoint's facts restricted to
//     the goal (same tuples, interned-id-identical conditions), across the
//     indexed/scan/naive strategies, and must represent the per-world goal
//     answers; the demand-path possibility procedure must agree with the
//     possibility search.
//
//  4. Multi-output queries and nested views — the image database of both
//     intensional outputs must represent the pointwise relation pairs, and
//     a second DATALOG program (or an RA expression) evaluated over the
//     first program's intensional output must act pointwise on the
//     represented worlds.
//
//  5. Updates — randomized Insert/Delete/InsertFactIf sequences must act
//     pointwise on the represented worlds, on both the default
//     interner-pruned deletion path and the plain guarded-copy expansion,
//     including when a DATALOG view is then evaluated over the updated
//     table on both fixpoint strategies.
//
//  6. Incremental view maintenance — a MaterializedView (datalog/ivm.h)
//     driven through randomized interleavings of inserts, conditional
//     inserts, and deletes must stay *identical* — same tuples, same
//     interned condition ids — to recomputing the fixpoint from scratch on
//     its updated base, across the semi-naive/naive/scan option combos and
//     for magic-set demand views (Answers() vs DatalogQueryOnCTables), with
//     a second program evaluated over the maintained output as a nested
//     downstream consumer.
//
//  7. Condition algebra — randomized And/Or expression trees over random
//     interned conjunctions pushed through BOTH condition backends (the
//     conjunctive antichain and the decision-diagram backend) side by side:
//     every Satisfiable/SatisfiableWith/Implies/TautologyUnder verdict and
//     the AppendDisjuncts DNF expansions must agree between the backends
//     and with a small-model enumeration oracle (valuations over the
//     mentioned constants plus one fresh value per variable — complete for
//     boolean combinations of =/!= atoms over the infinite domain).
//
//  8. Decision-diagram fixpoints — the conditioned DATALOG fixpoint on the
//     decision-diagram backend must be row-identical across the semi-naive,
//     naive, and scan strategies and the shared-interner parallel runner
//     (each tuple's derivations merge into ONE canonical diagram, so the
//     exported DNF is strategy-independent), must represent the same worlds
//     as the antichain backend's fixpoint, and must satisfy the per-world
//     oracle directly.
//
//  9. Certainty across backends — CertainFactInTable must return the same
//     verdict through both backends (the DD tautology check vs the exact
//     backtracking disjunction check) and agree with the world-search
//     baseline ExistsWorldMissingFact.
//
// Families 1-6 additionally run wholesale on the decision-diagram backend
// via the PW_CONDITION_BACKEND=dd environment variable (the CI matrix's
// tsan-dd cell does exactly that).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "condition/backend.h"
#include "datalog/eval.h"
#include "datalog/ivm.h"
#include "decision/certainty.h"
#include "decision/possibility.h"
#include "decision/view.h"
#include "decision/world_csp.h"
#include "ilalgebra/ctable_eval.h"
#include "ilalgebra/datalog_ctable.h"
#include "ra/eval.h"
#include "tables/text_format.h"
#include "tables/updates.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

// --- Debuggability ----------------------------------------------------------
//
// Every randomized case is identified by its RNG seed. On failure the
// assertion messages carry the offending program and c-table in replayable
// text form (tables/text_format.h — FormatCTable round-trips through
// ParseCTable), and a SCOPED_TRACE line names the seed. Setting the
// PW_DIFF_SEED environment variable to that seed reruns exactly the matching
// case and skips every other one:
//
//   PW_DIFF_SEED=3007 ctest -R differential --output-on-failure

/// The PW_DIFF_SEED filter, or 0 when unset.
unsigned SeedFilter() {
  const char* s = std::getenv("PW_DIFF_SEED");
  return s == nullptr ? 0u
                      : static_cast<unsigned>(std::strtoul(s, nullptr, 10));
}

bool RunSeed(unsigned seed) {
  unsigned filter = SeedFilter();
  return filter == 0u || filter == seed;
}

/// Opens a randomized case: skips it when PW_DIFF_SEED selects another seed,
/// and stamps the seed onto every failure message in scope.
#define PW_DIFF_CASE(seed)                                          \
  if (!RunSeed(seed)) GTEST_SKIP() << "skipped by PW_DIFF_SEED";    \
  SCOPED_TRACE("replay with PW_DIFF_SEED=" + std::to_string(seed))

/// A random positive existential expression over `num_rels` binary
/// relations. Depth-bounded; every operator of the fragment can appear,
/// including equi-join shapes (selection directly over a product) that the
/// evaluator fuses into hash joins.
RaExpr RandomPosExistential(std::mt19937& rng, int depth, int num_rels = 1) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 0 : 5);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> small_const(0, 3);
  std::uniform_int_distribution<int> rel(0, num_rels - 1);
  switch (pick(rng)) {
    case 0:
      return RaExpr::Rel(rel(rng), 2);
    case 1: {  // select: one or two random atoms over the two columns
      RaExpr in = RandomPosExistential(rng, depth - 1, num_rels);
      std::uniform_int_distribution<int> col(0, in.arity() - 1);
      std::vector<SelectAtom> atoms;
      int n = 1 + coin(rng);
      for (int i = 0; i < n; ++i) {
        ColOrConst lhs = ColOrConst::Col(col(rng));
        ColOrConst rhs = coin(rng) ? ColOrConst::Col(col(rng))
                                   : ColOrConst::Const(small_const(rng));
        atoms.push_back(coin(rng) ? SelectAtom::Eq(lhs, rhs)
                                  : SelectAtom::Neq(lhs, rhs));
      }
      return RaExpr::Select(in, std::move(atoms));
    }
    case 2: {  // generalized project to arity 2 (may duplicate / emit consts)
      RaExpr in = RandomPosExistential(rng, depth - 1, num_rels);
      std::uniform_int_distribution<int> col(0, in.arity() - 1);
      std::vector<ColOrConst> outputs;
      for (int i = 0; i < 2; ++i) {
        outputs.push_back(coin(rng) == 0 && i == 1
                              ? ColOrConst::Const(small_const(rng))
                              : ColOrConst::Col(col(rng)));
      }
      return RaExpr::Project(in, std::move(outputs));
    }
    case 3: {  // product of two shallow subexpressions, projected back to 2
      RaExpr l = RandomPosExistential(rng, 0, num_rels);
      RaExpr r = RandomPosExistential(rng, 0, num_rels);
      RaExpr prod = RaExpr::Product(l, r);
      std::uniform_int_distribution<int> col(0, prod.arity() - 1);
      return RaExpr::ProjectCols(prod, {col(rng), col(rng)});
    }
    case 4: {  // equi-join: selection directly over a product (fuses into a
               // hash join), an optional extra atom of any shape, projected
               // back to 2
      RaExpr l = RandomPosExistential(rng, 0, num_rels);
      RaExpr r = RandomPosExistential(rng, 0, num_rels);
      RaExpr prod = RaExpr::Product(l, r);
      std::uniform_int_distribution<int> lcol(0, l.arity() - 1);
      std::uniform_int_distribution<int> rcol(l.arity(), prod.arity() - 1);
      std::uniform_int_distribution<int> col(0, prod.arity() - 1);
      std::vector<SelectAtom> atoms;
      atoms.push_back(SelectAtom::Eq(ColOrConst::Col(lcol(rng)),
                                     ColOrConst::Col(rcol(rng))));
      if (coin(rng)) {  // side filter, cross inequality, or constant test
        ColOrConst lhs = ColOrConst::Col(col(rng));
        ColOrConst rhs = coin(rng) ? ColOrConst::Col(col(rng))
                                   : ColOrConst::Const(small_const(rng));
        atoms.push_back(coin(rng) ? SelectAtom::Eq(lhs, rhs)
                                  : SelectAtom::Neq(lhs, rhs));
      }
      RaExpr sel = RaExpr::Select(prod, std::move(atoms));
      return RaExpr::ProjectCols(sel, {col(rng), col(rng)});
    }
    default: {  // union of two same-arity subexpressions
      RaExpr l = RandomPosExistential(rng, depth - 1, num_rels);
      RaExpr r = RandomPosExistential(rng, depth - 1, num_rels);
      if (l.arity() != r.arity()) return l;
      return RaExpr::Union(l, r);
    }
  }
}

/// A random n-ary join-shaped query: 3-5 relation leaves combined into a
/// product tree of random shape (left-deep, right-deep, bushy), selections
/// with cross-side equi-join conjuncts, pushable one-side atoms, and
/// cross-side inequalities interleaved at random depths, projections
/// (reordering, duplicating, dropping columns) interleaved between joins,
/// projected back to arity 2 at the top — exactly the shapes the n-ary
/// planner normalizes.
RaExpr RandomNaryJoin(std::mt19937& rng, int num_rels) {
  std::uniform_int_distribution<int> nleaves(3, 5);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> d4(0, 3);
  std::uniform_int_distribution<int> small_const(0, 3);
  std::uniform_int_distribution<int> rel(0, num_rels - 1);

  // Leaves: plain refs, one-leaf selections, column-swapping projections.
  std::vector<RaExpr> parts;
  int n = nleaves(rng);
  for (int i = 0; i < n; ++i) {
    RaExpr leaf = RaExpr::Rel(rel(rng), 2);
    if (d4(rng) == 0) {
      leaf = RaExpr::Select(
          leaf, {coin(rng)
                     ? SelectAtom::Eq(ColOrConst::Col(coin(rng)),
                                      ColOrConst::Const(small_const(rng)))
                     : SelectAtom::Neq(ColOrConst::Col(coin(rng)),
                                       ColOrConst::Const(small_const(rng)))});
    } else if (d4(rng) == 0) {
      leaf = RaExpr::ProjectCols(leaf, {1, 0});
    }
    parts.push_back(leaf);
  }

  // Merge adjacent subtrees at random until one remains: random tree shape,
  // preserving left-to-right leaf order. Each merge is a product, usually
  // topped with a selection carrying a cross-side equi-join conjunct (plus
  // an occasional extra atom of any shape), occasionally topped with a
  // projection that reorders/duplicates/drops columns.
  while (parts.size() > 1) {
    std::uniform_int_distribution<size_t> at(0, parts.size() - 2);
    size_t i = at(rng);
    RaExpr l = parts[i];
    RaExpr r = parts[i + 1];
    RaExpr merged = RaExpr::Product(l, r);
    if (d4(rng) != 0) {  // usually: join the two sides
      std::uniform_int_distribution<int> lcol(0, l.arity() - 1);
      std::uniform_int_distribution<int> rcol(l.arity(), merged.arity() - 1);
      std::uniform_int_distribution<int> col(0, merged.arity() - 1);
      std::vector<SelectAtom> atoms;
      atoms.push_back(SelectAtom::Eq(ColOrConst::Col(lcol(rng)),
                                     ColOrConst::Col(rcol(rng))));
      if (coin(rng)) {  // pushable one-side atom, cross inequality, or
                        // constant test — mixed conjunct kinds
        ColOrConst lhs = ColOrConst::Col(col(rng));
        ColOrConst rhs = coin(rng) ? ColOrConst::Col(col(rng))
                                   : ColOrConst::Const(small_const(rng));
        atoms.push_back(coin(rng) ? SelectAtom::Eq(lhs, rhs)
                                  : SelectAtom::Neq(lhs, rhs));
      }
      merged = RaExpr::Select(merged, std::move(atoms));
    }
    if (d4(rng) == 0 && merged.arity() > 2) {  // interleaved projection
      std::uniform_int_distribution<int> col(0, merged.arity() - 1);
      std::uniform_int_distribution<int> width(2, merged.arity() - 1);
      std::vector<int> cols;
      int w = width(rng);
      for (int c = 0; c < w; ++c) cols.push_back(col(rng));
      merged = RaExpr::ProjectCols(merged, cols);
    }
    parts[i] = merged;
    parts.erase(parts.begin() + static_cast<ptrdiff_t>(i) + 1);
  }
  std::uniform_int_distribution<int> col(0, parts[0].arity() - 1);
  return RaExpr::ProjectCols(parts[0], {col(rng), col(rng)});
}

/// Shared constant context: everything either side could mention.
std::vector<ConstId> SharedContext(const CDatabase& db, const CTable& image) {
  std::vector<ConstId> extra = image.Constants();
  for (ConstId c : db.Constants()) extra.push_back(c);
  for (ConstId c = 0; c <= 3; ++c) extra.push_back(c);  // query constants
  return extra;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, CTableEvalAgreesWithPerWorldEval) {
  // 25 parameter seeds x 5 pairs each = 125 randomized (query, c-table)
  // pairs, each checked on both evaluation paths.
  const unsigned case_seed = 1000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 5; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3, /*num_constants=*/2, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 3);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};
    RaExpr q = RandomPosExistential(rng, 2);

    CTableEvalOptions interned;  // default: global interner, hash joins
    CTableEvalOptions plain;
    plain.use_interner = false;  // seed path
    CTableEvalOptions interned_nl = interned;  // nested-loop joins
    interned_nl.use_hash_join = false;
    CTableEvalOptions plain_nl = plain;
    plain_nl.use_hash_join = false;

    auto fast = EvalQueryOnCTables({q}, db, interned);
    auto seed = EvalQueryOnCTables({q}, db, plain);
    auto fast_nl = EvalQueryOnCTables({q}, db, interned_nl);
    auto seed_nl = EvalQueryOnCTables({q}, db, plain_nl);
    ASSERT_TRUE(fast.has_value());
    ASSERT_TRUE(seed.has_value());
    ASSERT_TRUE(fast_nl.has_value() && seed_nl.has_value());

    // The hash-join fusion must be output-*identical* to the nested loop it
    // replaces, on both paths — not merely equivalent up to rep().
    EXPECT_EQ(fast->table(0), fast_nl->table(0))
        << "hash join diverged from nested loop (interned) on "
        << q.ToString() << "\n"
        << FormatCTable(t);
    EXPECT_EQ(seed->table(0), seed_nl->table(0))
        << "hash join diverged from nested loop (plain) on " << q.ToString()
        << "\n"
        << FormatCTable(t);

    std::vector<ConstId> extra = SharedContext(db, fast->table(0));
    for (ConstId c : seed->table(0).Constants()) extra.push_back(c);

    std::vector<std::string> oracle =
        testutil::CanonicalImageWorlds({q}, db, extra);
    EXPECT_EQ(testutil::CanonicalWorlds(*fast, extra), oracle)
        << "interned path diverged on " << q.ToString() << "\n"
        << FormatCTable(t);
    EXPECT_EQ(testutil::CanonicalWorlds(*seed, extra), oracle)
        << "seed path diverged on " << q.ToString() << "\n"
        << FormatCTable(t);

    // Minimized()-after-eval: minimization must preserve the represented
    // image worlds (it runs on the indexed-join output, global attached).
    CDatabase minimized{fast->table(0).Minimized()};
    EXPECT_EQ(testutil::CanonicalWorlds(minimized, extra), oracle)
        << "Minimized() after eval diverged on " << q.ToString() << "\n"
        << FormatCTable(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(0, 25));

// N-ary join shapes: 3-5-way products with mixed pushable/cross-side
// conjuncts and interleaved projections, cross-checked planner-on vs
// planner-off vs the binary-only baseline vs per-world evaluation.
class NaryJoinDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(NaryJoinDifferentialTest, PlannedJoinAgreesWithNestedLoopAndWorlds) {
  const unsigned case_seed = 6000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 3; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/2, /*num_constants=*/2, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    CTable t0 = RandomCTable(options, rng);
    CTable t1 = RandomCTable(options, rng);
    CDatabase db(std::vector<CTable>{t0, t1});
    RaExpr q = RandomNaryJoin(rng, /*num_rels=*/2);

    CTableEvalOptions planned;  // default: n-ary planner, interned
    CTableEvalStats stats;
    planned.stats = &stats;
    CTableEvalOptions nested = planned;
    nested.use_hash_join = false;
    nested.stats = nullptr;
    CTableEvalOptions binary = planned;
    binary.binary_join_only = true;
    binary.stats = nullptr;
    CTableEvalOptions plain_planned;
    plain_planned.use_interner = false;
    CTableEvalOptions plain_nested = plain_planned;
    plain_nested.use_hash_join = false;

    auto fast = EvalQueryOnCTables({q}, db, planned);
    auto fast_nl = EvalQueryOnCTables({q}, db, nested);
    auto fast_bin = EvalQueryOnCTables({q}, db, binary);
    auto seed = EvalQueryOnCTables({q}, db, plain_planned);
    auto seed_nl = EvalQueryOnCTables({q}, db, plain_nested);
    ASSERT_TRUE(fast.has_value() && fast_nl.has_value() &&
                fast_bin.has_value());
    ASSERT_TRUE(seed.has_value() && seed_nl.has_value());

    // The planned n-way join must be output-*identical* to the nested
    // loops, on both paths — not merely equivalent up to rep() — and so
    // must the binary-only baseline.
    EXPECT_EQ(fast->table(0), fast_nl->table(0))
        << "planned join diverged from nested loop (interned) on "
        << q.ToString() << "\n"
        << FormatCDatabase(db);
    EXPECT_EQ(fast_bin->table(0), fast_nl->table(0))
        << "binary-only fusion diverged from nested loop on " << q.ToString()
        << "\n"
        << FormatCDatabase(db);
    EXPECT_EQ(seed->table(0), seed_nl->table(0))
        << "planned join diverged from nested loop (plain) on "
        << q.ToString() << "\n"
        << FormatCDatabase(db);

    std::vector<ConstId> extra = SharedContext(db, fast->table(0));
    for (ConstId c : seed->table(0).Constants()) extra.push_back(c);
    std::vector<std::string> oracle =
        testutil::CanonicalImageWorlds({q}, db, extra);
    EXPECT_EQ(testutil::CanonicalWorlds(*fast, extra), oracle)
        << "interned planned path diverged on " << q.ToString() << "\n"
        << FormatCDatabase(db);
    EXPECT_EQ(testutil::CanonicalWorlds(*seed, extra), oracle)
        << "plain planned path diverged on " << q.ToString() << "\n"
        << FormatCDatabase(db);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaryJoinDifferentialTest,
                         ::testing::Range(0, 20));

// Multi-table inputs: queries draw from (and join across) two member
// c-tables whose shared variables link the tables like equality conditions;
// the combined global condition spans both members.
class MultiTableDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiTableDifferentialTest, CTableEvalAgreesWithPerWorldEval) {
  const unsigned case_seed = 2000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 3; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/2, /*num_constants=*/2, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    CTable t0 = RandomCTable(options, rng);
    CTable t1 = RandomCTable(options, rng);
    CDatabase db(std::vector<CTable>{t0, t1});
    RaExpr q = RandomPosExistential(rng, 2, /*num_rels=*/2);

    CTableEvalOptions interned;
    CTableEvalOptions plain;
    plain.use_interner = false;
    CTableEvalOptions interned_nl = interned;
    interned_nl.use_hash_join = false;

    auto fast = EvalQueryOnCTables({q}, db, interned);
    auto seed = EvalQueryOnCTables({q}, db, plain);
    auto fast_nl = EvalQueryOnCTables({q}, db, interned_nl);
    ASSERT_TRUE(fast.has_value() && seed.has_value() && fast_nl.has_value());
    EXPECT_EQ(fast->table(0), fast_nl->table(0))
        << "hash join diverged from nested loop on " << q.ToString() << "\n"
        << FormatCDatabase(db);

    std::vector<ConstId> extra = SharedContext(db, fast->table(0));
    for (ConstId c : seed->table(0).Constants()) extra.push_back(c);

    std::vector<std::string> oracle =
        testutil::CanonicalImageWorlds({q}, db, extra);
    EXPECT_EQ(testutil::CanonicalWorlds(*fast, extra), oracle)
        << "interned path diverged on " << q.ToString() << "\n"
        << FormatCDatabase(db);
    EXPECT_EQ(testutil::CanonicalWorlds(*seed, extra), oracle)
        << "seed path diverged on " << q.ToString() << "\n"
        << FormatCDatabase(db);

    CDatabase minimized{fast->table(0).Minimized()};
    EXPECT_EQ(testutil::CanonicalWorlds(minimized, extra), oracle)
        << "Minimized() after eval diverged on " << q.ToString() << "\n"
        << FormatCDatabase(db);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiTableDifferentialTest,
                         ::testing::Range(0, 15));

TEST(DifferentialEdgeTest, UnsatisfiableGlobalYieldsNoWorlds) {
  CTable t = testutil::MakeTable(2, std::vector<Tuple>{{C(1), V(0)}});
  t.SetGlobal(Conjunction{Eq(V(0), C(1)), Eq(V(0), C(2))});
  CDatabase db{t};
  RaExpr q = RaExpr::Rel(0, 2);
  auto image = EvalQueryOnCTables({q}, db);
  ASSERT_TRUE(image.has_value());
  EXPECT_TRUE(testutil::CanonicalWorlds(*image, db.Constants()).empty());
  EXPECT_TRUE(testutil::CanonicalImageWorlds({q}, db, db.Constants()).empty());
}

// --- Conditioned DATALOG views ----------------------------------------------

/// A random range-restricted pure DATALOG program: `num_edb` binary
/// extensional predicates, two binary intensional ones, 2-4 rules with 1-2
/// body atoms over rule variables and small constants.
DatalogProgram RandomDatalogProgram(std::mt19937& rng, int num_edb = 1) {
  DatalogProgram p(std::vector<int>(num_edb + 2, 2), num_edb);
  std::uniform_int_distribution<int> num_rules(2, 4);
  std::uniform_int_distribution<int> body_len(1, 2);
  std::uniform_int_distribution<int> any_pred(0, num_edb + 1);
  std::uniform_int_distribution<int> idb_pred(num_edb, num_edb + 1);
  std::uniform_int_distribution<VarId> var(100, 102);
  std::uniform_int_distribution<int> small_const(0, 2);
  std::uniform_int_distribution<int> d10(0, 9);
  int n = num_rules(rng);
  for (int r = 0; r < n; ++r) {
    DatalogRule rule;
    std::vector<VarId> body_vars;
    int len = body_len(rng);
    for (int b = 0; b < len; ++b) {
      DatalogAtom atom;
      atom.predicate = any_pred(rng);
      for (int i = 0; i < 2; ++i) {
        if (d10(rng) == 0) {
          atom.args.push_back(C(small_const(rng)));
        } else {
          VarId v = var(rng);
          atom.args.push_back(V(v));
          body_vars.push_back(v);
        }
      }
      rule.body.push_back(std::move(atom));
    }
    rule.head.predicate = idb_pred(rng);
    for (int i = 0; i < 2; ++i) {
      if (body_vars.empty() || d10(rng) == 0) {
        rule.head.args.push_back(C(small_const(rng)));
      } else {
        std::uniform_int_distribution<size_t> pick(0, body_vars.size() - 1);
        rule.head.args.push_back(V(body_vars[pick(rng)]));
      }
    }
    p.AddRule(std::move(rule));
  }
  EXPECT_EQ(p.Validate(), "");
  return p;
}

/// Rows of a table rendered canonically (tuple + interner-canonical local
/// condition), sorted — the "identical up to row order" comparison key.
std::vector<std::string> CanonicalRowSet(const CTable& t) {
  ConditionInterner& interner = ConditionInterner::Global();
  std::vector<std::string> out;
  for (const CRow& row : t.rows()) {
    out.push_back(ToString(row.tuple) + " :: " +
                  interner.Resolve(row.LocalId(interner)).ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Asserts the full per-world identity of a conditioned fixpoint: for every
/// satisfying valuation, sigma(image) == DATALOG fixpoint of sigma(db).
void ExpectRepresentsFixpointOfEveryWorld(const DatalogProgram& program,
                                          const CDatabase& db,
                                          const CDatabase& image) {
  WorldEnumOptions wopts;
  bool all_match = true;
  ForEachSatisfyingValuation(db, wopts, [&](const Valuation& v) {
    Instance world = v.Apply(db);
    Instance expected = SemiNaiveEval(program, world);
    Instance got = v.Apply(image);
    if (got != expected) {
      all_match = false;
      return false;
    }
    return true;
  });
  EXPECT_TRUE(all_match) << FormatCDatabase(db) << image.ToString();
}

class DatalogDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DatalogDifferentialTest, SemiNaiveAgreesWithNaiveAndPerWorld) {
  // 25 parameter seeds x 4 (program, c-table) pairs: the semi-naive and
  // naive conditioned fixpoints must produce identical c-tables up to row
  // order, and both must represent the per-world fixpoints exactly.
  const unsigned case_seed = 3000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 4; ++round) {
    DatalogProgram program = RandomDatalogProgram(rng);
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3, /*num_constants=*/3, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};

    DatalogCTableOptions semi;
    DatalogCTableOptions naive;
    naive.semi_naive = false;
    DatalogCTableOptions scan = semi;  // semi-naive, no body-atom indexes
    scan.use_index = false;
    ConditionedFixpointStats semi_stats;
    ConditionedFixpointStats naive_stats;
    ConditionedFixpointStats scan_stats;
    CDatabase fast = DatalogOnCTables(program, db, &semi_stats, semi);
    CDatabase seed = DatalogOnCTables(program, db, &naive_stats, naive);
    CDatabase scanned = DatalogOnCTables(program, db, &scan_stats, scan);

    ASSERT_EQ(fast.num_tables(), seed.num_tables());
    for (size_t p = 0; p < fast.num_tables(); ++p) {
      EXPECT_EQ(CanonicalRowSet(fast.table(p)), CanonicalRowSet(seed.table(p)))
          << "strategies diverged on predicate " << p << "\n"
          << program.ToString() << FormatCTable(t);
      // Indexed body-atom matching enumerates exactly the scan's matches in
      // the scan's order, so the tables must be *identical*, not merely
      // equal up to row order.
      EXPECT_EQ(fast.table(p), scanned.table(p))
          << "indexed join diverged from scan on predicate " << p << "\n"
          << program.ToString() << FormatCTable(t);
    }
    // Semi-naive re-fires strictly fewer combinations; its duplicate count
    // must never exceed the naive one.
    EXPECT_LE(semi_stats.duplicate_rows, naive_stats.duplicate_rows);
    // The index only skips rows a scan would have rejected on a ground
    // mismatch, so every derivation-side counter agrees with the scan run.
    EXPECT_EQ(semi_stats.derived_rows, scan_stats.derived_rows);
    EXPECT_EQ(semi_stats.duplicate_rows, scan_stats.duplicate_rows);
    EXPECT_EQ(semi_stats.subsumed_rows, scan_stats.subsumed_rows);
    EXPECT_EQ(scan_stats.index_probes, 0u);

    ExpectRepresentsFixpointOfEveryWorld(program, db, fast);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogDifferentialTest,
                         ::testing::Range(0, 25));

// Multi-table c-database inputs: two extensional predicates seeded from two
// member c-tables (shared variables link them), random rules joining across
// both — the indexed body-atom matching vs the scan vs per-world evaluation.
class DatalogMultiTableDifferentialTest
    : public ::testing::TestWithParam<int> {};

TEST_P(DatalogMultiTableDifferentialTest, AgreesAcrossStrategiesAndWorlds) {
  const unsigned case_seed = 5000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 3; ++round) {
    DatalogProgram program = RandomDatalogProgram(rng, /*num_edb=*/2);
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/2, /*num_constants=*/3, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    CTable t0 = RandomCTable(options, rng);
    CTable t1 = RandomCTable(options, rng);
    CDatabase db(std::vector<CTable>{t0, t1});

    DatalogCTableOptions naive;
    naive.semi_naive = false;
    DatalogCTableOptions scan;
    scan.use_index = false;
    CDatabase fast = DatalogOnCTables(program, db);
    CDatabase seed = DatalogOnCTables(program, db, nullptr, naive);
    CDatabase scanned = DatalogOnCTables(program, db, nullptr, scan);

    ASSERT_EQ(fast.num_tables(), seed.num_tables());
    for (size_t p = 0; p < fast.num_tables(); ++p) {
      EXPECT_EQ(CanonicalRowSet(fast.table(p)), CanonicalRowSet(seed.table(p)))
          << "strategies diverged on predicate " << p << "\n"
          << program.ToString() << FormatCDatabase(db);
      EXPECT_EQ(fast.table(p), scanned.table(p))
          << "indexed join diverged from scan on predicate " << p << "\n"
          << program.ToString() << FormatCDatabase(db);
    }
    ExpectRepresentsFixpointOfEveryWorld(program, db, fast);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogMultiTableDifferentialTest,
                         ::testing::Range(0, 15));

// --- Query-directed (magic-set) evaluation ----------------------------------

/// A random goal binding: each position independently bound to a small
/// constant or left free.
std::vector<std::optional<ConstId>> RandomBindings(std::mt19937& rng,
                                                   int arity) {
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> small_const(0, 2);
  std::vector<std::optional<ConstId>> out;
  for (int i = 0; i < arity; ++i) {
    out.push_back(coin(rng) ? std::optional<ConstId>(small_const(rng))
                            : std::nullopt);
  }
  return out;
}

std::string BindingsString(const std::vector<std::optional<ConstId>>& b) {
  std::string out = "(";
  for (size_t i = 0; i < b.size(); ++i) {
    if (i > 0) out += ",";
    out += b[i].has_value() ? std::to_string(*b[i]) : "_";
  }
  return out + ")";
}

bool MatchesBindings(const Fact& fact,
                     const std::vector<std::optional<ConstId>>& bindings) {
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i].has_value() && fact[i] != *bindings[i]) return false;
  }
  return true;
}

// Random programs + random goal binding patterns: the magic-rewritten run
// must return exactly the full fixpoint's facts restricted to the goal —
// same tuples, interned-id-identical conditions (CanonicalRowSet renders the
// interner-canonical form, which is 1:1 with the id) — on the indexed, scan,
// and naive strategies alike, and must represent the per-world goal answers
// exactly. One caveat under the decision-diagram backend: the magic and
// full programs merge *different* per-tuple diagrams (demand atoms are
// distinct propositional variables), so their exports can expand to
// different covering DNFs of the same world-set — there the magic-vs-full
// comparison is per-world, which is that backend's documented contract.
// Strategy choice within one program stays row-identical on every backend.
class MagicDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(MagicDifferentialTest, MagicEqualsRestrictedFullFixpoint) {
  const unsigned case_seed = 7000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 4; ++round) {
    int num_edb = 1 + (round % 2);
    DatalogProgram program = RandomDatalogProgram(rng, num_edb);
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3 - (num_edb - 1), /*num_constants=*/3,
        /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    std::vector<CTable> tables;
    for (int p = 0; p < num_edb; ++p) {
      tables.push_back(RandomCTable(options, rng));
    }
    CDatabase db(tables);
    std::uniform_int_distribution<int> any_pred(
        0, static_cast<int>(program.num_predicates()) - 1);
    int goal = any_pred(rng);
    std::vector<std::optional<ConstId>> bindings =
        RandomBindings(rng, program.arity(goal));
    std::string label = "goal P" + std::to_string(goal) +
                        BindingsString(bindings) + "\n" + program.ToString() +
                        FormatCDatabase(db);

    ConditionedFixpointStats magic_stats;
    ConditionedFixpointStats full_stats;
    DatalogCTableOptions full;
    full.use_magic = false;
    CTable via_magic = DatalogQueryOnCTables(program, db, goal, bindings,
                                             &magic_stats);
    CTable via_full = DatalogQueryOnCTables(program, db, goal, bindings,
                                            &full_stats, full);
    if (ResolveConditionBackendKind(ConditionBackendKind::kDefault) ==
        ConditionBackendKind::kDecisionDiagrams) {
      std::vector<ConstId> extra;
      for (ConstId c = 0; c <= 3; ++c) extra.push_back(c);
      EXPECT_EQ(testutil::CanonicalWorlds(CDatabase{via_magic}, extra),
                testutil::CanonicalWorlds(CDatabase{via_full}, extra))
          << "magic diverged (per-world) from restricted full fixpoint on "
          << label;
    } else {
      EXPECT_EQ(CanonicalRowSet(via_magic), CanonicalRowSet(via_full))
          << "magic diverged from restricted full fixpoint on " << label;
    }
    EXPECT_EQ(via_magic.global(), via_full.global());

    // The demand path composes with every fixpoint strategy.
    DatalogCTableOptions scan;
    scan.use_index = false;
    DatalogCTableOptions naive;
    naive.semi_naive = false;
    CTable via_scan =
        DatalogQueryOnCTables(program, db, goal, bindings, nullptr, scan);
    CTable via_naive =
        DatalogQueryOnCTables(program, db, goal, bindings, nullptr, naive);
    EXPECT_EQ(CanonicalRowSet(via_magic), CanonicalRowSet(via_scan))
        << "magic/scan diverged on " << label;
    EXPECT_EQ(CanonicalRowSet(via_magic), CanonicalRowSet(via_naive))
        << "magic/naive diverged on " << label;

    // Per-world: sigma(answers) == the goal-matching facts of the DATALOG
    // fixpoint of sigma(db), for every satisfying valuation.
    WorldEnumOptions wopts;
    for (ConstId c = 0; c <= 3; ++c) wopts.extra_constants.push_back(c);
    bool all_match = true;
    ForEachSatisfyingValuation(db, wopts, [&](const Valuation& v) {
      Instance world = v.Apply(db);
      Instance fix = SemiNaiveEval(program, world);
      Relation expected(program.arity(goal));
      for (const Fact& f : fix.relation(static_cast<size_t>(goal))) {
        if (MatchesBindings(f, bindings)) expected.Insert(f);
      }
      if (v.Apply(via_magic) != expected) {
        all_match = false;
        return false;
      }
      return true;
    });
    EXPECT_TRUE(all_match) << "magic answers diverged per-world on " << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MagicDifferentialTest, ::testing::Range(0, 20));

// --- Multi-output queries and nested views -----------------------------------

// Multi-output DATALOG queries: the image database formed by *both*
// intensional tables (global carried on the first) must represent exactly
// the pointwise pairs of fixpoint relations.
class MultiOutputDatalogDifferentialTest
    : public ::testing::TestWithParam<int> {};

TEST_P(MultiOutputDatalogDifferentialTest, ImageRepresentsOutputPairs) {
  const unsigned case_seed = 8000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 3; ++round) {
    DatalogProgram program = RandomDatalogProgram(rng);
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3, /*num_constants=*/3, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};

    CDatabase fixpoint = DatalogOnCTables(program, db);
    CDatabase image(
        std::vector<CTable>{fixpoint.table(1), fixpoint.table(2)});
    image.mutable_table(0).SetGlobal(fixpoint.CombinedGlobal());

    std::vector<ConstId> extra = db.Constants();
    for (size_t p = 0; p < image.num_tables(); ++p) {
      for (ConstId c : image.table(p).Constants()) extra.push_back(c);
    }
    for (ConstId c = 0; c <= 3; ++c) extra.push_back(c);

    WorldEnumOptions wopts;
    wopts.extra_constants = extra;
    std::vector<std::string> oracle;
    ForEachWorld(db, wopts, [&](const Instance& world, const Valuation&) {
      Instance fix = SemiNaiveEval(program, world);
      oracle.push_back(testutil::CanonicalWorldString(
          Instance({fix.relation(1), fix.relation(2)}), extra));
      return true;
    });
    std::sort(oracle.begin(), oracle.end());
    oracle.erase(std::unique(oracle.begin(), oracle.end()), oracle.end());

    EXPECT_EQ(testutil::CanonicalWorlds(image, extra), oracle)
        << "multi-output image diverged on\n"
        << program.ToString() << FormatCTable(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiOutputDatalogDifferentialTest,
                         ::testing::Range(0, 15));

// Nested views: the intensional output of one program becomes the input of
// a second program AND of an RA expression; both nestings must act pointwise
// on the represented worlds.
class NestedViewDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(NestedViewDifferentialTest, NestingsActPointwiseOnWorlds) {
  const unsigned case_seed = 9000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 2; ++round) {
    DatalogProgram inner = RandomDatalogProgram(rng);
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/2, /*num_constants=*/3, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};

    CDatabase stage1 = DatalogOnCTables(inner, db);
    CDatabase mid(std::vector<CTable>{stage1.table(1), stage1.table(2)});
    mid.mutable_table(0).SetGlobal(stage1.CombinedGlobal());

    // (a) DATALOG over the DATALOG view: the two intensional outputs are the
    // second program's extensional predicates.
    DatalogProgram outer = RandomDatalogProgram(rng, /*num_edb=*/2);
    CDatabase stage2 = DatalogOnCTables(outer, mid);
    // (b) an RA expression over the same view outputs.
    RaExpr q = RandomPosExistential(rng, 2, /*num_rels=*/2);
    auto ra_image = EvalQueryOnCTables({q}, mid);
    ASSERT_TRUE(ra_image.has_value());

    WorldEnumOptions wopts;
    for (ConstId c = 0; c <= 3; ++c) wopts.extra_constants.push_back(c);
    bool datalog_match = true;
    bool ra_match = true;
    ForEachSatisfyingValuation(db, wopts, [&](const Valuation& v) {
      Instance world = v.Apply(db);
      Instance fix = SemiNaiveEval(inner, world);
      Instance mid_world({fix.relation(1), fix.relation(2)});
      if (v.Apply(stage2) != SemiNaiveEval(outer, mid_world)) {
        datalog_match = false;
      }
      if (v.Apply(ra_image->table(0)) !=
          EvalQuery({q}, mid_world).relation(0)) {
        ra_match = false;
      }
      return datalog_match && ra_match;
    });
    EXPECT_TRUE(datalog_match)
        << "nested DATALOG view diverged per-world on\n"
        << inner.ToString() << "then\n"
        << outer.ToString() << FormatCTable(t);
    EXPECT_TRUE(ra_match) << "RA over DATALOG view diverged per-world on\n"
                          << inner.ToString() << "then " << q.ToString()
                          << "\n"
                          << FormatCTable(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestedViewDifferentialTest,
                         ::testing::Range(0, 15));

// Goal-shaped possibility through the demand path: PossDatalogDemand (each
// pattern fact a fully bound magic-set goal) must agree with the per-world
// possibility search on random DATALOG views and patterns.
class DemandPossibilityDifferentialTest
    : public ::testing::TestWithParam<int> {};

TEST_P(DemandPossibilityDifferentialTest, DemandAgreesWithSearch) {
  const unsigned case_seed = 9500 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 3; ++round) {
    DatalogProgram program = RandomDatalogProgram(rng);
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3, /*num_constants=*/3, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};
    View view = View::Datalog(program, {1, 2});

    std::uniform_int_distribution<int> num_facts(1, 2);
    std::uniform_int_distribution<int> rel(0, 1);
    std::uniform_int_distribution<int> small_const(0, 2);
    std::vector<LocatedFact> pattern;
    int n = num_facts(rng);
    for (int i = 0; i < n; ++i) {
      pattern.push_back({static_cast<size_t>(rel(rng)),
                         {small_const(rng), small_const(rng)}});
    }

    auto demand = PossDatalogDemand(view, db, pattern);
    bool search = PossibilitySearch(view, db, pattern);
    // nullopt when the demand path declines (an all-free sub-demand, or
    // budget exhaustion — the latter not expected at these tiny sizes).
    if (demand.has_value()) {
      EXPECT_EQ(*demand, search) << "demand-path possibility diverged on\n"
                                 << program.ToString() << FormatCTable(t);
    }
    // The dispatcher routes DATALOG views through the demand path (falling
    // back to the search when it declines — either way it must agree).
    EXPECT_EQ(Possibility(view, db, pattern), search);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DemandPossibilityDifferentialTest,
                         ::testing::Range(0, 15));

// --- Updates ----------------------------------------------------------------

/// One randomized update against a table: insert, delete, or conditional
/// insert of a random small fact.
struct RandomUpdate {
  enum Kind { kInsert, kDelete, kInsertIf } kind;
  Fact fact;
  Conjunction condition;  // kInsertIf only
};

RandomUpdate DrawUpdate(std::mt19937& rng, int num_constants,
                        int num_variables) {
  std::uniform_int_distribution<int> kind(0, 2);
  std::uniform_int_distribution<int> c(0, num_constants - 1);
  std::uniform_int_distribution<VarId> v(0, num_variables - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  RandomUpdate out;
  out.kind = static_cast<RandomUpdate::Kind>(kind(rng));
  out.fact = {c(rng), c(rng)};
  if (out.kind == RandomUpdate::kInsertIf) {
    // One atom over the table's own variable pool, so the valuation oracle
    // covers it.
    CondAtom atom = coin(rng) ? Eq(V(v(rng)), C(c(rng)))
                              : Neq(V(v(rng)), C(c(rng)));
    out.condition = Conjunction{atom};
  }
  return out;
}

CTable ApplyUpdate(const CTable& table, const RandomUpdate& update) {
  switch (update.kind) {
    case RandomUpdate::kInsert:
      return InsertFact(table, update.fact);
    case RandomUpdate::kDelete:
      return DeleteFact(table, update.fact);
    case RandomUpdate::kInsertIf:
      return InsertFactIf(table, update.fact, update.condition);
  }
  return table;
}

/// The same update through the plain guarded-copy expansion — the
/// differential baseline for the default interner-pruned path.
CTable ApplyUpdatePlain(const CTable& table, const RandomUpdate& update) {
  UpdateOptions plain{.use_interner = false};
  switch (update.kind) {
    case RandomUpdate::kInsert:
      return InsertFact(table, update.fact);
    case RandomUpdate::kDelete:
      return DeleteFact(table, update.fact, plain);
    case RandomUpdate::kInsertIf:
      return InsertFactIf(table, update.fact, update.condition, plain);
  }
  return table;
}

/// The per-world meaning of one update under valuation `v`.
Relation ApplyUpdateToWorld(const Relation& world, const RandomUpdate& update,
                            const Valuation& v) {
  Relation out(world.arity());
  for (const Fact& f : world) {
    if (update.kind == RandomUpdate::kDelete && f == update.fact) continue;
    out.Insert(f);
  }
  if (update.kind == RandomUpdate::kInsert ||
      (update.kind == RandomUpdate::kInsertIf &&
       v.Satisfies(update.condition))) {
    out.Insert(update.fact);
  }
  return out;
}

class UpdateDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(UpdateDifferentialTest, UpdateSequencesActPointwiseOnWorlds) {
  // 25 parameter seeds x 4 rounds: a random c-table, a random sequence of
  // 1-3 updates. The updated table's worlds must equal the per-world update
  // results, valuation by valuation; a transitive-closure view evaluated
  // over the updated table (both fixpoint strategies) must then represent
  // the per-world fixpoints of those results.
  const unsigned case_seed = 4000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  constexpr int kConstants = 3;
  constexpr int kVariables = 2;
  for (int round = 0; round < 4; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3, /*num_constants=*/kConstants,
        /*num_variables=*/kVariables,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    CTable t = RandomCTable(options, rng);

    std::uniform_int_distribution<int> num_updates(1, 3);
    std::vector<RandomUpdate> updates;
    CTable updated = t;
    CTable updated_plain = t;
    int n = num_updates(rng);
    for (int u = 0; u < n; ++u) {
      updates.push_back(DrawUpdate(rng, kConstants, kVariables));
      updated = ApplyUpdate(updated, updates.back());
      updated_plain = ApplyUpdatePlain(updated_plain, updates.back());
    }

    // Enumerate over the whole variable pool: deleting a fully-ground row
    // can drop variables that occur only in its local condition from the
    // updated table, and the oracle needs every variable any intermediate
    // condition mentioned bound. The carrier table pins the pool; the
    // duplicated global condition does not change the satisfying set.
    WorldEnumOptions wopts;
    for (ConstId c = 0; c < kConstants; ++c) {
      wopts.extra_constants.push_back(c);
    }
    CTable carrier(1);
    for (VarId var = 0; var < kVariables; ++var) {
      carrier.AddRow(Tuple{V(var)});
    }
    CDatabase updated_db{updated};
    CDatabase joint(std::vector<CTable>{t, updated, updated_plain, carrier});
    bool all_match = true;
    bool plain_match = true;
    ForEachSatisfyingValuation(joint, wopts, [&](const Valuation& v) {
      Relation expected = v.Apply(t);
      for (const RandomUpdate& update : updates) {
        expected = ApplyUpdateToWorld(expected, update, v);
      }
      if (v.Apply(updated) != expected) {
        all_match = false;
        return false;
      }
      // The plain expansion carries redundant rows but must represent the
      // very same worlds as the pruned path.
      if (v.Apply(updated_plain) != expected) {
        plain_match = false;
        return false;
      }
      return true;
    });
    EXPECT_TRUE(all_match) << FormatCTable(t) << FormatCTable(updated);
    EXPECT_TRUE(plain_match)
        << FormatCTable(t) << FormatCTable(updated_plain);

    // A DATALOG view over the updated table: both strategies, same rows,
    // correct worlds.
    DatalogProgram tc({2, 2}, /*num_edb=*/1);
    DatalogRule base;
    base.head = {1, Tuple{V(100), V(101)}};
    base.body = {{0, Tuple{V(100), V(101)}}};
    tc.AddRule(base);
    DatalogRule step;
    step.head = {1, Tuple{V(100), V(102)}};
    step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
    tc.AddRule(step);

    DatalogCTableOptions naive;
    naive.semi_naive = false;
    CDatabase fast = DatalogOnCTables(tc, updated_db);
    CDatabase seed = DatalogOnCTables(tc, updated_db, nullptr, naive);
    for (size_t p = 0; p < fast.num_tables(); ++p) {
      EXPECT_EQ(CanonicalRowSet(fast.table(p)), CanonicalRowSet(seed.table(p)))
          << FormatCTable(updated);
    }
    ExpectRepresentsFixpointOfEveryWorld(tc, updated_db, fast);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateDifferentialTest,
                         ::testing::Range(0, 25));

// --- Incremental view maintenance -------------------------------------------

/// Routes one randomized update through a maintained view's update API.
void ApplyUpdateToView(MaterializedView& view, int pred,
                       const RandomUpdate& update) {
  switch (update.kind) {
    case RandomUpdate::kInsert:
      view.Insert(pred, update.fact);
      break;
    case RandomUpdate::kDelete:
      view.Delete(pred, update.fact);
      break;
    case RandomUpdate::kInsertIf:
      view.InsertIf(pred, update.fact, update.condition);
      break;
  }
}

class IvmDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(IvmDifferentialTest, MaintainedViewsStayIdenticalToRecompute) {
  // 20 parameter seeds x 3 rounds: random programs (alternating one and two
  // extensional predicates) over random c-tables, driven through 3-5
  // randomized updates. After *every* update, each maintained view —
  // semi-naive, naive, and scan-joined full views plus a magic-set demand
  // view — must be identical (same tuples, same interned condition ids, up
  // to row order) to recomputing its program from scratch on its updated
  // base. This is the IVM invariant: the covered-delete fast path, the cone
  // over-delete/re-derive, and resumed semi-naive rounds may never leave a
  // stale row or a stronger-than-necessary condition behind.
  const unsigned case_seed = 10000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  constexpr int kConstants = 3;
  constexpr int kVariables = 2;
  for (int round = 0; round < 3; ++round) {
    const int num_edb = 1 + (round % 2);
    DatalogProgram program = RandomDatalogProgram(rng, num_edb);
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/2, /*num_constants=*/kConstants,
        /*num_variables=*/kVariables,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    std::vector<CTable> tables;
    for (int p = 0; p < num_edb; ++p) {
      tables.push_back(RandomCTable(options, rng));
    }
    CDatabase db(tables);

    MaterializedViewOptions semi;
    MaterializedViewOptions naive;
    naive.eval.semi_naive = false;
    MaterializedViewOptions scan;
    scan.eval.use_index = false;
    // A vector so growth relocates the views — maintained state must
    // survive moves.
    std::vector<MaterializedView> views;
    views.emplace_back(program, db, semi);
    views.emplace_back(program, db, naive);
    views.emplace_back(program, db, scan);
    DatalogGoal goal{/*predicate=*/num_edb, RandomBindings(rng, 2)};
    MaterializedView demand(program, db, goal);

    std::uniform_int_distribution<int> num_updates(3, 5);
    std::uniform_int_distribution<int> pick_pred(0, num_edb - 1);
    const int n = num_updates(rng);
    for (int u = 0; u < n; ++u) {
      RandomUpdate update = DrawUpdate(rng, kConstants, kVariables);
      const int pred = pick_pred(rng);
      for (MaterializedView& view : views) {
        ApplyUpdateToView(view, pred, update);
      }
      ApplyUpdateToView(demand, pred, update);

      for (MaterializedView& view : views) {
        CDatabase maintained = view.Materialized();
        CDatabase scratch =
            DatalogOnCTables(view.evaluated_program(), view.base());
        ASSERT_EQ(maintained.num_tables(), scratch.num_tables());
        for (size_t p = 0; p < maintained.num_tables(); ++p) {
          EXPECT_EQ(CanonicalRowSet(maintained.table(p)),
                    CanonicalRowSet(scratch.table(p)))
              << "maintained view diverged from recompute on predicate " << p
              << " after update " << u << "\n"
              << program.ToString() << FormatCDatabase(view.base());
        }
      }
      CTable answers = demand.Answers();
      CTable scratch_answers = DatalogQueryOnCTables(
          program, demand.base(), goal.predicate, goal.bindings);
      EXPECT_EQ(CanonicalRowSet(answers), CanonicalRowSet(scratch_answers))
          << "demand view diverged from query-from-scratch with bindings "
          << BindingsString(goal.bindings) << " after update " << u << "\n"
          << program.ToString() << FormatCDatabase(demand.base());
    }

    // Nested consumption: a second program (transitive closure) evaluated
    // over the maintained IDB output must match the same program over the
    // recomputed output — maintained views compose downstream.
    DatalogProgram tc({2, 2}, /*num_edb=*/1);
    DatalogRule base;
    base.head = {1, Tuple{V(100), V(101)}};
    base.body = {{0, Tuple{V(100), V(101)}}};
    tc.AddRule(base);
    DatalogRule step;
    step.head = {1, Tuple{V(100), V(102)}};
    step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
    tc.AddRule(step);
    CDatabase maintained = views[0].Materialized();
    CDatabase scratch = DatalogOnCTables(program, views[0].base());
    CDatabase over_maintained =
        DatalogOnCTables(tc, CDatabase{maintained.table(num_edb)});
    CDatabase over_scratch =
        DatalogOnCTables(tc, CDatabase{scratch.table(num_edb)});
    ASSERT_EQ(over_maintained.num_tables(), over_scratch.num_tables());
    for (size_t p = 0; p < over_maintained.num_tables(); ++p) {
      EXPECT_EQ(CanonicalRowSet(over_maintained.table(p)),
                CanonicalRowSet(over_scratch.table(p)))
          << "nested program over maintained output diverged on predicate "
          << p << "\n"
          << program.ToString() << FormatCDatabase(views[0].base());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IvmDifferentialTest, ::testing::Range(0, 20));

TEST(DifferentialEdgeTest, InternedPathPrunesUnsatisfiableRows) {
  // A select contradicting a row's local condition: the interned path drops
  // the row outright, the seed path keeps it with an unsatisfiable local —
  // both represent the same worlds.
  CTable t(1);
  t.AddRow(Tuple{V(0)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  RaExpr q = RaExpr::Select(
      RaExpr::Rel(0, 1),
      {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(2))});

  CTableEvalOptions plain;
  plain.use_interner = false;
  auto fast = EvalOnCTables(q, db);
  auto seed = EvalOnCTables(q, db, plain);
  ASSERT_TRUE(fast.has_value() && seed.has_value());
  EXPECT_EQ(fast->num_rows(), 0u);
  EXPECT_EQ(seed->num_rows(), 1u);
  CDatabase fast_db{*fast};
  CDatabase seed_db{*seed};
  EXPECT_EQ(testutil::CanonicalWorlds(fast_db, db.Constants()),
            testutil::CanonicalWorlds(seed_db, db.Constants()));
}

// --- Family 7: condition algebra across backends ---------------------------

/// Truth of one =/!= atom under a total valuation (indexed by VarId).
bool AtomHolds(const CondAtom& atom, const std::vector<ConstId>& valuation) {
  auto value = [&](const Term& t) {
    return t.is_constant() ? t.constant()
                           : valuation[static_cast<size_t>(t.variable())];
  };
  return (value(atom.lhs) == value(atom.rhs)) == atom.is_equality;
}

/// Truth of an interned conjunction under a valuation.
bool ConjHolds(const ConditionInterner& interner, ConjId id,
               const std::vector<ConstId>& valuation) {
  if (id == ConditionInterner::kTrueConj) return true;
  if (id == ConditionInterner::kFalseConj) return false;
  for (const CondAtom& atom : interner.Resolve(id).atoms()) {
    if (!AtomHolds(atom, valuation)) return false;
  }
  return true;
}

/// A random conjunction over a pool small enough that implications,
/// contradictions, and tautologies all actually occur.
Conjunction RandomAlgebraConjunction(std::mt19937& rng) {
  std::uniform_int_distribution<int> natoms(1, 2);
  std::uniform_int_distribution<int> var(0, 2);
  std::uniform_int_distribution<int> constant(0, 2);
  std::uniform_int_distribution<int> kind(0, 3);
  Conjunction c;
  int n = natoms(rng);
  for (int i = 0; i < n; ++i) {
    switch (kind(rng)) {
      case 0:
        c.Add(Eq(V(var(rng)), C(constant(rng))));
        break;
      case 1:
        c.Add(Neq(V(var(rng)), C(constant(rng))));
        break;
      case 2:
        c.Add(Eq(V(var(rng)), V(var(rng))));
        break;
      default:
        c.Add(Neq(V(var(rng)), V(var(rng))));
        break;
    }
  }
  return c;
}

class ConditionAlgebraDifferentialTest : public ::testing::TestWithParam<int> {
};

TEST_P(ConditionAlgebraDifferentialTest, BackendsAgreeWithSmallModelOracle) {
  // Random And/Or trees over random conjunction leaves, built through both
  // backends in lockstep; every verdict the fixpoint and the decision
  // procedures rely on is compared between the backends and against the
  // brute-force oracle. The oracle enumerates valuations over the mentioned
  // constants (0..2) plus one fresh value per variable — complete for
  // boolean combinations of =/!= atoms over the infinite domain, because
  // any model collapses to one where each variable takes a mentioned
  // constant or one of |vars| pairwise-distinct fresh values.
  const unsigned case_seed = 11000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);

  ConditionInterner interner;
  std::unique_ptr<ConditionBackend> anti =
      MakeConditionBackend(ConditionBackendKind::kConjunctions, interner);
  std::unique_ptr<ConditionBackend> dd =
      MakeConditionBackend(ConditionBackendKind::kDecisionDiagrams, interner);

  constexpr int kVars = 3;
  const std::vector<ConstId> domain = {0, 1, 2, 100, 101, 102};
  std::vector<std::vector<ConstId>> valuations;
  static_assert(kVars == 3, "the valuation odometer below is unrolled");
  for (ConstId a : domain) {
    for (ConstId b : domain) {
      for (ConstId c : domain) {
        valuations.push_back({a, b, c});
      }
    }
  }

  auto truth_of_conj = [&](ConjId id) {
    std::vector<bool> truth(valuations.size());
    for (size_t k = 0; k < valuations.size(); ++k) {
      truth[k] = ConjHolds(interner, id, valuations[k]);
    }
    return truth;
  };

  struct Expr {
    CondId anti;
    CondId dd;
    std::vector<bool> truth;
  };
  std::vector<Expr> exprs;
  for (int i = 0; i < 6; ++i) {
    ConjId leaf = interner.Intern(RandomAlgebraConjunction(rng));
    exprs.push_back(
        {anti->FromConj(leaf), dd->FromConj(leaf), truth_of_conj(leaf)});
  }
  std::uniform_int_distribution<int> coin(0, 1);
  for (int step = 0; step < 10; ++step) {
    std::uniform_int_distribution<size_t> pick(0, exprs.size() - 1);
    Expr a = exprs[pick(rng)];
    Expr b = exprs[pick(rng)];
    bool is_and = coin(rng) == 0;
    Expr out;
    out.anti = is_and ? anti->And(a.anti, b.anti) : anti->Or(a.anti, b.anti);
    out.dd = is_and ? dd->And(a.dd, b.dd) : dd->Or(a.dd, b.dd);
    out.truth.resize(valuations.size());
    for (size_t k = 0; k < valuations.size(); ++k) {
      out.truth[k] =
          is_and ? (a.truth[k] && b.truth[k]) : (a.truth[k] || b.truth[k]);
    }
    exprs.push_back(std::move(out));
  }

  ConjId global = interner.Intern(RandomAlgebraConjunction(rng));
  const std::vector<bool> global_truth = truth_of_conj(global);

  for (size_t i = 0; i < exprs.size(); ++i) {
    SCOPED_TRACE("expr #" + std::to_string(i));
    const Expr& e = exprs[i];
    bool oracle_sat = false;
    bool oracle_sat_with = false;
    bool oracle_valid = true;
    bool oracle_taut = true;
    for (size_t k = 0; k < valuations.size(); ++k) {
      oracle_sat = oracle_sat || e.truth[k];
      oracle_sat_with = oracle_sat_with || (global_truth[k] && e.truth[k]);
      oracle_valid = oracle_valid && e.truth[k];
      oracle_taut = oracle_taut && (!global_truth[k] || e.truth[k]);
    }
    EXPECT_EQ(anti->Satisfiable(e.anti), oracle_sat);
    EXPECT_EQ(dd->Satisfiable(e.dd), oracle_sat);
    EXPECT_EQ(anti->SatisfiableWith(global, e.anti), oracle_sat_with);
    EXPECT_EQ(dd->SatisfiableWith(global, e.dd), oracle_sat_with);
    EXPECT_EQ(anti->TautologyUnder(global, e.anti), oracle_taut);
    EXPECT_EQ(dd->TautologyUnder(global, e.dd), oracle_taut);
    EXPECT_EQ(
        anti->TautologyUnder(ConditionInterner::kTrueConj, e.anti),
        oracle_valid);
    EXPECT_EQ(dd->TautologyUnder(ConditionInterner::kTrueConj, e.dd),
              oracle_valid);

    // The DNF expansions must represent exactly the expression's function.
    const std::pair<ConditionBackend*, CondId> sides[] = {
        {anti.get(), e.anti}, {dd.get(), e.dd}};
    for (const auto& [backend, id] : sides) {
      std::vector<ConjId> disjuncts;
      backend->AppendDisjuncts(id, &disjuncts);
      for (size_t k = 0; k < valuations.size(); ++k) {
        bool holds = false;
        for (ConjId d : disjuncts) {
          if (ConjHolds(interner, d, valuations[k])) {
            holds = true;
            break;
          }
        }
        ASSERT_EQ(holds, static_cast<bool>(e.truth[k]))
            << backend->name() << " DNF expansion diverged at valuation " << k;
      }
    }
  }

  // Implication over every ordered pair — the antichain's subsumption
  // verdict and the diagram's refutation check against the oracle.
  for (size_t i = 0; i < exprs.size(); ++i) {
    for (size_t j = 0; j < exprs.size(); ++j) {
      bool oracle_implies = true;
      for (size_t k = 0; k < valuations.size(); ++k) {
        oracle_implies =
            oracle_implies && (!exprs[i].truth[k] || exprs[j].truth[k]);
      }
      EXPECT_EQ(anti->Implies(exprs[i].anti, exprs[j].anti), oracle_implies)
          << "antichain Implies diverged on pair (" << i << ", " << j << ")";
      EXPECT_EQ(dd->Implies(exprs[i].dd, exprs[j].dd), oracle_implies)
          << "dd Implies diverged on pair (" << i << ", " << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionAlgebraDifferentialTest,
                         ::testing::Range(0, 25));

// --- Family 8: decision-diagram fixpoints ----------------------------------

class DDFixpointDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DDFixpointDifferentialTest, StrategiesConfluentAndWorldsMatch) {
  // On the decision-diagram backend each tuple's derivations merge into one
  // canonical diagram, so strategy choice (semi-naive/naive/scan, and the
  // shared-interner parallel runner) must not even reorder the exported
  // DNF's disjuncts per tuple — the row sets are identical. Against the
  // antichain backend the comparison is per-world (the two backends pick
  // different covering DNFs of the same world-set), and the dd image must
  // satisfy the per-world fixpoint oracle directly.
  const unsigned case_seed = 12000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 2; ++round) {
    DatalogProgram program = RandomDatalogProgram(rng);
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3, /*num_constants=*/3, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};

    DatalogCTableOptions dd_semi;
    dd_semi.condition_backend = ConditionBackendKind::kDecisionDiagrams;
    DatalogCTableOptions dd_naive = dd_semi;
    dd_naive.semi_naive = false;
    DatalogCTableOptions dd_scan = dd_semi;
    dd_scan.use_index = false;
    CDatabase semi = DatalogOnCTables(program, db, nullptr, dd_semi);
    CDatabase naive = DatalogOnCTables(program, db, nullptr, dd_naive);
    CDatabase scanned = DatalogOnCTables(program, db, nullptr, dd_scan);

    ConditionInterner shared_interner;
    shared_interner.EnableSharing();
    DatalogCTableOptions dd_par = dd_semi;
    dd_par.interner = &shared_interner;
    dd_par.num_threads = 4;
    CDatabase parallel = DatalogOnCTables(program, db, nullptr, dd_par);

    DatalogCTableOptions antichain;
    antichain.condition_backend = ConditionBackendKind::kConjunctions;
    CDatabase anti = DatalogOnCTables(program, db, nullptr, antichain);

    ASSERT_EQ(semi.num_tables(), naive.num_tables());
    for (size_t p = 0; p < semi.num_tables(); ++p) {
      EXPECT_EQ(CanonicalRowSet(semi.table(p)), CanonicalRowSet(naive.table(p)))
          << "dd semi-naive diverged from naive on predicate " << p << "\n"
          << program.ToString() << FormatCTable(t);
      EXPECT_EQ(CanonicalRowSet(semi.table(p)),
                CanonicalRowSet(scanned.table(p)))
          << "dd indexed join diverged from scan on predicate " << p << "\n"
          << program.ToString() << FormatCTable(t);
      EXPECT_EQ(CanonicalRowSet(semi.table(p)),
                CanonicalRowSet(parallel.table(p)))
          << "dd parallel runner diverged from sequential on predicate " << p
          << "\n"
          << program.ToString() << FormatCTable(t);
    }

    std::vector<ConstId> extra;
    for (ConstId c = 0; c <= 3; ++c) extra.push_back(c);
    EXPECT_EQ(testutil::CanonicalWorlds(semi, extra),
              testutil::CanonicalWorlds(anti, extra))
        << "dd fixpoint represents different worlds than the antichain on\n"
        << program.ToString() << FormatCTable(t);

    ExpectRepresentsFixpointOfEveryWorld(program, db, semi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DDFixpointDifferentialTest,
                         ::testing::Range(0, 15));

// --- Family 9: certainty across backends -----------------------------------

class CertaintyBackendDifferentialTest : public ::testing::TestWithParam<int> {
};

TEST_P(CertaintyBackendDifferentialTest, CertainFactAgreesAcrossBackends) {
  // CertainFactInTable decides `global -> OR over matching rows` — through
  // the DD backend as one Not/And/Satisfiable pass, through the conjunctive
  // backend as the exact backtracking disjunction check. Both must agree
  // with each other and with the independent clause-CSP world search on
  // every candidate fact (present, conditioned, and absent ones alike).
  const unsigned case_seed = 13000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 3; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3, /*num_constants=*/3, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};

    ConditionInterner interner;
    std::unique_ptr<ConditionBackend> anti =
        MakeConditionBackend(ConditionBackendKind::kConjunctions, interner);
    std::unique_ptr<ConditionBackend> dd =
        MakeConditionBackend(ConditionBackendKind::kDecisionDiagrams, interner);
    ConjId global = t.GlobalId(interner);

    for (ConstId a = 0; a <= 3; ++a) {
      for (ConstId b = 0; b <= 3; ++b) {
        Fact fact{a, b};
        bool via_anti = CertainFactInTable(t, fact, global, *anti);
        bool via_dd = CertainFactInTable(t, fact, global, *dd);
        EXPECT_EQ(via_anti, via_dd)
            << "backends disagree on certainty of (" << a << ", " << b
            << ") in\n"
            << FormatCTable(t);
        bool via_search = !ExistsWorldMissingFact(db, 0, fact);
        EXPECT_EQ(via_dd, via_search)
            << "backend certainty diverged from the world search on (" << a
            << ", " << b << ") in\n"
            << FormatCTable(t);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertaintyBackendDifferentialTest,
                         ::testing::Range(0, 15));

// --- Family 10: stratum-scheduled fixpoints ---------------------------------

/// A random *layered* range-restricted program engineered to exercise the
/// SCC scheduler: `num_edb` binary extensional predicates, `kLayers` binary
/// intensional layers whose rules draw body atoms from strictly lower
/// predicates (feeding multiple nonrecursive SCCs) or recurse within their
/// own layer (recursive SCCs), plus one rule-less intensional predicate that
/// occasionally appears in a body — producing statically dead rules the
/// stratum schedule and the magic rewrite both prune.
DatalogProgram RandomLayeredProgram(std::mt19937& rng, int num_edb = 2) {
  constexpr int kLayers = 4;
  // Last predicate: intensional, no rules — any body mentioning it is dead.
  DatalogProgram p(std::vector<int>(num_edb + kLayers + 1, 2), num_edb);
  const int barren = num_edb + kLayers;
  std::uniform_int_distribution<int> rules_per_layer(1, 2);
  std::uniform_int_distribution<int> body_len(1, 2);
  std::uniform_int_distribution<VarId> var(100, 102);
  std::uniform_int_distribution<int> small_const(0, 2);
  std::uniform_int_distribution<int> d10(0, 9);
  auto make_rule = [&](int head, int max_body_pred, bool allow_dead) {
    DatalogRule rule;
    std::vector<VarId> body_vars;
    int len = body_len(rng);
    for (int b = 0; b < len; ++b) {
      DatalogAtom atom;
      std::uniform_int_distribution<int> body_pred(0, max_body_pred);
      atom.predicate = allow_dead && d10(rng) == 0 ? barren : body_pred(rng);
      for (int i = 0; i < 2; ++i) {
        if (d10(rng) == 0) {
          atom.args.push_back(C(small_const(rng)));
        } else {
          VarId v = var(rng);
          atom.args.push_back(V(v));
          body_vars.push_back(v);
        }
      }
      rule.body.push_back(std::move(atom));
    }
    rule.head.predicate = head;
    for (int i = 0; i < 2; ++i) {
      if (body_vars.empty() || d10(rng) == 0) {
        rule.head.args.push_back(C(small_const(rng)));
      } else {
        std::uniform_int_distribution<size_t> pick(0, body_vars.size() - 1);
        rule.head.args.push_back(V(body_vars[pick(rng)]));
      }
    }
    p.AddRule(std::move(rule));
  };
  for (int l = 0; l < kLayers; ++l) {
    const int head = num_edb + l;
    int n = rules_per_layer(rng);
    for (int r = 0; r < n; ++r) {
      // Recursing within the layer (max body pred == head) forms recursive
      // SCCs; otherwise the rule feeds off strictly lower layers.
      bool recurse = d10(rng) < 3;
      make_rule(head, recurse ? head : head - 1, /*allow_dead=*/l > 0);
    }
  }
  EXPECT_EQ(p.Validate(), "");
  return p;
}

// The stratum-scheduled semi-naive fixpoint (SCCs in topological order,
// nonrecursive strata in one pass, delta rounds confined to the current SCC,
// statically dead and duplicate rules skipped) must produce the same row
// *set* — same tuples, same interned condition ids — as the monolithic
// all-rules schedule, on the indexed, scan, parallel, and decision-diagram
// strategies alike, and the demand (magic) path must agree across both
// schedules too. Row order may differ on multi-SCC programs, so every
// comparison goes through CanonicalRowSet.
class StratumDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(StratumDifferentialTest, StratumScheduleMatchesMonolithic) {
  const unsigned case_seed = 14000 + static_cast<unsigned>(GetParam());
  PW_DIFF_CASE(case_seed);
  std::mt19937 rng(case_seed);
  for (int round = 0; round < 3; ++round) {
    const int num_edb = 2;
    DatalogProgram program = RandomLayeredProgram(rng, num_edb);
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/2, /*num_constants=*/3, /*num_variables=*/2,
        /*num_local_atoms=*/GetParam() % 2,
        /*num_global_atoms=*/GetParam() % 2);
    std::vector<CTable> tables;
    for (int p = 0; p < num_edb; ++p) {
      tables.push_back(RandomCTable(options, rng));
    }
    CDatabase db(tables);
    std::string label = program.ToString() + FormatCDatabase(db);

    DatalogCTableOptions stratum;  // stratum_schedule defaults to true
    DatalogCTableOptions mono;
    mono.stratum_schedule = false;
    ConditionedFixpointStats stratum_stats;
    ConditionedFixpointStats mono_stats;
    CDatabase via_stratum = DatalogOnCTables(program, db, &stratum_stats,
                                             stratum);
    CDatabase via_mono = DatalogOnCTables(program, db, &mono_stats, mono);
    ASSERT_EQ(via_stratum.num_tables(), via_mono.num_tables());
    for (size_t p = 0; p < via_stratum.num_tables(); ++p) {
      EXPECT_EQ(CanonicalRowSet(via_stratum.table(p)),
                CanonicalRowSet(via_mono.table(p)))
          << "stratum schedule diverged from monolithic on predicate " << p
          << "\n" << label;
    }
    // No ordering claim on derived_rows: subsumption timing differs across
    // schedules, so neither side strictly dominates — only the final row
    // set (asserted above) is schedule-invariant.

    // Scan matching under both schedules.
    DatalogCTableOptions stratum_scan = stratum;
    stratum_scan.use_index = false;
    DatalogCTableOptions mono_scan = mono;
    mono_scan.use_index = false;
    CDatabase scan_stratum = DatalogOnCTables(program, db, nullptr,
                                              stratum_scan);
    CDatabase scan_mono = DatalogOnCTables(program, db, nullptr, mono_scan);
    for (size_t p = 0; p < scan_stratum.num_tables(); ++p) {
      EXPECT_EQ(CanonicalRowSet(scan_stratum.table(p)),
                CanonicalRowSet(scan_mono.table(p)))
          << "scan stratum/monolithic diverged on predicate " << p << "\n"
          << label;
      EXPECT_EQ(CanonicalRowSet(scan_stratum.table(p)),
                CanonicalRowSet(via_stratum.table(p)))
          << "scan/indexed diverged under the stratum schedule on predicate "
          << p << "\n" << label;
    }

    // The parallel runner under the stratum schedule (shared interner).
    ConditionInterner shared_interner;
    shared_interner.EnableSharing();
    DatalogCTableOptions par = stratum;
    par.interner = &shared_interner;
    par.num_threads = 4;
    CDatabase via_par = DatalogOnCTables(program, db, nullptr, par);
    for (size_t p = 0; p < via_par.num_tables(); ++p) {
      // A private interner assigns different ids, so compare world sets via
      // the canonical conjunction rendering of each row.
      std::vector<std::string> par_rows;
      for (const CRow& row : via_par.table(p).rows()) {
        par_rows.push_back(
            ToString(row.tuple) + " :: " +
            shared_interner.Resolve(row.LocalId(shared_interner)).ToString());
      }
      std::sort(par_rows.begin(), par_rows.end());
      EXPECT_EQ(par_rows, CanonicalRowSet(via_stratum.table(p)))
          << "parallel stratum runner diverged on predicate " << p << "\n"
          << label;
    }

    // Decision-diagram backend under both schedules.
    DatalogCTableOptions dd_stratum = stratum;
    dd_stratum.condition_backend = ConditionBackendKind::kDecisionDiagrams;
    DatalogCTableOptions dd_mono = mono;
    dd_mono.condition_backend = ConditionBackendKind::kDecisionDiagrams;
    CDatabase ddr_stratum = DatalogOnCTables(program, db, nullptr, dd_stratum);
    CDatabase ddr_mono = DatalogOnCTables(program, db, nullptr, dd_mono);
    for (size_t p = 0; p < ddr_stratum.num_tables(); ++p) {
      EXPECT_EQ(CanonicalRowSet(ddr_stratum.table(p)),
                CanonicalRowSet(ddr_mono.table(p)))
          << "dd stratum/monolithic diverged on predicate " << p << "\n"
          << label;
    }

    // Demand path: goal answers agree across schedules (the rewrite also
    // pruned the statically dead rules first).
    std::uniform_int_distribution<int> any_pred(
        0, static_cast<int>(program.num_predicates()) - 1);
    int goal = any_pred(rng);
    std::vector<std::optional<ConstId>> bindings =
        RandomBindings(rng, program.arity(goal));
    CTable magic_stratum =
        DatalogQueryOnCTables(program, db, goal, bindings, nullptr, stratum);
    CTable magic_mono =
        DatalogQueryOnCTables(program, db, goal, bindings, nullptr, mono);
    EXPECT_EQ(CanonicalRowSet(magic_stratum), CanonicalRowSet(magic_mono))
        << "demand path diverged across schedules on goal P" << goal << "\n"
        << label;

    // Both images must still represent the per-world fixpoints exactly.
    ExpectRepresentsFixpointOfEveryWorld(program, db, via_stratum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StratumDifferentialTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace pw
