// Tests for CTable::Minimized(): rep preservation and reduction effects.

#include <gtest/gtest.h>

#include <random>

#include "tables/ctable.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(MinimizeTest, DropsUnsatisfiableRows) {
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1)), Eq(V(0), C(2))});
  t.AddRow(Tuple{C(2)});
  CTable m = t.Minimized();
  EXPECT_EQ(m.num_rows(), 1u);
  EXPECT_EQ(m.row(0).tuple, (Tuple{C(2)}));
}

TEST(MinimizeTest, DropsRowsContradictingGlobal) {
  CTable t(1);
  t.SetGlobal(Conjunction{Eq(V(0), C(1))});
  t.AddRow(Tuple{C(5)}, Conjunction{Neq(V(0), C(1))});
  t.AddRow(Tuple{C(6)});
  CTable m = t.Minimized();
  EXPECT_EQ(m.num_rows(), 1u);
}

TEST(MinimizeTest, DropsLocalAtomsImpliedByGlobal) {
  CTable t(1);
  t.SetGlobal(Conjunction{Eq(V(0), C(1))});
  t.AddRow(Tuple{C(5)}, Conjunction{Eq(V(0), C(1)), Neq(V(1), C(3))});
  CTable m = t.Minimized();
  ASSERT_EQ(m.num_rows(), 1u);
  EXPECT_EQ(m.row(0).local().size(), 1u);  // only the x1 != 3 atom remains
}

TEST(MinimizeTest, SubsumesConditionalDuplicates) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(7))});
  CTable m = t.Minimized();
  EXPECT_EQ(m.num_rows(), 1u);
  EXPECT_TRUE(m.row(0).local().IsTautology());
}

TEST(MinimizeTest, KeepsOneOfIdenticalRows) {
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(7))});
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(7))});
  EXPECT_EQ(t.Minimized().num_rows(), 1u);
}

TEST(MinimizeTest, DistinctConditionsBothKept) {
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(7))});
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(8))});
  EXPECT_EQ(t.Minimized().num_rows(), 2u);
}

TEST(MinimizeTest, UnsatisfiableGlobalShortCircuits) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{FalseAtom()});
  CTable m = t.Minimized();
  EXPECT_FALSE(m.global().Satisfiable());
}

class MinimizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MinimizePropertyTest, PreservesRep) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options =
      testutil::SmallCTableOptions(/*arity=*/2, /*num_rows=*/4,
          /*num_constants=*/3, /*num_variables=*/3, /*num_local_atoms=*/2,
          /*num_global_atoms=*/1);
  CTable t = RandomCTable(options, rng);
  CTable m = t.Minimized();
  EXPECT_LE(m.num_rows(), t.num_rows());

  CDatabase before{t};
  CDatabase after{m};
  if (RepIsEmpty(before)) {
    EXPECT_TRUE(RepIsEmpty(after));
    return;
  }
  // Same worlds: every valuation of the original's variables gives the same
  // instance on both (Minimized never renames variables).
  WorldEnumOptions wopts;
  wopts.extra_constants = after.Constants();
  bool same = true;
  ForEachSatisfyingValuation(before, wopts, [&](const Valuation& v) {
    // Totalize over any variable dropped by minimization: Apply only needs
    // the kept variables, all of which the original also has... unless the
    // minimized table kept a variable the valuation misses (impossible).
    if (v.Apply(before) != Instance({v.Apply(m)})) {
      same = false;
      return false;
    }
    return true;
  });
  EXPECT_TRUE(same) << t.ToString() << "\nvs minimized\n" << m.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizePropertyTest,
                         ::testing::Range(1, 31));

}  // namespace
}  // namespace pw
