// Tests for the c-table text format: parsing, error reporting, formatting,
// round-trips.

#include <gtest/gtest.h>

#include <random>

#include "decision/containment.h"
#include "tables/text_format.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(TextFormatTest, ParsesMinimalTable) {
  auto r = ParseCTable("table arity 1\nrow 7\n", nullptr);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.table->arity(), 1);
  ASSERT_EQ(r.table->num_rows(), 1u);
  EXPECT_EQ(r.table->row(0).tuple, (Tuple{C(7)}));
}

TEST(TextFormatTest, ParsesVariablesInOrder) {
  auto r = ParseCTable("table arity 2\nrow ?a ?b\nrow ?b ?a\n", nullptr);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.table->row(0).tuple, (Tuple{V(0), V(1)}));
  EXPECT_EQ(r.table->row(1).tuple, (Tuple{V(1), V(0)}));
}

TEST(TextFormatTest, ParsesGlobalAndLocalConditions) {
  auto r = ParseCTable(
      "table arity 1\n"
      "global ?x != 1 & ?y = 2\n"
      "row 0 : ?x = ?y\n",
      nullptr);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.table->global().size(), 2u);
  EXPECT_EQ(r.table->row(0).local().atoms()[0], Eq(V(0), V(1)));
}

TEST(TextFormatTest, ParsesNamedConstants) {
  SymbolTable sym;
  auto r = ParseCTable("table arity 2\nrow alice eng\n", &sym);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.table->row(0).tuple[0], Term::Const(*sym.Lookup("alice")));
}

TEST(TextFormatTest, NamedConstantsRequireSymbols) {
  auto r = ParseCTable("table arity 1\nrow alice\n", nullptr);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("SymbolTable"), std::string::npos);
}

TEST(TextFormatTest, CommentsAndBlankLinesIgnored) {
  auto r = ParseCTable(
      "# header comment\n\ntable arity 1  # trailing\n\nrow 1\n", nullptr);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.table->num_rows(), 1u);
}

TEST(TextFormatTest, ArityMismatchReported) {
  auto r = ParseCTable("table arity 2\nrow 1\n", nullptr);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("arity"), std::string::npos);
  EXPECT_NE(r.error.find("line 2"), std::string::npos);
}

TEST(TextFormatTest, UnknownDirectiveReported) {
  auto r = ParseCTable("table arity 1\nbogus 1\n", nullptr);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("bogus"), std::string::npos);
}

TEST(TextFormatTest, MissingTableHeaderReported) {
  auto r = ParseCTable("row 1\n", nullptr);
  EXPECT_FALSE(r.ok());
}

TEST(TextFormatTest, MalformedConditionReported) {
  auto r = ParseCTable("table arity 1\nrow 1 : ?x ?y\n", nullptr);
  EXPECT_FALSE(r.ok());
}

TEST(TextFormatTest, DatabaseWithSharedVariables) {
  auto r = ParseCDatabase(
      "table arity 1\nrow ?x\ntable arity 1\nrow ?x\n", nullptr);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.database->num_tables(), 2u);
  // Same variable in both tables: an e-table database.
  EXPECT_EQ(r.database->Kind(), TableKind::kETable);
}

TEST(TextFormatTest, SingleTableParserRejectsMultiple) {
  auto r = ParseCTable("table arity 1\nrow 1\ntable arity 1\nrow 2\n",
                       nullptr);
  EXPECT_FALSE(r.ok());
}

TEST(TextFormatTest, FormatRoundTripPreservesStructure) {
  std::mt19937 rng(7);
  for (int round = 0; round < 20; ++round) {
    RandomCTableOptions options =
        testutil::SmallCTableOptions(/*arity=*/2, /*num_rows=*/3,
            /*num_constants=*/4, /*num_variables=*/3, /*num_local_atoms=*/1,
            /*num_global_atoms=*/1);
    CTable t = RandomCTable(options, rng);
    std::string text = FormatCTable(t);
    auto r = ParseCTable(text, nullptr);
    ASSERT_TRUE(r.ok()) << r.error << "\n" << text;
    EXPECT_EQ(r.table->arity(), t.arity());
    EXPECT_EQ(r.table->num_rows(), t.num_rows());
    EXPECT_EQ(r.table->Kind(), t.Kind()) << text;
    // Same set of worlds (variables may be renumbered, so compare by
    // mutual containment).
    CDatabase original{t};
    CDatabase reparsed{*r.table};
    EXPECT_TRUE(ContainmentSearch(View::Identity(), original,
                                  View::Identity(), reparsed))
        << text;
    EXPECT_TRUE(ContainmentSearch(View::Identity(), reparsed,
                                  View::Identity(), original))
        << text;
  }
}

TEST(TextFormatTest, FormatWithSymbols) {
  SymbolTable sym;
  CTable t(1);
  t.AddRow(Tuple{sym.Const("alice")});
  std::string text = FormatCTable(t, &sym);
  EXPECT_NE(text.find("alice"), std::string::npos);
  auto r = ParseCTable(text, &sym);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.table->row(0).tuple, t.row(0).tuple);
}

}  // namespace
}  // namespace pw
