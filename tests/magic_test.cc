// Unit tests for the magic-set demand transformation (datalog/magic.h) and
// the query-directed conditioned evaluation it powers
// (DatalogQueryOnCTables): binding-pattern propagation, predicate naming,
// recursive and mutually-recursive programs, condition flow into magic
// facts, and the demand counters.

#include "datalog/magic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ilalgebra/datalog_ctable.h"
#include "test_util.h"

namespace pw {
namespace {

using Bindings = std::vector<std::optional<ConstId>>;

/// Rows rendered as "tuple :: interned-id", sorted — the comparison key for
/// "same tuples, interned-id-identical conditions, up to row order".
std::vector<std::string> RowsWithIds(const CTable& t) {
  ConditionInterner& interner = ConditionInterner::Global();
  std::vector<std::string> out;
  for (const CRow& row : t.rows()) {
    out.push_back(ToString(row.tuple) + " :: " +
                  std::to_string(row.LocalId(interner)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The adorned entry for `original`+`adornment`, or nullptr.
const AdornedPredicate* FindAdorned(const MagicRewriteResult& rewrite,
                                    int original, Adornment adornment) {
  for (const AdornedPredicate& ap : rewrite.adorned) {
    if (ap.original == original && ap.adornment == adornment) return &ap;
  }
  return nullptr;
}

/// tc(x,y) :- e(x,y).  tc(x,z) :- tc(x,y), e(y,z).
DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, 1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(100), V(102)}};
  step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
  p.AddRule(step);
  return p;
}

TEST(AdornmentTest, StringAndGoalMask) {
  EXPECT_EQ(ToAdornmentString(0b01, 2), "bf");
  EXPECT_EQ(ToAdornmentString(0b10, 2), "fb");
  EXPECT_EQ(ToAdornmentString(0, 3), "fff");
  EXPECT_EQ(ToAdornmentString(0b111, 3), "bbb");

  DatalogGoal goal{1, {ConstId{4}, std::nullopt}};
  EXPECT_EQ(goal.adornment(), Adornment{1});
  DatalogGoal free_goal{1, {std::nullopt, std::nullopt}};
  EXPECT_EQ(free_goal.adornment(), Adornment{0});
}

TEST(MagicRewriteTest, BindingPatternPropagatesLeftToRight) {
  // q(x,z) :- e(x,y), p(y,z).   p(x,y) :- e(x,y).
  // Goal q#bf: after the e atom, y is bound, so p is demanded as p#bf.
  DatalogProgram program({2, 2, 2}, 1);  // e=0, p=1, q=2
  DatalogRule q_rule;
  q_rule.head = {2, Tuple{V(100), V(102)}};
  q_rule.body = {{0, Tuple{V(100), V(101)}}, {1, Tuple{V(101), V(102)}}};
  program.AddRule(q_rule);
  DatalogRule p_rule;
  p_rule.head = {1, Tuple{V(100), V(101)}};
  p_rule.body = {{0, Tuple{V(100), V(101)}}};
  program.AddRule(p_rule);

  MagicRewriteResult rewrite =
      MagicRewrite(program, {2, Bindings{ConstId{1}, std::nullopt}});
  EXPECT_EQ(rewrite.program.Validate(), "") << rewrite.ToString();

  ASSERT_EQ(rewrite.adorned.size(), 2u);
  EXPECT_EQ(rewrite.adorned[0].original, 2);  // the goal pair comes first
  EXPECT_EQ(rewrite.adorned[0].adornment, Adornment{1});
  EXPECT_EQ(rewrite.adorned[0].adorned, rewrite.goal_predicate);
  const AdornedPredicate* p_bf = FindAdorned(rewrite, 1, Adornment{1});
  ASSERT_NE(p_bf, nullptr);  // p demanded with its first position bound
  EXPECT_EQ(rewrite.program.arity(p_bf->magic), 1);

  // Guarded rules for q#bf and p#bf, demand rules m.p#bf and the seed.
  EXPECT_EQ(rewrite.rules_adorned, 2u);
  EXPECT_EQ(rewrite.magic_rules, 2u);
  EXPECT_EQ(rewrite.program.rules().size(), 4u);

  // The seed is the goal's bound constant.
  bool found_seed = false;
  for (const DatalogRule& rule : rewrite.program.rules()) {
    if (rule.body.empty()) {
      found_seed = true;
      EXPECT_EQ(rule.head.predicate, rewrite.adorned[0].magic);
      EXPECT_EQ(rule.head.args, Tuple{C(1)});
    }
  }
  EXPECT_TRUE(found_seed) << rewrite.ToString();
}

TEST(MagicRewriteTest, DistinctAdornmentsGetDistinctPredicatesAndNames) {
  // q(x,y) :- p(x,w), p(v,y): the first p atom is demanded bf, the second
  // ff — the same predicate under two adornments must map to two adorned
  // predicates and two magic predicates, with no name collision.
  DatalogProgram program({2, 2, 2}, 1);  // e=0, p=1, q=2
  DatalogRule q_rule;
  q_rule.head = {2, Tuple{V(100), V(101)}};
  q_rule.body = {{1, Tuple{V(100), V(102)}}, {1, Tuple{V(103), V(101)}}};
  program.AddRule(q_rule);
  DatalogRule p_rule;
  p_rule.head = {1, Tuple{V(100), V(101)}};
  p_rule.body = {{0, Tuple{V(100), V(101)}}};
  program.AddRule(p_rule);

  MagicRewriteResult rewrite =
      MagicRewrite(program, {2, Bindings{ConstId{0}, std::nullopt}});
  EXPECT_EQ(rewrite.program.Validate(), "") << rewrite.ToString();

  const AdornedPredicate* p_bf = FindAdorned(rewrite, 1, Adornment{1});
  const AdornedPredicate* p_ff = FindAdorned(rewrite, 1, Adornment{0});
  ASSERT_NE(p_bf, nullptr);
  ASSERT_NE(p_ff, nullptr);
  EXPECT_NE(p_bf->adorned, p_ff->adorned);
  EXPECT_NE(p_bf->magic, p_ff->magic);
  EXPECT_EQ(rewrite.program.arity(p_bf->magic), 1);
  EXPECT_EQ(rewrite.program.arity(p_ff->magic), 0);  // no bound positions

  std::set<std::string> distinct(rewrite.names.begin(), rewrite.names.end());
  EXPECT_EQ(distinct.size(), rewrite.names.size())
      << "predicate name collision";
  EXPECT_EQ(rewrite.names[static_cast<size_t>(p_bf->adorned)], "P1#bf");
  EXPECT_EQ(rewrite.names[static_cast<size_t>(p_bf->magic)], "m.P1#bf");
  EXPECT_EQ(rewrite.names[static_cast<size_t>(p_ff->magic)], "m.P1#ff");
}

TEST(MagicRewriteTest, DemandStaysBoundGate) {
  DatalogProgram tc = TransitiveClosure();
  // tc#bf keeps the first position bound through the recursion; tc#fb
  // leaves the recursive body atom all-free (left-to-right SIPS cannot use
  // a bound second position), which is the degenerate shape speculative
  // callers must decline.
  EXPECT_TRUE(DemandStaysBound(tc, {1, Bindings{ConstId{0}, std::nullopt}}));
  EXPECT_FALSE(DemandStaysBound(tc, {1, Bindings{std::nullopt, ConstId{0}}}));
  EXPECT_FALSE(
      DemandStaysBound(tc, {1, Bindings{std::nullopt, std::nullopt}}));
  // Extensional goals need no demand at all.
  EXPECT_TRUE(DemandStaysBound(tc, {0, Bindings{std::nullopt, std::nullopt}}));
}

TEST(MagicRewriteTest, ExtensionalGoalNeedsNoRules) {
  DatalogProgram program = TransitiveClosure();
  MagicRewriteResult rewrite =
      MagicRewrite(program, {0, Bindings{ConstId{1}, std::nullopt}});
  EXPECT_EQ(rewrite.program.Validate(), "");
  EXPECT_TRUE(rewrite.program.rules().empty());
  EXPECT_EQ(rewrite.goal_predicate, 0);
  EXPECT_EQ(rewrite.magic_begin, program.num_predicates());
}

/// Magic and full paths of DatalogQueryOnCTables must return identical row
/// sets (same tuples, interned-id-identical conditions).
void ExpectMagicMatchesFull(const DatalogProgram& program, const CDatabase& db,
                            int goal, const Bindings& bindings) {
  DatalogCTableOptions magic;
  DatalogCTableOptions full;
  full.use_magic = false;
  ConditionedFixpointStats magic_stats;
  ConditionedFixpointStats full_stats;
  CTable via_magic =
      DatalogQueryOnCTables(program, db, goal, bindings, &magic_stats, magic);
  CTable via_full =
      DatalogQueryOnCTables(program, db, goal, bindings, &full_stats, full);
  EXPECT_EQ(RowsWithIds(via_magic), RowsWithIds(via_full))
      << program.ToString() << db.ToString();
  EXPECT_EQ(via_magic.global(), via_full.global());
  EXPECT_EQ(full_stats.magic_facts, 0u);
  EXPECT_EQ(full_stats.rules_adorned, 0u);
}

TEST(DatalogQueryTest, RecursiveTransitiveClosurePointQuery) {
  DatalogProgram tc = TransitiveClosure();
  CTable e(2);
  for (int i = 0; i < 6; ++i) e.AddRow(Tuple{C(i), C(i + 1)});
  CDatabase db{e};

  Bindings bindings{ConstId{0}, std::nullopt};
  ConditionedFixpointStats magic_stats;
  CTable result =
      DatalogQueryOnCTables(tc, db, 1, bindings, &magic_stats);

  // Exactly the reachability set of node 0, all unconditioned.
  ASSERT_EQ(result.num_rows(), 6u);
  std::vector<std::string> got = RowsWithIds(result);
  std::vector<std::string> expected;
  for (int j = 1; j <= 6; ++j) {
    expected.push_back(ToString(Tuple{C(0), C(j)}) + " :: " +
                       std::to_string(ConditionInterner::kTrueConj));
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);

  // Demand counters are visible and the demand run derives strictly less.
  EXPECT_EQ(magic_stats.rules_adorned, 2u);
  EXPECT_GT(magic_stats.magic_facts, 0u);
  ConditionedFixpointStats full_stats;
  DatalogCTableOptions full;
  full.use_magic = false;
  DatalogQueryOnCTables(tc, db, 1, bindings, &full_stats, full);
  EXPECT_LT(magic_stats.derived_rows, full_stats.derived_rows);

  ExpectMagicMatchesFull(tc, db, 1, bindings);
  // Binding the *second* position instead exercises adornment fb.
  ExpectMagicMatchesFull(tc, db, 1, Bindings{std::nullopt, ConstId{6}});
  // A fully bound goal and a fully free goal.
  ExpectMagicMatchesFull(tc, db, 1, Bindings{ConstId{2}, ConstId{5}});
  ExpectMagicMatchesFull(tc, db, 1, Bindings{std::nullopt, std::nullopt});
}

TEST(DatalogQueryTest, MutuallyRecursiveProgram) {
  // p(x,y) :- e(x,y).   p(x,z) :- e(x,y), r(y,z).
  // r(x,z) :- e(x,y), p(y,z).
  DatalogProgram program({2, 2, 2}, 1);  // e=0, p=1, r=2
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  program.AddRule(base);
  DatalogRule p_step;
  p_step.head = {1, Tuple{V(100), V(102)}};
  p_step.body = {{0, Tuple{V(100), V(101)}}, {2, Tuple{V(101), V(102)}}};
  program.AddRule(p_step);
  DatalogRule r_step;
  r_step.head = {2, Tuple{V(100), V(102)}};
  r_step.body = {{0, Tuple{V(100), V(101)}}, {1, Tuple{V(101), V(102)}}};
  program.AddRule(r_step);
  ASSERT_EQ(program.Validate(), "");

  MagicRewriteResult rewrite =
      MagicRewrite(program, {1, Bindings{ConstId{0}, std::nullopt}});
  EXPECT_EQ(rewrite.program.Validate(), "") << rewrite.ToString();
  EXPECT_NE(FindAdorned(rewrite, 1, Adornment{1}), nullptr);
  EXPECT_NE(FindAdorned(rewrite, 2, Adornment{1}), nullptr);

  CTable e(2);
  for (int i = 0; i < 5; ++i) e.AddRow(Tuple{C(i), C(i + 1)});
  e.AddRow(Tuple{C(2), V(0)});  // a null edge: conditions join the party
  CDatabase db{e};
  ExpectMagicMatchesFull(program, db, 1, {ConstId{0}, std::nullopt});
  ExpectMagicMatchesFull(program, db, 2, {ConstId{1}, std::nullopt});
  ExpectMagicMatchesFull(program, db, 1, {std::nullopt, ConstId{4}});
}

TEST(DatalogQueryTest, ConditionsFlowIntoMagicFacts) {
  // q(x,z) :- e(x,y), p(y,z).   p(y,z) :- f(y,z).
  // Goal q(1,_): demand for p's first position flows through e's row
  // (1, x0), whose local condition must ride along on the magic fact.
  DatalogProgram program({2, 2, 2, 2}, 2);  // e=0, f=1, p=2, q=3
  DatalogRule q_rule;
  q_rule.head = {3, Tuple{V(100), V(102)}};
  q_rule.body = {{0, Tuple{V(100), V(101)}}, {2, Tuple{V(101), V(102)}}};
  program.AddRule(q_rule);
  DatalogRule p_rule;
  p_rule.head = {2, Tuple{V(100), V(101)}};
  p_rule.body = {{1, Tuple{V(100), V(101)}}};
  program.AddRule(p_rule);

  CTable e(2);
  e.AddRow(Tuple{C(1), V(0)}, Conjunction{Neq(V(0), C(5))});
  CTable f(2);
  f.AddRow(Tuple{C(2), C(3)});
  CDatabase db(std::vector<CTable>{e, f});

  MagicRewriteResult rewrite =
      MagicRewrite(program, {3, Bindings{ConstId{1}, std::nullopt}});
  const AdornedPredicate* p_bf = FindAdorned(rewrite, 2, Adornment{1});
  ASSERT_NE(p_bf, nullptr);

  DatalogCTableOptions options;
  options.magic_pred_begin = static_cast<int>(rewrite.magic_begin);
  ConditionedFixpointStats stats;
  CDatabase fixpoint =
      DatalogOnCTables(rewrite.program, db, &stats, options);

  // The demand fact for p#bf is the null x0, carrying e's row condition.
  ConditionInterner& interner = ConditionInterner::Global();
  const CTable& magic_p = fixpoint.table(static_cast<size_t>(p_bf->magic));
  ASSERT_EQ(magic_p.num_rows(), 1u);
  EXPECT_EQ(magic_p.row(0).tuple, Tuple{V(0)});
  EXPECT_EQ(magic_p.row(0).LocalId(interner),
            interner.Intern(Conjunction{Neq(V(0), C(5))}));
  EXPECT_GT(stats.magic_facts, 0u);

  ExpectMagicMatchesFull(program, db, 3, {ConstId{1}, std::nullopt});
}

TEST(DatalogQueryTest, UnsatisfiableDemandIsPruned) {
  // Goal q(3,_) over e = {(x0, x1)} with global x0 != 3: the only demand
  // for p's bound position carries x0 = 3, contradicting the global — it
  // must be pruned before any guarded body fires, and the goal is empty.
  DatalogProgram program({2, 2, 2}, 1);  // e=0, p=1, q=2
  DatalogRule q_rule;
  q_rule.head = {2, Tuple{V(100), V(102)}};
  q_rule.body = {{0, Tuple{V(100), V(101)}}, {1, Tuple{V(101), V(102)}}};
  program.AddRule(q_rule);
  DatalogRule p_rule;
  p_rule.head = {1, Tuple{V(100), V(101)}};
  p_rule.body = {{0, Tuple{V(100), V(101)}}};
  program.AddRule(p_rule);

  CTable e(2);
  e.AddRow(Tuple{V(0), V(1)});
  e.SetGlobal(Conjunction{Neq(V(0), C(3))});
  CDatabase db{e};

  ConditionedFixpointStats stats;
  CTable result = DatalogQueryOnCTables(program, db, 2,
                                        {ConstId{3}, std::nullopt}, &stats);
  EXPECT_EQ(result.num_rows(), 0u);
  EXPECT_GT(stats.demand_pruned, 0u);
  ExpectMagicMatchesFull(program, db, 2, {ConstId{3}, std::nullopt});
}

TEST(DatalogQueryTest, BoundNullPositionsAreSubstituted) {
  // e = {(x0, 2)}; goal q(1,_) with q(x,y) :- e(x,y): the answer is (1,2)
  // under the recorded equality x0 = 1 — on both paths, id-identically.
  DatalogProgram program({2, 2}, 1);
  DatalogRule rule;
  rule.head = {1, Tuple{V(100), V(101)}};
  rule.body = {{0, Tuple{V(100), V(101)}}};
  program.AddRule(rule);

  CTable e(2);
  e.AddRow(Tuple{V(0), C(2)});
  CDatabase db{e};

  ConditionInterner& interner = ConditionInterner::Global();
  CTable result =
      DatalogQueryOnCTables(program, db, 1, {ConstId{1}, std::nullopt});
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.row(0).tuple, (Tuple{C(1), C(2)}));
  EXPECT_EQ(result.row(0).LocalId(interner),
            interner.Intern(Conjunction{Eq(V(0), C(1))}));
  ExpectMagicMatchesFull(program, db, 1, {ConstId{1}, std::nullopt});
}

TEST(DatalogQueryTest, ExtensionalGoalIsRestrictedInput) {
  CTable e(2);
  e.AddRow(Tuple{C(1), C(2)});
  e.AddRow(Tuple{C(3), V(0)});
  e.AddRow(Tuple{V(1), C(4)}, Conjunction{Neq(V(1), C(2))});
  CDatabase db{e};
  DatalogProgram tc = TransitiveClosure();

  CTable result =
      DatalogQueryOnCTables(tc, db, 0, {ConstId{1}, std::nullopt});
  // Row 0 matches outright; row 1 clashes (3 != 1); row 2 matches under
  // x1 = 1.
  ConditionInterner& interner = ConditionInterner::Global();
  ASSERT_EQ(result.num_rows(), 2u);
  EXPECT_EQ(result.row(0).tuple, (Tuple{C(1), C(2)}));
  EXPECT_EQ(result.row(1).tuple, (Tuple{C(1), C(4)}));
  EXPECT_EQ(result.row(1).LocalId(interner),
            interner.Intern(Conjunction{Neq(V(1), C(2)), Eq(V(1), C(1))}));
  ExpectMagicMatchesFull(tc, db, 0, {ConstId{1}, std::nullopt});
}

TEST(DatalogQueryTest, DerivationBudgetStopsEarlyAndIsReported) {
  DatalogProgram tc = TransitiveClosure();
  CTable e(2);
  for (int i = 0; i < 8; ++i) e.AddRow(Tuple{C(i), C(i + 1)});
  CDatabase db{e};

  DatalogCTableOptions capped;
  capped.max_derived_rows = 10;
  ConditionedFixpointStats stats;
  CDatabase out = DatalogOnCTables(tc, db, &stats, capped);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_LE(stats.derived_rows, 10u);

  // Unlimited (the default) never reports exhaustion.
  ConditionedFixpointStats full_stats;
  DatalogOnCTables(tc, db, &full_stats);
  EXPECT_FALSE(full_stats.budget_exhausted);
  EXPECT_GT(full_stats.derived_rows, 10u);
}

TEST(DatalogQueryTest, RestrictionKeepsTheWeakestConditionsPerTuple) {
  // Two e rows restrict to the same goal tuple with comparable conditions:
  // only the weaker one survives, exactly like the fixpoint's antichain.
  CTable e(1);
  e.AddRow(Tuple{V(0)}, Conjunction{Eq(V(0), C(1)), Neq(V(1), C(2))});
  e.AddRow(Tuple{C(1)});
  CDatabase db{e};
  DatalogProgram program({1, 1}, 1);
  DatalogRule rule;
  rule.head = {1, Tuple{V(100)}};
  rule.body = {{0, Tuple{V(100)}}};
  program.AddRule(rule);

  CTable result = DatalogQueryOnCTables(program, db, 1, {ConstId{1}});
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.row(0).tuple, Tuple{C(1)});
  EXPECT_EQ(result.row(0).local().size(), 0u);  // the unconditioned row wins
  ExpectMagicMatchesFull(program, db, 1, {ConstId{1}});
}

}  // namespace
}  // namespace pw
