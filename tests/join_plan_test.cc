// Tests for the n-ary join planner (ilalgebra/join_plan.h): prefix
// flattening over the shapes the binary fusion of PR 3 missed (nested
// selections, selections above projections of products, products of three
// or more relations), conjunct partitioning, projection sinking, the greedy
// step order, and the shared Datalog probe plan.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ilalgebra/join_plan.h"
#include "ra/expr.h"
#include "test_util.h"

namespace pw {
namespace {

RaExpr TwoRelProduct() {
  return RaExpr::Product(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2));
}

SelectAtom EqCols(int l, int r) {
  return SelectAtom::Eq(ColOrConst::Col(l), ColOrConst::Col(r));
}

TEST(JoinPlanTest, SelectOverProductFuses) {
  RaExpr q = RaExpr::Select(TwoRelProduct(), {EqCols(1, 2)});
  JoinPlan plan = PlanJoin(q);
  ASSERT_TRUE(plan.fused);
  ASSERT_EQ(plan.leaves.size(), 2u);
  EXPECT_EQ(plan.leaves[0].base, 0);
  EXPECT_EQ(plan.leaves[1].base, 2);
  EXPECT_EQ(plan.total_width, 4);
  ASSERT_EQ(plan.conjuncts.size(), 1u);
  EXPECT_EQ(plan.conjuncts[0].kind, ConjunctKind::kJoinKey);
  // Identity outputs: nothing above the select reshapes columns.
  ASSERT_EQ(plan.outputs.size(), 4u);
  EXPECT_EQ(plan.outputs[3], ColOrConst::Col(3));
}

TEST(JoinPlanTest, NestedSelectionsFlattenIntoOnePlan) {
  // select(select(product)) — the PR 3 shape-matcher bailed on this and
  // fell back to the nested loop; the planner flattens both levels.
  RaExpr inner = RaExpr::Select(TwoRelProduct(), {EqCols(1, 2)});
  RaExpr q = RaExpr::Select(
      inner, {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1))});
  JoinPlan plan = PlanJoin(q);
  ASSERT_TRUE(plan.fused);
  ASSERT_EQ(plan.conjuncts.size(), 2u);
  // Inner atoms precede outer atoms in tree order.
  EXPECT_EQ(plan.conjuncts[0].kind, ConjunctKind::kJoinKey);
  EXPECT_EQ(plan.conjuncts[1].kind, ConjunctKind::kPushdown);
  ASSERT_EQ(plan.pushdown[0].size(), 1u);
  EXPECT_EQ(plan.conjuncts_pushed, 1u);
}

TEST(JoinPlanTest, SelectAboveProjectionOfProductFuses) {
  // The selection is written against the projected columns; the planner
  // composes it through the projection back onto the leaf columns.
  RaExpr proj = RaExpr::ProjectCols(TwoRelProduct(), {3, 0});
  RaExpr q = RaExpr::Select(proj, {EqCols(0, 1)});  // proj.0 = proj.1
  JoinPlan plan = PlanJoin(q);
  ASSERT_TRUE(plan.fused);
  ASSERT_EQ(plan.conjuncts.size(), 1u);
  const SelectAtom& a = plan.conjuncts[0].atom;
  EXPECT_EQ(a.lhs, ColOrConst::Col(3));  // composed through the projection
  EXPECT_EQ(a.rhs, ColOrConst::Col(0));
  EXPECT_EQ(plan.conjuncts[0].kind, ConjunctKind::kJoinKey);
  // The output spec is the projection, not the identity.
  ASSERT_EQ(plan.outputs.size(), 2u);
  EXPECT_EQ(plan.outputs[0], ColOrConst::Col(3));
  EXPECT_EQ(plan.outputs[1], ColOrConst::Col(0));
  // Columns 1 and 2 feed neither a conjunct nor the output: sunk.
  EXPECT_EQ(plan.projections_sunk, 2u);
  EXPECT_FALSE(plan.needed[1]);
  EXPECT_FALSE(plan.needed[2]);
}

TEST(JoinPlanTest, ProjectionEmittingConstantCollapsesAtoms) {
  // An atom against a projected-out constant column becomes a constant (or
  // half-constant) conjunct, not a column reference.
  RaExpr proj = RaExpr::Project(
      RaExpr::Rel(0, 2), {ColOrConst::Col(0), ColOrConst::Const(7)});
  RaExpr q = RaExpr::Select(RaExpr::Product(proj, RaExpr::Rel(1, 2)),
                            {EqCols(0, 2), EqCols(1, 3)});
  JoinPlan plan = PlanJoin(q);
  ASSERT_TRUE(plan.fused);
  ASSERT_EQ(plan.conjuncts.size(), 2u);
  EXPECT_EQ(plan.conjuncts[0].kind, ConjunctKind::kJoinKey);
  // proj.1 is the constant 7: the atom is a one-leaf filter on leaf 1.
  EXPECT_EQ(plan.conjuncts[1].kind, ConjunctKind::kPushdown);
  EXPECT_EQ(plan.conjuncts[1].atom.lhs, ColOrConst::Const(7));
  ASSERT_EQ(plan.pushdown[1].size(), 1u);
  // Rebased to leaf-local coordinates.
  EXPECT_EQ(plan.pushdown[1][0].rhs, ColOrConst::Col(1));
}

TEST(JoinPlanTest, TernaryProductFlattensToThreeLeaves) {
  // product(product(a, b), c) — the binary fusion never fused this shape.
  RaExpr prod =
      RaExpr::Product(TwoRelProduct(), RaExpr::Rel(2, 2));
  RaExpr q = RaExpr::Select(prod, {EqCols(1, 2), EqCols(3, 4)});
  JoinPlan plan = PlanJoin(q);
  ASSERT_TRUE(plan.fused);
  ASSERT_EQ(plan.leaves.size(), 3u);
  EXPECT_EQ(plan.leaves[2].base, 4);
  EXPECT_EQ(plan.total_width, 6);
  ASSERT_EQ(plan.conjuncts.size(), 2u);
  EXPECT_EQ(plan.conjuncts[0].leaves, (std::vector<int>{0, 1}));
  EXPECT_EQ(plan.conjuncts[1].leaves, (std::vector<int>{1, 2}));
}

TEST(JoinPlanTest, CrossLeafInequalityIsResidual) {
  RaExpr q = RaExpr::Select(
      TwoRelProduct(),
      {EqCols(0, 2), SelectAtom::Neq(ColOrConst::Col(1), ColOrConst::Col(3))});
  JoinPlan plan = PlanJoin(q);
  ASSERT_TRUE(plan.fused);
  EXPECT_EQ(plan.conjuncts[0].kind, ConjunctKind::kJoinKey);
  EXPECT_EQ(plan.conjuncts[1].kind, ConjunctKind::kResidual);
}

TEST(JoinPlanTest, PureProductDoesNotFuse) {
  EXPECT_FALSE(PlanJoin(TwoRelProduct()).fused);
  // One-leaf prefixes don't fuse either.
  RaExpr sel = RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1))});
  EXPECT_FALSE(PlanJoin(sel).fused);
  // A product whose only atoms are one-leaf filters has no key: no fuse.
  RaExpr filtered = RaExpr::Select(
      TwoRelProduct(),
      {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1))});
  EXPECT_FALSE(PlanJoin(filtered).fused);
}

TEST(JoinPlanTest, ReplayEventsFollowTreeOrder) {
  // product(select(a, f_a), b) then an outer select: the replay must
  // interleave leaf locals and atoms exactly as the nested loops conjoin
  // them — a's local, f_a, b's local, outer atom.
  RaExpr left = RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1))});
  RaExpr q =
      RaExpr::Select(RaExpr::Product(left, RaExpr::Rel(1, 2)), {EqCols(1, 2)});
  JoinPlan plan = PlanJoin(q);
  ASSERT_TRUE(plan.fused);
  ASSERT_EQ(plan.replay.size(), 4u);
  EXPECT_EQ(plan.replay[0].kind, ReplayEvent::kLeafLocal);
  EXPECT_EQ(plan.replay[0].leaf, 0);
  EXPECT_EQ(plan.replay[1].kind, ReplayEvent::kAtom);
  EXPECT_EQ(plan.replay[2].kind, ReplayEvent::kLeafLocal);
  EXPECT_EQ(plan.replay[2].leaf, 1);
  EXPECT_EQ(plan.replay[3].kind, ReplayEvent::kAtom);
}

TEST(JoinPlanTest, BinaryOnlyCollapsesAtFirstProduct) {
  // In the PR 3 baseline mode the product operands stay atomic leaves,
  // whatever their shape; the prefix above still flattens.
  RaExpr inner = RaExpr::Select(TwoRelProduct(), {EqCols(1, 2)});
  RaExpr q = RaExpr::Select(RaExpr::Product(inner, RaExpr::Rel(2, 2)),
                            {EqCols(3, 4)});
  JoinPlanOptions binary;
  binary.binary_only = true;
  JoinPlan plan = PlanJoin(q, binary);
  ASSERT_TRUE(plan.fused);
  ASSERT_EQ(plan.leaves.size(), 2u);
  EXPECT_EQ(plan.leaves[0].expr.op(), RaOp::kSelect);  // subtree, unflattened
  EXPECT_EQ(plan.leaves[0].arity, 4);
  EXPECT_EQ(plan.leaves[1].expr.op(), RaOp::kRel);
  // The full planner sees three leaves in the same tree.
  EXPECT_EQ(PlanJoin(q).leaves.size(), 3u);
}

TEST(JoinPlanTest, GreedyOrderSeedsSmallestAndPrefersConnected) {
  // Chain a(0) - b(1) - c(2): sizes force the seed to c, then the order
  // must stay connected (b before a).
  RaExpr prod = RaExpr::Product(TwoRelProduct(), RaExpr::Rel(2, 2));
  RaExpr q = RaExpr::Select(prod, {EqCols(1, 2), EqCols(3, 4)});
  JoinPlan plan = PlanJoin(q);
  ASSERT_TRUE(plan.fused);
  std::vector<JoinStep> steps = OrderJoinSteps(plan, {100, 50, 1});
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].leaf, 2);
  EXPECT_TRUE(steps[0].probe_cols.empty());
  EXPECT_EQ(steps[1].leaf, 1);  // connected to c via cols 3=4
  ASSERT_EQ(steps[1].probe_cols.size(), 1u);
  EXPECT_EQ(steps[1].probe_cols[0], 4);   // joined side (leaf c)
  EXPECT_EQ(steps[1].build_cols[0], 1);   // leaf-local column of b
  EXPECT_EQ(steps[2].leaf, 0);
  EXPECT_EQ(steps[2].probe_cols[0], 2);
  EXPECT_EQ(steps[2].build_cols[0], 1);
}

TEST(JoinPlanTest, GreedyOrderFallsBackToCartesianAcrossComponents) {
  // Keys a-b only; c is disconnected and must join as a cartesian step.
  RaExpr prod = RaExpr::Product(TwoRelProduct(), RaExpr::Rel(2, 2));
  RaExpr q = RaExpr::Select(prod, {EqCols(1, 2)});
  JoinPlan plan = PlanJoin(q);
  ASSERT_TRUE(plan.fused);
  std::vector<JoinStep> steps = OrderJoinSteps(plan, {10, 20, 1});
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].leaf, 0);  // smallest *incident* leaf, not c
  EXPECT_EQ(steps[1].leaf, 1);  // connected beats the smaller cartesian c
  EXPECT_FALSE(steps[1].build_cols.empty());
  EXPECT_EQ(steps[2].leaf, 2);
  EXPECT_TRUE(steps[2].build_cols.empty());  // cartesian
}

TEST(JoinPlanTest, EveryConjunctIsAppliedExactlyOnce) {
  RaExpr prod = RaExpr::Product(TwoRelProduct(), RaExpr::Rel(2, 2));
  RaExpr q = RaExpr::Select(
      prod, {EqCols(1, 2), EqCols(3, 4),
             SelectAtom::Neq(ColOrConst::Col(0), ColOrConst::Col(5)),
             SelectAtom::Eq(ColOrConst::Col(4), ColOrConst::Const(3))});
  JoinPlan plan = PlanJoin(q);
  ASSERT_TRUE(plan.fused);
  std::vector<JoinStep> steps = OrderJoinSteps(plan, {3, 3, 3});
  std::vector<int> seen(plan.conjuncts.size(), 0);
  for (const JoinStep& s : steps) {
    for (int ci : s.conjuncts) ++seen[ci];
  }
  for (size_t i = 0; i < plan.conjuncts.size(); ++i) {
    bool step_work = plan.conjuncts[i].kind == ConjunctKind::kJoinKey ||
                     plan.conjuncts[i].kind == ConjunctKind::kResidual;
    EXPECT_EQ(seen[i], step_work ? 1 : 0) << "conjunct " << i;
  }
}

TEST(JoinPlanTest, PlanAtomProbeUsesBoundConstantPositions) {
  std::map<VarId, Term> binding;
  binding.emplace(100, C(5));
  binding.emplace(101, V(3));  // bound to a null: cannot key a probe
  Tuple args{V(100), C(2), V(101), V(102)};
  AtomProbePlan plan = PlanAtomProbe(args, binding);
  EXPECT_EQ(plan.cols, (std::vector<int>{0, 1}));
  EXPECT_EQ(plan.key, (Tuple{C(5), C(2)}));
  // No bound constant positions: no probe.
  EXPECT_TRUE(PlanAtomProbe(Tuple{V(102), V(103)}, binding).cols.empty());
}

}  // namespace
}  // namespace pw
