// Unit tests for tables/: c-tables, kind classification, valuations and
// possible-world enumeration, including the paper's Fig. 1 examples.

#include <gtest/gtest.h>

#include <algorithm>

#include "tables/ctable.h"
#include "tables/valuation.h"
#include "tables/world_enum.h"

namespace pw {
namespace {

// --- Fig. 1 of the paper -------------------------------------------------
// Variables: x=0, y=1, z=2, v=3.
constexpr VarId kX = 0, kY = 1, kZ = 2, kV = 3;

CTable Fig1TableTa() {
  CTable t(3);
  t.AddRow(Tuple{C(0), C(1), V(kX)});
  t.AddRow(Tuple{V(kY), V(kZ), C(1)});
  t.AddRow(Tuple{C(2), C(0), V(kV)});
  return t;
}

CTable Fig1ETableTb() {
  CTable t(3);
  t.AddRow(Tuple{C(0), C(1), V(kX)});
  t.AddRow(Tuple{V(kX), V(kZ), C(1)});
  t.AddRow(Tuple{C(2), C(0), V(kZ)});
  return t;
}

CTable Fig1ITableTc() {
  CTable t = Fig1TableTa();
  t.SetGlobal(Conjunction{Neq(V(kX), C(0)), Neq(V(kY), V(kZ))});
  return t;
}

CTable Fig1GTableTd() {
  CTable t = Fig1ETableTb();
  t.SetGlobal(Conjunction{Neq(V(kX), V(kZ))});
  return t;
}

CTable Fig1CTableTe() {
  CTable t(2);
  t.SetGlobal(Conjunction{Neq(V(kX), C(1)), Neq(V(kY), C(2))});
  t.AddRow(Tuple{C(0), C(1)}, Conjunction{Eq(V(kZ), V(kZ))});  // z = z: true
  t.AddRow(Tuple{C(0), V(kX)}, Conjunction{Eq(V(kY), C(0))});
  t.AddRow(Tuple{V(kY), V(kX)}, Conjunction{Neq(V(kX), V(kY))});
  return t;
}

TEST(CTableKindTest, Fig1Classification) {
  EXPECT_EQ(Fig1TableTa().Kind(), TableKind::kCoddTable);
  EXPECT_EQ(Fig1ETableTb().Kind(), TableKind::kETable);
  EXPECT_EQ(Fig1ITableTc().Kind(), TableKind::kITable);
  EXPECT_EQ(Fig1GTableTd().Kind(), TableKind::kGTable);
  EXPECT_EQ(Fig1CTableTe().Kind(), TableKind::kCTable);
}

TEST(CTableKindTest, EqualityGlobalIsGTable) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.SetGlobal(Conjunction{Eq(V(0), C(1))});
  EXPECT_EQ(t.Kind(), TableKind::kGTable);
}

TEST(CTableKindTest, TrivialConditionsDoNotUpgrade) {
  CTable t(1);
  t.AddRow(Tuple{V(0)}, Conjunction{Eq(C(1), C(1))});
  t.SetGlobal(Conjunction{Eq(C(2), C(2))});
  EXPECT_EQ(t.Kind(), TableKind::kCoddTable);
}

TEST(CTableTest, VariablesAndConstantsCollected) {
  CTable t = Fig1CTableTe();
  EXPECT_EQ(t.Variables(), (std::vector<VarId>{kX, kY, kZ}));
  auto consts = t.Constants();
  EXPECT_TRUE(std::count(consts.begin(), consts.end(), 0));
  EXPECT_TRUE(std::count(consts.begin(), consts.end(), 1));
  EXPECT_TRUE(std::count(consts.begin(), consts.end(), 2));
}

TEST(CTableTest, FromRelationIsGround) {
  CTable t = CTable::FromRelation(Relation(2, {{1, 2}, {3, 4}}));
  EXPECT_TRUE(t.IsGround());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Kind(), TableKind::kCoddTable);
}

TEST(CTableTest, SubstituteRewritesTuplesAndConditions) {
  CTable t(1);
  t.AddRow(Tuple{V(0)}, Conjunction{Eq(V(1), C(2))});
  t.SetGlobal(Conjunction{Neq(V(0), V(1))});
  std::unordered_map<VarId, Term> sub{{0, Term::Const(7)}};
  CTable s = t.Substitute(sub);
  EXPECT_EQ(s.row(0).tuple[0], Term::Const(7));
  EXPECT_EQ(s.global().atoms()[0], Neq(C(7), V(1)));
}

TEST(CTableTest, NormalizedIncorporatesEqualities) {
  CTable t(2);
  t.AddRow(Tuple{V(0), V(1)});
  t.SetGlobal(Conjunction{Eq(V(0), C(5)), Eq(V(1), V(0)), Neq(V(2), C(1))});
  CTable n = t.Normalized();
  EXPECT_EQ(n.row(0).tuple, (Tuple{C(5), C(5)}));
  // Only the inequality survives.
  ASSERT_EQ(n.global().size(), 1u);
  EXPECT_FALSE(n.global().atoms()[0].is_equality);
}

TEST(CTableTest, NormalizedUnsatisfiableGlobalMarked) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.SetGlobal(Conjunction{Eq(V(0), C(1)), Eq(V(0), C(2))});
  EXPECT_FALSE(t.Normalized().global().Satisfiable());
}

TEST(CDatabaseTest, KindUpgradesOnSharedVariables) {
  CTable a(1);
  a.AddRow(Tuple{V(0)});
  CTable b(1);
  b.AddRow(Tuple{V(0)});
  CDatabase db;
  db.AddTable(a);
  db.AddTable(b);
  EXPECT_EQ(db.Kind(), TableKind::kETable);

  CTable c(1);
  c.AddRow(Tuple{V(1)});
  CDatabase db2;
  db2.AddTable(a);
  db2.AddTable(c);
  EXPECT_EQ(db2.Kind(), TableKind::kCoddTable);
}

TEST(CDatabaseTest, FromInstanceRoundTrip) {
  Instance i({Relation(1, {{1}}), Relation(2, {{1, 2}})});
  CDatabase db = CDatabase::FromInstance(i);
  EXPECT_EQ(db.num_tables(), 2u);
  Valuation empty;
  EXPECT_EQ(empty.Apply(db), i);
}

TEST(ValuationTest, Fig1ExampleValuation) {
  // sigma: x -> 2, y -> 3, z -> 0, v -> 5 (Example 2.1 of the paper).
  Valuation sigma;
  sigma.Set(kX, 2);
  sigma.Set(kY, 3);
  sigma.Set(kZ, 0);
  sigma.Set(kV, 5);

  EXPECT_EQ(sigma.Apply(Fig1TableTa()),
            Relation(3, {{0, 1, 2}, {3, 0, 1}, {2, 0, 5}}));
  EXPECT_EQ(sigma.Apply(Fig1ETableTb()),
            Relation(3, {{0, 1, 2}, {2, 0, 1}, {2, 0, 0}}));
}

TEST(ValuationTest, SatisfiesConditions) {
  Valuation sigma;
  sigma.Set(0, 1);
  sigma.Set(1, 2);
  EXPECT_TRUE(sigma.Satisfies(Neq(V(0), V(1))));
  EXPECT_FALSE(sigma.Satisfies(Eq(V(0), V(1))));
  EXPECT_TRUE(sigma.Satisfies(Conjunction{Eq(V(0), C(1)), Neq(V(1), C(3))}));
}

TEST(ValuationTest, LocalConditionsFilterRows) {
  CTable te = Fig1CTableTe();
  // x -> 0, y -> 0, z -> 9: rows 1 and 2 on (y = 0), row 3 off (x == y).
  Valuation sigma;
  sigma.Set(kX, 0);
  sigma.Set(kY, 0);
  sigma.Set(kZ, 9);
  EXPECT_EQ(sigma.Apply(te), Relation(2, {{0, 1}, {0, 0}}));
}

TEST(WorldEnumTest, GroundTableHasOneWorld) {
  CDatabase db(CTable::FromRelation(Relation(1, {{1}, {2}})));
  auto worlds = EnumerateWorlds(db);
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_EQ(worlds[0].relation(0), Relation(1, {{1}, {2}}));
}

TEST(WorldEnumTest, SingleVariableWorldsUpToRenaming) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.AddRow(Tuple{V(0)});
  CDatabase db{t};
  // x -> 1 gives {1}; x -> fresh gives {1, fresh}: two classes.
  EXPECT_EQ(CountDistinctWorlds(db), 2u);
}

TEST(WorldEnumTest, RepeatedVariableCorrelation) {
  CTable t(2);
  t.AddRow(Tuple{V(0), V(0)});
  CDatabase db{t};
  auto worlds = EnumerateWorlds(db);
  ASSERT_EQ(worlds.size(), 1u);  // always a single (c, c) fact
  const Relation& r = worlds[0].relation(0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ((*r.begin())[0], (*r.begin())[1]);
}

TEST(WorldEnumTest, GlobalConditionFilters) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.SetGlobal(Conjunction{Eq(V(0), C(3))});
  CDatabase db{t};
  auto worlds = EnumerateWorlds(db);
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_EQ(worlds[0].relation(0), Relation(1, {{3}}));
}

TEST(WorldEnumTest, UnsatisfiableGlobalYieldsNoWorlds) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.SetGlobal(Conjunction{Eq(V(0), C(1)), Eq(V(0), C(2))});
  CDatabase db{t};
  EXPECT_TRUE(RepIsEmpty(db));
  EXPECT_EQ(CountDistinctWorlds(db), 0u);
}

TEST(WorldEnumTest, LocalConditionsProduceSubsetWorlds) {
  // Row (1) with local x = 1: worlds {} and {(1)}.
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  auto worlds = EnumerateWorlds(db);
  ASSERT_EQ(worlds.size(), 2u);
}

TEST(WorldEnumTest, TwoVariablesTwoConstantsCount) {
  // T = {(x), (y)} over empty Delta: worlds up to renaming: {a} (x=y) and
  // {a, b} (x != y).
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.AddRow(Tuple{V(1)});
  CDatabase db{t};
  EXPECT_EQ(CountDistinctWorlds(db), 2u);
}

TEST(WorldEnumTest, ExtraConstantsWidenDelta) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CDatabase db{t};
  WorldEnumOptions options;
  options.extra_constants = {8, 9};
  // Worlds up to renaming: {8}, {9}, {fresh}.
  EXPECT_EQ(CountDistinctWorlds(db, options), 3u);
}

TEST(WorldEnumTest, MaxValuationsStopsEarly) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.AddRow(Tuple{V(1)});
  CDatabase db{t};
  WorldEnumOptions options;
  options.max_valuations = 1;
  int seen = 0;
  bool complete = ForEachWorld(db, options,
                               [&seen](const Instance&, const Valuation&) {
                                 ++seen;
                                 return true;
                               });
  EXPECT_FALSE(complete);
  EXPECT_EQ(seen, 1);
}

TEST(WorldEnumTest, EarlyStopByCallback) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CDatabase db{t};
  int seen = 0;
  bool complete = ForEachSatisfyingValuation(
      db, {}, [&seen](const Valuation&) {
        ++seen;
        return false;
      });
  EXPECT_FALSE(complete);
  EXPECT_EQ(seen, 1);
}

TEST(WorldEnumTest, FreshConstantsAvoidCollisions) {
  CTable t(1);
  t.AddRow(Tuple{C(10)});
  CDatabase db{t};
  auto fresh = FreshConstants(db, {42}, 3);
  ASSERT_EQ(fresh.size(), 3u);
  for (ConstId c : fresh) {
    EXPECT_GT(c, 42);
    EXPECT_GT(c, 10);
  }
}

TEST(WorldEnumTest, Fig1CTableWorldsAgreeWithPaperExample) {
  // The paper lists (0,1),(3,2) and (0,1) [from sigma with y=0] as example
  // members of rep(Te). Verify both appear among enumerated worlds with
  // suitable extra constants.
  CDatabase db{Fig1CTableTe()};
  WorldEnumOptions options;
  options.extra_constants = {3};
  auto worlds = EnumerateWorlds(db, options);
  Instance i1({Relation(2, {{0, 1}, {3, 2}})});
  Instance i2({Relation(2, {{0, 1}})});
  EXPECT_NE(std::find(worlds.begin(), worlds.end(), i1), worlds.end());
  EXPECT_NE(std::find(worlds.begin(), worlds.end(), i2), worlds.end());
}

}  // namespace
}  // namespace pw
