// Unit tests for ra/: expression construction, evaluation on complete
// instances, and fragment classification.

#include <gtest/gtest.h>

#include "ra/eval.h"
#include "ra/expr.h"
#include "ra/properties.h"

namespace pw {
namespace {

Instance SampleDb() {
  // R0(a, b): edges; R1(a): marked nodes.
  return Instance({Relation(2, {{1, 2}, {2, 3}, {1, 3}}),
                   Relation(1, {{2}, {3}})});
}

TEST(RaEvalTest, RelPassesThrough) {
  EXPECT_EQ(Eval(RaExpr::Rel(0, 2), SampleDb()),
            Relation(2, {{1, 2}, {2, 3}, {1, 3}}));
}

TEST(RaEvalTest, ConstRel) {
  Relation k(1, {{42}});
  EXPECT_EQ(Eval(RaExpr::ConstRel(k), SampleDb()), k);
}

TEST(RaEvalTest, ProjectColsReordersAndDrops) {
  RaExpr e = RaExpr::ProjectCols(RaExpr::Rel(0, 2), {1});
  EXPECT_EQ(Eval(e, SampleDb()), Relation(1, {{2}, {3}}));
}

TEST(RaEvalTest, ProjectDuplicatesColumns) {
  RaExpr e = RaExpr::ProjectCols(RaExpr::Rel(1, 1), {0, 0});
  EXPECT_EQ(Eval(e, SampleDb()), Relation(2, {{2, 2}, {3, 3}}));
}

TEST(RaEvalTest, ProjectConstantsIntroduceValues) {
  RaExpr e = RaExpr::Project(RaExpr::Rel(1, 1),
                             {ColOrConst::Col(0), ColOrConst::Const(9)});
  EXPECT_EQ(Eval(e, SampleDb()), Relation(2, {{2, 9}, {3, 9}}));
}

TEST(RaEvalTest, SelectByConstant) {
  RaExpr e = RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1))});
  EXPECT_EQ(Eval(e, SampleDb()), Relation(2, {{1, 2}, {1, 3}}));
}

TEST(RaEvalTest, SelectByColumnInequality) {
  RaExpr e = RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Neq(ColOrConst::Col(1), ColOrConst::Const(3))});
  EXPECT_EQ(Eval(e, SampleDb()), Relation(2, {{1, 2}}));
}

TEST(RaEvalTest, ProductConcatenates) {
  RaExpr e = RaExpr::Product(RaExpr::Rel(1, 1), RaExpr::Rel(1, 1));
  EXPECT_EQ(Eval(e, SampleDb()).size(), 4u);
  EXPECT_EQ(e.arity(), 2);
}

TEST(RaEvalTest, JoinSelectsMatchingPairs) {
  // Edges joined tail-to-head: paths of length 2.
  RaExpr e = RaExpr::ProjectCols(
      RaExpr::Join(RaExpr::Rel(0, 2), RaExpr::Rel(0, 2), {{1, 0}}), {0, 3});
  EXPECT_EQ(Eval(e, SampleDb()), Relation(2, {{1, 3}}));
}

TEST(RaEvalTest, UnionDeduplicates) {
  RaExpr e = RaExpr::Union(RaExpr::Rel(1, 1),
                           RaExpr::ConstRel(Relation(1, {{2}, {9}})));
  EXPECT_EQ(Eval(e, SampleDb()), Relation(1, {{2}, {3}, {9}}));
}

TEST(RaEvalTest, Difference) {
  RaExpr e = RaExpr::Diff(RaExpr::Rel(1, 1),
                          RaExpr::ConstRel(Relation(1, {{2}})));
  EXPECT_EQ(Eval(e, SampleDb()), Relation(1, {{3}}));
}

TEST(RaEvalTest, EvalQueryMultipleOutputs) {
  RaQuery q = {RaExpr::Rel(1, 1), RaExpr::ProjectCols(RaExpr::Rel(0, 2), {0})};
  Instance out = EvalQuery(q, SampleDb());
  EXPECT_EQ(out.num_relations(), 2u);
  EXPECT_EQ(out.relation(1), Relation(1, {{1}, {2}}));
}

TEST(RaPropertiesTest, PositiveExistentialFragment) {
  RaExpr pos = RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Product(RaExpr::Rel(0, 2), RaExpr::Rel(1, 1)),
                     {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(2))}),
      {0});
  EXPECT_TRUE(IsPositiveExistential(pos));
  EXPECT_FALSE(UsesDifference(pos));
}

TEST(RaPropertiesTest, NeqNeedsAllowFlag) {
  RaExpr neq = RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Neq(ColOrConst::Col(0), ColOrConst::Col(1))});
  EXPECT_FALSE(IsPositiveExistential(neq, /*allow_neq=*/false));
  EXPECT_TRUE(IsPositiveExistential(neq, /*allow_neq=*/true));
}

TEST(RaPropertiesTest, DifferenceLeavesFragment) {
  RaExpr diff = RaExpr::Diff(RaExpr::Rel(1, 1), RaExpr::Rel(1, 1));
  EXPECT_FALSE(IsPositiveExistential(diff, /*allow_neq=*/true));
  EXPECT_TRUE(UsesDifference(diff));
  EXPECT_FALSE(IsPositiveExistential(RaQuery{RaExpr::Rel(1, 1), diff}));
}

TEST(RaExprTest, AritiesComputed) {
  RaExpr r = RaExpr::Rel(0, 2);
  EXPECT_EQ(RaExpr::Product(r, r).arity(), 4);
  EXPECT_EQ(RaExpr::ProjectCols(r, {0, 1, 0}).arity(), 3);
  EXPECT_EQ(RaExpr::Union(r, r).arity(), 2);
}

TEST(RaExprTest, ToStringRoundTripsStructure) {
  RaExpr e = RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Eq(ColOrConst::Col(0),
                                     ColOrConst::Const(1))}),
      {1});
  EXPECT_EQ(e.ToString(), "pi[#1](sigma[#0=1](R0))");
}

}  // namespace
}  // namespace pw
