// Structural reproduction of the paper's worked figures: the generated
// tables must match the paper's listings (modulo variable renaming and
// 0-based node ids).

#include <gtest/gtest.h>

#include <algorithm>

#include "reductions/colorability.h"
#include "reductions/forall_exists.h"
#include "reductions/satisfiability.h"
#include "reductions/tautology.h"
#include "solvers/cnf.h"
#include "solvers/graph.h"

namespace pw {
namespace {

TEST(PaperFiguresTest, Fig4aGraph) {
  Graph g = Graph::PaperFig4a();
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 5u);
}

TEST(PaperFiguresTest, Fig4b_ITable) {
  // Paper: T = {1, 2, 3, x1..x5}, phi = {x1!=x2, x2!=x3, x3!=x4, x4!=x1,
  // x3!=x5}; our nodes are 0-based.
  MembershipInstance inst =
      ColorabilityToITableMembership(Graph::PaperFig4a());
  const CTable& t = inst.database.table(0);
  ASSERT_EQ(t.num_rows(), 8u);
  EXPECT_EQ(t.row(0).tuple, (Tuple{C(1)}));
  EXPECT_EQ(t.row(1).tuple, (Tuple{C(2)}));
  EXPECT_EQ(t.row(2).tuple, (Tuple{C(3)}));
  for (int a = 0; a < 5; ++a) {
    EXPECT_EQ(t.row(3 + a).tuple, (Tuple{V(a)}));
  }
  const auto& atoms = t.global().atoms();
  ASSERT_EQ(atoms.size(), 5u);
  EXPECT_EQ(atoms[0], Neq(V(0), V(1)));
  EXPECT_EQ(atoms[1], Neq(V(1), V(2)));
  EXPECT_EQ(atoms[2], Neq(V(2), V(3)));
  EXPECT_EQ(atoms[3], Neq(V(3), V(0)));
  EXPECT_EQ(atoms[4], Neq(V(2), V(4)));
  EXPECT_EQ(inst.instance.relation(0), Relation(1, {{1}, {2}, {3}}));
}

TEST(PaperFiguresTest, Fig4c_ETable) {
  // Paper: T contains the six proper color pairs and one (x_a, x_b) row per
  // edge; I0 is the six proper pairs.
  MembershipInstance inst =
      ColorabilityToETableMembership(Graph::PaperFig4a());
  const CTable& t = inst.database.table(0);
  ASSERT_EQ(t.num_rows(), 11u);  // 6 color pairs + 5 edges
  int var_rows = 0;
  for (const CRow& row : t.rows()) {
    if (row.tuple[0].is_variable()) {
      EXPECT_TRUE(row.tuple[1].is_variable());
      ++var_rows;
    }
  }
  EXPECT_EQ(var_rows, 5);
  EXPECT_EQ(inst.instance.relation(0).size(), 6u);
}

TEST(PaperFiguresTest, Fig4d_ViewTables) {
  // Paper: T(R) rows (b_j, x_j, c_j, y_j, j); T(S) the color pairs;
  // S0 = {1..5}; R0 = incidence triples.
  MembershipInstance inst = ColorabilityToViewMembership(Graph::PaperFig4a());
  const CTable& tr = inst.database.table(0);
  ASSERT_EQ(tr.num_rows(), 5u);
  // First edge (0,1) -> row (1, x0, 2, y0, 1) in 1-based node ids.
  EXPECT_EQ(tr.row(0).tuple[0], C(1));
  EXPECT_EQ(tr.row(0).tuple[2], C(2));
  EXPECT_EQ(tr.row(0).tuple[4], C(1));
  EXPECT_TRUE(tr.row(0).tuple[1].is_variable());
  EXPECT_TRUE(tr.row(0).tuple[3].is_variable());
  EXPECT_EQ(inst.database.table(1).num_rows(), 6u);
  EXPECT_EQ(inst.instance.relation(1),
            Relation(1, {{1}, {2}, {3}, {4}, {5}}));
  // Every R0 triple is an incidence triple: node belongs to both edges.
  Graph g = Graph::PaperFig4a();
  for (const Fact& f : inst.instance.relation(0)) {
    auto [bj, cj] = g.edges()[f[1] - 1];
    auto [bk, ck] = g.edges()[f[2] - 1];
    int a = f[0] - 1;
    EXPECT_TRUE(a == bj || a == cj);
    EXPECT_TRUE(a == bk || a == ck);
  }
}

TEST(PaperFiguresTest, Fig5FormulaShape) {
  ClausalFormula f = PaperFig5Cnf();
  EXPECT_EQ(f.num_vars, 5);
  EXPECT_EQ(f.clauses.size(), 5u);
  EXPECT_TRUE(f.IsThree());
  // Clause 2 of the paper: x1 v -x2 v x4 (0-based vars 0, 1, 3).
  EXPECT_EQ(f.clauses[1][0], Literal::Pos(0));
  EXPECT_EQ(f.clauses[1][1], Literal::Neg(1));
  EXPECT_EQ(f.clauses[1][2], Literal::Pos(3));
}

TEST(PaperFiguresTest, Fig7_ContainmentTables) {
  // For the Fig. 5 forall-exists split: To has 2n + 7 rows; T has 2n + 7 +
  // p rows; phi_T has 2n + (complementary pairs) + 3p atoms.
  ForallExistsCnf qbf = PaperFig5ForallExists();
  ContainmentInstance inst = ForallExistsToTableInITable(qbf);
  int n = qbf.num_forall;
  int p = static_cast<int>(qbf.formula.clauses.size());
  EXPECT_EQ(inst.lhs.table(0).num_rows(), static_cast<size_t>(2 * n + 7));
  EXPECT_EQ(inst.rhs.table(0).num_rows(),
            static_cast<size_t>(2 * n + 7 + p));
  // Paper's Fig. 7 lists w1!=5, y1!=6, w2!=5, y2!=6 plus the z constraints:
  // count the boolean-encoding atoms.
  int wy_atoms = 0;
  for (const CondAtom& a : inst.rhs.table(0).global().atoms()) {
    if (a.lhs.is_constant() || a.rhs.is_constant()) {
      ConstId c = a.lhs.is_constant() ? a.lhs.constant() : a.rhs.constant();
      if (c == 5 || c == 6) ++wy_atoms;
    }
  }
  EXPECT_EQ(wy_atoms, 2 * n);
  // Every clause position contributes one z != u/v atom.
  EXPECT_GE(inst.rhs.table(0).global().size(),
            static_cast<size_t>(2 * n + 3 * p));
}

TEST(PaperFiguresTest, Fig11b_ETablePossibility) {
  // For Fig. 5's CNF (m = 5 vars, n = 5 clauses): T has 2m + 3n rows,
  // P has 2m + n facts.
  UnboundedPossibilityInstance inst = SatToETablePossibility(PaperFig5Cnf());
  EXPECT_EQ(inst.database.table(0).num_rows(), 2u * 5 + 3u * 5);
  EXPECT_EQ(inst.pattern.relation(0).size(), 2u * 5 + 5);
}

TEST(PaperFiguresTest, Fig11a_ITablePossibility) {
  // T has 3n rows (one per clause position); phi has one inequality per
  // complementary occurrence pair; P has n facts.
  ClausalFormula f = PaperFig5Cnf();
  UnboundedPossibilityInstance inst = SatToITablePossibility(f);
  EXPECT_EQ(inst.database.table(0).num_rows(), 15u);
  EXPECT_EQ(inst.pattern.relation(0).size(), 5u);
  // The paper's Fig. 11(a) lists 12 inequalities for this formula.
  EXPECT_EQ(inst.database.table(0).global().size(), 12u);
}

TEST(PaperFiguresTest, Fig6_NonColorabilityTable) {
  // T0 = {(1, a, b) per edge} union {(0, a, x_a) per node}.
  UniquenessInstance inst =
      NonColorabilityToViewUniqueness(Graph::PaperFig4a());
  const CTable& t = inst.database.table(0);
  ASSERT_EQ(t.num_rows(), 10u);
  int edge_rows = 0, node_rows = 0;
  for (const CRow& row : t.rows()) {
    if (row.tuple[0] == C(1)) {
      ++edge_rows;
      EXPECT_TRUE(row.tuple[2].is_constant());
    } else {
      ASSERT_EQ(row.tuple[0], C(0));
      ++node_rows;
      EXPECT_TRUE(row.tuple[2].is_variable());
    }
  }
  EXPECT_EQ(edge_rows, 5);
  EXPECT_EQ(node_rows, 5);
}

}  // namespace
}  // namespace pw
