// Unit tests for the DATALOG program analysis (datalog/analysis.h): SCC
// condensation and stratum order, structured diagnostics (all errors, not
// first-wins; structural warnings), rule classification, derivability, and
// reachability cones — plus the load-bearing wiring: the stratum-scheduled
// fixpoint consumes the condensation and skips dead rules, and Validate()
// is a thin rendering of the analysis's errors.

#include "datalog/analysis.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/program.h"
#include "ilalgebra/datalog_ctable.h"
#include "tables/ctable.h"
#include "test_util.h"

namespace pw {
namespace {

DatalogRule Rule(DatalogAtom head, std::vector<DatalogAtom> body) {
  DatalogRule r;
  r.head = std::move(head);
  r.body = std::move(body);
  return r;
}

/// edge (EDB) -> path (recursive) -> reach (nonrecursive): three SCCs whose
/// ids must come out in that order.
DatalogProgram LayeredProgram() {
  DatalogProgram p({2, 2, 2}, /*num_edb=*/1);
  p.AddRule(Rule({1, {V(0), V(1)}}, {{0, {V(0), V(1)}}}));             // base
  p.AddRule(Rule({1, {V(0), V(1)}},
                 {{1, {V(0), V(2)}}, {0, {V(2), V(1)}}}));             // step
  p.AddRule(Rule({2, {V(0), V(1)}}, {{1, {V(0), V(1)}}}));             // copy
  return p;
}

TEST(ProgramAnalysisTest, SccIdsAreATopologicalStratumOrder) {
  DatalogProgram p = LayeredProgram();
  ProgramAnalysis a(p);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a.num_sccs(), 3);
  EXPECT_LT(a.SccOf(0), a.SccOf(1));
  EXPECT_LT(a.SccOf(1), a.SccOf(2));
  // Body SCC <= head SCC for every rule, the invariant the scheduler needs.
  for (const DatalogRule& rule : p.rules()) {
    for (const DatalogAtom& atom : rule.body) {
      EXPECT_LE(a.SccOf(atom.predicate), a.SccOf(rule.head.predicate));
    }
  }
  EXPECT_EQ(a.SccMembers(a.SccOf(1)), std::vector<int>{1});
  EXPECT_FALSE(a.SccRecursive(a.SccOf(0)));  // extensional, no self edge
  EXPECT_TRUE(a.SccRecursive(a.SccOf(1)));   // path depends on itself
  EXPECT_FALSE(a.SccRecursive(a.SccOf(2)));
  // Rules attach to their head's SCC in program order.
  EXPECT_EQ(a.SccRules(a.SccOf(1)), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(a.SccRules(a.SccOf(2)), (std::vector<size_t>{2}));
  EXPECT_TRUE(a.SccRules(a.SccOf(0)).empty());
}

TEST(ProgramAnalysisTest, MutualRecursionSharesAnSccAndFlagsRecursiveRules) {
  // even/odd over successor-ish edges: p1 and p2 feed each other.
  DatalogProgram p({2, 2, 2}, /*num_edb=*/1);
  p.AddRule(Rule({1, {V(0), V(1)}}, {{0, {V(0), V(1)}}}));
  p.AddRule(Rule({2, {V(0), V(1)}}, {{1, {V(0), V(1)}}}));
  p.AddRule(Rule({1, {V(0), V(1)}}, {{2, {V(0), V(2)}}, {0, {V(2), V(1)}}}));
  ProgramAnalysis a(p);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.SccOf(1), a.SccOf(2));
  EXPECT_TRUE(a.SccRecursive(a.SccOf(1)));
  EXPECT_EQ(a.SccMembers(a.SccOf(1)), (std::vector<int>{1, 2}));
  // Rule 0 feeds the SCC from outside (body = EDB only): nonrecursive.
  EXPECT_FALSE(a.RuleRecursive(0));
  // Rules 1 and 2 consume a predicate of their own head's SCC.
  EXPECT_TRUE(a.RuleRecursive(1));
  EXPECT_TRUE(a.RuleRecursive(2));
}

TEST(ProgramAnalysisTest, DeadDuplicateAndUnreachableDiagnostics) {
  // Predicate 3 ("barren") has no rules, so rule 1 can never fire, and both
  // barren and the dead rule's head (reached only through it) are
  // unreachable from the extensional database.
  DatalogProgram p({2, 2, 2, 2}, /*num_edb=*/1);
  p.AddRule(Rule({1, {V(0), V(1)}}, {{0, {V(0), V(1)}}}));
  p.AddRule(Rule({2, {V(0), V(1)}}, {{0, {V(0), V(1)}}, {3, {V(0), V(1)}}}));
  p.AddRule(Rule({1, {V(0), V(1)}}, {{0, {V(0), V(1)}}}));  // duplicate of 0
  ProgramAnalysis a(p);
  EXPECT_TRUE(a.ok()) << a.ErrorString();  // warnings only
  EXPECT_EQ(p.Validate(), "");

  EXPECT_FALSE(a.RuleDead(0));
  EXPECT_TRUE(a.RuleDead(1));
  EXPECT_FALSE(a.RuleDuplicate(1));
  EXPECT_TRUE(a.RuleDead(2));  // duplicates are dead: they derive nothing new
  EXPECT_TRUE(a.RuleDuplicate(2));

  EXPECT_TRUE(a.Derivable(0));   // extensional
  EXPECT_TRUE(a.Derivable(1));
  EXPECT_FALSE(a.Derivable(2));  // only the dead rule derives it
  EXPECT_FALSE(a.Derivable(3));

  auto has_warning = [&](const std::string& needle) {
    for (const Diagnostic& d : a.diagnostics()) {
      if (d.severity == DiagnosticSeverity::kWarning &&
          d.ToString().find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_warning("dead rule: body predicate P3 is underivable"));
  EXPECT_TRUE(has_warning("duplicate of an earlier rule"));
  EXPECT_TRUE(has_warning("predicate P2 is unreachable"));
  EXPECT_TRUE(has_warning("predicate P3 is unreachable"));
}

TEST(ProgramAnalysisTest, CartesianAndHeadOnlyWarnings) {
  DatalogProgram p({2, 2, 2}, /*num_edb=*/1);
  // Body atoms share no variable: a cartesian product (two components).
  p.AddRule(Rule({1, {V(0), V(2)}}, {{0, {V(0), V(1)}}, {0, {V(2), V(3)}}}));
  // Predicate 2 is derived but nothing reads it.
  p.AddRule(Rule({2, {V(0), V(1)}}, {{0, {V(0), V(1)}}}));
  ProgramAnalysis a(p);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.Connectivity(0).num_components, 2);
  ASSERT_EQ(a.Connectivity(0).component.size(), 2u);
  EXPECT_NE(a.Connectivity(0).component[0], a.Connectivity(0).component[1]);
  EXPECT_EQ(a.Connectivity(1).num_components, 1);
  bool cartesian = false;
  bool head_only = false;
  for (const Diagnostic& d : a.diagnostics()) {
    cartesian = cartesian ||
                d.message.find("cartesian product") != std::string::npos;
    head_only = head_only ||
                d.message.find("head-only predicate P2") != std::string::npos;
  }
  EXPECT_TRUE(cartesian);
  EXPECT_TRUE(head_only);
}

TEST(ProgramAnalysisTest, AllErrorsReportedNotFirstWins) {
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  p.AddRule(Rule({0, {V(0), V(1)}}, {{1, {V(0), V(1)}}}));   // extensional head
  p.AddRule(Rule({1, {V(0)}}, {{0, {V(0), V(1)}}}));         // arity mismatch
  p.AddRule(Rule({1, {V(0), V(7)}}, {{0, {V(0), V(1)}}}));   // range restriction
  p.AddRule(Rule({1, {V(0), V(1)}}, {{9, {V(0), V(1)}}}));   // unknown predicate
  ProgramAnalysis a(p);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.num_errors(), 4u);
  // Errors come first in diagnostics(), and Validate() renders all of them.
  for (size_t i = 0; i < a.num_errors(); ++i) {
    EXPECT_EQ(a.diagnostics()[i].severity, DiagnosticSeverity::kError);
  }
  std::string v = p.Validate();
  EXPECT_EQ(v, a.ErrorString());
  EXPECT_NE(v.find("head predicate P0 is extensional"), std::string::npos);
  EXPECT_NE(v.find("arity mismatch on P1 (got 1, declared 2)"),
            std::string::npos);
  EXPECT_NE(v.find("not range-restricted: head variable ?7"),
            std::string::npos);
  EXPECT_NE(v.find("unknown predicate 9"), std::string::npos);
  EXPECT_EQ(std::count(v.begin(), v.end(), '\n'), 3);  // four lines
}

TEST(ProgramAnalysisTest, DiagnosticRendering) {
  Diagnostic d{DiagnosticSeverity::kError, 2, 1, "boom"};
  EXPECT_EQ(d.ToString(), "error: rule 2: body atom 1: boom");
  Diagnostic w{DiagnosticSeverity::kWarning, -1, -1, "odd shape"};
  EXPECT_EQ(w.ToString(), "warning: odd shape");
}

/// The pre-analysis cone computation (the taint-propagation loop ivm.cc ran
/// per delete): close {seed} under body -> head edges.
std::vector<bool> LegacyCone(const DatalogProgram& p, int seed) {
  std::vector<bool> cone(p.num_predicates(), false);
  cone[static_cast<size_t>(seed)] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const DatalogRule& rule : p.rules()) {
      if (cone[static_cast<size_t>(rule.head.predicate)]) continue;
      for (const DatalogAtom& atom : rule.body) {
        if (cone[static_cast<size_t>(atom.predicate)]) {
          cone[static_cast<size_t>(rule.head.predicate)] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return cone;
}

TEST(ProgramAnalysisTest, ConesMatchLegacyTaintClosure) {
  DatalogProgram layered = LayeredProgram();
  DatalogProgram diamond({2, 2, 2, 2, 2}, /*num_edb=*/2);
  diamond.AddRule(Rule({2, {V(0), V(1)}}, {{0, {V(0), V(1)}}}));
  diamond.AddRule(Rule({3, {V(0), V(1)}}, {{1, {V(0), V(1)}}}));
  diamond.AddRule(Rule({4, {V(0), V(1)}},
                       {{2, {V(0), V(2)}}, {3, {V(2), V(1)}}}));
  diamond.AddRule(Rule({4, {V(0), V(1)}},
                       {{4, {V(0), V(2)}}, {2, {V(2), V(1)}}}));
  for (const DatalogProgram* p : {&layered, &diamond}) {
    ProgramAnalysis a(*p);
    for (size_t seed = 0; seed < p->num_predicates(); ++seed) {
      EXPECT_EQ(a.Cone(static_cast<int>(seed)),
                LegacyCone(*p, static_cast<int>(seed)))
          << "cone diverged for predicate " << seed;
      EXPECT_TRUE(a.Cone(static_cast<int>(seed))[seed]);
    }
  }
}

TEST(ProgramAnalysisTest, StratumFixpointConsumesTheAnalysis) {
  // Layered program with a dead rule riding along: the scheduled run must
  // fire multiple strata, skip the dead rule, and still produce the same
  // rows as the monolithic schedule.
  DatalogProgram p({2, 2, 2, 2}, /*num_edb=*/1);
  p.AddRule(Rule({1, {V(0), V(1)}}, {{0, {V(0), V(1)}}}));
  p.AddRule(Rule({1, {V(0), V(1)}},
                 {{1, {V(0), V(2)}}, {0, {V(2), V(1)}}}));
  p.AddRule(Rule({2, {V(0), V(1)}}, {{1, {V(0), V(1)}}}));
  p.AddRule(Rule({2, {V(0), V(1)}},
                 {{1, {V(0), V(1)}}, {3, {V(0), V(1)}}}));  // dead: P3 barren
  CTable edges = testutil::MakeTable(
      2, std::vector<Tuple>{{C(1), C(2)}, {C(2), C(3)}, {C(3), C(4)}});
  CDatabase db{edges};

  ConditionedFixpointStats stratum_stats;
  ConditionedFixpointStats mono_stats;
  DatalogCTableOptions mono;
  mono.stratum_schedule = false;
  CDatabase via_stratum = DatalogOnCTables(p, db, &stratum_stats);
  CDatabase via_mono = DatalogOnCTables(p, db, &mono_stats, mono);

  EXPECT_GE(stratum_stats.strata, 2u);  // path's SCC and reach's SCC fired
  EXPECT_GE(stratum_stats.dead_rules_skipped, 1u);
  EXPECT_EQ(mono_stats.strata, 0u);  // monolithic never enters the scheduler
  ASSERT_EQ(via_stratum.num_tables(), via_mono.num_tables());
  for (size_t pred = 0; pred < via_stratum.num_tables(); ++pred) {
    std::vector<Tuple> a_rows;
    std::vector<Tuple> b_rows;
    for (const CRow& r : via_stratum.table(pred).rows()) {
      a_rows.push_back(r.tuple);
    }
    for (const CRow& r : via_mono.table(pred).rows()) {
      b_rows.push_back(r.tuple);
    }
    std::sort(a_rows.begin(), a_rows.end());
    std::sort(b_rows.begin(), b_rows.end());
    EXPECT_EQ(a_rows, b_rows) << "schedules diverged on predicate " << pred;
  }
  // The fixpoint exposes its analysis; consumers (ivm.cc's ConeOf) read the
  // precomputed cones off it.
  ConditionedFixpoint fix(p, {});
  EXPECT_EQ(fix.analysis().num_sccs(), ProgramAnalysis(p).num_sccs());
  EXPECT_EQ(fix.analysis().Cone(0), LegacyCone(p, 0));
}

TEST(ProgramAnalysisTest, EmptyBodyRulesAreDerivableAndNonrecursive) {
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  p.AddRule(Rule({1, {C(1), C(2)}}, {}));  // ground fact rule
  ProgramAnalysis a(p);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.Derivable(1));
  EXPECT_FALSE(a.RuleRecursive(0));
  EXPECT_FALSE(a.RuleDead(0));
  EXPECT_EQ(a.Connectivity(0).num_components, 0);
}

}  // namespace
}  // namespace pw
