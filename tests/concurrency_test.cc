// Concurrency suite: the shared interner, the parallel semi-naive
// fixpoint, and versioned snapshot reads, each checked against its
// sequential twin.
//
// Three layers, mirroring the threading model (README "Threading model"):
//
//  1. Primitives — StableStore publication, ThreadPool task coverage, and
//     concurrent Index() calls on a frozen CTable.
//
//  2. The shared ConditionInterner — many threads interning overlapping
//     conjunction pools must agree on every id (hash-consing is a pure
//     function of the input, so agreement is exact, not just semantic),
//     and And-folds over shuffled orders must land on the same canonical
//     id.
//
//  3. Whole-engine differentials — the parallel fixpoint
//     (DatalogCTableOptions::num_threads) must emit *identical* tables to
//     the sequential schedule (same rows, same order, same conditions);
//     a VersionedCDatabase driven by a writer thread while readers take
//     snapshots and run conditioned queries must hand every reader a
//     state identical to the sequential recompute of the version it read.
//
// The randomized families reproduce like the differential suite: every
// case logs its seed, and setting PW_DIFF_SEED reruns exactly that case.
//
// These tests are labeled `stress` in ctest (tests/CMakeLists.txt); the
// TSan CI lane additionally loops them with --repeat until-fail to shake
// out schedule-dependent interleavings.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "condition/dd_backend.h"
#include "condition/interner.h"
#include "decision/certainty.h"
#include "decision/possibility.h"
#include "ilalgebra/datalog_ctable.h"
#include "datalog/ivm.h"
#include "tables/ctable.h"
#include "tables/snapshot.h"
#include "tables/updates.h"
#include "util/stable_store.h"
#include "util/thread_pool.h"

namespace pw {
namespace {

// --- Seed plumbing (PW_DIFF_SEED reruns one case) ---------------------------

bool SingleSeed(uint32_t* seed) {
  const char* env = std::getenv("PW_DIFF_SEED");
  if (env == nullptr) return false;
  *seed = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  return true;
}

std::vector<uint32_t> Seeds(uint32_t base, int count) {
  uint32_t single;
  if (SingleSeed(&single)) return {single};
  std::vector<uint32_t> seeds;
  for (int i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

// --- Primitives -------------------------------------------------------------

TEST(StableStoreTest, AppendAndReadAcrossBlockBoundaries) {
  StableStore<size_t> store;
  // Far enough to cross several geometric block boundaries (1024, 2048, ...).
  constexpr size_t kCount = 10000;
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(store.Append(i), i);
  }
  EXPECT_EQ(store.size(), kCount);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(store[i], i);
  }
}

TEST(StableStoreTest, ReferencesStayValidAcrossAppends) {
  StableStore<size_t> store;
  store.Append(42);
  const size_t* first = &store[0];
  for (size_t i = 1; i < 5000; ++i) store.Append(i);
  EXPECT_EQ(&store[0], first);  // no reallocation, ever
  EXPECT_EQ(*first, 42u);
}

TEST(StableStoreStressTest, ConcurrentReadersDuringAppends) {
  StableStore<size_t> store;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&store, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        size_t n = store.size();
        for (size_t i = 0; i < n; ++i) {
          // Every published element must read back as written.
          ASSERT_EQ(store[i], i);
        }
      }
    });
  }
  for (size_t i = 0; i < 20000; ++i) store.Append(i);
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
}

TEST(ThreadPoolStressTest, ParallelForRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  // Repeated jobs through one pool: no task lost, none duplicated, worker
  // ids in range.
  for (int round = 0; round < 50; ++round) {
    constexpr size_t kTasks = 197;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(kTasks, [&](size_t task, size_t worker) {
      ASSERT_LT(worker, 4u);
      hits[task].fetch_add(1);
    });
    for (size_t i = 0; i < kTasks; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "task " << i << " round " << round;
    }
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(10, [&](size_t, size_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(CTableStressTest, ConcurrentIndexCallsOnFrozenTable) {
  ConditionInterner interner;
  CTable t(2);
  for (int i = 0; i < 200; ++i) {
    t.AddRow(Tuple{C(i % 17), C(i)});
  }
  t.PrepareForSharing(interner);
  ASSERT_TRUE(t.frozen());

  std::vector<std::thread> threads;
  for (int r = 0; r < 8; ++r) {
    threads.emplace_back([&t] {
      for (int iter = 0; iter < 50; ++iter) {
        // Both column sets, interleaved: the cache builds each lazily under
        // its mutex; probes on the returned reference are lock-free.
        const TupleIndex& by_first = t.Index({0});
        std::vector<size_t> hits =
            by_first.Candidates(Tuple{C(3)}, 0, t.num_rows());
        size_t expect = 0;
        for (size_t i = 0; i < t.num_rows(); ++i) {
          if (t.row(i).tuple[0] == C(3)) ++expect;
        }
        ASSERT_EQ(hits.size(), expect);
        const TupleIndex& by_second = t.Index({1});
        ASSERT_EQ(by_second.Candidates(Tuple{C(7)}, 0, t.num_rows()).size(),
                  1u);
      }
    });
  }
  for (std::thread& th : threads) th.join();
}

// --- Shared interner --------------------------------------------------------

Conjunction RandomConjunction(std::mt19937& rng) {
  std::uniform_int_distribution<int> natoms(1, 3);
  std::uniform_int_distribution<int> var(0, 5);
  std::uniform_int_distribution<int> constant(0, 4);
  std::uniform_int_distribution<int> kind(0, 3);
  Conjunction c;
  int n = natoms(rng);
  for (int i = 0; i < n; ++i) {
    switch (kind(rng)) {
      case 0:
        c.Add(Eq(V(var(rng)), C(constant(rng))));
        break;
      case 1:
        c.Add(Neq(V(var(rng)), C(constant(rng))));
        break;
      case 2:
        c.Add(Eq(V(var(rng)), V(var(rng))));
        break;
      default:
        c.Add(Neq(V(var(rng)), V(var(rng))));
        break;
    }
  }
  return c;
}

TEST(SharedInternerStressTest, ThreadsAgreeOnEveryId) {
  for (uint32_t seed : Seeds(7100, 3)) {
    SCOPED_TRACE("PW_DIFF_SEED=" + std::to_string(seed));
    std::mt19937 rng(seed);
    std::vector<Conjunction> pool;
    for (int i = 0; i < 200; ++i) pool.push_back(RandomConjunction(rng));

    ConditionInterner interner;
    interner.EnableSharing();
    constexpr int kThreads = 8;
    std::vector<std::vector<ConjId>> ids(kThreads,
                                         std::vector<ConjId>(pool.size()));
    std::vector<ConjId> folds(kThreads);
    std::vector<std::thread> threads;
    for (int th = 0; th < kThreads; ++th) {
      threads.emplace_back([&, th] {
        // Each thread interns the whole pool in its own order, twice (the
        // second pass must be all cache hits), and And-folds a shuffled
        // order (the canonical result is order-independent).
        std::mt19937 order_rng(seed + 1000 + th);
        std::vector<size_t> order(pool.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::shuffle(order.begin(), order.end(), order_rng);
        for (int pass = 0; pass < 2; ++pass) {
          for (size_t i : order) {
            ids[th][i] = interner.Intern(pool[i]);
          }
        }
        ConjId fold = ConditionInterner::kTrueConj;
        for (size_t i = 0; i < 32; ++i) {
          fold = interner.And(fold, ids[th][order[i]]);
        }
        folds[th] = fold;
      });
    }
    for (std::thread& t : threads) t.join();

    for (int th = 1; th < kThreads; ++th) {
      ASSERT_EQ(ids[th], ids[0]);
    }
    // Sequential re-intern on the same instance: still the same ids.
    for (size_t i = 0; i < pool.size(); ++i) {
      ASSERT_EQ(interner.Intern(pool[i]), ids[0][i]);
    }
    // The folds combined different prefixes per thread, but every thread
    // that folded the same *set* must agree; verify against a sequential
    // And over thread 0's shuffled order recomputed here.
    for (int th = 0; th < kThreads; ++th) {
      std::mt19937 order_rng(seed + 1000 + th);
      std::vector<size_t> order(pool.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::shuffle(order.begin(), order.end(), order_rng);
      ConjId fold = ConditionInterner::kTrueConj;
      for (size_t i = 0; i < 32; ++i) {
        fold = interner.And(fold, ids[0][order[i]]);
      }
      ASSERT_EQ(folds[th], fold);
    }
  }
}

TEST(SharedInternerStressTest, ConcurrentImpliesAndSatisfiable) {
  std::mt19937 rng(7200);
  ConditionInterner interner;
  interner.EnableSharing();
  std::vector<ConjId> ids;
  for (int i = 0; i < 60; ++i) {
    ids.push_back(interner.Intern(RandomConjunction(rng)));
  }
  // Sequential answers first (they cache; concurrent reads must agree).
  std::vector<std::vector<bool>> expect(ids.size(),
                                        std::vector<bool>(ids.size()));
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = 0; j < ids.size(); ++j) {
      expect[i][j] = interner.Implies(ids[i], ids[j]);
    }
  }
  std::vector<std::thread> threads;
  for (int th = 0; th < 8; ++th) {
    threads.emplace_back([&, th] {
      std::mt19937 trng(7300 + th);
      std::uniform_int_distribution<size_t> pick(0, ids.size() - 1);
      for (int iter = 0; iter < 2000; ++iter) {
        size_t i = pick(trng);
        size_t j = pick(trng);
        ASSERT_EQ(interner.Implies(ids[i], ids[j]), expect[i][j]);
        ASSERT_EQ(interner.Satisfiable(interner.And(ids[i], ids[j])),
                  interner.And(ids[i], ids[j]) !=
                      ConditionInterner::kFalseConj);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

// --- Parallel fixpoint vs the sequential schedule ---------------------------

DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, 1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(100), V(102)}};
  step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
  p.AddRule(step);
  return p;
}

/// Chain 0 -> 1 -> ... -> n with every `gap`-th edge through a null
/// (shared: the same null each time), like the bench workload — large
/// enough deltas to actually engage the parallel rounds.
CDatabase Chain(int n, int gap, bool shared) {
  CTable t(2);
  for (int i = 0; i < n; ++i) {
    if (gap > 0 && i % gap == gap - 1) {
      VarId null = shared ? 0 : i;
      t.AddRow(Tuple{C(i), V(null)});
      t.AddRow(Tuple{V(null), C(i + 1)});
    } else {
      t.AddRow(Tuple{C(i), C(i + 1)});
    }
  }
  return CDatabase{t};
}

void ExpectIdenticalDatabases(const CDatabase& a, const CDatabase& b) {
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (size_t i = 0; i < a.num_tables(); ++i) {
    // Row-for-row, condition-for-condition: the parallel schedule promises
    // byte-identity, not just set equality.
    ASSERT_EQ(a.table(i), b.table(i)) << "table " << i;
  }
}

TEST(ParallelFixpointTest, IdenticalToSequentialOnChains) {
  struct Case {
    int n;
    int gap;
    bool shared;
    bool use_index;
  };
  const Case cases[] = {
      {64, 0, false, true},  {64, 0, false, false}, {24, 3, true, true},
      {24, 3, true, false},  {12, 4, false, true},
  };
  DatalogProgram tc = TransitiveClosure();
  for (const Case& c : cases) {
    CDatabase db = Chain(c.n, c.gap, c.shared);

    DatalogCTableOptions seq;
    seq.use_index = c.use_index;
    ConditionedFixpointStats seq_stats;
    CDatabase seq_out = DatalogOnCTables(tc, db, &seq_stats, seq);

    ConditionInterner shared_interner;
    shared_interner.EnableSharing();
    DatalogCTableOptions par;
    par.use_index = c.use_index;
    par.interner = &shared_interner;
    par.num_threads = 4;
    ConditionedFixpointStats par_stats;
    CDatabase par_out = DatalogOnCTables(tc, db, &par_stats, par);

    ExpectIdenticalDatabases(par_out, seq_out);
    // The insert sequence is identical, so every row-level counter matches;
    // only join-side counters (pruned branches, index probes) may differ.
    EXPECT_EQ(par_stats.derived_rows, seq_stats.derived_rows);
    EXPECT_EQ(par_stats.duplicate_rows, seq_stats.duplicate_rows);
    EXPECT_EQ(par_stats.subsumed_rows, seq_stats.subsumed_rows);
    EXPECT_EQ(par_stats.unsatisfiable_rows, seq_stats.unsatisfiable_rows);
    EXPECT_EQ(par_stats.rounds, seq_stats.rounds);
  }
}

TEST(ParallelFixpointTest, FallsBackWhenInternerNotShared) {
  // num_threads > 1 without EnableSharing: silently sequential, same
  // result (the option documents this fallback).
  DatalogProgram tc = TransitiveClosure();
  CDatabase db = Chain(48, 0, false);
  ConditionInterner plain;
  DatalogCTableOptions options;
  options.interner = &plain;
  options.num_threads = 4;
  CDatabase out = DatalogOnCTables(tc, db, nullptr, options);
  CDatabase seq_out = DatalogOnCTables(tc, db, nullptr, {});
  ExpectIdenticalDatabases(out, seq_out);
}

TEST(ParallelFixpointTest, MaterializedViewMaintainsIdenticallyInParallel) {
  // The IVM resume paths (Run() re-entry and RunCone after deletes) under
  // num_threads=4 against the sequential view, over an update stream.
  DatalogProgram tc = TransitiveClosure();
  CDatabase db = Chain(32, 0, false);

  MaterializedView seq_view(tc, db);

  ConditionInterner shared_interner;
  shared_interner.EnableSharing();
  MaterializedViewOptions par_options;
  par_options.eval.interner = &shared_interner;
  par_options.eval.num_threads = 4;
  MaterializedView par_view(tc, db, par_options);

  for (int u = 0; u < 32; ++u) {
    if (u % 8 == 7) {
      Fact edge{u, u + 1};
      seq_view.Delete(0, edge);
      par_view.Delete(0, edge);
    } else {
      Fact edge{32 + u, 32 + u + 1};
      seq_view.Insert(0, edge);
      par_view.Insert(0, edge);
    }
    CDatabase seq_mat = seq_view.Materialized();
    CDatabase par_mat = par_view.Materialized();
    ExpectIdenticalDatabases(par_mat, seq_mat);
  }
}

// --- Shared decision-diagram backend ----------------------------------------

TEST(SharedDDBackendStressTest, ThreadsAgreeOnEveryIdAndVerdict) {
  // Many threads drive one DDBackend over a shared interner through the
  // same (And/Or/Implies/Satisfiable) workload in their own orders. Diagram
  // ids are hash-consed — a pure function of the operands — so every thread
  // must land on the SAME CondId for each combination and the same verdict
  // for each query, while the unique-table and op-cache insertions race.
  for (uint32_t seed : Seeds(7500, 3)) {
    SCOPED_TRACE("PW_DIFF_SEED=" + std::to_string(seed));
    std::mt19937 rng(seed);
    ConditionInterner interner;
    interner.EnableSharing();
    DDBackend dd(interner);
    std::vector<CondId> leaves;
    for (int i = 0; i < 40; ++i) {
      leaves.push_back(dd.FromConj(interner.Intern(RandomConjunction(rng))));
    }

    constexpr int kThreads = 8;
    const size_t n = leaves.size();
    struct PairResult {
      CondId and_id;
      CondId or_id;
      bool implies;
      bool sat_and;
    };
    std::vector<std::vector<PairResult>> results(
        kThreads, std::vector<PairResult>(n * n));
    std::vector<std::thread> threads;
    for (int th = 0; th < kThreads; ++th) {
      threads.emplace_back([&, th] {
        std::mt19937 order_rng(seed + 500 + th);
        std::vector<size_t> order(n * n);
        for (size_t k = 0; k < order.size(); ++k) order[k] = k;
        std::shuffle(order.begin(), order.end(), order_rng);
        for (size_t k : order) {
          size_t i = k / n;
          size_t j = k % n;
          PairResult r;
          r.and_id = dd.And(leaves[i], leaves[j]);
          r.or_id = dd.Or(leaves[i], leaves[j]);
          r.implies = dd.Implies(leaves[i], leaves[j]);
          r.sat_and = dd.Satisfiable(r.and_id);
          results[th][k] = r;
        }
      });
    }
    for (std::thread& t : threads) t.join();

    for (int th = 1; th < kThreads; ++th) {
      for (size_t k = 0; k < n * n; ++k) {
        ASSERT_EQ(results[th][k].and_id, results[0][k].and_id)
            << "thread " << th << " pair " << k;
        ASSERT_EQ(results[th][k].or_id, results[0][k].or_id)
            << "thread " << th << " pair " << k;
        ASSERT_EQ(results[th][k].implies, results[0][k].implies)
            << "thread " << th << " pair " << k;
        ASSERT_EQ(results[th][k].sat_and, results[0][k].sat_and)
            << "thread " << th << " pair " << k;
      }
    }
  }
}

TEST(ParallelFixpointTest, DDBackendIdenticalToSequentialOnChains) {
  // The parallel fixpoint on the decision-diagram backend: workers race
  // into the diagram unique-table and op caches while the round schedule
  // Or-merges each tuple's derivations, yet the deterministic insert replay
  // must make the parallel run byte-identical to the sequential one — same
  // rows, same order, same exported conditions.
  DatalogProgram tc = TransitiveClosure();
  // Ground chain, then a null-gapped one at a size whose condition
  // diversity stays feasible (distinct nulls grow the diagrams — and any
  // other representation — exponentially with chain length).
  for (auto [n, gap] : {std::pair{24, 0}, std::pair{9, 3}}) {
    CDatabase db = Chain(n, gap, /*shared=*/false);

    ConditionInterner seq_interner;
    DatalogCTableOptions seq;
    seq.interner = &seq_interner;
    seq.condition_backend = ConditionBackendKind::kDecisionDiagrams;
    CDatabase seq_out = DatalogOnCTables(tc, db, nullptr, seq);

    ConditionInterner shared_interner;
    shared_interner.EnableSharing();
    DatalogCTableOptions par = seq;
    par.interner = &shared_interner;
    par.num_threads = 4;
    CDatabase par_out = DatalogOnCTables(tc, db, nullptr, par);

    ExpectIdenticalDatabases(par_out, seq_out);
  }
}

// --- Versioned snapshots under a live writer --------------------------------

TEST(VersionedCDatabaseTest, SnapshotsAreImmutableUnderMutation) {
  ConditionInterner interner;
  CTable t(2);
  t.AddRow(Tuple{C(1), C(2)});
  VersionedCDatabase v(CDatabase{t}, interner);
  EXPECT_TRUE(interner.shared());
  EXPECT_EQ(v.version(), 0u);

  VersionedCDatabase::Snapshot before = v.Read();
  EXPECT_EQ(before.version, 0u);
  EXPECT_EQ(before.db.table(0).num_rows(), 1u);

  uint64_t version = v.Mutate([](CDatabase& db) {
    InsertFactInPlace(db.mutable_table(0), Fact{3, 4});
  });
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(v.version(), 1u);

  // The old snapshot still sees the old state; a fresh one sees the new.
  EXPECT_EQ(before.db.table(0).num_rows(), 1u);
  VersionedCDatabase::Snapshot after = v.Read();
  EXPECT_EQ(after.version, 1u);
  EXPECT_EQ(after.db.table(0).num_rows(), 2u);
  // Published tables are frozen for sharing.
  EXPECT_TRUE(after.db.table(0).frozen());
}

TEST(CDatabaseTest, MutableTableClonesOnlyWhenShared) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  CDatabase db{t};
  CDatabase copy = db;  // shares the table
  InsertFactInPlace(db.mutable_table(0), Fact{2});
  EXPECT_EQ(db.table(0).num_rows(), 2u);
  EXPECT_EQ(copy.table(0).num_rows(), 1u);  // untouched by the COW write
}

TEST(SnapshotStressTest, ReadersSeeExactSequentialVersions) {
  for (uint32_t seed : Seeds(7400, 2)) {
    SCOPED_TRACE("PW_DIFF_SEED=" + std::to_string(seed));
    std::mt19937 rng(seed);
    constexpr int kUpdates = 60;
    constexpr int kReaders = 4;

    // Pre-draw the whole writer script so the reference states are
    // reproducible: version v = initial db + the first v updates.
    std::uniform_int_distribution<int> value(0, 30);
    std::vector<std::pair<bool, Fact>> script;  // (is_insert, fact)
    for (int u = 0; u < kUpdates; ++u) {
      bool insert = u % 5 != 4;
      script.emplace_back(insert, Fact{value(rng), value(rng)});
    }

    ConditionInterner interner;
    CTable t(2);
    t.AddRow(Tuple{C(0), C(1)});
    t.AddRow(Tuple{C(1), V(0)});
    VersionedCDatabase versioned(CDatabase{t}, interner);
    // The readers run decision procedures, which resolve conditions through
    // ConditionInterner::Global(); route that to the shared instance so the
    // frozen rows' warmed id caches are read-only stamp hits (a per-thread
    // interner would miss the stamp and race on rewriting them).
    ConditionInterner::SetProcessShared(&interner);

    std::atomic<bool> done{false};
    std::vector<std::vector<VersionedCDatabase::Snapshot>> observed(kReaders);
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        // do-while: at least one snapshot per reader even if the writer
        // outruns thread startup and finishes first.
        do {
          VersionedCDatabase::Snapshot snap = versioned.Read();
          // Exercise a conditioned read on the snapshot while the writer
          // keeps publishing: certainty/possibility of a fixed pattern.
          std::vector<LocatedFact> pattern = {{0, Fact{1, 2}}};
          bool poss = Possibility(View::Identity(), snap.db, pattern);
          bool cert = Certainty(View::Identity(), snap.db, pattern);
          ASSERT_TRUE(poss || !cert);  // certain implies possible
          observed[r].push_back(std::move(snap));
        } while (!done.load(std::memory_order_acquire));
      });
    }

    for (const auto& [insert, fact] : script) {
      versioned.Mutate([&](CDatabase& db) {
        if (insert) {
          InsertFactInPlace(db.mutable_table(0), fact);
        } else {
          DeleteFactInPlace(db.mutable_table(0), fact);
        }
      });
      // Give the readers a chance to land between versions; without this
      // the whole script can publish before the first reader's first Read.
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
    for (std::thread& th : readers) th.join();
    ConditionInterner::SetProcessShared(nullptr);

    // Rebuild every version sequentially and require the observed
    // snapshots to be identical to their version's reference state.
    std::vector<CDatabase> reference;
    {
      CTable base(2);
      base.AddRow(Tuple{C(0), C(1)});
      base.AddRow(Tuple{C(1), V(0)});
      CDatabase state{base};
      reference.push_back(state);
      for (const auto& [insert, fact] : script) {
        if (insert) {
          InsertFactInPlace(state.mutable_table(0), fact);
        } else {
          DeleteFactInPlace(state.mutable_table(0), fact);
        }
        reference.push_back(state);
      }
    }
    size_t checked = 0;
    for (const auto& per_reader : observed) {
      for (const VersionedCDatabase::Snapshot& snap : per_reader) {
        ASSERT_LT(snap.version, reference.size());
        ExpectIdenticalDatabases(snap.db, reference[snap.version]);
        ++checked;
      }
    }
    EXPECT_GT(checked, 0u);
  }
}

TEST(SnapshotStressTest, ConcurrentDatalogReadersOverSharedInterner) {
  // The full service shape: a writer extending a chain while reader
  // threads run whole conditioned fixpoints (each its own single-owner
  // ConditionedFixpoint, all interning through the one shared interner)
  // against their snapshots. Each result is checked against a sequential
  // recompute of that snapshot's version afterwards.
  DatalogProgram tc = TransitiveClosure();
  constexpr int kInitial = 12;
  constexpr int kUpdates = 24;
  constexpr int kReaders = 4;

  ConditionInterner interner;
  CTable edges(2);
  for (int i = 0; i < kInitial; ++i) edges.AddRow(Tuple{C(i), C(i + 1)});
  VersionedCDatabase versioned(CDatabase{edges}, interner);

  std::atomic<bool> done{false};
  std::vector<std::vector<std::pair<uint64_t, CDatabase>>> results(kReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      DatalogCTableOptions options;
      options.interner = &interner;  // the shared one — the point of this test
      do {
        VersionedCDatabase::Snapshot snap = versioned.Read();
        CDatabase out = DatalogOnCTables(tc, snap.db, nullptr, options);
        results[r].emplace_back(snap.version, std::move(out));
      } while (!done.load(std::memory_order_acquire));
    });
  }
  for (int u = 0; u < kUpdates; ++u) {
    versioned.Mutate([&](CDatabase& db) {
      InsertFactInPlace(db.mutable_table(0),
                        Fact{kInitial + u, kInitial + u + 1});
    });
  }
  done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  // Sequential reference per version, evaluated with a private interner:
  // condition materialization is canonical, so tables compare equal across
  // interner instances.
  std::vector<CDatabase> reference;
  for (int v = 0; v <= kUpdates; ++v) {
    CTable base(2);
    for (int i = 0; i < kInitial + v; ++i) base.AddRow(Tuple{C(i), C(i + 1)});
    reference.push_back(DatalogOnCTables(tc, CDatabase{base}, nullptr, {}));
  }
  size_t checked = 0;
  for (const auto& per_reader : results) {
    for (const auto& [version, out] : per_reader) {
      ASSERT_LT(version, reference.size());
      ExpectIdenticalDatabases(out, reference[version]);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(SnapshotStressTest, ProcessSharedGlobalServesDecisionProcedures) {
  // SetProcessShared routes ConditionInterner::Global() — what the decision
  // procedures use internally — to the shared instance; concurrent
  // possibility/certainty calls must then agree with the sequential answers.
  ConditionInterner interner;
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  t.AddRow(Tuple{V(1), C(2)});
  t.SetGlobal(Conjunction{Neq(V(0), C(9))});
  VersionedCDatabase versioned(CDatabase{t}, interner);
  ConditionInterner::SetProcessShared(&interner);

  VersionedCDatabase::Snapshot snap = versioned.Read();
  std::vector<std::vector<LocatedFact>> patterns;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      patterns.push_back({{0, Fact{a, b}}});
    }
  }
  std::vector<char> expect_poss(patterns.size());
  std::vector<char> expect_cert(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    expect_poss[i] = Possibility(View::Identity(), snap.db, patterns[i]);
    expect_cert[i] = Certainty(View::Identity(), snap.db, patterns[i]);
  }
  std::vector<std::thread> threads;
  for (int th = 0; th < 8; ++th) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 20; ++iter) {
        for (size_t i = 0; i < patterns.size(); ++i) {
          ASSERT_EQ(Possibility(View::Identity(), snap.db, patterns[i]),
                    static_cast<bool>(expect_poss[i]));
          ASSERT_EQ(Certainty(View::Identity(), snap.db, patterns[i]),
                    static_cast<bool>(expect_cert[i]));
        }
      }
    });
  }
  for (std::thread& t2 : threads) t2.join();
  ConditionInterner::SetProcessShared(nullptr);
}

}  // namespace
}  // namespace pw
