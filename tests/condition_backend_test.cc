// The ConditionBackend seam itself: disjunction-set normalization in the
// conjunctive backend, node canonicity in the decision-diagram backend, and
// the bounded-memo contracts — eviction (interner memo shards, DD op-cache
// shards) may cost recomputation but can never change a verdict or an id,
// and implication memos keyed on the ordered pair stay consistent across
// RebaseInto generations.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "condition/backend.h"
#include "condition/conjunction.h"
#include "condition/dd_backend.h"
#include "condition/interner.h"
#include "core/tuple.h"

namespace pw {
namespace {

Conjunction RandomConjunction(std::mt19937& rng) {
  std::uniform_int_distribution<int> natoms(1, 3);
  std::uniform_int_distribution<int> var(0, 3);
  std::uniform_int_distribution<int> constant(0, 3);
  std::uniform_int_distribution<int> kind(0, 3);
  Conjunction c;
  int n = natoms(rng);
  for (int i = 0; i < n; ++i) {
    switch (kind(rng)) {
      case 0:
        c.Add(Eq(V(var(rng)), C(constant(rng))));
        break;
      case 1:
        c.Add(Neq(V(var(rng)), C(constant(rng))));
        break;
      case 2:
        c.Add(Eq(V(var(rng)), V(var(rng))));
        break;
      default:
        c.Add(Neq(V(var(rng)), V(var(rng))));
        break;
    }
  }
  return c;
}

TEST(ConjunctiveBackendTest, NormalizesDisjunctionSets) {
  ConditionInterner interner;
  std::unique_ptr<ConditionBackend> backend =
      MakeConditionBackend(ConditionBackendKind::kConjunctions, interner);

  ConjId weak = interner.Intern(Conjunction{Eq(V(0), C(1))});
  ConjId strong =
      interner.Intern(Conjunction{Eq(V(0), C(1)), Eq(V(1), C(2))});
  ConjId other = interner.Intern(Conjunction{Neq(V(0), C(1))});

  // True/false members collapse and drop.
  EXPECT_EQ(backend->Or(weak, ConditionBackend::kTrueCond),
            ConditionBackend::kTrueCond);
  EXPECT_EQ(backend->Or(weak, ConditionBackend::kFalseCond), CondId{weak});
  // A member implying another member is absorbed: the union IS the weak one.
  EXPECT_EQ(backend->Or(weak, strong), CondId{weak});
  // Proper two-member antichains hash-cons order-independently.
  CondId ab = backend->Or(weak, other);
  CondId ba = backend->Or(other, weak);
  EXPECT_EQ(ab, ba);
  EXPECT_NE(ab, CondId{weak});
  // x0 = 1 together with x0 != 1 covers everything — a tautology the
  // backend must detect without the caller expanding anything.
  EXPECT_TRUE(backend->TautologyUnder(ConditionInterner::kTrueConj, ab));
  // And distributes over the set; conjoining the weak member back restricts
  // the union to it.
  EXPECT_EQ(backend->And(ab, weak), CondId{weak});
}

TEST(DDBackendTest, NodesAreCanonicalAndTheoryAware) {
  ConditionInterner interner;
  DDBackend dd(interner);

  ConjId eq = interner.Intern(Conjunction{Eq(V(0), C(1))});
  ConjId neq = interner.Intern(Conjunction{Neq(V(0), C(1))});
  ConjId both = interner.Intern(Conjunction{Eq(V(0), C(1)), Eq(V(1), C(2))});

  // Hash-consing: one id per function, however it is reached.
  CondId a = dd.FromConj(eq);
  EXPECT_EQ(a, dd.FromConj(eq));
  CondId b = dd.FromConj(neq);
  EXPECT_EQ(dd.And(a, b), dd.And(b, a));
  EXPECT_EQ(dd.Or(a, b), dd.Or(b, a));
  EXPECT_EQ(dd.Not(dd.Not(a)), a);

  // Propositionally `x0 = 1` and `x0 != 1` are distinct decision variables;
  // the theory layer must still see that together they are exhaustive and
  // exclusive.
  EXPECT_TRUE(dd.TautologyUnder(ConditionInterner::kTrueConj, dd.Or(a, b)));
  EXPECT_FALSE(dd.Satisfiable(dd.And(a, b)));
  EXPECT_FALSE(dd.Satisfiable(dd.And(a, dd.Not(a))));

  // Conjunction chains imply their sub-conjunctions, not vice versa.
  CondId ab = dd.FromConj(both);
  EXPECT_TRUE(dd.Implies(ab, a));
  EXPECT_FALSE(dd.Implies(a, ab));

  // The DNF expansion of a pure conjunction is that conjunction.
  std::vector<ConjId> disjuncts;
  dd.AppendDisjuncts(ab, &disjuncts);
  EXPECT_EQ(disjuncts, std::vector<ConjId>{both});
}

TEST(ConditionBackendTest, InternerMemoEvictionNeverChangesVerdicts) {
  // Same Intern sequence on both sides, so the pools get identical ids; the
  // unlimited interner keeps every And/Implies memo entry, the bounded one
  // is forced to drop shards constantly. Every verdict and every And result
  // id must still match — eviction may only cost recomputation.
  std::mt19937 rng(11742);
  std::vector<Conjunction> pool;
  for (int i = 0; i < 30; ++i) pool.push_back(RandomConjunction(rng));

  ConditionInterner unlimited;
  ConditionInterner bounded;
  bounded.SetMemoCapacity(2);
  std::vector<ConjId> ids_a;
  std::vector<ConjId> ids_b;
  for (const Conjunction& c : pool) {
    ids_a.push_back(unlimited.Intern(c));
    ids_b.push_back(bounded.Intern(c));
  }
  ASSERT_EQ(ids_a, ids_b);

  for (int pass = 0; pass < 2; ++pass) {  // second pass re-misses evictees
    for (size_t i = 0; i < ids_a.size(); ++i) {
      for (size_t j = 0; j < ids_a.size(); ++j) {
        ASSERT_EQ(unlimited.And(ids_a[i], ids_a[j]),
                  bounded.And(ids_b[i], ids_b[j]))
            << "And diverged under memo eviction on pair (" << i << ", " << j
            << ")";
        ASSERT_EQ(unlimited.Implies(ids_a[i], ids_a[j]),
                  bounded.Implies(ids_b[i], ids_b[j]))
            << "Implies diverged under memo eviction on pair (" << i << ", "
            << j << ")";
      }
    }
  }
  EXPECT_GT(bounded.memo_evictions(), 0u);
  EXPECT_EQ(unlimited.memo_evictions(), 0u);
}

TEST(ConditionBackendTest, DDOpCacheEvictionNeverChangesVerdicts) {
  // Two diagram backends over one interner, driven through an identical
  // operation sequence. Op-cache hits only short-circuit recomputation and
  // recomputation re-finds every node in the (never-evicted) unique table,
  // so even the returned ids must be identical under constant eviction.
  std::mt19937 rng(22817);
  ConditionInterner interner;
  DDBackend unlimited(interner);
  DDBackend bounded(interner);
  bounded.SetOpCacheCapacity(2);

  std::vector<CondId> ids_a;
  std::vector<CondId> ids_b;
  for (int i = 0; i < 12; ++i) {
    ConjId leaf = interner.Intern(RandomConjunction(rng));
    ids_a.push_back(unlimited.FromConj(leaf));
    ids_b.push_back(bounded.FromConj(leaf));
  }
  std::uniform_int_distribution<int> coin(0, 1);
  for (int step = 0; step < 40; ++step) {
    std::uniform_int_distribution<size_t> pick(0, ids_a.size() - 1);
    size_t i = pick(rng);
    size_t j = pick(rng);
    bool is_and = coin(rng) == 0;
    CondId a = is_and ? unlimited.And(ids_a[i], ids_a[j])
                      : unlimited.Or(ids_a[i], ids_a[j]);
    CondId b = is_and ? bounded.And(ids_b[i], ids_b[j])
                      : bounded.Or(ids_b[i], ids_b[j]);
    ASSERT_EQ(a, b) << "diagram ids diverged under op-cache eviction at step "
                    << step;
    ids_a.push_back(a);
    ids_b.push_back(b);
  }
  for (size_t i = 0; i < ids_a.size(); ++i) {
    ASSERT_EQ(unlimited.Satisfiable(ids_a[i]), bounded.Satisfiable(ids_b[i]));
    for (size_t j = 0; j < ids_a.size(); ++j) {
      ASSERT_EQ(unlimited.Implies(ids_a[i], ids_a[j]),
                bounded.Implies(ids_b[i], ids_b[j]))
          << "Implies diverged under op-cache eviction on pair (" << i << ", "
          << j << ")";
    }
  }
  EXPECT_GT(bounded.op_cache_evictions(), 0u);
  EXPECT_EQ(unlimited.op_cache_evictions(), 0u);
}

TEST(ConditionBackendTest, ImpliesMemoStableAcrossRebaseGenerations) {
  // The scratch-child pattern: verdicts computed against a per-request
  // child interner must be reproduced by the long-lived parent after
  // RebaseInto translates the ids — across multiple generations, and with
  // the parent's ordered-pair Implies memo serving repeats. Keying the memo
  // on the *ordered* (lhs, rhs) pair is load-bearing: implication is
  // asymmetric, so a canonical (min, max) key would conflate a true
  // direction with its false converse.
  std::mt19937 rng(33911);
  ConditionInterner parent;
  for (int gen = 0; gen < 3; ++gen) {
    SCOPED_TRACE("generation " + std::to_string(gen));
    ConditionInterner child;
    std::vector<ConjId> ids;
    for (int i = 0; i < 20; ++i) {
      ids.push_back(child.Intern(RandomConjunction(rng)));
    }
    std::vector<std::vector<bool>> expected(ids.size(),
                                            std::vector<bool>(ids.size()));
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = 0; j < ids.size(); ++j) {
        expected[i][j] = child.Implies(ids[i], ids[j]);
      }
    }

    std::vector<ConjId> map = child.RebaseInto(parent);
    bool saw_asymmetric_pair = false;
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = 0; j < ids.size(); ++j) {
        ASSERT_EQ(parent.Implies(map[ids[i]], map[ids[j]]), expected[i][j])
            << "rebased verdict diverged on pair (" << i << ", " << j << ")";
        if (expected[i][j] != expected[j][i]) saw_asymmetric_pair = true;
      }
    }
    EXPECT_TRUE(saw_asymmetric_pair)
        << "pool too degenerate to exercise ordered-pair keying";

    // Repeat the whole matrix: now the parent answers from its memo (the
    // subset fast path plus the ordered-pair cache), and the verdicts —
    // including both directions of every asymmetric pair — must not move.
    uint64_t hits_before = parent.stats().implies_hits;
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = 0; j < ids.size(); ++j) {
        ASSERT_EQ(parent.Implies(map[ids[i]], map[ids[j]]), expected[i][j])
            << "memoized verdict diverged on pair (" << i << ", " << j << ")";
      }
    }
    EXPECT_GT(parent.stats().implies_hits, hits_before);
  }
}

}  // namespace
}  // namespace pw
