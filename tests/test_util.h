// Shared fixtures and helpers for the pworlds test suite.
//
// Collects the setup that used to be copy-pasted across the test files:
// compact table construction, the standard small shapes for randomized
// property tests (small enough for exhaustive world enumeration), canonical
// world rendering up to renaming of fresh constants, and the paper's Fig. 3
// example table.

#ifndef PW_TESTS_TEST_UTIL_H_
#define PW_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/tuple.h"
#include "ra/eval.h"
#include "ra/expr.h"
#include "tables/ctable.h"
#include "tables/world_enum.h"
#include "workload/random_gen.h"

namespace pw {
namespace testutil {

/// Builds a table from unconditioned rows: MakeTable(2, {{C(1), V(0)}, ...}).
inline CTable MakeTable(int arity, const std::vector<Tuple>& rows) {
  CTable t(arity);
  for (const Tuple& row : rows) t.AddRow(row);
  return t;
}

/// Builds a table from conditioned rows.
inline CTable MakeTable(int arity, const std::vector<CRow>& rows) {
  CTable t(arity);
  for (const CRow& row : rows) t.AddRow(row.tuple, row.local());
  return t;
}

/// The standard shape of the randomized property tests: constants and
/// variables from pools small enough that exhaustive world enumeration stays
/// cheap. Tune condition-atom counts per test.
inline RandomCTableOptions SmallCTableOptions(int arity, int num_rows,
                                              int num_constants,
                                              int num_variables,
                                              int num_local_atoms = 0,
                                              int num_global_atoms = 0) {
  RandomCTableOptions options;
  options.arity = arity;
  options.num_rows = num_rows;
  options.num_constants = num_constants;
  options.num_variables = num_variables;
  options.num_local_atoms = num_local_atoms;
  options.num_global_atoms = num_global_atoms;
  return options;
}

/// A shape whose variable pool is so large that repeats are unlikely — the
/// generated tables are (almost always) Codd-tables.
inline RandomCTableOptions CoddishCTableOptions(int arity, int num_rows,
                                                int num_constants,
                                                int num_variables = 200) {
  return SmallCTableOptions(arity, num_rows, num_constants, num_variables);
}

/// The paper's Fig. 3 Codd-table T = {(x1,1,x2), (x3,2,3), (1,x4,x5),
/// (1,2,3), (1,2,x6)} with I0 = {112, 323, 145, 123} as its companion
/// instance; MEMB(T, I0) answers yes.
inline CTable PaperFig3Table() {
  return MakeTable(3, std::vector<Tuple>{{V(1), C(1), V(2)},
                                         {V(3), C(2), C(3)},
                                         {C(1), V(4), V(5)},
                                         {C(1), C(2), C(3)},
                                         {C(1), C(2), V(6)}});
}

inline Instance PaperFig3Instance() {
  return Instance({Relation(3, {{1, 1, 2}, {3, 2, 3}, {1, 4, 5}, {1, 2, 3}})});
}

/// A tiny two-row c-table with a local and a global condition — enough to
/// leave the Codd/e/i/g classes and exercise every condition code path.
inline CTable TinyConditionedTable() {
  CTable t = MakeTable(
      2, std::vector<CRow>{{{C(1), V(0)}, Conjunction{Neq(V(0), C(2))}},
                           {{V(1), V(0)}, Conjunction()}});
  t.SetGlobal(Conjunction{Neq(V(1), C(3))});
  return t;
}

/// Renders a world canonically up to renaming of constants outside `known`:
/// tries every permutation of placeholder names for the fresh constants and
/// keeps the lexicographically least rendering. (Worlds in these tests carry
/// at most a handful of fresh constants.)
inline std::string CanonicalWorldString(const Instance& world,
                                        const std::vector<ConstId>& known) {
  std::vector<ConstId> fresh;
  for (ConstId c : world.Constants()) {
    if (std::find(known.begin(), known.end(), c) == known.end()) {
      fresh.push_back(c);
    }
  }
  if (fresh.empty()) return world.ToString();
  std::vector<ConstId> placeholders;
  for (size_t i = 0; i < fresh.size(); ++i) {
    placeholders.push_back(900000 + static_cast<ConstId>(i));
  }
  std::sort(fresh.begin(), fresh.end());
  std::string best;
  do {
    std::vector<Relation> renamed;
    for (size_t p = 0; p < world.num_relations(); ++p) {
      Relation r(world.relation(p).arity());
      for (Fact f : world.relation(p)) {
        for (ConstId& c : f) {
          auto it = std::find(fresh.begin(), fresh.end(), c);
          if (it != fresh.end()) {
            c = placeholders[it - fresh.begin()];
          }
        }
        r.Insert(f);
      }
      renamed.push_back(std::move(r));
    }
    std::string s = Instance(std::move(renamed)).ToString();
    if (best.empty() || s < best) best = s;
  } while (std::next_permutation(fresh.begin(), fresh.end()));
  return best;
}

/// The sorted, deduplicated canonical renderings of rep(db) over a shared
/// constant context.
inline std::vector<std::string> CanonicalWorlds(
    const CDatabase& db, const std::vector<ConstId>& extra) {
  WorldEnumOptions options;
  options.extra_constants = extra;
  std::vector<std::string> out;
  ForEachWorld(db, options, [&](const Instance& world, const Valuation&) {
    out.push_back(CanonicalWorldString(world, extra));
    return true;
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// The canonical renderings of q(rep(db)) — the per-world oracle: evaluate
/// the query on each enumerated world of `db` with the plain complete-
/// information evaluator.
inline std::vector<std::string> CanonicalImageWorlds(
    const RaQuery& q, const CDatabase& db, const std::vector<ConstId>& extra) {
  WorldEnumOptions options;
  options.extra_constants = extra;
  std::vector<std::string> out;
  ForEachWorld(db, options, [&](const Instance& world, const Valuation&) {
    out.push_back(CanonicalWorldString(EvalQuery(q, world), extra));
    return true;
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace testutil
}  // namespace pw

#endif  // PW_TESTS_TEST_UTIL_H_
