// Exhaustive Fig. 2 coverage: for every one of the 49 (subset-side,
// superset-side) representation pairs, run the containment dispatcher on a
// small instance of exactly that shape and cross-validate against the
// enumeration oracle. This exercises every dispatch path of
// decision/containment.cc.

#include <gtest/gtest.h>

#include "decision/complexity_map.h"
#include "decision/containment.h"
#include "tables/world_enum.h"

namespace pw {
namespace {

/// A small arity-1 database of exactly the requested representation kind.
/// Variable ids are offset so lhs/rhs never collide.
CDatabase MakeDatabase(RepKind kind, VarId base) {
  CTable t(1);
  switch (kind) {
    case RepKind::kInstance:
      t.AddRow(Tuple{C(1)});
      t.AddRow(Tuple{C(2)});
      break;
    case RepKind::kCoddTable:
      t.AddRow(Tuple{V(base)});
      t.AddRow(Tuple{C(1)});
      break;
    case RepKind::kETable:
      t.AddRow(Tuple{V(base)});
      t.AddRow(Tuple{V(base)});  // repeated variable
      t.AddRow(Tuple{C(1)});
      break;
    case RepKind::kITable:
      t.AddRow(Tuple{V(base)});
      t.AddRow(Tuple{C(1)});
      t.SetGlobal(Conjunction{Neq(V(base), C(2))});
      break;
    case RepKind::kGTable:
      t.AddRow(Tuple{V(base)});
      t.AddRow(Tuple{V(base + 1)});
      t.SetGlobal(Conjunction{Eq(V(base), V(base + 1)),
                              Neq(V(base), C(2))});
      break;
    case RepKind::kCTable:
      t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(base), C(1))});
      t.AddRow(Tuple{V(base + 1)});
      break;
    case RepKind::kView:
      t.AddRow(Tuple{V(base)});
      t.AddRow(Tuple{C(1)});
      break;
  }
  return CDatabase{t};
}

/// The positive existential with != view used for kView sides.
View MakeView(RepKind kind) {
  if (kind != RepKind::kView) return View::Identity();
  return View::Ra({RaExpr::Select(
      RaExpr::Rel(0, 1),
      {SelectAtom::Neq(ColOrConst::Col(0), ColOrConst::Const(9))})});
}

bool ContainmentOracle(const View& lv, const CDatabase& lhs, const View& rv,
                       const CDatabase& rhs) {
  WorldEnumOptions lopts;
  lopts.extra_constants = rhs.Constants();
  for (ConstId c : lv.Constants()) lopts.extra_constants.push_back(c);
  for (ConstId c : rv.Constants()) lopts.extra_constants.push_back(c);
  bool contained = true;
  ForEachWorld(lhs, lopts, [&](const Instance& lw, const Valuation&) {
    Instance limage = lv.Eval(lw);
    WorldEnumOptions ropts;
    ropts.extra_constants = limage.Constants();
    for (ConstId c : lhs.Constants()) ropts.extra_constants.push_back(c);
    for (ConstId c : rv.Constants()) ropts.extra_constants.push_back(c);
    bool found = false;
    ForEachWorld(rhs, ropts, [&](const Instance& rw, const Valuation&) {
      if (rv.Eval(rw) == limage) {
        found = true;
        return false;
      }
      return true;
    });
    if (!found) {
      contained = false;
      return false;
    }
    return true;
  });
  return contained;
}

class Fig2MatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Fig2MatrixTest, DispatcherMatchesOracle) {
  RepKind lhs_kind = static_cast<RepKind>(std::get<0>(GetParam()));
  RepKind rhs_kind = static_cast<RepKind>(std::get<1>(GetParam()));

  CDatabase lhs = MakeDatabase(lhs_kind, 0);
  CDatabase rhs = MakeDatabase(rhs_kind, 100);
  View lv = MakeView(lhs_kind);
  View rv = MakeView(rhs_kind);

  // The generator produces what it claims (views are applied to tables).
  if (lhs_kind != RepKind::kView) {
    EXPECT_EQ(RepKindOf(lhs), lhs_kind);
  }

  bool dispatched = Containment(lv, lhs, rv, rhs);
  bool oracle = ContainmentOracle(lv, lhs, rv, rhs);
  EXPECT_EQ(dispatched, oracle)
      << ToString(lhs_kind) << " in " << ToString(rhs_kind)
      << " (predicted class "
      << ToString(ContainmentComplexity(lhs_kind, rhs_kind)) << ")";
}

INSTANTIATE_TEST_SUITE_P(AllCells, Fig2MatrixTest,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(0, 7)));

}  // namespace
}  // namespace pw
