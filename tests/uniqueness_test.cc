// Tests for the uniqueness problem UNIQ (Theorem 3.2): the PTIME g-table
// algorithm, the PTIME positive-existential-view-of-e-tables algorithm, the
// general search, and randomized cross-validation.

#include <gtest/gtest.h>

#include <random>

#include "decision/uniqueness.h"
#include "ra/eval.h"
#include "tables/world_enum.h"
#include "test_util.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

TEST(UniqGTablesTest, GroundTableUniqueIffEqual) {
  CDatabase db(CTable::FromRelation(Relation(1, {{1}, {2}})));
  EXPECT_EQ(UniqGTables(db, Instance({Relation(1, {{1}, {2}})})), true);
  EXPECT_EQ(UniqGTables(db, Instance({Relation(1, {{1}})})), false);
}

TEST(UniqGTablesTest, ForcedVariableSubstituted) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.AddRow(Tuple{C(2)});
  t.SetGlobal(Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  EXPECT_EQ(UniqGTables(db, Instance({Relation(1, {{1}, {2}})})), true);
}

TEST(UniqGTablesTest, FreeVariableNeverUnique) {
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  CDatabase db{t};
  EXPECT_EQ(UniqGTables(db, Instance({Relation(1, {{1}})})), false);
}

TEST(UniqGTablesTest, VariableOnlyInConditionIsIrrelevant) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{Neq(V(5), C(2))});
  CDatabase db{t};
  EXPECT_EQ(UniqGTables(db, Instance({Relation(1, {{1}})})), true);
}

TEST(UniqGTablesTest, UnsatisfiableGlobalNotUnique) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{FalseAtom()});
  CDatabase db{t};
  EXPECT_EQ(UniqGTables(db, Instance({Relation(1, {{1}})})), false);
}

TEST(UniqGTablesTest, CollapsingDuplicatesStillEqual) {
  // {(x), (1)} with x = 1 forced: matrix collapses to {1}.
  CTable t(1);
  t.AddRow(Tuple{V(0)});
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  EXPECT_EQ(UniqGTables(db, Instance({Relation(1, {{1}})})), true);
}

TEST(UniqGTablesTest, NotApplicableWithLocalConditions) {
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  EXPECT_FALSE(UniqGTables(db, Instance({Relation(1, {{1}})})).has_value());
}

TEST(UniqPosExistentialViewTest, SelectionCollapsesWorlds) {
  // T0 = {(1, x)}; q = pi_0(sigma_{c0=1}(R)): image is always {(1)}.
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  CDatabase db{t};
  RaQuery q = {RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Eq(ColOrConst::Col(0),
                                     ColOrConst::Const(1))}),
      {0})};
  auto result = UniqPosExistentialView(q, db, Instance({Relation(1, {{1}})}));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
}

TEST(UniqPosExistentialViewTest, VariableInOutputNotUnique) {
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  CDatabase db{t};
  RaQuery q = {RaExpr::Rel(0, 2)};
  auto result =
      UniqPosExistentialView(q, db, Instance({Relation(2, {{1, 5}})}));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(*result);
}

TEST(UniqPosExistentialViewTest, SelectOnVariableNotCertainNotUnique) {
  // q = sigma_{c1=5}(R) on {(1, x)}: worlds {} and {(1,5)} — not unique.
  CTable t(2);
  t.AddRow(Tuple{C(1), V(0)});
  CDatabase db{t};
  RaQuery q = {RaExpr::Select(
      RaExpr::Rel(0, 2),
      {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Const(5))})};
  auto result =
      UniqPosExistentialView(q, db, Instance({Relation(2, {{1, 5}})}));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(*result);
}

TEST(UniqPosExistentialViewTest, RejectsNeqQueries) {
  CDatabase db{CTable(1)};
  RaQuery q = {RaExpr::Select(
      RaExpr::Rel(0, 1),
      {SelectAtom::Neq(ColOrConst::Col(0), ColOrConst::Const(1))})};
  EXPECT_FALSE(
      UniqPosExistentialView(q, db, Instance(std::vector<int>{1}))
          .has_value());
}

TEST(UniqPosExistentialViewTest, RejectsCTables) {
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  RaQuery q = {RaExpr::Rel(0, 1)};
  EXPECT_FALSE(UniqPosExistentialView(q, db, Instance({Relation(1, {{1}})}))
                   .has_value());
}

TEST(UniquenessSearchTest, CTableTautologyCondition) {
  // Rows (1) with local u = 1 and (1) with local u != 1: exactly one is
  // always on, so rep = {{(1)}} — unique.
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1))});
  t.AddRow(Tuple{C(1)}, Conjunction{Neq(V(0), C(1))});
  CDatabase db{t};
  EXPECT_TRUE(
      UniquenessSearch(View::Identity(), db, Instance({Relation(1, {{1}})})));
}

TEST(UniquenessSearchTest, CTableNonTautologyCondition) {
  // Single row (1) with local u = 1: the empty world also exists.
  CTable t(1);
  t.AddRow(Tuple{C(1)}, Conjunction{Eq(V(0), C(1))});
  CDatabase db{t};
  EXPECT_FALSE(
      UniquenessSearch(View::Identity(), db, Instance({Relation(1, {{1}})})));
}

TEST(UniquenessSearchTest, EmptyRepNeverUnique) {
  CTable t(1);
  t.AddRow(Tuple{C(1)});
  t.SetGlobal(Conjunction{FalseAtom()});
  CDatabase db{t};
  EXPECT_FALSE(
      UniquenessSearch(View::Identity(), db, Instance({Relation(1, {{1}})})));
}

TEST(UniquenessSearchTest, MustAlsoBeMember) {
  // rep(T) = {{(2)}} is a singleton, but not {I} for I = {(3)}.
  CDatabase db(CTable::FromRelation(Relation(1, {{2}})));
  EXPECT_FALSE(
      UniquenessSearch(View::Identity(), db, Instance({Relation(1, {{3}})})));
  EXPECT_TRUE(
      UniquenessSearch(View::Identity(), db, Instance({Relation(1, {{2}})})));
}

// --- Randomized cross-validation ------------------------------------------

/// Oracle: enumerate all worlds (with I's constants in Delta) and check the
/// set is exactly {I}.
bool UniqueOracle(const View& view, const CDatabase& db, const Instance& i) {
  WorldEnumOptions options;
  options.extra_constants = i.Constants();
  bool any = false;
  bool all_equal = true;
  ForEachWorld(db, options, [&](const Instance& world, const Valuation&) {
    any = true;
    if (view.Eval(world) != i) {
      all_equal = false;
      return false;
    }
    return true;
  });
  return any && all_equal;
}

class UniquenessPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(UniquenessPropertyTest, SearchAgreesWithOracle) {
  std::mt19937 rng(GetParam());
  RandomCTableOptions options = testutil::SmallCTableOptions(
      /*arity=*/1, /*num_rows=*/3, /*num_constants=*/2, /*num_variables=*/2,
      /*num_local_atoms=*/1, /*num_global_atoms=*/GetParam() % 2);
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};

  // Test uniqueness against each enumerated world and one random instance.
  std::vector<Instance> candidates = EnumerateWorlds(db);
  candidates.push_back(Instance({RandomRelation(1, 2, 3, rng)}));
  for (const Instance& i : candidates) {
    EXPECT_EQ(UniquenessSearch(View::Identity(), db, i),
              UniqueOracle(View::Identity(), db, i))
        << t.ToString() << i.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniquenessPropertyTest,
                         ::testing::Range(1, 31));

TEST(UniqAgreementTest, GTableFastPathAgreesWithSearch) {
  std::mt19937 rng(55);
  for (int round = 0; round < 30; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/1, /*num_rows=*/2, /*num_constants=*/2, /*num_variables=*/2,
        /*num_local_atoms=*/0, /*num_global_atoms=*/round % 3);
    CTable t = RandomCTable(options, rng);
    CDatabase db{t};
    Instance candidate({RandomRelation(1, 2, 3, rng)});
    auto fast = UniqGTables(db, candidate);
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(*fast, UniqueOracle(View::Identity(), db, candidate))
        << t.ToString() << candidate.ToString();
  }
}

TEST(UniqAgreementTest, PosExistentialFastPathAgreesWithOracle) {
  std::mt19937 rng(77);
  RaQuery q = {RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Eq(ColOrConst::Col(0),
                                     ColOrConst::Const(1))}),
      {1})};
  View view = View::Ra(q);
  for (int round = 0; round < 30; ++round) {
    RandomCTableOptions options = testutil::SmallCTableOptions(
        /*arity=*/2, /*num_rows=*/3, /*num_constants=*/2, /*num_variables=*/2);
    CTable t = RandomCTable(options, rng);
    if (t.Kind() > TableKind::kETable) continue;
    CDatabase db{t};
    Instance candidate({RandomRelation(1, 2, 3, rng)});
    auto fast = UniqPosExistentialView(q, db, candidate);
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(*fast, UniqueOracle(view, db, candidate))
        << t.ToString() << candidate.ToString();
  }
}

}  // namespace
}  // namespace pw
