// N-ary join planning for the Imielinski–Lipski algebra.
//
// A conjunctive query over c-tables arrives as a tree of selections,
// projections and binary products in some arbitrary written shape —
// `select(product(product(a, b), c))`, nested selections, selections above
// projections of products, `RaExpr::Join` chains. All of them denote the
// same thing: an n-way join with a conjunctive predicate and an output
// projection. This layer normalizes that shape and plans its execution:
//
//   1. *Flatten* the maximal select*/project* prefix over the n-ary product
//      tree into (leaves, conjunct set, output spec): leaves are the
//      subtrees the flattening treats as atomic (relation refs, constant
//      relations, unions, differences), conjuncts are every selection atom
//      rebased to the concatenated leaf coordinate space (atoms written
//      against a projection are composed through it), and the output spec
//      is the root's generalized projection over those coordinates.
//   2. *Partition* the conjuncts: an atom whose columns sit inside one leaf
//      becomes a pushdown filter applied to that leaf's rows before any
//      pairing; a cross-leaf column equality becomes a hash-join key;
//      everything else (cross-leaf inequalities, constant-only atoms) is a
//      residual applied per emitted combination.
//   3. *Order* the n-way join greedily at execution time, when the live
//      (post-pushdown) cardinalities are known: seed with the smallest leaf
//      touched by a join key, then repeatedly join the smallest leaf
//      connected to the joined set (falling back to the smallest remaining
//      leaf — a cartesian step — when a component is exhausted). Each step
//      indexes the new leaf on its key columns and probes it with the
//      partial combinations.
//   4. *Sink projections*: intermediate state is row-id combinations, so a
//      leaf column not needed by a join key, a conjunct, or the output spec
//      is never materialized above its leaf (`JoinPlan::needed`).
//
// Execution (ilalgebra/ctable_eval.cc) must stay output-*identical* to the
// nested-loop evaluation of the original tree — same rows, same order, and
// on the plain path byte-identical local conditions. Two facts make that
// reachable despite the reordering: the nested loops enumerate surviving
// leaf-row combinations in lexicographic order of the leaf-id vector (each
// product iterates its left side outer), so sorting the planned
// combinations by that vector restores the order; and the local condition
// of a combination is a deterministic in-order traversal of the tree — leaf
// locals and instantiated selection atoms in tree order — which
// `JoinPlan::replay` records so the executor can rebuild it exactly. The
// join machinery itself is pure candidate pruning: it only skips
// combinations the selection would have dropped on a trivially-false ground
// atom (or, interned, an unsatisfiable condition).
//
// The conditioned Datalog fixpoint's body-atom matcher plans its probes
// through this layer too (`PlanAtomProbe`): the bound, constant-valued
// positions of a body atom under a partial rule binding form the key of a
// per-predicate index probe.

#ifndef PW_ILALGEBRA_JOIN_PLAN_H_
#define PW_ILALGEBRA_JOIN_PLAN_H_

#include <cstddef>
#include <map>
#include <vector>

#include "core/term.h"
#include "core/tuple.h"
#include "ra/expr.h"

namespace pw {

/// One leaf of a flattened prefix: a subtree the flattening treats as
/// atomic. `base` is the leaf's first column in the concatenated coordinate
/// space of all leaves (leaf order is the tree's left-to-right order).
struct JoinLeaf {
  RaExpr expr;
  int base = 0;
  int arity = 0;
};

/// Where a conjunct of the normalized selection acts.
enum class ConjunctKind {
  kConstant,  // references no leaf column: decided once per plan
  kPushdown,  // columns of exactly one leaf: a per-leaf pre-filter
  kJoinKey,   // cross-leaf column equality: a hash-join key
  kResidual,  // any other cross-leaf atom: applied per combination
};

/// One atom of the normalized conjunct set, in concatenated coordinates.
struct JoinConjunct {
  SelectAtom atom;
  ConjunctKind kind = ConjunctKind::kResidual;
  std::vector<int> leaves;  // distinct leaves referenced, ascending
};

/// One event of the exact-output replay: the in-order tree traversal that
/// rebuilds a combination's local condition — leaf locals and instantiated
/// selection atoms in exactly the order the nested loops conjoin them.
struct ReplayEvent {
  enum Kind { kLeafLocal, kAtom };
  Kind kind = kLeafLocal;
  int leaf = 0;      // kLeafLocal: which leaf's local condition
  SelectAtom atom;   // kAtom: concatenated coordinates
};

struct JoinPlanOptions {
  /// Collapse the flattening at the first product: its two operands stay
  /// atomic leaves, whatever they are — the PR 3 binary-fusion shape, kept
  /// as a benchmarking baseline for the n-ary planner. Leaves that are
  /// themselves select/product subtrees re-enter the planner when they are
  /// evaluated, so binary fusion still recurses into product subtrees.
  bool binary_only = false;
};

/// A normalized, partitioned n-way join. `fused` is false when the shape is
/// not worth planning (fewer than two leaves, or no cross-leaf equi-join
/// key); everything else is meaningful only when `fused`.
struct JoinPlan {
  bool fused = false;
  std::vector<JoinLeaf> leaves;
  int total_width = 0;                  // sum of leaf arities
  std::vector<int> col_leaf;            // concatenated column -> leaf index
  std::vector<ColOrConst> outputs;      // output spec, concatenated coords
  std::vector<JoinConjunct> conjuncts;  // normalized selection, tree order
  std::vector<ReplayEvent> replay;      // in-order traversal of the prefix
  // Per leaf: its pushdown conjuncts rebased to leaf-local coordinates.
  std::vector<std::vector<SelectAtom>> pushdown;
  // Concatenated columns needed above the leaves (by a key, a conjunct, or
  // the output spec); a column with needed[c] == false is sunk — it never
  // appears in intermediate state.
  std::vector<bool> needed;
  // Plan-shape counters, consumed by CTableEvalStats.
  size_t conjuncts_pushed = 0;   // kPushdown + kConstant conjuncts
  size_t projections_sunk = 0;   // columns with needed[c] == false
};

/// Flattens and partitions the select*/project*/product prefix rooted at
/// `expr`. Returns fused == false when `expr` is not a select/project/
/// product node, flattens to fewer than two leaves, or yields no cross-leaf
/// equi-join key (a pure product stays a nested loop).
JoinPlan PlanJoin(const RaExpr& expr, const JoinPlanOptions& options = {});

/// One step of the greedy join order. `steps[0]` is the seed (no key; its
/// `conjuncts` are the plan's constant conjuncts); every later step joins
/// `leaf` to the set of already-joined leaves, probing an index of the
/// leaf's rows on `build_cols` with keys drawn from the partial
/// combination's `probe_cols` (aligned pairwise; empty for a cartesian
/// step), then applies `conjuncts` — every not-yet-applied conjunct whose
/// leaves are now all joined, join keys included (their instantiation emits
/// the condition atoms a variable match requires).
struct JoinStep {
  int leaf = 0;
  std::vector<int> probe_cols;  // concatenated coords, already-joined side
  std::vector<int> build_cols;  // leaf-local coords, aligned to probe_cols
  std::vector<int> conjuncts;   // indices into JoinPlan::conjuncts
};

/// Orders the join greedily given the live (post-pushdown) row count of
/// each leaf: seed = smallest leaf incident to a join key, then repeatedly
/// the smallest leaf connected to the joined set (smallest remaining leaf,
/// as a cartesian step, when no connected one is left). Deterministic:
/// ties break toward the lower leaf index.
std::vector<JoinStep> OrderJoinSteps(const JoinPlan& plan,
                                     const std::vector<size_t>& leaf_rows);

/// The bound-position probe of one Datalog body atom under a partial rule
/// binding: `cols` are the atom positions whose value is a constant (a
/// constant argument, or a variable the binding maps to a constant — a
/// variable bound to a null cannot key a probe, since a null matches any
/// row under a condition), and `key` their values, aligned. Empty cols
/// means the atom cannot be probed and must scan.
struct AtomProbePlan {
  std::vector<int> cols;
  Tuple key;
};
AtomProbePlan PlanAtomProbe(const Tuple& args,
                            const std::map<VarId, Term>& binding);

}  // namespace pw

#endif  // PW_ILALGEBRA_JOIN_PLAN_H_
