#include "ilalgebra/datalog_ctable.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "datalog/magic.h"
#include "ilalgebra/join_plan.h"
#include "tables/tuple_index.h"
#include "util/thread_pool.h"

namespace pw {

namespace {

/// One conditioned fact during evaluation. The tuple lives in the by_tuple
/// index (node-based map, so the key address is stable); rows of the same
/// tuple share it. `cond` is a backend condition id: an interned conjunction
/// on the antichain backend, a decision-diagram id on the DD backend. Dead
/// rows (subsumed by a later, weaker derivation — or, on the DD backend,
/// Or-merged into a wider one) stay in place so indices remain stable; joins
/// skip them — any derivation through a dead row is covered, with a weaker
/// or equal condition, by the same derivation through its subsumer.
struct IRow {
  const Tuple* tuple = nullptr;
  CondId cond = ConditionBackend::kTrueCond;
  bool alive = true;
};

struct PredState {
  std::vector<IRow> rows;
  // Tuple -> indices into `rows` (live and dead): the duplicate-suppression
  // and subsumption index. (TupleHash comes from tables/tuple_index.h, the
  // shared indexing layer.)
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> by_tuple;
  // The previous round's delta is rows[delta_begin, delta_end); rows at and
  // past delta_end were derived in the current round.
  size_t delta_begin = 0;
  size_t delta_end = 0;
  // Lazily-built hash indexes of the rows' tuples per bound-column subset,
  // extended across rounds — and across Run() calls — as rows are appended.
  // Rows are append-only except for ClearPredicate, which bumps `stamp` so
  // any entry that survives the Clear rebuilds instead of serving stale row
  // ids. Dead rows stay indexed and are skipped at match time, like in the
  // scan.
  TupleIndexCache indexes;
  uint64_t stamp = 1;
};

struct EvalState {
  ConditionInterner* interner = nullptr;
  // The condition representation rows travel in (owned by the Impl). `dd`
  // caches backend->disjunctive(): true switches Insert from the subsumption
  // antichain to one-live-row-per-tuple Or-merging.
  ConditionBackend* backend = nullptr;
  bool dd = false;
  ConjId global_id = ConditionInterner::kTrueConj;
  bool use_index = true;
  // Predicates at or past this id are magic (demand) predicates of a
  // magic-rewritten program; their rows are attributed to the demand
  // counters. -1: none.
  int magic_begin = -1;
  // Row-derivation budget; 0 = unlimited. When it trips, `aborted` stops
  // every loop and the stats record the exhaustion. Work units (row visits
  // in the join loops, subsumption-bucket scans) are metered against
  // 64 * max_derived_rows so that evaluation also stops when the join or
  // subsumption work explodes without accumulating kept rows.
  size_t max_derived_rows = 0;
  size_t work = 0;
  bool aborted = false;

  void ChargeWork(size_t units) {
    work += units;
    if (max_derived_rows != 0 && work >= 64 * max_derived_rows) {
      aborted = true;
      stats.budget_exhausted = true;
    }
  }
  std::vector<PredState> preds;
  ConditionedFixpointStats stats;

  bool IsMagicPred(int pred) const {
    return magic_begin >= 0 && pred >= magic_begin;
  }
};

/// Inserts a derived row unless a duplicate (same tuple, same condition id)
/// or subsumed; kills live rows the new one covers. Rows whose condition
/// cannot hold together with the global condition are dropped. Returns true
/// if the row was added.
///
/// Antichain backend: a live row whose condition the new one implies makes
/// it redundant, and it in turn kills every live row implying it — per tuple
/// a covering antichain of conjunctions survives. Since each (tuple, id)
/// pair is admitted at most once and the id universe of a program is finite,
/// the fixpoint terminates.
///
/// DD backend: per tuple at most ONE live row exists; a new derivation
/// Or-merges into it. A merge that widens the condition kills the old row
/// and appends the merged one past the delta end, so downstream rules re-fire
/// against the widened condition next round — exactly the semi-naive
/// invariant, with the merged id playing the role the fresh conjunction
/// played before. Termination: every non-dropped insert strictly enlarges
/// the tuple's condition in the finite lattice of boolean functions over the
/// program's atom universe.
bool Insert(EvalState& state, int pred, Tuple tuple, CondId cond) {
  ConditionBackend& backend = *state.backend;
  if (!backend.SatisfiableWith(state.global_id, cond)) {
    ++state.stats.unsatisfiable_rows;
    // Unsatisfiable *demand* dies here, before any guarded rule body could
    // fire against it.
    if (state.IsMagicPred(pred)) ++state.stats.demand_pruned;
    return false;
  }
  PredState& ps = state.preds[pred];
  auto [it, inserted] = ps.by_tuple.try_emplace(std::move(tuple));
  std::vector<size_t>& bucket = it->second;
  state.ChargeWork(1 + bucket.size());
  if (!inserted && state.dd) {
    for (size_t idx : bucket) {
      IRow& existing = ps.rows[idx];
      if (!existing.alive) continue;
      if (existing.cond == cond) {
        ++state.stats.duplicate_rows;
        return false;
      }
      CondId merged = backend.Or(existing.cond, cond);
      if (merged == existing.cond) {
        // The live condition already covers the new derivation.
        ++state.stats.subsumed_rows;
        return false;
      }
      existing.alive = false;
      ++state.stats.subsumed_rows;
      cond = merged;
      break;  // at most one live row per tuple on this backend
    }
  } else if (!inserted) {
    ConditionInterner& interner = *state.interner;
    for (size_t idx : bucket) {
      if (ps.rows[idx].cond == cond) {
        ++state.stats.duplicate_rows;
        return false;
      }
    }
    for (size_t idx : bucket) {
      const IRow& existing = ps.rows[idx];
      // An already-present weaker condition derives the new row.
      if (existing.alive && interner.Implies(cond, existing.cond)) {
        ++state.stats.subsumed_rows;
        return false;
      }
    }
    for (size_t idx : bucket) {
      IRow& existing = ps.rows[idx];
      if (existing.alive && interner.Implies(existing.cond, cond)) {
        existing.alive = false;
        ++state.stats.subsumed_rows;
      }
    }
  }
  bucket.push_back(ps.rows.size());
  ps.rows.push_back(IRow{&it->first, cond, true});
  ++state.stats.derived_rows;
  if (state.IsMagicPred(pred)) ++state.stats.magic_facts;
  if (state.max_derived_rows != 0 &&
      state.stats.derived_rows >= state.max_derived_rows) {
    state.aborted = true;
    state.stats.budget_exhausted = true;
  }
  return true;
}

/// Matches rule argument terms against a row tuple, extending the rule-scope
/// binding (rule variable -> table term) and accumulating equality atoms
/// between table terms where needed. Returns false on hard mismatch.
bool MatchArgs(const Tuple& args, const Tuple& row,
               std::map<VarId, Term>& binding, Conjunction& cond) {
  for (size_t i = 0; i < args.size(); ++i) {
    Term need = args[i];
    Term have = row[i];
    if (need.is_constant()) {
      CondAtom eq = Eq(need, have);
      if (IsTriviallyFalse(eq)) return false;
      if (!IsTriviallyTrue(eq)) cond.Add(eq);
      continue;
    }
    auto [it, inserted] = binding.emplace(need.variable(), have);
    if (!inserted) {
      CondAtom eq = Eq(it->second, have);
      if (IsTriviallyFalse(eq)) return false;
      if (!IsTriviallyTrue(eq)) cond.Add(eq);
    }
  }
  return true;
}

/// The up-to-date index of `pred`'s rows on `cols`. Rows are append-only
/// between ClearPredicate calls, so the cache usually just extends; a Clear
/// bumps the predicate's stamp and the entry rebuilds. Builds and extends
/// are counted separately into the stats, so a mid-query catch-up after an
/// append is never mistaken for (or double-counted as) a rebuild.
const TupleIndex& IndexFor(EvalState& state, int pred,
                           const std::vector<int>& cols) {
  PredState& ps = state.preds[pred];
  size_t builds_before = ps.indexes.stats().builds;
  size_t extends_before = ps.indexes.stats().extends;
  const TupleIndex& index = ps.indexes.Get(
      cols, ps.rows.size(), ps.stamp,
      [&ps](size_t i) -> const Tuple& { return *ps.rows[i].tuple; });
  state.stats.index_builds += ps.indexes.stats().builds - builds_before;
  state.stats.index_extends += ps.indexes.stats().extends - extends_before;
  return index;
}

/// The order-canonical (head, condition) of one matched body combination —
/// the leaf computation of the join, shared by the sequential FireRule and
/// the parallel generator. Re-derives the binding and equality conditions
/// in *body order* from the matched rows: which atom a shared variable's
/// representative term comes from depends on the order the atoms were
/// matched, and rows with nulls make rep-equivalent representatives
/// syntactically different — so the emitted pair must be computed
/// order-canonically, or evaluation schedules with different delta windows
/// (incremental resume vs from-scratch, parallel slices) would derive
/// different rows and break their identity.
void CanonicalLeaf(const DatalogRule& rule, ConditionBackend& backend,
                   const std::vector<const Tuple*>& matched,
                   const std::vector<CondId>& matched_cond, Tuple* head,
                   CondId* cond) {
  std::map<VarId, Term> canon;
  Conjunction eqs;
  CondId out = ConditionBackend::kTrueCond;
  for (size_t p = 0; p < rule.body.size(); ++p) {
    bool ok = MatchArgs(rule.body[p].args, *matched[p], canon, eqs);
    (void)ok;
    assert(ok);  // constant conflicts fail in every match order
    out = backend.And(out, matched_cond[p]);
  }
  if (eqs.size() > 0) {
    out = backend.And(out, backend.FromConj(backend.interner().Intern(eqs)));
  }
  head->clear();
  head->reserve(rule.head.args.size());
  for (const Term& t : rule.head.args) {
    head->push_back(t.is_constant() ? t : canon.at(t.variable()));
  }
  *cond = out;
}

/// Fires one rule, inserting head derivations. With `delta_pos < 0` (naive)
/// every body position ranges over the full row list as of loop entry. With
/// `delta_pos >= 0` (semi-naive) position delta_pos ranges over its
/// predicate's delta, earlier positions over pre-delta rows only and later
/// ones over everything up to the delta end — so each combination with at
/// least one delta row is enumerated exactly once per round. A body atom
/// with bound, constant-valued positions enumerates its range through the
/// predicate's hash index on those positions instead of scanning it (same
/// rows, same order; positions bound to a null fall back to the scan since
/// a null matches any row under a condition). The local condition travels
/// as an interned id: conjunction is the memoized And and a branch whose
/// partial condition cannot hold (on its own or with the global condition)
/// is cut immediately. Returns true if anything was added.
bool FireRule(EvalState& state, const DatalogRule& rule, int delta_pos) {
  ConditionInterner& interner = *state.interner;
  ConditionBackend& backend = *state.backend;
  bool added = false;
  // Branches cut while deriving a magic (demand) predicate are demand that
  // can never hold — counted separately as demand_pruned.
  const bool magic_head = state.IsMagicPred(rule.head.predicate);
  std::map<VarId, Term> binding;

  // Enumerate the delta atom first, then the rest in body order. The delta
  // window is the smallest range by construction (often a single seeded
  // row), and binding its variables up front turns the other atoms' scans
  // into keyed index probes — O(matches) instead of O(rows) per delta row.
  // A pure permutation of the enumeration order: the combination set is
  // unchanged.
  std::vector<size_t> order(rule.body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (delta_pos > 0) {
    std::rotate(order.begin(), order.begin() + delta_pos,
                order.begin() + delta_pos + 1);
  }

  // The matched row (tuple pointer and condition) per *body* position —
  // tuple pointers are stable (they point at by_tuple keys, a node-based
  // map), so capturing them across the recursion is safe even when Insert
  // grows the row vectors.
  std::vector<const Tuple*> matched(rule.body.size(), nullptr);
  std::vector<CondId> matched_cond(rule.body.size(),
                                   ConditionBackend::kTrueCond);

  std::function<void(size_t, CondId)> go = [&](size_t depth, CondId acc) {
    if (state.aborted) return;
    if (depth == rule.body.size()) {
      Tuple head;
      CondId cond = ConditionBackend::kTrueCond;
      CanonicalLeaf(rule, backend, matched, matched_cond, &head, &cond);
      added |= Insert(state, rule.head.predicate, std::move(head), cond);
      return;
    }
    const size_t pos = order[depth];
    const DatalogAtom& atom = rule.body[pos];
    PredState& ps = state.preds[atom.predicate];
    size_t lo = 0;
    size_t hi;
    if (delta_pos < 0) {
      hi = ps.rows.size();
    } else if (static_cast<int>(pos) == delta_pos) {
      lo = ps.delta_begin;
      hi = ps.delta_end;
    } else if (static_cast<int>(pos) < delta_pos) {
      hi = ps.delta_begin;
    } else {
      hi = ps.delta_end;
    }
    // The atom's probe plan under the current binding (the shared planning
    // layer, ilalgebra/join_plan.h): its bound, constant-valued positions
    // key a probe into the predicate's index. A variable bound to a null is
    // treated as unbound for keying (its row match adds an equality
    // condition instead of filtering).
    std::vector<size_t> candidates;
    bool keyed = false;
    if (state.use_index && lo < hi) {
      AtomProbePlan probe = PlanAtomProbe(atom.args, binding);
      if (!probe.cols.empty()) {
        // Snapshot the candidate ids: a Insert deeper in the recursion may
        // extend this very index (and any row vector) mid-iteration.
        candidates = IndexFor(state, atom.predicate, probe.cols)
                         .Candidates(probe.key, lo, hi);
        ++state.stats.index_probes;
        state.stats.index_hits += candidates.size();
        keyed = true;
      }
    }
    // Index-based: Insert may append to (and reallocate) any row vector.
    size_t count = keyed ? candidates.size() : hi - lo;
    for (size_t k = 0; k < count && !state.aborted; ++k) {
      size_t idx = keyed ? candidates[k] : lo + k;
      state.ChargeWork(1);
      if (!ps.rows[idx].alive) continue;
      CondId row_cond = ps.rows[idx].cond;
      auto saved_binding = binding;
      Conjunction eqs;
      if (MatchArgs(atom.args, *ps.rows[idx].tuple, binding, eqs)) {
        CondId next = backend.And(acc, row_cond);
        if (eqs.size() > 0) {
          next = backend.And(next, backend.FromConj(interner.Intern(eqs)));
        }
        if (!backend.SatisfiableWith(state.global_id, next)) {
          ++state.stats.pruned_branches;  // never-on prefix: cut the subtree
          if (magic_head) ++state.stats.demand_pruned;
        } else {
          matched[pos] = ps.rows[idx].tuple;
          matched_cond[pos] = row_cond;
          go(depth + 1, next);
        }
      }
      binding = std::move(saved_binding);
    }
  };
  go(0, ConditionBackend::kTrueCond);
  return added;
}

/// Advances every predicate's delta window to the rows appended during the
/// round just finished; counts them into the stats.
void AdvanceDeltas(EvalState& state) {
  for (PredState& ps : state.preds) {
    ps.delta_begin = ps.delta_end;
    ps.delta_end = ps.rows.size();
    state.stats.delta_rows += ps.delta_end - ps.delta_begin;
  }
}

// --- Parallel semi-naive rounds ---------------------------------------------
//
// A round with num_threads > 1 splits into two phases:
//
//   *Generate* (parallel): each rule/delta-position firing's outer (delta)
//   range is sliced across the worker pool. Workers enumerate the join
//   exactly like FireRule — same windows, same index probes (through
//   per-worker index caches), same satisfiability cuts — but instead of
//   inserting at the leaf they record a Candidate: the order-canonical
//   (head, condition) plus the source row per enumeration depth. The round
//   state is frozen during this phase (inserts only happen in replay), so
//   workers race on nothing; the interner must be in shared mode.
//
//   *Replay* (sequential): candidates are applied through the unchanged
//   Insert in canonical order — firing order, then ascending outer ids,
//   then enumeration order — which is exactly the sequential schedule.
//
// One subtlety keeps the replayed row sequence byte-identical to the
// sequential engine rather than merely row-set-equal: sequential FireRule
// checks `alive` at *visit time*. A mid-round Insert can kill an in-window
// row; enumeration subtrees already entered through that row continue, but
// subtrees entered later skip it. Workers generated against the round-start
// flags (a superset). Replay therefore re-derives each candidate's
// admissibility from its sources: per enumeration depth it keeps the last
// liveness decision made for the current source prefix, re-evaluating from
// the first depth whose source differs from the previous candidate's —
// evaluating depth d's liveness exactly when the sequential enumeration
// would have descended into that subtree (the first candidate carrying that
// prefix), and reusing the decision for the rest of the subtree just as the
// sequential loop never re-checks it. Candidates with a dead source depth
// are dropped; the survivors are exactly the sequential insert sequence.

/// One candidate derivation: the order-canonical head row plus the source
/// row per enumeration (rotated) depth it was derived through.
struct Candidate {
  Tuple head;
  CondId cond = ConditionBackend::kTrueCond;
  std::vector<std::pair<int, size_t>> sources;  // (pred, row idx) per depth
};

/// Per-worker generation state: private index caches (sharing the
/// PredState caches would race their lazy builds) and local stat counters,
/// merged after the generation barrier.
struct WorkerScratch {
  std::vector<TupleIndexCache> indexes;  // one per predicate
  size_t pruned_branches = 0;
  size_t demand_pruned = 0;
  size_t index_probes = 0;
  size_t index_hits = 0;
  size_t index_builds = 0;
  size_t index_extends = 0;
};

/// One rule/delta-position firing of the round: the depth-0 enumeration is
/// either the keyed candidate list `outer` or the scan range [lo, hi).
struct Firing {
  const DatalogRule* rule = nullptr;
  int delta_pos = 0;
  bool keyed = false;
  size_t lo = 0;
  size_t hi = 0;
  std::vector<size_t> outer;

  size_t OuterCount() const { return keyed ? outer.size() : hi - lo; }
  size_t OuterId(size_t k) const { return keyed ? outer[k] : lo + k; }
};

/// A contiguous chunk of one firing's outer range, the unit of work
/// stealing; `out` receives the chunk's candidates in enumeration order.
struct GenSlice {
  size_t firing = 0;
  size_t begin = 0;
  size_t end = 0;
  std::vector<Candidate> out;
};

/// Generation-phase FireRule: enumerates outer ids [begin, end) of `firing`
/// with the same windows, probe plans, and satisfiability cuts as the
/// sequential engine, emitting Candidates instead of inserting. Read-only
/// on the round state. Runs with the budget disabled (parallel mode forces
/// max_derived_rows == 0), so there is no work metering here.
void GenerateSlice(EvalState& state, WorkerScratch& ws, const Firing& firing,
                   size_t begin, size_t end, std::vector<Candidate>& out) {
  ConditionInterner& interner = *state.interner;
  ConditionBackend& backend = *state.backend;
  const DatalogRule& rule = *firing.rule;
  const int delta_pos = firing.delta_pos;
  const bool magic_head = state.IsMagicPred(rule.head.predicate);
  std::map<VarId, Term> binding;

  std::vector<size_t> order(rule.body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (delta_pos > 0) {
    std::rotate(order.begin(), order.begin() + delta_pos,
                order.begin() + delta_pos + 1);
  }

  std::vector<const Tuple*> matched(rule.body.size(), nullptr);
  std::vector<CondId> matched_cond(rule.body.size(),
                                   ConditionBackend::kTrueCond);
  std::vector<std::pair<int, size_t>> sources(rule.body.size());

  std::function<void(size_t, CondId)> go = [&](size_t depth, CondId acc) {
    if (depth == rule.body.size()) {
      Candidate c;
      CanonicalLeaf(rule, backend, matched, matched_cond, &c.head, &c.cond);
      c.sources = sources;
      out.push_back(std::move(c));
      return;
    }
    const size_t pos = order[depth];
    const DatalogAtom& atom = rule.body[pos];
    PredState& ps = state.preds[atom.predicate];
    size_t lo = 0;
    size_t hi;
    if (static_cast<int>(pos) == delta_pos) {
      lo = ps.delta_begin;
      hi = ps.delta_end;
    } else if (static_cast<int>(pos) < delta_pos) {
      hi = ps.delta_begin;
    } else {
      hi = ps.delta_end;
    }
    std::vector<size_t> candidates;
    bool keyed = false;
    if (depth == 0) {
      // The dispatcher already planned (and probed) the outer range; this
      // slice walks its [begin, end) chunk.
      for (size_t k = begin; k < end; ++k) {
        size_t idx = firing.OuterId(k);
        if (!ps.rows[idx].alive) continue;
        CondId row_cond = ps.rows[idx].cond;
        auto saved_binding = binding;
        Conjunction eqs;
        if (MatchArgs(atom.args, *ps.rows[idx].tuple, binding, eqs)) {
          CondId next = backend.And(acc, row_cond);
          if (eqs.size() > 0) {
            next = backend.And(next, backend.FromConj(interner.Intern(eqs)));
          }
          if (!backend.SatisfiableWith(state.global_id, next)) {
            ++ws.pruned_branches;
            if (magic_head) ++ws.demand_pruned;
          } else {
            matched[pos] = ps.rows[idx].tuple;
            matched_cond[pos] = row_cond;
            sources[depth] = {atom.predicate, idx};
            go(depth + 1, next);
          }
        }
        binding = std::move(saved_binding);
      }
      return;
    }
    if (state.use_index && lo < hi) {
      AtomProbePlan probe = PlanAtomProbe(atom.args, binding);
      if (!probe.cols.empty()) {
        TupleIndexCache& cache = ws.indexes[atom.predicate];
        size_t builds_before = cache.stats().builds;
        size_t extends_before = cache.stats().extends;
        candidates =
            cache
                .Get(probe.cols, ps.rows.size(), ps.stamp,
                     [&ps](size_t i) -> const Tuple& {
                       return *ps.rows[i].tuple;
                     })
                .Candidates(probe.key, lo, hi);
        ws.index_builds += cache.stats().builds - builds_before;
        ws.index_extends += cache.stats().extends - extends_before;
        ++ws.index_probes;
        ws.index_hits += candidates.size();
        keyed = true;
      }
    }
    size_t count = keyed ? candidates.size() : hi - lo;
    for (size_t k = 0; k < count; ++k) {
      size_t idx = keyed ? candidates[k] : lo + k;
      if (!ps.rows[idx].alive) continue;
      CondId row_cond = ps.rows[idx].cond;
      auto saved_binding = binding;
      Conjunction eqs;
      if (MatchArgs(atom.args, *ps.rows[idx].tuple, binding, eqs)) {
        CondId next = backend.And(acc, row_cond);
        if (eqs.size() > 0) {
          next = backend.And(next, backend.FromConj(interner.Intern(eqs)));
        }
        if (!backend.SatisfiableWith(state.global_id, next)) {
          ++ws.pruned_branches;
          if (magic_head) ++ws.demand_pruned;
        } else {
          matched[pos] = ps.rows[idx].tuple;
          matched_cond[pos] = row_cond;
          sources[depth] = {atom.predicate, idx};
          go(depth + 1, next);
        }
      }
      binding = std::move(saved_binding);
    }
  };
  go(0, ConditionBackend::kTrueCond);
}

/// The visit-time liveness protocol of the replay phase (see the section
/// comment): per-depth decisions cached against the previous candidate's
/// source prefix, re-evaluated from the first differing depth.
struct ReplayLiveness {
  std::vector<std::pair<int, size_t>> prev;
  std::vector<char> decision;  // decision[d]: source d alive when visited

  bool Admit(const EvalState& state, const Candidate& c) {
    size_t same = 0;
    while (same < prev.size() && same < c.sources.size() &&
           prev[same] == c.sources[same]) {
      ++same;
    }
    prev.assign(c.sources.begin(), c.sources.end());
    decision.resize(c.sources.size());
    for (size_t d = same; d < c.sources.size(); ++d) {
      const auto& [pred, idx] = c.sources[d];
      decision[d] = state.preds[pred].rows[idx].alive ? 1 : 0;
    }
    for (size_t d = 0; d < c.sources.size(); ++d) {
      if (!decision[d]) return false;
    }
    return true;
  }
};

/// Replays one firing's candidates (concatenated slices, already in
/// enumeration order) through the unchanged Insert. Returns true if any row
/// was added.
bool ReplaySlice(EvalState& state, const DatalogRule& rule,
                 std::vector<Candidate>& candidates, ReplayLiveness& live) {
  bool added = false;
  for (Candidate& c : candidates) {
    if (!live.Admit(state, c)) continue;
    added |= Insert(state, rule.head.predicate, std::move(c.head), c.cond);
  }
  return added;
}

/// One sequential semi-naive round over the listed rules (in list order):
/// fires each rule once per body position whose predicate has a nonempty
/// delta window. Returns true if any row was added.
bool SequentialRound(EvalState& state, const DatalogProgram& program,
                     const std::vector<size_t>& rule_ids) {
  bool changed = false;
  for (size_t r : rule_ids) {
    const DatalogRule& rule = program.rules()[r];
    for (size_t pos = 0; pos < rule.body.size() && !state.aborted; ++pos) {
      const PredState& ps = state.preds[rule.body[pos].predicate];
      if (ps.delta_begin == ps.delta_end) continue;
      changed |= FireRule(state, rule, static_cast<int>(pos));
    }
  }
  return changed;
}

/// One parallel semi-naive round over the listed rules. Mirrors
/// SequentialRound exactly: same firing enumeration in the same order, same
/// depth-0 probe planning (counted into the same stats), with generation
/// fanned out over `pool` and a sequential replay. Returns true if any row
/// was added.
bool ParallelRound(EvalState& state, const DatalogProgram& program,
                   const std::vector<size_t>& rule_ids, ThreadPool& pool,
                   std::vector<WorkerScratch>& scratch) {
  std::vector<Firing> firings;
  size_t total_outer = 0;
  for (size_t r : rule_ids) {
    const DatalogRule& rule = program.rules()[r];
    for (size_t pos = 0; pos < rule.body.size(); ++pos) {
      PredState& ps = state.preds[rule.body[pos].predicate];
      if (ps.delta_begin == ps.delta_end) continue;
      Firing f;
      f.rule = &rule;
      f.delta_pos = static_cast<int>(pos);
      // The rotated order puts the delta atom at depth 0, so the outer
      // range is always the delta window.
      f.lo = ps.delta_begin;
      f.hi = ps.delta_end;
      if (state.use_index) {
        // Depth-0 probe plan under the empty binding, through the shared
        // per-predicate cache — one probe per firing, like FireRule.
        AtomProbePlan probe = PlanAtomProbe(rule.body[pos].args, {});
        if (!probe.cols.empty()) {
          f.outer = IndexFor(state, rule.body[pos].predicate, probe.cols)
                        .Candidates(probe.key, f.lo, f.hi);
          ++state.stats.index_probes;
          state.stats.index_hits += f.outer.size();
          f.keyed = true;
        }
      }
      total_outer += f.OuterCount();
      firings.push_back(std::move(f));
    }
  }

  // Slice for work stealing: enough chunks to balance skew, large enough
  // that per-slice overhead stays noise.
  std::vector<GenSlice> slices;
  size_t target = pool.num_threads() * 4;
  size_t chunk = total_outer / target + 1;
  for (size_t fi = 0; fi < firings.size(); ++fi) {
    size_t n = firings[fi].OuterCount();
    for (size_t b = 0; b < n; b += chunk) {
      slices.push_back(GenSlice{fi, b, std::min(b + chunk, n), {}});
    }
  }

  pool.ParallelFor(slices.size(), [&](size_t si, size_t worker) {
    GenSlice& s = slices[si];
    GenerateSlice(state, scratch[worker], firings[s.firing], s.begin, s.end,
                  s.out);
  });
  for (WorkerScratch& ws : scratch) {
    state.stats.pruned_branches += ws.pruned_branches;
    state.stats.demand_pruned += ws.demand_pruned;
    state.stats.index_probes += ws.index_probes;
    state.stats.index_hits += ws.index_hits;
    state.stats.index_builds += ws.index_builds;
    state.stats.index_extends += ws.index_extends;
    ws.pruned_branches = ws.demand_pruned = 0;
    ws.index_probes = ws.index_hits = 0;
    ws.index_builds = ws.index_extends = 0;
  }

  bool changed = false;
  size_t si = 0;
  for (size_t fi = 0; fi < firings.size(); ++fi) {
    // The liveness cache spans one firing — one sequential FireRule call —
    // and resets across firings (a new call re-visits every row afresh).
    ReplayLiveness live;
    for (; si < slices.size() && slices[si].firing == fi; ++si) {
      changed |= ReplaySlice(state, *firings[fi].rule, slices[si].out, live);
    }
  }
  return changed;
}

}  // namespace

struct ConditionedFixpoint::Impl {
  const DatalogProgram* program = nullptr;
  bool semi_naive = true;
  bool stratum = true;
  // Static analysis of `program` (SCC strata in topological order, dead
  // rules, cones), computed once at construction; the stratum schedule and
  // IVM both run off it.
  std::unique_ptr<ProgramAnalysis> analysis;
  // seen[scc][pred]: how many of `pred`'s rows SCC `scc`'s rules have
  // already consumed (joined against every relevant combination). The SCC's
  // delta on the next Run() is [seen, rows.size()) — the stratum-schedule
  // equivalent of the monolithic delta windows, kept per SCC because
  // different strata consume the same predicate at different times.
  // ClearPredicate resets a predicate's column.
  std::vector<std::vector<size_t>> seen;
  // The condition representation of this fixpoint's rows; state.backend
  // points here. Declared before `state` only for clarity — construction
  // wires both explicitly.
  std::unique_ptr<ConditionBackend> backend;
  EvalState state;
  // Interner size at construction: stats() reports growth since then, which
  // matches the one-shot evaluators (they intern the global condition before
  // constructing the fixpoint).
  size_t interner_baseline = 0;

  // Parallel rounds (options.num_threads > 1): the pool and per-worker
  // scratch are created lazily on the first round big enough to use them,
  // so small evaluations never pay the thread spawn. Worker index caches
  // persist across rounds — PredState stamps invalidate them after a
  // ClearPredicate exactly like the shared caches.
  int num_threads = 1;
  std::unique_ptr<ThreadPool> pool;
  std::vector<WorkerScratch> scratch;

  // A round's delta must clear this before fan-out pays for itself.
  static constexpr size_t kMinParallelDelta = 16;

  /// True (creating the pool on first use) when this round should run
  /// parallel. Checked per round: eligibility depends on the interner being
  /// in shared mode, which the caller may enable between Run() calls.
  bool UseParallelRound() {
    if (num_threads <= 1 || !semi_naive || state.max_derived_rows != 0 ||
        !state.interner->shared()) {
      return false;
    }
    size_t delta = 0;
    for (const PredState& ps : state.preds) {
      delta += ps.delta_end - ps.delta_begin;
    }
    if (delta < kMinParallelDelta) return false;
    if (pool == nullptr) {
      pool = std::make_unique<ThreadPool>(static_cast<size_t>(num_threads));
      scratch.resize(pool->num_threads());
      for (WorkerScratch& ws : scratch) {
        ws.indexes.resize(state.preds.size());
      }
    }
    return true;
  }

  /// Stratum-scheduled semi-naive evaluation: the SCCs of the predicate
  /// dependency graph run in topological order, so each stratum joins only
  /// against fully converged inputs — on conditioned data, the final
  /// antichain of the lower strata rather than intermediate conditions that
  /// later subsumption would kill. A nonrecursive stratum converges in a
  /// single pass; a recursive one runs delta rounds confined to its own
  /// rules. Rules that cannot fire this run (underivable body predicate,
  /// textual duplicates) are skipped up front. With `cone_heads` set
  /// (RunCone), rules are additionally restricted to cone heads and every
  /// window opens at 0 — the cleared predicates' derivations are gone, so
  /// each stratum re-enumerates all combinations, exactly like the
  /// monolithic RunCone. Emits the same row set as the monolithic schedule:
  /// the per-tuple antichain (or DD Or-merge) is a function of the set of
  /// derivable conditions, not of the order they arrive in, and
  /// CanonicalLeaf makes each combination's emission order-canonical.
  void StratifiedRun(const std::vector<bool>* cone_heads) {
    EvalState& st = state;
    const ProgramAnalysis& an = *analysis;
    const auto& rules = program->rules();

    // Dynamic derivability for this run: a predicate can contribute rows if
    // it is extensional, already has rows (Seed/FireGroundRules may put
    // rows anywhere), or heads a rule whose body is all-derivable. A rule
    // mentioning an underivable predicate enumerates zero combinations in
    // every round of this run — skip it without firing.
    std::vector<bool> derivable(st.preds.size());
    for (size_t p = 0; p < st.preds.size(); ++p) {
      derivable[p] = p < program->num_edb() || !st.preds[p].rows.empty();
    }
    for (bool grew = true; grew;) {
      grew = false;
      for (const DatalogRule& rule : rules) {
        if (derivable[static_cast<size_t>(rule.head.predicate)]) continue;
        bool all = true;
        for (const DatalogAtom& a : rule.body) {
          if (!derivable[static_cast<size_t>(a.predicate)]) {
            all = false;
            break;
          }
        }
        if (all) {
          derivable[static_cast<size_t>(rule.head.predicate)] = true;
          grew = true;
        }
      }
    }

    std::vector<size_t> live;
    for (int scc = 0; scc < an.num_sccs(); ++scc) {
      if (st.aborted) return;
      live.clear();
      for (size_t r : an.SccRules(scc)) {
        if (rules[r].body.empty()) continue;  // ground rules fire elsewhere
        if (cone_heads != nullptr &&
            !(*cone_heads)[static_cast<size_t>(rules[r].head.predicate)]) {
          continue;
        }
        bool dead = an.RuleDuplicate(r);
        for (const DatalogAtom& a : rules[r].body) {
          if (dead) break;
          if (!derivable[static_cast<size_t>(a.predicate)]) dead = true;
        }
        if (dead) {
          ++st.stats.dead_rules_skipped;
          continue;
        }
        live.push_back(r);
      }

      std::vector<size_t>& seen_scc = seen[static_cast<size_t>(scc)];
      if (!live.empty()) {
        // This SCC's pending delta: rows past its seen watermark (all rows
        // in cone mode — the cleared predicates' derivations are gone).
        for (size_t p = 0; p < st.preds.size(); ++p) {
          PredState& ps = st.preds[p];
          ps.delta_begin = cone_heads != nullptr ? 0 : seen_scc[p];
          ps.delta_end = ps.rows.size();
        }
        bool any_delta = false;
        for (size_t r : live) {
          for (const DatalogAtom& a : rules[r].body) {
            const PredState& ps = st.preds[static_cast<size_t>(a.predicate)];
            if (ps.delta_begin != ps.delta_end) {
              any_delta = true;
              break;
            }
          }
          if (any_delta) break;
        }
        if (any_delta) {
          ++st.stats.strata;
          if (!an.SccRecursive(scc)) {
            // Nonrecursive stratum: none of its rules read what it derives,
            // so one pass over the delta is the fixpoint.
            ++st.stats.rounds;
            if (UseParallelRound()) {
              ParallelRound(st, *program, live, *pool, scratch);
            } else {
              SequentialRound(st, *program, live);
            }
          } else {
            bool changed = true;
            while (changed && !st.aborted) {
              changed = false;
              ++st.stats.rounds;
              if (UseParallelRound()) {
                changed = ParallelRound(st, *program, live, *pool, scratch);
              } else {
                changed = SequentialRound(st, *program, live);
              }
              AdvanceDeltas(st);
            }
          }
        }
      }
      if (st.aborted) return;
      // Everything below the current row counts is consumed: this SCC's
      // body predicates live in SCCs <= scc, whose row counts are final for
      // this run once the SCC converges.
      for (size_t p = 0; p < st.preds.size(); ++p) {
        seen_scc[p] = st.preds[p].rows.size();
      }
    }
  }
};

ConditionedFixpoint::ConditionedFixpoint(const DatalogProgram& program,
                                         const DatalogCTableOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->program = &program;
  impl_->semi_naive = options.semi_naive;
  impl_->stratum = options.stratum_schedule;
  impl_->analysis = std::make_unique<ProgramAnalysis>(program);
  impl_->seen.assign(
      static_cast<size_t>(impl_->analysis->num_sccs()),
      std::vector<size_t>(program.num_predicates(), 0));
  EvalState& state = impl_->state;
  state.interner = options.interner != nullptr ? options.interner
                                               : &ConditionInterner::Global();
  impl_->backend =
      MakeConditionBackend(options.condition_backend, *state.interner);
  state.backend = impl_->backend.get();
  state.dd = state.backend->disjunctive();
  state.use_index = options.use_index;
  state.magic_begin = options.magic_pred_begin;
  state.max_derived_rows = options.max_derived_rows;
  state.preds.resize(program.num_predicates());
  impl_->num_threads = options.num_threads > 1 ? options.num_threads : 1;
  impl_->interner_baseline = state.interner->num_conjunctions();
}

ConditionedFixpoint::~ConditionedFixpoint() = default;
ConditionedFixpoint::ConditionedFixpoint(ConditionedFixpoint&&) noexcept =
    default;
ConditionedFixpoint& ConditionedFixpoint::operator=(
    ConditionedFixpoint&&) noexcept = default;

ConditionInterner& ConditionedFixpoint::interner() const {
  return *impl_->state.interner;
}

ConditionBackend& ConditionedFixpoint::backend() const {
  return *impl_->backend;
}

const ProgramAnalysis& ConditionedFixpoint::analysis() const {
  return *impl_->analysis;
}

void ConditionedFixpoint::SetGlobal(ConjId global_id) {
  impl_->state.global_id = global_id;
}

bool ConditionedFixpoint::Seed(int pred, const Tuple& tuple, ConjId cond) {
  if (impl_->state.aborted) return false;
  return Insert(impl_->state, pred, tuple,
                impl_->backend->FromConj(cond));
}

void ConditionedFixpoint::SeedTable(int pred, const CTable& table) {
  EvalState& state = impl_->state;
  for (const CRow& row : table.rows()) {
    if (state.aborted) break;
    Insert(state, pred, row.tuple,
           state.backend->FromConj(row.LocalId(*state.interner)));
  }
}

void ConditionedFixpoint::FireGroundRules() {
  EvalState& state = impl_->state;
  // Empty-body rules are ground facts: the fixpoint loops only enumerate
  // rules through their body atoms, so these fire here, into the pending
  // delta.
  for (const DatalogRule& rule : impl_->program->rules()) {
    if (state.aborted) break;
    if (rule.body.empty()) FireRule(state, rule, /*delta_pos=*/-1);
  }
}

void ConditionedFixpoint::Run() {
  EvalState& state = impl_->state;
  if (impl_->semi_naive && impl_->stratum) {
    // The stratum schedule tracks consumption per SCC as watermarks, not
    // windows: rows seeded (or ground-fired) since the last convergence sit
    // past each SCC's seen mark and become its delta when its turn comes.
    impl_->StratifiedRun(nullptr);
    return;
  }
  // Rows seeded (or ground-fired) since the last convergence sit past every
  // delta window; advancing makes them the pending delta, so a re-entered
  // run fires rules only against combinations involving the new rows.
  AdvanceDeltas(state);
  if (impl_->semi_naive) {
    std::vector<size_t> all_rules(impl_->program->rules().size());
    for (size_t r = 0; r < all_rules.size(); ++r) all_rules[r] = r;
    bool changed = true;
    while (changed && !state.aborted) {
      changed = false;
      ++state.stats.rounds;
      if (impl_->UseParallelRound()) {
        changed = ParallelRound(state, *impl_->program, all_rules,
                                *impl_->pool, impl_->scratch);
      } else {
        changed = SequentialRound(state, *impl_->program, all_rules);
      }
      AdvanceDeltas(state);
    }
  } else {
    bool changed = true;
    while (changed && !state.aborted) {
      changed = false;
      ++state.stats.rounds;
      for (const DatalogRule& rule : impl_->program->rules()) {
        if (state.aborted) break;
        changed |= FireRule(state, rule, /*delta_pos=*/-1);
      }
    }
  }
}

void ConditionedFixpoint::ClearPredicate(int pred) {
  PredState& ps = impl_->state.preds[pred];
  ps.rows.clear();
  ps.by_tuple.clear();
  ps.delta_begin = 0;
  ps.delta_end = 0;
  // Dropping the entries would suffice today; the stamp bump additionally
  // guards any future path that re-creates an entry before the rows regrow
  // past their old count.
  ps.indexes.Clear();
  ++ps.stamp;
  // No stratum has consumed any of the predicate's future rows.
  for (std::vector<size_t>& seen_scc : impl_->seen) {
    seen_scc[static_cast<size_t>(pred)] = 0;
  }
}

void ConditionedFixpoint::RunCone(const std::vector<bool>& cone_heads) {
  EvalState& state = impl_->state;
  assert(cone_heads.size() == state.preds.size());
  // The cone's ground facts first: ClearPredicate dropped them along with
  // everything else, and only body atoms drive the loops below. They must
  // land BEFORE the windows are snapshotted — fired after, they would sit
  // past delta_end, and a first round that derives nothing else would exit
  // without ever advancing them into a window, losing every derivation
  // that joins through them (the next Run()'s leading AdvanceDeltas would
  // discard the pending rows).
  for (const DatalogRule& rule : impl_->program->rules()) {
    if (state.aborted) break;
    if (rule.body.empty() && cone_heads[rule.head.predicate]) {
      FireRule(state, rule, /*delta_pos=*/-1);
    }
  }
  if (impl_->semi_naive && impl_->stratum) {
    // Stratified re-derivation: same cone-head restriction, with each
    // stratum's windows opened at 0 (the cleared predicates' derivations
    // are gone, so every combination re-enumerates) in topological order.
    impl_->StratifiedRun(&cone_heads);
    return;
  }
  // Every current row becomes the pending delta: with the window at
  // [0, rows.size()), a rule's delta_pos=0 firing enumerates exactly the
  // combinations a fresh first round would (earlier-position windows are
  // empty), so cleared predicates re-derive from the surviving state.
  for (PredState& ps : state.preds) {
    ps.delta_begin = 0;
    ps.delta_end = ps.rows.size();
    state.stats.delta_rows += ps.delta_end;
  }
  // Only cone-head rules fire: the cone is closed under head-reachability,
  // so a rule with a non-cone head has no cone predicate in its body — its
  // derivations are all still present and re-firing it could add nothing.
  std::vector<size_t> cone_rules;
  for (size_t r = 0; r < impl_->program->rules().size(); ++r) {
    if (cone_heads[impl_->program->rules()[r].head.predicate]) {
      cone_rules.push_back(r);
    }
  }
  if (impl_->semi_naive) {
    bool changed = true;
    while (changed && !state.aborted) {
      changed = false;
      ++state.stats.rounds;
      if (impl_->UseParallelRound()) {
        changed = ParallelRound(state, *impl_->program, cone_rules,
                                *impl_->pool, impl_->scratch);
      } else {
        changed = SequentialRound(state, *impl_->program, cone_rules);
      }
      AdvanceDeltas(state);
    }
  } else {
    bool changed = true;
    while (changed && !state.aborted) {
      changed = false;
      ++state.stats.rounds;
      for (const DatalogRule& rule : impl_->program->rules()) {
        if (state.aborted) break;
        if (!cone_heads[rule.head.predicate]) continue;
        changed |= FireRule(state, rule, /*delta_pos=*/-1);
      }
    }
    AdvanceDeltas(state);
  }
}

CTable ConditionedFixpoint::Export(int pred) const {
  const EvalState& state = impl_->state;
  CTable t(impl_->program->arity(pred));
  if (state.dd) {
    // Expand each diagram condition back into satisfiable conjunctions —
    // one exported row per disjunct, the conjunctive form every downstream
    // consumer (restriction, IVM deltas, decision procedures) speaks.
    std::vector<ConjId> disjuncts;
    for (const IRow& row : state.preds[pred].rows) {
      if (!row.alive) continue;
      disjuncts.clear();
      state.backend->AppendDisjuncts(row.cond, &disjuncts);
      for (ConjId d : disjuncts) t.AddRow(*row.tuple, d, *state.interner);
    }
    return t;
  }
  for (const IRow& row : state.preds[pred].rows) {
    // Resolving through AddRow's interned overload seeds each row's id
    // cache, so downstream consumers start from the id.
    if (row.alive) t.AddRow(*row.tuple, row.cond, *state.interner);
  }
  return t;
}

size_t ConditionedFixpoint::NumLiveRows(int pred) const {
  size_t n = 0;
  for (const IRow& row : impl_->state.preds[pred].rows) {
    if (row.alive) ++n;
  }
  return n;
}

bool ConditionedFixpoint::aborted() const { return impl_->state.aborted; }

const ConditionedFixpointStats& ConditionedFixpoint::stats() const {
  impl_->state.stats.interner_conjunctions =
      impl_->state.interner->num_conjunctions() - impl_->interner_baseline;
  return impl_->state.stats;
}

CDatabase DatalogOnCTables(const DatalogProgram& program,
                           const CDatabase& database,
                           ConditionedFixpointStats* stats,
                           const DatalogCTableOptions& options) {
  ConditionInterner& interner = options.interner != nullptr
                                    ? *options.interner
                                    : ConditionInterner::Global();
  // Intern the global before constructing the fixpoint so the stats'
  // interner growth covers only the evaluation itself.
  ConjId global_id = database.CombinedGlobalId(interner);
  ConditionedFixpoint fix(program, options);
  fix.SetGlobal(global_id);

  // Seed extensional predicates with the input rows; the seeds form the
  // first delta.
  for (size_t p = 0; p < program.num_edb() && p < database.num_tables();
       ++p) {
    fix.SeedTable(static_cast<int>(p), database.table(p));
  }
  fix.FireGroundRules();
  fix.Run();

  CDatabase out;
  for (size_t p = 0; p < program.num_predicates(); ++p) {
    CTable t = fix.Export(static_cast<int>(p));
    // The carried global keeps the input's materialized form; its id cache
    // is seeded from the already-interned combined id.
    if (p == 0) {
      t.SetGlobal(database.CombinedGlobal(), global_id, interner);
    }
    out.AddTable(std::move(t));
  }
  if (stats != nullptr) *stats = fix.stats();
  return out;
}

namespace {

struct RestrictedRow {
  Tuple tuple;
  ConjId cond;
  bool alive = true;
};

/// True iff row (a_tuple, a_cond) *covers* row (b_tuple, b_cond): in every
/// world satisfying b's condition, a is present too and denotes the same
/// fact — b's condition implies a's, and forces each pair of differing
/// tuple positions equal. This generalizes the fixpoint's same-tuple
/// subsumption across tuples: the magic path derives instances whose tuples
/// carry demand values (e.g. (x,x) under x = 0) where the full path derives
/// the general row (0, x) — the instance's strictly stronger condition
/// forces the tuples to coincide, so it is redundant.
bool Covers(const Tuple& a_tuple, ConjId a_cond, const Tuple& b_tuple,
            ConjId b_cond, ConditionInterner& interner) {
  if (!interner.Implies(b_cond, a_cond)) return false;
  for (size_t i = 0; i < a_tuple.size(); ++i) {
    if (a_tuple[i] == b_tuple[i]) continue;
    CondAtom eq = Eq(a_tuple[i], b_tuple[i]);
    if (IsTriviallyFalse(eq) ||
        !interner.Implies(b_cond, interner.Intern(Conjunction{eq}))) {
      return false;
    }
  }
  return true;
}

}  // namespace

/// Rows whose tuple clashes with a bound constant are dropped, matching a
/// bound constant against a non-constant term conjoins the equality onto the
/// row's condition, rows unsatisfiable together with `global_id` are
/// dropped, every tuple term is resolved to its representative under the
/// condition's forced equalities (the interner's canonical form emits one
/// `rep = member` atom per class membership, `rep` on the left, so a bound
/// null position becomes the goal constant), and only rows not covered by
/// another row survive. Resolution plus the covering antichain make the
/// result canonical: mutually covering rows have equal condition ids and
/// therefore identical resolved tuples, so insertion order cannot matter —
/// which is exactly why the magic and full paths (and a maintained view and
/// its recomputation) restrict to *identical* row sets.
CTable RestrictTableToGoal(const CTable& table,
                           const std::vector<std::optional<ConstId>>& bindings,
                           ConjId global_id, ConditionInterner& interner) {
  std::vector<RestrictedRow> rows;

  for (const CRow& row : table.rows()) {
    ConjId cond = row.LocalId(interner);
    Tuple tuple = row.tuple;
    Conjunction eqs;
    bool mismatch = false;
    for (size_t i = 0; i < bindings.size() && i < tuple.size(); ++i) {
      if (!bindings[i].has_value()) continue;
      CondAtom eq = Eq(Term::Const(*bindings[i]), tuple[i]);
      if (IsTriviallyFalse(eq)) {
        mismatch = true;
        break;
      }
      if (!IsTriviallyTrue(eq)) eqs.Add(eq);
    }
    if (mismatch) continue;
    if (eqs.size() > 0) cond = interner.And(cond, interner.Intern(eqs));
    if (!interner.Satisfiable(interner.And(global_id, cond))) continue;
    // Resolve tuple terms through the condition's equality classes.
    for (const CondAtom& atom : interner.Resolve(cond).atoms()) {
      if (!atom.is_equality) continue;
      for (Term& t : tuple) {
        if (t == atom.rhs) t = atom.lhs;
      }
    }

    bool covered = false;
    for (const RestrictedRow& existing : rows) {
      if (existing.alive &&
          Covers(existing.tuple, existing.cond, tuple, cond, interner)) {
        covered = true;  // duplicates included: a row covers itself
        break;
      }
    }
    if (covered) continue;
    for (RestrictedRow& existing : rows) {
      if (existing.alive &&
          Covers(tuple, cond, existing.tuple, existing.cond, interner)) {
        existing.alive = false;
      }
    }
    rows.push_back(RestrictedRow{std::move(tuple), cond, true});
  }

  CTable out(table.arity());
  for (RestrictedRow& row : rows) {
    if (row.alive) out.AddRow(std::move(row.tuple), row.cond, interner);
  }
  return out;
}

CTable DatalogQueryOnCTables(const DatalogProgram& program,
                             const CDatabase& database, int goal,
                             const std::vector<std::optional<ConstId>>& bindings,
                             ConditionedFixpointStats* stats,
                             const DatalogCTableOptions& options) {
  ConditionInterner& interner = options.interner != nullptr
                                    ? *options.interner
                                    : ConditionInterner::Global();
  ConjId global_id = database.CombinedGlobalId(interner);
  ConditionedFixpointStats local;
  DatalogCTableOptions inner = options;
  CDatabase fixpoint;
  size_t goal_table;
  if (options.use_magic) {
    MagicRewriteResult rewrite = MagicRewrite(program, {goal, bindings});
    inner.magic_pred_begin = static_cast<int>(rewrite.magic_begin);
    fixpoint = DatalogOnCTables(rewrite.program, database, &local, inner);
    local.rules_adorned = rewrite.rules_adorned;
    local.magic_rules = rewrite.magic_rules;
    local.rules_pruned = rewrite.rules_pruned;
    goal_table = static_cast<size_t>(rewrite.goal_predicate);
  } else {
    inner.magic_pred_begin = -1;
    fixpoint = DatalogOnCTables(program, database, &local, inner);
    goal_table = static_cast<size_t>(goal);
  }
  CTable result = RestrictTableToGoal(fixpoint.table(goal_table), bindings,
                                      global_id, interner);
  result.SetGlobal(database.CombinedGlobal(), global_id, interner);
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace pw
