#include "ilalgebra/datalog_ctable.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "condition/binding_env.h"

namespace pw {

namespace {

/// Canonical condition: sorted, deduplicated atoms with trivially true ones
/// removed. Subset comparison then decides subsumption.
using AtomSet = std::vector<CondAtom>;

AtomSet Canonicalize(const Conjunction& c) {
  AtomSet atoms;
  for (const CondAtom& a : c.atoms()) {
    if (!IsTriviallyTrue(a)) atoms.push_back(a);
  }
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  return atoms;
}

bool IsSubset(const AtomSet& small, const AtomSet& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

/// One conditioned fact during evaluation.
struct CondRow {
  Tuple tuple;
  AtomSet cond;

  friend bool operator==(const CondRow&, const CondRow&) = default;
};

struct EvalState {
  const DatalogProgram* program;
  Conjunction global;
  // rows[p] = all kept conditioned rows of predicate p.
  std::vector<std::vector<CondRow>> rows;
  ConditionedFixpointStats stats;
};

/// Inserts a derived row unless subsumed; drops rows subsumed by it.
/// Returns true if the row was added.
bool Insert(EvalState& state, int pred, CondRow row) {
  // Consistency check against the global condition.
  {
    BindingEnv env;
    bool ok = env.Assert(state.global);
    for (const CondAtom& a : row.cond) {
      if (!ok) break;
      ok = env.AssertAtom(a);
    }
    if (!ok) {
      ++state.stats.unsatisfiable_rows;
      return false;
    }
  }
  auto& bucket = state.rows[pred];
  for (const CondRow& existing : bucket) {
    if (existing.tuple == row.tuple && IsSubset(existing.cond, row.cond)) {
      ++state.stats.subsumed_rows;
      return false;  // an already-present weaker condition derives it
    }
  }
  // Remove rows strictly subsumed by the new one.
  std::erase_if(bucket, [&row, &state](const CondRow& existing) {
    bool gone = existing.tuple == row.tuple &&
                IsSubset(row.cond, existing.cond);
    if (gone) ++state.stats.subsumed_rows;
    return gone;
  });
  bucket.push_back(std::move(row));
  ++state.stats.derived_rows;
  return true;
}

/// Matches rule argument terms against a row tuple, extending the rule-scope
/// binding (rule variable -> table term) and accumulating equality atoms
/// between table terms where needed. Returns false on hard mismatch.
bool MatchArgs(const Tuple& args, const Tuple& row,
               std::map<VarId, Term>& binding, AtomSet& cond) {
  for (size_t i = 0; i < args.size(); ++i) {
    Term need = args[i];
    Term have = row[i];
    if (need.is_constant()) {
      CondAtom eq = Eq(need, have);
      if (IsTriviallyFalse(eq)) return false;
      if (!IsTriviallyTrue(eq)) cond.push_back(eq);
      continue;
    }
    auto [it, inserted] = binding.emplace(need.variable(), have);
    if (!inserted) {
      CondAtom eq = Eq(it->second, have);
      if (IsTriviallyFalse(eq)) return false;
      if (!IsTriviallyTrue(eq)) cond.push_back(eq);
    }
  }
  return true;
}

/// Fires one rule against the current rows, inserting head derivations.
/// Returns true if anything new was added.
bool FireRule(EvalState& state, const DatalogRule& rule) {
  bool added = false;
  std::map<VarId, Term> binding;
  AtomSet cond;

  std::function<void(size_t)> go = [&](size_t pos) {
    if (pos == rule.body.size()) {
      Tuple head;
      head.reserve(rule.head.args.size());
      for (const Term& t : rule.head.args) {
        head.push_back(t.is_constant() ? t : binding.at(t.variable()));
      }
      CondRow out{std::move(head), cond};
      std::sort(out.cond.begin(), out.cond.end());
      out.cond.erase(std::unique(out.cond.begin(), out.cond.end()),
                     out.cond.end());
      added |= Insert(state, rule.head.predicate, std::move(out));
      return;
    }
    const DatalogAtom& atom = rule.body[pos];
    // Iterate over a snapshot (Insert may mutate the bucket of the head
    // predicate; body predicates of the same index need stable iteration).
    std::vector<CondRow> snapshot = state.rows[atom.predicate];
    for (const CondRow& row : snapshot) {
      auto saved_binding = binding;
      size_t saved_cond = cond.size();
      cond.insert(cond.end(), row.cond.begin(), row.cond.end());
      if (MatchArgs(atom.args, row.tuple, binding, cond)) go(pos + 1);
      binding = std::move(saved_binding);
      cond.resize(saved_cond);
    }
  };
  go(0);
  return added;
}

}  // namespace

CDatabase DatalogOnCTables(const DatalogProgram& program,
                           const CDatabase& database,
                           ConditionedFixpointStats* stats) {
  EvalState state;
  state.program = &program;
  state.global = database.CombinedGlobal();
  state.rows.resize(program.num_predicates());

  // Seed extensional predicates with the input rows.
  for (size_t p = 0; p < program.num_edb() && p < database.num_tables();
       ++p) {
    for (const CRow& row : database.table(p).rows()) {
      Insert(state, static_cast<int>(p),
             CondRow{row.tuple, Canonicalize(row.local)});
    }
  }

  // Naive conditioned fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    ++state.stats.rounds;
    for (const DatalogRule& rule : program.rules()) {
      changed |= FireRule(state, rule);
    }
  }

  CDatabase out;
  for (size_t p = 0; p < program.num_predicates(); ++p) {
    CTable t(program.arity(static_cast<int>(p)));
    for (const CondRow& row : state.rows[p]) {
      t.AddRow(row.tuple, Conjunction(std::vector<CondAtom>(
                              row.cond.begin(), row.cond.end())));
    }
    if (p == 0) t.SetGlobal(state.global);
    out.AddTable(std::move(t));
  }
  if (stats != nullptr) *stats = state.stats;
  return out;
}

}  // namespace pw
