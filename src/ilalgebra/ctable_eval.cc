#include "ilalgebra/ctable_eval.h"

#include <vector>

namespace pw {

namespace {

Term ResolveTerm(const ColOrConst& o, const Tuple& tuple) {
  return o.is_column ? tuple[o.column] : Term::Const(o.constant);
}

/// Instantiates one select atom against a row's tuple; appends to `local`.
/// Returns false if the atom is trivially false for this row.
bool ApplySelectAtom(const SelectAtom& atom, const Tuple& tuple,
                     Conjunction& local) {
  Term l = ResolveTerm(atom.lhs, tuple);
  Term r = ResolveTerm(atom.rhs, tuple);
  CondAtom cond = atom.is_equality ? Eq(l, r) : Neq(l, r);
  if (IsTriviallyFalse(cond)) return false;
  if (!IsTriviallyTrue(cond)) local.Add(cond);
  return true;
}

// --- Interned fast path ----------------------------------------------------
//
// Local conditions travel as ConjIds through the whole expression tree and
// are materialized exactly once at the end; every conjoin is a memoized
// pairwise And, and rows whose condition canonicalizes to false disappear on
// the spot. Since ids are canonical, the |T1| x |T2| pair loop of a product
// touches only |distinct(T1)| x |distinct(T2)| closures.

struct InternedRow {
  Tuple tuple;
  ConjId cond;
};

struct InternedTable {
  int arity = 0;
  std::vector<InternedRow> rows;
};

std::optional<InternedTable> EvalInterned(const RaExpr& expr,
                                          const CDatabase& database,
                                          ConditionInterner& interner) {
  switch (expr.op()) {
    case RaOp::kRel: {
      InternedTable out{expr.arity(), {}};
      const CTable& in = database.table(expr.rel_index());
      out.rows.reserve(in.num_rows());
      for (const CRow& row : in.rows()) {
        // The row's memoized id: no re-canonicalization when the table was
        // produced by an interned pipeline (or queried before).
        ConjId cond = row.LocalId(interner);
        if (!interner.Satisfiable(cond)) continue;
        out.rows.push_back({row.tuple, cond});
      }
      return out;
    }
    case RaOp::kConstRel: {
      InternedTable out{expr.arity(), {}};
      for (const Fact& f : expr.const_relation()) {
        out.rows.push_back({ToTuple(f), ConditionInterner::kTrueConj});
      }
      return out;
    }
    case RaOp::kProject: {
      auto in = EvalInterned(expr.input(), database, interner);
      if (!in) return std::nullopt;
      InternedTable out{expr.arity(), {}};
      out.rows.reserve(in->rows.size());
      for (InternedRow& row : in->rows) {
        Tuple t;
        t.reserve(expr.outputs().size());
        for (const ColOrConst& o : expr.outputs()) {
          t.push_back(ResolveTerm(o, row.tuple));
        }
        out.rows.push_back({std::move(t), row.cond});
      }
      return out;
    }
    case RaOp::kSelect: {
      auto in = EvalInterned(expr.input(), database, interner);
      if (!in) return std::nullopt;
      InternedTable out{expr.arity(), {}};
      for (InternedRow& row : in->rows) {
        Conjunction sel;
        bool keep = true;
        for (const SelectAtom& a : expr.atoms()) {
          if (!ApplySelectAtom(a, row.tuple, sel)) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        ConjId combined = interner.And(row.cond, interner.Intern(sel));
        if (!interner.Satisfiable(combined)) continue;  // row never on
        out.rows.push_back({std::move(row.tuple), combined});
      }
      return out;
    }
    case RaOp::kProduct: {
      auto l = EvalInterned(expr.left(), database, interner);
      auto r = EvalInterned(expr.right(), database, interner);
      if (!l || !r) return std::nullopt;
      InternedTable out{expr.arity(), {}};
      for (const InternedRow& rl : l->rows) {
        for (const InternedRow& rr : r->rows) {
          ConjId combined = interner.And(rl.cond, rr.cond);
          if (!interner.Satisfiable(combined)) continue;
          Tuple t = rl.tuple;
          t.insert(t.end(), rr.tuple.begin(), rr.tuple.end());
          out.rows.push_back({std::move(t), combined});
        }
      }
      return out;
    }
    case RaOp::kUnion: {
      auto l = EvalInterned(expr.left(), database, interner);
      auto r = EvalInterned(expr.right(), database, interner);
      if (!l || !r) return std::nullopt;
      InternedTable out{expr.arity(), std::move(l->rows)};
      out.rows.insert(out.rows.end(),
                      std::make_move_iterator(r->rows.begin()),
                      std::make_move_iterator(r->rows.end()));
      return out;
    }
    case RaOp::kDiff:
      return std::nullopt;  // not positive existential
  }
  return std::nullopt;
}

// --- Plain seed path -------------------------------------------------------

std::optional<CTable> EvalPlain(const RaExpr& expr,
                                const CDatabase& database) {
  switch (expr.op()) {
    case RaOp::kRel: {
      CTable out(expr.arity());
      const CTable& in = database.table(expr.rel_index());
      for (const CRow& row : in.rows()) out.AddRow(row.tuple, row.local());
      return out;
    }
    case RaOp::kConstRel: {
      CTable out(expr.arity());
      for (const Fact& f : expr.const_relation()) out.AddRow(ToTuple(f));
      return out;
    }
    case RaOp::kProject: {
      auto in = EvalPlain(expr.input(), database);
      if (!in) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& row : in->rows()) {
        Tuple t;
        t.reserve(expr.outputs().size());
        for (const ColOrConst& o : expr.outputs()) {
          t.push_back(ResolveTerm(o, row.tuple));
        }
        out.AddRow(std::move(t), row.local());
      }
      return out;
    }
    case RaOp::kSelect: {
      auto in = EvalPlain(expr.input(), database);
      if (!in) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& row : in->rows()) {
        Conjunction local = row.local();
        bool keep = true;
        for (const SelectAtom& a : expr.atoms()) {
          if (!ApplySelectAtom(a, row.tuple, local)) {
            keep = false;
            break;
          }
        }
        if (keep) out.AddRow(row.tuple, std::move(local));
      }
      return out;
    }
    case RaOp::kProduct: {
      auto l = EvalPlain(expr.left(), database);
      auto r = EvalPlain(expr.right(), database);
      if (!l || !r) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& rl : l->rows()) {
        for (const CRow& rr : r->rows()) {
          Tuple t = rl.tuple;
          t.insert(t.end(), rr.tuple.begin(), rr.tuple.end());
          out.AddRow(std::move(t), Conjunction::And(rl.local(), rr.local()));
        }
      }
      return out;
    }
    case RaOp::kUnion: {
      auto l = EvalPlain(expr.left(), database);
      auto r = EvalPlain(expr.right(), database);
      if (!l || !r) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& row : l->rows()) out.AddRow(row.tuple, row.local());
      for (const CRow& row : r->rows()) out.AddRow(row.tuple, row.local());
      return out;
    }
    case RaOp::kDiff:
      return std::nullopt;  // not positive existential
  }
  return std::nullopt;
}

}  // namespace

std::optional<CTable> EvalOnCTables(const RaExpr& expr,
                                    const CDatabase& database,
                                    const CTableEvalOptions& options) {
  if (!options.use_interner) return EvalPlain(expr, database);
  ConditionInterner& interner = options.interner != nullptr
                                    ? *options.interner
                                    : ConditionInterner::Global();
  auto interned = EvalInterned(expr, database, interner);
  if (!interned) return std::nullopt;
  CTable out(interned->arity);
  for (InternedRow& row : interned->rows) {
    // Materializes the canonical form and seeds the row's id cache, so the
    // next interned consumer of this table starts from the id.
    out.AddRow(std::move(row.tuple), row.cond, interner);
  }
  return out;
}

std::optional<CDatabase> EvalQueryOnCTables(const RaQuery& query,
                                            const CDatabase& database,
                                            const CTableEvalOptions& options) {
  CDatabase out;
  for (size_t i = 0; i < query.size(); ++i) {
    auto table = EvalOnCTables(query[i], database, options);
    if (!table) return std::nullopt;
    if (i == 0) table->SetGlobal(database.CombinedGlobal());
    out.AddTable(std::move(*table));
  }
  if (query.empty()) {
    CTable sentinel(0);
    sentinel.SetGlobal(database.CombinedGlobal());
    out.AddTable(std::move(sentinel));
  }
  return out;
}

}  // namespace pw
