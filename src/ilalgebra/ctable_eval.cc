#include "ilalgebra/ctable_eval.h"

namespace pw {

namespace {

Term ResolveTerm(const ColOrConst& o, const Tuple& tuple) {
  return o.is_column ? tuple[o.column] : Term::Const(o.constant);
}

/// Instantiates one select atom against a row's tuple; appends to `local`.
/// Returns false if the atom is trivially false for this row.
bool ApplySelectAtom(const SelectAtom& atom, const Tuple& tuple,
                     Conjunction& local) {
  Term l = ResolveTerm(atom.lhs, tuple);
  Term r = ResolveTerm(atom.rhs, tuple);
  CondAtom cond = atom.is_equality ? Eq(l, r) : Neq(l, r);
  if (IsTriviallyFalse(cond)) return false;
  if (!IsTriviallyTrue(cond)) local.Add(cond);
  return true;
}

}  // namespace

std::optional<CTable> EvalOnCTables(const RaExpr& expr,
                                    const CDatabase& database) {
  switch (expr.op()) {
    case RaOp::kRel: {
      CTable out(expr.arity());
      const CTable& in = database.table(expr.rel_index());
      for (const CRow& row : in.rows()) out.AddRow(row.tuple, row.local);
      return out;
    }
    case RaOp::kConstRel: {
      CTable out(expr.arity());
      for (const Fact& f : expr.const_relation()) out.AddRow(ToTuple(f));
      return out;
    }
    case RaOp::kProject: {
      auto in = EvalOnCTables(expr.input(), database);
      if (!in) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& row : in->rows()) {
        Tuple t;
        t.reserve(expr.outputs().size());
        for (const ColOrConst& o : expr.outputs()) {
          t.push_back(ResolveTerm(o, row.tuple));
        }
        out.AddRow(std::move(t), row.local);
      }
      return out;
    }
    case RaOp::kSelect: {
      auto in = EvalOnCTables(expr.input(), database);
      if (!in) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& row : in->rows()) {
        Conjunction local = row.local;
        bool keep = true;
        for (const SelectAtom& a : expr.atoms()) {
          if (!ApplySelectAtom(a, row.tuple, local)) {
            keep = false;
            break;
          }
        }
        if (keep) out.AddRow(row.tuple, std::move(local));
      }
      return out;
    }
    case RaOp::kProduct: {
      auto l = EvalOnCTables(expr.left(), database);
      auto r = EvalOnCTables(expr.right(), database);
      if (!l || !r) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& rl : l->rows()) {
        for (const CRow& rr : r->rows()) {
          Tuple t = rl.tuple;
          t.insert(t.end(), rr.tuple.begin(), rr.tuple.end());
          out.AddRow(std::move(t), Conjunction::And(rl.local, rr.local));
        }
      }
      return out;
    }
    case RaOp::kUnion: {
      auto l = EvalOnCTables(expr.left(), database);
      auto r = EvalOnCTables(expr.right(), database);
      if (!l || !r) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& row : l->rows()) out.AddRow(row.tuple, row.local);
      for (const CRow& row : r->rows()) out.AddRow(row.tuple, row.local);
      return out;
    }
    case RaOp::kDiff:
      return std::nullopt;  // not positive existential
  }
  return std::nullopt;
}

std::optional<CDatabase> EvalQueryOnCTables(const RaQuery& query,
                                            const CDatabase& database) {
  CDatabase out;
  for (size_t i = 0; i < query.size(); ++i) {
    auto table = EvalOnCTables(query[i], database);
    if (!table) return std::nullopt;
    if (i == 0) table->SetGlobal(database.CombinedGlobal());
    out.AddTable(std::move(*table));
  }
  if (query.empty()) {
    CTable sentinel(0);
    sentinel.SetGlobal(database.CombinedGlobal());
    out.AddTable(std::move(sentinel));
  }
  return out;
}

}  // namespace pw
