#include "ilalgebra/ctable_eval.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "ilalgebra/join_plan.h"
#include "tables/tuple_index.h"

namespace pw {

namespace {

Term ResolveTerm(const ColOrConst& o, const Tuple& tuple) {
  return o.is_column ? tuple[o.column] : Term::Const(o.constant);
}

/// Instantiates one atom from already-resolved terms; appends to `local`.
/// Returns false if the atom is trivially false for these terms.
bool ApplyAtomTerms(bool is_equality, Term l, Term r, Conjunction& local) {
  CondAtom cond = is_equality ? Eq(l, r) : Neq(l, r);
  if (IsTriviallyFalse(cond)) return false;
  if (!IsTriviallyTrue(cond)) local.Add(cond);
  return true;
}

/// Instantiates one select atom against a row's tuple; appends to `local`.
/// Returns false if the atom is trivially false for this row.
bool ApplySelectAtom(const SelectAtom& atom, const Tuple& tuple,
                     Conjunction& local) {
  return ApplyAtomTerms(atom.is_equality, ResolveTerm(atom.lhs, tuple),
                        ResolveTerm(atom.rhs, tuple), local);
}

/// True iff no atom instantiates to a trivially false ground atom on
/// `tuple` — a row failing this can never survive the selection, whatever
/// the other leaves contribute. (Pre-filter only: appended condition atoms
/// are discarded; the replay re-applies every atom in query order.)
bool PassesFilter(const std::vector<SelectAtom>& atoms, const Tuple& tuple) {
  Conjunction scratch;
  for (const SelectAtom& a : atoms) {
    if (!ApplySelectAtom(a, tuple, scratch)) return false;
  }
  return true;
}

// --- Planned n-ary join execution -------------------------------------------
//
// Conjunctive prefixes (select*/project* over an n-ary product tree) are
// normalized and partitioned by the join planner (ilalgebra/join_plan.h)
// and executed here as a greedily-ordered sequence of hash-join steps over
// row-id combinations:
//
//   - every leaf is evaluated once and its pushdown conjuncts applied
//     (dropped rows keep their id, so relation-ref leaves probe the
//     CTable's cached, stamp-invalidated index across queries);
//   - intermediate state is a vector of leaf-row-id combinations — no
//     intermediate tuple or condition is materialized, which is what "push
//     projections below joins" buys: a column not needed by a later key, a
//     conjunct, or the output is never touched;
//   - each step probes the new leaf's index with the key resolved from the
//     partial combination (non-ground keys fall back to a scan of the
//     leaf), applies the conjuncts that became decidable, and (interned)
//     conjoins conditions with unsatisfiable-prefix pruning;
//   - finally the surviving combinations are sorted lexicographically by
//     their leaf-id vector — exactly the order the nested loops enumerate —
//     and emitted through the plan's output spec (and, on the plain path,
//     the replay event list, which rebuilds each local condition
//     byte-identically: leaf locals and instantiated atoms in tree order).
//
// The join machinery is pure candidate pruning: a skipped combination is
// one the nested loops would have dropped on a trivially-false ground atom
// or (interned) an unsatisfiable condition, so planned output == nested
// output, row for row.

// --- Interned fast path ----------------------------------------------------
//
// Local conditions travel as ConjIds through the whole expression tree and
// are materialized exactly once at the end; every conjoin is a memoized
// pairwise And, and rows whose condition canonicalizes to false disappear on
// the spot. Since ids are canonical, the order in which leaf conditions and
// conjunct batches are conjoined does not matter: the accumulated id of a
// surviving combination equals the id the nested loops would produce.

struct InternedRow {
  Tuple tuple;
  ConjId cond;
};

struct InternedTable {
  int arity = 0;
  std::vector<InternedRow> rows;
};

std::optional<InternedTable> EvalInterned(const RaExpr& expr,
                                          const CDatabase& database,
                                          ConditionInterner& interner,
                                          const CTableEvalOptions& options,
                                          CTableEvalStats& stats,
                                          bool skip_plan = false);

/// Conjoins the instantiated pushdown atoms onto a leaf row's condition.
/// Returns false when the row can never pair (a trivially false atom, or an
/// unsatisfiable strengthened condition). Pushing leaf atoms into leaf
/// conditions is output-preserving on this path: the per-combination
/// condition is canonicalized from the union of all contributed atoms, so
/// it interns to the same id whether a leaf atom joined before or during
/// pairing.
bool StrengthenInterned(const std::vector<SelectAtom>& atoms,
                        const Tuple& tuple, ConditionInterner& interner,
                        ConjId& cond) {
  Conjunction sel;
  for (const SelectAtom& a : atoms) {
    if (!ApplySelectAtom(a, tuple, sel)) return false;
  }
  if (sel.size() > 0) cond = interner.And(cond, interner.Intern(sel));
  return interner.Satisfiable(cond);
}

/// One evaluated, pushdown-filtered leaf of an interned planned join. Rows
/// keep their ids (kFalseConj marks a dropped row) so a relation-ref leaf
/// can probe the source CTable's cached, stamp-invalidated index — reused
/// across queries and fixpoint rounds; any other subexpression is evaluated
/// and indexed ephemerally.
struct PlannedLeafInterned {
  const CTable* table = nullptr;  // relation-ref leaves: cached index owner
  InternedTable owned;            // other leaves: the evaluated subtree
  std::vector<const Tuple*> tuples;
  std::vector<ConjId> conds;      // kFalseConj = dropped before pairing
  size_t live = 0;
};

std::optional<InternedTable> EvalPlannedInterned(
    const RaExpr& expr, const JoinPlan& plan, const CDatabase& database,
    ConditionInterner& interner, const CTableEvalOptions& options,
    CTableEvalStats& stats) {
  const size_t n = plan.leaves.size();
  std::vector<PlannedLeafInterned> leaves(n);
  for (size_t k = 0; k < n; ++k) {
    const JoinLeaf& spec = plan.leaves[k];
    PlannedLeafInterned& leaf = leaves[k];
    if (spec.expr.op() == RaOp::kRel) {
      // Row ids must stay aligned with the table (its cached index covers
      // every row), so dropped rows keep their slot, marked kFalseConj.
      leaf.table = &database.table(spec.expr.rel_index());
      leaf.tuples.reserve(leaf.table->num_rows());
      leaf.conds.reserve(leaf.table->num_rows());
      for (const CRow& row : leaf.table->rows()) {
        ConjId cond = row.LocalId(interner);
        if (!interner.Satisfiable(cond)) {
          // An unsatisfiable base condition is not a pushdown drop — the
          // nested kRel path skips these rows without counting either.
          cond = ConditionInterner::kFalseConj;
        } else if (!StrengthenInterned(plan.pushdown[k], row.tuple, interner,
                                       cond)) {
          ++stats.pushdown_dropped_rows;
          cond = ConditionInterner::kFalseConj;
        }
        leaf.tuples.push_back(&row.tuple);
        leaf.conds.push_back(cond);
      }
    } else {
      // An evaluated subtree is indexed ephemerally, so filtered rows can
      // be compacted out before indexing (relative order — and with it the
      // output's lexicographic order — is preserved).
      auto r = EvalInterned(spec.expr, database, interner, options, stats);
      if (!r) return std::nullopt;
      leaf.owned = std::move(*r);
      leaf.tuples.reserve(leaf.owned.rows.size());
      leaf.conds.reserve(leaf.owned.rows.size());
      for (InternedRow& row : leaf.owned.rows) {
        ConjId cond = row.cond;
        if (!StrengthenInterned(plan.pushdown[k], row.tuple, interner,
                                cond)) {
          ++stats.pushdown_dropped_rows;
          continue;
        }
        leaf.tuples.push_back(&row.tuple);
        leaf.conds.push_back(cond);
      }
    }
    for (ConjId c : leaf.conds) {
      leaf.live += c != ConditionInterner::kFalseConj;
    }
  }
  ++stats.planned_joins;
  stats.planned_join_leaves += n;
  stats.conjuncts_pushed += plan.conjuncts_pushed;
  stats.projections_sunk += plan.projections_sunk;

  std::vector<size_t> live(n);
  for (size_t k = 0; k < n; ++k) live[k] = leaves[k].live;
  std::vector<JoinStep> steps = OrderJoinSteps(plan, live);

  auto term_at = [&](const uint32_t* ids, int col) -> Term {
    int k = plan.col_leaf[col];
    return (*leaves[k].tuples[ids[k]])[col - plan.leaves[k].base];
  };
  auto resolve = [&](const uint32_t* ids, const ColOrConst& o) -> Term {
    return o.is_column ? term_at(ids, o.column) : Term::Const(o.constant);
  };

  // Constant conjuncts decide emptiness once, at the seed.
  {
    Conjunction scratch;
    for (int ci : steps[0].conjuncts) {
      const SelectAtom& a = plan.conjuncts[ci].atom;
      if (!ApplyAtomTerms(a.is_equality, Term::Const(a.lhs.constant),
                          Term::Const(a.rhs.constant), scratch)) {
        return InternedTable{expr.arity(), {}};
      }
    }
  }

  std::vector<uint32_t> combos;  // stride n; unjoined leaves hold 0
  std::vector<ConjId> conds;
  {
    const int seed = steps[0].leaf;
    const PlannedLeafInterned& sl = leaves[seed];
    for (size_t i = 0; i < sl.conds.size(); ++i) {
      if (sl.conds[i] == ConditionInterner::kFalseConj) continue;
      size_t at = combos.size();
      combos.resize(at + n, 0);
      combos[at + seed] = static_cast<uint32_t>(i);
      conds.push_back(sl.conds[i]);
    }
  }

  Tuple key;
  std::vector<size_t> candidates;
  std::vector<uint32_t> scratch(n);
  for (size_t si = 1; si < steps.size(); ++si) {
    const JoinStep& step = steps[si];
    const PlannedLeafInterned& bl = leaves[step.leaf];
    const size_t num_build = bl.tuples.size();
    const TupleIndex* index = nullptr;
    std::unique_ptr<TupleIndex> ephemeral;
    if (!step.build_cols.empty()) {
      ++stats.hash_joins;
      if (bl.table != nullptr) {
        bool built = false;
        bool extended = false;
        index = &bl.table->Index(step.build_cols, &built, &extended);
        stats.index_builds += built;
        stats.index_extends += extended;
      } else {
        ephemeral = std::make_unique<TupleIndex>(step.build_cols);
        ++stats.index_builds;
        for (size_t i = 0; i < num_build; ++i) {
          ephemeral->Add(*bl.tuples[i], i);
        }
        index = ephemeral.get();
      }
    }
    std::vector<uint32_t> next;
    std::vector<ConjId> next_conds;
    const size_t num_combos = conds.size();
    for (size_t c = 0; c < num_combos; ++c) {
      const uint32_t* ids = combos.data() + c * n;
      bool keyed = false;
      if (index != nullptr) {
        key.clear();
        for (int col : step.probe_cols) key.push_back(term_at(ids, col));
        // A key with a null in it matches any build row under a condition,
        // so only ground keys can probe; others fall back to the full scan.
        keyed = TupleIndex::IsGroundKey(key);
        if (keyed) {
          ++stats.index_probes;
          candidates = index->Candidates(key, 0, num_build);
          stats.index_hits += candidates.size();
        }
      }
      size_t count = keyed ? candidates.size() : num_build;
      (keyed ? stats.join_pairs : stats.scan_pairs) += count;
      std::copy(ids, ids + n, scratch.begin());
      for (size_t t = 0; t < count; ++t) {
        size_t id = keyed ? candidates[t] : t;
        ConjId rcond = bl.conds[id];
        if (rcond == ConditionInterner::kFalseConj) continue;
        ConjId combined = interner.And(conds[c], rcond);
        if (!interner.Satisfiable(combined)) continue;
        scratch[step.leaf] = static_cast<uint32_t>(id);
        Conjunction sel;
        bool keep = true;
        for (int ci : step.conjuncts) {
          const SelectAtom& a = plan.conjuncts[ci].atom;
          if (!ApplyAtomTerms(a.is_equality, resolve(scratch.data(), a.lhs),
                              resolve(scratch.data(), a.rhs), sel)) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        if (sel.size() > 0) {
          combined = interner.And(combined, interner.Intern(sel));
          if (!interner.Satisfiable(combined)) continue;
        }
        next.insert(next.end(), scratch.begin(), scratch.end());
        next_conds.push_back(combined);
      }
    }
    combos.swap(next);
    conds.swap(next_conds);
  }

  // Emit in nested-loop order: lexicographic in the leaf-id vector.
  const size_t num_out = conds.size();
  std::vector<uint32_t> order(num_out);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const uint32_t* ra = combos.data() + static_cast<size_t>(a) * n;
    const uint32_t* rb = combos.data() + static_cast<size_t>(b) * n;
    return std::lexicographical_compare(ra, ra + n, rb, rb + n);
  });
  InternedTable out{expr.arity(), {}};
  out.rows.reserve(num_out);
  for (uint32_t oi : order) {
    const uint32_t* ids = combos.data() + static_cast<size_t>(oi) * n;
    Tuple t;
    t.reserve(plan.outputs.size());
    for (const ColOrConst& o : plan.outputs) t.push_back(resolve(ids, o));
    out.rows.push_back({std::move(t), conds[oi]});
  }
  return out;
}

/// `skip_plan` suppresses the planning attempt: when an enclosing node of
/// the same select*/project*/product prefix already planned and failed, a
/// descendant sees a subset of its conjuncts over the same leaves, so it
/// cannot fuse either — re-flattening would be quadratic rework.
std::optional<InternedTable> EvalInterned(const RaExpr& expr,
                                          const CDatabase& database,
                                          ConditionInterner& interner,
                                          const CTableEvalOptions& options,
                                          CTableEvalStats& stats,
                                          bool skip_plan) {
  if (!skip_plan && options.use_hash_join &&
      (expr.op() == RaOp::kSelect || expr.op() == RaOp::kProject ||
       expr.op() == RaOp::kProduct)) {
    JoinPlan plan =
        PlanJoin(expr, JoinPlanOptions{options.binary_join_only});
    if (plan.fused) {
      return EvalPlannedInterned(expr, plan, database, interner, options,
                                 stats);
    }
  }
  switch (expr.op()) {
    case RaOp::kRel: {
      InternedTable out{expr.arity(), {}};
      const CTable& in = database.table(expr.rel_index());
      out.rows.reserve(in.num_rows());
      for (const CRow& row : in.rows()) {
        // The row's memoized id: no re-canonicalization when the table was
        // produced by an interned pipeline (or queried before).
        ConjId cond = row.LocalId(interner);
        if (!interner.Satisfiable(cond)) continue;
        out.rows.push_back({row.tuple, cond});
      }
      return out;
    }
    case RaOp::kConstRel: {
      InternedTable out{expr.arity(), {}};
      for (const Fact& f : expr.const_relation()) {
        out.rows.push_back({ToTuple(f), ConditionInterner::kTrueConj});
      }
      return out;
    }
    case RaOp::kProject: {
      auto in = EvalInterned(expr.input(), database, interner, options, stats,
                             /*skip_plan=*/true);
      if (!in) return std::nullopt;
      InternedTable out{expr.arity(), {}};
      out.rows.reserve(in->rows.size());
      for (InternedRow& row : in->rows) {
        Tuple t;
        t.reserve(expr.outputs().size());
        for (const ColOrConst& o : expr.outputs()) {
          t.push_back(ResolveTerm(o, row.tuple));
        }
        out.rows.push_back({std::move(t), row.cond});
      }
      return out;
    }
    case RaOp::kSelect: {
      auto in = EvalInterned(expr.input(), database, interner, options, stats,
                             /*skip_plan=*/true);
      if (!in) return std::nullopt;
      InternedTable out{expr.arity(), {}};
      for (InternedRow& row : in->rows) {
        Conjunction sel;
        bool keep = true;
        for (const SelectAtom& a : expr.atoms()) {
          if (!ApplySelectAtom(a, row.tuple, sel)) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        ConjId combined = interner.And(row.cond, interner.Intern(sel));
        if (!interner.Satisfiable(combined)) continue;  // row never on
        out.rows.push_back({std::move(row.tuple), combined});
      }
      return out;
    }
    case RaOp::kProduct: {
      // In binary-only mode the product operands were atomic leaves of the
      // failed plan — their inner structure was never flattened, so they
      // must still get their own planning attempt.
      bool skip = !options.binary_join_only;
      auto l = EvalInterned(expr.left(), database, interner, options, stats,
                            skip);
      auto r = EvalInterned(expr.right(), database, interner, options, stats,
                            skip);
      if (!l || !r) return std::nullopt;
      ++stats.nested_loop_products;
      stats.scan_pairs += l->rows.size() * r->rows.size();
      InternedTable out{expr.arity(), {}};
      for (const InternedRow& rl : l->rows) {
        for (const InternedRow& rr : r->rows) {
          ConjId combined = interner.And(rl.cond, rr.cond);
          if (!interner.Satisfiable(combined)) continue;
          Tuple t = rl.tuple;
          t.insert(t.end(), rr.tuple.begin(), rr.tuple.end());
          out.rows.push_back({std::move(t), combined});
        }
      }
      return out;
    }
    case RaOp::kUnion: {
      auto l = EvalInterned(expr.left(), database, interner, options, stats);
      auto r = EvalInterned(expr.right(), database, interner, options, stats);
      if (!l || !r) return std::nullopt;
      InternedTable out{expr.arity(), std::move(l->rows)};
      out.rows.insert(out.rows.end(),
                      std::make_move_iterator(r->rows.begin()),
                      std::make_move_iterator(r->rows.end()));
      return out;
    }
    case RaOp::kDiff:
      return std::nullopt;  // not positive existential
  }
  return std::nullopt;
}

// --- Plain seed path -------------------------------------------------------

std::optional<CTable> EvalPlain(const RaExpr& expr, const CDatabase& database,
                                const CTableEvalOptions& options,
                                CTableEvalStats& stats,
                                bool skip_plan = false);

/// One evaluated, pushdown-filtered leaf of a plain planned join. All rows
/// keep their ids (`dropped` marks) so a relation-ref leaf probes the
/// source CTable's cached index; other subexpressions are evaluated and
/// indexed ephemerally.
struct PlannedLeafPlain {
  const CTable* table = nullptr;  // relation-ref leaves: cached index owner
  std::optional<CTable> owned;    // other leaves: the evaluated subtree
  std::vector<const CRow*> rows;  // all rows, id-aligned
  std::vector<char> dropped;      // pushdown-dropped marks
  size_t live = 0;
};

std::optional<CTable> EvalPlannedPlain(const RaExpr& expr,
                                       const JoinPlan& plan,
                                       const CDatabase& database,
                                       const CTableEvalOptions& options,
                                       CTableEvalStats& stats) {
  const size_t n = plan.leaves.size();
  std::vector<PlannedLeafPlain> leaves(n);
  for (size_t k = 0; k < n; ++k) {
    const JoinLeaf& spec = plan.leaves[k];
    PlannedLeafPlain& leaf = leaves[k];
    if (spec.expr.op() == RaOp::kRel) {
      // Id-aligned with the table (cached index); dropped rows are marked.
      leaf.table = &database.table(spec.expr.rel_index());
      leaf.rows.reserve(leaf.table->num_rows());
      leaf.dropped.reserve(leaf.table->num_rows());
      for (const CRow& row : leaf.table->rows()) {
        bool ok = PassesFilter(plan.pushdown[k], row.tuple);
        if (!ok) ++stats.pushdown_dropped_rows;
        leaf.rows.push_back(&row);
        leaf.dropped.push_back(!ok);
        leaf.live += ok;
      }
    } else {
      // Ephemeral index: compact filtered rows out before indexing
      // (relative order, and with it the output order, is preserved).
      auto r = EvalPlain(spec.expr, database, options, stats);
      if (!r) return std::nullopt;
      leaf.owned = std::move(*r);
      leaf.rows.reserve(leaf.owned->num_rows());
      for (const CRow& row : leaf.owned->rows()) {
        if (!PassesFilter(plan.pushdown[k], row.tuple)) {
          ++stats.pushdown_dropped_rows;
          continue;
        }
        leaf.rows.push_back(&row);
      }
      leaf.dropped.assign(leaf.rows.size(), 0);
      leaf.live = leaf.rows.size();
    }
  }
  ++stats.planned_joins;
  stats.planned_join_leaves += n;
  stats.conjuncts_pushed += plan.conjuncts_pushed;
  stats.projections_sunk += plan.projections_sunk;

  std::vector<size_t> live(n);
  for (size_t k = 0; k < n; ++k) live[k] = leaves[k].live;
  std::vector<JoinStep> steps = OrderJoinSteps(plan, live);

  auto term_at = [&](const uint32_t* ids, int col) -> Term {
    int k = plan.col_leaf[col];
    return leaves[k].rows[ids[k]]->tuple[col - plan.leaves[k].base];
  };
  auto resolve = [&](const uint32_t* ids, const ColOrConst& o) -> Term {
    return o.is_column ? term_at(ids, o.column) : Term::Const(o.constant);
  };

  {
    Conjunction scratch;
    for (int ci : steps[0].conjuncts) {
      const SelectAtom& a = plan.conjuncts[ci].atom;
      if (!ApplyAtomTerms(a.is_equality, Term::Const(a.lhs.constant),
                          Term::Const(a.rhs.constant), scratch)) {
        return CTable(expr.arity());
      }
    }
  }

  std::vector<uint32_t> combos;  // stride n; unjoined leaves hold 0
  {
    const int seed = steps[0].leaf;
    const PlannedLeafPlain& sl = leaves[seed];
    for (size_t i = 0; i < sl.rows.size(); ++i) {
      if (sl.dropped[i]) continue;
      size_t at = combos.size();
      combos.resize(at + n, 0);
      combos[at + seed] = static_cast<uint32_t>(i);
    }
  }

  Tuple key;
  std::vector<size_t> candidates;
  std::vector<uint32_t> scratch(n);
  for (size_t si = 1; si < steps.size(); ++si) {
    const JoinStep& step = steps[si];
    const PlannedLeafPlain& bl = leaves[step.leaf];
    const size_t num_build = bl.rows.size();
    const TupleIndex* index = nullptr;
    std::unique_ptr<TupleIndex> ephemeral;
    if (!step.build_cols.empty()) {
      ++stats.hash_joins;
      if (bl.table != nullptr) {
        bool built = false;
        bool extended = false;
        index = &bl.table->Index(step.build_cols, &built, &extended);
        stats.index_builds += built;
        stats.index_extends += extended;
      } else {
        ephemeral = std::make_unique<TupleIndex>(step.build_cols);
        ++stats.index_builds;
        for (size_t i = 0; i < num_build; ++i) {
          ephemeral->Add(bl.rows[i]->tuple, i);
        }
        index = ephemeral.get();
      }
    }
    std::vector<uint32_t> next;
    const size_t num_combos = combos.size() / n;
    for (size_t c = 0; c < num_combos; ++c) {
      const uint32_t* ids = combos.data() + c * n;
      bool keyed = false;
      if (index != nullptr) {
        key.clear();
        for (int col : step.probe_cols) key.push_back(term_at(ids, col));
        keyed = TupleIndex::IsGroundKey(key);
        if (keyed) {
          ++stats.index_probes;
          candidates = index->Candidates(key, 0, num_build);
          stats.index_hits += candidates.size();
        }
      }
      size_t count = keyed ? candidates.size() : num_build;
      (keyed ? stats.join_pairs : stats.scan_pairs) += count;
      std::copy(ids, ids + n, scratch.begin());
      for (size_t t = 0; t < count; ++t) {
        size_t id = keyed ? candidates[t] : t;
        if (bl.dropped[id]) continue;
        scratch[step.leaf] = static_cast<uint32_t>(id);
        Conjunction sel;
        bool keep = true;
        for (int ci : step.conjuncts) {
          const SelectAtom& a = plan.conjuncts[ci].atom;
          if (!ApplyAtomTerms(a.is_equality, resolve(scratch.data(), a.lhs),
                              resolve(scratch.data(), a.rhs), sel)) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        next.insert(next.end(), scratch.begin(), scratch.end());
      }
    }
    combos.swap(next);
  }

  // Emit in nested-loop order; the replay events rebuild each local
  // condition byte-identically (leaf locals and instantiated atoms in the
  // order the original tree conjoins them).
  const size_t num_out = combos.size() / n;
  std::vector<uint32_t> order(num_out);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const uint32_t* ra = combos.data() + static_cast<size_t>(a) * n;
    const uint32_t* rb = combos.data() + static_cast<size_t>(b) * n;
    return std::lexicographical_compare(ra, ra + n, rb, rb + n);
  });
  CTable out(expr.arity());
  for (uint32_t oi : order) {
    const uint32_t* ids = combos.data() + static_cast<size_t>(oi) * n;
    Tuple t;
    t.reserve(plan.outputs.size());
    for (const ColOrConst& o : plan.outputs) t.push_back(resolve(ids, o));
    Conjunction local;
    bool keep = true;
    for (const ReplayEvent& e : plan.replay) {
      if (e.kind == ReplayEvent::kLeafLocal) {
        local.AddAll(leaves[e.leaf].rows[ids[e.leaf]]->local());
      } else if (!ApplyAtomTerms(e.atom.is_equality,
                                 resolve(ids, e.atom.lhs),
                                 resolve(ids, e.atom.rhs), local)) {
        keep = false;  // unreachable: every atom was applied during a step
        break;
      }
    }
    if (keep) out.AddRow(std::move(t), std::move(local));
  }
  return out;
}

/// `skip_plan`: see EvalInterned.
std::optional<CTable> EvalPlain(const RaExpr& expr, const CDatabase& database,
                                const CTableEvalOptions& options,
                                CTableEvalStats& stats, bool skip_plan) {
  if (!skip_plan && options.use_hash_join &&
      (expr.op() == RaOp::kSelect || expr.op() == RaOp::kProject ||
       expr.op() == RaOp::kProduct)) {
    JoinPlan plan =
        PlanJoin(expr, JoinPlanOptions{options.binary_join_only});
    if (plan.fused) {
      return EvalPlannedPlain(expr, plan, database, options, stats);
    }
  }
  switch (expr.op()) {
    case RaOp::kRel: {
      CTable out(expr.arity());
      const CTable& in = database.table(expr.rel_index());
      // Row copies keep their memoized condition-id caches.
      for (const CRow& row : in.rows()) out.AddRow(row);
      return out;
    }
    case RaOp::kConstRel: {
      CTable out(expr.arity());
      for (const Fact& f : expr.const_relation()) out.AddRow(ToTuple(f));
      return out;
    }
    case RaOp::kProject: {
      auto in = EvalPlain(expr.input(), database, options, stats,
                          /*skip_plan=*/true);
      if (!in) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& row : in->rows()) {
        Tuple t;
        t.reserve(expr.outputs().size());
        for (const ColOrConst& o : expr.outputs()) {
          t.push_back(ResolveTerm(o, row.tuple));
        }
        out.AddRow(row.WithTuple(std::move(t)));
      }
      return out;
    }
    case RaOp::kSelect: {
      auto in = EvalPlain(expr.input(), database, options, stats,
                          /*skip_plan=*/true);
      if (!in) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& row : in->rows()) {
        Conjunction local = row.local();
        bool keep = true;
        for (const SelectAtom& a : expr.atoms()) {
          if (!ApplySelectAtom(a, row.tuple, local)) {
            keep = false;
            break;
          }
        }
        if (keep) out.AddRow(row.tuple, std::move(local));
      }
      return out;
    }
    case RaOp::kProduct: {
      bool skip = !options.binary_join_only;  // see the interned arm
      auto l = EvalPlain(expr.left(), database, options, stats, skip);
      auto r = EvalPlain(expr.right(), database, options, stats, skip);
      if (!l || !r) return std::nullopt;
      ++stats.nested_loop_products;
      stats.scan_pairs += l->num_rows() * r->num_rows();
      CTable out(expr.arity());
      for (const CRow& rl : l->rows()) {
        for (const CRow& rr : r->rows()) {
          Tuple t = rl.tuple;
          t.insert(t.end(), rr.tuple.begin(), rr.tuple.end());
          out.AddRow(std::move(t), Conjunction::And(rl.local(), rr.local()));
        }
      }
      return out;
    }
    case RaOp::kUnion: {
      auto l = EvalPlain(expr.left(), database, options, stats);
      auto r = EvalPlain(expr.right(), database, options, stats);
      if (!l || !r) return std::nullopt;
      CTable out(expr.arity());
      // Union carries rows through unchanged — cache-preserving copies.
      for (const CRow& row : l->rows()) out.AddRow(row);
      for (const CRow& row : r->rows()) out.AddRow(row);
      return out;
    }
    case RaOp::kDiff:
      return std::nullopt;  // not positive existential
  }
  return std::nullopt;
}

void Accumulate(CTableEvalStats* sink, const CTableEvalStats& s) {
  if (sink == nullptr) return;
  sink->planned_joins += s.planned_joins;
  sink->planned_join_leaves += s.planned_join_leaves;
  sink->conjuncts_pushed += s.conjuncts_pushed;
  sink->projections_sunk += s.projections_sunk;
  sink->hash_joins += s.hash_joins;
  sink->nested_loop_products += s.nested_loop_products;
  sink->index_builds += s.index_builds;
  sink->index_extends += s.index_extends;
  sink->index_probes += s.index_probes;
  sink->index_hits += s.index_hits;
  sink->join_pairs += s.join_pairs;
  sink->scan_pairs += s.scan_pairs;
  sink->pushdown_dropped_rows += s.pushdown_dropped_rows;
}

}  // namespace

std::optional<CTable> EvalOnCTables(const RaExpr& expr,
                                    const CDatabase& database,
                                    const CTableEvalOptions& options) {
  CTableEvalStats stats;
  if (!options.use_interner) {
    auto out = EvalPlain(expr, database, options, stats);
    Accumulate(options.stats, stats);
    return out;
  }
  ConditionInterner& interner = options.interner != nullptr
                                    ? *options.interner
                                    : ConditionInterner::Global();
  auto interned = EvalInterned(expr, database, interner, options, stats);
  Accumulate(options.stats, stats);
  if (!interned) return std::nullopt;
  CTable out(interned->arity);
  for (InternedRow& row : interned->rows) {
    // Materializes the canonical form and seeds the row's id cache, so the
    // next interned consumer of this table starts from the id.
    out.AddRow(std::move(row.tuple), row.cond, interner);
  }
  return out;
}

std::optional<CDatabase> EvalQueryOnCTables(const RaQuery& query,
                                            const CDatabase& database,
                                            const CTableEvalOptions& options) {
  // The carried global condition keeps the input's materialized form; on the
  // interned path its id cache is seeded from the members' cached ids.
  auto set_global = [&](CTable& table) {
    if (options.use_interner) {
      ConditionInterner& interner = options.interner != nullptr
                                        ? *options.interner
                                        : ConditionInterner::Global();
      table.SetGlobal(database.CombinedGlobal(),
                      database.CombinedGlobalId(interner), interner);
    } else {
      table.SetGlobal(database.CombinedGlobal());
    }
  };
  CDatabase out;
  for (size_t i = 0; i < query.size(); ++i) {
    auto table = EvalOnCTables(query[i], database, options);
    if (!table) return std::nullopt;
    if (i == 0) set_global(*table);
    out.AddTable(std::move(*table));
  }
  if (query.empty()) {
    CTable sentinel(0);
    set_global(sentinel);
    out.AddTable(std::move(sentinel));
  }
  return out;
}

}  // namespace pw
