#include "ilalgebra/ctable_eval.h"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "tables/tuple_index.h"

namespace pw {

namespace {

Term ResolveTerm(const ColOrConst& o, const Tuple& tuple) {
  return o.is_column ? tuple[o.column] : Term::Const(o.constant);
}

/// Instantiates one select atom against a row's tuple; appends to `local`.
/// Returns false if the atom is trivially false for this row.
bool ApplySelectAtom(const SelectAtom& atom, const Tuple& tuple,
                     Conjunction& local) {
  Term l = ResolveTerm(atom.lhs, tuple);
  Term r = ResolveTerm(atom.rhs, tuple);
  CondAtom cond = atom.is_equality ? Eq(l, r) : Neq(l, r);
  if (IsTriviallyFalse(cond)) return false;
  if (!IsTriviallyTrue(cond)) local.Add(cond);
  return true;
}

// --- Hash-join planning ------------------------------------------------------
//
// A selection directly over a product is a join. The plan splits the select
// atoms by which side of the product they touch:
//
//   - an equality between a left column and a right column becomes a join
//     key (the hash columns of the build-side index);
//   - an atom touching columns of only one side becomes a pushdown filter,
//     applied to that side's rows before any pairing;
//   - everything else (cross-side inequalities, constant-only atoms) stays
//     in `pair_atoms` and is applied per emitted pair.
//
// Fused execution is output-identical to product-then-select: the index and
// the pushdown only skip combinations the selection would have dropped on a
// trivially-false ground atom (or, on the interned path, an unsatisfiable
// condition), and candidates are enumerated in ascending row order, which is
// exactly the order of the nested loop they replace.

struct JoinPlan {
  bool fused = false;
  int left_arity = 0;
  std::vector<int> left_cols;   // aligned join key columns: probe side ...
  std::vector<int> right_cols;  // ... and build side (right-local coords)
  std::vector<SelectAtom> left_atoms;   // pushdown, left coordinates
  std::vector<SelectAtom> right_atoms;  // pushdown, rebased to right
  std::vector<SelectAtom> pair_atoms;   // per-pair, product coordinates
                                        // (join keys included: they emit the
                                        // condition atoms variable matches
                                        // require)
};

/// -1: constant, 0: left column, 1: right column.
int SideOf(const ColOrConst& o, int left_arity) {
  if (!o.is_column) return -1;
  return o.column < left_arity ? 0 : 1;
}

SelectAtom RebasedToRight(SelectAtom a, int left_arity) {
  if (a.lhs.is_column) a.lhs.column -= left_arity;
  if (a.rhs.is_column) a.rhs.column -= left_arity;
  return a;
}

JoinPlan PlanSelectOverProduct(const RaExpr& expr, bool enabled) {
  JoinPlan plan;
  if (!enabled || expr.op() != RaOp::kSelect ||
      expr.input().op() != RaOp::kProduct) {
    return plan;
  }
  plan.left_arity = expr.input().left().arity();
  for (const SelectAtom& a : expr.atoms()) {
    int lhs = SideOf(a.lhs, plan.left_arity);
    int rhs = SideOf(a.rhs, plan.left_arity);
    if (a.is_equality && lhs + rhs == 1 && lhs != rhs) {  // one col per side
      const ColOrConst& left = lhs == 0 ? a.lhs : a.rhs;
      const ColOrConst& right = lhs == 0 ? a.rhs : a.lhs;
      plan.left_cols.push_back(left.column);
      plan.right_cols.push_back(right.column - plan.left_arity);
      plan.pair_atoms.push_back(a);
      continue;
    }
    bool touches_left = lhs == 0 || rhs == 0;
    bool touches_right = lhs == 1 || rhs == 1;
    if (touches_left && !touches_right) {
      plan.left_atoms.push_back(a);
    } else if (touches_right && !touches_left) {
      plan.right_atoms.push_back(RebasedToRight(a, plan.left_arity));
    } else {
      plan.pair_atoms.push_back(a);
    }
  }
  plan.fused = !plan.left_cols.empty();
  return plan;
}

/// True iff no atom instantiates to a trivially false ground atom on
/// `tuple` — a row failing this can never survive the selection, whatever
/// the other side contributes. (Pre-filter only: appended condition atoms
/// are discarded; the pair loop re-applies every atom in query order.)
bool PassesFilter(const std::vector<SelectAtom>& atoms, const Tuple& tuple) {
  Conjunction scratch;
  for (const SelectAtom& a : atoms) {
    if (!ApplySelectAtom(a, tuple, scratch)) return false;
  }
  return true;
}

// --- Interned fast path ----------------------------------------------------
//
// Local conditions travel as ConjIds through the whole expression tree and
// are materialized exactly once at the end; every conjoin is a memoized
// pairwise And, and rows whose condition canonicalizes to false disappear on
// the spot. Since ids are canonical, the |T1| x |T2| pair loop of a product
// touches only |distinct(T1)| x |distinct(T2)| closures.

struct InternedRow {
  Tuple tuple;
  ConjId cond;
};

struct InternedTable {
  int arity = 0;
  std::vector<InternedRow> rows;
};

std::optional<InternedTable> EvalInterned(const RaExpr& expr,
                                          const CDatabase& database,
                                          ConditionInterner& interner,
                                          const CTableEvalOptions& options,
                                          CTableEvalStats& stats);

/// Conjoins the instantiated pushdown atoms onto a side row's condition.
/// Returns false when the row can never pair (a trivially false atom, or an
/// unsatisfiable strengthened condition). Pushing side atoms into side
/// conditions is output-preserving on this path: the per-pair condition is
/// canonicalized from the union of all contributed atoms, so it interns to
/// the same id whether a side atom joined before or during pairing.
bool StrengthenInterned(const std::vector<SelectAtom>& atoms,
                        const Tuple& tuple, ConditionInterner& interner,
                        ConjId& cond) {
  Conjunction sel;
  for (const SelectAtom& a : atoms) {
    if (!ApplySelectAtom(a, tuple, sel)) return false;
  }
  if (sel.size() > 0) cond = interner.And(cond, interner.Intern(sel));
  return interner.Satisfiable(cond);
}

/// The build (right) side of an interned hash join: per-candidate tuples and
/// strengthened conditions (kFalseConj marks a dropped row), plus the index
/// to probe. A relation-ref side indexes the source CTable through its
/// cached, stamp-invalidated index — reused across queries and fixpoint
/// rounds; any other subexpression is evaluated and indexed ephemerally.
struct InternedBuildSide {
  InternedTable owned;  // evaluated subtree (empty for a relation ref)
  std::vector<const Tuple*> tuples;
  std::vector<ConjId> conds;
  std::unique_ptr<TupleIndex> ephemeral;
  const TupleIndex* index = nullptr;
};

std::optional<InternedBuildSide> BuildInternedSide(
    const RaExpr& right, const JoinPlan& plan, const CDatabase& database,
    ConditionInterner& interner, const CTableEvalOptions& options,
    CTableEvalStats& stats) {
  InternedBuildSide out;
  if (right.op() == RaOp::kRel) {
    const CTable& table = database.table(right.rel_index());
    bool built = false;
    out.index = &table.Index(plan.right_cols, &built);
    if (built) ++stats.index_builds;
    out.tuples.reserve(table.num_rows());
    out.conds.reserve(table.num_rows());
    for (const CRow& row : table.rows()) {
      ConjId cond = row.LocalId(interner);
      if (!interner.Satisfiable(cond) ||
          !StrengthenInterned(plan.right_atoms, row.tuple, interner, cond)) {
        ++stats.pushdown_dropped_rows;
        cond = ConditionInterner::kFalseConj;
      }
      out.tuples.push_back(&row.tuple);
      out.conds.push_back(cond);
    }
    return out;
  }
  auto r = EvalInterned(right, database, interner, options, stats);
  if (!r) return std::nullopt;
  out.owned.arity = r->arity;
  for (InternedRow& row : r->rows) {
    ConjId cond = row.cond;
    if (!StrengthenInterned(plan.right_atoms, row.tuple, interner, cond)) {
      ++stats.pushdown_dropped_rows;
      continue;
    }
    out.owned.rows.push_back({std::move(row.tuple), cond});
  }
  out.ephemeral = std::make_unique<TupleIndex>(plan.right_cols);
  ++stats.index_builds;
  out.tuples.reserve(out.owned.rows.size());
  out.conds.reserve(out.owned.rows.size());
  for (size_t i = 0; i < out.owned.rows.size(); ++i) {
    out.ephemeral->Add(out.owned.rows[i].tuple, i);
    out.tuples.push_back(&out.owned.rows[i].tuple);
    out.conds.push_back(out.owned.rows[i].cond);
  }
  out.index = out.ephemeral.get();
  return out;
}

std::optional<InternedTable> EvalJoinInterned(const RaExpr& expr,
                                              const JoinPlan& plan,
                                              const CDatabase& database,
                                              ConditionInterner& interner,
                                              const CTableEvalOptions& options,
                                              CTableEvalStats& stats) {
  const RaExpr& prod = expr.input();
  auto l = EvalInterned(prod.left(), database, interner, options, stats);
  if (!l) return std::nullopt;
  auto build = BuildInternedSide(prod.right(), plan, database, interner,
                                 options, stats);
  if (!build) return std::nullopt;
  ++stats.hash_joins;

  InternedTable out{expr.arity(), {}};
  const size_t num_build_rows = build->tuples.size();
  Tuple key;
  std::vector<size_t> candidates;
  for (InternedRow& lrow : l->rows) {
    ConjId lcond = lrow.cond;
    if (!StrengthenInterned(plan.left_atoms, lrow.tuple, interner, lcond)) {
      ++stats.pushdown_dropped_rows;
      continue;
    }
    key.clear();
    for (int c : plan.left_cols) key.push_back(lrow.tuple[c]);
    // A key with a null in it matches any build row under a condition, so
    // only ground keys can probe; others fall back to the full scan.
    bool keyed = TupleIndex::IsGroundKey(key);
    if (keyed) {
      ++stats.index_probes;
      candidates = build->index->Candidates(key, 0, num_build_rows);
      stats.index_hits += candidates.size();
    }
    size_t count = keyed ? candidates.size() : num_build_rows;
    (keyed ? stats.join_pairs : stats.scan_pairs) += count;
    for (size_t k = 0; k < count; ++k) {
      size_t id = keyed ? candidates[k] : k;
      ConjId rcond = build->conds[id];
      if (rcond == ConditionInterner::kFalseConj) continue;
      ConjId combined = interner.And(lcond, rcond);
      if (!interner.Satisfiable(combined)) continue;
      Tuple t = lrow.tuple;
      const Tuple& rt = *build->tuples[id];
      t.insert(t.end(), rt.begin(), rt.end());
      Conjunction sel;
      bool keep = true;
      for (const SelectAtom& a : plan.pair_atoms) {
        if (!ApplySelectAtom(a, t, sel)) {
          keep = false;
          break;
        }
      }
      if (!keep) continue;
      if (sel.size() > 0) {
        combined = interner.And(combined, interner.Intern(sel));
        if (!interner.Satisfiable(combined)) continue;
      }
      out.rows.push_back({std::move(t), combined});
    }
  }
  return out;
}

std::optional<InternedTable> EvalInterned(const RaExpr& expr,
                                          const CDatabase& database,
                                          ConditionInterner& interner,
                                          const CTableEvalOptions& options,
                                          CTableEvalStats& stats) {
  switch (expr.op()) {
    case RaOp::kRel: {
      InternedTable out{expr.arity(), {}};
      const CTable& in = database.table(expr.rel_index());
      out.rows.reserve(in.num_rows());
      for (const CRow& row : in.rows()) {
        // The row's memoized id: no re-canonicalization when the table was
        // produced by an interned pipeline (or queried before).
        ConjId cond = row.LocalId(interner);
        if (!interner.Satisfiable(cond)) continue;
        out.rows.push_back({row.tuple, cond});
      }
      return out;
    }
    case RaOp::kConstRel: {
      InternedTable out{expr.arity(), {}};
      for (const Fact& f : expr.const_relation()) {
        out.rows.push_back({ToTuple(f), ConditionInterner::kTrueConj});
      }
      return out;
    }
    case RaOp::kProject: {
      auto in = EvalInterned(expr.input(), database, interner, options, stats);
      if (!in) return std::nullopt;
      InternedTable out{expr.arity(), {}};
      out.rows.reserve(in->rows.size());
      for (InternedRow& row : in->rows) {
        Tuple t;
        t.reserve(expr.outputs().size());
        for (const ColOrConst& o : expr.outputs()) {
          t.push_back(ResolveTerm(o, row.tuple));
        }
        out.rows.push_back({std::move(t), row.cond});
      }
      return out;
    }
    case RaOp::kSelect: {
      JoinPlan plan = PlanSelectOverProduct(expr, options.use_hash_join);
      if (plan.fused) {
        return EvalJoinInterned(expr, plan, database, interner, options,
                                stats);
      }
      auto in = EvalInterned(expr.input(), database, interner, options, stats);
      if (!in) return std::nullopt;
      InternedTable out{expr.arity(), {}};
      for (InternedRow& row : in->rows) {
        Conjunction sel;
        bool keep = true;
        for (const SelectAtom& a : expr.atoms()) {
          if (!ApplySelectAtom(a, row.tuple, sel)) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        ConjId combined = interner.And(row.cond, interner.Intern(sel));
        if (!interner.Satisfiable(combined)) continue;  // row never on
        out.rows.push_back({std::move(row.tuple), combined});
      }
      return out;
    }
    case RaOp::kProduct: {
      auto l = EvalInterned(expr.left(), database, interner, options, stats);
      auto r = EvalInterned(expr.right(), database, interner, options, stats);
      if (!l || !r) return std::nullopt;
      ++stats.nested_loop_products;
      stats.scan_pairs += l->rows.size() * r->rows.size();
      InternedTable out{expr.arity(), {}};
      for (const InternedRow& rl : l->rows) {
        for (const InternedRow& rr : r->rows) {
          ConjId combined = interner.And(rl.cond, rr.cond);
          if (!interner.Satisfiable(combined)) continue;
          Tuple t = rl.tuple;
          t.insert(t.end(), rr.tuple.begin(), rr.tuple.end());
          out.rows.push_back({std::move(t), combined});
        }
      }
      return out;
    }
    case RaOp::kUnion: {
      auto l = EvalInterned(expr.left(), database, interner, options, stats);
      auto r = EvalInterned(expr.right(), database, interner, options, stats);
      if (!l || !r) return std::nullopt;
      InternedTable out{expr.arity(), std::move(l->rows)};
      out.rows.insert(out.rows.end(),
                      std::make_move_iterator(r->rows.begin()),
                      std::make_move_iterator(r->rows.end()));
      return out;
    }
    case RaOp::kDiff:
      return std::nullopt;  // not positive existential
  }
  return std::nullopt;
}

// --- Plain seed path -------------------------------------------------------

std::optional<CTable> EvalPlain(const RaExpr& expr, const CDatabase& database,
                                const CTableEvalOptions& options,
                                CTableEvalStats& stats);

/// The build (right) side of a plain hash join. A relation-ref side probes
/// the source CTable's cached index over all rows (nullptr marks a row the
/// pushdown dropped); any other subexpression is evaluated, filtered, and
/// indexed ephemerally.
struct PlainBuildSide {
  std::optional<CTable> owned;  // evaluated subtree (empty for relation ref)
  std::vector<const CRow*> rows;
  std::unique_ptr<TupleIndex> ephemeral;
  const TupleIndex* index = nullptr;
};

std::optional<PlainBuildSide> BuildPlainSide(const RaExpr& right,
                                             const JoinPlan& plan,
                                             const CDatabase& database,
                                             const CTableEvalOptions& options,
                                             CTableEvalStats& stats) {
  PlainBuildSide out;
  if (right.op() == RaOp::kRel) {
    const CTable& table = database.table(right.rel_index());
    bool built = false;
    out.index = &table.Index(plan.right_cols, &built);
    if (built) ++stats.index_builds;
    out.rows.reserve(table.num_rows());
    for (const CRow& row : table.rows()) {
      if (PassesFilter(plan.right_atoms, row.tuple)) {
        out.rows.push_back(&row);
      } else {
        ++stats.pushdown_dropped_rows;
        out.rows.push_back(nullptr);
      }
    }
    return out;
  }
  auto r = EvalPlain(right, database, options, stats);
  if (!r) return std::nullopt;
  out.owned = std::move(*r);
  out.ephemeral = std::make_unique<TupleIndex>(plan.right_cols);
  ++stats.index_builds;
  for (const CRow& row : out.owned->rows()) {
    if (!PassesFilter(plan.right_atoms, row.tuple)) {
      ++stats.pushdown_dropped_rows;
      continue;
    }
    out.ephemeral->Add(row.tuple, out.rows.size());
    out.rows.push_back(&row);
  }
  out.index = out.ephemeral.get();
  return out;
}

std::optional<CTable> EvalJoinPlain(const RaExpr& expr, const JoinPlan& plan,
                                    const CDatabase& database,
                                    const CTableEvalOptions& options,
                                    CTableEvalStats& stats) {
  const RaExpr& prod = expr.input();
  auto l = EvalPlain(prod.left(), database, options, stats);
  if (!l) return std::nullopt;
  auto build = BuildPlainSide(prod.right(), plan, database, options, stats);
  if (!build) return std::nullopt;
  ++stats.hash_joins;

  CTable out(expr.arity());
  const size_t num_build_rows = build->rows.size();
  Tuple key;
  std::vector<size_t> candidates;
  for (const CRow& lrow : l->rows()) {
    if (!PassesFilter(plan.left_atoms, lrow.tuple)) {
      ++stats.pushdown_dropped_rows;
      continue;
    }
    key.clear();
    for (int c : plan.left_cols) key.push_back(lrow.tuple[c]);
    bool keyed = TupleIndex::IsGroundKey(key);
    if (keyed) {
      ++stats.index_probes;
      candidates = build->index->Candidates(key, 0, num_build_rows);
      stats.index_hits += candidates.size();
    }
    size_t count = keyed ? candidates.size() : num_build_rows;
    (keyed ? stats.join_pairs : stats.scan_pairs) += count;
    for (size_t k = 0; k < count; ++k) {
      const CRow* rrow = build->rows[keyed ? candidates[k] : k];
      if (rrow == nullptr) continue;
      Tuple t = lrow.tuple;
      t.insert(t.end(), rrow->tuple.begin(), rrow->tuple.end());
      // Every atom, in query order, against the concatenated tuple — the
      // emitted conjunction is byte-identical to product-then-select.
      Conjunction local = Conjunction::And(lrow.local(), rrow->local());
      bool keep = true;
      for (const SelectAtom& a : expr.atoms()) {
        if (!ApplySelectAtom(a, t, local)) {
          keep = false;
          break;
        }
      }
      if (keep) out.AddRow(std::move(t), std::move(local));
    }
  }
  return out;
}

std::optional<CTable> EvalPlain(const RaExpr& expr, const CDatabase& database,
                                const CTableEvalOptions& options,
                                CTableEvalStats& stats) {
  switch (expr.op()) {
    case RaOp::kRel: {
      CTable out(expr.arity());
      const CTable& in = database.table(expr.rel_index());
      // Row copies keep their memoized condition-id caches.
      for (const CRow& row : in.rows()) out.AddRow(row);
      return out;
    }
    case RaOp::kConstRel: {
      CTable out(expr.arity());
      for (const Fact& f : expr.const_relation()) out.AddRow(ToTuple(f));
      return out;
    }
    case RaOp::kProject: {
      auto in = EvalPlain(expr.input(), database, options, stats);
      if (!in) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& row : in->rows()) {
        Tuple t;
        t.reserve(expr.outputs().size());
        for (const ColOrConst& o : expr.outputs()) {
          t.push_back(ResolveTerm(o, row.tuple));
        }
        out.AddRow(row.WithTuple(std::move(t)));
      }
      return out;
    }
    case RaOp::kSelect: {
      JoinPlan plan = PlanSelectOverProduct(expr, options.use_hash_join);
      if (plan.fused) {
        return EvalJoinPlain(expr, plan, database, options, stats);
      }
      auto in = EvalPlain(expr.input(), database, options, stats);
      if (!in) return std::nullopt;
      CTable out(expr.arity());
      for (const CRow& row : in->rows()) {
        Conjunction local = row.local();
        bool keep = true;
        for (const SelectAtom& a : expr.atoms()) {
          if (!ApplySelectAtom(a, row.tuple, local)) {
            keep = false;
            break;
          }
        }
        if (keep) out.AddRow(row.tuple, std::move(local));
      }
      return out;
    }
    case RaOp::kProduct: {
      auto l = EvalPlain(expr.left(), database, options, stats);
      auto r = EvalPlain(expr.right(), database, options, stats);
      if (!l || !r) return std::nullopt;
      ++stats.nested_loop_products;
      stats.scan_pairs += l->num_rows() * r->num_rows();
      CTable out(expr.arity());
      for (const CRow& rl : l->rows()) {
        for (const CRow& rr : r->rows()) {
          Tuple t = rl.tuple;
          t.insert(t.end(), rr.tuple.begin(), rr.tuple.end());
          out.AddRow(std::move(t), Conjunction::And(rl.local(), rr.local()));
        }
      }
      return out;
    }
    case RaOp::kUnion: {
      auto l = EvalPlain(expr.left(), database, options, stats);
      auto r = EvalPlain(expr.right(), database, options, stats);
      if (!l || !r) return std::nullopt;
      CTable out(expr.arity());
      // Union carries rows through unchanged — cache-preserving copies.
      for (const CRow& row : l->rows()) out.AddRow(row);
      for (const CRow& row : r->rows()) out.AddRow(row);
      return out;
    }
    case RaOp::kDiff:
      return std::nullopt;  // not positive existential
  }
  return std::nullopt;
}

void Accumulate(CTableEvalStats* sink, const CTableEvalStats& s) {
  if (sink == nullptr) return;
  sink->hash_joins += s.hash_joins;
  sink->nested_loop_products += s.nested_loop_products;
  sink->index_builds += s.index_builds;
  sink->index_probes += s.index_probes;
  sink->index_hits += s.index_hits;
  sink->join_pairs += s.join_pairs;
  sink->scan_pairs += s.scan_pairs;
  sink->pushdown_dropped_rows += s.pushdown_dropped_rows;
}

}  // namespace

std::optional<CTable> EvalOnCTables(const RaExpr& expr,
                                    const CDatabase& database,
                                    const CTableEvalOptions& options) {
  CTableEvalStats stats;
  if (!options.use_interner) {
    auto out = EvalPlain(expr, database, options, stats);
    Accumulate(options.stats, stats);
    return out;
  }
  ConditionInterner& interner = options.interner != nullptr
                                    ? *options.interner
                                    : ConditionInterner::Global();
  auto interned = EvalInterned(expr, database, interner, options, stats);
  Accumulate(options.stats, stats);
  if (!interned) return std::nullopt;
  CTable out(interned->arity);
  for (InternedRow& row : interned->rows) {
    // Materializes the canonical form and seeds the row's id cache, so the
    // next interned consumer of this table starts from the id.
    out.AddRow(std::move(row.tuple), row.cond, interner);
  }
  return out;
}

std::optional<CDatabase> EvalQueryOnCTables(const RaQuery& query,
                                            const CDatabase& database,
                                            const CTableEvalOptions& options) {
  // The carried global condition keeps the input's materialized form; on the
  // interned path its id cache is seeded from the members' cached ids.
  auto set_global = [&](CTable& table) {
    if (options.use_interner) {
      ConditionInterner& interner = options.interner != nullptr
                                        ? *options.interner
                                        : ConditionInterner::Global();
      table.SetGlobal(database.CombinedGlobal(),
                      database.CombinedGlobalId(interner), interner);
    } else {
      table.SetGlobal(database.CombinedGlobal());
    }
  };
  CDatabase out;
  for (size_t i = 0; i < query.size(); ++i) {
    auto table = EvalOnCTables(query[i], database, options);
    if (!table) return std::nullopt;
    if (i == 0) set_global(*table);
    out.AddTable(std::move(*table));
  }
  if (query.empty()) {
    CTable sentinel(0);
    set_global(sentinel);
    out.AddTable(std::move(sentinel));
  }
  return out;
}

}  // namespace pw
