// The Imielinski–Lipski algebra: evaluating positive relational algebra
// directly on conditioned tables.
//
// c-tables are a *representation system* for positive existential queries
// (Imielinski & Lipski, JACM 1984): for every positive query q and c-table T
// one can compute, in PTIME in |T|, a c-table q^(T) with
//
//     rep(q^(T)) = q(rep(T))       (pointwise image of the worlds).
//
// This is the engine behind the PTIME bounded-possibility algorithm of
// Theorem 5.2(1) and the uniqueness algorithm of Theorem 3.2(2). Our
// transformation rules keep local conditions in conjunction form:
//
//   relation ref : copy rows
//   select       : conjoin the instantiated select atoms onto each local
//   project      : rewrite each tuple through the output spec
//   product      : pair rows, conjoin locals
//   union        : concatenate rows
//   const rel    : unconditioned ground rows
//
// (We do not merge duplicate projected rows, so no disjunctions arise; set
// semantics is recovered at instantiation time.)

#ifndef PW_ILALGEBRA_CTABLE_EVAL_H_
#define PW_ILALGEBRA_CTABLE_EVAL_H_

#include <optional>

#include "ra/expr.h"
#include "tables/ctable.h"

namespace pw {

/// Evaluates one positive existential expression on a c-database, producing
/// a c-table whose rep is the image of rep(database) under the expression
/// (the result table carries no global condition of its own; combine with
/// `database.CombinedGlobal()`). Returns std::nullopt if the expression is
/// not positive existential (contains difference). != select atoms are
/// allowed (they become inequality atoms in local conditions).
std::optional<CTable> EvalOnCTables(const RaExpr& expr,
                                    const CDatabase& database);

/// Evaluates a whole query. The resulting c-database carries the input's
/// combined global condition (attached to its first table, or to an empty
/// sentinel table when the query is empty). Returns std::nullopt if any
/// expression is not positive existential.
std::optional<CDatabase> EvalQueryOnCTables(const RaQuery& query,
                                            const CDatabase& database);

}  // namespace pw

#endif  // PW_ILALGEBRA_CTABLE_EVAL_H_
