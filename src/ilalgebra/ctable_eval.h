// The Imielinski–Lipski algebra: evaluating positive relational algebra
// directly on conditioned tables.
//
// c-tables are a *representation system* for positive existential queries
// (Imielinski & Lipski, JACM 1984): for every positive query q and c-table T
// one can compute, in PTIME in |T|, a c-table q^(T) with
//
//     rep(q^(T)) = q(rep(T))       (pointwise image of the worlds).
//
// This is the engine behind the PTIME bounded-possibility algorithm of
// Theorem 5.2(1) and the uniqueness algorithm of Theorem 3.2(2). Our
// transformation rules keep local conditions in conjunction form:
//
//   relation ref : copy rows
//   select       : conjoin the instantiated select atoms onto each local
//   project      : rewrite each tuple through the output spec
//   product      : pair rows, conjoin locals
//   union        : concatenate rows
//   const rel    : unconditioned ground rows
//
// (We do not merge duplicate projected rows, so no disjunctions arise; set
// semantics is recovered at instantiation time.)
//
// Conjunctive shapes — any select*/project* prefix over an n-ary product
// tree, including RaExpr::Join chains, nested selections, and selections
// above projections of products — are normalized by the join planner
// (ilalgebra/join_plan.h) and executed as a greedily-ordered n-way hash
// join over the shared tuple-index layer (tables/tuple_index.h): one-leaf
// conjuncts are pushed down into the leaves, cross-leaf equalities key the
// probes, and projections are sunk below the joins (intermediate state is
// row-id combinations; a column not needed by a later key, a conjunct, or
// the output is never materialized). The planned execution is
// output-identical to the nested loops it replaces on both the interned
// and the plain path; see CTableEvalOptions::use_hash_join.

#ifndef PW_ILALGEBRA_CTABLE_EVAL_H_
#define PW_ILALGEBRA_CTABLE_EVAL_H_

#include <optional>

#include "condition/interner.h"
#include "ra/expr.h"
#include "tables/ctable.h"

namespace pw {

/// Counters of the join/index machinery of one evaluation. Attach via
/// CTableEvalOptions::stats; counters are accumulated (+=) so one sink can
/// span several calls.
struct CTableEvalStats {
  // Plan shape.
  size_t planned_joins = 0;       // n-way join plans executed
  size_t planned_join_leaves = 0; // leaves across those plans
  size_t conjuncts_pushed = 0;    // conjuncts turned into leaf pre-filters
                                  // (one-leaf atoms and constant atoms)
  size_t projections_sunk = 0;    // leaf columns never materialized above
                                  // their leaf (not needed by a key, a
                                  // conjunct, or the output)
  // Join execution.
  size_t hash_joins = 0;        // keyed join steps executed through an index
  size_t nested_loop_products = 0;  // products evaluated as nested loops
  size_t index_builds = 0;      // tuple indexes built or rebuilt from
                                // scratch (never an extend)
  size_t index_extends = 0;     // cached indexes caught up on appended rows
  size_t index_probes = 0;      // keyed probes into a build-side index
  size_t index_hits = 0;        // candidate rows returned by those probes
  size_t join_pairs = 0;        // row pairs enumerated through the index
  size_t scan_pairs = 0;        // row pairs enumerated by scans (nested
                                // loops, cartesian steps, and
                                // non-ground-key fallbacks)
  size_t pushdown_dropped_rows = 0;  // leaf rows dropped by conjunct
                                     // pushdown before pairing
};

/// Evaluation knobs. The default routes every conjoin of local conditions
/// through the executing thread's global ConditionInterner: combined
/// conditions are memoized pairwise, canonicalized (sorted, deduplicated,
/// equality-congruence closed), and rows whose local condition can never
/// hold are dropped on the spot. Both paths produce tables with the same
/// rep(); the interned one is what the decision procedures consume.
struct CTableEvalOptions {
  /// False selects the plain path (raw conjunction concatenation, no
  /// pruning) — chiefly for differential tests and benchmarks.
  bool use_interner = true;

  /// True (the default) routes every select*/project*/product prefix
  /// through the n-ary join planner (ilalgebra/join_plan.h): the prefix is
  /// flattened into leaves + a normalized conjunct set, one-leaf conjuncts
  /// are pushed into the leaves, the n-way join is ordered greedily by live
  /// cardinality, each step probes a hash index of the new leaf on the
  /// cross-leaf equality columns (a relation-ref leaf reuses the CTable's
  /// cached index across queries), and projections are sunk below the
  /// joins. Applies to both the interned and the plain path and is
  /// output-identical to the nested loops it replaces: the index and the
  /// pushdown only skip combinations the selection would have dropped on a
  /// trivially-false ground atom (or, interned, an unsatisfiable
  /// condition), and results are emitted in nested-loop order. False keeps
  /// the seed nested loops — chiefly for differential tests and the join
  /// benchmarks.
  bool use_hash_join = true;

  /// With use_hash_join, restricts the planner to the binary fusion shape
  /// of PR 3 (the flattening collapses at the first product; product
  /// operands stay atomic leaves and re-enter the planner when evaluated).
  /// A benchmarking baseline for the n-ary planner — see
  /// bench/join_index.cc's *_PlannedJoin / *_BinaryFusion pairs.
  bool binary_join_only = false;

  /// Optional interner override. Leave null to use the executing thread's
  /// ConditionInterner::Global() (interners are not thread-safe, so the
  /// override must not be shared across threads).
  ConditionInterner* interner = nullptr;

  /// Optional stats sink.
  CTableEvalStats* stats = nullptr;
};

/// Evaluates one positive existential expression on a c-database, producing
/// a c-table whose rep is the image of rep(database) under the expression
/// (the result table carries no global condition of its own; combine with
/// `database.CombinedGlobal()`). Returns std::nullopt if the expression is
/// not positive existential (contains difference). != select atoms are
/// allowed (they become inequality atoms in local conditions).
std::optional<CTable> EvalOnCTables(const RaExpr& expr,
                                    const CDatabase& database,
                                    const CTableEvalOptions& options = {});

/// Evaluates a whole query. The resulting c-database carries the input's
/// combined global condition (attached to its first table, or to an empty
/// sentinel table when the query is empty). Returns std::nullopt if any
/// expression is not positive existential.
std::optional<CDatabase> EvalQueryOnCTables(
    const RaQuery& query, const CDatabase& database,
    const CTableEvalOptions& options = {});

}  // namespace pw

#endif  // PW_ILALGEBRA_CTABLE_EVAL_H_
