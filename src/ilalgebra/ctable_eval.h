// The Imielinski–Lipski algebra: evaluating positive relational algebra
// directly on conditioned tables.
//
// c-tables are a *representation system* for positive existential queries
// (Imielinski & Lipski, JACM 1984): for every positive query q and c-table T
// one can compute, in PTIME in |T|, a c-table q^(T) with
//
//     rep(q^(T)) = q(rep(T))       (pointwise image of the worlds).
//
// This is the engine behind the PTIME bounded-possibility algorithm of
// Theorem 5.2(1) and the uniqueness algorithm of Theorem 3.2(2). Our
// transformation rules keep local conditions in conjunction form:
//
//   relation ref : copy rows
//   select       : conjoin the instantiated select atoms onto each local
//   project      : rewrite each tuple through the output spec
//   product      : pair rows, conjoin locals
//   union        : concatenate rows
//   const rel    : unconditioned ground rows
//
// (We do not merge duplicate projected rows, so no disjunctions arise; set
// semantics is recovered at instantiation time.)
//
// Equality selections over products — i.e. joins, including RaExpr::Join —
// are recognized by a small planning pass and executed as hash joins over
// the shared tuple-index layer (tables/tuple_index.h), with one-sided
// selection atoms pushed down into the join sides. The fused execution is
// output-identical to product-then-select on both the interned and the
// plain path; see CTableEvalOptions::use_hash_join.

#ifndef PW_ILALGEBRA_CTABLE_EVAL_H_
#define PW_ILALGEBRA_CTABLE_EVAL_H_

#include <optional>

#include "condition/interner.h"
#include "ra/expr.h"
#include "tables/ctable.h"

namespace pw {

/// Counters of the join/index machinery of one evaluation. Attach via
/// CTableEvalOptions::stats; counters are accumulated (+=) so one sink can
/// span several calls.
struct CTableEvalStats {
  size_t hash_joins = 0;        // select-over-products fused into hash joins
  size_t nested_loop_products = 0;  // products evaluated as nested loops
  size_t index_builds = 0;      // tuple indexes built or rebuilt (not reused)
  size_t index_probes = 0;      // keyed probes into a build-side index
  size_t index_hits = 0;        // candidate rows returned by those probes
  size_t join_pairs = 0;        // row pairs enumerated through the index
  size_t scan_pairs = 0;        // row pairs enumerated by scans (nested
                                // loops and non-ground-key fallbacks)
  size_t pushdown_dropped_rows = 0;  // side rows dropped by selection
                                     // pushdown before pairing
};

/// Evaluation knobs. The default routes every conjoin of local conditions
/// through the executing thread's global ConditionInterner: combined
/// conditions are memoized pairwise, canonicalized (sorted, deduplicated,
/// equality-congruence closed), and rows whose local condition can never
/// hold are dropped on the spot. Both paths produce tables with the same
/// rep(); the interned one is what the decision procedures consume.
struct CTableEvalOptions {
  /// False selects the plain path (raw conjunction concatenation, no
  /// pruning) — chiefly for differential tests and benchmarks.
  bool use_interner = true;

  /// True (the default) fuses an equality selection over a product into a
  /// hash join on the bound columns, with one-sided selection atoms pushed
  /// down into the join sides (tables/tuple_index.h; a relation-ref build
  /// side reuses the CTable's cached index across queries). Applies to both
  /// the interned and the plain path and is output-identical to the
  /// nested-loop product + per-row selection it replaces: the index only
  /// skips pairs the selection would have dropped on a trivially-false
  /// ground equality. False keeps the seed nested loops — chiefly for
  /// differential tests and the join benchmarks.
  bool use_hash_join = true;

  /// Optional interner override. Leave null to use the executing thread's
  /// ConditionInterner::Global() (interners are not thread-safe, so the
  /// override must not be shared across threads).
  ConditionInterner* interner = nullptr;

  /// Optional stats sink.
  CTableEvalStats* stats = nullptr;
};

/// Evaluates one positive existential expression on a c-database, producing
/// a c-table whose rep is the image of rep(database) under the expression
/// (the result table carries no global condition of its own; combine with
/// `database.CombinedGlobal()`). Returns std::nullopt if the expression is
/// not positive existential (contains difference). != select atoms are
/// allowed (they become inequality atoms in local conditions).
std::optional<CTable> EvalOnCTables(const RaExpr& expr,
                                    const CDatabase& database,
                                    const CTableEvalOptions& options = {});

/// Evaluates a whole query. The resulting c-database carries the input's
/// combined global condition (attached to its first table, or to an empty
/// sentinel table when the query is empty). Returns std::nullopt if any
/// expression is not positive existential.
std::optional<CDatabase> EvalQueryOnCTables(
    const RaQuery& query, const CDatabase& database,
    const CTableEvalOptions& options = {});

}  // namespace pw

#endif  // PW_ILALGEBRA_CTABLE_EVAL_H_
