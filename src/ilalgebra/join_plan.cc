#include "ilalgebra/join_plan.h"

#include <algorithm>
#include <utility>

namespace pw {

namespace {

struct FlattenState {
  std::vector<JoinLeaf> leaves;
  std::vector<ReplayEvent> events;
  int width = 0;
  bool binary_only = false;
};

/// Registers `expr` as an atomic leaf and returns its identity output view.
std::vector<ColOrConst> MakeLeaf(const RaExpr& expr, FlattenState& s) {
  int base = s.width;
  int arity = expr.arity();
  s.leaves.push_back(JoinLeaf{expr, base, arity});
  s.width += arity;
  ReplayEvent e;
  e.kind = ReplayEvent::kLeafLocal;
  e.leaf = static_cast<int>(s.leaves.size()) - 1;
  s.events.push_back(std::move(e));
  std::vector<ColOrConst> view;
  view.reserve(arity);
  for (int c = 0; c < arity; ++c) view.push_back(ColOrConst::Col(base + c));
  return view;
}

/// Flattens one node, returning its *output view*: one ColOrConst per
/// output column, in concatenated leaf coordinates. Selection atoms are
/// composed through the view of their input (so atoms written against a
/// projection land on the underlying leaf columns, or collapse to the
/// constants the projection emits) and appended to the replay in tree
/// order; leaves are registered left to right.
std::vector<ColOrConst> FlattenNode(const RaExpr& expr, FlattenState& s) {
  switch (expr.op()) {
    case RaOp::kProject: {
      std::vector<ColOrConst> in = FlattenNode(expr.input(), s);
      std::vector<ColOrConst> out;
      out.reserve(expr.outputs().size());
      for (const ColOrConst& o : expr.outputs()) {
        out.push_back(o.is_column ? in[o.column] : o);
      }
      return out;
    }
    case RaOp::kSelect: {
      std::vector<ColOrConst> in = FlattenNode(expr.input(), s);
      for (const SelectAtom& a : expr.atoms()) {
        ReplayEvent e;
        e.kind = ReplayEvent::kAtom;
        e.atom = a;
        if (a.lhs.is_column) e.atom.lhs = in[a.lhs.column];
        if (a.rhs.is_column) e.atom.rhs = in[a.rhs.column];
        s.events.push_back(std::move(e));
      }
      return in;
    }
    case RaOp::kProduct: {
      std::vector<ColOrConst> left =
          s.binary_only ? MakeLeaf(expr.left(), s)
                        : FlattenNode(expr.left(), s);
      std::vector<ColOrConst> right =
          s.binary_only ? MakeLeaf(expr.right(), s)
                        : FlattenNode(expr.right(), s);
      left.insert(left.end(), right.begin(), right.end());
      return left;
    }
    default:
      return MakeLeaf(expr, s);
  }
}

/// The distinct leaves a conjunct's columns touch, ascending.
std::vector<int> LeavesOf(const SelectAtom& a, const std::vector<int>& col_leaf) {
  std::vector<int> out;
  if (a.lhs.is_column) out.push_back(col_leaf[a.lhs.column]);
  if (a.rhs.is_column) out.push_back(col_leaf[a.rhs.column]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

JoinPlan PlanJoin(const RaExpr& expr, const JoinPlanOptions& options) {
  JoinPlan plan;
  RaOp op = expr.op();
  if (op != RaOp::kSelect && op != RaOp::kProject && op != RaOp::kProduct) {
    return plan;
  }
  FlattenState s;
  s.binary_only = options.binary_only;
  plan.outputs = FlattenNode(expr, s);
  plan.leaves = std::move(s.leaves);
  plan.replay = std::move(s.events);
  plan.total_width = s.width;
  if (plan.leaves.size() < 2) return plan;

  plan.col_leaf.resize(plan.total_width);
  for (size_t k = 0; k < plan.leaves.size(); ++k) {
    const JoinLeaf& leaf = plan.leaves[k];
    for (int c = 0; c < leaf.arity; ++c) {
      plan.col_leaf[leaf.base + c] = static_cast<int>(k);
    }
  }

  plan.pushdown.resize(plan.leaves.size());
  bool any_key = false;
  for (const ReplayEvent& e : plan.replay) {
    if (e.kind != ReplayEvent::kAtom) continue;
    JoinConjunct c;
    c.atom = e.atom;
    c.leaves = LeavesOf(e.atom, plan.col_leaf);
    if (c.leaves.empty()) {
      c.kind = ConjunctKind::kConstant;
      ++plan.conjuncts_pushed;
    } else if (c.leaves.size() == 1) {
      c.kind = ConjunctKind::kPushdown;
      ++plan.conjuncts_pushed;
      int base = plan.leaves[c.leaves[0]].base;
      SelectAtom local = e.atom;
      if (local.lhs.is_column) local.lhs.column -= base;
      if (local.rhs.is_column) local.rhs.column -= base;
      plan.pushdown[c.leaves[0]].push_back(local);
    } else if (e.atom.is_equality && e.atom.lhs.is_column &&
               e.atom.rhs.is_column) {
      c.kind = ConjunctKind::kJoinKey;
      any_key = true;
    } else {
      c.kind = ConjunctKind::kResidual;
    }
    plan.conjuncts.push_back(std::move(c));
  }
  if (!any_key) return plan;  // a pure product stays a nested loop
  plan.fused = true;

  plan.needed.assign(plan.total_width, false);
  auto need = [&plan](const ColOrConst& o) {
    if (o.is_column) plan.needed[o.column] = true;
  };
  for (const ColOrConst& o : plan.outputs) need(o);
  for (const JoinConjunct& c : plan.conjuncts) {
    need(c.atom.lhs);
    need(c.atom.rhs);
  }
  for (bool n : plan.needed) {
    if (!n) ++plan.projections_sunk;
  }
  return plan;
}

std::vector<JoinStep> OrderJoinSteps(const JoinPlan& plan,
                                     const std::vector<size_t>& leaf_rows) {
  const size_t n = plan.leaves.size();
  std::vector<bool> joined(n, false);
  std::vector<bool> applied(plan.conjuncts.size(), false);

  // Leaves incident to at least one join key — seed candidates.
  std::vector<bool> incident(n, false);
  for (const JoinConjunct& c : plan.conjuncts) {
    if (c.kind == ConjunctKind::kJoinKey) {
      for (int k : c.leaves) incident[k] = true;
    }
  }
  int seed = -1;
  for (size_t k = 0; k < n; ++k) {
    if (incident[k] && (seed < 0 || leaf_rows[k] < leaf_rows[seed])) {
      seed = static_cast<int>(k);
    }
  }

  std::vector<JoinStep> steps;
  steps.reserve(n);
  JoinStep first;
  first.leaf = seed;
  for (size_t i = 0; i < plan.conjuncts.size(); ++i) {
    ConjunctKind kind = plan.conjuncts[i].kind;
    // Pushdown conjuncts are leaf pre-filters, never step work; constant
    // conjuncts are decided once, at the seed.
    if (kind == ConjunctKind::kPushdown) applied[i] = true;
    if (kind == ConjunctKind::kConstant) {
      applied[i] = true;
      first.conjuncts.push_back(static_cast<int>(i));
    }
  }
  joined[seed] = true;
  steps.push_back(std::move(first));

  for (size_t round = 1; round < n; ++round) {
    int best = -1;
    bool best_connected = false;
    for (size_t k = 0; k < n; ++k) {
      if (joined[k]) continue;
      bool connected = false;
      for (const JoinConjunct& c : plan.conjuncts) {
        if (c.kind != ConjunctKind::kJoinKey || c.leaves.size() != 2) {
          continue;
        }
        int a = c.leaves[0];
        int b = c.leaves[1];
        if ((a == static_cast<int>(k) && joined[b]) ||
            (b == static_cast<int>(k) && joined[a])) {
          connected = true;
          break;
        }
      }
      if (best < 0 || connected > best_connected ||
          (connected == best_connected &&
           leaf_rows[k] < leaf_rows[best])) {
        best = static_cast<int>(k);
        best_connected = connected;
      }
    }
    JoinStep step;
    step.leaf = best;
    int base = plan.leaves[best].base;
    for (size_t i = 0; i < plan.conjuncts.size(); ++i) {
      if (applied[i]) continue;
      const JoinConjunct& c = plan.conjuncts[i];
      bool all_joined = true;
      for (int k : c.leaves) {
        if (k != best && !joined[k]) {
          all_joined = false;
          break;
        }
      }
      if (!all_joined) continue;
      applied[i] = true;
      step.conjuncts.push_back(static_cast<int>(i));
      if (c.kind == ConjunctKind::kJoinKey) {
        // One side in the new leaf, one in the joined set: a probe/build
        // column pair. (Both sides in the new leaf would be a pushdown.)
        bool lhs_new = plan.col_leaf[c.atom.lhs.column] == best;
        const ColOrConst& build = lhs_new ? c.atom.lhs : c.atom.rhs;
        const ColOrConst& probe = lhs_new ? c.atom.rhs : c.atom.lhs;
        step.probe_cols.push_back(probe.column);
        step.build_cols.push_back(build.column - base);
      }
    }
    joined[best] = true;
    steps.push_back(std::move(step));
  }
  return steps;
}

AtomProbePlan PlanAtomProbe(const Tuple& args,
                            const std::map<VarId, Term>& binding) {
  AtomProbePlan plan;
  for (size_t i = 0; i < args.size(); ++i) {
    Term need = args[i];
    if (need.is_variable()) {
      auto it = binding.find(need.variable());
      if (it == binding.end() || !it->second.is_constant()) continue;
      need = it->second;
    }
    plan.cols.push_back(static_cast<int>(i));
    plan.key.push_back(need);
  }
  return plan;
}

}  // namespace pw
