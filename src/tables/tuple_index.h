// Hash indexes over tuple sequences — the shared join-acceleration layer.
//
// Every join in this codebase — the Imielinski–Lipski algebra's
// select-over-product (ilalgebra/ctable_eval.cc) and the conditioned DATALOG
// fixpoint's body-atom matching (ilalgebra/datalog_ctable.cc) — reduces to
// the same primitive: given a sequence of rows and a subset of columns, find
// the rows whose projection onto those columns could equal a probe key.
// `TupleIndex` is that primitive; `TupleIndexCache` wraps a family of them
// (one per column subset) with the lazy, stamp-invalidated lifecycle the
// evaluators need so an index is built once and reused across fixpoint
// rounds and repeated queries.
//
// c-table semantics make this subtler than a classical hash join: a table
// term may be a *variable* (a null), and a null at a join position matches
// any probe key under an equality condition — dropping such a row would
// change rep(). The index therefore splits rows per column subset, with
// *per-column wildcard granularity*:
//
//   - rows whose projection is all-constant hash into ground buckets;
//   - a row with a variable at some indexed position is filed under the
//     *longest ground prefix* of the indexed columns: level j holds the
//     rows whose first variable among the indexed columns sits at position
//     j, keyed by their ground prefix key (columns 0..j-1 of the subset).
//
// A probe with an all-constant key enumerates its ground bucket plus, per
// level j, only the level-j rows whose ground prefix equals the probe key's
// prefix — a wildcard row whose ground prefix *differs* from the probe can
// never match (that prefix column's equality is trivially false ground vs
// ground), so pruning on the prefix is sound and keeps probes selective on
// null-heavy tables. A probe whose key itself contains a variable
// degenerates to the full scan (the caller detects this via `IsGroundKey`
// and falls back). The index is a pure *candidate pruner*: it never decides
// a match by itself — callers re-apply the join predicate (which may emit
// condition atoms) to every candidate, so skipped rows are exactly those a
// nested-loop scan would have dropped on a trivially-false ground equality.
//
// Indexes are append-only, mirroring the row storage they shadow: `Add` must
// be called in increasing row-id order, and `Candidates` clips its result to
// an id range and returns it ascending, so an indexed enumeration visits
// rows in exactly the order the scan it replaces would have (semi-naive
// delta windows and deterministic output orders both rely on this).
//
// Building and extending an index is single-owner: `Add`/`Get` mutate
// shared scratch, so only one thread may grow a cache at a time
// (CTable::Index serializes its cache behind a mutex; the parallel fixpoint
// gives each worker its own TupleIndexCache). A *built* index over rows
// that are no longer changing is safe to probe from many threads —
// `Probe`/`Candidates` are const and touch only locals — which is what
// frozen-table readers (tables/snapshot.h) rely on.

#ifndef PW_TABLES_TUPLE_INDEX_H_
#define PW_TABLES_TUPLE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/tuple.h"

namespace pw {

/// FNV-1a over term hashes — the row-key hash shared by the index layer and
/// the fixpoint's duplicate-suppression map.
struct TupleHash {
  size_t operator()(const Tuple& t) const noexcept {
    uint64_t h = 1469598103934665603ull;
    for (const Term& term : t) {
      h ^= std::hash<Term>()(term);
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

/// A hash index of row ids keyed on the projection of each row's tuple onto
/// a fixed column subset. Rows with a variable in an indexed position land
/// in the wildcard list instead (they can equal any key under a condition).
class TupleIndex {
 public:
  explicit TupleIndex(std::vector<int> columns)
      : columns_(std::move(columns)) {}

  const std::vector<int>& columns() const { return columns_; }

  /// Rows indexed so far; `Add` ids must be exactly num_rows_indexed(),
  /// num_rows_indexed() + 1, ... (append-only, like the row storage).
  size_t num_rows_indexed() const { return num_rows_; }

  /// Indexes the next row. `tuple` must have every indexed column.
  void Add(const Tuple& tuple, size_t row_id);

  /// True iff `key` can be hashed (no variables) — otherwise the probe must
  /// fall back to enumerating every row.
  static bool IsGroundKey(const Tuple& key);

  /// Ids of ground rows whose projection equals `key`, ascending. `key` must
  /// be ground and have columns().size() positions. Wildcard rows are NOT
  /// included — enumerate `wildcard()` too, or use `Candidates`.
  const std::vector<size_t>& Probe(const Tuple& key) const;

  /// Ids of rows with a variable in an indexed position, ascending —
  /// materialized on demand from the prefix levels (probing goes through
  /// `Candidates`, which visits only the levels whose ground prefix matches
  /// the probe key, so no flat list is kept).
  std::vector<size_t> wildcard() const;

  /// The ids a probe for `key` must visit within the row-id range [lo, hi):
  /// the ground bucket merged with, per wildcard level, the rows whose
  /// ground prefix equals the probe key's prefix — ascending, exactly the
  /// subsequence of a [lo, hi) scan that can match `key`. `key` must be
  /// ground.
  std::vector<size_t> Candidates(const Tuple& key, size_t lo,
                                 size_t hi) const;

 private:
  std::vector<int> columns_;
  size_t num_rows_ = 0;
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> buckets_;
  // levels_[j]: rows whose first variable among the indexed columns is at
  // position j, keyed by their ground prefix (a j-term tuple). Sized lazily
  // to the deepest level seen.
  std::vector<std::unordered_map<Tuple, std::vector<size_t>, TupleHash>>
      levels_;
  Tuple scratch_key_;  // reused projection buffer
};

/// A lazily-built family of `TupleIndex`es over one growing row sequence,
/// keyed by column subset. The cache mirrors the interner's generation-stamp
/// pattern: `Get` takes the owner's current stamp, and a stamped entry is
/// valid exactly while the owner's stamp is unchanged — a mutation that
/// replaces rows wholesale bumps the stamp and the entry rebuilds
/// transparently on next use, while plain appends just extend the index by
/// the new rows (`tuple_of` is called once per newly indexed row).
class TupleIndexCache {
 public:
  /// Row accessor: the tuple of row `i`. Must stay valid for the call.
  using TupleFn = std::function<const Tuple&(size_t)>;

  /// The up-to-date index on `columns` over rows [0, num_rows). Builds it on
  /// first use, rebuilds if `stamp` changed since the entry was built (or if
  /// `num_rows` shrank below what was indexed — an extend can only append,
  /// so a shrunken owner forces a rebuild rather than serving stale ids),
  /// and extends it if rows were appended. The reference stays valid until
  /// `Clear` (later `Get`s may mutate the index's contents, so snapshot
  /// candidate lists before re-entering the cache).
  const TupleIndex& Get(const std::vector<int>& columns, size_t num_rows,
                        uint64_t stamp, const TupleFn& tuple_of);

  /// Drops every index (capacity of the entry table retained).
  void Clear() { entries_.clear(); }

  size_t num_indexes() const { return entries_.size(); }

  /// Build-side counters (for the evaluators' stats). Builds and extends
  /// are counted separately: a `Get` that appends rows to an already-built
  /// entry is one extend, never a build — so callers diffing these around a
  /// call can attribute the work without double-counting a mid-query
  /// catch-up as a rebuild.
  struct Stats {
    size_t builds = 0;        // entries built from scratch (first use, or
                              // rebuilt after a stamp change)
    size_t extends = 0;       // Get() calls that appended >= 1 row to an
                              // existing entry
    size_t rows_indexed = 0;  // Add() calls across all entries (a rebuild
                              // revisits its rows, so this can exceed the
                              // owner's row count)
  };
  const Stats& stats() const { return stats_; }

 private:
  struct IntVecHash {
    size_t operator()(const std::vector<int>& v) const noexcept {
      uint64_t h = 1469598103934665603ull;
      for (int c : v) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(c));
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  struct Entry {
    TupleIndex index;
    uint64_t stamp = 0;
  };

  std::unordered_map<std::vector<int>, Entry, IntVecHash> entries_;
  Stats stats_;
};

}  // namespace pw

#endif  // PW_TABLES_TUPLE_INDEX_H_
