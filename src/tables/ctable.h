// Conditioned tables — the paper's representation hierarchy.
//
// A c-table (Section 2.2) is a table of tuples over constants and variables,
// a *global* condition (a conjunction attached to the whole table) and a
// *local* condition per row. The other representations are special cases:
//
//   Codd-table : no conditions, every variable occurs at most once
//   e-table    : no conditions, variables may repeat (equalities incorporated)
//   i-table    : global condition of inequality atoms only, no repeats
//   g-table    : arbitrary global conjunction (equalities are incorporated
//                into the matrix on normalization), no local conditions
//   c-table    : everything
//
// `CTable::Kind()` classifies an arbitrary c-table into the *least* class of
// this hierarchy that contains it.

#ifndef PW_TABLES_CTABLE_H_
#define PW_TABLES_CTABLE_H_

#include <cassert>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "condition/conjunction.h"
#include "condition/interner.h"
#include "core/relation.h"
#include "core/tuple.h"
#include "tables/tuple_index.h"

namespace pw {

class Instance;
class SymbolTable;

/// The representation hierarchy, ordered by expressiveness.
enum class TableKind {
  kCoddTable = 0,
  kETable = 1,
  kITable = 2,
  kGTable = 3,
  kCTable = 4,
};

/// Human-readable kind name ("Codd-table", "e-table", ...).
std::string ToString(TableKind kind);

/// One row of a c-table: a tuple plus its local condition.
///
/// The condition has two synchronized representations: the materialized
/// `Conjunction` (the source of truth, meaningful independent of any
/// interner) and a lazily memoized interned id. `LocalId()` interns once and
/// then costs a stamp comparison; the cache is keyed on the interner's
/// generation stamp, so a `ConditionInterner::Clear()` (or asking a
/// different interner) transparently re-interns instead of returning a stale
/// id. Rows produced by interned pipelines seed the cache at construction,
/// so conditions cross layer boundaries without being re-canonicalized.
///
/// The id cache is mutable state behind a const row: a row must not be
/// *lazily* interned from multiple threads concurrently. Sharing read-only
/// rows across threads is still possible by warming the cache first —
/// `CTable::PrepareForSharing` interns every row against a shared interner,
/// after which concurrent `LocalId` calls with that interner are pure
/// stamp-match reads. Otherwise give each evaluator thread its own copy.
class CRow {
 public:
  CRow() = default;
  explicit CRow(Tuple tuple) : tuple(std::move(tuple)) {}
  CRow(Tuple tuple, Conjunction local)
      : tuple(std::move(tuple)), local_(std::move(local)) {}

  /// Builds a row whose condition is already interned in `interner`; the
  /// materialized form is the canonical resolution and the id cache starts
  /// hot.
  CRow(Tuple tuple, ConjId local, ConditionInterner& interner)
      : tuple(std::move(tuple)),
        local_(interner.Resolve(local)),
        local_id_(local),
        local_stamp_(interner.stamp()) {}

  /// The materialized local condition (default: true).
  const Conjunction& local() const { return local_; }

  /// Replaces the local condition, dropping the memoized id.
  void set_local(Conjunction local) {
    local_ = std::move(local);
    local_stamp_ = 0;
  }

  /// The interned id of the local condition in `interner`, memoized against
  /// the interner's generation stamp.
  ConjId LocalId(ConditionInterner& interner) const {
    if (local_stamp_ != interner.stamp()) {
      local_id_ = interner.Intern(local_);
      local_stamp_ = interner.stamp();
    }
    return local_id_;
  }

  /// A row with a different tuple but the same condition — including the
  /// memoized id cache, so tuple rewrites (projection) don't force downstream
  /// consumers to re-canonicalize the condition.
  CRow WithTuple(Tuple new_tuple) const {
    CRow out = *this;
    out.tuple = std::move(new_tuple);
    return out;
  }

  Tuple tuple;

  friend bool operator==(const CRow& a, const CRow& b) {
    return a.tuple == b.tuple && a.local_ == b.local_;
  }

 private:
  Conjunction local_;  // default: true
  mutable ConjId local_id_ = 0;
  mutable uint64_t local_stamp_ = 0;  // 0: no id cached
};

/// A conditioned table of fixed arity.
class CTable {
 public:
  explicit CTable(int arity = 0) : arity_(arity) {}

  // Copies carry the logical state and the stamped id caches but not the
  // lazily-built tuple indexes (the copy rebuilds its own on first use).
  CTable(const CTable& other);
  CTable& operator=(const CTable& other);
  CTable(CTable&&) = default;
  CTable& operator=(CTable&&) = default;

  int arity() const { return arity_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<CRow>& rows() const { return rows_; }
  const CRow& row(size_t i) const { return rows_[i]; }
  const Conjunction& global() const { return global_; }

  /// True after PrepareForSharing: the table is published to concurrent
  /// readers and must not be mutated (debug-asserted by every mutator).
  /// Copies of a frozen table are mutable again.
  bool frozen() const { return frozen_; }

  /// Freezes the table for sharing across reader threads: memoizes the
  /// global and every row condition against `interner` (so concurrent
  /// GlobalId/LocalId calls with it are read-only stamp matches) and
  /// allocates the index state eagerly (so concurrent Index() calls never
  /// race the lazy allocation). After this, mutators debug-assert. A no-op
  /// if already frozen under the same interner stamp.
  void PrepareForSharing(ConditionInterner& interner);

  /// Appends a row with local condition `true`.
  void AddRow(Tuple tuple);

  /// Appends a conditioned row.
  void AddRow(Tuple tuple, Conjunction local);

  /// Appends a row whose condition is already interned in `interner`; the
  /// row's id cache starts hot, so downstream consumers never re-canonicalize
  /// it.
  void AddRow(Tuple tuple, ConjId local, ConditionInterner& interner);

  /// Appends a copy of an existing row as-is, preserving its memoized
  /// condition-id cache — the cache-keeping path for operators that carry
  /// rows between tables unchanged (union, relation refs).
  void AddRow(CRow row);

  /// Replaces the row storage wholesale. Bumps the index stamp, so cached
  /// tuple indexes rebuild on next use — unlike AddRow appends, which let
  /// them extend incrementally. The in-place update path (tables/updates.h)
  /// uses this only when a delete actually rewrites rows; untouched tables
  /// keep their caches.
  void ReplaceRows(std::vector<CRow> rows);

  /// Replaces the global condition.
  void SetGlobal(Conjunction global) {
    assert(!frozen_ && "mutating a table frozen for sharing");
    global_ = std::move(global);
    global_stamp_ = 0;
  }

  /// Replaces the global condition when its interned id is already known
  /// (`id` must be the id `global` interns to in `interner`); the table's
  /// global-id cache starts hot.
  void SetGlobal(Conjunction global, ConjId id, ConditionInterner& interner) {
    assert(!frozen_ && "mutating a table frozen for sharing");
    global_ = std::move(global);
    global_id_ = id;
    global_stamp_ = interner.stamp();
  }

  /// Conjoins `atom` onto the global condition.
  void AddGlobalAtom(const CondAtom& atom) {
    assert(!frozen_ && "mutating a table frozen for sharing");
    global_.Add(atom);
    global_stamp_ = 0;
  }

  /// The interned id of the global condition, memoized against the
  /// interner's generation stamp (the same contract as CRow::LocalId).
  ConjId GlobalId(ConditionInterner& interner) const {
    if (global_stamp_ != interner.stamp()) {
      global_id_ = interner.Intern(global_);
      global_stamp_ = interner.stamp();
    }
    return global_id_;
  }

  /// The lazily-built hash index of the rows' tuples on `columns` (the
  /// shared join-acceleration layer, tables/tuple_index.h): built on first
  /// use, extended incrementally as rows are appended, and reused across
  /// queries. `built` (optional) reports whether this call built or rebuilt
  /// the index from scratch; `extended` (optional) whether it caught up on
  /// appended rows instead — never both, so callers can count builds and
  /// extends separately. The reference is owned by the table; later
  /// mutations extend or rebuild it in place, so snapshot candidate lists
  /// before mutating. The cache itself is mutex-guarded, so concurrent
  /// Index() calls on a frozen table are safe (the rows can't change, hence
  /// a built index is immutable and probes on the returned reference are
  /// lock-free); on a table still being mutated the usual single-thread
  /// ownership rules apply.
  const TupleIndex& Index(const std::vector<int>& columns,
                          bool* built = nullptr,
                          bool* extended = nullptr) const;

  /// Builds a table whose rows are the facts of `relation` (a complete
  /// relation is the degenerate c-table with no variables).
  static CTable FromRelation(const Relation& relation);

  /// Least class of the hierarchy containing this table.
  TableKind Kind() const;

  /// All variables occurring in tuples or conditions, sorted, deduplicated.
  std::vector<VarId> Variables() const;

  /// All constants occurring in tuples or conditions, sorted, deduplicated.
  std::vector<ConstId> Constants() const;

  /// True iff no variable occurs (then rep() is a singleton if the global
  /// condition is a tautology over ground atoms).
  bool IsGround() const;

  /// The matrix: rows stripped of their conditions, as tuples.
  std::vector<Tuple> Matrix() const;

  /// Applies a variable-to-term substitution to every tuple and condition.
  CTable Substitute(const std::unordered_map<VarId, Term>& substitution) const;

  /// Normal form: incorporates every equality the global condition forces
  /// into the matrix (substituting canonical representatives), drops
  /// trivially-true atoms, and keeps the remaining global inequalities.
  /// Preserves rep(). If the global condition is unsatisfiable the result is
  /// marked by a `false` global condition atom.
  CTable Normalized() const;

  /// Minimization on top of Normalized(): removes rows whose local
  /// conditions are unsatisfiable together with the global condition, drops
  /// local atoms implied by the global condition, and removes rows subsumed
  /// by a duplicate with an implied-or-equal local condition. Preserves
  /// rep().
  CTable Minimized() const;

  friend bool operator==(const CTable& a, const CTable& b) {
    return a.arity_ == b.arity_ && a.rows_ == b.rows_ &&
           a.global_ == b.global_;
  }

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  int arity_;
  std::vector<CRow> rows_;
  Conjunction global_;
  mutable ConjId global_id_ = 0;
  mutable uint64_t global_stamp_ = 0;  // 0: no id cached
  // Stamp of the row storage for the index cache: appends keep it (indexes
  // catch up incrementally), wholesale row replacement bumps it (indexes
  // rebuild on next use).
  uint64_t rows_stamp_ = 1;
  // The lazily-built index cache behind its guard. Heap-allocated so the
  // table stays movable (std::mutex is not); allocated up front by
  // PrepareForSharing so concurrent readers never race the lazy branch.
  struct IndexState {
    std::mutex mutex;
    TupleIndexCache cache;
  };
  mutable std::unique_ptr<IndexState> indexes_;
  // Sharing state (see PrepareForSharing). Reset on copy.
  bool frozen_ = false;
  uint64_t warmed_stamp_ = 0;
};

/// An n-vector of c-tables (Definition 2.2 generalization). The paper takes
/// the variable sets of member tables to be disjoint; we do not enforce this
/// — shared variables simply behave as if linked by equality conditions.
/// The represented set of worlds uses the conjunction of all members' global
/// conditions.
///
/// Tables are held behind shared pointers with copy-on-write semantics:
/// copying a CDatabase is a cheap shallow copy (the basis of the snapshot
/// reads in tables/snapshot.h), and `mutable_table` clones a table lazily
/// when it is shared with another copy. Value semantics are unchanged for
/// callers — mutating one copy never affects another.
class CDatabase {
 public:
  CDatabase() = default;
  explicit CDatabase(std::vector<CTable> tables);

  /// Wraps a single table.
  explicit CDatabase(CTable table) { AddTable(std::move(table)); }

  size_t num_tables() const { return tables_.size(); }
  const CTable& table(size_t i) const { return *tables_[i]; }

  /// The table, cloned first if it is shared with another CDatabase copy
  /// (copy-on-write). The reference is invalidated by the next copy-and-
  /// mutate cycle, so re-fetch it rather than holding it across copies.
  CTable& mutable_table(size_t i);

  size_t AddTable(CTable table);

  /// Freezes every table for concurrent readers (see
  /// CTable::PrepareForSharing); tables already frozen under the current
  /// interner stamp are skipped, so incremental re-publication after a
  /// mutation only warms the cloned tables.
  void PrepareForSharing(ConditionInterner& interner);

  /// The conjunction of all member global conditions.
  Conjunction CombinedGlobal() const;

  /// The interned id of the combined global condition: the memoized And-fold
  /// of the members' cached GlobalIds (no re-canonicalization when the
  /// members' ids are already hot).
  ConjId CombinedGlobalId(ConditionInterner& interner) const;

  /// Union of member variable sets, sorted, deduplicated.
  std::vector<VarId> Variables() const;

  /// Union of member constant sets, sorted, deduplicated.
  std::vector<ConstId> Constants() const;

  /// Arities of member tables.
  std::vector<int> Arities() const;

  /// Worst member kind (the database is as expressive as its worst table).
  TableKind Kind() const;

  /// Builds the degenerate c-database representing exactly `instance`.
  static CDatabase FromInstance(const Instance& instance);

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  std::vector<std::shared_ptr<CTable>> tables_;
};

}  // namespace pw

#endif  // PW_TABLES_CTABLE_H_
