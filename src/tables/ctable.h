// Conditioned tables — the paper's representation hierarchy.
//
// A c-table (Section 2.2) is a table of tuples over constants and variables,
// a *global* condition (a conjunction attached to the whole table) and a
// *local* condition per row. The other representations are special cases:
//
//   Codd-table : no conditions, every variable occurs at most once
//   e-table    : no conditions, variables may repeat (equalities incorporated)
//   i-table    : global condition of inequality atoms only, no repeats
//   g-table    : arbitrary global conjunction (equalities are incorporated
//                into the matrix on normalization), no local conditions
//   c-table    : everything
//
// `CTable::Kind()` classifies an arbitrary c-table into the *least* class of
// this hierarchy that contains it.

#ifndef PW_TABLES_CTABLE_H_
#define PW_TABLES_CTABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "condition/conjunction.h"
#include "core/relation.h"
#include "core/tuple.h"

namespace pw {

class Instance;
class SymbolTable;

/// The representation hierarchy, ordered by expressiveness.
enum class TableKind {
  kCoddTable = 0,
  kETable = 1,
  kITable = 2,
  kGTable = 3,
  kCTable = 4,
};

/// Human-readable kind name ("Codd-table", "e-table", ...).
std::string ToString(TableKind kind);

/// One row of a c-table: a tuple plus its local condition.
struct CRow {
  Tuple tuple;
  Conjunction local;  // default: true

  friend bool operator==(const CRow&, const CRow&) = default;
};

/// A conditioned table of fixed arity.
class CTable {
 public:
  explicit CTable(int arity = 0) : arity_(arity) {}

  int arity() const { return arity_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<CRow>& rows() const { return rows_; }
  const CRow& row(size_t i) const { return rows_[i]; }
  const Conjunction& global() const { return global_; }

  /// Appends a row with local condition `true`.
  void AddRow(Tuple tuple);

  /// Appends a conditioned row.
  void AddRow(Tuple tuple, Conjunction local);

  /// Replaces the global condition.
  void SetGlobal(Conjunction global) { global_ = std::move(global); }

  /// Conjoins `atom` onto the global condition.
  void AddGlobalAtom(const CondAtom& atom) { global_.Add(atom); }

  /// Builds a table whose rows are the facts of `relation` (a complete
  /// relation is the degenerate c-table with no variables).
  static CTable FromRelation(const Relation& relation);

  /// Least class of the hierarchy containing this table.
  TableKind Kind() const;

  /// All variables occurring in tuples or conditions, sorted, deduplicated.
  std::vector<VarId> Variables() const;

  /// All constants occurring in tuples or conditions, sorted, deduplicated.
  std::vector<ConstId> Constants() const;

  /// True iff no variable occurs (then rep() is a singleton if the global
  /// condition is a tautology over ground atoms).
  bool IsGround() const;

  /// The matrix: rows stripped of their conditions, as tuples.
  std::vector<Tuple> Matrix() const;

  /// Applies a variable-to-term substitution to every tuple and condition.
  CTable Substitute(const std::unordered_map<VarId, Term>& substitution) const;

  /// Normal form: incorporates every equality the global condition forces
  /// into the matrix (substituting canonical representatives), drops
  /// trivially-true atoms, and keeps the remaining global inequalities.
  /// Preserves rep(). If the global condition is unsatisfiable the result is
  /// marked by a `false` global condition atom.
  CTable Normalized() const;

  /// Minimization on top of Normalized(): removes rows whose local
  /// conditions are unsatisfiable together with the global condition, drops
  /// local atoms implied by the global condition, and removes rows subsumed
  /// by a duplicate with an implied-or-equal local condition. Preserves
  /// rep().
  CTable Minimized() const;

  friend bool operator==(const CTable&, const CTable&) = default;

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  int arity_;
  std::vector<CRow> rows_;
  Conjunction global_;
};

/// An n-vector of c-tables (Definition 2.2 generalization). The paper takes
/// the variable sets of member tables to be disjoint; we do not enforce this
/// — shared variables simply behave as if linked by equality conditions.
/// The represented set of worlds uses the conjunction of all members' global
/// conditions.
class CDatabase {
 public:
  CDatabase() = default;
  explicit CDatabase(std::vector<CTable> tables) : tables_(std::move(tables)) {}

  /// Wraps a single table.
  explicit CDatabase(CTable table) { tables_.push_back(std::move(table)); }

  size_t num_tables() const { return tables_.size(); }
  const CTable& table(size_t i) const { return tables_[i]; }
  CTable& mutable_table(size_t i) { return tables_[i]; }

  size_t AddTable(CTable table);

  /// The conjunction of all member global conditions.
  Conjunction CombinedGlobal() const;

  /// Union of member variable sets, sorted, deduplicated.
  std::vector<VarId> Variables() const;

  /// Union of member constant sets, sorted, deduplicated.
  std::vector<ConstId> Constants() const;

  /// Arities of member tables.
  std::vector<int> Arities() const;

  /// Worst member kind (the database is as expressive as its worst table).
  TableKind Kind() const;

  /// Builds the degenerate c-database representing exactly `instance`.
  static CDatabase FromInstance(const Instance& instance);

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  std::vector<CTable> tables_;
};

}  // namespace pw

#endif  // PW_TABLES_CTABLE_H_
