// Update operations on c-tables, after Abiteboul & Grahne, "Update
// semantics for incomplete databases" (VLDB 1985) — reference [1] of the
// paper.
//
// Updates act pointwise on the represented set of worlds:
//
//   rep(Insert(T, f)) = { I union {f}     : I in rep(T) }
//   rep(Delete(T, f)) = { I minus {f}     : I in rep(T) }
//
// Insertion is a new unconditioned ground row. Deletion of fact f rewrites
// each row (t, phi) into the rows (t, phi and t[i] != f[i]), one per
// position — the row survives exactly in the worlds where it differs from
// f somewhere. Conditions stay conjunctions, so the result remains a
// c-table of the same class-or-higher.
//
// The naive per-position expansion over-produces: a guarded copy whose
// condition contradicts the row's forced equalities (or the table's global
// condition) holds in no world, and sibling copies frequently subsume each
// other (e.g. deleting (1,1) from the row (x,x) emits the guard x != 1
// twice). The default path prunes both through the interner — unsatisfiable
// copies are dropped, and per source row only the antichain of weakest
// guard conditions survives — which preserves rep() exactly and keeps
// repeated deletes idempotent at the row level. The plain expansion stays
// available behind `UpdateOptions{.use_interner = false}` as the
// differential baseline.
//
// Two API families:
//   - the copy-based `InsertFact`/`DeleteFact`/`InsertFactIf` return a new
//     table (the seed behavior);
//   - the `*InPlace` variants mutate the table, preserving its cached
//     tuple indexes and per-row interned ids wherever possible (appends
//     extend the index cache; a delete that touches no row keeps every
//     cache; only a delete that actually rewrites rows forces a rebuild),
//     and report the row-level delta — the input incremental view
//     maintenance (datalog/ivm.h) runs on.

#ifndef PW_TABLES_UPDATES_H_
#define PW_TABLES_UPDATES_H_

#include <vector>

#include "condition/interner.h"
#include "tables/ctable.h"

namespace pw {

/// Knobs for the update path.
struct UpdateOptions {
  /// True (the default) prunes guarded deletion copies through the interner:
  /// copies unsatisfiable together with the row's local and the table's
  /// global condition are dropped, and per source row only the antichain of
  /// weakest conditions survives (memoized Implies). Conditional inserts
  /// whose condition cannot hold with the global condition are skipped.
  /// False keeps the plain per-position expansion — the differential
  /// baseline, which represents the same worlds with redundant rows.
  bool use_interner = true;

  /// Interner override; null uses ConditionInterner::Global(). Not
  /// thread-safe, like every interner use.
  ConditionInterner* interner = nullptr;
};

/// The table representing { I union {fact} : I in rep(table) }.
CTable InsertFact(const CTable& table, const Fact& fact);

/// The table representing { I minus {fact} : I in rep(table) }. Row count
/// grows at most by a factor of the arity (less under the default pruning).
CTable DeleteFact(const CTable& table, const Fact& fact,
                  const UpdateOptions& options = {});

/// Conditional insertion: the fact is present exactly in the worlds whose
/// valuations satisfy `condition` (in addition to the global condition).
CTable InsertFactIf(const CTable& table, const Fact& fact,
                    const Conjunction& condition,
                    const UpdateOptions& options = {});

/// In-place insertion: appends the unconditioned ground row. The table's
/// cached tuple indexes extend on next use instead of rebuilding.
void InsertFactInPlace(CTable& table, const Fact& fact);

/// In-place conditional insertion. Under the default options a condition
/// that cannot hold together with the table's global condition adds no row
/// (the fact would be present in no world). Returns true iff a row was
/// appended.
bool InsertFactIfInPlace(CTable& table, const Fact& fact,
                         const Conjunction& condition,
                         const UpdateOptions& options = {});

/// The row-level delta of an in-place deletion, in terms of (tuple, local
/// condition) rows. `kept` rows passed through unchanged; `removed` rows
/// were dropped or replaced by guarded copies; `added` holds those copies.
/// A row whose guarded copies collapse back onto it (the guard is implied
/// by its own condition) counts as kept, not as removed-and-re-added.
struct DeleteDelta {
  std::vector<CRow> kept;
  std::vector<CRow> removed;
  std::vector<CRow> added;
  /// True iff the table was rewritten (removed or added is nonempty).
  bool changed = false;
};

/// In-place deletion: rewrites the table to represent
/// { I minus {fact} : I in rep(table) } and reports the row-level delta.
/// When no row can match the fact the table (and all its caches) is left
/// untouched; otherwise the rows are replaced wholesale and cached indexes
/// rebuild on next use.
DeleteDelta DeleteFactInPlace(CTable& table, const Fact& fact,
                              const UpdateOptions& options = {});

}  // namespace pw

#endif  // PW_TABLES_UPDATES_H_
