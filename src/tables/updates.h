// Update operations on c-tables, after Abiteboul & Grahne, "Update
// semantics for incomplete databases" (VLDB 1985) — reference [1] of the
// paper.
//
// Updates act pointwise on the represented set of worlds:
//
//   rep(Insert(T, f)) = { I union {f}     : I in rep(T) }
//   rep(Delete(T, f)) = { I minus {f}     : I in rep(T) }
//
// Insertion is a new unconditioned ground row. Deletion of fact f rewrites
// each row (t, phi) into the rows (t, phi and t[i] != f[i]), one per
// position — the row survives exactly in the worlds where it differs from
// f somewhere. Conditions stay conjunctions, so the result remains a
// c-table of the same class-or-higher.

#ifndef PW_TABLES_UPDATES_H_
#define PW_TABLES_UPDATES_H_

#include "tables/ctable.h"

namespace pw {

/// The table representing { I union {fact} : I in rep(table) }.
CTable InsertFact(const CTable& table, const Fact& fact);

/// The table representing { I minus {fact} : I in rep(table) }. Row count
/// grows at most by a factor of the arity.
CTable DeleteFact(const CTable& table, const Fact& fact);

/// Conditional insertion: the fact is present exactly in the worlds whose
/// valuations satisfy `condition` (in addition to the global condition).
CTable InsertFactIf(const CTable& table, const Fact& fact,
                    const Conjunction& condition);

}  // namespace pw

#endif  // PW_TABLES_UPDATES_H_
