#include "tables/valuation.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace pw {

std::optional<ConstId> Valuation::Get(VarId var) const {
  auto it = map_.find(var);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

ConstId Valuation::Apply(const Term& term) const {
  if (term.is_constant()) return term.constant();
  auto it = map_.find(term.variable());
  assert(it != map_.end() && "valuation must be total on applied variables");
  return it->second;
}

Fact Valuation::Apply(const Tuple& tuple) const {
  Fact out;
  out.reserve(tuple.size());
  for (const Term& t : tuple) out.push_back(Apply(t));
  return out;
}

bool Valuation::Satisfies(const CondAtom& atom) const {
  ConstId l = Apply(atom.lhs);
  ConstId r = Apply(atom.rhs);
  return atom.is_equality ? (l == r) : (l != r);
}

bool Valuation::Satisfies(const Conjunction& conjunction) const {
  for (const CondAtom& a : conjunction.atoms()) {
    if (!Satisfies(a)) return false;
  }
  return true;
}

Relation Valuation::Apply(const CTable& table) const {
  Relation out(table.arity());
  for (const CRow& row : table.rows()) {
    if (Satisfies(row.local())) out.Insert(Apply(row.tuple));
  }
  return out;
}

Instance Valuation::Apply(const CDatabase& database) const {
  std::vector<Relation> relations;
  relations.reserve(database.num_tables());
  for (size_t i = 0; i < database.num_tables(); ++i) {
    relations.push_back(Apply(database.table(i)));
  }
  return Instance(std::move(relations));
}

std::string Valuation::ToString() const {
  std::vector<std::pair<VarId, ConstId>> entries(map_.begin(), map_.end());
  std::sort(entries.begin(), entries.end());
  std::string out = "{";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ", ";
    out += "x" + std::to_string(entries[i].first) + " -> " +
           std::to_string(entries[i].second);
  }
  out += "}";
  return out;
}

}  // namespace pw
