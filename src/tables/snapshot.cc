#include "tables/snapshot.h"

#include <utility>

namespace pw {

VersionedCDatabase::VersionedCDatabase(CDatabase db,
                                       ConditionInterner& interner)
    : interner_(&interner), db_(std::move(db)) {
  interner_->EnableSharing();
  db_.PrepareForSharing(*interner_);
}

VersionedCDatabase::Snapshot VersionedCDatabase::Read() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return Snapshot{db_, version_};
}

uint64_t VersionedCDatabase::Mutate(
    const std::function<void(CDatabase&)>& fn) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  CDatabase work = [&] {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    return db_;
  }();
  fn(work);
  // Freeze before publishing: mutable_table cloned every touched table, so
  // only those get warmed (frozen tables short-circuit on the stamp).
  work.PrepareForSharing(*interner_);
  std::lock_guard<std::mutex> lock(publish_mutex_);
  db_ = std::move(work);
  return ++version_;
}

uint64_t VersionedCDatabase::version() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return version_;
}

}  // namespace pw
