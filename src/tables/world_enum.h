// Enumeration of the possible worlds represented by a c-database.
//
// Following the proof of Proposition 2.1: with Delta the constants of the
// input (plus any caller-supplied context constants) and X its variables, it
// suffices to consider valuations with values in Delta union Delta', where
// Delta' is a set of |X| fresh constants — and only up to bijective renaming
// of Delta'. We enumerate exactly one representative per renaming class via
// restricted-growth sequences: the i-th variable may take any value of Delta
// or any already-used fresh constant or the single next unused one.
//
// This enumeration is exponential in |X| (as the paper's lower bounds say it
// must be, in the worst case); it is the reference oracle against which every
// polynomial-time special case in src/decision/ is cross-validated.

#ifndef PW_TABLES_WORLD_ENUM_H_
#define PW_TABLES_WORLD_ENUM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/instance.h"
#include "tables/ctable.h"
#include "tables/valuation.h"

namespace pw {

/// Options for world enumeration.
struct WorldEnumOptions {
  /// Context constants to include in Delta beyond those of the database
  /// (e.g. the constants of an instance being tested for membership). Any
  /// world mentioning a constant outside Delta union these is enumerated
  /// only up to renaming of its fresh constants.
  std::vector<ConstId> extra_constants;

  /// If nonzero, stop after this many satisfying valuations.
  uint64_t max_valuations = 0;
};

/// Returns `count` fresh constants distinct from every constant of `database`
/// and of `extra`.
std::vector<ConstId> FreshConstants(const CDatabase& database,
                                    const std::vector<ConstId>& extra,
                                    size_t count);

/// Invokes `fn` for one representative (per Delta'-renaming) of every
/// valuation over Delta union Delta' that satisfies the combined global
/// condition. `fn` returns false to stop early. Returns true iff the
/// enumeration ran to completion (no early stop, no max_valuations cutoff).
bool ForEachSatisfyingValuation(const CDatabase& database,
                                const WorldEnumOptions& options,
                                const std::function<bool(const Valuation&)>& fn);

/// Invokes `fn` with each produced world (not deduplicated) and the valuation
/// producing it. Same early-stop contract as ForEachSatisfyingValuation.
bool ForEachWorld(
    const CDatabase& database, const WorldEnumOptions& options,
    const std::function<bool(const Instance&, const Valuation&)>& fn);

/// All distinct worlds (up to Delta'-renaming), deduplicated.
std::vector<Instance> EnumerateWorlds(const CDatabase& database,
                                      const WorldEnumOptions& options = {});

/// Number of distinct worlds (up to Delta'-renaming).
size_t CountDistinctWorlds(const CDatabase& database,
                           const WorldEnumOptions& options = {});

/// True iff rep(database) is empty, i.e. the combined global condition is
/// unsatisfiable (checkable in PTIME; Definition 2.2 discussion).
bool RepIsEmpty(const CDatabase& database);

}  // namespace pw

#endif  // PW_TABLES_WORLD_ENUM_H_
