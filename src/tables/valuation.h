// Valuations: functions from variables (and constants) to constants.

#ifndef PW_TABLES_VALUATION_H_
#define PW_TABLES_VALUATION_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "condition/conjunction.h"
#include "core/instance.h"
#include "core/tuple.h"
#include "tables/ctable.h"

namespace pw {

/// A valuation sigma assigns a constant to every variable (and is the
/// identity on constants). Instances of this class are finite maps; applying
/// a valuation to an object containing an unmapped variable is a
/// precondition violation (checked via assert in Apply*).
class Valuation {
 public:
  Valuation() = default;
  explicit Valuation(std::unordered_map<VarId, ConstId> map)
      : map_(std::move(map)) {}

  void Set(VarId var, ConstId value) { map_[var] = value; }

  std::optional<ConstId> Get(VarId var) const;

  size_t size() const { return map_.size(); }

  /// sigma(t): the constant a term maps to.
  ConstId Apply(const Term& term) const;

  /// sigma(tuple): the fact the tuple maps to.
  Fact Apply(const Tuple& tuple) const;

  /// True iff the valuation satisfies the atom.
  bool Satisfies(const CondAtom& atom) const;

  /// True iff the valuation satisfies every atom of the conjunction.
  bool Satisfies(const Conjunction& conjunction) const;

  /// sigma(T): the relation containing sigma(t) for exactly those rows whose
  /// local condition sigma satisfies (Definition 2.2). Note the global
  /// condition is NOT consulted here; callers filter on it.
  Relation Apply(const CTable& table) const;

  /// sigma(DB): member-wise application.
  Instance Apply(const CDatabase& database) const;

  std::string ToString() const;

 private:
  std::unordered_map<VarId, ConstId> map_;
};

}  // namespace pw

#endif  // PW_TABLES_VALUATION_H_
