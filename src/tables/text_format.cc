#include "tables/text_format.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace pw {

namespace {

/// Splits text into non-empty lines with comments stripped.
std::vector<std::pair<int, std::string>> Lines(std::string_view text) {
  std::vector<std::pair<int, std::string>> out;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    ++line_no;
    std::string line(text.substr(pos, end - pos));
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    // Trim.
    size_t b = line.find_first_not_of(" \t\r");
    size_t e = line.find_last_not_of(" \t\r");
    if (b != std::string::npos) {
      out.emplace_back(line_no, line.substr(b, e - b + 1));
    }
    pos = end + 1;
    if (end == text.size()) break;
  }
  return out;
}

/// Whitespace/symbol tokenizer for one line.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      ++i;
      continue;
    }
    if (c == '!' && i + 1 < line.size() && line[i + 1] == '=') {
      tokens.push_back("!=");
      i += 2;
      continue;
    }
    if (c == '=' || c == '&' || c == ':' || c == '?') {
      tokens.push_back(std::string(1, c));
      ++i;
      continue;
    }
    size_t j = i;
    while (j < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[j])) ||
            line[j] == '_' || line[j] == '-')) {
      ++j;
    }
    if (j == i) {
      tokens.push_back(std::string(1, c));  // unknown char: surface in error
      ++i;
    } else {
      tokens.push_back(line.substr(i, j - i));
      i = j;
    }
  }
  return tokens;
}

bool IsInteger(const std::string& s) {
  if (s.empty()) return false;
  size_t start = s[0] == '-' ? 1 : 0;
  if (start == s.size()) return false;
  for (size_t i = start; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

/// Per-parse state: variable name interning.
struct ParserState {
  SymbolTable* symbols;
  std::map<std::string, VarId> vars;
  std::string error;
  int line = 0;

  void Fail(const std::string& message) {
    if (error.empty()) {
      error = "line " + std::to_string(line) + ": " + message;
    }
  }

  /// Parses one term starting at tokens[i]; advances i.
  std::optional<Term> ParseTerm(const std::vector<std::string>& tokens,
                                size_t& i) {
    if (i >= tokens.size()) {
      Fail("expected a term");
      return std::nullopt;
    }
    if (tokens[i] == "?") {
      if (i + 1 >= tokens.size()) {
        Fail("expected a variable name after '?'");
        return std::nullopt;
      }
      const std::string& name = tokens[i + 1];
      i += 2;
      auto [it, inserted] =
          vars.emplace(name, static_cast<VarId>(vars.size()));
      return Term::Var(it->second);
    }
    const std::string& tok = tokens[i];
    ++i;
    if (IsInteger(tok)) {
      return Term::Const(static_cast<ConstId>(std::stol(tok)));
    }
    if (std::isalpha(static_cast<unsigned char>(tok[0])) || tok[0] == '_') {
      if (symbols == nullptr) {
        Fail("named constant '" + tok + "' needs a SymbolTable");
        return std::nullopt;
      }
      return Term::Const(symbols->Intern(tok));
    }
    Fail("unexpected token '" + tok + "'");
    return std::nullopt;
  }

  /// Parses `term (=|!=) term` pairs joined by '&' until end of tokens.
  std::optional<Conjunction> ParseCondition(
      const std::vector<std::string>& tokens, size_t& i) {
    Conjunction out;
    while (i < tokens.size()) {
      auto lhs = ParseTerm(tokens, i);
      if (!lhs) return std::nullopt;
      if (i >= tokens.size() ||
          (tokens[i] != "=" && tokens[i] != "!=")) {
        Fail("expected '=' or '!=' in condition");
        return std::nullopt;
      }
      bool equality = tokens[i] == "=";
      ++i;
      auto rhs = ParseTerm(tokens, i);
      if (!rhs) return std::nullopt;
      out.Add(equality ? Eq(*lhs, *rhs) : Neq(*lhs, *rhs));
      if (i < tokens.size()) {
        if (tokens[i] != "&") {
          Fail("expected '&' between condition atoms");
          return std::nullopt;
        }
        ++i;
      }
    }
    return out;
  }
};

/// Parses the tables of `text` sequentially into `out`; variables shared.
bool ParseTables(std::string_view text, SymbolTable* symbols,
                 std::vector<CTable>& out, std::string& error) {
  ParserState state;
  state.symbols = symbols;
  std::optional<CTable> current;

  auto flush = [&out, &current]() {
    if (current.has_value()) {
      out.push_back(std::move(*current));
      current.reset();
    }
  };

  for (const auto& [line_no, line] : Lines(text)) {
    state.line = line_no;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "table") {
      if (tokens.size() != 3 || tokens[1] != "arity" ||
          !IsInteger(tokens[2])) {
        state.Fail("expected 'table arity <n>'");
        break;
      }
      flush();
      current.emplace(std::stoi(tokens[2]));
      continue;
    }
    if (!current.has_value()) {
      state.Fail("expected 'table arity <n>' before '" + tokens[0] + "'");
      break;
    }
    if (tokens[0] == "global") {
      size_t i = 1;
      auto cond = state.ParseCondition(tokens, i);
      if (!cond) break;
      Conjunction merged = current->global();
      merged.AddAll(*cond);
      current->SetGlobal(std::move(merged));
      continue;
    }
    if (tokens[0] == "row") {
      size_t i = 1;
      Tuple tuple;
      while (i < tokens.size() && tokens[i] != ":") {
        auto term = state.ParseTerm(tokens, i);
        if (!term) break;
        tuple.push_back(*term);
      }
      if (!state.error.empty()) break;
      if (static_cast<int>(tuple.size()) != current->arity()) {
        state.Fail("row has " + std::to_string(tuple.size()) +
                   " terms, table arity is " +
                   std::to_string(current->arity()));
        break;
      }
      Conjunction local;
      if (i < tokens.size() && tokens[i] == ":") {
        ++i;
        auto cond = state.ParseCondition(tokens, i);
        if (!cond) break;
        local = std::move(*cond);
      }
      current->AddRow(std::move(tuple), std::move(local));
      continue;
    }
    state.Fail("unknown directive '" + tokens[0] + "'");
    break;
  }
  if (!state.error.empty()) {
    error = state.error;
    return false;
  }
  flush();
  if (out.empty()) {
    error = "no tables found";
    return false;
  }
  return true;
}

std::string FormatTerm(const Term& t, const SymbolTable* symbols) {
  if (t.is_variable()) return "?v" + std::to_string(t.variable());
  if (symbols != nullptr) {
    if (auto name = symbols->Name(t.constant())) return *name;
  }
  return std::to_string(t.constant());
}

std::string FormatCondition(const Conjunction& c,
                            const SymbolTable* symbols) {
  std::string out;
  for (size_t i = 0; i < c.atoms().size(); ++i) {
    if (i > 0) out += " & ";
    const CondAtom& a = c.atoms()[i];
    out += FormatTerm(a.lhs, symbols) + (a.is_equality ? " = " : " != ") +
           FormatTerm(a.rhs, symbols);
  }
  return out;
}

}  // namespace

ParseTableResult ParseCTable(std::string_view text, SymbolTable* symbols) {
  ParseTableResult result;
  std::vector<CTable> tables;
  std::string error;
  if (!ParseTables(text, symbols, tables, error)) {
    result.error = error;
    return result;
  }
  if (tables.size() != 1) {
    result.error = "expected exactly one table, found " +
                   std::to_string(tables.size());
    return result;
  }
  result.table = std::move(tables[0]);
  return result;
}

ParseDatabaseResult ParseCDatabase(std::string_view text,
                                   SymbolTable* symbols) {
  ParseDatabaseResult result;
  std::vector<CTable> tables;
  std::string error;
  if (!ParseTables(text, symbols, tables, error)) {
    result.error = error;
    return result;
  }
  result.database = CDatabase(std::move(tables));
  return result;
}

std::string FormatCTable(const CTable& table, const SymbolTable* symbols) {
  std::ostringstream out;
  out << "table arity " << table.arity() << "\n";
  if (!table.global().IsTautology()) {
    out << "global " << FormatCondition(table.global(), symbols) << "\n";
  }
  for (const CRow& row : table.rows()) {
    out << "row";
    for (const Term& t : row.tuple) out << " " << FormatTerm(t, symbols);
    if (!row.local().IsTautology()) {
      out << " : " << FormatCondition(row.local(), symbols);
    }
    out << "\n";
  }
  return out.str();
}

std::string FormatCDatabase(const CDatabase& database,
                            const SymbolTable* symbols) {
  std::string out;
  for (size_t i = 0; i < database.num_tables(); ++i) {
    out += FormatCTable(database.table(i), symbols);
  }
  return out;
}

}  // namespace pw
