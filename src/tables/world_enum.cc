#include "tables/world_enum.h"

#include <algorithm>
#include <set>

#include "condition/interner.h"

namespace pw {

namespace {

/// Shared state of the recursive restricted-growth enumeration.
struct EnumState {
  const std::vector<VarId>* vars;
  std::vector<ConstId> delta;       // base constants
  std::vector<ConstId> fresh;       // |vars| fresh constants
  const Conjunction* global;
  // For each variable position, the global atoms fully assigned at it.
  std::vector<std::vector<const CondAtom*>> atoms_at;
  const std::function<bool(const Valuation&)>* fn;
  uint64_t remaining = 0;  // satisfying valuations still allowed (0 = inf)
  bool use_limit = false;
  bool complete = true;
  Valuation valuation;
};

bool Recurse(EnumState& state, size_t pos, size_t fresh_used) {
  if (pos == state.vars->size()) {
    if (state.use_limit) {
      if (state.remaining == 0) {
        state.complete = false;
        return false;
      }
      --state.remaining;
    }
    if (!(*state.fn)(state.valuation)) {
      state.complete = false;
      return false;
    }
    return true;
  }
  VarId var = (*state.vars)[pos];
  size_t num_choices = state.delta.size() + std::min(fresh_used + 1,
                                                     state.fresh.size());
  for (size_t i = 0; i < num_choices; ++i) {
    bool is_new_fresh = i == state.delta.size() + fresh_used;
    ConstId value = i < state.delta.size()
                        ? state.delta[i]
                        : state.fresh[i - state.delta.size()];
    state.valuation.Set(var, value);
    bool ok = true;
    for (const CondAtom* atom : state.atoms_at[pos]) {
      if (!state.valuation.Satisfies(*atom)) {
        ok = false;
        break;
      }
    }
    if (ok && !Recurse(state, pos + 1, fresh_used + (is_new_fresh ? 1 : 0))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<ConstId> FreshConstants(const CDatabase& database,
                                    const std::vector<ConstId>& extra,
                                    size_t count) {
  ConstId base = 0;
  for (ConstId c : database.Constants()) base = std::max(base, c + 1);
  for (ConstId c : extra) base = std::max(base, c + 1);
  std::vector<ConstId> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(base + static_cast<ConstId>(i));
  return out;
}

bool ForEachSatisfyingValuation(
    const CDatabase& database, const WorldEnumOptions& options,
    const std::function<bool(const Valuation&)>& fn) {
  std::vector<VarId> vars = database.Variables();
  Conjunction global = database.CombinedGlobal();

  std::set<ConstId> delta_set;
  for (ConstId c : database.Constants()) delta_set.insert(c);
  for (ConstId c : options.extra_constants) delta_set.insert(c);

  EnumState state;
  state.vars = &vars;
  state.delta.assign(delta_set.begin(), delta_set.end());
  state.fresh = FreshConstants(database, options.extra_constants, vars.size());
  state.global = &global;
  state.fn = &fn;
  state.remaining = options.max_valuations;
  state.use_limit = options.max_valuations != 0;

  // Position each global atom at the variable position where it becomes
  // fully assigned (ground atoms are checked up front).
  state.atoms_at.resize(vars.size() + 1);
  std::vector<std::vector<const CondAtom*>> ground_atoms;
  auto pos_of = [&vars](VarId v) {
    return static_cast<size_t>(
        std::lower_bound(vars.begin(), vars.end(), v) - vars.begin());
  };
  for (const CondAtom& atom : global.atoms()) {
    size_t last = 0;
    bool has_var = false;
    for (VarId v : AtomVariables(atom)) {
      has_var = true;
      last = std::max(last, pos_of(v));
    }
    if (!has_var) {
      if (IsTriviallyFalse(atom)) return true;  // rep empty: nothing to visit
      continue;                                 // trivially true
    }
    state.atoms_at[last].push_back(&atom);
  }

  Recurse(state, 0, 0);
  return state.complete;
}

bool ForEachWorld(
    const CDatabase& database, const WorldEnumOptions& options,
    const std::function<bool(const Instance&, const Valuation&)>& fn) {
  return ForEachSatisfyingValuation(
      database, options, [&database, &fn](const Valuation& v) {
        return fn(v.Apply(database), v);
      });
}

std::vector<Instance> EnumerateWorlds(const CDatabase& database,
                                      const WorldEnumOptions& options) {
  std::vector<Instance> out;
  ForEachWorld(database, options,
               [&out](const Instance& world, const Valuation&) {
                 if (std::find(out.begin(), out.end(), world) == out.end()) {
                   out.push_back(world);
                 }
                 return true;
               });
  return out;
}

size_t CountDistinctWorlds(const CDatabase& database,
                           const WorldEnumOptions& options) {
  return EnumerateWorlds(database, options).size();
}

bool RepIsEmpty(const CDatabase& database) {
  ConditionInterner& interner = ConditionInterner::Global();
  return !interner.Satisfiable(database.CombinedGlobalId(interner));
}

}  // namespace pw
