// Versioned snapshot reads over a mutating c-database.
//
// The concurrent query service (examples/pwserve.cpp, bench/serve_*.cc)
// needs readers to answer certainty/possibility/Datalog queries against a
// *consistent* database version while a writer keeps applying the in-place
// update APIs of tables/updates.h. VersionedCDatabase provides exactly
// that, composing three existing mechanisms:
//
//   - CDatabase's copy-on-write table storage makes a snapshot a shallow
//     copy (one shared_ptr per table) and lets the writer mutate a private
//     clone of only the tables it touches;
//   - a shared ConditionInterner (interner.h, EnableSharing) gives every
//     thread the same stamp, so warmed condition-id caches are hits
//     everywhere;
//   - CTable::PrepareForSharing freezes each table before publication, so
//     a published row's lazily-memoized state is already materialized and
//     readers never write through the mutable caches.
//
// Writers are serialized against each other; `fn` runs outside the readers'
// lock (on a private copy), so a slow mutation never blocks reads — readers
// only contend on the brief publish swap. Snapshot versions are dense:
// version N is the state after the Nth Mutate.
//
// Readers typically also install the shared interner as the process-wide
// Global() (ConditionInterner::SetProcessShared) so the decision procedures
// resolve the warmed caches instead of re-interning per thread.

#ifndef PW_TABLES_SNAPSHOT_H_
#define PW_TABLES_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <mutex>

#include "condition/interner.h"
#include "tables/ctable.h"

namespace pw {

class VersionedCDatabase {
 public:
  /// Takes ownership of `db` as version 0. `interner` must outlive this
  /// object; it is switched into shared mode and the initial state is
  /// frozen against it.
  VersionedCDatabase(CDatabase db, ConditionInterner& interner);

  /// One immutable published version. The database is a shallow COW copy:
  /// cheap to hold, safe to query from the owning thread while the writer
  /// publishes later versions.
  struct Snapshot {
    CDatabase db;
    uint64_t version = 0;
  };

  /// The latest published version. Safe from any thread.
  Snapshot Read() const;

  /// Applies `fn` to a private copy of the latest state, freezes the tables
  /// it touched, and publishes the result as the next version (returned).
  /// Mutations through `fn` must use the CDatabase/updates.h APIs
  /// (mutable_table clones shared tables before writing). Concurrent Mutate
  /// calls are serialized; readers are only blocked for the publish swap.
  uint64_t Mutate(const std::function<void(CDatabase&)>& fn);

  uint64_t version() const;

  ConditionInterner& interner() const { return *interner_; }

 private:
  ConditionInterner* interner_;
  mutable std::mutex publish_mutex_;  // guards db_ and version_
  std::mutex writer_mutex_;           // serializes Mutate
  CDatabase db_;
  uint64_t version_ = 0;
};

}  // namespace pw

#endif  // PW_TABLES_SNAPSHOT_H_
