// A human-readable text format for conditioned tables.
//
// Grammar (line oriented; '#' starts a comment; blank lines ignored):
//
//   table        := header global? row*
//   header       := "table" "arity" INT
//   global       := "global" condition
//   row          := "row" term+ (":" condition)?
//   condition    := atom (("&" | ",") atom)*
//   atom         := term ("=" | "!=") term
//   term         := INT            (numeric constant)
//                 | IDENT          (named constant, interned)
//                 | "?" IDENT      (variable)
//
// Example:
//
//   table arity 2
//   global ?x != 1 & ?y != alice
//   row 0 1
//   row 0 ?x : ?y = 0
//   row ?y ?x : ?x != ?y
//
// Variables are scoped to one parse: the first distinct `?name` gets VarId
// 0, the next VarId 1, and so on. A c-database is a sequence of tables.
// `FormatCTable` emits this format and round-trips through `ParseCTable`.

#ifndef PW_TABLES_TEXT_FORMAT_H_
#define PW_TABLES_TEXT_FORMAT_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/symbol_table.h"
#include "tables/ctable.h"

namespace pw {

/// Result of parsing one table.
struct ParseTableResult {
  std::optional<CTable> table;
  std::string error;  // empty iff table.has_value()

  bool ok() const { return table.has_value(); }
};

/// Result of parsing a database (one or more tables).
struct ParseDatabaseResult {
  std::optional<CDatabase> database;
  std::string error;

  bool ok() const { return database.has_value(); }
};

/// Parses a single table. Named constants are interned into `symbols`
/// (required if the text uses identifiers; may be null for purely numeric
/// text).
ParseTableResult ParseCTable(std::string_view text, SymbolTable* symbols);

/// Parses a sequence of tables into a c-database. Variables with the same
/// name are shared across tables (they denote the same unknown).
ParseDatabaseResult ParseCDatabase(std::string_view text,
                                   SymbolTable* symbols);

/// Emits the text format; `ParseCTable(FormatCTable(t))` reconstructs a
/// table with identical structure up to variable renaming.
std::string FormatCTable(const CTable& table,
                         const SymbolTable* symbols = nullptr);

/// Emits a whole database.
std::string FormatCDatabase(const CDatabase& database,
                            const SymbolTable* symbols = nullptr);

}  // namespace pw

#endif  // PW_TABLES_TEXT_FORMAT_H_
