#include "tables/tuple_index.h"

#include <algorithm>
#include <cassert>

namespace pw {

namespace {
const std::vector<size_t> kEmptyBucket;
}  // namespace

void TupleIndex::Add(const Tuple& tuple, size_t row_id) {
  assert(row_id == num_rows_);
  ++num_rows_;
  scratch_key_.clear();
  for (size_t j = 0; j < columns_.size(); ++j) {
    const Term& t = tuple[columns_[j]];
    if (t.is_variable()) {
      // First variable at indexed position j: file under the ground prefix
      // so probes with a differing prefix never revisit this row.
      if (levels_.size() <= j) levels_.resize(j + 1);
      levels_[j][scratch_key_].push_back(row_id);
      return;
    }
    scratch_key_.push_back(t);
  }
  buckets_[scratch_key_].push_back(row_id);
}

bool TupleIndex::IsGroundKey(const Tuple& key) { return IsGround(key); }

const std::vector<size_t>& TupleIndex::Probe(const Tuple& key) const {
  assert(key.size() == columns_.size() && IsGroundKey(key));
  auto it = buckets_.find(key);
  return it == buckets_.end() ? kEmptyBucket : it->second;
}

std::vector<size_t> TupleIndex::wildcard() const {
  std::vector<size_t> out;
  for (const auto& level : levels_) {
    for (const auto& [prefix, ids] : level) {
      out.insert(out.end(), ids.begin(), ids.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> TupleIndex::Candidates(const Tuple& key, size_t lo,
                                           size_t hi) const {
  assert(key.size() == columns_.size() && IsGroundKey(key));
  // Gather the clipped id ranges that can match: the ground bucket plus,
  // per wildcard level j, the rows whose ground prefix equals key[0..j).
  using Range = std::pair<std::vector<size_t>::const_iterator,
                          std::vector<size_t>::const_iterator>;
  std::vector<Range> ranges;
  size_t total = 0;
  auto push_range = [&](const std::vector<size_t>& ids) {
    auto b = std::lower_bound(ids.begin(), ids.end(), lo);
    auto e = std::lower_bound(b, ids.end(), hi);
    if (b != e) {
      ranges.emplace_back(b, e);
      total += static_cast<size_t>(e - b);
    }
  };
  auto it = buckets_.find(key);
  if (it != buckets_.end()) push_range(it->second);
  Tuple prefix;
  for (size_t j = 0; j < levels_.size(); ++j) {
    auto lit = levels_[j].find(prefix);
    if (lit != levels_[j].end()) push_range(lit->second);
    prefix.push_back(key[j]);
  }
  std::vector<size_t> out;
  out.reserve(total);
  if (ranges.size() == 1) {
    out.assign(ranges[0].first, ranges[0].second);
  } else if (ranges.size() == 2) {
    std::merge(ranges[0].first, ranges[0].second, ranges[1].first,
               ranges[1].second, std::back_inserter(out));
  } else if (!ranges.empty()) {
    for (const Range& r : ranges) out.insert(out.end(), r.first, r.second);
    std::sort(out.begin(), out.end());
  }
  return out;
}

const TupleIndex& TupleIndexCache::Get(const std::vector<int>& columns,
                                       size_t num_rows, uint64_t stamp,
                                       const TupleFn& tuple_of) {
  auto it = entries_.find(columns);  // hit path: no Entry materialized
  bool built = it == entries_.end();
  if (built) {
    it = entries_.emplace(columns, Entry{TupleIndex(columns), stamp}).first;
  }
  Entry& entry = it->second;
  if (!built && (entry.stamp != stamp ||
                 entry.index.num_rows_indexed() > num_rows)) {
    // The owner replaced its rows wholesale (stamp change), or shrank below
    // what was indexed (an over-delete that reused the stamp): rebuild from
    // scratch — extending an over-full index would hand out stale row ids.
    entry = Entry{TupleIndex(columns), stamp};
    built = true;
  }
  if (built) ++stats_.builds;
  // Catch up on appended rows (all of them, on a fresh build). An append
  // caught up on here is an *extend*, counted apart from builds.
  size_t added = 0;
  for (size_t id = entry.index.num_rows_indexed(); id < num_rows; ++id) {
    entry.index.Add(tuple_of(id), id);
    ++added;
  }
  stats_.rows_indexed += added;
  if (!built && added > 0) ++stats_.extends;
  return entry.index;
}

}  // namespace pw
