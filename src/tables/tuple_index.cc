#include "tables/tuple_index.h"

#include <algorithm>
#include <cassert>

namespace pw {

namespace {
const std::vector<size_t> kEmptyBucket;
}  // namespace

void TupleIndex::Add(const Tuple& tuple, size_t row_id) {
  assert(row_id == num_rows_);
  ++num_rows_;
  scratch_key_.clear();
  for (int c : columns_) {
    const Term& t = tuple[c];
    if (t.is_variable()) {
      wildcard_.push_back(row_id);
      return;
    }
    scratch_key_.push_back(t);
  }
  buckets_[scratch_key_].push_back(row_id);
}

bool TupleIndex::IsGroundKey(const Tuple& key) { return IsGround(key); }

const std::vector<size_t>& TupleIndex::Probe(const Tuple& key) const {
  assert(key.size() == columns_.size() && IsGroundKey(key));
  auto it = buckets_.find(key);
  return it == buckets_.end() ? kEmptyBucket : it->second;
}

std::vector<size_t> TupleIndex::Candidates(const Tuple& key, size_t lo,
                                           size_t hi) const {
  const std::vector<size_t>& bucket = Probe(key);
  auto clip = [lo, hi](const std::vector<size_t>& ids) {
    return std::pair(std::lower_bound(ids.begin(), ids.end(), lo),
                     std::lower_bound(ids.begin(), ids.end(), hi));
  };
  auto [b_lo, b_hi] = clip(bucket);
  auto [w_lo, w_hi] = clip(wildcard_);
  std::vector<size_t> out;
  out.reserve((b_hi - b_lo) + (w_hi - w_lo));
  std::merge(b_lo, b_hi, w_lo, w_hi, std::back_inserter(out));
  return out;
}

const TupleIndex& TupleIndexCache::Get(const std::vector<int>& columns,
                                       size_t num_rows, uint64_t stamp,
                                       const TupleFn& tuple_of) {
  auto it = entries_.find(columns);  // hit path: no Entry materialized
  bool built = it == entries_.end();
  if (built) {
    it = entries_.emplace(columns, Entry{TupleIndex(columns), stamp}).first;
  }
  Entry& entry = it->second;
  if (!built && entry.stamp != stamp) {
    // The owner replaced its rows wholesale: rebuild from scratch.
    entry = Entry{TupleIndex(columns), stamp};
    built = true;
  }
  if (built) ++stats_.builds;
  // Catch up on appended rows (all of them, on a fresh build).
  for (size_t id = entry.index.num_rows_indexed(); id < num_rows; ++id) {
    entry.index.Add(tuple_of(id), id);
    ++stats_.rows_indexed;
  }
  return entry.index;
}

}  // namespace pw
