#include "tables/updates.h"

#include <cassert>
#include <utility>

namespace pw {

namespace {

ConditionInterner& InternerOf(const UpdateOptions& options) {
  return options.interner != nullptr ? *options.interner
                                     : ConditionInterner::Global();
}

/// One guarded deletion copy under construction: the row with `cond`
/// conjoined (interned path) — `gcond` is the copy's condition together
/// with the table's global condition, the key the antichain compares on.
struct GuardedCopy {
  ConjId cond = ConditionInterner::kTrueConj;
  ConjId gcond = ConditionInterner::kTrueConj;
};

/// The interner-pruned guarded copies of deleting `fact` from `row`:
/// per escapable position one candidate condition row.local() AND
/// row[i] != fact[i]; candidates unsatisfiable together with the global
/// condition are dropped, and only the antichain of weakest conditions
/// survives (first-seen order breaks ties, so the output is deterministic).
/// Returns interned condition ids, deduplicated.
std::vector<ConjId> PrunedGuardedCopies(const CRow& row, const Fact& fact,
                                        ConjId global_id,
                                        ConditionInterner& interner) {
  ConjId row_id = row.LocalId(interner);
  std::vector<GuardedCopy> copies;
  for (size_t i = 0; i < row.tuple.size(); ++i) {
    CondAtom differs = Neq(row.tuple[i], Term::Const(fact[i]));
    if (IsTriviallyFalse(differs)) continue;
    ConjId cand = interner.And(row_id, interner.Intern(Conjunction{differs}));
    ConjId gcand = interner.And(global_id, cand);
    if (!interner.Satisfiable(gcand)) continue;  // holds in no world
    // Keep only the weakest conditions: a candidate implied-or-equal to a
    // kept sibling is subsumed (any world it keeps the row in, the sibling
    // does too); a kept sibling the candidate weakens dies.
    bool subsumed = false;
    for (const GuardedCopy& kept : copies) {
      if (interner.Implies(gcand, kept.cond)) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) continue;
    std::erase_if(copies, [&](const GuardedCopy& kept) {
      return interner.Implies(kept.gcond, cand);
    });
    copies.push_back(GuardedCopy{cand, gcand});
  }
  std::vector<ConjId> out;
  out.reserve(copies.size());
  for (const GuardedCopy& copy : copies) out.push_back(copy.cond);
  return out;
}

}  // namespace

CTable InsertFact(const CTable& table, const Fact& fact) {
  assert(static_cast<int>(fact.size()) == table.arity());
  CTable out = table;
  InsertFactInPlace(out, fact);
  return out;
}

void InsertFactInPlace(CTable& table, const Fact& fact) {
  assert(static_cast<int>(fact.size()) == table.arity());
  table.AddRow(ToTuple(fact));
}

CTable InsertFactIf(const CTable& table, const Fact& fact,
                    const Conjunction& condition,
                    const UpdateOptions& options) {
  assert(static_cast<int>(fact.size()) == table.arity());
  CTable out = table;
  InsertFactIfInPlace(out, fact, condition, options);
  return out;
}

bool InsertFactIfInPlace(CTable& table, const Fact& fact,
                         const Conjunction& condition,
                         const UpdateOptions& options) {
  assert(static_cast<int>(fact.size()) == table.arity());
  if (options.use_interner) {
    ConditionInterner& interner = InternerOf(options);
    ConjId cond = interner.Intern(condition);
    if (!interner.Satisfiable(
            interner.And(table.GlobalId(interner), cond))) {
      return false;  // the fact would be present in no world
    }
  }
  table.AddRow(ToTuple(fact), condition);
  return true;
}

CTable DeleteFact(const CTable& table, const Fact& fact,
                  const UpdateOptions& options) {
  CTable out = table;
  DeleteFactInPlace(out, fact, options);
  return out;
}

DeleteDelta DeleteFactInPlace(CTable& table, const Fact& fact,
                              const UpdateOptions& options) {
  assert(static_cast<int>(fact.size()) == table.arity());
  ConditionInterner& interner = InternerOf(options);
  ConjId global_id =
      options.use_interner ? table.GlobalId(interner) : ConditionInterner::kTrueConj;
  DeleteDelta delta;
  std::vector<CRow> rows;
  rows.reserve(table.num_rows());
  for (const CRow& row : table.rows()) {
    // If some position can never match the fact, the row can never equal
    // it: keep it unchanged (caches included).
    bool never_matches = false;
    for (size_t i = 0; i < row.tuple.size() && !never_matches; ++i) {
      never_matches = IsTriviallyTrue(Neq(row.tuple[i], Term::Const(fact[i])));
    }
    if (never_matches) {
      delta.kept.push_back(row);
      rows.push_back(row);
      continue;
    }
    // Otherwise emit one guarded copy per escapable position. A
    // fully-ground row equal to the fact emits nothing: deleted everywhere.
    if (options.use_interner) {
      std::vector<ConjId> copies =
          PrunedGuardedCopies(row, fact, global_id, interner);
      if (copies.size() == 1 && copies[0] == row.LocalId(interner)) {
        // The guards collapsed onto the row's own condition (e.g. the row's
        // forced equalities already contradict the fact): nothing changed.
        delta.kept.push_back(row);
        rows.push_back(row);
        continue;
      }
      delta.removed.push_back(row);
      for (ConjId cond : copies) {
        CRow copy(row.tuple, cond, interner);
        delta.added.push_back(copy);
        rows.push_back(std::move(copy));
      }
    } else {
      delta.removed.push_back(row);
      for (size_t i = 0; i < row.tuple.size(); ++i) {
        CondAtom differs = Neq(row.tuple[i], Term::Const(fact[i]));
        if (IsTriviallyFalse(differs)) continue;
        Conjunction local = row.local();
        local.Add(differs);
        CRow copy(row.tuple, std::move(local));
        delta.added.push_back(copy);
        rows.push_back(std::move(copy));
      }
    }
  }
  delta.changed = !delta.removed.empty() || !delta.added.empty();
  // An untouched table keeps its row storage and caches; a rewrite replaces
  // the rows wholesale (indexes rebuild on next use).
  if (delta.changed) table.ReplaceRows(std::move(rows));
  return delta;
}

}  // namespace pw
