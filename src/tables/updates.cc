#include "tables/updates.h"

#include <cassert>

namespace pw {

CTable InsertFact(const CTable& table, const Fact& fact) {
  assert(static_cast<int>(fact.size()) == table.arity());
  CTable out = table;
  out.AddRow(ToTuple(fact));
  return out;
}

CTable DeleteFact(const CTable& table, const Fact& fact) {
  assert(static_cast<int>(fact.size()) == table.arity());
  CTable out(table.arity());
  out.SetGlobal(table.global());
  for (const CRow& row : table.rows()) {
    // If some position can never match the fact, the row can never equal
    // it: keep it unchanged.
    bool never_matches = false;
    for (size_t i = 0; i < row.tuple.size() && !never_matches; ++i) {
      never_matches = IsTriviallyTrue(Neq(row.tuple[i], Term::Const(fact[i])));
    }
    if (never_matches) {
      out.AddRow(row.tuple, row.local());
      continue;
    }
    // Otherwise emit one guarded copy per escapable position. A
    // fully-ground row equal to the fact emits nothing: deleted everywhere.
    for (size_t i = 0; i < row.tuple.size(); ++i) {
      CondAtom differs = Neq(row.tuple[i], Term::Const(fact[i]));
      if (IsTriviallyFalse(differs)) continue;
      Conjunction local = row.local();
      local.Add(differs);
      out.AddRow(row.tuple, std::move(local));
    }
  }
  return out;
}

CTable InsertFactIf(const CTable& table, const Fact& fact,
                    const Conjunction& condition) {
  assert(static_cast<int>(fact.size()) == table.arity());
  CTable out = table;
  out.AddRow(ToTuple(fact), condition);
  return out;
}

}  // namespace pw
