#include "tables/ctable.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "condition/interner.h"
#include "core/instance.h"
#include "core/symbol_table.h"

namespace pw {

std::string ToString(TableKind kind) {
  switch (kind) {
    case TableKind::kCoddTable:
      return "Codd-table";
    case TableKind::kETable:
      return "e-table";
    case TableKind::kITable:
      return "i-table";
    case TableKind::kGTable:
      return "g-table";
    case TableKind::kCTable:
      return "c-table";
  }
  return "?";
}

CTable::CTable(const CTable& other)
    : arity_(other.arity_),
      rows_(other.rows_),
      global_(other.global_),
      global_id_(other.global_id_),
      global_stamp_(other.global_stamp_),
      rows_stamp_(other.rows_stamp_) {}  // copies thaw: frozen_ stays false

CTable& CTable::operator=(const CTable& other) {
  if (this == &other) return *this;
  arity_ = other.arity_;
  rows_ = other.rows_;
  global_ = other.global_;
  global_id_ = other.global_id_;
  global_stamp_ = other.global_stamp_;
  rows_stamp_ = other.rows_stamp_;
  indexes_.reset();  // rebuilt lazily against the new rows
  frozen_ = false;
  warmed_stamp_ = 0;
  return *this;
}

void CTable::PrepareForSharing(ConditionInterner& interner) {
  if (frozen_ && warmed_stamp_ == interner.stamp()) return;
  GlobalId(interner);
  for (const CRow& row : rows_) row.LocalId(interner);
  if (indexes_ == nullptr) indexes_ = std::make_unique<IndexState>();
  frozen_ = true;
  warmed_stamp_ = interner.stamp();
}

void CTable::AddRow(Tuple tuple) {
  assert(!frozen_ && "mutating a table frozen for sharing");
  assert(static_cast<int>(tuple.size()) == arity_);
  rows_.push_back(CRow(std::move(tuple)));
}

void CTable::AddRow(Tuple tuple, Conjunction local) {
  assert(!frozen_ && "mutating a table frozen for sharing");
  assert(static_cast<int>(tuple.size()) == arity_);
  rows_.push_back(CRow(std::move(tuple), std::move(local)));
}

void CTable::AddRow(Tuple tuple, ConjId local, ConditionInterner& interner) {
  assert(!frozen_ && "mutating a table frozen for sharing");
  assert(static_cast<int>(tuple.size()) == arity_);
  rows_.push_back(CRow(std::move(tuple), local, interner));
}

void CTable::AddRow(CRow row) {
  assert(!frozen_ && "mutating a table frozen for sharing");
  assert(static_cast<int>(row.tuple.size()) == arity_);
  rows_.push_back(std::move(row));
}

void CTable::ReplaceRows(std::vector<CRow> rows) {
  assert(!frozen_ && "mutating a table frozen for sharing");
#ifndef NDEBUG
  for (const CRow& row : rows) {
    assert(static_cast<int>(row.tuple.size()) == arity_);
  }
#endif
  rows_ = std::move(rows);
  ++rows_stamp_;  // wholesale replacement: any cached index must rebuild
}

const TupleIndex& CTable::Index(const std::vector<int>& columns,
                                bool* built, bool* extended) const {
  // The lazy allocation is single-threaded territory (concurrent readers
  // only see tables that went through PrepareForSharing, which allocates
  // eagerly); the cache itself is guarded so concurrent readers can demand
  // different column sets safely.
  if (indexes_ == nullptr) indexes_ = std::make_unique<IndexState>();
  std::lock_guard<std::mutex> lock(indexes_->mutex);
  TupleIndexCache& cache = indexes_->cache;
  size_t builds_before = cache.stats().builds;
  size_t extends_before = cache.stats().extends;
  const TupleIndex& index = cache.Get(
      columns, rows_.size(), rows_stamp_,
      [this](size_t i) -> const Tuple& { return rows_[i].tuple; });
  if (built != nullptr) *built = cache.stats().builds != builds_before;
  if (extended != nullptr) {
    *extended = cache.stats().extends != extends_before;
  }
  return index;
}

CTable CTable::FromRelation(const Relation& relation) {
  CTable out(relation.arity());
  for (const Fact& f : relation) out.AddRow(ToTuple(f));
  return out;
}

TableKind CTable::Kind() const {
  bool has_local = false;
  for (const CRow& row : rows_) {
    if (!row.local().IsTautology()) {
      has_local = true;
      break;
    }
  }
  if (has_local) return TableKind::kCTable;

  bool has_eq = false;
  bool has_neq = false;
  for (const CondAtom& a : global_.atoms()) {
    if (IsTriviallyTrue(a)) continue;
    (a.is_equality ? has_eq : has_neq) = true;
  }

  bool repeats = false;
  std::set<VarId> seen;
  for (const CRow& row : rows_) {
    for (const Term& t : row.tuple) {
      if (t.is_variable() && !seen.insert(t.variable()).second) {
        repeats = true;
      }
    }
  }

  if (has_eq) return TableKind::kGTable;
  if (has_neq) return repeats ? TableKind::kGTable : TableKind::kITable;
  if (repeats) return TableKind::kETable;
  return TableKind::kCoddTable;
}

std::vector<VarId> CTable::Variables() const {
  std::set<VarId> seen;
  for (const CRow& row : rows_) {
    for (const Term& t : row.tuple) {
      if (t.is_variable()) seen.insert(t.variable());
    }
    for (VarId v : row.local().Variables()) seen.insert(v);
  }
  for (VarId v : global_.Variables()) seen.insert(v);
  return {seen.begin(), seen.end()};
}

std::vector<ConstId> CTable::Constants() const {
  std::set<ConstId> seen;
  for (const CRow& row : rows_) {
    for (const Term& t : row.tuple) {
      if (t.is_constant()) seen.insert(t.constant());
    }
    for (ConstId c : row.local().Constants()) seen.insert(c);
  }
  for (ConstId c : global_.Constants()) seen.insert(c);
  return {seen.begin(), seen.end()};
}

bool CTable::IsGround() const { return Variables().empty(); }

std::vector<Tuple> CTable::Matrix() const {
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (const CRow& row : rows_) out.push_back(row.tuple);
  return out;
}

CTable CTable::Substitute(
    const std::unordered_map<VarId, Term>& substitution) const {
  auto apply = [&substitution](Term t) {
    if (t.is_variable()) {
      auto it = substitution.find(t.variable());
      if (it != substitution.end()) return it->second;
    }
    return t;
  };
  CTable out(arity_);
  for (const CRow& row : rows_) {
    Tuple tuple;
    tuple.reserve(row.tuple.size());
    for (const Term& t : row.tuple) tuple.push_back(apply(t));
    out.AddRow(std::move(tuple), row.local().Substitute(substitution));
  }
  out.SetGlobal(global_.Substitute(substitution));
  return out;
}

CTable CTable::Normalized() const {
  if (!ConditionInterner::Global().Satisfiable(
          GlobalId(ConditionInterner::Global()))) {
    CTable out(arity_);
    out.SetGlobal(Conjunction{FalseAtom()});
    return out;
  }
  CTable out = Substitute(global_.CanonicalSubstitution());
  Conjunction global = out.global().Simplified();
  out.SetGlobal(std::move(global));
  std::vector<CRow> rows;
  for (CRow& row : out.rows_) {
    rows.push_back(CRow(std::move(row.tuple), row.local().Simplified()));
  }
  out.rows_ = std::move(rows);
  ++out.rows_stamp_;  // wholesale replacement: any index must rebuild
  return out;
}

CTable CTable::Minimized() const {
  ConditionInterner& interner = ConditionInterner::Global();
  CTable normalized = Normalized();
  ConjId global_id = normalized.GlobalId(interner);
  if (!interner.Satisfiable(global_id)) return normalized;

  // Drop local atoms implied by the global condition; drop rows whose local
  // condition is inconsistent with it. The global's interned id is memoized
  // on the table, so each distinct local costs one memoized And.
  std::vector<CRow> kept;
  for (const CRow& row : normalized.rows()) {
    if (!interner.Satisfiable(
            interner.And(global_id, row.LocalId(interner)))) {
      continue;
    }
    Conjunction simplified = row.local().Simplified();
    Conjunction local;
    for (const CondAtom& atom : simplified.atoms()) {
      if (!normalized.global().Implies(atom)) local.Add(atom);
    }
    kept.push_back(CRow(row.tuple, std::move(local)));
  }

  // Row subsumption: (t, phi) is redundant if another kept row (t, psi) has
  // global AND phi implies psi (the subsumer is "on" whenever the subsumed
  // is) — a memoized pairwise implication between interned ids.
  std::vector<bool> dead(kept.size(), false);
  for (size_t i = 0; i < kept.size(); ++i) {
    if (dead[i]) continue;
    ConjId phi_i = interner.And(global_id, kept[i].LocalId(interner));
    for (size_t j = 0; j < kept.size(); ++j) {
      if (i == j || dead[j] || kept[i].tuple != kept[j].tuple) continue;
      // Tie-break identical rows by index to keep exactly one.
      if (interner.Implies(phi_i, kept[j].LocalId(interner)) &&
          (kept[i].local() != kept[j].local() || j < i)) {
        dead[i] = true;
        break;
      }
    }
  }

  CTable out(arity());
  out.SetGlobal(normalized.global());
  for (size_t i = 0; i < kept.size(); ++i) {
    if (!dead[i]) out.AddRow(kept[i].tuple, kept[i].local());
  }
  return out;
}

std::string CTable::ToString(const SymbolTable* symbols) const {
  std::string out;
  if (!global_.IsTautology()) {
    out += "[ " + global_.ToString(symbols) + " ]\n";
  }
  for (const CRow& row : rows_) {
    out += pw::ToString(row.tuple, symbols);
    if (!row.local().IsTautology()) {
      out += "  :: " + row.local().ToString(symbols);
    }
    out += "\n";
  }
  return out;
}

CDatabase::CDatabase(std::vector<CTable> tables) {
  tables_.reserve(tables.size());
  for (CTable& t : tables) AddTable(std::move(t));
}

CTable& CDatabase::mutable_table(size_t i) {
  if (tables_[i].use_count() > 1) {
    tables_[i] = std::make_shared<CTable>(*tables_[i]);
  }
  return *tables_[i];
}

size_t CDatabase::AddTable(CTable table) {
  tables_.push_back(std::make_shared<CTable>(std::move(table)));
  return tables_.size() - 1;
}

void CDatabase::PrepareForSharing(ConditionInterner& interner) {
  for (auto& t : tables_) t->PrepareForSharing(interner);
}

Conjunction CDatabase::CombinedGlobal() const {
  Conjunction out;
  for (const auto& t : tables_) out.AddAll(t->global());
  return out;
}

ConjId CDatabase::CombinedGlobalId(ConditionInterner& interner) const {
  ConjId out = ConditionInterner::kTrueConj;
  for (const auto& t : tables_) {
    out = interner.And(out, t->GlobalId(interner));
  }
  return out;
}

std::vector<VarId> CDatabase::Variables() const {
  std::set<VarId> seen;
  for (const auto& t : tables_) {
    for (VarId v : t->Variables()) seen.insert(v);
  }
  return {seen.begin(), seen.end()};
}

std::vector<ConstId> CDatabase::Constants() const {
  std::set<ConstId> seen;
  for (const auto& t : tables_) {
    for (ConstId c : t->Constants()) seen.insert(c);
  }
  return {seen.begin(), seen.end()};
}

std::vector<int> CDatabase::Arities() const {
  std::vector<int> out;
  out.reserve(tables_.size());
  for (const auto& t : tables_) out.push_back(t->arity());
  return out;
}

TableKind CDatabase::Kind() const {
  TableKind worst = TableKind::kCoddTable;
  for (const auto& t : tables_) worst = std::max(worst, t->Kind());
  if (worst < TableKind::kETable && tables_.size() > 1) {
    // A variable shared between tuples of two member tables acts like an
    // incorporated equality, so the database is at least an e-table database.
    std::set<VarId> seen;
    for (const auto& t : tables_) {
      std::set<VarId> mine;
      for (const CRow& row : t->rows()) {
        for (const Term& term : row.tuple) {
          if (term.is_variable()) mine.insert(term.variable());
        }
      }
      for (VarId v : mine) {
        if (!seen.insert(v).second) {
          worst = std::max(worst, TableKind::kETable);
        }
      }
    }
  }
  return worst;
}

CDatabase CDatabase::FromInstance(const Instance& instance) {
  CDatabase out;
  for (size_t i = 0; i < instance.num_relations(); ++i) {
    out.AddTable(CTable::FromRelation(instance.relation(i)));
  }
  return out;
}

std::string CDatabase::ToString(const SymbolTable* symbols) const {
  std::string out;
  for (size_t i = 0; i < tables_.size(); ++i) {
    out += "T" + std::to_string(i) + " (arity " +
           std::to_string(tables_[i]->arity()) + "):\n";
    out += tables_[i]->ToString(symbols);
  }
  return out;
}

}  // namespace pw
