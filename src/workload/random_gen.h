// Seeded random workload generators for tests and benchmarks.

#ifndef PW_WORKLOAD_RANDOM_GEN_H_
#define PW_WORKLOAD_RANDOM_GEN_H_

#include <cstdint>
#include <random>

#include "core/instance.h"
#include "solvers/cnf.h"
#include "solvers/graph.h"
#include "tables/ctable.h"

namespace pw {

/// Erdos–Renyi G(n, p) without self-loops or duplicate edges.
Graph RandomGraph(int num_nodes, double edge_probability, std::mt19937& rng);

/// A random graph guaranteed 3-colorable (edges only between planted color
/// classes).
Graph RandomThreeColorableGraph(int num_nodes, double edge_probability,
                                std::mt19937& rng);

/// Uniform random k-CNF/k-DNF clause matrix over `num_vars` variables.
ClausalFormula RandomClausalFormula(int num_vars, int num_clauses,
                                    int clause_width, std::mt19937& rng);

/// Random forall-exists split of a random 3CNF.
ForallExistsCnf RandomForallExists(int num_forall, int num_exists,
                                   int num_clauses, std::mt19937& rng);

/// Options controlling random c-table generation.
struct RandomCTableOptions {
  int arity = 2;
  int num_rows = 4;
  int num_constants = 3;    // constants drawn from [0, num_constants)
  int num_variables = 3;    // variables drawn from [0, num_variables)
  double variable_probability = 0.4;  // per-cell chance of a variable
  int num_global_atoms = 0;
  int num_local_atoms = 0;  // per-row upper bound (uniform in [0, bound])
  double equality_probability = 0.5;  // chance a condition atom is equality
};

/// A random c-table; conditions relate random variables/constants from the
/// same pools.
CTable RandomCTable(const RandomCTableOptions& options, std::mt19937& rng);

/// A random complete relation with facts over [0, num_constants).
Relation RandomRelation(int arity, int num_facts, int num_constants,
                        std::mt19937& rng);

}  // namespace pw

#endif  // PW_WORKLOAD_RANDOM_GEN_H_
