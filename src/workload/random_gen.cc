#include "workload/random_gen.h"

#include <set>

namespace pw {

Graph RandomGraph(int num_nodes, double edge_probability, std::mt19937& rng) {
  Graph g(num_nodes);
  std::bernoulli_distribution flip(edge_probability);
  for (int a = 0; a < num_nodes; ++a) {
    for (int b = a + 1; b < num_nodes; ++b) {
      if (flip(rng)) g.AddEdge(a, b);
    }
  }
  return g;
}

Graph RandomThreeColorableGraph(int num_nodes, double edge_probability,
                                std::mt19937& rng) {
  std::uniform_int_distribution<int> color(0, 2);
  std::vector<int> planted(num_nodes);
  for (int& c : planted) c = color(rng);
  Graph g(num_nodes);
  std::bernoulli_distribution flip(edge_probability);
  for (int a = 0; a < num_nodes; ++a) {
    for (int b = a + 1; b < num_nodes; ++b) {
      if (planted[a] != planted[b] && flip(rng)) g.AddEdge(a, b);
    }
  }
  return g;
}

ClausalFormula RandomClausalFormula(int num_vars, int num_clauses,
                                    int clause_width, std::mt19937& rng) {
  ClausalFormula f;
  f.num_vars = num_vars;
  std::uniform_int_distribution<int> var(0, num_vars - 1);
  std::bernoulli_distribution neg(0.5);
  for (int i = 0; i < num_clauses; ++i) {
    Clause c;
    std::set<int> used;
    while (static_cast<int>(c.size()) < clause_width) {
      int v = var(rng);
      if (!used.insert(v).second && num_vars >= clause_width) continue;
      c.push_back(neg(rng) ? Literal::Neg(v) : Literal::Pos(v));
    }
    f.clauses.push_back(std::move(c));
  }
  return f;
}

ForallExistsCnf RandomForallExists(int num_forall, int num_exists,
                                   int num_clauses, std::mt19937& rng) {
  ForallExistsCnf out;
  out.num_forall = num_forall;
  out.formula =
      RandomClausalFormula(num_forall + num_exists, num_clauses, 3, rng);
  return out;
}

namespace {

Term RandomTerm(const RandomCTableOptions& options, std::mt19937& rng) {
  std::bernoulli_distribution is_var(options.variable_probability);
  if (is_var(rng) && options.num_variables > 0) {
    std::uniform_int_distribution<int> var(0, options.num_variables - 1);
    return Term::Var(var(rng));
  }
  std::uniform_int_distribution<int> c(0, options.num_constants - 1);
  return Term::Const(c(rng));
}

CondAtom RandomAtom(const RandomCTableOptions& options, std::mt19937& rng) {
  std::bernoulli_distribution eq(options.equality_probability);
  Term lhs = RandomTerm(options, rng);
  Term rhs = RandomTerm(options, rng);
  return eq(rng) ? Eq(lhs, rhs) : Neq(lhs, rhs);
}

}  // namespace

CTable RandomCTable(const RandomCTableOptions& options, std::mt19937& rng) {
  CTable t(options.arity);
  std::uniform_int_distribution<int> local_count(0, options.num_local_atoms);
  for (int r = 0; r < options.num_rows; ++r) {
    Tuple tuple;
    for (int i = 0; i < options.arity; ++i) {
      tuple.push_back(RandomTerm(options, rng));
    }
    Conjunction local;
    if (options.num_local_atoms > 0) {
      int k = local_count(rng);
      for (int i = 0; i < k; ++i) local.Add(RandomAtom(options, rng));
    }
    t.AddRow(std::move(tuple), std::move(local));
  }
  Conjunction global;
  for (int i = 0; i < options.num_global_atoms; ++i) {
    global.Add(RandomAtom(options, rng));
  }
  t.SetGlobal(std::move(global));
  return t;
}

Relation RandomRelation(int arity, int num_facts, int num_constants,
                        std::mt19937& rng) {
  Relation r(arity);
  std::uniform_int_distribution<int> c(0, num_constants - 1);
  for (int i = 0; i < num_facts; ++i) {
    Fact f;
    for (int j = 0; j < arity; ++j) f.push_back(c(rng));
    r.Insert(f);
  }
  return r;
}

}  // namespace pw
