#include "datalog/analysis.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <utility>

namespace pw {

namespace {

std::string PredName(int pred) { return "P" + std::to_string(pred); }

}  // namespace

std::string Diagnostic::ToString() const {
  std::string out =
      severity == DiagnosticSeverity::kError ? "error: " : "warning: ";
  if (rule >= 0) out += "rule " + std::to_string(rule) + ": ";
  if (atom >= 0) out += "body atom " + std::to_string(atom) + ": ";
  out += message;
  return out;
}

ProgramAnalysis::ProgramAnalysis(const DatalogProgram& program)
    : program_(&program) {
  CheckRules();
  BuildSccs();
  ClassifyRules();
  ComputeDerivable();
  ComputeCones();
  WarnStructure();
}

std::string ProgramAnalysis::ErrorString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity != DiagnosticSeverity::kError) continue;
    if (!out.empty()) out += "\n";
    out += d.ToString();
  }
  return out;
}

// Emits every error (not first-wins), flags which rules have in-range
// predicates throughout (only those enter the graph structures), and detects
// textual duplicates of earlier rules.
void ProgramAnalysis::CheckRules() {
  const auto& rules = program_->rules();
  const int num_preds = static_cast<int>(program_->num_predicates());
  rule_in_graph_.assign(rules.size(), true);
  rule_duplicate_.assign(rules.size(), false);

  auto error = [this](size_t r, int atom, std::string message) {
    diagnostics_.push_back(Diagnostic{DiagnosticSeverity::kError,
                                      static_cast<int>(r), atom,
                                      std::move(message)});
    ++num_errors_;
  };

  for (size_t r = 0; r < rules.size(); ++r) {
    const DatalogRule& rule = rules[r];
    auto check_atom = [&](const DatalogAtom& a, int atom_pos,
                          const char* where) {
      if (a.predicate < 0 || a.predicate >= num_preds) {
        rule_in_graph_[r] = false;
        error(r, atom_pos, std::string(where) + ": unknown predicate " +
                               std::to_string(a.predicate));
        return;
      }
      if (static_cast<int>(a.args.size()) != program_->arity(a.predicate)) {
        error(r, atom_pos, std::string(where) + ": arity mismatch on " +
                               PredName(a.predicate) + " (got " +
                               std::to_string(a.args.size()) + ", declared " +
                               std::to_string(program_->arity(a.predicate)) +
                               ")");
      }
    };

    check_atom(rule.head, -1, "head");
    if (rule.head.predicate >= 0 && rule.head.predicate < num_preds &&
        !program_->IsIdb(rule.head.predicate)) {
      error(r, -1,
            "head predicate " + PredName(rule.head.predicate) +
                " is extensional");
    }
    std::set<VarId> body_vars;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      check_atom(rule.body[i], static_cast<int>(i), "body");
      for (const Term& t : rule.body[i].args) {
        if (t.is_variable()) body_vars.insert(t.variable());
      }
    }
    for (const Term& t : rule.head.args) {
      if (t.is_variable() && body_vars.count(t.variable()) == 0) {
        error(r, -1,
              "not range-restricted: head variable ?" +
                  std::to_string(t.variable()) + " does not occur in the body");
      }
    }

    for (size_t earlier = 0; earlier < r; ++earlier) {
      if (rules[earlier] == rule) {
        rule_duplicate_[r] = true;
        break;
      }
    }
  }
}

// Tarjan's SCC algorithm (iterative) over the predicate dependency graph
// (edges body -> head), then a deterministic Kahn renumbering of the
// condensation so SCC ids are a topological order: smallest-member-first
// among ready components, which puts extensional predicates early.
void ProgramAnalysis::BuildSccs() {
  const size_t n = program_->num_predicates();
  std::vector<std::vector<int>> out(n);
  for (size_t r = 0; r < program_->rules().size(); ++r) {
    if (!rule_in_graph_[r]) continue;
    const DatalogRule& rule = program_->rules()[r];
    for (const DatalogAtom& a : rule.body) {
      out[static_cast<size_t>(a.predicate)].push_back(rule.head.predicate);
    }
  }
  for (auto& edges : out) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<int> comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;
  int num_comps = 0;

  struct Frame {
    int vertex;
    size_t edge;
  };
  std::vector<Frame> frames;
  for (size_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    frames.push_back(Frame{static_cast<int>(start), 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const int v = f.vertex;
      if (f.edge == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      auto& edges = out[static_cast<size_t>(v)];
      while (f.edge < edges.size()) {
        const int w = edges[f.edge++];
        if (index[w] == -1) {
          frames.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = num_comps;
          if (w == v) break;
        }
        ++num_comps;
      }
      frames.pop_back();
      if (!frames.empty()) {
        Frame& parent = frames.back();
        low[parent.vertex] = std::min(low[parent.vertex], low[v]);
      }
    }
  }

  // Condensation + Kahn. Ready components are processed smallest member
  // first so the numbering is deterministic and EDB-heavy SCCs come early.
  std::vector<int> min_member(static_cast<size_t>(num_comps),
                              static_cast<int>(n));
  for (size_t p = 0; p < n; ++p) {
    auto& m = min_member[static_cast<size_t>(comp[p])];
    m = std::min(m, static_cast<int>(p));
  }
  std::vector<std::vector<int>> cond_out(static_cast<size_t>(num_comps));
  std::vector<int> indegree(static_cast<size_t>(num_comps), 0);
  for (size_t p = 0; p < n; ++p) {
    for (int h : out[p]) {
      const int from = comp[p];
      const int to = comp[h];
      if (from != to) cond_out[static_cast<size_t>(from)].push_back(to);
    }
  }
  for (auto& edges : cond_out) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    for (int to : edges) ++indegree[static_cast<size_t>(to)];
  }
  auto by_min_member = [&](int a, int b) {
    return min_member[static_cast<size_t>(a)] >
           min_member[static_cast<size_t>(b)];
  };
  std::priority_queue<int, std::vector<int>, decltype(by_min_member)> ready(
      by_min_member);
  for (int c = 0; c < num_comps; ++c) {
    if (indegree[static_cast<size_t>(c)] == 0) ready.push(c);
  }
  std::vector<int> topo_id(static_cast<size_t>(num_comps), -1);
  int next_id = 0;
  while (!ready.empty()) {
    const int c = ready.top();
    ready.pop();
    topo_id[static_cast<size_t>(c)] = next_id++;
    for (int to : cond_out[static_cast<size_t>(c)]) {
      if (--indegree[static_cast<size_t>(to)] == 0) ready.push(to);
    }
  }

  scc_of_.assign(n, 0);
  scc_members_.assign(static_cast<size_t>(num_comps), {});
  scc_recursive_.assign(static_cast<size_t>(num_comps), false);
  scc_rules_.assign(static_cast<size_t>(num_comps), {});
  for (size_t p = 0; p < n; ++p) {
    const int scc = topo_id[static_cast<size_t>(comp[p])];
    scc_of_[p] = scc;
    scc_members_[static_cast<size_t>(scc)].push_back(static_cast<int>(p));
  }
  for (int scc = 0; scc < num_comps; ++scc) {
    auto& members = scc_members_[static_cast<size_t>(scc)];
    if (members.size() > 1) {
      scc_recursive_[static_cast<size_t>(scc)] = true;
      continue;
    }
    const int p = members[0];
    const auto& edges = out[static_cast<size_t>(p)];
    scc_recursive_[static_cast<size_t>(scc)] =
        std::binary_search(edges.begin(), edges.end(), p);
  }
  for (size_t r = 0; r < program_->rules().size(); ++r) {
    if (!rule_in_graph_[r]) continue;
    const int head = program_->rules()[r].head.predicate;
    scc_rules_[static_cast<size_t>(scc_of_[static_cast<size_t>(head)])]
        .push_back(r);
  }
}

void ProgramAnalysis::ClassifyRules() {
  const auto& rules = program_->rules();
  rule_recursive_.assign(rules.size(), false);
  rule_connectivity_.assign(rules.size(), RuleConnectivity{});

  for (size_t r = 0; r < rules.size(); ++r) {
    const DatalogRule& rule = rules[r];
    if (rule_in_graph_[r]) {
      const int head_scc = scc_of_[static_cast<size_t>(rule.head.predicate)];
      for (const DatalogAtom& a : rule.body) {
        if (scc_of_[static_cast<size_t>(a.predicate)] == head_scc) {
          rule_recursive_[r] = true;
          break;
        }
      }
    }

    // Union-find over body atoms: atoms sharing a variable join components.
    RuleConnectivity& conn = rule_connectivity_[r];
    const size_t k = rule.body.size();
    std::vector<int> parent(k);
    for (size_t i = 0; i < k; ++i) parent[i] = static_cast<int>(i);
    auto find = [&](int x) {
      while (parent[static_cast<size_t>(x)] != x) {
        parent[static_cast<size_t>(x)] =
            parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
        x = parent[static_cast<size_t>(x)];
      }
      return x;
    };
    std::map<VarId, int> first_atom_with_var;
    for (size_t i = 0; i < k; ++i) {
      for (const Term& t : rule.body[i].args) {
        if (!t.is_variable()) continue;
        auto [it, inserted] =
            first_atom_with_var.emplace(t.variable(), static_cast<int>(i));
        if (!inserted) {
          parent[static_cast<size_t>(find(static_cast<int>(i)))] =
              find(it->second);
        }
      }
    }
    conn.component.assign(k, -1);
    std::vector<int> dense(k, -1);
    for (size_t i = 0; i < k; ++i) {
      const int root = find(static_cast<int>(i));
      if (dense[static_cast<size_t>(root)] == -1) {
        dense[static_cast<size_t>(root)] = conn.num_components++;
      }
      conn.component[i] = dense[static_cast<size_t>(root)];
    }
  }
}

// Least fixpoint of derivability: extensional predicates are given; an
// intensional predicate is derivable once some rule with an all-derivable
// body (vacuously, an empty body) has it as head. A rule is dead when it
// duplicates an earlier rule, mentions an underivable body predicate, or is
// excluded from the graph (out-of-range predicate ids).
void ProgramAnalysis::ComputeDerivable() {
  const auto& rules = program_->rules();
  derivable_.assign(program_->num_predicates(), false);
  for (size_t p = 0; p < program_->num_edb(); ++p) derivable_[p] = true;

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t r = 0; r < rules.size(); ++r) {
      if (!rule_in_graph_[r]) continue;
      const DatalogRule& rule = rules[r];
      if (derivable_[static_cast<size_t>(rule.head.predicate)]) continue;
      bool all = true;
      for (const DatalogAtom& a : rule.body) {
        if (!derivable_[static_cast<size_t>(a.predicate)]) {
          all = false;
          break;
        }
      }
      if (all) {
        derivable_[static_cast<size_t>(rule.head.predicate)] = true;
        changed = true;
      }
    }
  }

  rule_dead_.assign(rules.size(), false);
  for (size_t r = 0; r < rules.size(); ++r) {
    if (!rule_in_graph_[r] || rule_duplicate_[r]) {
      rule_dead_[r] = true;
      continue;
    }
    for (const DatalogAtom& a : rules[r].body) {
      if (!derivable_[static_cast<size_t>(a.predicate)]) {
        rule_dead_[r] = true;
        break;
      }
    }
  }
}

// Cone(p) = {q : q reachable from p over body -> head edges} ∪ {p}, one
// bitmap per predicate. Computed by BFS over the deduped edge lists; the
// graph is small (predicate count, not rule count), so all-pairs is cheap
// and lets consumers share a const reference instead of recomputing.
void ProgramAnalysis::ComputeCones() {
  const size_t n = program_->num_predicates();
  std::vector<std::vector<int>> out(n);
  for (size_t r = 0; r < program_->rules().size(); ++r) {
    if (!rule_in_graph_[r]) continue;
    const DatalogRule& rule = program_->rules()[r];
    for (const DatalogAtom& a : rule.body) {
      out[static_cast<size_t>(a.predicate)].push_back(rule.head.predicate);
    }
  }
  for (auto& edges : out) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  cones_.assign(n, {});
  std::vector<int> worklist;
  for (size_t p = 0; p < n; ++p) {
    std::vector<bool>& cone = cones_[p];
    cone.assign(n, false);
    cone[p] = true;
    worklist.assign(1, static_cast<int>(p));
    while (!worklist.empty()) {
      const int v = worklist.back();
      worklist.pop_back();
      for (int h : out[static_cast<size_t>(v)]) {
        if (!cone[static_cast<size_t>(h)]) {
          cone[static_cast<size_t>(h)] = true;
          worklist.push_back(h);
        }
      }
    }
  }
}

void ProgramAnalysis::WarnStructure() {
  const auto& rules = program_->rules();
  const size_t n = program_->num_predicates();

  auto warn = [this](int rule, int atom, std::string message) {
    diagnostics_.push_back(Diagnostic{DiagnosticSeverity::kWarning, rule, atom,
                                      std::move(message)});
  };

  for (size_t r = 0; r < rules.size(); ++r) {
    if (rule_duplicate_[r]) {
      warn(static_cast<int>(r), -1, "duplicate of an earlier rule");
      continue;
    }
    if (!rule_in_graph_[r]) continue;
    if (rule_dead_[r]) {
      int culprit = -1;
      for (size_t i = 0; i < rules[r].body.size(); ++i) {
        if (!derivable_[static_cast<size_t>(rules[r].body[i].predicate)]) {
          culprit = static_cast<int>(i);
          break;
        }
      }
      warn(static_cast<int>(r), culprit,
           "dead rule: body predicate " +
               PredName(culprit >= 0
                            ? rules[r].body[static_cast<size_t>(culprit)]
                                  .predicate
                            : -1) +
               " is underivable");
    }
    if (rule_connectivity_[r].num_components > 1) {
      warn(static_cast<int>(r), -1,
           "cartesian product: body has " +
               std::to_string(rule_connectivity_[r].num_components) +
               " unconnected variable components");
    }
  }

  std::vector<bool> in_head(n, false);
  std::vector<bool> in_body(n, false);
  for (size_t r = 0; r < rules.size(); ++r) {
    if (!rule_in_graph_[r]) continue;
    in_head[static_cast<size_t>(rules[r].head.predicate)] = true;
    for (const DatalogAtom& a : rules[r].body) {
      in_body[static_cast<size_t>(a.predicate)] = true;
    }
  }
  for (size_t p = 0; p < n; ++p) {
    if (!program_->IsIdb(static_cast<int>(p))) continue;
    if ((in_head[p] || in_body[p]) && !derivable_[p]) {
      warn(-1, -1,
           "predicate " + PredName(static_cast<int>(p)) +
               " is unreachable from the extensional database");
    }
    if (in_head[p] && !in_body[p]) {
      warn(-1, -1,
           "head-only predicate " + PredName(static_cast<int>(p)) +
               " is derived but never read");
    }
  }
}

}  // namespace pw
