// Static analysis of pure DATALOG programs.
//
// A ProgramAnalysis is computed once per program and answers the structural
// questions every downstream consumer used to re-derive (or skip) on its
// own:
//
//   - The predicate dependency graph (body -> head edges) and its SCC
//     condensation, numbered in a topological *stratum order*: every body
//     predicate's SCC id is <= its head predicate's, so evaluating SCCs in
//     id order sees each predicate's inputs converged before its own rules
//     fire (the stratum-scheduled fixpoint in ilalgebra/datalog_ctable.cc).
//
//   - Structured diagnostics. Errors are the well-formedness violations
//     DatalogProgram::Validate() used to report first-error-wins as a flat
//     string (unknown predicates, arity mismatches, extensional heads,
//     range-restriction violations); warnings flag programs that are legal
//     but suspicious: predicates underivable from the extensional database,
//     rules that can never fire, duplicate rules, cartesian-product rule
//     bodies, and head-only predicates nothing ever reads.
//
//   - Derived facts for optimizers: per-predicate reachability cones (the
//     closure incremental view maintenance over-deletes on a base change —
//     datalog/ivm.cc used to recompute it per delete), recursive vs
//     nonrecursive classification per rule and per SCC (a nonrecursive
//     stratum converges in a single pass), derivability (magic sets prune
//     dead rules before adorning — datalog/magic.cc), and per-rule variable
//     connectivity (the cartesian warning now, SIPS/body-reordering next).
//
// The analysis is immutable and holds a pointer to the program, which must
// outlive it. Malformed programs are analyzed defensively: rules naming
// unknown predicates produce errors and are excluded from the graph
// structures instead of indexing out of bounds.

#ifndef PW_DATALOG_ANALYSIS_H_
#define PW_DATALOG_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "datalog/program.h"

namespace pw {

enum class DiagnosticSeverity { kError, kWarning };

/// One finding of the program analysis, anchored to a rule and body atom
/// where applicable.
struct Diagnostic {
  DiagnosticSeverity severity = DiagnosticSeverity::kError;
  /// Index into program.rules(), or -1 for a program-level finding (e.g. an
  /// unreachable predicate).
  int rule = -1;
  /// Body atom position within the rule, or -1 for the head / the whole
  /// rule / a program-level finding.
  int atom = -1;
  std::string message;

  /// "error: rule 2: body atom 1: arity mismatch ..." — the rendering
  /// ErrorString() joins.
  std::string ToString() const;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Per-rule variable-connectivity: body atoms sharing a variable share a
/// component. More than one component means the rule multiplies unconnected
/// row sets — a cartesian product no join key can prune (body-reordering
/// and SIPS choice consume this same structure).
struct RuleConnectivity {
  /// Component id per body atom, dense in [0, num_components). Atoms with
  /// no variables are singleton components.
  std::vector<int> component;
  int num_components = 0;
};

class ProgramAnalysis {
 public:
  explicit ProgramAnalysis(const DatalogProgram& program);

  const DatalogProgram& program() const { return *program_; }

  // --- Diagnostics -----------------------------------------------------

  /// Every finding, errors first (within each severity, in rule order).
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// True iff no error-severity diagnostic exists (warnings allowed).
  bool ok() const { return num_errors_ == 0; }

  size_t num_errors() const { return num_errors_; }

  /// All errors joined, one per line — "" when ok(). The body of
  /// DatalogProgram::Validate().
  std::string ErrorString() const;

  // --- Dependency graph / strata ---------------------------------------

  /// Number of strongly connected components of the predicate dependency
  /// graph. Every predicate belongs to exactly one SCC; SCC ids are a
  /// topological order of the condensation (see SccOf).
  int num_sccs() const { return static_cast<int>(scc_members_.size()); }

  /// The SCC of `pred`. For every rule excluded from no graph (i.e. with
  /// in-range predicates), SccOf(body pred) <= SccOf(head pred).
  int SccOf(int pred) const { return scc_of_[static_cast<size_t>(pred)]; }

  /// Member predicates of `scc`, ascending.
  const std::vector<int>& SccMembers(int scc) const {
    return scc_members_[static_cast<size_t>(scc)];
  }

  /// True iff the SCC is recursive: more than one member, or a single
  /// predicate depending on itself. A nonrecursive stratum's rules can be
  /// fired in one pass — no new combination can appear afterwards.
  bool SccRecursive(int scc) const {
    return scc_recursive_[static_cast<size_t>(scc)];
  }

  /// Indices of the rules whose head lies in `scc`, in program order.
  const std::vector<size_t>& SccRules(int scc) const {
    return scc_rules_[static_cast<size_t>(scc)];
  }

  // --- Per-rule facts ---------------------------------------------------

  /// True iff some body atom's predicate shares the head's SCC — the rule
  /// participates in recursion and needs delta rounds; nonrecursive rules
  /// contribute everything they ever will in a single pass.
  bool RuleRecursive(size_t rule) const { return rule_recursive_[rule]; }

  /// True iff the rule can never fire on any extensional database: some
  /// body predicate is underivable, or the rule duplicates an earlier one
  /// (which already derives everything it would). Dead rules are safely
  /// skipped by evaluation and pruned by the magic rewrite.
  bool RuleDead(size_t rule) const { return rule_dead_[rule]; }

  /// True iff the rule textually equals an earlier rule (one of the two
  /// RuleDead causes, separated for diagnostics and tests).
  bool RuleDuplicate(size_t rule) const { return rule_duplicate_[rule]; }

  /// Variable-connectivity of the rule's body.
  const RuleConnectivity& Connectivity(size_t rule) const {
    return rule_connectivity_[rule];
  }

  // --- Per-predicate facts ----------------------------------------------

  /// True iff some extensional database gives `pred` a fact: extensional
  /// predicates always; an intensional one iff some rule with every body
  /// predicate derivable (an empty body vacuously) derives it.
  bool Derivable(int pred) const {
    return derivable_[static_cast<size_t>(pred)];
  }

  /// The reachability cone of `pred`: every predicate whose derivations can
  /// transitively depend on `pred` (closed under body -> head edges), the
  /// predicate itself included. A rule whose head is outside Cone(p) cannot
  /// mention any predicate inside it — the property incremental view
  /// maintenance relies on when it over-deletes a cone and re-derives
  /// firing only cone-head rules.
  const std::vector<bool>& Cone(int pred) const {
    return cones_[static_cast<size_t>(pred)];
  }

 private:
  void CheckRules();       // error diagnostics + duplicate detection
  void BuildSccs();        // Tarjan + topological renumbering
  void ClassifyRules();    // recursive / dead, connectivity
  void ComputeDerivable();
  void ComputeCones();
  void WarnStructure();    // unreachable / dead / cartesian / head-only

  const DatalogProgram* program_;
  std::vector<Diagnostic> diagnostics_;
  size_t num_errors_ = 0;

  // Rules whose predicates are all in range — the only ones the graph
  // structures consider.
  std::vector<bool> rule_in_graph_;

  std::vector<int> scc_of_;                    // per predicate
  std::vector<std::vector<int>> scc_members_;  // per SCC, ascending
  std::vector<bool> scc_recursive_;            // per SCC
  std::vector<std::vector<size_t>> scc_rules_; // per SCC, program order

  std::vector<bool> rule_recursive_;
  std::vector<bool> rule_dead_;
  std::vector<bool> rule_duplicate_;
  std::vector<RuleConnectivity> rule_connectivity_;

  std::vector<bool> derivable_;            // per predicate
  std::vector<std::vector<bool>> cones_;   // per predicate
};

}  // namespace pw

#endif  // PW_DATALOG_ANALYSIS_H_
