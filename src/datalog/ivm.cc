#include "datalog/ivm.h"

#include <cassert>
#include <utility>

#include "condition/backend.h"
#include "tables/updates.h"

namespace pw {

MaterializedView::MaterializedView(DatalogProgram program, CDatabase base,
                                   MaterializedViewOptions options)
    : original_(std::move(program)),
      evaluated_(std::make_unique<DatalogProgram>(original_)),
      base_(std::move(base)),
      options_(options) {
  options_.eval.magic_pred_begin = -1;
  Initialize();
}

MaterializedView::MaterializedView(DatalogProgram program, CDatabase base,
                                   DatalogGoal goal,
                                   MaterializedViewOptions options)
    : original_(std::move(program)), goal_(std::move(goal)),
      base_(std::move(base)), options_(options) {
  MagicRewriteResult rewrite = MagicRewrite(original_, *goal_);
  options_.eval.magic_pred_begin = static_cast<int>(rewrite.magic_begin);
  evaluated_ = std::make_unique<DatalogProgram>(std::move(rewrite.program));
  goal_table_ = rewrite.goal_predicate;
  Initialize();
}

void MaterializedView::Initialize() {
  ConditionInterner& interner = options_.eval.interner != nullptr
                                    ? *options_.eval.interner
                                    : ConditionInterner::Global();
  // Intern the global first so the fixpoint's interner-growth stat covers
  // evaluation only — same accounting as the one-shot evaluators. Updates
  // never touch table globals, so the id is fixed for the view's life.
  global_id_ = base_.CombinedGlobalId(interner);
  fix_.emplace(*evaluated_, options_.eval);
  fix_->SetGlobal(global_id_);
  for (size_t p = 0;
       p < evaluated_->num_edb() && p < base_.num_tables(); ++p) {
    fix_->SeedTable(static_cast<int>(p), base_.table(p));
  }
  fix_->FireGroundRules();
  fix_->Run();
}

bool MaterializedView::ValidBasePred(int pred) const {
  // Unconditional (not assert-only): these are the public update entry
  // points, and an out-of-range predicate would otherwise index base_ and
  // the fixpoint state out of bounds in NDEBUG builds.
  return pred >= 0 && static_cast<size_t>(pred) < evaluated_->num_edb() &&
         static_cast<size_t>(pred) < base_.num_tables();
}

void MaterializedView::Insert(int pred, const Fact& fact) {
  assert(ValidBasePred(pred));
  if (!ValidBasePred(pred)) return;
  ++stats_.updates_applied;
  InsertFactInPlace(base_.mutable_table(static_cast<size_t>(pred)), fact);
  if (fix_->Seed(pred, ToTuple(fact), ConditionInterner::kTrueConj)) {
    ++stats_.inserts_seeded;
    fix_->Run();
  }
  // A rejected seed (duplicate, subsumed, or unsatisfiable) changed nothing
  // derivable: the converged state already covers it.
}

bool MaterializedView::InsertIf(int pred, const Fact& fact,
                                const Conjunction& condition) {
  assert(ValidBasePred(pred));
  if (!ValidBasePred(pred)) return false;
  ++stats_.updates_applied;
  ConditionInterner& interner = fix_->interner();
  UpdateOptions update{.use_interner = true, .interner = &interner};
  if (!InsertFactIfInPlace(base_.mutable_table(static_cast<size_t>(pred)),
                           fact, condition, update)) {
    return false;
  }
  if (fix_->Seed(pred, ToTuple(fact), interner.Intern(condition))) {
    ++stats_.inserts_seeded;
    fix_->Run();
  }
  return true;
}

void MaterializedView::Delete(int pred, const Fact& fact) {
  assert(ValidBasePred(pred));
  if (!ValidBasePred(pred)) return;
  ++stats_.updates_applied;
  ConditionInterner& interner = fix_->interner();
  UpdateOptions update{.use_interner = true, .interner = &interner};
  DeleteDelta delta = DeleteFactInPlace(
      base_.mutable_table(static_cast<size_t>(pred)), fact, update);
  if (!delta.changed) return;  // no row could match: state untouched

  // Covered fast path. A removed row left no live trace in the fixpoint iff
  // it was unsatisfiable under the global condition (dropped at seed time)
  // or a KEPT row with the same tuple carries an implied-or-equal condition
  // — the exact subsumption rule the evaluator applies at insert, so the
  // removed row was killed (or rejected) the moment both rows coexisted,
  // before any rule could fire through it. In that case the converged state
  // is already the from-scratch state of the shrunken base, and the guarded
  // replacement rows seed forward like an insertion. The implication is on
  // the raw local conditions, NOT conjoined with the global: a row merely
  // rep()-redundant under the global is still live in the evaluator, and
  // treating it as covered would leave stale rows a recomputation lacks.
  ConditionBackend& backend = fix_->backend();
  bool covered = true;
  if (backend.disjunctive()) {
    // DD backend: the fixpoint keeps ONE live row per tuple whose condition
    // is the Or over the admitted seeds, so the removed row left no trace
    // iff it was dropped at seed time or the kept rows' disjunction
    // *propositionally absorbs* it — then the live diagram id equals the
    // from-scratch one. Theory-implied-but-not-absorbed is deliberately not
    // covered: the ids would differ and later deltas would reason against a
    // diagram a recomputation lacks; those cases take the cone rebuild.
    for (const CRow& removed : delta.removed) {
      CondId removed_cond = backend.FromConj(removed.LocalId(interner));
      if (!backend.SatisfiableWith(global_id_, removed_cond)) continue;
      CondId kept_or = ConditionBackend::kFalseCond;
      for (const CRow& kept : delta.kept) {
        if (kept.tuple != removed.tuple) continue;
        kept_or = backend.Or(kept_or,
                             backend.FromConj(kept.LocalId(interner)));
      }
      if (backend.Or(kept_or, removed_cond) != kept_or) {
        covered = false;
        break;
      }
    }
  } else {
    for (const CRow& removed : delta.removed) {
      ConjId removed_id = removed.LocalId(interner);
      if (!interner.Satisfiable(interner.And(global_id_, removed_id))) {
        continue;
      }
      bool has_cover = false;
      for (const CRow& kept : delta.kept) {
        if (kept.tuple != removed.tuple) continue;
        if (interner.Implies(removed_id, kept.LocalId(interner))) {
          has_cover = true;
          break;
        }
      }
      if (!has_cover) {
        covered = false;
        break;
      }
    }
  }
  if (covered) {
    ++stats_.deletes_covered;
    bool seeded = false;
    for (const CRow& added : delta.added) {
      seeded |= fix_->Seed(pred, added.tuple, added.LocalId(interner));
    }
    if (seeded) fix_->Run();
    return;
  }

  // Over-delete/re-derive: drop every predicate whose derivations could
  // involve the changed table — the reachability-closed cone of head
  // dependencies — plus the changed table itself, reseed the base rows,
  // and re-derive firing only cone-head rules against the intact rest.
  ++stats_.cone_rebuilds;
  std::vector<bool> cone = ConeOf(pred);
  for (size_t p = 0; p < cone.size(); ++p) {
    if (!cone[p]) continue;
    ++stats_.cone_predicates;
    stats_.rows_overdeleted += fix_->NumLiveRows(static_cast<int>(p));
    fix_->ClearPredicate(static_cast<int>(p));
  }
  fix_->ClearPredicate(pred);
  fix_->SeedTable(pred, base_.table(static_cast<size_t>(pred)));
  fix_->RunCone(cone);
}

std::vector<bool> MaterializedView::ConeOf(int pred) const {
  // The fixpoint's program analysis precomputes every reachability cone
  // (closed over body -> head edges, so RunCone's rule filter is sound: a
  // rule outside the cone cannot mention a cone predicate). The seed `pred`
  // itself is extensional (rule heads are intensional by construction) and
  // is reseeded rather than re-derived, so its bit clears — the mask
  // doubles as the head filter.
  std::vector<bool> cone = fix_->analysis().Cone(pred);
  cone[static_cast<size_t>(pred)] = false;
  return cone;
}

CDatabase MaterializedView::Materialized() const {
  CDatabase out;
  ConditionInterner& interner = fix_->interner();
  for (size_t p = 0; p < evaluated_->num_predicates(); ++p) {
    CTable t = fix_->Export(static_cast<int>(p));
    if (p == 0) {
      t.SetGlobal(base_.CombinedGlobal(), global_id_, interner);
    }
    out.AddTable(std::move(t));
  }
  return out;
}

CTable MaterializedView::Answers() const {
  assert(goal_.has_value());
  ConditionInterner& interner = fix_->interner();
  CTable result = RestrictTableToGoal(fix_->Export(goal_table_),
                                      goal_->bindings, global_id_, interner);
  result.SetGlobal(base_.CombinedGlobal(), global_id_, interner);
  return result;
}

IvmStats MaterializedView::stats() const {
  stats_.fixpoint = fix_->stats();
  return stats_;
}

}  // namespace pw
