// Bottom-up DATALOG evaluation: naive and semi-naive fixpoint.

#ifndef PW_DATALOG_EVAL_H_
#define PW_DATALOG_EVAL_H_

#include "core/instance.h"
#include "datalog/program.h"

namespace pw {

/// Computes the least fixpoint of `program` over `edb`. The input instance
/// must supply the extensional relations [0, num_edb) with matching arities;
/// the result holds all predicates — extensional relations copied through,
/// intensional relations populated.
///
/// Naive evaluation: re-derives everything each round. Reference
/// implementation for testing the semi-naive one.
Instance NaiveEval(const DatalogProgram& program, const Instance& edb);

/// Semi-naive evaluation: each round joins at least one delta-atom. Same
/// result as NaiveEval, asymptotically fewer re-derivations.
Instance SemiNaiveEval(const DatalogProgram& program, const Instance& edb);

}  // namespace pw

#endif  // PW_DATALOG_EVAL_H_
