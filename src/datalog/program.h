// Pure DATALOG programs (Section 2.1: fixpoints of positive existential
// queries; no negation, no !=).
//
// Predicates are identified by dense indices. Predicates [0, num_edb) are
// extensional (supplied by the input instance); predicates [num_edb,
// num_predicates) are intensional (computed as the least fixpoint).

#ifndef PW_DATALOG_PROGRAM_H_
#define PW_DATALOG_PROGRAM_H_

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "core/tuple.h"

namespace pw {

/// One atom of a rule: predicate index plus an argument tuple of variables
/// and constants. Variables are scoped to the enclosing rule.
struct DatalogAtom {
  int predicate = 0;
  Tuple args;

  friend bool operator==(const DatalogAtom&, const DatalogAtom&) = default;
};

/// A Horn rule `head :- body[0], ..., body[k-1]`.
struct DatalogRule {
  DatalogAtom head;
  std::vector<DatalogAtom> body;

  friend bool operator==(const DatalogRule&, const DatalogRule&) = default;
};

/// A pure DATALOG program.
class DatalogProgram {
 public:
  DatalogProgram() = default;

  /// `arities[p]` is the arity of predicate p; predicates [0, num_edb) are
  /// extensional. `num_edb` is clamped to the predicate count so IsIdb stays
  /// meaningful on malformed input (and asserts in debug builds).
  DatalogProgram(std::vector<int> arities, size_t num_edb)
      : arities_(std::move(arities)),
        num_edb_(std::min(num_edb, arities_.size())) {
    assert(num_edb <= arities_.size());
  }

  void AddRule(DatalogRule rule) { rules_.push_back(std::move(rule)); }

  size_t num_predicates() const { return arities_.size(); }
  size_t num_edb() const { return num_edb_; }
  int arity(int predicate) const {
    assert(predicate >= 0 &&
           static_cast<size_t>(predicate) < arities_.size());
    return arities_.at(static_cast<size_t>(predicate));
  }
  const std::vector<DatalogRule>& rules() const { return rules_; }

  bool IsIdb(int predicate) const {
    return predicate >= static_cast<int>(num_edb_);
  }

  /// Structural sanity: arities match, heads are intensional, rules are
  /// range-restricted (every head variable occurs in the body). Thin wrapper
  /// over ProgramAnalysis that joins **all** errors (one per line), or ""
  /// if valid; see datalog/analysis.h for structured diagnostics.
  std::string Validate() const;

  std::string ToString() const;

 private:
  std::vector<int> arities_;
  size_t num_edb_ = 0;
  std::vector<DatalogRule> rules_;
};

}  // namespace pw

#endif  // PW_DATALOG_PROGRAM_H_
