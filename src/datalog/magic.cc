#include "datalog/magic.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <utility>

#include "datalog/analysis.h"

namespace pw {

namespace {

/// The bound argument terms of `atom` under `adornment`, in position order.
/// Positions past the mask width never test as bound.
Tuple BoundArgs(const DatalogAtom& atom, Adornment adornment) {
  Tuple out;
  for (size_t i = 0; i < atom.args.size() && i < kMaxAdornedPositions; ++i) {
    if (adornment & (Adornment{1} << i)) out.push_back(atom.args[i]);
  }
  return out;
}

/// The adornment of a body atom under the current bound-variable set:
/// a position is bound when its argument is a constant or a variable that is
/// already bound (a bound head variable, or any variable of an earlier body
/// atom — the left-to-right full SIPS).
Adornment AtomAdornment(const DatalogAtom& atom,
                        const std::set<VarId>& bound_vars) {
  Adornment a = 0;
  for (size_t i = 0; i < atom.args.size() && i < kMaxAdornedPositions; ++i) {
    const Term& t = atom.args[i];
    if (t.is_constant() || bound_vars.count(t.variable()) > 0) {
      a |= Adornment{1} << i;
    }
  }
  return a;
}

/// The variables bound before any body atom is matched: head variables at
/// bound positions (their values arrive through the magic guard atom).
std::set<VarId> HeadBoundVars(const DatalogAtom& head, Adornment adornment) {
  std::set<VarId> bound;
  for (size_t i = 0; i < head.args.size() && i < kMaxAdornedPositions; ++i) {
    if ((adornment & (Adornment{1} << i)) && head.args[i].is_variable()) {
      bound.insert(head.args[i].variable());
    }
  }
  return bound;
}

/// The rules the rewrite should ignore: rules the program analysis proves
/// can never fire (a body predicate underivable from the extensional
/// database) or that textually duplicate an earlier rule (whose adorned and
/// demand forms would be emitted — and deduped — anyway). Pruning them
/// before adornment discovery keeps dead demand chains out of the rewritten
/// program entirely.
std::vector<bool> DeadRules(const ProgramAnalysis& analysis) {
  std::vector<bool> dead(analysis.program().rules().size(), false);
  for (size_t r = 0; r < dead.size(); ++r) {
    dead[r] = analysis.RuleDead(r);
  }
  return dead;
}

/// Adornment discovery: the (predicate, binding pattern) pairs reachable
/// from the goal's demand, breadth-first so the goal is pair 0. `pair_index`
/// maps each pair to its position in the returned list. Rules flagged in
/// `dead` generate no demand.
std::vector<std::pair<int, Adornment>> DiscoverAdornedPairs(
    const DatalogProgram& program, const DatalogGoal& goal,
    const std::vector<bool>& dead,
    std::map<std::pair<int, Adornment>, size_t>& pair_index) {
  std::vector<std::pair<int, Adornment>> pairs;
  auto discover = [&](int pred, Adornment a) {
    auto [it, inserted] = pair_index.try_emplace({pred, a}, pairs.size());
    if (inserted) pairs.emplace_back(pred, a);
  };
  discover(goal.predicate, goal.adornment());
  for (size_t next = 0; next < pairs.size(); ++next) {
    auto [pred, adornment] = pairs[next];
    for (size_t r = 0; r < program.rules().size(); ++r) {
      const DatalogRule& rule = program.rules()[r];
      if (dead[r] || rule.head.predicate != pred) continue;
      std::set<VarId> bound = HeadBoundVars(rule.head, adornment);
      for (const DatalogAtom& atom : rule.body) {
        if (program.IsIdb(atom.predicate)) {
          discover(atom.predicate, AtomAdornment(atom, bound));
        }
        for (const Term& t : atom.args) {
          if (t.is_variable()) bound.insert(t.variable());
        }
      }
    }
  }
  return pairs;
}

void AppendRuleUnlessDuplicate(std::vector<DatalogRule>& rules,
                               DatalogRule rule, size_t& counter) {
  if (std::find(rules.begin(), rules.end(), rule) != rules.end()) return;
  rules.push_back(std::move(rule));
  ++counter;
}

}  // namespace

std::string ToAdornmentString(Adornment adornment, int arity) {
  std::string out;
  for (int i = 0; i < arity; ++i) {
    bool bound = static_cast<size_t>(i) < kMaxAdornedPositions &&
                 (adornment & (Adornment{1} << i)) != 0;
    out.push_back(bound ? 'b' : 'f');
  }
  return out;
}

std::string MagicRewriteResult::ToString() const {
  auto atom_str = [this](const DatalogAtom& a) {
    return names[a.predicate] + pw::ToString(a.args);
  };
  std::string out;
  for (const DatalogRule& rule : program.rules()) {
    out += atom_str(rule.head) + " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += atom_str(rule.body[i]);
    }
    out += ".\n";
  }
  return out;
}

MagicRewriteResult MagicRewrite(const DatalogProgram& program,
                                const DatalogGoal& goal) {
  MagicRewriteResult out;
  const size_t num_edb = program.num_edb();

  // An extensional goal needs no demand machinery: its answers are the
  // extensional table itself, so the "rewritten" program is the predicate
  // space with no rules (the conditioned fixpoint then just carries the
  // extensional rows through).
  if (!program.IsIdb(goal.predicate)) {
    std::vector<int> arities;
    for (size_t p = 0; p < program.num_predicates(); ++p) {
      arities.push_back(program.arity(static_cast<int>(p)));
      out.names.push_back("P" + std::to_string(p));
    }
    out.program = DatalogProgram(std::move(arities), num_edb);
    out.goal_predicate = goal.predicate;
    out.magic_begin = program.num_predicates();
    return out;
  }

  const ProgramAnalysis analysis(program);
  const std::vector<bool> dead = DeadRules(analysis);
  out.rules_pruned =
      static_cast<size_t>(std::count(dead.begin(), dead.end(), true));

  std::map<std::pair<int, Adornment>, size_t> pair_index;
  std::vector<std::pair<int, Adornment>> pairs =
      DiscoverAdornedPairs(program, goal, dead, pair_index);

  // --- Predicate layout: extensional unchanged, then the adorned pairs,
  // then their magic counterparts.
  std::vector<int> arities;
  for (size_t p = 0; p < num_edb; ++p) {
    arities.push_back(program.arity(static_cast<int>(p)));
    out.names.push_back("P" + std::to_string(p));
  }
  const int adorned_base = static_cast<int>(num_edb);
  const int magic_base = adorned_base + static_cast<int>(pairs.size());
  out.magic_begin = static_cast<size_t>(magic_base);
  for (size_t i = 0; i < pairs.size(); ++i) {
    auto [pred, adornment] = pairs[i];
    out.adorned.push_back({pred, adornment, adorned_base + static_cast<int>(i),
                           magic_base + static_cast<int>(i)});
    arities.push_back(program.arity(pred));
    out.names.push_back("P" + std::to_string(pred) + "#" +
                        ToAdornmentString(adornment, program.arity(pred)));
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    auto [pred, adornment] = pairs[i];
    arities.push_back(static_cast<int>(std::popcount(adornment)));
    out.names.push_back("m.P" + std::to_string(pred) + "#" +
                        ToAdornmentString(adornment, program.arity(pred)));
  }
  out.goal_predicate = adorned_base;
  DatalogProgram rewritten(std::move(arities), num_edb);

  // --- Emission. For each adorned pair and each source rule with that head:
  // the guarded rule (magic guard first, intensional body atoms replaced by
  // their adorned versions) and, per intensional body atom, the demand rule
  // deriving its magic facts from the guard plus the body prefix before it.
  std::vector<DatalogRule> rules;
  auto adorned_atom = [&](const DatalogAtom& atom, Adornment a) {
    return DatalogAtom{
        static_cast<int>(pair_index.at({atom.predicate, a})) + adorned_base,
        atom.args};
  };
  auto magic_atom = [&](const DatalogAtom& atom, Adornment a) {
    return DatalogAtom{
        static_cast<int>(pair_index.at({atom.predicate, a})) + magic_base,
        BoundArgs(atom, a)};
  };
  for (auto [pred, adornment] : pairs) {
    for (size_t r = 0; r < program.rules().size(); ++r) {
      const DatalogRule& rule = program.rules()[r];
      if (dead[r] || rule.head.predicate != pred) continue;
      DatalogAtom guard = magic_atom(rule.head, adornment);
      DatalogRule guarded;
      guarded.head = adorned_atom(rule.head, adornment);
      guarded.body.push_back(guard);
      std::set<VarId> bound = HeadBoundVars(rule.head, adornment);
      for (const DatalogAtom& atom : rule.body) {
        if (program.IsIdb(atom.predicate)) {
          Adornment b = AtomAdornment(atom, bound);
          // Demand rule: this atom's bindings are demanded whenever the
          // guarded rule's prefix before it can fire.
          DatalogRule demand;
          demand.head = magic_atom(atom, b);
          demand.body.assign(guarded.body.begin(), guarded.body.end());
          AppendRuleUnlessDuplicate(rules, std::move(demand),
                                    out.magic_rules);
          guarded.body.push_back(adorned_atom(atom, b));
        } else {
          guarded.body.push_back(atom);
        }
        for (const Term& t : atom.args) {
          if (t.is_variable()) bound.insert(t.variable());
        }
      }
      AppendRuleUnlessDuplicate(rules, std::move(guarded), out.rules_adorned);
    }
  }

  // --- Seed: the goal's own bound constants are demanded unconditionally.
  // Positions past the adornment width are free (not part of the magic
  // predicate), so the cap must match BoundArgs'.
  DatalogRule seed;
  seed.head.predicate =
      static_cast<int>(pair_index.at({goal.predicate, goal.adornment()})) +
      magic_base;
  for (size_t i = 0;
       i < goal.bindings.size() && i < kMaxAdornedPositions; ++i) {
    if (goal.bindings[i].has_value()) {
      seed.head.args.push_back(Term::Const(*goal.bindings[i]));
    }
  }
  AppendRuleUnlessDuplicate(rules, std::move(seed), out.magic_rules);

  for (DatalogRule& rule : rules) rewritten.AddRule(std::move(rule));
  out.program = std::move(rewritten);
  return out;
}

bool DemandStaysBound(const DatalogProgram& program, const DatalogGoal& goal) {
  if (!program.IsIdb(goal.predicate)) return true;
  const ProgramAnalysis analysis(program);
  std::map<std::pair<int, Adornment>, size_t> pair_index;
  for (auto [pred, adornment] :
       DiscoverAdornedPairs(program, goal, DeadRules(analysis), pair_index)) {
    if (adornment == 0) return false;
  }
  return true;
}

}  // namespace pw
