#include "datalog/program.h"

#include <set>

namespace pw {

std::string DatalogProgram::Validate() const {
  for (size_t r = 0; r < rules_.size(); ++r) {
    const DatalogRule& rule = rules_[r];
    auto check_atom = [this](const DatalogAtom& a) -> std::string {
      if (a.predicate < 0 ||
          a.predicate >= static_cast<int>(arities_.size())) {
        return "unknown predicate " + std::to_string(a.predicate);
      }
      if (static_cast<int>(a.args.size()) != arities_[a.predicate]) {
        return "arity mismatch on predicate " + std::to_string(a.predicate);
      }
      return "";
    };
    if (std::string err = check_atom(rule.head); !err.empty()) {
      return "rule " + std::to_string(r) + ": head: " + err;
    }
    if (!IsIdb(rule.head.predicate)) {
      return "rule " + std::to_string(r) + ": head predicate is extensional";
    }
    std::set<VarId> body_vars;
    for (const DatalogAtom& a : rule.body) {
      if (std::string err = check_atom(a); !err.empty()) {
        return "rule " + std::to_string(r) + ": body: " + err;
      }
      for (const Term& t : a.args) {
        if (t.is_variable()) body_vars.insert(t.variable());
      }
    }
    for (const Term& t : rule.head.args) {
      if (t.is_variable() && body_vars.count(t.variable()) == 0) {
        return "rule " + std::to_string(r) + ": not range-restricted";
      }
    }
  }
  return "";
}

std::string DatalogProgram::ToString() const {
  auto atom_str = [](const DatalogAtom& a) {
    return "P" + std::to_string(a.predicate) + pw::ToString(a.args);
  };
  std::string out;
  for (const DatalogRule& rule : rules_) {
    out += atom_str(rule.head) + " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += atom_str(rule.body[i]);
    }
    out += ".\n";
  }
  return out;
}

}  // namespace pw
