#include "datalog/program.h"

#include "datalog/analysis.h"

namespace pw {

std::string DatalogProgram::Validate() const {
  return ProgramAnalysis(*this).ErrorString();
}

std::string DatalogProgram::ToString() const {
  auto atom_str = [](const DatalogAtom& a) {
    return "P" + std::to_string(a.predicate) + pw::ToString(a.args);
  };
  std::string out;
  for (const DatalogRule& rule : rules_) {
    out += atom_str(rule.head) + " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += atom_str(rule.body[i]);
    }
    out += ".\n";
  }
  return out;
}

}  // namespace pw
