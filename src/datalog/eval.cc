#include "datalog/eval.h"

#include <cassert>
#include <functional>
#include <unordered_map>

namespace pw {

namespace {

/// Extends `binding` so that `args` matches `fact`; returns false on clash.
/// Appends newly bound variables to `trail` for undo.
bool Match(const Tuple& args, const Fact& fact,
           std::unordered_map<VarId, ConstId>& binding,
           std::vector<VarId>& trail) {
  for (size_t i = 0; i < args.size(); ++i) {
    const Term& t = args[i];
    if (t.is_constant()) {
      if (t.constant() != fact[i]) return false;
    } else {
      auto [it, inserted] = binding.emplace(t.variable(), fact[i]);
      if (inserted) {
        trail.push_back(t.variable());
      } else if (it->second != fact[i]) {
        return false;
      }
    }
  }
  return true;
}

void Undo(std::unordered_map<VarId, ConstId>& binding,
          std::vector<VarId>& trail, size_t mark) {
  while (trail.size() > mark) {
    binding.erase(trail.back());
    trail.pop_back();
  }
}

/// Joins the rule body left to right; emits head instantiations into `out`.
/// If `delta_pos >= 0`, body atom `delta_pos` ranges over `delta` instead of
/// the full relation (semi-naive restriction). Returns true if a new fact
/// was inserted.
bool FireRule(const DatalogRule& rule, const Instance& db,
              const Relation* delta, int delta_pos, Relation& out) {
  std::unordered_map<VarId, ConstId> binding;
  std::vector<VarId> trail;
  bool inserted = false;

  std::function<void(size_t)> go = [&](size_t pos) {
    if (pos == rule.body.size()) {
      Fact head;
      head.reserve(rule.head.args.size());
      for (const Term& t : rule.head.args) {
        head.push_back(t.is_constant() ? t.constant()
                                       : binding.at(t.variable()));
      }
      inserted |= out.Insert(head);
      return;
    }
    const DatalogAtom& atom = rule.body[pos];
    const Relation& rel = (static_cast<int>(pos) == delta_pos)
                              ? *delta
                              : db.relation(atom.predicate);
    for (const Fact& fact : rel) {
      size_t mark = trail.size();
      if (Match(atom.args, fact, binding, trail)) go(pos + 1);
      Undo(binding, trail, mark);
    }
  };
  go(0);
  return inserted;
}

Instance InitialDatabase(const DatalogProgram& program, const Instance& edb) {
  assert(edb.num_relations() >= program.num_edb());
  std::vector<Relation> rels;
  rels.reserve(program.num_predicates());
  for (size_t p = 0; p < program.num_predicates(); ++p) {
    if (p < program.num_edb()) {
      assert(edb.relation(p).arity() == program.arity(static_cast<int>(p)));
      rels.push_back(edb.relation(p));
    } else {
      rels.emplace_back(program.arity(static_cast<int>(p)));
    }
  }
  return Instance(std::move(rels));
}

}  // namespace

Instance NaiveEval(const DatalogProgram& program, const Instance& edb) {
  Instance db = InitialDatabase(program, edb);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const DatalogRule& rule : program.rules()) {
      changed |= FireRule(rule, db, /*delta=*/nullptr, /*delta_pos=*/-1,
                          db.mutable_relation(rule.head.predicate));
    }
  }
  return db;
}

Instance SemiNaiveEval(const DatalogProgram& program, const Instance& edb) {
  Instance db = InitialDatabase(program, edb);

  size_t num_preds = program.num_predicates();
  std::vector<Relation> delta;
  delta.reserve(num_preds);
  for (size_t p = 0; p < num_preds; ++p) {
    delta.emplace_back(program.arity(static_cast<int>(p)));
  }

  // Round 0: fire every rule on the EDB to seed the deltas.
  for (const DatalogRule& rule : program.rules()) {
    Relation derived(program.arity(rule.head.predicate));
    FireRule(rule, db, nullptr, -1, derived);
    for (const Fact& f : derived) {
      if (db.mutable_relation(rule.head.predicate).Insert(f)) {
        delta[rule.head.predicate].Insert(f);
      }
    }
  }

  while (true) {
    std::vector<Relation> next_delta;
    next_delta.reserve(num_preds);
    for (size_t p = 0; p < num_preds; ++p) {
      next_delta.emplace_back(program.arity(static_cast<int>(p)));
    }
    bool any = false;
    for (const DatalogRule& rule : program.rules()) {
      for (size_t pos = 0; pos < rule.body.size(); ++pos) {
        int pred = rule.body[pos].predicate;
        if (!program.IsIdb(pred) || delta[pred].empty()) continue;
        Relation derived(program.arity(rule.head.predicate));
        FireRule(rule, db, &delta[pred], static_cast<int>(pos), derived);
        for (const Fact& f : derived) {
          if (db.mutable_relation(rule.head.predicate).Insert(f)) {
            next_delta[rule.head.predicate].Insert(f);
            any = true;
          }
        }
      }
    }
    if (!any) break;
    delta = std::move(next_delta);
  }
  return db;
}

}  // namespace pw
