// Certain answers of DATALOG queries on g-tables — Theorem 5.3(1)
// (due to Imielinski & Lipski [10] and Vardi [17]).
//
// The algorithm "manipulates the matrix representation of the g-tables as if
// they were complete information databases": normalize the g-table
// (incorporate forced equalities), map each remaining variable to a fresh
// labeled null treated as an ordinary constant, run the DATALOG fixpoint,
// and keep exactly the null-free facts. The global inequalities only prune
// valuations, so this is sound and — by the cited results — complete.

#ifndef PW_DATALOG_CERTAIN_H_
#define PW_DATALOG_CERTAIN_H_

#include <optional>

#include "core/instance.h"
#include "datalog/program.h"
#include "tables/ctable.h"

namespace pw {

/// Certain answers of `program` over the g-table database `database`:
/// the instance of facts contained in q(I) for every I in rep(database).
/// Intensional and extensional relations are both returned (extensional
/// certain facts are the ground tuples of the normalized matrix).
///
/// Returns std::nullopt if `database` is not a g-table database (some local
/// condition is non-trivial) — this PTIME algorithm only applies to g-tables
/// and below; use decision/certainty.h for the general coNP procedure.
///
/// If rep(database) is empty (unsatisfiable global condition), every fact is
/// certain vacuously; by convention we return the fixpoint over the full
/// matrix with variables kept, i.e. the caller should test RepIsEmpty first
/// for the vacuous case. (CertainFacts* helpers in decision/certainty.h do.)
std::optional<Instance> DatalogCertainAnswers(const DatalogProgram& program,
                                              const CDatabase& database);

}  // namespace pw

#endif  // PW_DATALOG_CERTAIN_H_
