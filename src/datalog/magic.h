// Magic-set demand transformation for pure DATALOG programs.
//
// A bottom-up fixpoint computes every derivable fact even when the caller
// only asks about one goal atom. The magic-set rewrite specializes the
// program to a goal with a *binding pattern* (which argument positions are
// bound to constants): predicates are adorned with bound/free annotations
// propagated left-to-right through rule bodies (the standard full
// sideways-information-passing strategy), every adorned rule is guarded by a
// *magic* atom holding the bound arguments the rule is demanded for, and
// demand rules derive magic facts from the demand of the rules that consume
// them. Running the ordinary bottom-up fixpoint on the rewritten program
// then derives only demand-reachable facts, yet returns exactly the original
// fixpoint's answers for the goal.
//
// The rewrite is a pure program-to-program transformation — it knows nothing
// about c-tables. It composes with the conditioned fixpoint
// (ilalgebra/datalog_ctable.h) because conditioned facts of the magic
// predicates carry demand *conditions*: a magic fact derived through a row
// with a null (or a conditioned row) records under which condition the
// binding is demanded, unsatisfiable demand canonicalizes to the interner's
// false id and is pruned before any guarded rule body fires, and the
// subsumption antichain absorbs the demand conjuncts that magic evaluation
// adds to each derivation (conditions form an absorptive lattice, so
// goal-restricted answers come out *identical* to the full fixpoint's — see
// DatalogQueryOnCTables).

#ifndef PW_DATALOG_MAGIC_H_
#define PW_DATALOG_MAGIC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "datalog/program.h"

namespace pw {

/// A binding pattern over a predicate's argument positions: bit i set means
/// position i is bound. The mask has 64 positions (every arity in this
/// codebase is tiny); positions at or past 64 are treated as free
/// everywhere — demand cannot key on them, which only weakens pruning,
/// while goal restriction still applies their bindings exactly.
using Adornment = uint64_t;

/// The number of positions an adornment can distinguish.
inline constexpr size_t kMaxAdornedPositions = 64;

/// Renders an adornment in the classical "bf" notation ("b" = bound).
std::string ToAdornmentString(Adornment adornment, int arity);

/// A query goal: one atom of `predicate` with an optional constant binding
/// per position (`nullopt` = free). The adornment is the set of bound
/// positions.
struct DatalogGoal {
  int predicate = 0;
  std::vector<std::optional<ConstId>> bindings;

  Adornment adornment() const {
    Adornment a = 0;
    for (size_t i = 0; i < bindings.size() && i < kMaxAdornedPositions; ++i) {
      if (bindings[i].has_value()) a |= Adornment{1} << i;
    }
    return a;
  }
};

/// One adorned intensional predicate of the rewritten program, with its
/// magic (demand) counterpart. The magic predicate's arity is the number of
/// bound positions; its arguments are the bound arguments in position order.
struct AdornedPredicate {
  int original = 0;         // predicate id in the source program
  Adornment adornment = 0;  // binding pattern it was demanded with
  int adorned = 0;          // its id in the rewritten program
  int magic = 0;            // its magic predicate's id in the rewritten program
};

/// The rewritten program plus the bookkeeping the evaluator and the tests
/// need. Predicate layout: [0, num_edb) are the unchanged extensional
/// predicates, [num_edb, magic_begin) the reachable adorned intensional
/// predicates (discovery order; the adorned goal first), and
/// [magic_begin, num_predicates) their magic counterparts — so "is this a
/// demand predicate" is a single comparison (DatalogCTableOptions::
/// magic_pred_begin uses exactly that).
struct MagicRewriteResult {
  DatalogProgram program;
  int goal_predicate = 0;  // the adorned goal's id in `program` (the goal
                           // predicate itself when the goal is extensional)
  size_t magic_begin = 0;  // first magic predicate id; == num_predicates()
                           // when the goal is extensional (no rewrite needed)
  std::vector<AdornedPredicate> adorned;  // discovery order; [0] is the goal
  size_t rules_adorned = 0;  // guarded rules (source rule x head adornment)
  size_t magic_rules = 0;    // demand rules, the seed fact included
  size_t rules_pruned = 0;   // source rules dropped before adorning: dead
                             // (a body predicate underivable from the EDB)
                             // or textual duplicates of an earlier rule
  std::vector<std::string> names;  // per-predicate debug names: extensional
                                   // "P0", adorned "P2#bf", magic "m.P2#bf"

  /// The rewritten rules rendered with the debug names.
  std::string ToString() const;
};

/// Rewrites `program` for `goal`. The goal's bindings size must equal the
/// goal predicate's arity. Only rules reachable from the goal's demand are
/// kept. An extensional goal needs no demand: the result is a program with
/// the same predicates and no rules (the goal's answers are the extensional
/// table itself). The rewritten program always passes
/// DatalogProgram::Validate().
MagicRewriteResult MagicRewrite(const DatalogProgram& program,
                                const DatalogGoal& goal);

/// True iff every (predicate, binding pattern) pair the goal's demand
/// reaches keeps at least one bound position — the static precondition for
/// the rewrite to prune anything. An all-free demanded pair means its
/// fixpoint degenerates to the full one (the SAT→DATALOG gadget's shape:
/// recursive body atoms that receive no bindings), so speculative callers
/// (the demand-path possibility procedure) check this before evaluating.
/// Runs only the adornment discovery, not the rule emission. Extensional
/// goals trivially qualify.
bool DemandStaysBound(const DatalogProgram& program, const DatalogGoal& goal);

}  // namespace pw

#endif  // PW_DATALOG_MAGIC_H_
