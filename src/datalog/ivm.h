// Incremental maintenance of conditioned DATALOG views under updates.
//
// A MaterializedView pairs a c-database of base (extensional) tables with
// the live fixpoint state of a DATALOG program over them
// (ilalgebra/datalog_ctable.h) and keeps the two in sync as facts are
// inserted and deleted through the Abiteboul–Grahne update semantics
// (tables/updates.h). The maintained state is *identical* — same tuples,
// same interned condition ids — to recomputing the fixpoint from scratch
// on the updated base, not merely rep()-equivalent; the differential suite
// pins this down across randomized update sequences.
//
// Why identity is attainable: the fixpoint keeps, per derived tuple, the
// antichain of weakest derivable conditions, and that antichain is a
// function of the derivable-condition *set* — insertion order cannot
// matter. So:
//
//   - Insertion seeds just the new base rows into the converged state and
//     resumes the semi-naive loop: only combinations involving the new
//     delta fire, and any stale stronger row is killed by the weaker mirror
//     derivation the delta produces. Cost scales with the insertion's
//     derivation cone, not the database (DRed's re-derivation half, with
//     subsumption standing in for support counting).
//
//   - Deletion first rewrites the base table in place and inspects the
//     row-level delta. If every removed row left no live trace in the
//     fixpoint — it was unsatisfiable under the global condition, or a
//     surviving row with the same tuple carries an implied-or-equal
//     (weaker) condition, mirroring exactly the evaluator's subsumption
//     rule — the converged state is already the from-scratch state of the
//     shrunken base, and the guarded replacement rows seed forward like an
//     insertion (`deletes_covered` in the stats). Otherwise the view
//     over-deletes: every predicate whose derivations could reach back to
//     the changed table (the reachability-closed *cone* of head
//     dependencies) is dropped wholesale and re-derived against the intact
//     remainder (`cone_rebuilds`) — the DRed over-delete/re-derive pair at
//     predicate granularity, which conditioned rows make affordable because
//     untouched predicates keep their rows, dedup maps, and tuple indexes.
//
// Demand-restricted views compose with the magic-set transformation
// (datalog/magic.h): a view constructed with a goal evaluates the rewritten
// program instead, so updates maintain only demand-reachable facts, and
// `Answers()` restricts the goal predicate exactly as
// DatalogQueryOnCTables would.

#ifndef PW_DATALOG_IVM_H_
#define PW_DATALOG_IVM_H_

#include <memory>
#include <optional>
#include <vector>

#include "condition/interner.h"
#include "datalog/magic.h"
#include "datalog/program.h"
#include "ilalgebra/datalog_ctable.h"
#include "tables/ctable.h"

namespace pw {

/// Maintenance counters, cumulative over the view's lifetime.
struct IvmStats {
  size_t updates_applied = 0;   // Insert/InsertIf/Delete calls
  size_t inserts_seeded = 0;    // seeded rows admitted into the fixpoint
                                // (duplicates/subsumed/unsatisfiable seeds
                                // cost nothing further)
  size_t deletes_covered = 0;   // deletes absorbed without over-deletion:
                                // every removed row had left no live trace
  size_t cone_rebuilds = 0;     // deletes that over-deleted and re-derived
  size_t cone_predicates = 0;   // predicates cleared across those rebuilds
  size_t rows_overdeleted = 0;  // live rows dropped by those clears (the
                                // re-derivation bill)
  /// The underlying fixpoint's cumulative counters (rounds, derived rows,
  /// index builds/extends, ...), including the initial materialization.
  ConditionedFixpointStats fixpoint;
};

/// Knobs for a maintained view.
struct MaterializedViewOptions {
  /// Evaluation options for the underlying fixpoint. `magic_pred_begin` is
  /// overwritten by the goal constructor; `max_derived_rows` budgets apply
  /// to the lifetime state (once exhausted the view stops maintaining —
  /// check `aborted()`).
  DatalogCTableOptions eval;
};

/// A DATALOG view over a c-database of base tables, kept materialized under
/// updates. Construction runs the initial fixpoint; Insert/InsertIf/Delete
/// apply an update to the owned base database *and* fold it into the live
/// state. Move-only; the interner (options or the thread-local global) must
/// outlive the view, and the view is single-owner: drive it from one
/// thread. `options.eval.num_threads > 1` (with a shared interner) only
/// parallelizes the *internal* fixpoint rounds — the maintained state stays
/// byte-identical to sequential maintenance.
class MaterializedView {
 public:
  /// Full view: maintains every predicate of `program` over `base`.
  MaterializedView(DatalogProgram program, CDatabase base,
                   MaterializedViewOptions options = {});

  /// Demand view: maintains the magic-set rewrite of `program` for `goal`,
  /// so only demand-reachable facts are derived and kept up to date;
  /// `Answers()` serves the goal's restricted answer table.
  MaterializedView(DatalogProgram program, CDatabase base, DatalogGoal goal,
                   MaterializedViewOptions options = {});

  MaterializedView(MaterializedView&&) noexcept = default;
  MaterializedView& operator=(MaterializedView&&) noexcept = default;

  /// Inserts the unconditioned ground fact into base predicate `pred` and
  /// folds the insertion forward through the view. An out-of-range `pred`
  /// (not a base/EDB predicate) is a no-op in all build modes (asserts in
  /// debug); the same holds for InsertIf (returns false) and Delete.
  void Insert(int pred, const Fact& fact);

  /// Conditional insertion (rep-wise: the fact joins exactly the worlds
  /// satisfying `condition`). Returns false — and changes nothing — when
  /// the condition cannot hold together with the table's global condition.
  bool InsertIf(int pred, const Fact& fact, const Conjunction& condition);

  /// Deletes the ground fact from base predicate `pred` (rep-wise:
  /// { I minus {fact} }) and maintains the view — the covered fast path
  /// when possible, the cone over-delete/re-derive otherwise.
  void Delete(int pred, const Fact& fact);

  /// The maintained fixpoint as a c-database, identical (tuples and
  /// interned condition ids, up to row order) to DatalogOnCTables on the
  /// current base. For a demand view this is the *rewritten* program's
  /// fixpoint — adorned and magic predicates included.
  CDatabase Materialized() const;

  /// Demand views only: the goal's restricted answers, identical to
  /// DatalogQueryOnCTables on the current base.
  CTable Answers() const;

  /// The maintained base database (updates applied in place).
  const CDatabase& base() const { return base_; }

  /// The program as constructed (pre-rewrite for demand views).
  const DatalogProgram& program() const { return original_; }

  /// The program the fixpoint actually evaluates (the magic rewrite for
  /// demand views, otherwise `program()`).
  const DatalogProgram& evaluated_program() const { return *evaluated_; }

  bool is_demand_view() const { return goal_.has_value(); }

  ConditionInterner& interner() const { return fix_->interner(); }

  /// True once a max_derived_rows budget tripped; the view is a partial
  /// under-approximation and further updates stop maintaining it.
  bool aborted() const { return fix_->aborted(); }

  /// Maintenance counters (the fixpoint sub-struct is refreshed per call).
  IvmStats stats() const;

 private:
  void Initialize();
  /// True iff `pred` names a base (EDB) predicate with a backing table —
  /// the unconditional precondition of the public update entry points.
  bool ValidBasePred(int pred) const;
  /// Head predicates transitively derivable from `pred` (the fixpoint
  /// analysis's precomputed reachability cone, minus the reseeded `pred`
  /// itself), as a num_predicates mask.
  std::vector<bool> ConeOf(int pred) const;

  DatalogProgram original_;
  // Behind a pointer for address stability: the fixpoint keeps a reference
  // to the program it evaluates, which must survive moving the view.
  std::unique_ptr<DatalogProgram> evaluated_;
  std::optional<DatalogGoal> goal_;
  int goal_table_ = -1;
  CDatabase base_;
  ConjId global_id_ = ConditionInterner::kTrueConj;
  // optional only for deferred construction (the fixpoint needs evaluated_
  // and the interned global first); engaged for the view's whole life.
  std::optional<ConditionedFixpoint> fix_;
  MaterializedViewOptions options_;
  mutable IvmStats stats_;
};

}  // namespace pw

#endif  // PW_DATALOG_IVM_H_
