#include "datalog/certain.h"

#include <set>
#include <unordered_map>

#include "datalog/eval.h"
#include "tables/world_enum.h"

namespace pw {

std::optional<Instance> DatalogCertainAnswers(const DatalogProgram& program,
                                              const CDatabase& database) {
  // Applicability: g-tables and below (no local conditions).
  for (size_t i = 0; i < database.num_tables(); ++i) {
    for (const CRow& row : database.table(i).rows()) {
      if (!row.local().IsTautology()) return std::nullopt;
    }
  }

  // Normalize: incorporate equalities forced by the combined global
  // condition into every table's matrix.
  Conjunction global = database.CombinedGlobal();
  std::unordered_map<VarId, Term> canon = global.CanonicalSubstitution();

  // Map remaining variables to fresh "labeled null" constants.
  std::vector<ConstId> fresh =
      FreshConstants(database, /*extra=*/{}, database.Variables().size());
  std::set<ConstId> nulls;
  std::unordered_map<VarId, Term> to_null;
  {
    size_t next = 0;
    for (VarId v : database.Variables()) {
      Term t = Term::Var(v);
      auto it = canon.find(v);
      if (it != canon.end()) t = it->second;
      if (t.is_constant()) {
        to_null.emplace(v, t);
        continue;
      }
      // Canonical representative is a variable; give its whole class one
      // shared null.
      auto already = to_null.find(t.variable());
      if (already != to_null.end()) {
        to_null.emplace(v, already->second);
      } else {
        ConstId null_const = fresh[next++];
        nulls.insert(null_const);
        Term null_term = Term::Const(null_const);
        to_null.emplace(t.variable(), null_term);
        if (v != t.variable()) to_null.emplace(v, null_term);
      }
    }
  }

  // Build the complete-information matrix database.
  std::vector<Relation> rels;
  rels.reserve(database.num_tables());
  for (size_t i = 0; i < database.num_tables(); ++i) {
    CTable grounded = database.table(i).Substitute(to_null);
    Relation r(grounded.arity());
    for (const CRow& row : grounded.rows()) r.Insert(ToFact(row.tuple));
    rels.push_back(std::move(r));
  }

  Instance fixpoint = SemiNaiveEval(program, Instance(std::move(rels)));

  // Keep null-free facts only.
  std::vector<Relation> out;
  out.reserve(fixpoint.num_relations());
  for (size_t p = 0; p < fixpoint.num_relations(); ++p) {
    Relation r(fixpoint.relation(p).arity());
    for (const Fact& f : fixpoint.relation(p)) {
      bool has_null = false;
      for (ConstId c : f) {
        if (nulls.count(c) > 0) {
          has_null = true;
          break;
        }
      }
      if (!has_null) r.Insert(f);
    }
    out.push_back(std::move(r));
  }
  return Instance(std::move(out));
}

}  // namespace pw
