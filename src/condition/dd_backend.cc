#include "condition/dd_backend.h"

#include <algorithm>
#include <cassert>

#include "condition/conjunction.h"

namespace pw {

BindingEnv& DDBackend::ScratchEnv() {
  if (!interner().shared()) return scratch_env_;
  static thread_local BindingEnv env;
  return env;
}

CondId DDBackend::MakeNode(AtomId var, CondId lo, CondId hi) {
  if (lo == hi) return lo;
  NodeKey key{var, lo, hi};
  auto& shard = unique_.ShardFor(NodeKeyHash{}(key));
  {
    auto lock = ReadLock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) return it->second;
  }
  auto lock = WriteLock(shard.mutex);
  auto [it, inserted] = shard.map.emplace(key, CondId{0});
  if (inserted) {
    auto storage = StorageLock(node_storage_mutex_);
    it->second = static_cast<CondId>(nodes_.Append(Node{var, lo, hi})) + 2;
  }
  return it->second;
}

bool DDBackend::CacheLookup(const OpKey& key, CondId* out) {
  auto& shard = ops_.ShardFor(OpKeyHash{}(key));
  auto lock = ReadLock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  *out = it->second;
  return true;
}

void DDBackend::CacheStore(const OpKey& key, CondId value) {
  auto& shard = ops_.ShardFor(OpKeyHash{}(key));
  auto lock = WriteLock(shard.mutex);
  if (op_cache_capacity_ != 0 && shard.map.size() >= op_cache_capacity_) {
    shard.map.clear();
    op_cache_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.map.emplace(key, value);
}

bool DDBackend::VarBefore(AtomId a, AtomId b) const {
  if (a == b) return false;
  const CondAtom& x = interner().AtomOf(a);
  const CondAtom& y = interner().AtomOf(b);
  if (x.lhs != y.lhs) return x.lhs < y.lhs;
  if (x.rhs != y.rhs) return x.rhs < y.rhs;
  if (x.is_equality != y.is_equality) return x.is_equality;
  return a < b;  // distinct ids never tie on the atom, but stay total
}

CondId DDBackend::FromConj(ConjId id) {
  if (id <= kFalseCond) return id;  // sentinels coincide by construction
  auto& shard = from_conj_.ShardFor(std::hash<ConjId>{}(id));
  {
    auto lock = ReadLock(shard.mutex);
    auto it = shard.map.find(id);
    if (it != shard.map.end()) return it->second;
  }
  // A conjunction's diagram is the chain asserting each atom in variable
  // order: later variables sit deeper, so build bottom-up from the last.
  std::vector<AtomId> atoms = interner().AtomIdsOf(id);
  std::sort(atoms.begin(), atoms.end(),
            [this](AtomId a, AtomId b) { return VarBefore(a, b); });
  CondId acc = kTrueCond;
  for (auto it = atoms.rbegin(); it != atoms.rend(); ++it) {
    acc = MakeNode(*it, kFalseCond, acc);
  }
  auto lock = WriteLock(shard.mutex);
  shard.map.emplace(id, acc);
  return acc;
}

CondId DDBackend::Apply(Op op, CondId a, CondId b) {
  // Terminal rules (recall the sentinel layout: 0 = true, 1 = false).
  if (op == Op::kAnd) {
    if (a == kTrueCond) return b;
    if (b == kTrueCond) return a;
    if (a == kFalseCond || b == kFalseCond) return kFalseCond;
  } else {
    if (a == kFalseCond) return b;
    if (b == kFalseCond) return a;
    if (a == kTrueCond || b == kTrueCond) return kTrueCond;
  }
  if (a == b) return a;

  OpKey key{op, std::min(a, b), std::max(a, b)};
  CondId cached;
  if (CacheLookup(key, &cached)) return cached;

  AtomId va = VarOf(a);
  AtomId vb = VarOf(b);
  AtomId var = VarBefore(vb, va) ? vb : va;
  CondId a_lo = a, a_hi = a, b_lo = b, b_hi = b;
  if (va == var) {
    const Node& n = NodeOf(a);
    a_lo = n.lo;
    a_hi = n.hi;
  }
  if (vb == var) {
    const Node& n = NodeOf(b);
    b_lo = n.lo;
    b_hi = n.hi;
  }
  CondId out = MakeNode(var, Apply(op, a_lo, b_lo), Apply(op, a_hi, b_hi));
  CacheStore(key, out);
  return out;
}

CondId DDBackend::And(CondId a, CondId b) { return Apply(Op::kAnd, a, b); }

CondId DDBackend::Or(CondId a, CondId b) { return Apply(Op::kOr, a, b); }

CondId DDBackend::Not(CondId id) {
  if (id == kTrueCond) return kFalseCond;
  if (id == kFalseCond) return kTrueCond;
  OpKey key{Op::kNot, id, 0};
  CondId cached;
  if (CacheLookup(key, &cached)) return cached;
  const Node& n = NodeOf(id);
  CondId out = MakeNode(n.var, Not(n.lo), Not(n.hi));
  CacheStore(key, out);
  return out;
}

bool DDBackend::SatSearch(CondId id, BindingEnv& env) {
  if (id == kTrueCond) return true;
  if (id == kFalseCond) return false;
  // A context-free UNSAT verdict holds under any path context.
  CondId cached;
  if (CacheLookup(OpKey{Op::kSat, id, 0}, &cached) && cached == 0) {
    return false;
  }
  const Node& n = NodeOf(id);
  const CondAtom& atom = interner().AtomOf(n.var);
  size_t mark = env.Mark();
  if (env.AssertAtom(atom) && SatSearch(n.hi, env)) return true;
  env.Revert(mark);
  mark = env.Mark();
  if (env.AssertAtom(Negate(atom)) && SatSearch(n.lo, env)) return true;
  env.Revert(mark);
  return false;
}

bool DDBackend::Satisfiable(CondId id) {
  if (id == kTrueCond) return true;
  if (id == kFalseCond) return false;
  OpKey key{Op::kSat, id, 0};
  CondId cached;
  if (CacheLookup(key, &cached)) return cached != 0;
  BindingEnv& env = ScratchEnv();
  env.Revert(0);
  bool out = SatSearch(id, env);
  env.Revert(0);
  CacheStore(key, out ? 1 : 0);
  return out;
}

bool DDBackend::SatisfiableWith(ConjId global, CondId id) {
  if (id == kFalseCond) return false;
  if (global == ConditionInterner::kTrueConj) return Satisfiable(id);
  return Satisfiable(And(FromConj(global), id));
}

bool DDBackend::Implies(CondId a, CondId b) {
  if (a == b || a == kFalseCond || b == kTrueCond) return true;
  // No propositional shortcut for the remaining cases: distinct atoms can be
  // theory-coupled (x = y and x != y are different decision variables), so
  // even Implies(true, node) can hold. Decide via a AND NOT b unsatisfiable,
  // memoized on the ordered pair — implication is not symmetric.
  OpKey key{Op::kImplies, a, b};
  CondId cached;
  if (CacheLookup(key, &cached)) return cached != 0;
  bool out = !Satisfiable(And(a, Not(b)));
  CacheStore(key, out ? 1 : 0);
  return out;
}

bool DDBackend::TautologyUnder(ConjId global, CondId id) {
  if (id == kTrueCond) return true;
  CondId negated = Not(id);
  if (global == ConditionInterner::kTrueConj) return !Satisfiable(negated);
  return !Satisfiable(And(FromConj(global), negated));
}

void DDBackend::ExpandPaths(CondId id, BindingEnv& env,
                            std::vector<CondAtom>* path,
                            std::unordered_set<ConjId>* seen,
                            std::vector<ConjId>* out) {
  if (id == kFalseCond) return;
  if (id == kTrueCond) {
    Conjunction conj;
    for (const CondAtom& a : *path) conj.Add(a);
    ConjId cid = interner().Intern(conj);
    // The env kept every emitted path consistent, so cid is satisfiable.
    assert(cid != ConditionInterner::kFalseConj);
    if (seen->insert(cid).second) out->push_back(cid);
    return;
  }
  const Node& n = NodeOf(id);
  const CondAtom& atom = interner().AtomOf(n.var);
  size_t mark = env.Mark();
  if (env.AssertAtom(atom)) {
    path->push_back(atom);
    ExpandPaths(n.hi, env, path, seen, out);
    path->pop_back();
  }
  env.Revert(mark);
  mark = env.Mark();
  CondAtom negated = Negate(atom);
  if (env.AssertAtom(negated)) {
    path->push_back(negated);
    ExpandPaths(n.lo, env, path, seen, out);
    path->pop_back();
  }
  env.Revert(mark);
}

void DDBackend::AppendDisjuncts(CondId id, std::vector<ConjId>* out) {
  if (id == kFalseCond) return;
  if (id == kTrueCond) {
    out->push_back(ConditionInterner::kTrueConj);
    return;
  }
  BindingEnv env;  // local: ExpandPaths interns, which uses the scratch env
  std::vector<CondAtom> path;
  std::unordered_set<ConjId> seen;
  ExpandPaths(id, env, &path, &seen, out);
}

}  // namespace pw
