// Satisfiability of conjunctions of *disjunctions* of condition atoms over
// the infinite constant domain.
//
// Several exact decision procedures reduce to: does some valuation satisfy
//   (conjunction already asserted in a BindingEnv)  AND  AND_i OR_j atom_ij ?
// e.g. "row r produces a fact outside I" is the clause set
// { OR_pos t[pos] != f[pos] : f in I }. This module provides a small
// DPLL-style backtracking solver over a revertible BindingEnv.

#ifndef PW_CONDITION_ATOM_CNF_H_
#define PW_CONDITION_ATOM_CNF_H_

#include <vector>

#include "condition/atom.h"
#include "condition/binding_env.h"

namespace pw {

/// A disjunction of condition atoms.
using AtomClause = std::vector<CondAtom>;

/// Returns true iff some valuation consistent with the current state of
/// `env` satisfies every clause. `env` is restored to its entry state before
/// returning. Worst case exponential in the number of clauses (branching
/// over the chosen disjunct per clause), with unit propagation on
/// single-atom clauses.
bool SolveAtomCnf(BindingEnv& env, std::vector<AtomClause> clauses);

}  // namespace pw

#endif  // PW_CONDITION_ATOM_CNF_H_
