#include "condition/binding_env.h"

#include <utility>

#include "condition/conjunction.h"

namespace pw {

void BindingEnv::Revert(size_t mark) {
  while (trail_.size() > mark) {
    const TrailEntry e = trail_.back();
    trail_.pop_back();
    switch (e.kind) {
      case TrailEntry::kNodeAdded:
        node_of_.erase(term_of_[e.a]);
        term_of_.pop_back();
        parent_.pop_back();
        rank_.pop_back();
        const_of_.pop_back();
        break;
      case TrailEntry::kUnion:
        parent_[e.a] = e.a;
        rank_[e.b] = e.old_rank;
        const_of_[e.b] = e.old_const;
        break;
      case TrailEntry::kDiseqAdded:
        diseqs_.pop_back();
        break;
    }
  }
}

int BindingEnv::NodeOf(Term t) {
  auto it = node_of_.find(t);
  if (it != node_of_.end()) return it->second;
  int id = static_cast<int>(term_of_.size());
  node_of_.emplace(t, id);
  term_of_.push_back(t);
  parent_.push_back(id);
  rank_.push_back(0);
  const_of_.push_back(t.is_constant() ? static_cast<int64_t>(t.constant())
                                      : kNoConst);
  trail_.push_back({TrailEntry::kNodeAdded, id, 0, 0, 0});
  return id;
}

std::optional<int> BindingEnv::FindNode(Term t) const {
  auto it = node_of_.find(t);
  if (it == node_of_.end()) return std::nullopt;
  return it->second;
}

int BindingEnv::Root(int node) const {
  while (parent_[node] != node) node = parent_[node];  // no compression
  return node;
}

bool BindingEnv::ViolatesDiseq(int root_a, int root_b) const {
  for (const auto& [x, y] : diseqs_) {
    int rx = Root(x);
    int ry = Root(y);
    if ((rx == root_a && ry == root_b) || (rx == root_b && ry == root_a)) {
      return true;
    }
  }
  return false;
}

bool BindingEnv::AssertEqual(Term a, Term b) {
  int ra = Root(NodeOf(a));
  int rb = Root(NodeOf(b));
  if (ra == rb) return true;
  if (const_of_[ra] != kNoConst && const_of_[rb] != kNoConst &&
      const_of_[ra] != const_of_[rb]) {
    return false;  // two distinct constants
  }
  if (ViolatesDiseq(ra, rb)) return false;
  if (rank_[ra] > rank_[rb]) std::swap(ra, rb);  // rb becomes the new root
  trail_.push_back({TrailEntry::kUnion, ra, rb, rank_[rb], const_of_[rb]});
  parent_[ra] = rb;
  if (rank_[ra] == rank_[rb]) ++rank_[rb];
  if (const_of_[rb] == kNoConst) const_of_[rb] = const_of_[ra];
  return true;
}

bool BindingEnv::AssertNotEqual(Term a, Term b) {
  int na = NodeOf(a);
  int nb = NodeOf(b);
  int ra = Root(na);
  int rb = Root(nb);
  if (ra == rb) return false;
  // Distinct constants can never become equal; recording is unnecessary.
  if (const_of_[ra] != kNoConst && const_of_[rb] != kNoConst) return true;
  diseqs_.emplace_back(na, nb);
  trail_.push_back({TrailEntry::kDiseqAdded, 0, 0, 0, 0});
  return true;
}

bool BindingEnv::AssertAtom(const CondAtom& atom) {
  return atom.is_equality ? AssertEqual(atom.lhs, atom.rhs)
                          : AssertNotEqual(atom.lhs, atom.rhs);
}

bool BindingEnv::Assert(const Conjunction& conjunction) {
  for (const CondAtom& atom : conjunction.atoms()) {
    if (!AssertAtom(atom)) return false;
  }
  return true;
}

std::optional<ConstId> BindingEnv::ValueOf(Term t) const {
  if (t.is_constant()) return t.constant();
  auto node = FindNode(t);
  if (!node) return std::nullopt;
  int64_t c = const_of_[Root(*node)];
  if (c == kNoConst) return std::nullopt;
  return static_cast<ConstId>(c);
}

bool BindingEnv::SameClass(Term a, Term b) const {
  if (a == b) return true;
  auto na = FindNode(a);
  auto nb = FindNode(b);
  if (!na || !nb) {
    // Unseen terms are only equal to an identical term or, for a constant,
    // to a class bound to that constant — and such a class would contain the
    // constant's node, so the term would have been seen. Hence: not equal.
    return false;
  }
  return Root(*na) == Root(*nb);
}

bool BindingEnv::CanEqual(Term a, Term b) {
  size_t mark = Mark();
  bool ok = AssertEqual(a, b);
  Revert(mark);
  return ok;
}

}  // namespace pw
