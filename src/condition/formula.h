// General positive boolean combinations of condition atoms.
//
// The paper's c-table conditions are conjunctions, but intermediate
// constructions (e.g. the uniqueness algorithm of Theorem 3.2(2), which puts
// query-generated local conditions in disjunctive normal form) need and/or
// trees. This module provides an immutable formula tree with DNF conversion.

#ifndef PW_CONDITION_FORMULA_H_
#define PW_CONDITION_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "condition/conjunction.h"

namespace pw {

class SymbolTable;

/// An immutable and/or tree over condition atoms. Copy is O(1) (shared
/// subtrees).
class Formula {
 public:
  /// Default: the formula `true`.
  Formula();

  static Formula True();
  static Formula False();
  static Formula MakeAtom(const CondAtom& atom);
  static Formula FromConjunction(const Conjunction& conjunction);
  static Formula And(const std::vector<Formula>& children);
  static Formula Or(const std::vector<Formula>& children);
  static Formula And(const Formula& a, const Formula& b);
  static Formula Or(const Formula& a, const Formula& b);

  bool is_true() const;
  bool is_false() const;

  /// Disjunctive normal form: the formula is equivalent to the disjunction
  /// of the returned conjunctions (empty vector == false). Exponential in the
  /// worst case, as expected.
  std::vector<Conjunction> ToDnf() const;

  /// True iff some valuation satisfies the formula.
  bool Satisfiable() const;

  /// All variables mentioned, deduplicated and sorted.
  std::vector<VarId> Variables() const;

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  enum class Kind { kTrue, kFalse, kAtom, kAnd, kOr };

  struct Node {
    Kind kind;
    CondAtom atom;               // kAtom only
    std::vector<Formula> children;  // kAnd/kOr only
  };

  explicit Formula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace pw

#endif  // PW_CONDITION_FORMULA_H_
