#include "condition/atom_cnf.h"

#include <algorithm>

namespace pw {

namespace {

bool Recurse(BindingEnv& env, const std::vector<AtomClause>& clauses,
             size_t i) {
  if (i == clauses.size()) return true;
  for (const CondAtom& atom : clauses[i]) {
    if (IsTriviallyFalse(atom)) continue;
    size_t mark = env.Mark();
    if (env.AssertAtom(atom) && Recurse(env, clauses, i + 1)) return true;
    env.Revert(mark);
  }
  return false;
}

}  // namespace

bool SolveAtomCnf(BindingEnv& env, std::vector<AtomClause> clauses) {
  // Drop clauses containing a trivially true atom; fail fast on clauses with
  // no satisfiable atom at all.
  std::vector<AtomClause> kept;
  for (AtomClause& clause : clauses) {
    bool trivially_true = std::any_of(clause.begin(), clause.end(),
                                      [](const CondAtom& a) {
                                        return IsTriviallyTrue(a);
                                      });
    if (trivially_true) continue;
    std::erase_if(clause, [](const CondAtom& a) {
      return IsTriviallyFalse(a);
    });
    if (clause.empty()) return false;
    kept.push_back(std::move(clause));
  }
  // Smallest clauses first (fail-fast / unit propagation order).
  std::stable_sort(kept.begin(), kept.end(),
                   [](const AtomClause& a, const AtomClause& b) {
                     return a.size() < b.size();
                   });
  size_t mark = env.Mark();
  bool ok = Recurse(env, kept, 0);
  env.Revert(mark);
  return ok;
}

}  // namespace pw
