#include "condition/union_find.h"

#include <numeric>

namespace pw {

UnionFind::UnionFind(size_t size) : parent_(size), rank_(size, 0) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

int UnionFind::Add() {
  int id = static_cast<int>(parent_.size());
  parent_.push_back(id);
  rank_.push_back(0);
  return id;
}

int UnionFind::Find(int x) const {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(int a, int b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  return true;
}

}  // namespace pw
