#include "condition/atom.h"

#include <algorithm>

#include "core/symbol_table.h"
#include "core/tuple.h"

namespace pw {

namespace {
CondAtom MakeNormalized(Term a, Term b, bool equality) {
  if (b < a) std::swap(a, b);
  return CondAtom{a, b, equality};
}
}  // namespace

CondAtom Eq(Term a, Term b) { return MakeNormalized(a, b, /*equality=*/true); }

CondAtom Neq(Term a, Term b) {
  return MakeNormalized(a, b, /*equality=*/false);
}

CondAtom Negate(const CondAtom& atom) {
  return CondAtom{atom.lhs, atom.rhs, !atom.is_equality};
}

CondAtom TrueAtom() { return Eq(Term::Const(0), Term::Const(0)); }

CondAtom FalseAtom() { return Neq(Term::Const(0), Term::Const(0)); }

bool IsTriviallyTrue(const CondAtom& atom) {
  if (atom.lhs == atom.rhs) return atom.is_equality;
  if (atom.lhs.is_constant() && atom.rhs.is_constant()) {
    return !atom.is_equality;  // distinct constants are unequal
  }
  return false;
}

bool IsTriviallyFalse(const CondAtom& atom) {
  if (atom.lhs == atom.rhs) return !atom.is_equality;
  if (atom.lhs.is_constant() && atom.rhs.is_constant()) {
    return atom.is_equality;
  }
  return false;
}

std::vector<VarId> AtomVariables(const CondAtom& atom) {
  std::vector<VarId> out;
  if (atom.lhs.is_variable()) out.push_back(atom.lhs.variable());
  if (atom.rhs.is_variable() && atom.rhs != atom.lhs) {
    out.push_back(atom.rhs.variable());
  }
  return out;
}

std::string ToString(const CondAtom& atom, const SymbolTable* symbols) {
  auto render = [symbols](const Term& t) {
    if (t.is_constant() && symbols != nullptr) {
      return ConstName(t.constant(), symbols);
    }
    return ToString(t);
  };
  return render(atom.lhs) + (atom.is_equality ? " = " : " != ") +
         render(atom.rhs);
}

}  // namespace pw
