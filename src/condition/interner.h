// Hash-consing of condition atoms and conjunctions into canonical ids.
//
// Condition manipulation is the hot path of every algorithm in this codebase:
// the Imielinski–Lipski algebra conjoins local conditions per row pair, the
// decision procedures of src/decision/ test satisfiability of (mostly
// repeated) conjunctions, and Formula::ToDnf multiplies conjunctions out.
// The same small conditions recur constantly — a product of two c-tables
// builds |T1| x |T2| conjunctions from only |T1| + |T2| distinct inputs.
//
// ConditionInterner gives every semantically distinct conjunction one small
// integer id (a ConjId). Interning canonicalizes:
//   - equality atoms are closed under congruence (union-find over terms) and
//     re-emitted as `member = representative` per equality class, where the
//     representative is the class constant if bound, else the least variable;
//   - inequality atoms are rewritten through the representatives, trivially
//     true ones dropped, then deduplicated;
//   - atoms are sorted, so equivalent conjunctions get the *same* id.
// An unsatisfiable conjunction (congruence merges two constants, or a
// disequality joins a merged class) canonicalizes to the reserved kFalseConj,
// so satisfiability of an interned conjunction is the O(1) comparison
// `id != kFalseConj` — the closure runs once per distinct conjunction and the
// verdict is memoized in the id itself. A second, syntactic cache makes
// re-interning a conjunction already seen (the common case: the same
// row.local over and over) a single hash lookup with no closure at all.
//
// Conjoining two interned conjunctions (`And`) is memoized pairwise, which is
// exactly the access pattern of EvalOnCTables' product rule.
//
// The interner is append-only and not thread-safe; `Global()` returns a
// thread-local instance so concurrent evaluators never contend.

#ifndef PW_CONDITION_INTERNER_H_
#define PW_CONDITION_INTERNER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "condition/atom.h"
#include "condition/binding_env.h"
#include "condition/conjunction.h"

namespace pw {

/// Id of an interned atom. Dense, starting at 0.
using AtomId = uint32_t;

/// Id of an interned (canonicalized) conjunction. Dense, starting at 0.
using ConjId = uint32_t;

/// Hash for atoms (used by the interner's maps).
struct CondAtomHash {
  size_t operator()(const CondAtom& a) const noexcept {
    uint64_t h = std::hash<Term>()(a.lhs);
    h = h * 1099511628211ull ^ std::hash<Term>()(a.rhs);
    return static_cast<size_t>(h * 2ull + (a.is_equality ? 1 : 0));
  }
};

class ConditionInterner {
 public:
  /// The empty conjunction `true` always interns to this id.
  static constexpr ConjId kTrueConj = 0;

  /// Every unsatisfiable conjunction interns to this id.
  static constexpr ConjId kFalseConj = 1;

  ConditionInterner();

  ConditionInterner(const ConditionInterner&) = delete;
  ConditionInterner& operator=(const ConditionInterner&) = delete;

  /// Hash-conses one atom (exactly as given; atoms are already normalized by
  /// Eq/Neq so symmetric variants coincide).
  AtomId InternAtom(const CondAtom& atom);

  /// The atom behind an id.
  const CondAtom& AtomOf(AtomId id) const { return atoms_[id]; }

  /// Canonicalizes and hash-conses a conjunction. Equivalent conjunctions
  /// (up to atom order, duplicates, trivial atoms, and equality congruence)
  /// return the same id; unsatisfiable ones return kFalseConj.
  ConjId Intern(const Conjunction& conjunction);

  /// The canonical materialized form of an interned conjunction. For
  /// kFalseConj this is the single-atom conjunction {0 != 0}.
  const Conjunction& Resolve(ConjId id) const { return conjs_[id].canonical; }

  /// Conjunction of two interned conjunctions, memoized pairwise.
  ConjId And(ConjId a, ConjId b);

  /// O(1) satisfiability of an interned conjunction (the congruence closure
  /// ran at intern time).
  bool Satisfiable(ConjId id) const { return id != kFalseConj; }

  /// Interns, then reads the memoized verdict. Semantically identical to
  /// `conjunction.Satisfiable()` (the uncached congruence-closure path) but
  /// repeated queries on equal conjunctions cost one hash lookup.
  bool CachedSatisfiable(const Conjunction& conjunction) {
    return Intern(conjunction) != kFalseConj;
  }

  size_t num_atoms() const { return atoms_.size(); }
  size_t num_conjunctions() const { return conjs_.size(); }

  /// Cache-effectiveness counters (for benches and tests).
  struct Stats {
    uint64_t intern_calls = 0;      // Intern() invocations
    uint64_t syntactic_hits = 0;    // resolved without running closure
    uint64_t canonical_hits = 0;    // closure ran, canonical form known
    uint64_t and_calls = 0;         // And() invocations past trivial cases
    uint64_t and_hits = 0;          // resolved from the pair cache
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

  /// The thread-local interner used by the library fast paths
  /// (EvalOnCTables, Formula::Satisfiable, the decision procedures).
  static ConditionInterner& Global();

 private:
  struct ConjEntry {
    std::vector<AtomId> atoms;  // canonical: sorted by atom value, unique
    Conjunction canonical;      // the same atoms materialized
  };

  struct IdVecHash {
    size_t operator()(const std::vector<AtomId>& v) const noexcept {
      uint64_t h = 1469598103934665603ull;  // FNV-1a
      for (AtomId id : v) {
        h ^= id;
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  struct PairHash {
    size_t operator()(const std::pair<ConjId, ConjId>& p) const noexcept {
      return static_cast<size_t>(
          (static_cast<uint64_t>(p.first) << 32) | p.second);
    }
  };

  /// Runs the congruence closure on `conjunction` and interns its canonical
  /// form (kFalseConj when unsatisfiable).
  ConjId Canonicalize(const Conjunction& conjunction);

  /// Interns an already-canonical sorted atom-id vector.
  ConjId InternCanonical(std::vector<AtomId> ids);

  std::vector<CondAtom> atoms_;
  std::unordered_map<CondAtom, AtomId, CondAtomHash> atom_ids_;

  std::vector<ConjEntry> conjs_;
  // Canonical sorted atom-id vector -> ConjId.
  std::unordered_map<std::vector<AtomId>, ConjId, IdVecHash> canonical_ids_;
  // Syntactic (pre-closure, order-sensitive) atom-id vector -> ConjId.
  std::unordered_map<std::vector<AtomId>, ConjId, IdVecHash> syntactic_ids_;
  // Unordered pair (min, max) -> And result.
  std::unordered_map<std::pair<ConjId, ConjId>, ConjId, PairHash> and_cache_;

  // Reused scratch state: the syntactic key buffer and the congruence
  // environment (reverted to empty after each closure, retaining capacity).
  std::vector<AtomId> scratch_key_;
  BindingEnv scratch_env_;

  Stats stats_;
};

}  // namespace pw

#endif  // PW_CONDITION_INTERNER_H_
