// Hash-consing of condition atoms and conjunctions into canonical ids.
//
// Condition manipulation is the hot path of every algorithm in this codebase:
// the Imielinski–Lipski algebra conjoins local conditions per row pair, the
// decision procedures of src/decision/ test satisfiability of (mostly
// repeated) conjunctions, and Formula::ToDnf multiplies conjunctions out.
// The same small conditions recur constantly — a product of two c-tables
// builds |T1| x |T2| conjunctions from only |T1| + |T2| distinct inputs.
//
// ConditionInterner gives every semantically distinct conjunction one small
// integer id (a ConjId). Interning canonicalizes:
//   - equality atoms are closed under congruence (union-find over terms) and
//     re-emitted as `member = representative` per equality class, where the
//     representative is the class constant if bound, else the least variable;
//   - inequality atoms are rewritten through the representatives, trivially
//     true ones dropped, then deduplicated;
//   - atoms are sorted, so equivalent conjunctions get the *same* id.
// An unsatisfiable conjunction (congruence merges two constants, or a
// disequality joins a merged class) canonicalizes to the reserved kFalseConj,
// so satisfiability of an interned conjunction is the O(1) comparison
// `id != kFalseConj` — the closure runs once per distinct conjunction and the
// verdict is memoized in the id itself. A second, syntactic cache makes
// re-interning a conjunction already seen (the common case: the same
// row.local over and over) a single hash lookup with no closure at all.
//
// Conjoining two interned conjunctions (`And`) is memoized pairwise, which is
// exactly the access pattern of EvalOnCTables' product rule. Implication
// between interned conjunctions (`Implies`) is likewise memoized pairwise —
// the access pattern of row subsumption in the conditioned fixpoints.
//
// Within one generation the interner is append-only, so ids stay valid and
// can be stored in long-lived objects (CRow memoizes its local condition's
// id this way). For long-running processes the table must not grow without
// bound, so the interner has a *generational* lifecycle:
//   - `stamp()` is a value unique to this (instance, generation) pair; any
//     cached id is valid exactly while the stamp under which it was produced
//     equals the interner's current stamp;
//   - `Clear()` starts a new generation: every table is dropped back to the
//     two sentinel ids (capacity retained) and the stamp changes, so stale
//     stamped caches re-intern transparently instead of reading freed state;
//   - a per-request *child* interner can be used for scoped work and its
//     surviving ids carried over with `RebaseInto(parent)`, which re-interns
//     every conjunction into the parent and returns the id translation;
//     memoized verdicts are preserved (false maps to false, true to true).
//
// Threading model. By default an interner is single-threaded and `Global()`
// returns a thread-local instance, so concurrent evaluators never contend.
// Calling `EnableSharing()` switches one instance into *shared* mode: the
// unique-tables and the And/Implies memo tables are sharded 16 ways behind
// per-shard std::shared_mutex (lookups take a shared lock, misses a unique
// one), element storage moves through lock-free StableStores, and scratch
// state becomes thread-local — after that, Intern/And/Implies/Resolve and
// friends are safe from any number of threads. The single-threaded path
// stays zero-cost: when sharing is off every lock constructs deferred and
// never touches the mutex. Clear() and RebaseInto() still require external
// quiescence (no concurrent calls) even in shared mode, and `stats()` stops
// counting once sharing is enabled (the counters would be a contention
// point). `SetProcessShared()` installs a shared instance as the process-
// wide target of `Global()`, which routes the library-internal fast paths
// (decision procedures, CTable::Normalized) to the shared tables — the
// serving loop uses this so reader threads and the writer agree on one
// stamp and warmed row caches stay hits.
//
// The stamped id caches rows and tables carry (CRow::LocalId,
// CTable::GlobalId) are lazily *written* on first use, so sharing a table
// across threads additionally requires warming those caches first — see
// CTable::PrepareForSharing.

#ifndef PW_CONDITION_INTERNER_H_
#define PW_CONDITION_INTERNER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "condition/atom.h"
#include "condition/binding_env.h"
#include "condition/conjunction.h"
#include "util/stable_store.h"

namespace pw {

/// Id of an interned atom. Dense, starting at 0.
using AtomId = uint32_t;

/// Id of an interned (canonicalized) conjunction. Dense, starting at 0.
using ConjId = uint32_t;

/// Hash for atoms (used by the interner's maps).
struct CondAtomHash {
  size_t operator()(const CondAtom& a) const noexcept {
    uint64_t h = std::hash<Term>()(a.lhs);
    h = h * 1099511628211ull ^ std::hash<Term>()(a.rhs);
    return static_cast<size_t>(h * 2ull + (a.is_equality ? 1 : 0));
  }
};

class ConditionInterner {
 public:
  /// The empty conjunction `true` always interns to this id.
  static constexpr ConjId kTrueConj = 0;

  /// Every unsatisfiable conjunction interns to this id.
  static constexpr ConjId kFalseConj = 1;

  ConditionInterner();

  ConditionInterner(const ConditionInterner&) = delete;
  ConditionInterner& operator=(const ConditionInterner&) = delete;

  /// Hash-conses one atom (exactly as given; atoms are already normalized by
  /// Eq/Neq so symmetric variants coincide).
  AtomId InternAtom(const CondAtom& atom);

  /// The atom behind an id.
  const CondAtom& AtomOf(AtomId id) const { return atoms_[id]; }

  /// Canonicalizes and hash-conses a conjunction. Equivalent conjunctions
  /// (up to atom order, duplicates, trivial atoms, and equality congruence)
  /// return the same id; unsatisfiable ones return kFalseConj.
  ConjId Intern(const Conjunction& conjunction);

  /// The canonical materialized form of an interned conjunction. For
  /// kFalseConj this is the single-atom conjunction {0 != 0}.
  const Conjunction& Resolve(ConjId id) const { return conjs_[id].canonical; }

  /// Conjunction of two interned conjunctions, memoized pairwise.
  ConjId And(ConjId a, ConjId b);

  /// True iff every valuation satisfying `a` satisfies `b`. Complete for
  /// conjunctions of =/!= atoms over the infinite domain (congruence check),
  /// memoized pairwise with a canonical-atom subset fast path.
  bool Implies(ConjId a, ConjId b);

  /// O(1) satisfiability of an interned conjunction (the congruence closure
  /// ran at intern time).
  bool Satisfiable(ConjId id) const { return id != kFalseConj; }

  /// Interns, then reads the memoized verdict. Semantically identical to
  /// `conjunction.Satisfiable()` (the uncached congruence-closure path) but
  /// repeated queries on equal conjunctions cost one hash lookup.
  bool CachedSatisfiable(const Conjunction& conjunction) {
    return Intern(conjunction) != kFalseConj;
  }

  /// The canonical atom ids of an interned conjunction (sorted by atom
  /// value, deduplicated). `a` subsumes `b` when AtomIdsOf(a) is a subset of
  /// AtomIdsOf(b) — the fast path of `Implies`.
  const std::vector<AtomId>& AtomIdsOf(ConjId id) const {
    return conjs_[id].atoms;
  }

  size_t num_atoms() const { return atoms_.size(); }
  size_t num_conjunctions() const { return conjs_.size(); }

  // --- Generational lifecycle -----------------------------------------------

  /// A value unique to this (instance, generation) pair across the process.
  /// Ids obtained under stamp s are valid exactly while stamp() == s; caches
  /// key their entries on it. Never 0, so 0 works as "no cache".
  uint64_t stamp() const { return stamp_; }

  /// Number of Clear() calls survived.
  uint64_t generation() const { return generation_; }

  /// Starts a new generation: drops every interned atom, conjunction, and
  /// pair cache back to the two sentinels (retaining container capacity) and
  /// changes the stamp, invalidating all outstanding ids and stamped caches.
  /// Stats are not reset. Requires exclusive access (no concurrent use of
  /// this interner, even in shared mode).
  void Clear();

  /// Re-interns every conjunction of this interner into `dst` and returns
  /// the translation: result[id] is the id in `dst` of the conjunction `id`
  /// denotes here. kTrueConj and kFalseConj map to themselves, so memoized
  /// satisfiability verdicts survive the rebase. Typical use: run a request
  /// against a scratch child interner, then rebase surviving row ids into
  /// the long-lived parent. Requires exclusive access to `this`.
  std::vector<ConjId> RebaseInto(ConditionInterner& dst) const;

  // --- Sharing ---------------------------------------------------------------

  /// Switches this instance into shared (thread-safe) mode. Irreversible.
  /// Must be called before the instance is visible to other threads. After
  /// this, stats() stops counting (see class comment).
  void EnableSharing() { shared_.store(true, std::memory_order_release); }

  /// True once EnableSharing() was called.
  bool shared() const { return shared_.load(std::memory_order_relaxed); }

  /// Installs `interner` (which must be in shared mode) as the process-wide
  /// result of Global(), overriding the per-thread instances; nullptr
  /// restores the thread-local default. Callers own the lifetime: reset the
  /// override before destroying the instance.
  static void SetProcessShared(ConditionInterner* interner);

  /// The current process-wide override, or nullptr.
  static ConditionInterner* ProcessShared();

  /// Bounds the And/Implies memo tables for long-lived shared interners:
  /// each of their 16 shards holds at most `per_shard` entries, and a shard
  /// at capacity is dropped wholesale before the next insert (no LRU
  /// bookkeeping on the read path, so lookups stay a single shared-lock
  /// probe). 0 (the default) means unbounded. Only the *memo* tables evict —
  /// the atom/conjunction unique-tables never do, so interned ids stay valid
  /// and eviction can only cost recomputation, never change a verdict.
  /// Safe to call at any time, including on a shared instance.
  void SetMemoCapacity(size_t per_shard) {
    memo_capacity_.store(per_shard, std::memory_order_relaxed);
  }

  /// Number of memo-shard drops since construction (And + Implies).
  uint64_t memo_evictions() const {
    return memo_evictions_.load(std::memory_order_relaxed);
  }

  /// Cache-effectiveness counters (for benches and tests). Frozen (no longer
  /// updated) once EnableSharing() was called.
  struct Stats {
    uint64_t intern_calls = 0;      // Intern() invocations
    uint64_t syntactic_hits = 0;    // resolved without running closure
    uint64_t canonical_hits = 0;    // closure ran, canonical form known
    uint64_t and_calls = 0;         // And() invocations past trivial cases
    uint64_t and_hits = 0;          // resolved from the pair cache
    uint64_t implies_calls = 0;     // Implies() invocations past trivial cases
    uint64_t implies_hits = 0;      // resolved by subset test or pair cache
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

  /// The interner used by the library fast paths (EvalOnCTables,
  /// Formula::Satisfiable, the decision procedures): the process-wide shared
  /// instance if one was installed with SetProcessShared(), else a
  /// thread-local instance.
  static ConditionInterner& Global();

 private:
  struct ConjEntry {
    std::vector<AtomId> atoms;  // canonical: sorted by atom value, unique
    Conjunction canonical;      // the same atoms materialized
  };

  struct IdVecHash {
    size_t operator()(const std::vector<AtomId>& v) const noexcept {
      uint64_t h = 1469598103934665603ull;  // FNV-1a
      for (AtomId id : v) {
        h ^= id;
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  struct PairHash {
    size_t operator()(const std::pair<ConjId, ConjId>& p) const noexcept {
      return static_cast<size_t>(
          (static_cast<uint64_t>(p.first) << 32) | p.second);
    }
  };

  static constexpr size_t kNumShards = 16;

  /// One lock-striped hash map: lookups under a shared lock, inserts under a
  /// unique one; in single-threaded mode the locks construct deferred and
  /// cost nothing. The shard is picked from the key hash the caller already
  /// computed.
  template <typename Key, typename Value, typename Hash>
  struct ShardedMap {
    struct Shard {
      mutable std::shared_mutex mutex;
      std::unordered_map<Key, Value, Hash> map;
    };
    Shard shards[kNumShards];

    Shard& ShardFor(size_t hash) { return shards[hash % kNumShards]; }
    const Shard& ShardFor(size_t hash) const {
      return shards[hash % kNumShards];
    }
    void ClearAll() {
      for (Shard& s : shards) s.map.clear();
    }
  };

  std::shared_lock<std::shared_mutex> ReadLock(std::shared_mutex& m) const {
    std::shared_lock<std::shared_mutex> lock(m, std::defer_lock);
    if (shared()) lock.lock();
    return lock;
  }
  std::unique_lock<std::shared_mutex> WriteLock(std::shared_mutex& m) const {
    std::unique_lock<std::shared_mutex> lock(m, std::defer_lock);
    if (shared()) lock.lock();
    return lock;
  }
  std::unique_lock<std::mutex> StorageLock(std::mutex& m) const {
    std::unique_lock<std::mutex> lock(m, std::defer_lock);
    if (shared()) lock.lock();
    return lock;
  }

  /// Stats bump that vanishes in shared mode.
  void Bump(uint64_t Stats::* counter) {
    if (!shared()) ++(stats_.*counter);
  }

  // Scratch selection: the members in single-threaded mode (capacity reuse
  // per instance), thread-local buffers in shared mode (no contention).
  std::vector<AtomId>& ScratchKey();
  BindingEnv& ScratchEnv();

  /// Runs the congruence closure on `conjunction` and interns its canonical
  /// form (kFalseConj when unsatisfiable).
  ConjId Canonicalize(const Conjunction& conjunction);

  /// Interns an already-canonical sorted atom-id vector.
  ConjId InternCanonical(std::vector<AtomId> ids);

  /// Installs the two sentinel entries into empty tables.
  void InitSentinels();

  // Element storage: ids index these; lock-free reads, appends serialized by
  // the storage mutexes (taken only under the owning map's unique lock —
  // lock order is always map shard, then storage).
  StableStore<CondAtom> atoms_;
  StableStore<ConjEntry> conjs_;
  std::mutex atom_storage_mutex_;
  std::mutex conj_storage_mutex_;

  ShardedMap<CondAtom, AtomId, CondAtomHash> atom_ids_;
  // Canonical sorted atom-id vector -> ConjId.
  ShardedMap<std::vector<AtomId>, ConjId, IdVecHash> canonical_ids_;
  // Syntactic (pre-closure, order-sensitive) atom-id vector -> ConjId.
  ShardedMap<std::vector<AtomId>, ConjId, IdVecHash> syntactic_ids_;
  // Unordered pair (min, max) -> And result (And is commutative, so the
  // canonical key halves the entries and argument order never splits them).
  ShardedMap<std::pair<ConjId, ConjId>, ConjId, PairHash> and_cache_;
  // Ordered pair (lhs, rhs) -> whether lhs implies rhs. Implication is NOT
  // symmetric, so the canonical key is exactly the ordered pair — every
  // backend's implication memo (see condition/dd_backend.h) keys the same
  // way, and a rebased id pair hits the same entry in every generation.
  ShardedMap<std::pair<ConjId, ConjId>, bool, PairHash> implies_cache_;

  // Reused scratch state for single-threaded mode: the syntactic key buffer
  // and the congruence environment (reverted to empty after each closure,
  // retaining capacity).
  std::vector<AtomId> scratch_key_;
  BindingEnv scratch_env_;

  /// Capacity-evicting memo insert shared by And and Implies; call with the
  /// shard's unique lock held.
  template <typename Shard, typename Key, typename Value>
  void MemoEmplace(Shard& shard, const Key& key, const Value& value) {
    size_t capacity = memo_capacity_.load(std::memory_order_relaxed);
    if (capacity != 0 && shard.map.size() >= capacity) {
      shard.map.clear();
      memo_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.map.emplace(key, value);
  }

  std::atomic<bool> shared_{false};
  std::atomic<size_t> memo_capacity_{0};
  std::atomic<uint64_t> memo_evictions_{0};

  uint64_t stamp_ = 0;
  uint64_t generation_ = 0;

  Stats stats_;
};

}  // namespace pw

#endif  // PW_CONDITION_INTERNER_H_
