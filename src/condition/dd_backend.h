// Hash-consed ordered decision diagrams over condition atoms.
//
// The antichain representation keeps one interned conjunction per covering
// derivation of a tuple; over the infinite domain a union of strictly
// stronger conjunctions never covers a weaker one, so at high condition
// diversity the antichain per tuple is genuinely exponential and every
// And/Implies on it pays for the whole set. DDBackend instead gives each
// *boolean function* of condition atoms one canonical id: a reduced ordered
// decision diagram (ROBDD discipline) whose decision variables are condition
// atoms under a semantic order (see VarBefore). And/Or/Not are then the classic
// polynomial Apply recursion over a node unique-table and a memoized
// operation cache — the same hash-consing pattern the interner already uses
// for conjunctions, sharded 16 ways with deferred locks so it is free
// single-threaded and safe under PR 7's shared mode.
//
// The diagrams are propositional: a node branches on an atom's truth value
// with no knowledge that `x = y` and `x != y` exclude each other or that
// equality is a congruence. Theory reasoning happens exactly where verdicts
// are produced — Satisfiable/Implies/TautologyUnder run a BindingEnv-pruned
// DFS over diagram paths, which is exact over the paper's infinite constant
// domain (a path is a conjunction of =/!= literals, and BindingEnv decides
// those completely). Satisfiability caches its context-free verdict per id;
// an UNSAT id is unsatisfiable under any path context, so the cache also
// prunes inner recursion.
//
// Node and id layout: ids 0/1 are the shared true/false sentinels
// (kTrueCond/kFalseCond, matching ConjId); id >= 2 denotes nodes_[id - 2].
// Nodes are append-only for the backend's lifetime — the op caches may be
// bounded (SetOpCacheCapacity) and evicted, the unique-table never.

#ifndef PW_CONDITION_DD_BACKEND_H_
#define PW_CONDITION_DD_BACKEND_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "condition/backend.h"
#include "condition/binding_env.h"
#include "util/stable_store.h"

namespace pw {

class DDBackend final : public ConditionBackend {
 public:
  explicit DDBackend(ConditionInterner& interner)
      : ConditionBackend(interner) {}

  const char* name() const override { return "dd"; }
  bool disjunctive() const override { return true; }

  CondId FromConj(ConjId id) override;
  CondId And(CondId a, CondId b) override;
  CondId Or(CondId a, CondId b) override;
  bool Implies(CondId a, CondId b) override;
  bool Satisfiable(CondId id) override;
  bool SatisfiableWith(ConjId global, CondId id) override;
  bool TautologyUnder(ConjId global, CondId id) override;
  void AppendDisjuncts(CondId id, std::vector<ConjId>* out) override;

  /// Negation (sentinels swap, internal structure is shared). Exposed for
  /// tests; Implies/TautologyUnder use it internally.
  CondId Not(CondId id);

  /// Diagram nodes allocated so far (excluding the two sentinels).
  size_t num_nodes() const { return nodes_.size(); }

  /// Bounds every op-cache shard (Apply results, implication and
  /// satisfiability verdicts) to `per_shard` entries; a shard at capacity is
  /// dropped wholesale before the next insert, like the interner's memo
  /// eviction. 0 (the default) means unbounded. The node unique-table is
  /// NEVER evicted — ids stay valid for the backend's lifetime.
  void SetOpCacheCapacity(size_t per_shard) { op_cache_capacity_ = per_shard; }

  /// Number of op-cache shard drops since construction.
  uint64_t op_cache_evictions() const {
    return op_cache_evictions_.load(std::memory_order_relaxed);
  }

 private:
  enum class Op : uint32_t { kAnd, kOr, kNot, kImplies, kSat };

  struct Node {
    AtomId var;  // decision atom; strictly increases along any path
    CondId lo;   // successor when the atom is false
    CondId hi;   // successor when the atom is true
  };

  struct NodeKey {
    AtomId var;
    CondId lo;
    CondId hi;
    bool operator==(const NodeKey& o) const {
      return var == o.var && lo == o.lo && hi == o.hi;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const noexcept {
      uint64_t h = k.var;
      h = h * 1099511628211ull ^ k.lo;
      h = h * 1099511628211ull ^ k.hi;
      return static_cast<size_t>(h);
    }
  };

  struct OpKey {
    Op op;
    CondId a;
    CondId b;
    bool operator==(const OpKey& o) const {
      return op == o.op && a == o.a && b == o.b;
    }
  };
  struct OpKeyHash {
    size_t operator()(const OpKey& k) const noexcept {
      uint64_t h = static_cast<uint32_t>(k.op);
      h = h * 1099511628211ull ^ k.a;
      h = h * 1099511628211ull ^ k.b;
      return static_cast<size_t>(h);
    }
  };

  static constexpr size_t kNumShards = 16;
  static constexpr AtomId kTerminalVar = UINT32_MAX;

  template <typename Key, typename Value, typename Hash>
  struct ShardedMap {
    struct Shard {
      mutable std::shared_mutex mutex;
      std::unordered_map<Key, Value, Hash> map;
    };
    Shard shards[kNumShards];
    Shard& ShardFor(size_t hash) { return shards[hash % kNumShards]; }
  };

  std::shared_lock<std::shared_mutex> ReadLock(std::shared_mutex& m) const {
    std::shared_lock<std::shared_mutex> lock(m, std::defer_lock);
    if (interner().shared()) lock.lock();
    return lock;
  }
  std::unique_lock<std::shared_mutex> WriteLock(std::shared_mutex& m) const {
    std::unique_lock<std::shared_mutex> lock(m, std::defer_lock);
    if (interner().shared()) lock.lock();
    return lock;
  }
  std::unique_lock<std::mutex> StorageLock(std::mutex& m) const {
    std::unique_lock<std::mutex> lock(m, std::defer_lock);
    if (interner().shared()) lock.lock();
    return lock;
  }

  BindingEnv& ScratchEnv();

  const Node& NodeOf(CondId id) const { return nodes_[id - 2]; }
  static bool IsTerminal(CondId id) { return id <= kFalseCond; }
  AtomId VarOf(CondId id) const {
    return IsTerminal(id) ? kTerminalVar : NodeOf(id).var;
  }

  /// The diagram's variable order: strict "a sits above b". Semantic, not
  /// AtomId order — atoms are interned in derivation order, which scatters
  /// the atoms constraining one null across the id space and blows the
  /// diagrams up. Keying lexicographically on (lhs, rhs, is_equality)
  /// groups them instead: atoms are normalized lhs <= rhs with constants
  /// below variables, so all the `c = x` / `c != x` literals binding one
  /// constant sit adjacent near the top, where their mutual exclusions
  /// collapse paths immediately. Empirically this is the winner on the
  /// conditioned-TC diversity sweep: ~20x fewer Apply calls than grouping
  /// by the variable side (rhs first), which interleaves the constants each
  /// null is tested against and keeps the disjuncts from sharing suffixes.
  bool VarBefore(AtomId a, AtomId b) const;

  /// Reduced, hash-consed node constructor: lo == hi collapses, otherwise
  /// the unique-table guarantees one id per (var, lo, hi).
  CondId MakeNode(AtomId var, CondId lo, CondId hi);

  /// Shared binary Apply for kAnd/kOr (terminal rules per op, memoized on
  /// the canonical (min, max) pair — both are commutative).
  CondId Apply(Op op, CondId a, CondId b);

  /// Cached op-cache read / capacity-evicting write.
  bool CacheLookup(const OpKey& key, CondId* out);
  void CacheStore(const OpKey& key, CondId value);

  /// Theory-pruned path DFS under the assertions already in `env`.
  bool SatSearch(CondId id, BindingEnv& env);

  void ExpandPaths(CondId id, BindingEnv& env, std::vector<CondAtom>* path,
                   std::unordered_set<ConjId>* seen, std::vector<ConjId>* out);

  StableStore<Node> nodes_;
  std::mutex node_storage_mutex_;
  ShardedMap<NodeKey, CondId, NodeKeyHash> unique_;
  ShardedMap<OpKey, CondId, OpKeyHash> ops_;  // verdicts stored as 0/1
  ShardedMap<ConjId, CondId, std::hash<ConjId>> from_conj_;

  BindingEnv scratch_env_;  // shared mode uses a thread_local instead

  size_t op_cache_capacity_ = 0;
  std::atomic<uint64_t> op_cache_evictions_{0};
};

}  // namespace pw

#endif  // PW_CONDITION_DD_BACKEND_H_
