// A revertible congruence environment over terms.
//
// BindingEnv maintains a set of asserted equalities and disequalities between
// terms (variables and constants) and answers consistency queries over the
// countably infinite constant domain of the paper. Because the domain is
// infinite, a state is satisfiable exactly when
//   (a) no two distinct constants are in the same equivalence class, and
//   (b) no asserted disequality connects two terms of the same class.
// Both are maintained eagerly, so every successful Assert* leaves a
// satisfiable state. A trail enables O(1)-amortized rollback to an earlier
// mark — this is the backbone of all backtracking decision procedures in
// src/decision/.

#ifndef PW_CONDITION_BINDING_ENV_H_
#define PW_CONDITION_BINDING_ENV_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "condition/atom.h"
#include "core/term.h"

namespace pw {

class Conjunction;

/// Revertible union-find over terms with class constants and disequalities.
///
/// Usage pattern in a backtracking search:
///
///   size_t mark = env.Mark();
///   if (env.AssertEqual(a, b) && env.Assert(cond)) { ...recurse...; }
///   env.Revert(mark);
///
/// On a failed Assert* the environment may hold a partially applied prefix;
/// the caller is expected to Revert to its own mark (as above).
class BindingEnv {
 public:
  BindingEnv() = default;

  // Non-copyable (trail-based identity); movable.
  BindingEnv(const BindingEnv&) = delete;
  BindingEnv& operator=(const BindingEnv&) = delete;
  BindingEnv(BindingEnv&&) = default;
  BindingEnv& operator=(BindingEnv&&) = default;

  /// Opaque rollback point.
  size_t Mark() const { return trail_.size(); }

  /// Rolls back all assertions after `mark`.
  void Revert(size_t mark);

  /// Asserts a = b. Returns false (state possibly partially updated — revert)
  /// if this would merge two distinct constants or violate a recorded
  /// disequality.
  bool AssertEqual(Term a, Term b);

  /// Asserts a != b. Returns false if a and b are already equal.
  bool AssertNotEqual(Term a, Term b);

  /// Asserts one atom.
  bool AssertAtom(const CondAtom& atom);

  /// Asserts every atom of a conjunction.
  bool Assert(const Conjunction& conjunction);

  /// The constant the class of `t` is bound to, if any.
  std::optional<ConstId> ValueOf(Term t) const;

  /// True iff a and b are currently in the same class. (Terms never seen are
  /// only equal to themselves / their own constant.)
  bool SameClass(Term a, Term b) const;

  /// True iff asserting a = b would succeed (non-mutating check).
  bool CanEqual(Term a, Term b);

  /// Number of asserted (non-redundant) disequality edges.
  size_t NumDisequalities() const { return diseqs_.size(); }

 private:
  struct TrailEntry {
    enum Kind : uint8_t { kNodeAdded, kUnion, kDiseqAdded } kind;
    int a = 0;              // kUnion: child root;  kNodeAdded: node id
    int b = 0;              // kUnion: parent root
    int old_rank = 0;       // kUnion: parent's rank before merge
    int64_t old_const = 0;  // kUnion: parent's class constant before merge
  };

  static constexpr int64_t kNoConst = INT64_MIN;

  int NodeOf(Term t);                 // interns t, may push kNodeAdded
  std::optional<int> FindNode(Term t) const;
  int Root(int node) const;
  bool ViolatesDiseq(int root_a, int root_b) const;

  std::unordered_map<Term, int> node_of_;
  std::vector<Term> term_of_;
  std::vector<int> parent_;
  std::vector<int> rank_;
  std::vector<int64_t> const_of_;          // per root; kNoConst if unbound
  std::vector<std::pair<int, int>> diseqs_;  // node pairs
  std::vector<TrailEntry> trail_;
};

}  // namespace pw

#endif  // PW_CONDITION_BINDING_ENV_H_
