// Condition atoms: x = y, x = c, x != y, x != c  (Section 2.2 of the paper).
//
// The paper's conditions are conjunctions of such atoms over variables and
// constants. We allow both sides to be arbitrary terms (constant/constant
// atoms evaluate immediately), which closes the atom language under
// substitution — needed by the Imielinski–Lipski algebra.

#ifndef PW_CONDITION_ATOM_H_
#define PW_CONDITION_ATOM_H_

#include <string>
#include <vector>

#include "core/term.h"

namespace pw {

class SymbolTable;

/// One equality or inequality atom between two terms. Normalized so that
/// lhs <= rhs in term order; this makes structural equality match semantic
/// symmetry (x = y vs y = x).
struct CondAtom {
  Term lhs;
  Term rhs;
  bool is_equality = true;

  friend bool operator==(const CondAtom&, const CondAtom&) = default;
  friend auto operator<=>(const CondAtom&, const CondAtom&) = default;
};

/// Builds a normalized equality atom `a = b`.
CondAtom Eq(Term a, Term b);

/// Builds a normalized inequality atom `a != b`.
CondAtom Neq(Term a, Term b);

/// Negates an atom (= becomes !=, and vice versa).
CondAtom Negate(const CondAtom& atom);

/// The atom `true`, encoded as in the paper via x = x (we use 0 = 0).
CondAtom TrueAtom();

/// The atom `false`, encoded as in the paper via x != x (we use 0 != 0).
CondAtom FalseAtom();

/// True if the atom holds for every valuation (e.g. c = c, x = x).
bool IsTriviallyTrue(const CondAtom& atom);

/// True if the atom holds for no valuation (e.g. c != c, x != x, c = d).
bool IsTriviallyFalse(const CondAtom& atom);

/// Variables mentioned by the atom, deduplicated.
std::vector<VarId> AtomVariables(const CondAtom& atom);

/// Renders "x1 = 3", "x1 != x2", ...
std::string ToString(const CondAtom& atom,
                     const SymbolTable* symbols = nullptr);

}  // namespace pw

#endif  // PW_CONDITION_ATOM_H_
