#include "condition/formula.h"

#include <set>

#include "condition/interner.h"
#include "core/symbol_table.h"

namespace pw {

Formula::Formula() : node_(nullptr) { *this = True(); }

Formula Formula::True() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kTrue;
  return Formula(std::move(node));
}

Formula Formula::False() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kFalse;
  return Formula(std::move(node));
}

Formula Formula::MakeAtom(const CondAtom& atom) {
  if (IsTriviallyTrue(atom)) return True();
  if (IsTriviallyFalse(atom)) return False();
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAtom;
  node->atom = atom;
  return Formula(std::move(node));
}

Formula Formula::FromConjunction(const Conjunction& conjunction) {
  std::vector<Formula> parts;
  parts.reserve(conjunction.size());
  for (const CondAtom& a : conjunction.atoms()) parts.push_back(MakeAtom(a));
  return And(parts);
}

Formula Formula::And(const std::vector<Formula>& children) {
  std::vector<Formula> kept;
  for (const Formula& f : children) {
    if (f.is_false()) return False();
    if (!f.is_true()) kept.push_back(f);
  }
  if (kept.empty()) return True();
  if (kept.size() == 1) return kept[0];
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->children = std::move(kept);
  return Formula(std::move(node));
}

Formula Formula::Or(const std::vector<Formula>& children) {
  std::vector<Formula> kept;
  for (const Formula& f : children) {
    if (f.is_true()) return True();
    if (!f.is_false()) kept.push_back(f);
  }
  if (kept.empty()) return False();
  if (kept.size() == 1) return kept[0];
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->children = std::move(kept);
  return Formula(std::move(node));
}

Formula Formula::And(const Formula& a, const Formula& b) {
  return And(std::vector<Formula>{a, b});
}

Formula Formula::Or(const Formula& a, const Formula& b) {
  return Or(std::vector<Formula>{a, b});
}

bool Formula::is_true() const { return node_->kind == Kind::kTrue; }
bool Formula::is_false() const { return node_->kind == Kind::kFalse; }

std::vector<Conjunction> Formula::ToDnf() const {
  switch (node_->kind) {
    case Kind::kTrue:
      return {Conjunction()};
    case Kind::kFalse:
      return {};
    case Kind::kAtom:
      return {Conjunction{node_->atom}};
    case Kind::kOr: {
      std::vector<Conjunction> out;
      for (const Formula& child : node_->children) {
        for (Conjunction& c : child.ToDnf()) out.push_back(std::move(c));
      }
      return out;
    }
    case Kind::kAnd: {
      std::vector<Conjunction> acc = {Conjunction()};
      for (const Formula& child : node_->children) {
        std::vector<Conjunction> child_dnf = child.ToDnf();
        std::vector<Conjunction> next;
        next.reserve(acc.size() * child_dnf.size());
        for (const Conjunction& a : acc) {
          for (const Conjunction& b : child_dnf) {
            next.push_back(Conjunction::And(a, b));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
  }
  return {};
}

bool Formula::Satisfiable() const {
  // Interner-memoized: DNF expansion produces the same disjuncts over and
  // over (shared subtrees), so each distinct conjunction's congruence
  // closure runs once per thread.
  ConditionInterner& interner = ConditionInterner::Global();
  for (const Conjunction& c : ToDnf()) {
    if (interner.CachedSatisfiable(c)) return true;
  }
  return false;
}

std::vector<VarId> Formula::Variables() const {
  std::set<VarId> seen;
  for (const Conjunction& c : ToDnf()) {
    for (VarId v : c.Variables()) seen.insert(v);
  }
  return {seen.begin(), seen.end()};
}

std::string Formula::ToString(const SymbolTable* symbols) const {
  switch (node_->kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return pw::ToString(node_->atom, symbols);
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = node_->kind == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < node_->children.size(); ++i) {
        if (i > 0) out += sep;
        out += node_->children[i].ToString(symbols);
      }
      out += ")";
      return out;
    }
  }
  return "";
}

}  // namespace pw
