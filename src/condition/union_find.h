// A plain disjoint-set forest over dense integer ids.

#ifndef PW_CONDITION_UNION_FIND_H_
#define PW_CONDITION_UNION_FIND_H_

#include <cstddef>
#include <vector>

namespace pw {

/// Union-find with union by rank and path compression. Elements are the
/// integers [0, size). Non-revertible; for backtracking searches use
/// `BindingEnv` (condition/binding_env.h) instead.
class UnionFind {
 public:
  explicit UnionFind(size_t size = 0);

  /// Adds one element, returning its id.
  int Add();

  size_t size() const { return parent_.size(); }

  /// Representative of `x`'s class.
  int Find(int x) const;

  /// Merges the classes of `a` and `b`. Returns true if they were distinct.
  bool Union(int a, int b);

  bool Same(int a, int b) const { return Find(a) == Find(b); }

 private:
  mutable std::vector<int> parent_;
  std::vector<int> rank_;
};

}  // namespace pw

#endif  // PW_CONDITION_UNION_FIND_H_
