// Conjunctions of condition atoms — the paper's "conditions".
//
// Global conditions of g-/i-/e-/c-tables and local conditions of c-table
// rows are conjunctions of equality and inequality atoms. The empty
// conjunction is `true`.

#ifndef PW_CONDITION_CONJUNCTION_H_
#define PW_CONDITION_CONJUNCTION_H_

#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "condition/atom.h"
#include "core/term.h"

namespace pw {

class SymbolTable;

/// A conjunction of equality/inequality atoms. Satisfiability and implication
/// are decided over the countably infinite constant domain (PTIME, via
/// congruence closure — the paper relies on this in Definition 2.2).
class Conjunction {
 public:
  /// The empty conjunction, i.e. `true`.
  Conjunction() = default;

  Conjunction(std::initializer_list<CondAtom> atoms) : atoms_(atoms) {}
  explicit Conjunction(std::vector<CondAtom> atoms)
      : atoms_(std::move(atoms)) {}

  void Add(const CondAtom& atom) { atoms_.push_back(atom); }
  void AddAll(const Conjunction& other);

  const std::vector<CondAtom>& atoms() const { return atoms_; }
  size_t size() const { return atoms_.size(); }

  /// True iff the conjunction holds under every valuation.
  bool IsTautology() const;

  /// True iff some valuation satisfies the conjunction.
  bool Satisfiable() const;

  /// True iff every valuation satisfying this conjunction satisfies `atom`.
  bool Implies(const CondAtom& atom) const;

  /// Applies a substitution of variables by terms to every atom.
  Conjunction Substitute(
      const std::unordered_map<VarId, Term>& substitution) const;

  /// The conjunction of `a` and `b`.
  static Conjunction And(const Conjunction& a, const Conjunction& b);

  /// For each variable forced to equal some constant, that constant. E.g.
  /// {x = 3, y = x} forces x -> 3 and y -> 3. Empty if unsatisfiable.
  std::unordered_map<VarId, ConstId> ForcedConstants() const;

  /// Maps every variable of the conjunction to a canonical representative of
  /// its equality class: the class constant if one exists, else the least
  /// variable of the class. Used to "incorporate" equalities into a table
  /// (the paper's standard practice for e-tables). Empty if unsatisfiable.
  std::unordered_map<VarId, Term> CanonicalSubstitution() const;

  /// All variables mentioned, deduplicated and sorted.
  std::vector<VarId> Variables() const;

  /// All constants mentioned, deduplicated and sorted.
  std::vector<ConstId> Constants() const;

  /// Drops trivially true atoms (c = c, x = x). Keeps order otherwise.
  Conjunction Simplified() const;

  friend bool operator==(const Conjunction&, const Conjunction&) = default;

  /// Renders "x1 = 3 AND x2 != x3", or "true" when empty.
  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  std::vector<CondAtom> atoms_;
};

}  // namespace pw

#endif  // PW_CONDITION_CONJUNCTION_H_
