#include "condition/conjunction.h"

#include <algorithm>
#include <set>

#include "condition/binding_env.h"
#include "core/symbol_table.h"

namespace pw {

void Conjunction::AddAll(const Conjunction& other) {
  atoms_.insert(atoms_.end(), other.atoms_.begin(), other.atoms_.end());
}

bool Conjunction::IsTautology() const {
  return std::all_of(atoms_.begin(), atoms_.end(), IsTriviallyTrue);
}

bool Conjunction::Satisfiable() const {
  BindingEnv env;
  return env.Assert(*this);
}

bool Conjunction::Implies(const CondAtom& atom) const {
  // Over an infinite domain: C implies a  iff  C AND NOT a is unsatisfiable.
  BindingEnv env;
  if (!env.Assert(*this)) return true;  // unsatisfiable implies everything
  return !env.AssertAtom(Negate(atom));
}

Conjunction Conjunction::Substitute(
    const std::unordered_map<VarId, Term>& substitution) const {
  auto apply = [&substitution](Term t) {
    if (t.is_variable()) {
      auto it = substitution.find(t.variable());
      if (it != substitution.end()) return it->second;
    }
    return t;
  };
  Conjunction out;
  out.atoms_.reserve(atoms_.size());
  for (const CondAtom& a : atoms_) {
    out.atoms_.push_back(a.is_equality ? Eq(apply(a.lhs), apply(a.rhs))
                                       : Neq(apply(a.lhs), apply(a.rhs)));
  }
  return out;
}

Conjunction Conjunction::And(const Conjunction& a, const Conjunction& b) {
  Conjunction out = a;
  out.AddAll(b);
  return out;
}

std::unordered_map<VarId, ConstId> Conjunction::ForcedConstants() const {
  std::unordered_map<VarId, ConstId> out;
  BindingEnv env;
  if (!env.Assert(*this)) return out;
  for (VarId v : Variables()) {
    if (auto c = env.ValueOf(Term::Var(v))) out.emplace(v, *c);
  }
  return out;
}

std::unordered_map<VarId, Term> Conjunction::CanonicalSubstitution() const {
  std::unordered_map<VarId, Term> out;
  BindingEnv env;
  if (!env.Assert(*this)) return out;
  std::vector<VarId> vars = Variables();
  for (VarId v : vars) {
    if (auto c = env.ValueOf(Term::Var(v))) {
      out.emplace(v, Term::Const(*c));
      continue;
    }
    // Least variable of the class (vars is sorted, so scan from the front).
    for (VarId w : vars) {
      if (env.SameClass(Term::Var(v), Term::Var(w))) {
        out.emplace(v, Term::Var(w));
        break;
      }
    }
  }
  return out;
}

std::vector<VarId> Conjunction::Variables() const {
  std::set<VarId> seen;
  for (const CondAtom& a : atoms_) {
    for (VarId v : AtomVariables(a)) seen.insert(v);
  }
  return {seen.begin(), seen.end()};
}

std::vector<ConstId> Conjunction::Constants() const {
  std::set<ConstId> seen;
  for (const CondAtom& a : atoms_) {
    if (a.lhs.is_constant()) seen.insert(a.lhs.constant());
    if (a.rhs.is_constant()) seen.insert(a.rhs.constant());
  }
  return {seen.begin(), seen.end()};
}

Conjunction Conjunction::Simplified() const {
  Conjunction out;
  for (const CondAtom& a : atoms_) {
    if (!IsTriviallyTrue(a)) out.Add(a);
  }
  return out;
}

std::string Conjunction::ToString(const SymbolTable* symbols) const {
  if (atoms_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += pw::ToString(atoms_[i], symbols);
  }
  return out;
}

}  // namespace pw
