// Condition backends: pluggable representations of row conditions.
//
// The conditioned fixpoint and the decision procedures manipulate row
// conditions through four operations — conjoin, disjoin, implication,
// satisfiability — plus a tautology check against a global condition. The
// paper's c-tables make every row condition a conjunction, so the original
// implementation works on interned conjunction ids (ConditionInterner) and
// keeps "a row's condition" as a *set* of conjunctions (an implicit DNF,
// maintained as a covering antichain via pairwise implication). At high
// condition diversity that antichain is genuinely exponential: over the
// infinite domain a union of strictly stronger conjunctions can never cover
// a weaker one, so the antichain must keep them all.
//
// ConditionBackend abstracts the representation behind a small interface so
// a second implementation — hash-consed ordered decision diagrams over
// condition atoms (condition/dd_backend.h) — can represent a row's condition
// as ONE canonical id for an arbitrary boolean combination of atoms, making
// And/Or/Implies polynomial diagram operations and certainty a tautology
// check without DNF expansion. Both backends stay live behind an option flag
// and are differentially cross-checked (tests/differential_test.cc).
//
// A CondId is meaningful only within the backend that produced it. Both
// backends align their sentinels with the interner's, so kTrueCond/kFalseCond
// mean true/false everywhere, and the conjunctive backend's CondIds for
// conjunctions simply ARE the interner's ConjIds (its fixpoint fast path is
// a passthrough). Ids are append-only for the backend's lifetime; backends
// are as thread-safe as their interner (safe from many threads iff
// `interner().shared()`), with the same deferred-lock zero cost when it is
// not.

#ifndef PW_CONDITION_BACKEND_H_
#define PW_CONDITION_BACKEND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "condition/interner.h"

namespace pw {

/// Id of a backend-represented condition. 0 and 1 are the true/false
/// sentinels in every backend (matching ConjId's sentinels).
using CondId = uint32_t;

/// Which condition representation a fixpoint (or decision procedure) runs
/// on. kDefault resolves through the PW_CONDITION_BACKEND environment
/// variable ("dd" or "antichain"), falling back to kConjunctions — so the CI
/// matrix can drive whole suites onto the DD backend without code changes.
enum class ConditionBackendKind {
  kDefault,
  kConjunctions,      // interned-conjunction antichains (the paper's c-tables)
  kDecisionDiagrams,  // hash-consed ordered decision diagrams over atoms
};

/// Resolves kDefault via PW_CONDITION_BACKEND; other kinds pass through.
ConditionBackendKind ResolveConditionBackendKind(ConditionBackendKind kind);

class ConditionBackend {
 public:
  static constexpr CondId kTrueCond = ConditionInterner::kTrueConj;
  static constexpr CondId kFalseCond = ConditionInterner::kFalseConj;

  explicit ConditionBackend(ConditionInterner& interner)
      : interner_(&interner) {}
  virtual ~ConditionBackend() = default;

  ConditionBackend(const ConditionBackend&) = delete;
  ConditionBackend& operator=(const ConditionBackend&) = delete;

  /// The interner conjunction ids and atoms refer to. Must outlive the
  /// backend; Clear()/RebaseInto() on it invalidate every CondId.
  ConditionInterner& interner() const { return *interner_; }

  virtual const char* name() const = 0;

  /// True when the backend keeps one id per *boolean function* (so a
  /// fixpoint should merge same-tuple derivations with Or instead of
  /// keeping a subsumption antichain, and exported rows may need DNF
  /// expansion via AppendDisjuncts).
  virtual bool disjunctive() const = 0;

  /// The backend id of an interned conjunction. Equal ConjIds map to equal
  /// CondIds; kTrueConj/kFalseConj map to kTrueCond/kFalseCond.
  virtual CondId FromConj(ConjId id) = 0;

  /// Conjunction / disjunction of two backend conditions. Both are
  /// commutative; implementations key their memo/op caches on the canonical
  /// (min, max) id order, so argument order can never split cache entries.
  virtual CondId And(CondId a, CondId b) = 0;
  virtual CondId Or(CondId a, CondId b) = 0;

  /// True iff every valuation (over the infinite domain) satisfying `a`
  /// satisfies `b`. Exact — equality congruence included. Keyed on the
  /// ordered (lhs, rhs) pair where memoized: implication is not symmetric.
  virtual bool Implies(CondId a, CondId b) = 0;

  /// True iff some valuation satisfies the condition. Exact.
  virtual bool Satisfiable(CondId id) = 0;

  /// True iff some valuation satisfies `global` AND the condition — the
  /// fixpoint's per-derivation admission test.
  virtual bool SatisfiableWith(ConjId global, CondId id) = 0;

  /// True iff every valuation satisfying `global` satisfies the condition —
  /// the certainty tautology check (the DD backend answers this without DNF
  /// expansion; the conjunctive backend via an exact backtracking check).
  virtual bool TautologyUnder(ConjId global, CondId id) = 0;

  /// Appends a finite set of satisfiable interned conjunctions whose union
  /// is exactly the condition — the export path back into conjunctive
  /// c-table rows. Deterministic for a given id. May be exponential in the
  /// diagram size (it IS the DNF expansion); use only at result boundaries.
  virtual void AppendDisjuncts(CondId id, std::vector<ConjId>* out) = 0;

 private:
  ConditionInterner* interner_;
};

/// Constructs a backend of the (resolved) kind over `interner`.
std::unique_ptr<ConditionBackend> MakeConditionBackend(
    ConditionBackendKind kind, ConditionInterner& interner);

/// True iff `lhs` implies the disjunction of `disjuncts` over the infinite
/// domain — exact, via a backtracking search for a valuation of lhs that
/// falsifies one atom of every disjunct (the coNP check, exponential only in
/// the number of disjuncts). Shared by the conjunctive backend's tautology
/// path and usable as an independent oracle in tests.
bool ConjImpliesDisjunction(ConditionInterner& interner, ConjId lhs,
                            const std::vector<ConjId>& disjuncts);

}  // namespace pw

#endif  // PW_CONDITION_BACKEND_H_
