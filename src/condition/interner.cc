#include "condition/interner.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

#include "condition/binding_env.h"

namespace pw {

namespace {

/// Process-wide monotone counter behind stamp(): every constructed interner
/// and every generation gets a value no other (instance, generation) has.
uint64_t NextStamp() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// The Global() override installed by SetProcessShared().
std::atomic<ConditionInterner*> process_shared{nullptr};

}  // namespace

void ConditionInterner::InitSentinels() {
  // Reserve the two sentinel ids. kTrueConj is the empty conjunction;
  // kFalseConj materializes as {0 != 0}, the paper's encoding of `false`.
  // Runs single-threaded (construction / Clear), so storage appends and map
  // writes need no locks beyond the mode-aware helpers in InternAtom.
  ConjEntry true_entry;
  conjs_.Append(std::move(true_entry));
  canonical_ids_.ShardFor(IdVecHash{}(std::vector<AtomId>{}))
      .map.emplace(std::vector<AtomId>{}, kTrueConj);

  ConjEntry false_entry;
  false_entry.atoms.push_back(InternAtom(FalseAtom()));
  false_entry.canonical = Conjunction{FalseAtom()};
  conjs_.Append(std::move(false_entry));
}

ConditionInterner::ConditionInterner() : stamp_(NextStamp()) {
  InitSentinels();
}

void ConditionInterner::Clear() {
  atoms_.Clear();
  atom_ids_.ClearAll();
  conjs_.Clear();
  canonical_ids_.ClearAll();
  syntactic_ids_.ClearAll();
  and_cache_.ClearAll();
  implies_cache_.ClearAll();
  InitSentinels();
  ++generation_;
  stamp_ = NextStamp();
}

std::vector<ConjId> ConditionInterner::RebaseInto(
    ConditionInterner& dst) const {
  std::vector<ConjId> map(conjs_.size());
  map[kTrueConj] = kTrueConj;
  map[kFalseConj] = kFalseConj;
  for (ConjId id = kFalseConj + 1; id < conjs_.size(); ++id) {
    map[id] = dst.Intern(conjs_[id].canonical);
  }
  return map;
}

std::vector<AtomId>& ConditionInterner::ScratchKey() {
  if (!shared()) return scratch_key_;
  static thread_local std::vector<AtomId> key;
  return key;
}

BindingEnv& ConditionInterner::ScratchEnv() {
  if (!shared()) return scratch_env_;
  static thread_local BindingEnv env;
  return env;
}

AtomId ConditionInterner::InternAtom(const CondAtom& atom) {
  auto& shard = atom_ids_.ShardFor(CondAtomHash{}(atom));
  {
    auto lock = ReadLock(shard.mutex);
    auto it = shard.map.find(atom);
    if (it != shard.map.end()) return it->second;
  }
  auto lock = WriteLock(shard.mutex);
  auto [it, inserted] = shard.map.emplace(atom, AtomId{0});
  if (inserted) {
    auto storage = StorageLock(atom_storage_mutex_);
    it->second = static_cast<AtomId>(atoms_.Append(atom));
  }
  return it->second;
}

ConjId ConditionInterner::InternCanonical(std::vector<AtomId> ids) {
  auto& shard = canonical_ids_.ShardFor(IdVecHash{}(ids));
  {
    auto lock = ReadLock(shard.mutex);
    auto it = shard.map.find(ids);
    if (it != shard.map.end()) {
      Bump(&Stats::canonical_hits);
      return it->second;
    }
  }
  // Materialize the entry outside the unique lock (atom resolution is
  // lock-free), then publish under it — the re-check via emplace keeps ids
  // unique when two threads canonicalize the same conjunction at once.
  ConjEntry entry;
  for (AtomId a : ids) entry.canonical.Add(atoms_[a]);
  entry.atoms = ids;

  auto lock = WriteLock(shard.mutex);
  auto [it, inserted] = shard.map.emplace(std::move(ids), ConjId{0});
  if (inserted) {
    auto storage = StorageLock(conj_storage_mutex_);
    it->second = static_cast<ConjId>(conjs_.Append(std::move(entry)));
  } else {
    Bump(&Stats::canonical_hits);
  }
  return it->second;
}

ConjId ConditionInterner::Canonicalize(const Conjunction& conjunction) {
  // Fast path: without live equality atoms there is no congruence to close.
  // Over the infinite domain an inequality-only conjunction is satisfiable
  // iff no atom has identical sides, and its canonical form is just the
  // sorted, deduplicated nontrivial atoms.
  bool has_equality = false;
  std::vector<CondAtom> atoms;
  atoms.reserve(conjunction.size());
  for (const CondAtom& a : conjunction.atoms()) {
    if (IsTriviallyFalse(a)) return kFalseConj;
    if (IsTriviallyTrue(a)) continue;
    if (a.is_equality) has_equality = true;
    atoms.push_back(a);
  }
  if (!has_equality) {
    std::sort(atoms.begin(), atoms.end());
    atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
    std::vector<AtomId> ids;
    ids.reserve(atoms.size());
    for (const CondAtom& a : atoms) ids.push_back(InternAtom(a));
    return InternCanonical(std::move(ids));
  }

  // Slow path: run the congruence closure in the (capacity-retaining)
  // scratch environment.
  BindingEnv& env = ScratchEnv();
  env.Revert(0);
  if (!env.Assert(conjunction)) return kFalseConj;

  // Map every variable to its class representative: the class constant if
  // bound, else the least variable of the class (vars is sorted, so the
  // first same-class hit is the least).
  std::vector<VarId> vars;
  for (const CondAtom& a : atoms) {
    if (a.lhs.is_variable()) vars.push_back(a.lhs.variable());
    if (a.rhs.is_variable()) vars.push_back(a.rhs.variable());
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  std::vector<Term> reps;
  reps.reserve(vars.size());
  for (VarId v : vars) {
    if (auto c = env.ValueOf(Term::Var(v))) {
      reps.push_back(Term::Const(*c));
      continue;
    }
    for (VarId w : vars) {
      if (env.SameClass(Term::Var(v), Term::Var(w))) {
        reps.push_back(Term::Var(w));
        break;
      }
    }
  }
  auto rewrite = [&vars, &reps](Term t) {
    if (t.is_variable()) {
      auto it = std::lower_bound(vars.begin(), vars.end(), t.variable());
      if (it != vars.end() && *it == t.variable()) {
        return reps[it - vars.begin()];
      }
    }
    return t;
  };

  // Canonical equalities: one `member = representative` atom per non-trivial
  // class membership. Canonical inequalities: original atoms rewritten
  // through the representatives (trivially true ones drop; trivially false
  // ones cannot survive a successful closure).
  std::vector<CondAtom> canonical;
  canonical.reserve(atoms.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    if (reps[i] != Term::Var(vars[i])) {
      canonical.push_back(Eq(Term::Var(vars[i]), reps[i]));
    }
  }
  for (const CondAtom& a : atoms) {
    if (a.is_equality) continue;
    CondAtom rewritten = Neq(rewrite(a.lhs), rewrite(a.rhs));
    if (!IsTriviallyTrue(rewritten)) canonical.push_back(rewritten);
  }
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());

  std::vector<AtomId> ids;
  ids.reserve(canonical.size());
  for (const CondAtom& a : canonical) ids.push_back(InternAtom(a));
  return InternCanonical(std::move(ids));
}

ConjId ConditionInterner::Intern(const Conjunction& conjunction) {
  Bump(&Stats::intern_calls);
  if (conjunction.size() == 0) return kTrueConj;

  // The syntactic key is built in a reused scratch buffer so cache hits (the
  // hot case) do no allocation; only a miss copies the key into the map.
  std::vector<AtomId>& key = ScratchKey();
  key.clear();
  key.reserve(conjunction.size());
  for (const CondAtom& a : conjunction.atoms()) {
    key.push_back(InternAtom(a));
  }
  auto& shard = syntactic_ids_.ShardFor(IdVecHash{}(key));
  {
    auto lock = ReadLock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      Bump(&Stats::syntactic_hits);
      return it->second;
    }
  }
  // Canonicalize without holding the shard lock (the closure interns atoms
  // and the canonical form, which take their own locks); a concurrent
  // interner of the same key computes the same id, so the emplace re-check
  // keeps the map consistent.
  ConjId id = Canonicalize(conjunction);
  auto lock = WriteLock(shard.mutex);
  shard.map.emplace(key, id);
  return id;
}

ConjId ConditionInterner::And(ConjId a, ConjId b) {
  if (a == kFalseConj || b == kFalseConj) return kFalseConj;
  if (a == kTrueConj) return b;
  if (b == kTrueConj) return a;
  if (a == b) return a;

  Bump(&Stats::and_calls);
  std::pair<ConjId, ConjId> key{std::min(a, b), std::max(a, b)};
  auto& shard = and_cache_.ShardFor(PairHash{}(key));
  {
    auto lock = ReadLock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      Bump(&Stats::and_hits);
      return it->second;
    }
  }
  // Conjoining two canonical conjunctions can force fresh congruence merges
  // (e.g. {x = y} AND {y = 3}), so run the full closure on the union.
  Conjunction merged = conjs_[a].canonical;
  merged.AddAll(conjs_[b].canonical);
  ConjId out = Canonicalize(merged);
  auto lock = WriteLock(shard.mutex);
  MemoEmplace(shard, key, out);
  return out;
}

bool ConditionInterner::Implies(ConjId a, ConjId b) {
  if (a == kFalseConj || b == kTrueConj || a == b) return true;
  if (a == kTrueConj || b == kFalseConj) return false;

  Bump(&Stats::implies_calls);
  // Subset fast path: canonical atom-id vectors are sorted by atom value
  // (InternAtom preserves discovery order, but both vectors were built from
  // value-sorted atoms, so a merge walk over atom values works). A superset
  // of atoms is a stronger condition.
  const std::vector<AtomId>& need = conjs_[b].atoms;
  const std::vector<AtomId>& have = conjs_[a].atoms;
  if (need.size() <= have.size()) {
    size_t i = 0;
    for (AtomId id : have) {
      if (i < need.size() && need[i] == id) ++i;
    }
    if (i == need.size()) {
      Bump(&Stats::implies_hits);
      return true;
    }
  }

  std::pair<ConjId, ConjId> key{a, b};
  auto& shard = implies_cache_.ShardFor(PairHash{}(key));
  {
    auto lock = ReadLock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      Bump(&Stats::implies_hits);
      return it->second;
    }
  }
  // Full congruence check: a implies b iff a AND NOT atom is unsatisfiable
  // for every atom of b.
  bool out = true;
  BindingEnv& env = ScratchEnv();
  env.Revert(0);
  if (env.Assert(conjs_[a].canonical)) {
    for (const CondAtom& atom : conjs_[b].canonical.atoms()) {
      size_t mark = env.Mark();
      bool negation_consistent = env.AssertAtom(Negate(atom));
      env.Revert(mark);
      if (negation_consistent) {
        out = false;
        break;
      }
    }
  }
  auto lock = WriteLock(shard.mutex);
  MemoEmplace(shard, key, out);
  return out;
}

void ConditionInterner::SetProcessShared(ConditionInterner* interner) {
  assert(interner == nullptr || interner->shared());
  process_shared.store(interner, std::memory_order_release);
}

ConditionInterner* ConditionInterner::ProcessShared() {
  return process_shared.load(std::memory_order_acquire);
}

ConditionInterner& ConditionInterner::Global() {
  ConditionInterner* shared = process_shared.load(std::memory_order_acquire);
  if (shared != nullptr) return *shared;
  static thread_local ConditionInterner interner;
  return interner;
}

}  // namespace pw
