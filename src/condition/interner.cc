#include "condition/interner.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "condition/binding_env.h"

namespace pw {

namespace {

/// Process-wide monotone counter behind stamp(): every constructed interner
/// and every generation gets a value no other (instance, generation) has.
uint64_t NextStamp() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

void ConditionInterner::InitSentinels() {
  // Reserve the two sentinel ids. kTrueConj is the empty conjunction;
  // kFalseConj materializes as {0 != 0}, the paper's encoding of `false`.
  ConjEntry true_entry;
  conjs_.push_back(std::move(true_entry));
  canonical_ids_.emplace(std::vector<AtomId>{}, kTrueConj);

  ConjEntry false_entry;
  false_entry.atoms.push_back(InternAtom(FalseAtom()));
  false_entry.canonical = Conjunction{FalseAtom()};
  conjs_.push_back(std::move(false_entry));
}

ConditionInterner::ConditionInterner() : stamp_(NextStamp()) {
  InitSentinels();
}

void ConditionInterner::Clear() {
  atoms_.clear();
  atom_ids_.clear();
  conjs_.clear();
  canonical_ids_.clear();
  syntactic_ids_.clear();
  and_cache_.clear();
  implies_cache_.clear();
  InitSentinels();
  ++generation_;
  stamp_ = NextStamp();
}

std::vector<ConjId> ConditionInterner::RebaseInto(
    ConditionInterner& dst) const {
  std::vector<ConjId> map(conjs_.size());
  map[kTrueConj] = kTrueConj;
  map[kFalseConj] = kFalseConj;
  for (ConjId id = kFalseConj + 1; id < conjs_.size(); ++id) {
    map[id] = dst.Intern(conjs_[id].canonical);
  }
  return map;
}

AtomId ConditionInterner::InternAtom(const CondAtom& atom) {
  auto [it, inserted] =
      atom_ids_.emplace(atom, static_cast<AtomId>(atoms_.size()));
  if (inserted) atoms_.push_back(atom);
  return it->second;
}

ConjId ConditionInterner::InternCanonical(std::vector<AtomId> ids) {
  auto it = canonical_ids_.find(ids);
  if (it != canonical_ids_.end()) {
    ++stats_.canonical_hits;
    return it->second;
  }
  ConjId id = static_cast<ConjId>(conjs_.size());
  ConjEntry entry;
  Conjunction canonical;
  for (AtomId a : ids) canonical.Add(atoms_[a]);
  entry.canonical = std::move(canonical);
  entry.atoms = ids;
  conjs_.push_back(std::move(entry));
  canonical_ids_.emplace(std::move(ids), id);
  return id;
}

ConjId ConditionInterner::Canonicalize(const Conjunction& conjunction) {
  // Fast path: without live equality atoms there is no congruence to close.
  // Over the infinite domain an inequality-only conjunction is satisfiable
  // iff no atom has identical sides, and its canonical form is just the
  // sorted, deduplicated nontrivial atoms.
  bool has_equality = false;
  std::vector<CondAtom> atoms;
  atoms.reserve(conjunction.size());
  for (const CondAtom& a : conjunction.atoms()) {
    if (IsTriviallyFalse(a)) return kFalseConj;
    if (IsTriviallyTrue(a)) continue;
    if (a.is_equality) has_equality = true;
    atoms.push_back(a);
  }
  if (!has_equality) {
    std::sort(atoms.begin(), atoms.end());
    atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
    std::vector<AtomId> ids;
    ids.reserve(atoms.size());
    for (const CondAtom& a : atoms) ids.push_back(InternAtom(a));
    return InternCanonical(std::move(ids));
  }

  // Slow path: run the congruence closure in the (capacity-retaining)
  // scratch environment.
  scratch_env_.Revert(0);
  if (!scratch_env_.Assert(conjunction)) return kFalseConj;

  // Map every variable to its class representative: the class constant if
  // bound, else the least variable of the class (vars is sorted, so the
  // first same-class hit is the least).
  std::vector<VarId> vars;
  for (const CondAtom& a : atoms) {
    if (a.lhs.is_variable()) vars.push_back(a.lhs.variable());
    if (a.rhs.is_variable()) vars.push_back(a.rhs.variable());
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  std::vector<Term> reps;
  reps.reserve(vars.size());
  for (VarId v : vars) {
    if (auto c = scratch_env_.ValueOf(Term::Var(v))) {
      reps.push_back(Term::Const(*c));
      continue;
    }
    for (VarId w : vars) {
      if (scratch_env_.SameClass(Term::Var(v), Term::Var(w))) {
        reps.push_back(Term::Var(w));
        break;
      }
    }
  }
  auto rewrite = [&vars, &reps](Term t) {
    if (t.is_variable()) {
      auto it = std::lower_bound(vars.begin(), vars.end(), t.variable());
      if (it != vars.end() && *it == t.variable()) {
        return reps[it - vars.begin()];
      }
    }
    return t;
  };

  // Canonical equalities: one `member = representative` atom per non-trivial
  // class membership. Canonical inequalities: original atoms rewritten
  // through the representatives (trivially true ones drop; trivially false
  // ones cannot survive a successful closure).
  std::vector<CondAtom> canonical;
  canonical.reserve(atoms.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    if (reps[i] != Term::Var(vars[i])) {
      canonical.push_back(Eq(Term::Var(vars[i]), reps[i]));
    }
  }
  for (const CondAtom& a : atoms) {
    if (a.is_equality) continue;
    CondAtom rewritten = Neq(rewrite(a.lhs), rewrite(a.rhs));
    if (!IsTriviallyTrue(rewritten)) canonical.push_back(rewritten);
  }
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());

  std::vector<AtomId> ids;
  ids.reserve(canonical.size());
  for (const CondAtom& a : canonical) ids.push_back(InternAtom(a));
  return InternCanonical(std::move(ids));
}

ConjId ConditionInterner::Intern(const Conjunction& conjunction) {
  ++stats_.intern_calls;
  if (conjunction.size() == 0) return kTrueConj;

  // The syntactic key is built in a reused scratch buffer so cache hits (the
  // hot case) do no allocation; only a miss copies the key into the map.
  scratch_key_.clear();
  scratch_key_.reserve(conjunction.size());
  for (const CondAtom& a : conjunction.atoms()) {
    scratch_key_.push_back(InternAtom(a));
  }
  auto it = syntactic_ids_.find(scratch_key_);
  if (it != syntactic_ids_.end()) {
    ++stats_.syntactic_hits;
    return it->second;
  }
  ConjId id = Canonicalize(conjunction);
  syntactic_ids_.emplace(scratch_key_, id);
  return id;
}

ConjId ConditionInterner::And(ConjId a, ConjId b) {
  if (a == kFalseConj || b == kFalseConj) return kFalseConj;
  if (a == kTrueConj) return b;
  if (b == kTrueConj) return a;
  if (a == b) return a;

  ++stats_.and_calls;
  std::pair<ConjId, ConjId> key{std::min(a, b), std::max(a, b)};
  auto it = and_cache_.find(key);
  if (it != and_cache_.end()) {
    ++stats_.and_hits;
    return it->second;
  }
  // Conjoining two canonical conjunctions can force fresh congruence merges
  // (e.g. {x = y} AND {y = 3}), so run the full closure on the union.
  Conjunction merged = conjs_[a].canonical;
  merged.AddAll(conjs_[b].canonical);
  ConjId out = Canonicalize(merged);
  and_cache_.emplace(key, out);
  return out;
}

bool ConditionInterner::Implies(ConjId a, ConjId b) {
  if (a == kFalseConj || b == kTrueConj || a == b) return true;
  if (a == kTrueConj || b == kFalseConj) return false;

  ++stats_.implies_calls;
  // Subset fast path: canonical atom-id vectors are sorted by atom value
  // (InternAtom preserves discovery order, but both vectors were built from
  // value-sorted atoms, so a merge walk over atom values works). A superset
  // of atoms is a stronger condition.
  const std::vector<AtomId>& need = conjs_[b].atoms;
  const std::vector<AtomId>& have = conjs_[a].atoms;
  if (need.size() <= have.size()) {
    size_t i = 0;
    for (AtomId id : have) {
      if (i < need.size() && need[i] == id) ++i;
    }
    if (i == need.size()) {
      ++stats_.implies_hits;
      return true;
    }
  }

  std::pair<ConjId, ConjId> key{a, b};
  auto it = implies_cache_.find(key);
  if (it != implies_cache_.end()) {
    ++stats_.implies_hits;
    return it->second;
  }
  // Full congruence check: a implies b iff a AND NOT atom is unsatisfiable
  // for every atom of b.
  bool out = true;
  scratch_env_.Revert(0);
  if (scratch_env_.Assert(conjs_[a].canonical)) {
    for (const CondAtom& atom : conjs_[b].canonical.atoms()) {
      size_t mark = scratch_env_.Mark();
      bool negation_consistent = scratch_env_.AssertAtom(Negate(atom));
      scratch_env_.Revert(mark);
      if (negation_consistent) {
        out = false;
        break;
      }
    }
  }
  implies_cache_.emplace(key, out);
  return out;
}

ConditionInterner& ConditionInterner::Global() {
  static thread_local ConditionInterner interner;
  return interner;
}

}  // namespace pw
