#include "condition/backend.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "condition/binding_env.h"
#include "condition/dd_backend.h"

namespace pw {

namespace {

/// Backtracking step of ConjImpliesDisjunction: find one falsifiable atom
/// per remaining disjunct, consistently with everything asserted so far.
bool CnfSearch(BindingEnv& env, const std::vector<const Conjunction*>& negs,
               size_t i) {
  if (i == negs.size()) return true;
  for (const CondAtom& atom : negs[i]->atoms()) {
    CondAtom negated = Negate(atom);
    if (IsTriviallyFalse(negated)) continue;
    size_t mark = env.Mark();
    if (env.AssertAtom(negated) && CnfSearch(env, negs, i + 1)) return true;
    env.Revert(mark);
  }
  return false;
}

}  // namespace

bool ConjImpliesDisjunction(ConditionInterner& interner, ConjId lhs,
                            const std::vector<ConjId>& disjuncts) {
  if (lhs == ConditionInterner::kFalseConj) return true;
  std::vector<const Conjunction*> negs;
  negs.reserve(disjuncts.size());
  for (ConjId d : disjuncts) {
    if (d == ConditionInterner::kFalseConj) continue;
    if (d == ConditionInterner::kTrueConj) return true;
    // Memoized pairwise fast path: implying any single disjunct suffices.
    if (interner.Implies(lhs, d)) return true;
    negs.push_back(&interner.Resolve(d));
  }
  if (negs.empty()) return false;  // lhs satisfiable, empty disjunction
  // lhs /\ NOT d1 /\ ... /\ NOT dk is a conjunction of literals plus a CNF
  // with one clause per disjunct (the negated atoms). Over the infinite
  // domain it is satisfiable iff some choice of one negated atom per clause
  // is congruence-consistent with lhs — which the backtracking search
  // decides exactly. No such valuation means the implication holds.
  BindingEnv env;
  if (!env.Assert(interner.Resolve(lhs))) return true;
  return !CnfSearch(env, negs, 0);
}

namespace {

/// The paper-faithful backend: a condition is an interned conjunction, or —
/// only where a caller asks for Or, i.e. never on the fixpoint's antichain
/// fast path — a hash-consed set of interned conjunctions kept as a covering
/// antichain (an explicit DNF). Conjunction CondIds are exactly the
/// interner's ConjIds, so FromConj/And/Implies/SatisfiableWith are
/// passthroughs with the interner's memoization and stats.
class ConjunctiveBackend final : public ConditionBackend {
 public:
  /// Disjunction-set ids carry this bit; the low bits index disj_sets_.
  static constexpr CondId kDisjBit = CondId{1} << 31;

  explicit ConjunctiveBackend(ConditionInterner& interner)
      : ConditionBackend(interner) {}

  const char* name() const override { return "antichain"; }
  bool disjunctive() const override { return false; }

  CondId FromConj(ConjId id) override { return id; }

  CondId And(CondId a, CondId b) override {
    if (!IsDisj(a) && !IsDisj(b)) return interner().And(a, b);
    // Distribute over the (small, export-side) disjunction sets.
    std::vector<ConjId> left = MembersOf(a);
    std::vector<ConjId> right = MembersOf(b);
    std::vector<ConjId> out;
    out.reserve(left.size() * right.size());
    for (ConjId x : left) {
      for (ConjId y : right) out.push_back(interner().And(x, y));
    }
    return MakeDisjunction(std::move(out));
  }

  CondId Or(CondId a, CondId b) override {
    if (a == b) return a;
    std::vector<ConjId> out = MembersOf(a);
    std::vector<ConjId> right = MembersOf(b);
    out.insert(out.end(), right.begin(), right.end());
    return MakeDisjunction(std::move(out));
  }

  bool Implies(CondId a, CondId b) override {
    if (a == b || a == kFalseCond || b == kTrueCond) return true;
    if (!IsDisj(a) && !IsDisj(b)) return interner().Implies(a, b);
    std::vector<ConjId> need = MembersOf(b);
    for (ConjId m : MembersOf(a)) {
      if (!ConjImpliesDisjunction(interner(), m, need)) return false;
    }
    return true;
  }

  bool Satisfiable(CondId id) override {
    // Normalized disjunction sets are non-empty with satisfiable members.
    return IsDisj(id) || id != kFalseCond;
  }

  bool SatisfiableWith(ConjId global, CondId id) override {
    if (!IsDisj(id)) {
      return interner().Satisfiable(interner().And(global, id));
    }
    for (ConjId m : MembersOf(id)) {
      if (interner().Satisfiable(interner().And(global, m))) return true;
    }
    return false;
  }

  bool TautologyUnder(ConjId global, CondId id) override {
    if (!IsDisj(id)) return interner().Implies(global, id);
    return ConjImpliesDisjunction(interner(), global, MembersOf(id));
  }

  void AppendDisjuncts(CondId id, std::vector<ConjId>* out) override {
    if (!IsDisj(id)) {
      if (id != kFalseCond) out->push_back(id);
      return;
    }
    std::vector<ConjId> members = MembersOf(id);
    out->insert(out->end(), members.begin(), members.end());
  }

 private:
  static bool IsDisj(CondId id) { return (id & kDisjBit) != 0; }

  std::unique_lock<std::mutex> SetLock() const {
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (interner().shared()) lock.lock();
    return lock;
  }

  std::vector<ConjId> MembersOf(CondId id) const {
    if (!IsDisj(id)) {
      if (id == kFalseCond) return {};
      return {id};
    }
    auto lock = SetLock();
    return disj_sets_[id & ~kDisjBit];
  }

  /// Normalizes a member list into the canonical covering antichain and
  /// hash-conses it: false members drop, a true member collapses the set,
  /// members implying another member are absorbed (ties to equivalent
  /// members broken toward the smaller id, so the set is order-independent),
  /// the result is sorted and deduplicated. Empty -> false; singleton -> the
  /// member's own ConjId.
  CondId MakeDisjunction(std::vector<ConjId> members) {
    std::vector<ConjId> kept;
    kept.reserve(members.size());
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    for (ConjId m : members) {
      if (m == ConditionInterner::kFalseConj) continue;
      if (m == ConditionInterner::kTrueConj) return kTrueCond;
      bool absorbed = false;
      for (ConjId other : members) {
        if (other == m || other == ConditionInterner::kFalseConj) continue;
        if (!interner().Implies(m, other)) continue;
        // m -> other: m is redundant, unless they are equivalent and m is
        // the designated (smaller-id) representative.
        if (interner().Implies(other, m) && m < other) continue;
        absorbed = true;
        break;
      }
      if (!absorbed) kept.push_back(m);
    }
    if (kept.empty()) return kFalseCond;
    if (kept.size() == 1) return kept[0];
    auto lock = SetLock();
    auto [it, inserted] =
        disj_ids_.try_emplace(kept, static_cast<CondId>(disj_sets_.size()));
    if (inserted) disj_sets_.push_back(kept);
    return kDisjBit | it->second;
  }

  struct VecHash {
    size_t operator()(const std::vector<ConjId>& v) const noexcept {
      uint64_t h = 1469598103934665603ull;
      for (ConjId id : v) {
        h ^= id;
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  mutable std::mutex mutex_;  // locked only when the interner is shared
  std::deque<std::vector<ConjId>> disj_sets_;
  std::unordered_map<std::vector<ConjId>, CondId, VecHash> disj_ids_;
};

}  // namespace

ConditionBackendKind ResolveConditionBackendKind(ConditionBackendKind kind) {
  if (kind != ConditionBackendKind::kDefault) return kind;
  if (const char* env = std::getenv("PW_CONDITION_BACKEND")) {
    std::string_view v(env);
    if (v == "dd" || v == "DD") {
      return ConditionBackendKind::kDecisionDiagrams;
    }
  }
  return ConditionBackendKind::kConjunctions;
}

std::unique_ptr<ConditionBackend> MakeConditionBackend(
    ConditionBackendKind kind, ConditionInterner& interner) {
  switch (ResolveConditionBackendKind(kind)) {
    case ConditionBackendKind::kDecisionDiagrams:
      return std::make_unique<DDBackend>(interner);
    case ConditionBackendKind::kConjunctions:
    case ConditionBackendKind::kDefault:
      break;
  }
  return std::make_unique<ConjunctiveBackend>(interner);
}

}  // namespace pw
