// The forall-exists-3CNF reductions of Theorem 4.2: the Pi-2-p-hardness of
// the containment problem, reached already at remarkably low expressiveness
// (a Codd-table contained in an i-table, Thm 4.2(1)).

#ifndef PW_REDUCTIONS_FORALL_EXISTS_H_
#define PW_REDUCTIONS_FORALL_EXISTS_H_

#include "reductions/tautology.h"
#include "solvers/cnf.h"

namespace pw {

/// Theorem 4.2(1): arity-4 tables. lhs: a Codd-table T0 (one variable z_i
/// per universal variable); rhs: an i-table (T, phi_T) whose inequalities
/// encode literal consistency. The forall-exists instance is true iff
/// rep(T0) subseteq rep(T, phi_T).
ContainmentInstance ForallExistsToTableInITable(const ForallExistsCnf& qbf);

/// Theorem 4.2(2): lhs tables (R0 = {(i, v_i)}, S0 = {1..p}); rhs tables
/// (R = {(i, u_i)}, S = clause/mark/var/polarity rows) with a positive
/// existential query q = (q1, q2). True iff rep(T0) subseteq q(rep(T)).
ContainmentInstance ForallExistsToTableInViewOfTables(
    const ForallExistsCnf& qbf);

/// Theorem 4.2(5): lhs tables (R0 = clause boolean grid, S0 = {(i,y_i,z_i)})
/// with positive existential q0 = (q01, q02); rhs e-tables (R, S). True iff
/// q0(rep(T0)) subseteq rep(T).
ContainmentInstance ForallExistsToViewOfTablesInETables(
    const ForallExistsCnf& qbf);

/// Theorem 4.2(3): c-table lhs versus e-table rhs with identity queries on
/// both sides — obtained from the 4.2(5) instance by materializing q0's
/// image as a c-table via the Imielinski–Lipski algebra (the paper's own
/// argument).
ContainmentInstance ForallExistsToCTableInETables(const ForallExistsCnf& qbf);

}  // namespace pw

#endif  // PW_REDUCTIONS_FORALL_EXISTS_H_
