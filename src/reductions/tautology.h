// The 3DNF-tautology reductions: Theorem 3.2(3) (uniqueness on a c-table),
// Theorem 4.2(4) (containment of a view of tables in a table) and Theorems
// 5.2(2)/5.3(2) (possibility/certainty of a first order query on a table).

#ifndef PW_REDUCTIONS_TAUTOLOGY_H_
#define PW_REDUCTIONS_TAUTOLOGY_H_

#include "core/instance.h"
#include "decision/view.h"
#include "reductions/colorability.h"
#include "solvers/cnf.h"
#include "tables/ctable.h"

namespace pw {

/// Theorem 3.2(3): c-table T0 with unary rows t(i) = (1) whose local
/// condition encodes clause i (u_j = 1 for literal x_j, u_j != 1 for
/// literal -x_j), I = {(1)}. H is a tautology iff rep(T0) == {I}.
UniquenessInstance TautologyToCTableUniqueness(const ClausalFormula& dnf);

/// A generated CONT instance: is lhs_view(rep(lhs)) contained in
/// rhs_view(rep(rhs))?
struct ContainmentInstance {
  CDatabase lhs;
  View lhs_view = View::Identity();
  CDatabase rhs;
  View rhs_view = View::Identity();
};

/// Theorem 4.2(4): tables T0 = (R0 over clause/variable/polarity triples,
/// S0 = {(j, u_j)}), positive existential query q0, and unary table
/// T = {z_1 ... z_p}: H is a tautology iff q0(rep(T0)) subseteq rep(T).
ContainmentInstance TautologyToViewInTableContainment(
    const ClausalFormula& dnf);

/// A generated POSS/CERT instance over located facts.
struct FactQueryInstance {
  CDatabase database;
  View view = View::Identity();
  std::vector<LocatedFact> pattern;
};

/// Theorems 5.2(2) and 5.3(2): table T over rows (clause, z_{clause,pos},
/// var, polarity) and the first order query q' = { (1) | psi } where psi
/// says "sigma(T) does not encode a truth assignment, or that assignment
/// satisfies H". Then:
///   - H is a tautology       iff  (1) is CERTAIN in q'(rep(T));
///   - H is NOT a tautology   iff  (1) is POSSIBLE in (NOT psi)-query, i.e.
///     the companion query NonTautologyWitnessQuery().
struct TautologyFoInstance {
  CDatabase database;
  View certain_view;   // q'  (for CERT: tautology iff certain)
  View possible_view;  // q with NOT psi (for POSS: non-tautology iff possible)
  std::vector<LocatedFact> pattern;  // { (1) in output relation 0 }
};

TautologyFoInstance TautologyToFirstOrderCertainty(const ClausalFormula& dnf);

}  // namespace pw

#endif  // PW_REDUCTIONS_TAUTOLOGY_H_
