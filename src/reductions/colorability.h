// The graph 3-colorability reductions of Theorem 3.1(2,3,4) and the
// non-3-colorability reduction of Theorem 3.2(4).
//
// Each generator maps a graph G to an instance of a decision problem such
// that the problem answers "yes" iff G is (resp. is not) 3-colorable. These
// are simultaneously the NP/coNP-hardness proofs and our hard-instance
// workload generators; tests cross-validate every generated instance against
// the brute-force coloring solver.

#ifndef PW_REDUCTIONS_COLORABILITY_H_
#define PW_REDUCTIONS_COLORABILITY_H_

#include "core/instance.h"
#include "decision/view.h"
#include "solvers/graph.h"
#include "tables/ctable.h"

namespace pw {

/// A generated MEMB instance: is `instance` in view(rep(database))?
struct MembershipInstance {
  CDatabase database;
  Instance instance;
  View view = View::Identity();
};

/// A generated UNIQ instance: is view(rep(database)) == {instance}?
struct UniquenessInstance {
  CDatabase database;
  Instance instance;
  View view = View::Identity();
};

/// Theorem 3.1(2): e-table T = {ij : i != j in {1,2,3}} union {x_a x_b per
/// edge}, I0 = {ij : i != j}. G is 3-colorable iff I0 in rep(T).
MembershipInstance ColorabilityToETableMembership(const Graph& graph);

/// Theorem 3.1(3): i-table T = {1,2,3} union {x_a per node} with global
/// condition {x_a != x_b per edge}, I0 = {1,2,3}. G is 3-colorable iff
/// I0 in rep(T, phi).
MembershipInstance ColorabilityToITableMembership(const Graph& graph);

/// Theorem 3.1(4): tables T(R) (arity 5) and T(S) (arity 2), a positive
/// existential query q = (q1, q2), and I0 = (R0, S0) such that G is
/// 3-colorable iff I0 in q(rep(T)).
MembershipInstance ColorabilityToViewMembership(const Graph& graph);

/// Theorem 3.2(4): table T0 = {1ab per edge} union {0 a x_a per node} and a
/// positive existential query with != q0 of arity 1, such that G is NOT
/// 3-colorable iff {(1)} is the unique instance of rep(q0(T0)).
UniquenessInstance NonColorabilityToViewUniqueness(const Graph& graph);

}  // namespace pw

#endif  // PW_REDUCTIONS_COLORABILITY_H_
