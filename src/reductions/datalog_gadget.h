// The DATALOG possibility gadget of Theorem 5.2(3): NP-hardness of
// POSS(1, q) for a fixed DATALOG query q applied to Codd-tables.

#ifndef PW_REDUCTIONS_DATALOG_GADGET_H_
#define PW_REDUCTIONS_DATALOG_GADGET_H_

#include "core/instance.h"
#include "decision/view.h"
#include "solvers/cnf.h"
#include "tables/ctable.h"

namespace pw {

/// The generated POSS(1, q) instance: database (R0, R1, R2), DATALOG view q
/// (the least fixpoint of q1(R) = {x | R(x) v exists yz [R(y) ^ R(z) ^
/// R1(y,x) ^ R2(z,x)]} containing R0), and the one-fact pattern {(1)}.
/// H is satisfiable iff (1) is a possible answer.
struct DatalogPossibilityInstance {
  CDatabase database;
  View view;
  std::vector<LocatedFact> pattern;

  // Constant ids chosen for the gadget nodes (documented for tests):
  ConstId goal;                 // the paper's constant "1"
  ConstId a;                    // the start node "a"
  std::vector<ConstId> t_node;  // t_i per propositional variable
  std::vector<ConstId> f_node;  // f_i
  std::vector<ConstId> a_node;  // a_i
  std::vector<ConstId> b_node;  // b_i
  std::vector<ConstId> h_node;  // h_j per clause
};

DatalogPossibilityInstance SatToDatalogPossibility(const ClausalFormula& cnf);

}  // namespace pw

#endif  // PW_REDUCTIONS_DATALOG_GADGET_H_
