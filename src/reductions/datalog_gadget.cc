#include "reductions/datalog_gadget.h"

namespace pw {

DatalogPossibilityInstance SatToDatalogPossibility(const ClausalFormula& cnf) {
  int n = cnf.num_vars;
  int m = static_cast<int>(cnf.clauses.size());

  DatalogPossibilityInstance out;
  out.goal = 1;
  out.a = 2;
  for (int i = 0; i < n; ++i) {
    out.t_node.push_back(10 + 4 * i);
    out.f_node.push_back(10 + 4 * i + 1);
    out.a_node.push_back(10 + 4 * i + 2);
    out.b_node.push_back(10 + 4 * i + 3);
  }
  for (int j = 0; j < m; ++j) out.h_node.push_back(10 + 4 * n + j);

  auto c = [](ConstId id) { return Term::Const(id); };
  // Propositional variable x_i's table variable has VarId i.
  auto x = [](int i) { return Term::Var(i); };

  CTable r0(1);
  r0.AddRow(Tuple{c(out.a)});

  CTable r1(2);
  CTable r2(2);
  for (int i = 0; i < n; ++i) {
    r1.AddRow(Tuple{c(out.a), c(out.t_node[i])});
    r1.AddRow(Tuple{c(out.a), c(out.f_node[i])});
    r1.AddRow(Tuple{c(out.a), c(out.a_node[i])});
    r2.AddRow(Tuple{c(out.t_node[i]), c(out.a_node[i])});
    r2.AddRow(Tuple{c(out.f_node[i]), c(out.a_node[i])});
    r2.AddRow(Tuple{c(out.a_node[i]), c(out.b_node[i])});
  }
  r1.AddRow(Tuple{c(out.a), c(out.b_node[0])});
  for (int i = 0; i + 1 < n; ++i) {
    r1.AddRow(Tuple{c(out.b_node[i]), c(out.b_node[i + 1])});
  }
  r1.AddRow(Tuple{c(out.b_node[n - 1]), c(out.goal)});
  for (int j = 0; j < m; ++j) {
    for (const Literal& lit : cnf.clauses[j]) {
      Term from = lit.negated ? c(out.f_node[lit.var]) : c(out.t_node[lit.var]);
      r1.AddRow(Tuple{from, c(out.h_node[j])});
    }
  }
  r2.AddRow(Tuple{c(out.a), x(0)});
  for (int i = 0; i + 1 < n; ++i) {
    r2.AddRow(Tuple{c(out.a_node[i]), x(i + 1)});
  }
  r2.AddRow(Tuple{c(out.a), c(out.h_node[0])});
  for (int j = 0; j + 1 < m; ++j) {
    r2.AddRow(Tuple{c(out.h_node[j]), c(out.h_node[j + 1])});
  }
  r2.AddRow(Tuple{c(out.h_node[m - 1]), c(out.goal)});

  // DATALOG program: predicates 0 = R0, 1 = R1, 2 = R2 (EDB), 3 = Q (IDB):
  //   Q(x) :- R0(x).
  //   Q(x) :- Q(y), Q(z), R1(y, x), R2(z, x).
  DatalogProgram program({1, 2, 2, 1}, /*num_edb=*/3);
  {
    DatalogRule seed;
    seed.head = {3, Tuple{Term::Var(0)}};
    seed.body = {{0, Tuple{Term::Var(0)}}};
    program.AddRule(std::move(seed));
    DatalogRule step;
    step.head = {3, Tuple{Term::Var(0)}};
    step.body = {{3, Tuple{Term::Var(1)}},
                 {3, Tuple{Term::Var(2)}},
                 {1, Tuple{Term::Var(1), Term::Var(0)}},
                 {2, Tuple{Term::Var(2), Term::Var(0)}}};
    program.AddRule(std::move(step));
  }

  CDatabase db;
  db.AddTable(std::move(r0));
  db.AddTable(std::move(r1));
  db.AddTable(std::move(r2));
  out.database = std::move(db);
  out.view = View::Datalog(std::move(program), {3});
  out.pattern = {LocatedFact{0, Fact{out.goal}}};
  return out;
}

}  // namespace pw
