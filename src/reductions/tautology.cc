#include "reductions/tautology.h"

namespace pw {

UniquenessInstance TautologyToCTableUniqueness(const ClausalFormula& dnf) {
  // Variable u_j of the condition language encodes propositional variable
  // x_j: u_j = 1 means true, u_j != 1 means false (VarId == j).
  CTable t0(1);
  for (const Clause& clause : dnf.clauses) {
    Conjunction local;
    for (const Literal& lit : clause) {
      Term u = Term::Var(lit.var);
      local.Add(lit.negated ? Neq(u, Term::Const(1)) : Eq(u, Term::Const(1)));
    }
    t0.AddRow(Tuple{Term::Const(1)}, std::move(local));
  }

  Relation one(1);
  one.Insert(Fact{1});

  UniquenessInstance out;
  out.database = CDatabase(std::move(t0));
  out.instance = Instance({std::move(one)});
  return out;
}

ContainmentInstance TautologyToViewInTableContainment(
    const ClausalFormula& dnf) {
  int p = static_cast<int>(dnf.clauses.size());
  int m = dnf.num_vars;

  // lhs: R0 = clause/variable/polarity triples (1-based ids), S0 = (j, u_j).
  CTable r0(3);
  for (int i = 0; i < p; ++i) {
    for (const Literal& lit : dnf.clauses[i]) {
      r0.AddRow(Tuple{Term::Const(i + 1), Term::Const(lit.var + 1),
                      Term::Const(lit.negated ? 0 : 1)});
    }
  }
  CTable s0(2);
  for (int j = 0; j < m; ++j) {
    s0.AddRow(Tuple{Term::Const(j + 1), Term::Var(j)});
  }

  // q0 = {x | exists yz (R0(xyz) ^ S0(yz))} union {(0)}.
  RaExpr r0e = RaExpr::Rel(0, 3);
  RaExpr s0e = RaExpr::Rel(1, 2);
  Relation zero(1);
  zero.Insert(Fact{0});
  RaExpr q0 = RaExpr::Union(
      RaExpr::ProjectCols(
          RaExpr::Select(
              RaExpr::Product(r0e, s0e),
              {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(3)),
               SelectAtom::Eq(ColOrConst::Col(2), ColOrConst::Col(4))}),
          {0}),
      RaExpr::ConstRel(zero));

  // rhs: the Codd table {z_1, ..., z_p} (rhs VarIds 0..p-1).
  CTable t(1);
  for (int k = 0; k < p; ++k) t.AddRow(Tuple{Term::Var(k)});

  ContainmentInstance out;
  CDatabase lhs;
  lhs.AddTable(std::move(r0));
  lhs.AddTable(std::move(s0));
  out.lhs = std::move(lhs);
  out.lhs_view = View::Ra({q0});
  out.rhs = CDatabase(std::move(t));
  out.rhs_view = View::Identity();
  return out;
}

TautologyFoInstance TautologyToFirstOrderCertainty(const ClausalFormula& dnf) {
  int p = static_cast<int>(dnf.clauses.size());

  // T: for clause i (1-based), position k, literal over var j (1-based),
  // polarity b: row (i, z_{i,k}, j, b) with z_{i,k} a fresh variable
  // (VarId == 3*i + k).
  CTable t(4);
  for (int i = 0; i < p; ++i) {
    for (size_t k = 0; k < dnf.clauses[i].size(); ++k) {
      const Literal& lit = dnf.clauses[i][k];
      t.AddRow(Tuple{Term::Const(i + 1), Term::Var(3 * i + static_cast<int>(k)),
                     Term::Const(lit.var + 1),
                     Term::Const(lit.negated ? 0 : 1)});
    }
  }

  // NOT psi  ==  "sigma(T) encodes a truth assignment that falsifies H":
  //   A: no mark outside {0,1}
  //   B: no inconsistent pair of marks on the same variable
  //   C: no clause with all marks 1 (DNF conjunct satisfied)
  RaExpr r = RaExpr::Rel(0, 4);
  auto one_if_nonempty = [](const RaExpr& e) {
    return RaExpr::Project(e, {ColOrConst::Const(1)});
  };

  RaExpr viol_a = RaExpr::Select(
      r, {SelectAtom::Neq(ColOrConst::Col(1), ColOrConst::Const(0)),
          SelectAtom::Neq(ColOrConst::Col(1), ColOrConst::Const(1))});
  // Same variable, same polarity, different marks.
  RaExpr viol_b1 = RaExpr::Select(
      RaExpr::Product(r, r),
      {SelectAtom::Eq(ColOrConst::Col(2), ColOrConst::Col(6)),
       SelectAtom::Eq(ColOrConst::Col(3), ColOrConst::Col(7)),
       SelectAtom::Neq(ColOrConst::Col(1), ColOrConst::Col(5))});
  // Same variable, different polarity, same mark.
  RaExpr viol_b2 = RaExpr::Select(
      RaExpr::Product(r, r),
      {SelectAtom::Eq(ColOrConst::Col(2), ColOrConst::Col(6)),
       SelectAtom::Neq(ColOrConst::Col(3), ColOrConst::Col(7)),
       SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(5))});
  // Clauses whose marks are all 1 (the assignment satisfies the conjunct).
  RaExpr all_clauses = RaExpr::ProjectCols(r, {0});
  RaExpr has_non_one = RaExpr::ProjectCols(
      RaExpr::Select(r, {SelectAtom::Neq(ColOrConst::Col(1),
                                         ColOrConst::Const(1))}),
      {0});
  RaExpr sat_clauses = RaExpr::Diff(all_clauses, has_non_one);

  Relation one_rel(1);
  one_rel.Insert(Fact{1});
  RaExpr violations = RaExpr::Union(
      RaExpr::Union(one_if_nonempty(viol_a), one_if_nonempty(viol_b1)),
      RaExpr::Union(one_if_nonempty(viol_b2), one_if_nonempty(sat_clauses)));
  // q  = {(1) | NOT psi}: possible iff H is not a tautology.
  RaExpr q_not_psi = RaExpr::Diff(RaExpr::ConstRel(one_rel), violations);
  // q' = {(1) | psi}: certain iff H is a tautology.
  RaExpr q_psi = RaExpr::Diff(RaExpr::ConstRel(one_rel), q_not_psi);

  TautologyFoInstance out;
  out.database = CDatabase(std::move(t));
  out.certain_view = View::Ra({q_psi});
  out.possible_view = View::Ra({q_not_psi});
  out.pattern = {LocatedFact{0, Fact{1}}};
  return out;
}

}  // namespace pw
