// The 3CNF-satisfiability reductions of Theorem 5.1(2,3): NP-hardness of
// unbounded possibility on e-tables and i-tables.

#ifndef PW_REDUCTIONS_SATISFIABILITY_H_
#define PW_REDUCTIONS_SATISFIABILITY_H_

#include "core/instance.h"
#include "solvers/cnf.h"
#include "tables/ctable.h"

namespace pw {

/// A generated POSS(*) instance: is some world of rep(database) a superset
/// of `pattern`?
struct UnboundedPossibilityInstance {
  CDatabase database;
  Instance pattern;
};

/// Theorem 5.1(2): e-table of arity 3 with rows (j, u_j, y_j), (j, y_j, u_j)
/// per variable and (m+i, m+i, literal-var) per clause; pattern requires
/// (j,0,1), (j,1,0) per variable and (m+i, m+i, 1) per clause. H satisfiable
/// iff the pattern is possible.
UnboundedPossibilityInstance SatToETablePossibility(const ClausalFormula& cnf);

/// Theorem 5.1(3): i-table of arity 2 with rows (i, x_{i,k}) per clause
/// position, inequalities between complementary literal occurrences, and
/// pattern {(i, 1)} per clause. H satisfiable iff the pattern is possible.
UnboundedPossibilityInstance SatToITablePossibility(const ClausalFormula& cnf);

}  // namespace pw

#endif  // PW_REDUCTIONS_SATISFIABILITY_H_
