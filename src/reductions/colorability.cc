#include "reductions/colorability.h"

namespace pw {

namespace {

/// The complete "proper color pairs" relation {ij | i,j in {1,2,3}, i != j}.
Relation ColorPairs() {
  Relation r(2);
  for (ConstId i = 1; i <= 3; ++i) {
    for (ConstId j = 1; j <= 3; ++j) {
      if (i != j) r.Insert(Fact{i, j});
    }
  }
  return r;
}

}  // namespace

MembershipInstance ColorabilityToETableMembership(const Graph& graph) {
  // Node a's color variable is x_a (VarId == node id).
  CTable t(2);
  for (const Fact& f : ColorPairs()) t.AddRow(ToTuple(f));
  for (const auto& [a, b] : graph.edges()) {
    t.AddRow(Tuple{Term::Var(a), Term::Var(b)});
  }
  MembershipInstance out;
  out.database = CDatabase(std::move(t));
  out.instance = Instance({ColorPairs()});
  return out;
}

MembershipInstance ColorabilityToITableMembership(const Graph& graph) {
  CTable t(1);
  for (ConstId c = 1; c <= 3; ++c) t.AddRow(Tuple{Term::Const(c)});
  for (int a = 0; a < graph.num_nodes(); ++a) {
    t.AddRow(Tuple{Term::Var(a)});
  }
  Conjunction phi;
  for (const auto& [a, b] : graph.edges()) {
    phi.Add(Neq(Term::Var(a), Term::Var(b)));
  }
  t.SetGlobal(std::move(phi));

  Relation i0(1);
  for (ConstId c = 1; c <= 3; ++c) i0.Insert(Fact{c});

  MembershipInstance out;
  out.database = CDatabase(std::move(t));
  out.instance = Instance({std::move(i0)});
  return out;
}

MembershipInstance ColorabilityToViewMembership(const Graph& graph) {
  int m = static_cast<int>(graph.num_edges());
  // Edge j = (b_j, c_j) gets variables x_j (VarId j) and y_j (VarId m + j).
  // Node ids are shifted by +1 to match the paper's 1-based figures; edge
  // ids are 1..m.
  CTable tr(5);
  for (int j = 0; j < m; ++j) {
    const auto& [b, c] = graph.edges()[j];
    tr.AddRow(Tuple{Term::Const(b + 1), Term::Var(j), Term::Const(c + 1),
                    Term::Var(m + j), Term::Const(j + 1)});
  }
  CTable ts = CTable::FromRelation(ColorPairs());

  // R0 = {(a, j, k) | node a incident to edges j and k}; S0 = {1..m}.
  Relation r0(3);
  for (int j = 0; j < m; ++j) {
    for (int k = 0; k < m; ++k) {
      const auto& [bj, cj] = graph.edges()[j];
      const auto& [bk, ck] = graph.edges()[k];
      for (int a : {bj, cj}) {
        if (a == bk || a == ck) r0.Insert(Fact{a + 1, j + 1, k + 1});
      }
    }
  }
  Relation s0(1);
  for (int j = 0; j < m; ++j) s0.Insert(Fact{j + 1});

  // q1 = pi_{x,z,z'}( E1(x,y,z) join_{x,y} E1(x,y,z') ) where
  // E1 = pi_{0,1,4}(R) union pi_{2,3,4}(R): (node, color variable, edge id).
  RaExpr r = RaExpr::Rel(0, 5);
  RaExpr s = RaExpr::Rel(1, 2);
  RaExpr e1 = RaExpr::Union(RaExpr::ProjectCols(r, {0, 1, 4}),
                            RaExpr::ProjectCols(r, {2, 3, 4}));
  RaExpr q1 = RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Product(e1, e1),
                     {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Col(3)),
                      SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(4))}),
      {0, 2, 5});
  // q2 = pi_{edge}( sigma_{y in S-pair with w}(R x S) ): the edge's two
  // color values form a proper {1,2,3} pair.
  RaExpr q2 = RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Product(r, s),
                     {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(5)),
                      SelectAtom::Eq(ColOrConst::Col(3), ColOrConst::Col(6))}),
      {4});

  MembershipInstance out;
  CDatabase db;
  db.AddTable(std::move(tr));
  db.AddTable(std::move(ts));
  out.database = std::move(db);
  out.instance = Instance({std::move(r0), std::move(s0)});
  out.view = View::Ra({q1, q2});
  return out;
}

UniquenessInstance NonColorabilityToViewUniqueness(const Graph& graph) {
  // T0 = {(1, a, b) | (a,b) in E} union {(0, a, x_a) | a in V}; nodes 1-based.
  CTable t0(3);
  for (const auto& [a, b] : graph.edges()) {
    t0.AddRow(Tuple{Term::Const(1), Term::Const(a + 1), Term::Const(b + 1)});
  }
  for (int a = 0; a < graph.num_nodes(); ++a) {
    t0.AddRow(Tuple{Term::Const(0), Term::Const(a + 1), Term::Var(a)});
  }

  // q0 = {1 | exists xyz [R(1xy) ^ R(0xz) ^ R(0yz)]
  //          v exists yz [R(0yz) ^ z != 1 ^ z != 2 ^ z != 3]}.
  RaExpr rel = RaExpr::Rel(0, 3);
  RaExpr part1 = RaExpr::Project(
      RaExpr::Select(
          RaExpr::Product(RaExpr::Product(rel, rel), rel),
          {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(1)),
           SelectAtom::Eq(ColOrConst::Col(3), ColOrConst::Const(0)),
           SelectAtom::Eq(ColOrConst::Col(6), ColOrConst::Const(0)),
           SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(4)),
           SelectAtom::Eq(ColOrConst::Col(2), ColOrConst::Col(7)),
           SelectAtom::Eq(ColOrConst::Col(5), ColOrConst::Col(8))}),
      {ColOrConst::Const(1)});
  RaExpr part2 = RaExpr::Project(
      RaExpr::Select(rel,
                     {SelectAtom::Eq(ColOrConst::Col(0), ColOrConst::Const(0)),
                      SelectAtom::Neq(ColOrConst::Col(2), ColOrConst::Const(1)),
                      SelectAtom::Neq(ColOrConst::Col(2), ColOrConst::Const(2)),
                      SelectAtom::Neq(ColOrConst::Col(2),
                                      ColOrConst::Const(3))}),
      {ColOrConst::Const(1)});
  RaExpr q0 = RaExpr::Union(part1, part2);

  Relation ones(1);
  ones.Insert(Fact{1});

  UniquenessInstance out;
  out.database = CDatabase(std::move(t0));
  out.instance = Instance({std::move(ones)});
  out.view = View::Ra({q0});
  return out;
}

}  // namespace pw
