// CNF encodings of the repo's combinatorial problems — the classic NP
// reductions read in the instance-generating direction. Where colorability.h
// maps graphs into table decision problems, these map the same graphs (and
// related principles) into clausal form, producing the structured stress
// corpus for the CDCL core in solvers/sat.h: satisfiable coloring instances
// cross-validated against the backtracking solver, resolution-hard
// unsatisfiable pigeonhole instances, and propagation-heavy implication
// chains that separate watched-literal propagation from clause re-scanning.

#ifndef PW_REDUCTIONS_SAT_ENCODE_H_
#define PW_REDUCTIONS_SAT_ENCODE_H_

#include <vector>

#include "solvers/cnf.h"
#include "solvers/graph.h"

namespace pw {

/// Graph k-coloring as CNF: variable (node * k + c) means "node gets color
/// c". One at-least-one-color clause per node and one conflict clause per
/// (edge, color) pair; satisfiable iff the graph is k-colorable (at-most-one
/// constraints are unnecessary for the equivalence — see DecodeColoring).
ClausalFormula GraphColoringToCnf(const Graph& graph, int k);

/// Reads a proper coloring out of a model of GraphColoringToCnf: each node
/// takes its first asserted color. The conflict clauses guarantee adjacent
/// nodes never share an asserted color, so the result is proper.
std::vector<int> DecodeColoring(const Graph& graph, int k,
                                const std::vector<bool>& model);

/// The pigeonhole principle PHP(holes + 1, holes): variable
/// (pigeon * holes + h) means "pigeon sits in hole h"; every pigeon sits
/// somewhere, no two pigeons share a hole. Unsatisfiable for every
/// holes >= 1, with exponential-size resolution refutations — the classic
/// hard UNSAT family for clause-learning stress.
ClausalFormula PigeonholeCnf(int holes);

/// A unit-implication chain x0, x_i -> x_{i+1}, NOT x_{length-1}, with the
/// implication clauses interleaved (all even i, then all odd i) so that
/// neither the forward sweep from x0 nor the backward sweep from
/// NOT x_{length-1} matches the clause scan order. Unsatisfiable by unit
/// propagation alone: linear work for watched-literal propagation, but the
/// seed DPLL's re-scan-everything loop advances each sweep by O(1) units per
/// pass — quadratic overall.
ClausalFormula ScrambledImplicationChainCnf(int length);

/// A satisfiable decision ladder (x_i OR x_{i+1}) for i in [0, length - 1):
/// no unit clause ever arises from the initial state, so a solver that
/// recurses per decision needs a stack frame per variable — the regression
/// shape for the seed DPLL's recursion-depth hazard.
ClausalFormula DecisionLadderCnf(int length);

}  // namespace pw

#endif  // PW_REDUCTIONS_SAT_ENCODE_H_
