#include "reductions/sat_encode.h"

#include <cassert>

namespace pw {

ClausalFormula GraphColoringToCnf(const Graph& graph, int k) {
  assert(k >= 1);
  ClausalFormula cnf;
  cnf.num_vars = graph.num_nodes() * k;
  cnf.clauses.reserve(graph.num_nodes() +
                      graph.num_edges() * static_cast<size_t>(k));
  for (int node = 0; node < graph.num_nodes(); ++node) {
    Clause at_least_one;
    at_least_one.reserve(k);
    for (int c = 0; c < k; ++c) at_least_one.push_back(Literal::Pos(node * k + c));
    cnf.clauses.push_back(std::move(at_least_one));
  }
  for (const auto& [a, b] : graph.edges()) {
    for (int c = 0; c < k; ++c) {
      cnf.clauses.push_back({Literal::Neg(a * k + c), Literal::Neg(b * k + c)});
    }
  }
  return cnf;
}

std::vector<int> DecodeColoring(const Graph& graph, int k,
                                const std::vector<bool>& model) {
  // Models may assert several colors per node (there is no at-most-one
  // constraint), but "first asserted color" is still proper: if adjacent
  // nodes shared their first asserted color c, both variables would be true
  // and the edge's color-c conflict clause would be falsified.
  std::vector<int> coloring(graph.num_nodes(), -1);
  for (int node = 0; node < graph.num_nodes(); ++node) {
    for (int c = 0; c < k; ++c) {
      if (model[node * k + c]) {
        coloring[node] = c;
        break;
      }
    }
    assert(coloring[node] >= 0 && "model violates an at-least-one clause");
  }
  return coloring;
}

ClausalFormula PigeonholeCnf(int holes) {
  assert(holes >= 1);
  int pigeons = holes + 1;
  ClausalFormula cnf;
  cnf.num_vars = pigeons * holes;
  for (int p = 0; p < pigeons; ++p) {
    Clause somewhere;
    somewhere.reserve(holes);
    for (int h = 0; h < holes; ++h) somewhere.push_back(Literal::Pos(p * holes + h));
    cnf.clauses.push_back(std::move(somewhere));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        cnf.clauses.push_back(
            {Literal::Neg(p * holes + h), Literal::Neg(q * holes + h)});
      }
    }
  }
  return cnf;
}

ClausalFormula ScrambledImplicationChainCnf(int length) {
  assert(length >= 1);
  ClausalFormula cnf;
  cnf.num_vars = length;
  cnf.clauses.reserve(static_cast<size_t>(length) + 1);
  cnf.clauses.push_back({Literal::Pos(0)});
  // Even-indexed implications first, then odd-indexed: consuming the chain
  // in ascending or descending variable order alternates between the two
  // blocks, so a fixed-order clause scan picks up O(1) new units per pass.
  for (int parity = 0; parity < 2; ++parity) {
    for (int i = parity; i < length - 1; i += 2) {
      cnf.clauses.push_back({Literal::Neg(i), Literal::Pos(i + 1)});
    }
  }
  cnf.clauses.push_back({Literal::Neg(length - 1)});
  return cnf;
}

ClausalFormula DecisionLadderCnf(int length) {
  assert(length >= 2);
  ClausalFormula cnf;
  cnf.num_vars = length;
  cnf.clauses.reserve(static_cast<size_t>(length) - 1);
  for (int i = 0; i + 1 < length; ++i) {
    cnf.clauses.push_back({Literal::Pos(i), Literal::Pos(i + 1)});
  }
  return cnf;
}

}  // namespace pw
