#include "reductions/forall_exists.h"

#include <cassert>

#include "ilalgebra/ctable_eval.h"

namespace pw {

namespace {

/// Adds the seven rows {(a, b, c, 0) : a, b, c in {0,1}, a+b+c != 0}.
void AddBooleanBlock(CTable& table) {
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 1; ++c) {
        if (a + b + c == 0) continue;
        table.AddRow(Tuple{Term::Const(a), Term::Const(b), Term::Const(c),
                           Term::Const(0)});
      }
    }
  }
}

}  // namespace

ContainmentInstance ForallExistsToTableInITable(const ForallExistsCnf& qbf) {
  int n = qbf.num_forall;
  int nm = qbf.formula.num_vars;  // n + m
  int p = static_cast<int>(qbf.formula.clauses.size());

  // lhs variable ids: z_i -> i (0-based universal variable index).
  // rhs variable ids, disjoint block layout:
  //   u_l -> l                 for l in [0, nm)
  //   v_l -> nm + l            for l in [0, nm)
  //   w_i -> 2*nm + i          for i in [0, n)
  //   y_i -> 2*nm + n + i      for i in [0, n)
  //   z_{k,j} -> 2*nm + 2*n + 3*k + j
  auto u = [](int l) { return Term::Var(l); };
  auto v = [nm](int l) { return Term::Var(nm + l); };
  auto w = [nm](int i) { return Term::Var(2 * nm + i); };
  auto y = [nm, n](int i) { return Term::Var(2 * nm + n + i); };
  auto zkj = [nm, n](int k, int j) {
    return Term::Var(2 * nm + 2 * n + 3 * k + j);
  };

  CTable t0(4);
  for (int i = 0; i < n; ++i) {
    // Universal variable x_i (ids 1-based in tuples to avoid the 0 marker).
    t0.AddRow(Tuple{Term::Const(0), Term::Var(i), Term::Const(i + 1),
                    Term::Const(i + 1)});
    t0.AddRow(Tuple{Term::Const(1), Term::Const(0), Term::Const(i + 1),
                    Term::Const(i + 1)});
  }
  AddBooleanBlock(t0);

  CTable t(4);
  for (int i = 0; i < n; ++i) {
    t.AddRow(Tuple{u(i), w(i), Term::Const(i + 1), Term::Const(i + 1)});
    t.AddRow(Tuple{v(i), y(i), Term::Const(i + 1), Term::Const(i + 1)});
  }
  AddBooleanBlock(t);
  for (int k = 0; k < p; ++k) {
    t.AddRow(Tuple{zkj(k, 0), zkj(k, 1), zkj(k, 2), Term::Const(0)});
  }

  Conjunction phi;
  for (int i = 0; i < n; ++i) {
    phi.Add(Neq(w(i), Term::Const(5)));
    phi.Add(Neq(y(i), Term::Const(6)));
  }
  // Complementary literal occurrences must not both be marked satisfied.
  for (int k = 0; k < p; ++k) {
    const Clause& ck = qbf.formula.clauses[k];
    for (size_t j = 0; j < ck.size(); ++j) {
      for (int k2 = 0; k2 < p; ++k2) {
        const Clause& ck2 = qbf.formula.clauses[k2];
        for (size_t j2 = 0; j2 < ck2.size(); ++j2) {
          if (ck[j].var == ck2[j2].var && !ck[j].negated &&
              ck2[j2].negated) {
            phi.Add(Neq(zkj(k, static_cast<int>(j)),
                        zkj(k2, static_cast<int>(j2))));
          }
        }
      }
      // Literal truth must agree with the variable's assignment encoding.
      const Literal& lit = ck[j];
      phi.Add(Neq(zkj(k, static_cast<int>(j)),
                  lit.negated ? u(lit.var) : v(lit.var)));
    }
  }
  t.SetGlobal(std::move(phi));

  ContainmentInstance out;
  out.lhs = CDatabase(std::move(t0));
  out.rhs = CDatabase(std::move(t));
  return out;
}

ContainmentInstance ForallExistsToTableInViewOfTables(
    const ForallExistsCnf& qbf) {
  int n = qbf.num_forall;
  int p = static_cast<int>(qbf.formula.clauses.size());

  // lhs: R0 = {(i, v_i)} (VarId i), S0 = {1..p}.
  CTable r0(2);
  for (int i = 0; i < n; ++i) {
    r0.AddRow(Tuple{Term::Const(i + 1), Term::Var(i)});
  }
  CTable s0(1);
  for (int k = 0; k < p; ++k) s0.AddRow(Tuple{Term::Const(k + 1)});

  // rhs: R = {(i, u_i)} (VarId i), S = {(k, z_{k,j}, var, polarity)}
  // (z VarId = n + 3*k + j).
  CTable tr(2);
  for (int i = 0; i < n; ++i) {
    tr.AddRow(Tuple{Term::Const(i + 1), Term::Var(i)});
  }
  CTable ts(4);
  for (int k = 0; k < p; ++k) {
    const Clause& ck = qbf.formula.clauses[k];
    for (size_t j = 0; j < ck.size(); ++j) {
      ts.AddRow(Tuple{Term::Const(k + 1),
                      Term::Var(n + 3 * k + static_cast<int>(j)),
                      Term::Const(ck[j].var + 1),
                      Term::Const(ck[j].negated ? 0 : 1)});
    }
  }

  // q1 = R; q2 = d1 v d2 v d3 v d4 (see Theorem 4.2(2)).
  RaExpr r = RaExpr::Rel(0, 2);
  RaExpr s = RaExpr::Rel(1, 4);
  RaExpr d1 = RaExpr::ProjectCols(
      RaExpr::Select(s, {SelectAtom::Eq(ColOrConst::Col(1),
                                        ColOrConst::Const(1))}),
      {0});
  // Some variable has both a satisfied positive and a satisfied negative
  // occurrence -> emit 0.
  RaExpr d2 = RaExpr::Project(
      RaExpr::Select(RaExpr::Product(s, s),
                     {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Const(1)),
                      SelectAtom::Eq(ColOrConst::Col(3), ColOrConst::Const(0)),
                      SelectAtom::Eq(ColOrConst::Col(5), ColOrConst::Const(1)),
                      SelectAtom::Eq(ColOrConst::Col(7), ColOrConst::Const(1)),
                      SelectAtom::Eq(ColOrConst::Col(2), ColOrConst::Col(6))}),
      {ColOrConst::Const(0)});
  // A universal variable assigned 0 with a satisfied positive occurrence.
  RaExpr d3 = RaExpr::Project(
      RaExpr::Select(RaExpr::Product(r, s),
                     {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Const(0)),
                      SelectAtom::Eq(ColOrConst::Col(3), ColOrConst::Const(1)),
                      SelectAtom::Eq(ColOrConst::Col(4), ColOrConst::Col(0)),
                      SelectAtom::Eq(ColOrConst::Col(5),
                                     ColOrConst::Const(1))}),
      {ColOrConst::Const(0)});
  // A universal variable assigned 1 with a satisfied negative occurrence.
  RaExpr d4 = RaExpr::Project(
      RaExpr::Select(RaExpr::Product(r, s),
                     {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Const(1)),
                      SelectAtom::Eq(ColOrConst::Col(3), ColOrConst::Const(1)),
                      SelectAtom::Eq(ColOrConst::Col(4), ColOrConst::Col(0)),
                      SelectAtom::Eq(ColOrConst::Col(5),
                                     ColOrConst::Const(0))}),
      {ColOrConst::Const(0)});
  RaExpr q2 = RaExpr::Union(RaExpr::Union(d1, d2), RaExpr::Union(d3, d4));

  ContainmentInstance out;
  CDatabase lhs;
  lhs.AddTable(std::move(r0));
  lhs.AddTable(std::move(s0));
  out.lhs = std::move(lhs);
  CDatabase rhs;
  rhs.AddTable(std::move(tr));
  rhs.AddTable(std::move(ts));
  out.rhs = std::move(rhs);
  out.rhs_view = View::Ra({r, q2});
  return out;
}

ContainmentInstance ForallExistsToViewOfTablesInETables(
    const ForallExistsCnf& qbf) {
  int n = qbf.num_forall;
  int p = static_cast<int>(qbf.formula.clauses.size());

  // lhs variable ids: y_i -> i, z_i -> n + i.
  CTable r0(3);
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j <= 1; ++j) {
      for (int k = 0; k <= 1; ++k) {
        r0.AddRow(Tuple{Term::Const(i + 1), Term::Const(j), Term::Const(k)});
      }
    }
  }
  CTable s0(3);
  for (int i = 0; i < n; ++i) {
    s0.AddRow(Tuple{Term::Const(i + 1), Term::Var(i), Term::Var(n + i)});
  }

  // q01 = R0; q02 = {(x,1) | S0(x,y,y)} union {(x,0) | S0(x,y,z)}.
  RaExpr r0e = RaExpr::Rel(0, 3);
  RaExpr s0e = RaExpr::Rel(1, 3);
  RaExpr q02 = RaExpr::Union(
      RaExpr::Project(
          RaExpr::Select(s0e, {SelectAtom::Eq(ColOrConst::Col(1),
                                              ColOrConst::Col(2))}),
          {ColOrConst::Col(0), ColOrConst::Const(1)}),
      RaExpr::Project(s0e, {ColOrConst::Col(0), ColOrConst::Const(0)}));

  // rhs variable ids: u_l -> l for l in [0, n+m); clause witness
  // z_i -> (n+m) + i.
  int nm = qbf.formula.num_vars;
  CTable tr(3);
  for (int i = 0; i < p; ++i) {
    const Clause& ci = qbf.formula.clauses[i];
    for (const Literal& lit : ci) {
      tr.AddRow(Tuple{Term::Const(i + 1), Term::Var(lit.var),
                      Term::Const(lit.negated ? 0 : 1)});
    }
    tr.AddRow(Tuple{Term::Const(i + 1), Term::Const(1), Term::Const(0)});
    tr.AddRow(Tuple{Term::Const(i + 1), Term::Const(0), Term::Const(1)});
    tr.AddRow(Tuple{Term::Const(i + 1), Term::Var(nm + i), Term::Var(nm + i)});
  }
  CTable ts(2);
  for (int i = 0; i < n; ++i) {
    ts.AddRow(Tuple{Term::Const(i + 1), Term::Var(i)});
    ts.AddRow(Tuple{Term::Const(i + 1), Term::Const(0)});
  }

  ContainmentInstance out;
  CDatabase lhs;
  lhs.AddTable(std::move(r0));
  lhs.AddTable(std::move(s0));
  out.lhs = std::move(lhs);
  out.lhs_view = View::Ra({r0e, q02});
  CDatabase rhs;
  rhs.AddTable(std::move(tr));
  rhs.AddTable(std::move(ts));
  out.rhs = std::move(rhs);
  return out;
}

ContainmentInstance ForallExistsToCTableInETables(const ForallExistsCnf& qbf) {
  ContainmentInstance base = ForallExistsToViewOfTablesInETables(qbf);
  // Materialize q0's image as a c-database ([10]'s PTIME construction);
  // identity queries on both sides afterwards.
  auto image = EvalQueryOnCTables(base.lhs_view.ra(), base.lhs);
  assert(image.has_value());
  ContainmentInstance out;
  out.lhs = std::move(*image);
  out.rhs = std::move(base.rhs);
  return out;
}

}  // namespace pw
