#include "reductions/satisfiability.h"

namespace pw {

UnboundedPossibilityInstance SatToETablePossibility(
    const ClausalFormula& cnf) {
  int m = cnf.num_vars;
  int n = static_cast<int>(cnf.clauses.size());
  // Variable ids: u_j -> j, y_j -> m + j.
  auto u = [](int j) { return Term::Var(j); };
  auto y = [m](int j) { return Term::Var(m + j); };

  CTable t(3);
  for (int j = 0; j < m; ++j) {
    t.AddRow(Tuple{Term::Const(j + 1), u(j), y(j)});
    t.AddRow(Tuple{Term::Const(j + 1), y(j), u(j)});
  }
  for (int i = 0; i < n; ++i) {
    for (const Literal& lit : cnf.clauses[i]) {
      Term marker = lit.negated ? y(lit.var) : u(lit.var);
      t.AddRow(Tuple{Term::Const(m + i + 1), Term::Const(m + i + 1), marker});
    }
  }

  Relation p(3);
  for (int j = 0; j < m; ++j) {
    p.Insert(Fact{j + 1, 0, 1});
    p.Insert(Fact{j + 1, 1, 0});
  }
  for (int i = 0; i < n; ++i) {
    p.Insert(Fact{m + i + 1, m + i + 1, 1});
  }

  UnboundedPossibilityInstance out;
  out.database = CDatabase(std::move(t));
  out.pattern = Instance({std::move(p)});
  return out;
}

UnboundedPossibilityInstance SatToITablePossibility(
    const ClausalFormula& cnf) {
  int n = static_cast<int>(cnf.clauses.size());
  // Variable ids: x_{i,k} -> 3*i + k.
  auto x = [](int i, int k) { return Term::Var(3 * i + k); };

  CTable t(2);
  for (int i = 0; i < n; ++i) {
    for (size_t k = 0; k < cnf.clauses[i].size(); ++k) {
      t.AddRow(Tuple{Term::Const(i + 1), x(i, static_cast<int>(k))});
    }
  }
  Conjunction phi;
  for (int i = 0; i < n; ++i) {
    const Clause& ci = cnf.clauses[i];
    for (size_t k = 0; k < ci.size(); ++k) {
      if (ci[k].negated) continue;
      for (int j = 0; j < n; ++j) {
        const Clause& cj = cnf.clauses[j];
        for (size_t l = 0; l < cj.size(); ++l) {
          if (cj[l].negated && cj[l].var == ci[k].var) {
            phi.Add(Neq(x(i, static_cast<int>(k)), x(j, static_cast<int>(l))));
          }
        }
      }
    }
  }
  t.SetGlobal(std::move(phi));

  Relation p(2);
  for (int i = 0; i < n; ++i) p.Insert(Fact{i + 1, 1});

  UnboundedPossibilityInstance out;
  out.database = CDatabase(std::move(t));
  out.pattern = Instance({std::move(p)});
  return out;
}

}  // namespace pw
