// Relations: finite sets of facts of a fixed arity.

#ifndef PW_CORE_RELATION_H_
#define PW_CORE_RELATION_H_

#include <initializer_list>
#include <set>
#include <string>
#include <vector>

#include "core/tuple.h"

namespace pw {

class SymbolTable;

/// A finite set of facts of fixed arity. Set semantics: duplicate inserts are
/// no-ops. Iteration order is the lexicographic order of facts, so two equal
/// relations iterate identically and operator== is structural.
class Relation {
 public:
  /// An empty relation of the given arity (default arity 0: the relation that
  /// can hold only the empty fact).
  explicit Relation(int arity = 0) : arity_(arity) {}

  /// Builds a relation from a list of facts; all must have arity `arity`.
  Relation(int arity, std::initializer_list<Fact> facts);

  /// Builds a relation from a vector of facts; all must have arity `arity`.
  Relation(int arity, const std::vector<Fact>& facts);

  int arity() const { return arity_; }
  size_t size() const { return facts_.size(); }
  bool empty() const { return facts_.empty(); }

  /// Inserts a fact. Returns true if newly inserted. Precondition: the fact
  /// has the relation's arity.
  bool Insert(const Fact& fact);

  /// Inserts a ground tuple. Precondition: IsGround(tuple).
  bool Insert(const Tuple& tuple) { return Insert(ToFact(tuple)); }

  bool Contains(const Fact& fact) const { return facts_.count(fact) > 0; }

  /// True iff every fact of `other` is in this relation.
  bool ContainsAll(const Relation& other) const;

  /// Set union; arities must agree.
  Relation UnionWith(const Relation& other) const;

  /// All constants occurring in some fact.
  std::vector<ConstId> Constants() const;

  auto begin() const { return facts_.begin(); }
  auto end() const { return facts_.end(); }

  /// The facts as a sorted vector.
  std::vector<Fact> ToVector() const;

  friend bool operator==(const Relation&, const Relation&) = default;

  /// Multi-line rendering, one fact per line.
  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  int arity_;
  std::set<Fact> facts_;
};

}  // namespace pw

#endif  // PW_CORE_RELATION_H_
