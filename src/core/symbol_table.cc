#include "core/symbol_table.h"

namespace pw {

ConstId SymbolTable::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  ConstId id = next_id_++;
  ids_.emplace(name, id);
  names_.emplace(id, name);
  insertion_order_.push_back(name);
  return id;
}

std::optional<ConstId> SymbolTable::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> SymbolTable::Name(ConstId id) const {
  auto it = names_.find(id);
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

std::string ConstName(ConstId id, const SymbolTable* symbols) {
  if (symbols != nullptr) {
    if (auto name = symbols->Name(id)) return *name;
  }
  return std::to_string(id);
}

}  // namespace pw
