#include "core/relation.h"

#include <cassert>
#include <set>

#include "core/symbol_table.h"

namespace pw {

Relation::Relation(int arity, std::initializer_list<Fact> facts)
    : arity_(arity) {
  for (const Fact& f : facts) Insert(f);
}

Relation::Relation(int arity, const std::vector<Fact>& facts) : arity_(arity) {
  for (const Fact& f : facts) Insert(f);
}

bool Relation::Insert(const Fact& fact) {
  assert(static_cast<int>(fact.size()) == arity_);
  return facts_.insert(fact).second;
}

bool Relation::ContainsAll(const Relation& other) const {
  for (const Fact& f : other) {
    if (!Contains(f)) return false;
  }
  return true;
}

Relation Relation::UnionWith(const Relation& other) const {
  assert(arity_ == other.arity_);
  Relation out = *this;
  for (const Fact& f : other) out.Insert(f);
  return out;
}

std::vector<ConstId> Relation::Constants() const {
  std::set<ConstId> seen;
  for (const Fact& f : facts_) seen.insert(f.begin(), f.end());
  return {seen.begin(), seen.end()};
}

std::vector<Fact> Relation::ToVector() const {
  return {facts_.begin(), facts_.end()};
}

std::string Relation::ToString(const SymbolTable* symbols) const {
  std::string out;
  for (const Fact& f : facts_) {
    out += pw::ToString(f, symbols);
    out += "\n";
  }
  return out;
}

}  // namespace pw
