#include "core/tuple.h"

#include <unordered_map>

#include "core/symbol_table.h"

namespace pw {

bool IsGround(const Tuple& tuple) {
  for (const Term& t : tuple) {
    if (t.is_variable()) return false;
  }
  return true;
}

Fact ToFact(const Tuple& tuple) {
  Fact fact;
  fact.reserve(tuple.size());
  for (const Term& t : tuple) fact.push_back(t.constant());
  return fact;
}

Tuple ToTuple(const Fact& fact) {
  Tuple tuple;
  tuple.reserve(fact.size());
  for (ConstId c : fact) tuple.push_back(Term::Const(c));
  return tuple;
}

bool Unifiable(const Tuple& tuple, const Fact& fact) {
  if (tuple.size() != fact.size()) return false;
  std::unordered_map<VarId, ConstId> binding;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_constant()) {
      if (tuple[i].constant() != fact[i]) return false;
    } else {
      auto [it, inserted] = binding.emplace(tuple[i].variable(), fact[i]);
      if (!inserted && it->second != fact[i]) return false;
    }
  }
  return true;
}

std::string ToString(const Term& term) {
  if (term.is_variable()) return "x" + std::to_string(term.variable());
  return std::to_string(term.constant());
}

std::string ToString(const Tuple& tuple, const SymbolTable* symbols) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    if (tuple[i].is_constant() && symbols != nullptr) {
      out += ConstName(tuple[i].constant(), symbols);
    } else {
      out += ToString(tuple[i]);
    }
  }
  out += ")";
  return out;
}

std::string ToString(const Fact& fact, const SymbolTable* symbols) {
  std::string out = "(";
  for (size_t i = 0; i < fact.size(); ++i) {
    if (i > 0) out += ", ";
    out += ConstName(fact[i], symbols);
  }
  out += ")";
  return out;
}

}  // namespace pw
