// Complete information databases ("instances" in the paper): n-vectors of
// relations of fixed arities.

#ifndef PW_CORE_INSTANCE_H_
#define PW_CORE_INSTANCE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "core/relation.h"

namespace pw {

class SymbolTable;

/// A complete information database: a vector of relations. Relation `i` is
/// addressed by its index; arities are per-relation and fixed.
class Instance {
 public:
  Instance() = default;

  /// An instance with `arities.size()` empty relations of those arities.
  explicit Instance(const std::vector<int>& arities);

  /// An instance over the given relations.
  Instance(std::initializer_list<Relation> relations)
      : relations_(relations) {}

  explicit Instance(std::vector<Relation> relations)
      : relations_(std::move(relations)) {}

  size_t num_relations() const { return relations_.size(); }

  const Relation& relation(size_t i) const { return relations_[i]; }
  Relation& mutable_relation(size_t i) { return relations_[i]; }

  /// Appends a relation, returning its index.
  size_t AddRelation(Relation r);

  /// The arities of all relations, in order.
  std::vector<int> Arities() const;

  /// All constants occurring anywhere in the instance.
  std::vector<ConstId> Constants() const;

  /// Total number of facts across relations.
  size_t TotalFacts() const;

  friend bool operator==(const Instance&, const Instance&) = default;

  std::string ToString(const SymbolTable* symbols = nullptr) const;

 private:
  std::vector<Relation> relations_;
};

/// A fact together with the index of the relation it belongs to — "when we
/// say that fact t is in instance I we assume that the relation of I, where t
/// belongs, is also specified" (Section 2.1).
struct LocatedFact {
  size_t relation = 0;
  Fact fact;

  friend bool operator==(const LocatedFact&, const LocatedFact&) = default;
  friend auto operator<=>(const LocatedFact&, const LocatedFact&) = default;
};

/// True iff every located fact of `facts` is present in `instance`.
bool ContainsAll(const Instance& instance,
                 const std::vector<LocatedFact>& facts);

}  // namespace pw

#endif  // PW_CORE_INSTANCE_H_
