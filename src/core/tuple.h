// Tuples over terms and ground facts.
//
// A `Tuple` is a fixed-arity sequence of terms (constants and variables): one
// row of a table. A `Fact` is a fully ground tuple — one row of a relation in
// a complete information database.

#ifndef PW_CORE_TUPLE_H_
#define PW_CORE_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/term.h"

namespace pw {

class SymbolTable;

/// A row of a table: sequence of terms.
using Tuple = std::vector<Term>;

/// A row of a relation: sequence of constants.
using Fact = std::vector<ConstId>;

/// True iff every position of `tuple` is a constant.
bool IsGround(const Tuple& tuple);

/// Converts a ground tuple to a fact. Precondition: IsGround(tuple).
Fact ToFact(const Tuple& tuple);

/// Lifts a fact back to a (ground) tuple.
Tuple ToTuple(const Fact& fact);

/// True iff some valuation maps `tuple` onto `fact` position-wise. Because a
/// valuation is free on each variable, this only requires that constant
/// positions agree — repeated variables in `tuple` additionally require the
/// corresponding fact positions to agree.
bool Unifiable(const Tuple& tuple, const Fact& fact);

/// Renders "(t1, ..., tn)".
std::string ToString(const Tuple& tuple, const SymbolTable* symbols = nullptr);

/// Renders "(c1, ..., cn)".
std::string ToString(const Fact& fact, const SymbolTable* symbols = nullptr);

/// Convenience constructors used pervasively in tests and examples.
inline Term C(ConstId id) { return Term::Const(id); }
inline Term V(VarId id) { return Term::Var(id); }

}  // namespace pw

#endif  // PW_CORE_TUPLE_H_
