#include "core/instance.h"

#include <set>

#include "core/symbol_table.h"

namespace pw {

Instance::Instance(const std::vector<int>& arities) {
  relations_.reserve(arities.size());
  for (int a : arities) relations_.emplace_back(a);
}

size_t Instance::AddRelation(Relation r) {
  relations_.push_back(std::move(r));
  return relations_.size() - 1;
}

std::vector<int> Instance::Arities() const {
  std::vector<int> out;
  out.reserve(relations_.size());
  for (const Relation& r : relations_) out.push_back(r.arity());
  return out;
}

std::vector<ConstId> Instance::Constants() const {
  std::set<ConstId> seen;
  for (const Relation& r : relations_) {
    for (ConstId c : r.Constants()) seen.insert(c);
  }
  return {seen.begin(), seen.end()};
}

size_t Instance::TotalFacts() const {
  size_t n = 0;
  for (const Relation& r : relations_) n += r.size();
  return n;
}

std::string Instance::ToString(const SymbolTable* symbols) const {
  std::string out;
  for (size_t i = 0; i < relations_.size(); ++i) {
    out += "R" + std::to_string(i) + " (arity " +
           std::to_string(relations_[i].arity()) + "):\n";
    out += relations_[i].ToString(symbols);
  }
  return out;
}

bool ContainsAll(const Instance& instance,
                 const std::vector<LocatedFact>& facts) {
  for (const LocatedFact& lf : facts) {
    if (lf.relation >= instance.num_relations()) return false;
    if (!instance.relation(lf.relation).Contains(lf.fact)) return false;
  }
  return true;
}

}  // namespace pw
