// Interning of human-readable constant names.
//
// The decision procedures work on raw `ConstId`s; examples and pretty
// printers use a SymbolTable to attach names ("Smith", "Sales", ...) to ids.

#ifndef PW_CORE_SYMBOL_TABLE_H_
#define PW_CORE_SYMBOL_TABLE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/term.h"

namespace pw {

/// Bidirectional map between constant names and `ConstId`s.
///
/// Ids are handed out sequentially starting from `first_id` (default 1000 so
/// that the small numeric constants used throughout the paper's examples do
/// not collide with named constants).
class SymbolTable {
 public:
  explicit SymbolTable(ConstId first_id = 1000) : next_id_(first_id) {}

  SymbolTable(const SymbolTable&) = default;
  SymbolTable& operator=(const SymbolTable&) = default;

  /// Interns `name`, returning its id (existing id if already interned).
  ConstId Intern(const std::string& name);

  /// Returns the id of `name` if interned.
  std::optional<ConstId> Lookup(const std::string& name) const;

  /// Returns the name of `id`, or std::nullopt if `id` was not interned here.
  std::optional<std::string> Name(ConstId id) const;

  /// Convenience: interned constant as a Term.
  Term Const(const std::string& name) { return Term::Const(Intern(name)); }

  /// Number of interned symbols.
  size_t size() const { return names_.size(); }

 private:
  ConstId next_id_;
  std::unordered_map<std::string, ConstId> ids_;
  std::unordered_map<ConstId, std::string> names_;
  std::vector<std::string> insertion_order_;
};

/// Renders a constant id with `symbols` if it names it, else as decimal.
std::string ConstName(ConstId id, const SymbolTable* symbols);

}  // namespace pw

#endif  // PW_CORE_SYMBOL_TABLE_H_
