// Terms: the atomic syntactic objects of the possible-worlds framework.
//
// Following Abiteboul, Kanellakis & Grahne (TCS 78, 1991), a term is either a
// constant drawn from a countably infinite set of constants, or a variable
// ("null") drawn from a disjoint countably infinite set of variables.
// Constants and variables are identified by 32-bit ids; the `SymbolTable`
// (core/symbol_table.h) optionally maps constant ids to human-readable names.

#ifndef PW_CORE_TERM_H_
#define PW_CORE_TERM_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace pw {

/// Identifier of a constant. Non-negative by convention; small integers used
/// directly as "numeric" constants in examples mirror the paper's notation.
using ConstId = int32_t;

/// Identifier of a variable (a "null value"). Non-negative.
using VarId = int32_t;

/// A term is a constant or a variable. Value type, totally ordered (all
/// constants precede all variables; within a kind, ordered by id).
class Term {
 public:
  /// Default-constructs the constant 0.
  Term() : var_(false), id_(0) {}

  /// Makes a constant term.
  static Term Const(ConstId id) { return Term(false, id); }

  /// Makes a variable term.
  static Term Var(VarId id) { return Term(true, id); }

  bool is_variable() const { return var_; }
  bool is_constant() const { return !var_; }

  /// The raw id, regardless of kind.
  int32_t id() const { return id_; }

  /// The constant id. Meaningful only if `is_constant()`.
  ConstId constant() const { return id_; }

  /// The variable id. Meaningful only if `is_variable()`.
  VarId variable() const { return id_; }

  friend bool operator==(const Term&, const Term&) = default;
  friend auto operator<=>(const Term&, const Term&) = default;

 private:
  Term(bool var, int32_t id) : var_(var), id_(id) {}

  bool var_;
  int32_t id_;
};

/// Renders a term as text: constants as their decimal id, variables as
/// `x<id>` (matching the paper's x, y, z ... notation up to renaming).
std::string ToString(const Term& term);

}  // namespace pw

template <>
struct std::hash<pw::Term> {
  size_t operator()(const pw::Term& t) const noexcept {
    return std::hash<int64_t>()((static_cast<int64_t>(t.is_variable()) << 32) |
                                static_cast<uint32_t>(t.id()));
  }
};

#endif  // PW_CORE_TERM_H_
