// Append-only element storage with lock-free random access.
//
// The sharable ConditionInterner (condition/interner.h) hands out dense ids
// into growing element tables, and readers resolve those ids on every
// condition operation. A plain std::vector cannot back that under sharing:
// a reallocating push_back moves the elements a concurrent reader is
// dereferencing. StableStore replaces the vector with a fixed ladder of
// geometrically growing blocks — an element, once published, never moves,
// so readers index with two loads and no lock while one writer appends.
//
// Concurrency contract:
//   - Appends must be externally serialized (the interner wraps them in its
//     storage mutex). Append publishes the element before the new size with
//     release stores.
//   - operator[] is wait-free for any index < size() as observed through an
//     acquire load of size() (or any other happens-before edge to the
//     append, e.g. reading the id out of a mutex-protected map).
//   - Clear() requires exclusive access; it resets the size but keeps the
//     allocated blocks, matching the capacity-retaining generational
//     lifecycle of the interner.
//
// Block k holds 2^(kBaseBits + k) elements, so 40 blocks cover ~2^50
// elements while index math stays a single bit_width.

#ifndef PW_UTIL_STABLE_STORE_H_
#define PW_UTIL_STABLE_STORE_H_

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <utility>

namespace pw {

template <typename T>
class StableStore {
 public:
  StableStore() = default;

  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  ~StableStore() {
    for (auto& slot : blocks_) {
      delete[] slot.load(std::memory_order_relaxed);
    }
  }

  /// Elements published so far. Safe from any thread.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// The element at `i`. Lock-free; `i` must be below a size() observed by
  /// this thread (or otherwise happen-after the publishing Append).
  const T& operator[](size_t i) const {
    size_t offset;
    size_t block = BlockOf(i, &offset);
    return blocks_[block].load(std::memory_order_acquire)[offset];
  }

  /// Appends one element and returns its index. Callers must serialize
  /// appends externally; readers may run concurrently.
  size_t Append(T value) {
    size_t i = size_.load(std::memory_order_relaxed);
    size_t offset;
    size_t block = BlockOf(i, &offset);
    T* data = blocks_[block].load(std::memory_order_relaxed);
    if (data == nullptr) {
      data = new T[BlockCapacity(block)];
      blocks_[block].store(data, std::memory_order_release);
    }
    data[offset] = std::move(value);
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

  /// Drops every element (blocks are kept, so capacity is retained). Slots
  /// keep their old values until overwritten by a later Append — acceptable
  /// for the interner's bounded high-water-mark reuse. Exclusive access
  /// required.
  void Clear() { size_.store(0, std::memory_order_release); }

 private:
  static constexpr size_t kBaseBits = 10;  // first block: 1024 elements
  static constexpr size_t kNumBlocks = 40;

  static size_t BlockOf(size_t i, size_t* offset) {
    size_t shifted = i + (size_t{1} << kBaseBits);
    size_t high = std::bit_width(shifted) - 1;
    *offset = shifted - (size_t{1} << high);
    size_t block = high - kBaseBits;
    assert(block < kNumBlocks);
    return block;
  }

  static size_t BlockCapacity(size_t block) {
    return size_t{1} << (kBaseBits + block);
  }

  std::atomic<T*> blocks_[kNumBlocks] = {};
  std::atomic<size_t> size_{0};
};

}  // namespace pw

#endif  // PW_UTIL_STABLE_STORE_H_
