// A small persistent worker pool with an indexed parallel-for.
//
// The parallel semi-naive fixpoint (ilalgebra/datalog_ctable.cc) fires each
// round's rule/delta slices across workers and then merges sequentially;
// it needs (a) persistent threads so per-worker scratch (index caches)
// survives across rounds, and (b) a worker index handed to the task body so
// scratch can be picked without locks. ParallelFor gives both: tasks are
// claimed from a shared atomic counter (work stealing, so skewed slice
// costs still balance) and the calling thread participates as worker 0.
//
// ParallelFor is a barrier: it returns only after every task ran, which is
// the happens-before edge the fixpoint's generate/replay phases rely on.
// Task bodies must not throw and must not call ParallelFor reentrantly.

#ifndef PW_UTIL_THREAD_POOL_H_
#define PW_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pw {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the thread calling ParallelFor is the
  /// remaining one. `num_threads` is clamped to at least 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs fn(task, worker) for every task in [0, count), distributed over
  /// all threads; worker is in [0, num_threads()) and identifies the thread
  /// for scratch selection. Returns after every task completed. Must not be
  /// called concurrently or reentrantly.
  void ParallelFor(size_t count,
                   const std::function<void(size_t task, size_t worker)>& fn);

 private:
  void WorkerLoop(size_t worker);
  void DrainTasks(const std::function<void(size_t, size_t)>& fn,
                  size_t worker);

  size_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t, size_t)>* job_ = nullptr;  // guarded
  size_t job_count_ = 0;                                      // guarded
  uint64_t job_id_ = 0;                                       // guarded
  size_t workers_busy_ = 0;                                   // guarded
  bool stop_ = false;                                         // guarded
  std::atomic<size_t> next_task_{0};
};

}  // namespace pw

#endif  // PW_UTIL_THREAD_POOL_H_
