#include "util/thread_pool.h"

#include <atomic>

namespace pw {

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  threads_.reserve(num_threads_ - 1);
  for (size_t w = 1; w < num_threads_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::DrainTasks(const std::function<void(size_t, size_t)>& fn,
                            size_t worker) {
  size_t count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    count = job_count_;
  }
  for (;;) {
    size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= count) break;
    fn(task, worker);
  }
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen_job = 0;
  for (;;) {
    const std::function<void(size_t, size_t)>* fn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || job_id_ != seen_job; });
      if (stop_) return;
      seen_job = job_id_;
      fn = job_;
    }
    DrainTasks(*fn, worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_busy_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(
    size_t count, const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  if (num_threads_ == 1) {
    for (size_t task = 0; task < count; ++task) fn(task, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    next_task_.store(0, std::memory_order_relaxed);
    workers_busy_ = threads_.size();
    ++job_id_;
  }
  start_cv_.notify_all();
  DrainTasks(fn, /*worker=*/0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_busy_ == 0; });
  job_ = nullptr;
}

}  // namespace pw
