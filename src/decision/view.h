// Views: the fixed QPTIME queries applied to representations.
//
// The paper's decision problems are parameterized by a query q applied to
// the represented worlds: q(rep(T)) = { q(I) | I in rep(T) }. We support the
// three families of Section 2.1 — the identity, relational algebra queries
// (positive existential when difference-free, first order otherwise), and
// pure DATALOG queries.

#ifndef PW_DECISION_VIEW_H_
#define PW_DECISION_VIEW_H_

#include <string>
#include <vector>

#include "core/instance.h"
#include "datalog/program.h"
#include "ra/expr.h"

namespace pw {

/// A fixed query from instances to instances. Value type.
class View {
 public:
  /// Default-constructs the identity query (the paper's "-").
  View() = default;

  /// The identity query, explicitly.
  static View Identity();

  /// A relational algebra query, one expression per output relation.
  static View Ra(RaQuery query);

  /// A DATALOG query: the program's fixpoint restricted to `output_preds`
  /// (in order; these become output relations 0..m-1).
  static View Datalog(DatalogProgram program, std::vector<int> output_preds);

  bool is_identity() const { return kind_ == Kind::kIdentity; }
  bool is_ra() const { return kind_ == Kind::kRa; }
  bool is_datalog() const { return kind_ == Kind::kDatalog; }

  /// Applies the query to a complete information database.
  Instance Eval(const Instance& input) const;

  /// True iff the view is (equivalent by construction to) a positive
  /// existential query: the identity, or a difference-free RA query.
  /// With `allow_neq`, != select atoms are permitted.
  bool IsPositiveExistential(bool allow_neq = false) const;

  /// All constants mentioned by the query itself (constant relations,
  /// select/projection constants, rule constants). Valuation enumeration
  /// must include these in Delta: queries are generic only modulo their own
  /// constants.
  std::vector<ConstId> Constants() const;

  const RaQuery& ra() const { return ra_; }
  const DatalogProgram& datalog() const { return datalog_; }
  const std::vector<int>& output_preds() const { return output_preds_; }

  std::string ToString() const;

 private:
  enum class Kind { kIdentity, kRa, kDatalog };

  Kind kind_ = Kind::kIdentity;
  RaQuery ra_;
  DatalogProgram datalog_;
  std::vector<int> output_preds_;
};

}  // namespace pw

#endif  // PW_DECISION_VIEW_H_
