#include "decision/membership.h"

#include <algorithm>
#include <map>
#include <set>

#include "condition/binding_env.h"
#include "condition/interner.h"
#include "ilalgebra/ctable_eval.h"
#include "solvers/bipartite_matching.h"
#include "tables/world_enum.h"

namespace pw {

namespace {

/// True iff the database is a Codd-table database: no global or local
/// conditions and every variable occurs at most once across all tuples of
/// all tables.
bool IsCoddDatabase(const CDatabase& database) {
  std::set<VarId> seen;
  for (size_t k = 0; k < database.num_tables(); ++k) {
    const CTable& t = database.table(k);
    if (!t.global().IsTautology()) return false;
    for (const CRow& row : t.rows()) {
      if (!row.local().IsTautology()) return false;
      for (const Term& term : row.tuple) {
        if (term.is_variable() && !seen.insert(term.variable()).second) {
          return false;
        }
      }
    }
  }
  return true;
}

bool ShapesMatch(const CDatabase& database, const Instance& instance) {
  if (database.num_tables() != instance.num_relations()) return false;
  for (size_t k = 0; k < database.num_tables(); ++k) {
    if (database.table(k).arity() != instance.relation(k).arity()) {
      return false;
    }
  }
  return true;
}

/// Theorem 3.1(1)'s algorithm for a single table/relation pair.
bool CoddTableMembership(const CTable& table, const Relation& relation) {
  std::vector<Fact> facts = relation.ToVector();
  int n = static_cast<int>(facts.size());
  int m = static_cast<int>(table.num_rows());
  // Bipartite graph: left = rows v_j of T, right = facts u_i of I0, with an
  // edge when some valuation maps the row onto the fact.
  BipartiteGraph g(m, n);
  for (int j = 0; j < m; ++j) {
    bool connected = false;
    for (int i = 0; i < n; ++i) {
      if (Unifiable(table.row(j).tuple, facts[i])) {
        g.AddEdge(j, i);
        connected = true;
      }
    }
    // Step (c): a row that can map onto no fact of I0 forces sigma(T) != I0.
    if (!connected) return false;
  }
  // Step (d)/(e): a matching of cardinality n covers every fact of I0 with a
  // distinct row; the remaining rows reuse any compatible fact.
  return MaxBipartiteMatching(g).size == n;
}

/// Backtracking state for MembershipSearch.
struct SearchState {
  struct RowTask {
    const CRow* row = nullptr;
    size_t table = 0;
    std::vector<const Fact*> candidates;  // facts this row could map onto
    std::vector<CondAtom> suppress_atoms;  // atoms whose negation kills it
    bool done = false;
  };

  /// One branching option for a task: either map onto a fact, or suppress
  /// by violating one local atom.
  struct Option {
    const Fact* fact = nullptr;       // null = suppression
    const CondAtom* atom = nullptr;   // suppression atom
  };

  std::vector<RowTask> tasks;
  // Per (table, fact) coverage counts and per-table uncovered tallies.
  std::vector<std::map<Fact, int>> covered;
  std::vector<int> uncovered;
  // tasks_left[k] = number of unprocessed tasks of table k (for pruning).
  std::vector<int> tasks_left;
  MembershipSearchOptions options;
  BindingEnv env;
};

bool AssertTupleEqualsFact(BindingEnv& env, const Tuple& tuple,
                           const Fact& fact) {
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (!env.AssertEqual(tuple[i], Term::Const(fact[i]))) return false;
  }
  return true;
}

/// Attempts one option against the environment. On success leaves the
/// assertions in place and returns true; on failure the caller reverts.
bool TryOption(SearchState& s, const SearchState::RowTask& task,
               const SearchState::Option& option) {
  if (option.fact != nullptr) {
    return AssertTupleEqualsFact(s.env, task.row->tuple, *option.fact) &&
           s.env.Assert(task.row->local());
  }
  return s.env.AssertAtom(Negate(*option.atom));
}

/// Dynamic most-constrained-first backtracking with forward checking: at
/// every node recompute each pending task's viable options; fail fast when
/// a task has none, branch on the task with the fewest.
bool SearchRecurse(SearchState& s, size_t remaining) {
  if (remaining == 0) {
    for (int u : s.uncovered) {
      if (u != 0) return false;
    }
    return true;
  }
  // Coverage prune: uncovered facts of table k need distinct pending tasks.
  for (size_t t = 0; t < s.uncovered.size(); ++t) {
    if (s.uncovered[t] > s.tasks_left[t]) return false;
  }

  // Forward checking: viable options per pending task, and the set of
  // facts still coverable by some pending task.
  int best = -1;
  bool forced = false;
  std::vector<SearchState::Option> best_options;
  if (s.options.forward_checking) {
    std::vector<std::set<Fact>> coverable(s.uncovered.size());
    for (size_t i = 0; i < s.tasks.size(); ++i) {
      SearchState::RowTask& task = s.tasks[i];
      if (task.done) continue;
      std::vector<SearchState::Option> options;
      for (const Fact* fact : task.candidates) {
        size_t mark = s.env.Mark();
        bool ok = AssertTupleEqualsFact(s.env, task.row->tuple, *fact) &&
                  s.env.Assert(task.row->local());
        s.env.Revert(mark);
        if (ok) {
          options.push_back({fact, nullptr});
          coverable[task.table].insert(*fact);
        }
      }
      for (const CondAtom& atom : task.suppress_atoms) {
        size_t mark = s.env.Mark();
        bool ok = s.env.AssertAtom(Negate(atom));
        s.env.Revert(mark);
        if (ok) options.push_back({nullptr, &atom});
      }
      if (options.empty()) return false;  // dead end
      if (best == -1 || options.size() < best_options.size()) {
        best = static_cast<int>(i);
        best_options = std::move(options);
        if (best_options.size() == 1) {
          forced = true;
          break;  // forced move: branch immediately
        }
      }
    }
    if (!forced && s.options.coverage_pruning) {
      // Coverage dead-end check: every still-uncovered fact must be
      // mappable by some pending task under the current bindings.
      for (size_t t = 0; t < s.uncovered.size(); ++t) {
        if (s.uncovered[t] == 0) continue;
        for (const auto& [fact, count] : s.covered[t]) {
          // covered[t] holds all facts of relation t (pre-seeded), so this
          // scan visits exactly the uncovered ones via count == 0.
          if (count == 0 && coverable[t].count(fact) == 0) return false;
        }
      }
    }
  } else {
    // Ablation mode: first pending task, raw option list.
    for (size_t i = 0; i < s.tasks.size() && best == -1; ++i) {
      if (s.tasks[i].done) continue;
      best = static_cast<int>(i);
      for (const Fact* fact : s.tasks[i].candidates) {
        best_options.push_back({fact, nullptr});
      }
      for (const CondAtom& atom : s.tasks[i].suppress_atoms) {
        best_options.push_back({nullptr, &atom});
      }
    }
  }

  SearchState::RowTask& task = s.tasks[best];
  size_t k = task.table;
  task.done = true;
  --s.tasks_left[k];
  for (const SearchState::Option& option : best_options) {
    size_t mark = s.env.Mark();
    if (TryOption(s, task, option)) {
      bool covered_new = false;
      if (option.fact != nullptr) {
        int& count = s.covered[k][*option.fact];
        if (count == 0) {
          --s.uncovered[k];
          covered_new = true;
        }
        ++count;
      }
      if (SearchRecurse(s, remaining - 1)) return true;
      if (option.fact != nullptr) {
        int& count = s.covered[k][*option.fact];
        --count;
        if (covered_new) ++s.uncovered[k];
      }
    }
    s.env.Revert(mark);
  }
  task.done = false;
  ++s.tasks_left[k];
  return false;
}

}  // namespace

std::optional<bool> MembershipCoddTables(const CDatabase& database,
                                         const Instance& instance) {
  if (!IsCoddDatabase(database)) return std::nullopt;
  if (!ShapesMatch(database, instance)) return false;
  for (size_t k = 0; k < database.num_tables(); ++k) {
    if (!CoddTableMembership(database.table(k), instance.relation(k))) {
      return false;
    }
  }
  return true;
}

bool MembershipSearch(const CDatabase& database, const Instance& instance,
                      const MembershipSearchOptions& options) {
  if (!ShapesMatch(database, instance)) return false;

  SearchState s;
  s.options = options;
  if (!s.env.Assert(database.CombinedGlobal())) {
    return false;  // rep(database) is empty
  }

  size_t num_tables = database.num_tables();
  s.covered.resize(num_tables);
  s.uncovered.assign(num_tables, 0);
  s.tasks_left.assign(num_tables, 0);

  std::vector<std::vector<Fact>> facts(num_tables);
  for (size_t k = 0; k < num_tables; ++k) {
    facts[k] = instance.relation(k).ToVector();
    s.uncovered[k] = static_cast<int>(facts[k].size());
    for (const Fact& f : facts[k]) s.covered[k][f] = 0;
  }

  ConditionInterner& interner = ConditionInterner::Global();
  for (size_t k = 0; k < num_tables; ++k) {
    for (const CRow& row : database.table(k).rows()) {
      // A row whose local condition is unsatisfiable is "off" in every world
      // — no task needed (memoized, so repeated searches over the same
      // tables skip the closure entirely).
      if (!interner.Satisfiable(row.LocalId(interner))) continue;
      SearchState::RowTask task;
      task.row = &row;
      task.table = k;
      for (const Fact& f : facts[k]) {
        if (Unifiable(row.tuple, f)) task.candidates.push_back(&f);
      }
      Conjunction simplified = row.local().Simplified();
      for (const CondAtom& atom : simplified.atoms()) {
        task.suppress_atoms.push_back(atom);
      }
      // A row with no compatible fact and no suppression handle makes
      // membership impossible.
      if (task.candidates.empty() && task.suppress_atoms.empty()) {
        return false;
      }
      s.tasks.push_back(std::move(task));
      ++s.tasks_left[k];
    }
  }

  return SearchRecurse(s, s.tasks.size());
}

bool Membership(const CDatabase& database, const Instance& instance) {
  if (auto fast = MembershipCoddTables(database, instance)) return *fast;
  return MembershipSearch(database, instance);
}

bool MembershipInView(const View& view, const CDatabase& database,
                      const Instance& instance) {
  if (view.is_identity()) return Membership(database, instance);
  if (view.is_ra() && view.IsPositiveExistential(/*allow_neq=*/true)) {
    // c-tables are a representation system for positive existential queries:
    // compute the Imielinski–Lipski image and decide membership on it
    // directly — far better pruning than enumerating valuations.
    if (auto image = EvalQueryOnCTables(view.ra(), database)) {
      return MembershipSearch(*image, instance);
    }
  }
  bool found = false;
  WorldEnumOptions options;
  options.extra_constants = instance.Constants();
  for (ConstId c : view.Constants()) options.extra_constants.push_back(c);
  ForEachSatisfyingValuation(
      database, options,
      [&view, &database, &instance, &found](const Valuation& v) {
        if (view.Eval(v.Apply(database)) == instance) {
          found = true;
          return false;  // stop
        }
        return true;
      });
  return found;
}

}  // namespace pw
