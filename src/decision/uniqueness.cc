#include "decision/uniqueness.h"

#include "condition/interner.h"
#include "decision/membership.h"
#include "decision/world_csp.h"
#include "ilalgebra/ctable_eval.h"
#include "ra/eval.h"
#include "ra/properties.h"
#include "tables/world_enum.h"

namespace pw {

namespace {

bool HasLocalConditions(const CDatabase& database) {
  for (size_t k = 0; k < database.num_tables(); ++k) {
    for (const CRow& row : database.table(k).rows()) {
      if (!row.local().IsTautology()) return true;
    }
  }
  return false;
}

/// rep(table with no conditions, matrix M) == {relation}? PTIME core of
/// Thm 3.2(1) after normalization: M must be ground and equal the relation.
bool GroundMatrixEquals(const CTable& table, const Relation& relation) {
  Relation matrix(table.arity());
  for (const CRow& row : table.rows()) {
    if (!IsGround(row.tuple)) return false;
    matrix.Insert(ToFact(row.tuple));
  }
  return matrix == relation;
}

}  // namespace

std::optional<bool> UniqGTables(const CDatabase& database,
                                const Instance& instance) {
  if (HasLocalConditions(database)) return std::nullopt;
  if (database.num_tables() != instance.num_relations()) return false;

  Conjunction global = database.CombinedGlobal();
  if (!ConditionInterner::Global().CachedSatisfiable(global)) {
    return false;  // rep empty, never a singleton
  }

  auto canon = global.CanonicalSubstitution();
  for (size_t k = 0; k < database.num_tables(); ++k) {
    CTable normalized = database.table(k).Substitute(canon);
    if (normalized.arity() != instance.relation(k).arity()) return false;
    if (!GroundMatrixEquals(normalized, instance.relation(k))) return false;
  }
  return true;
}

std::optional<bool> UniqPosExistentialView(const RaQuery& query,
                                           const CDatabase& database,
                                           const Instance& instance) {
  if (!IsPositiveExistential(query, /*allow_neq=*/false)) return std::nullopt;
  if (database.Kind() > TableKind::kETable) return std::nullopt;
  if (query.size() != instance.num_relations()) return false;

  // Step (a): the c-table representation of the view, computed in PTIME.
  auto result = EvalQueryOnCTables(query, database);
  if (!result) return std::nullopt;

  // (alpha): every fact of I is certain. For positive existential queries on
  // e-tables, certainty coincides with naive evaluation — treat each
  // variable as a fresh labeled null and evaluate the query directly.
  {
    std::vector<ConstId> fresh = FreshConstants(
        database, instance.Constants(), database.Variables().size());
    std::unordered_map<VarId, Term> to_null;
    size_t next = 0;
    for (VarId v : database.Variables()) {
      to_null.emplace(v, Term::Const(fresh[next++]));
    }
    std::vector<Relation> rels;
    for (size_t k = 0; k < database.num_tables(); ++k) {
      CTable grounded = database.table(k).Substitute(to_null);
      Relation r(grounded.arity());
      for (const CRow& row : grounded.rows()) r.Insert(ToFact(row.tuple));
      rels.push_back(std::move(r));
    }
    Instance naive = EvalQuery(query, Instance(std::move(rels)));
    for (size_t p = 0; p < instance.num_relations(); ++p) {
      for (const Fact& u : instance.relation(p)) {
        if (!naive.relation(p).Contains(u)) return false;  // not certain
      }
    }
  }

  // (beta): for each output table, each row t with local condition phi and
  // each DNF disjunct phi_i (our IL-algebra keeps conjunctions, so phi is its
  // own single disjunct): incorporate phi_i's equalities into the full
  // matrix and require the resulting e-table to represent exactly {I_p}.
  for (size_t p = 0; p < result->num_tables(); ++p) {
    const CTable& rt = result->table(p);
    for (const CRow& row : rt.rows()) {
      // Positive existential without != yields equality-only conjunctions.
      Conjunction phi = row.local().Simplified();
      if (!ConditionInterner::Global().CachedSatisfiable(phi)) {
        continue;  // row can never be on
      }
      auto subst = phi.CanonicalSubstitution();
      CTable t_ti(rt.arity());
      for (const CRow& r2 : rt.rows()) t_ti.AddRow(r2.tuple);
      t_ti = t_ti.Substitute(subst);
      if (!GroundMatrixEquals(t_ti, instance.relation(p))) return false;
    }
  }
  return true;
}

bool UniquenessSearch(const View& view, const CDatabase& database,
                      const Instance& instance) {
  if (RepIsEmpty(database)) return false;
  if (view.is_identity()) {
    return Membership(database, instance) &&
           !ExistsWorldOtherThan(database, instance);
  }
  if (view.is_ra() && view.IsPositiveExistential(/*allow_neq=*/true)) {
    if (auto image = EvalQueryOnCTables(view.ra(), database)) {
      return MembershipSearch(*image, instance) &&
             !ExistsWorldOtherThan(*image, instance);
    }
  }
  bool unique = true;
  bool any_world = false;
  WorldEnumOptions options;
  options.extra_constants = instance.Constants();
  for (ConstId c : view.Constants()) options.extra_constants.push_back(c);
  ForEachWorld(database, options,
               [&view, &instance, &unique, &any_world](const Instance& world,
                                                       const Valuation&) {
                 any_world = true;
                 if (view.Eval(world) != instance) {
                   unique = false;
                   return false;  // counterexample found
                 }
                 return true;
               });
  return unique && any_world;
}

bool Uniqueness(const View& view, const CDatabase& database,
                const Instance& instance) {
  if (view.is_identity()) {
    if (auto fast = UniqGTables(database, instance)) return *fast;
  } else if (view.is_ra()) {
    if (auto fast = UniqPosExistentialView(view.ra(), database, instance)) {
      return *fast;
    }
  }
  return UniquenessSearch(view, database, instance);
}

}  // namespace pw
