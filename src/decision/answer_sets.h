// Whole-answer-set computation: all possible and all certain answers of a
// query over a c-database.
//
// The point decision problems POSS/CERT ask about one fact; practical
// incomplete-information systems want the full sets
//
//   possible(q, T) = union over worlds of q(rep(T))
//   certain(q, T)  = intersection over worlds of q(rep(T))
//
// Both sets are restricted here to *ground answers over the constant domain
// of the inputs* (database constants + query constants): answers mentioning
// other constants exist (a null can take any value) but are never certain
// and are representable only symbolically — the c-table image itself, which
// the ilalgebra/ modules expose, is the exact symbolic answer.

#ifndef PW_DECISION_ANSWER_SETS_H_
#define PW_DECISION_ANSWER_SETS_H_

#include "core/instance.h"
#include "decision/view.h"
#include "tables/ctable.h"

namespace pw {

/// All ground possible answers over the input constant domain: facts f with
/// f in q(I) for some world I. Uses the Imielinski–Lipski image for
/// positive existential RA views, the conditioned DATALOG fixpoint for
/// DATALOG views, and world enumeration for first order views.
Instance PossibleAnswers(const View& view, const CDatabase& database);

/// All certain answers over the input constant domain: facts f with f in
/// q(I) for every world I. (If rep is empty, certainty is vacuous; by
/// convention this returns the possible-answer candidates, which are then
/// all of them.)
Instance CertainAnswers(const View& view, const CDatabase& database);

}  // namespace pw

#endif  // PW_DECISION_ANSWER_SETS_H_
