#include "decision/certainty.h"

#include <set>

#include "datalog/certain.h"
#include "decision/world_csp.h"
#include "ilalgebra/ctable_eval.h"
#include "tables/world_enum.h"

namespace pw {

namespace {

bool HasLocalConditions(const CDatabase& database) {
  for (size_t k = 0; k < database.num_tables(); ++k) {
    for (const CRow& row : database.table(k).rows()) {
      if (!row.local().IsTautology()) return true;
    }
  }
  return false;
}

std::vector<ConstId> PatternConstants(const std::vector<LocatedFact>& pattern) {
  std::set<ConstId> seen;
  for (const LocatedFact& lf : pattern) {
    seen.insert(lf.fact.begin(), lf.fact.end());
  }
  return {seen.begin(), seen.end()};
}

/// Wraps the identity over a c-database as the trivial DATALOG program
/// copy_p(x...) :- p(x...), so the identity view rides the same PTIME path.
std::pair<DatalogProgram, std::vector<int>> IdentityAsDatalog(
    const CDatabase& database) {
  size_t n = database.num_tables();
  std::vector<int> arities;
  for (size_t k = 0; k < n; ++k) arities.push_back(database.table(k).arity());
  for (size_t k = 0; k < n; ++k) arities.push_back(database.table(k).arity());
  DatalogProgram program(arities, /*num_edb=*/n);
  std::vector<int> outputs;
  for (size_t k = 0; k < n; ++k) {
    Tuple args;
    for (int i = 0; i < database.table(k).arity(); ++i) {
      args.push_back(Term::Var(static_cast<VarId>(i)));
    }
    DatalogRule rule;
    rule.head = {static_cast<int>(n + k), args};
    rule.body = {{static_cast<int>(k), args}};
    program.AddRule(std::move(rule));
    outputs.push_back(static_cast<int>(n + k));
  }
  return {std::move(program), std::move(outputs)};
}

}  // namespace

std::optional<bool> CertDatalogGTables(
    const View& view, const CDatabase& database,
    const std::vector<LocatedFact>& pattern) {
  if (HasLocalConditions(database)) return std::nullopt;
  if (!view.is_datalog() && !view.is_identity()) return std::nullopt;
  if (RepIsEmpty(database)) return true;  // vacuous

  const DatalogProgram* program = nullptr;
  const std::vector<int>* outputs = nullptr;
  DatalogProgram identity_program;
  std::vector<int> identity_outputs;
  if (view.is_identity()) {
    auto [p, o] = IdentityAsDatalog(database);
    identity_program = std::move(p);
    identity_outputs = std::move(o);
    program = &identity_program;
    outputs = &identity_outputs;
  } else {
    program = &view.datalog();
    outputs = &view.output_preds();
  }

  auto certain = DatalogCertainAnswers(*program, database);
  if (!certain) return std::nullopt;
  for (const LocatedFact& lf : pattern) {
    if (lf.relation >= outputs->size()) return false;
    if (!certain->relation((*outputs)[lf.relation]).Contains(lf.fact)) {
      return false;
    }
  }
  return true;
}

bool CertaintySearch(const View& view, const CDatabase& database,
                     const std::vector<LocatedFact>& pattern) {
  bool certain = true;
  WorldEnumOptions options;
  options.extra_constants = PatternConstants(pattern);
  for (ConstId c : view.Constants()) options.extra_constants.push_back(c);
  ForEachWorld(database, options,
               [&view, &pattern, &certain](const Instance& world,
                                           const Valuation&) {
                 if (!ContainsAll(view.Eval(world), pattern)) {
                   certain = false;
                   return false;  // counterexample world
                 }
                 return true;
               });
  return certain;
}

bool Certainty(const View& view, const CDatabase& database,
               const std::vector<LocatedFact>& pattern) {
  if (auto fast = CertDatalogGTables(view, database, pattern)) return *fast;
  // c-tables with positive existential views: decide via the
  // Imielinski–Lipski image and a per-fact "is it missing somewhere" CSP.
  if (view.is_ra() && view.IsPositiveExistential(/*allow_neq=*/true)) {
    if (auto image = EvalQueryOnCTables(view.ra(), database)) {
      if (RepIsEmpty(database)) return true;  // vacuous
      for (const LocatedFact& lf : pattern) {
        if (ExistsWorldMissingFact(*image, lf.relation, lf.fact)) {
          return false;
        }
      }
      return true;
    }
  }
  if (view.is_identity()) {
    if (RepIsEmpty(database)) return true;  // vacuous
    for (const LocatedFact& lf : pattern) {
      if (ExistsWorldMissingFact(database, lf.relation, lf.fact)) {
        return false;
      }
    }
    return true;
  }
  return CertaintySearch(view, database, pattern);
}

bool CertaintyFactwise(const View& view, const CDatabase& database,
                       const std::vector<LocatedFact>& pattern) {
  for (const LocatedFact& lf : pattern) {
    if (!Certainty(view, database, {lf})) return false;
  }
  return true;
}

}  // namespace pw
