#include "decision/certainty.h"

#include <memory>
#include <set>

#include "datalog/certain.h"
#include "decision/world_csp.h"
#include "ilalgebra/ctable_eval.h"
#include "tables/world_enum.h"

namespace pw {

namespace {

bool HasLocalConditions(const CDatabase& database) {
  for (size_t k = 0; k < database.num_tables(); ++k) {
    for (const CRow& row : database.table(k).rows()) {
      if (!row.local().IsTautology()) return true;
    }
  }
  return false;
}

std::vector<ConstId> PatternConstants(const std::vector<LocatedFact>& pattern) {
  std::set<ConstId> seen;
  for (const LocatedFact& lf : pattern) {
    seen.insert(lf.fact.begin(), lf.fact.end());
  }
  return {seen.begin(), seen.end()};
}

/// Wraps the identity over a c-database as the trivial DATALOG program
/// copy_p(x...) :- p(x...), so the identity view rides the same PTIME path.
std::pair<DatalogProgram, std::vector<int>> IdentityAsDatalog(
    const CDatabase& database) {
  size_t n = database.num_tables();
  std::vector<int> arities;
  for (size_t k = 0; k < n; ++k) arities.push_back(database.table(k).arity());
  for (size_t k = 0; k < n; ++k) arities.push_back(database.table(k).arity());
  DatalogProgram program(arities, /*num_edb=*/n);
  std::vector<int> outputs;
  for (size_t k = 0; k < n; ++k) {
    Tuple args;
    for (int i = 0; i < database.table(k).arity(); ++i) {
      args.push_back(Term::Var(static_cast<VarId>(i)));
    }
    DatalogRule rule;
    rule.head = {static_cast<int>(n + k), args};
    rule.body = {{static_cast<int>(k), args}};
    program.AddRule(std::move(rule));
    outputs.push_back(static_cast<int>(n + k));
  }
  return {std::move(program), std::move(outputs)};
}

}  // namespace

bool CertainFactInTable(const CTable& table, const Fact& fact, ConjId global_id,
                        ConditionBackend& backend) {
  ConditionInterner& interner = backend.interner();
  CondId disj = ConditionBackend::kFalseCond;
  if (static_cast<size_t>(table.arity()) == fact.size()) {
    for (const CRow& row : table.rows()) {
      // The world contains `fact` through this row iff the row's condition
      // holds and every tuple position valuates to the fact's constant.
      Conjunction eqs;
      bool mismatch = false;
      for (size_t i = 0; i < fact.size(); ++i) {
        CondAtom eq = Eq(Term::Const(fact[i]), row.tuple[i]);
        if (IsTriviallyFalse(eq)) {
          mismatch = true;
          break;
        }
        if (!IsTriviallyTrue(eq)) eqs.Add(eq);
      }
      if (mismatch) continue;
      ConjId cond = row.LocalId(interner);
      if (eqs.size() > 0) cond = interner.And(cond, interner.Intern(eqs));
      if (cond == ConditionInterner::kFalseConj) continue;
      disj = backend.Or(disj, backend.FromConj(cond));
      if (disj == ConditionBackend::kTrueCond) break;  // already a tautology
    }
  }
  return backend.TautologyUnder(global_id, disj);
}

std::optional<bool> CertDatalogGTables(
    const View& view, const CDatabase& database,
    const std::vector<LocatedFact>& pattern) {
  if (HasLocalConditions(database)) return std::nullopt;
  if (!view.is_datalog() && !view.is_identity()) return std::nullopt;
  if (RepIsEmpty(database)) return true;  // vacuous

  const DatalogProgram* program = nullptr;
  const std::vector<int>* outputs = nullptr;
  DatalogProgram identity_program;
  std::vector<int> identity_outputs;
  if (view.is_identity()) {
    auto [p, o] = IdentityAsDatalog(database);
    identity_program = std::move(p);
    identity_outputs = std::move(o);
    program = &identity_program;
    outputs = &identity_outputs;
  } else {
    program = &view.datalog();
    outputs = &view.output_preds();
  }

  auto certain = DatalogCertainAnswers(*program, database);
  if (!certain) return std::nullopt;
  for (const LocatedFact& lf : pattern) {
    if (lf.relation >= outputs->size()) return false;
    if (!certain->relation((*outputs)[lf.relation]).Contains(lf.fact)) {
      return false;
    }
  }
  return true;
}

bool CertaintySearch(const View& view, const CDatabase& database,
                     const std::vector<LocatedFact>& pattern) {
  bool certain = true;
  WorldEnumOptions options;
  options.extra_constants = PatternConstants(pattern);
  for (ConstId c : view.Constants()) options.extra_constants.push_back(c);
  ForEachWorld(database, options,
               [&view, &pattern, &certain](const Instance& world,
                                           const Valuation&) {
                 if (!ContainsAll(view.Eval(world), pattern)) {
                   certain = false;
                   return false;  // counterexample world
                 }
                 return true;
               });
  return certain;
}

bool Certainty(const View& view, const CDatabase& database,
               const std::vector<LocatedFact>& pattern) {
  if (auto fast = CertDatalogGTables(view, database, pattern)) return *fast;
  // c-tables with positive existential views: decide via the
  // Imielinski–Lipski image and a per-fact certainty tautology through the
  // configured condition backend (the per-fact "is it missing somewhere"
  // CSP, ExistsWorldMissingFact, stays as the cross-checked baseline).
  if (view.is_ra() && view.IsPositiveExistential(/*allow_neq=*/true)) {
    if (auto image = EvalQueryOnCTables(view.ra(), database)) {
      if (RepIsEmpty(database)) return true;  // vacuous
      ConditionInterner& interner = ConditionInterner::Global();
      std::unique_ptr<ConditionBackend> backend =
          MakeConditionBackend(ConditionBackendKind::kDefault, interner);
      ConjId global_id = image->CombinedGlobalId(interner);
      for (const LocatedFact& lf : pattern) {
        if (lf.relation >= image->num_tables() ||
            !CertainFactInTable(image->table(lf.relation), lf.fact,
                                global_id, *backend)) {
          return false;
        }
      }
      return true;
    }
  }
  if (view.is_identity()) {
    if (RepIsEmpty(database)) return true;  // vacuous
    ConditionInterner& interner = ConditionInterner::Global();
    std::unique_ptr<ConditionBackend> backend =
        MakeConditionBackend(ConditionBackendKind::kDefault, interner);
    ConjId global_id = database.CombinedGlobalId(interner);
    for (const LocatedFact& lf : pattern) {
      if (lf.relation >= database.num_tables() ||
          !CertainFactInTable(database.table(lf.relation), lf.fact,
                              global_id, *backend)) {
        return false;
      }
    }
    return true;
  }
  return CertaintySearch(view, database, pattern);
}

bool CertaintyFactwise(const View& view, const CDatabase& database,
                       const std::vector<LocatedFact>& pattern) {
  for (const LocatedFact& lf : pattern) {
    if (!Certainty(view, database, {lf})) return false;
  }
  return true;
}

}  // namespace pw
