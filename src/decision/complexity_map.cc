#include "decision/complexity_map.h"

namespace pw {

std::string ToString(RepKind kind) {
  switch (kind) {
    case RepKind::kInstance:
      return "instance";
    case RepKind::kCoddTable:
      return "table";
    case RepKind::kETable:
      return "e-table";
    case RepKind::kITable:
      return "i-table";
    case RepKind::kGTable:
      return "g-table";
    case RepKind::kCTable:
      return "c-table";
    case RepKind::kView:
      return "view";
  }
  return "?";
}

std::string ToString(ComplexityClass c) {
  switch (c) {
    case ComplexityClass::kPTime:
      return "PTIME";
    case ComplexityClass::kNp:
      return "NP";
    case ComplexityClass::kCoNp:
      return "coNP";
    case ComplexityClass::kPi2p:
      return "Pi2p";
  }
  return "?";
}

RepKind RepKindOf(const CDatabase& database) {
  if (database.Variables().empty() &&
      database.CombinedGlobal().IsTautology()) {
    return RepKind::kInstance;
  }
  switch (database.Kind()) {
    case TableKind::kCoddTable:
      return RepKind::kCoddTable;
    case TableKind::kETable:
      return RepKind::kETable;
    case TableKind::kITable:
      return RepKind::kITable;
    case TableKind::kGTable:
      return RepKind::kGTable;
    case TableKind::kCTable:
      return RepKind::kCTable;
  }
  return RepKind::kCTable;
}

ComplexityClass ContainmentComplexity(RepKind lhs, RepKind rhs) {
  using C = ComplexityClass;
  // Columns follow Fig. 2's horizontal dimension (the superset side), rows
  // the vertical dimension (the subset side). Order of RepKind:
  // instance, table, e-table, i-table, g-table, c-table, view.
  static constexpr C kFig2[7][7] = {
      // rhs: instance  table    e-table  i-table  g-table  c-table  view
      /* lhs instance */
      {C::kPTime, C::kPTime, C::kNp, C::kNp, C::kNp, C::kNp, C::kNp},
      /* lhs table */
      {C::kPTime, C::kPTime, C::kNp, C::kPi2p, C::kPi2p, C::kPi2p, C::kPi2p},
      /* lhs e-table */
      {C::kPTime, C::kPTime, C::kNp, C::kPi2p, C::kPi2p, C::kPi2p, C::kPi2p},
      /* lhs i-table */
      {C::kPTime, C::kPTime, C::kNp, C::kPi2p, C::kPi2p, C::kPi2p, C::kPi2p},
      /* lhs g-table */
      {C::kPTime, C::kPTime, C::kNp, C::kPi2p, C::kPi2p, C::kPi2p, C::kPi2p},
      /* lhs c-table */
      {C::kCoNp, C::kCoNp, C::kPi2p, C::kPi2p, C::kPi2p, C::kPi2p, C::kPi2p},
      /* lhs view */
      {C::kCoNp, C::kCoNp, C::kPi2p, C::kPi2p, C::kPi2p, C::kPi2p, C::kPi2p},
  };
  return kFig2[static_cast<int>(lhs)][static_cast<int>(rhs)];
}

ComplexityClass MembershipComplexity(RepKind rep) {
  switch (rep) {
    case RepKind::kInstance:
    case RepKind::kCoddTable:
      return ComplexityClass::kPTime;  // Thm 3.1(1)
    default:
      return ComplexityClass::kNp;  // Thm 3.1(2,3,4) + Prop 2.1(2)
  }
}

ComplexityClass UniquenessComplexity(RepKind rep) {
  switch (rep) {
    case RepKind::kInstance:
    case RepKind::kCoddTable:
    case RepKind::kETable:
    case RepKind::kITable:
    case RepKind::kGTable:
      return ComplexityClass::kPTime;  // Thm 3.2(1)
    case RepKind::kCTable:
    case RepKind::kView:
      return ComplexityClass::kCoNp;  // Thm 3.2(3,4) + Prop 2.1(3)
  }
  return ComplexityClass::kCoNp;
}

ComplexityClass UniquenessComplexityPosExistentialETable() {
  return ComplexityClass::kPTime;  // Thm 3.2(2)
}

ComplexityClass PossibilityUnboundedComplexity(RepKind rep) {
  switch (rep) {
    case RepKind::kInstance:
    case RepKind::kCoddTable:
      return ComplexityClass::kPTime;  // Thm 5.1(1)
    default:
      return ComplexityClass::kNp;  // Thm 5.1(2,3,4) + Prop 2.1(4)
  }
}

ComplexityClass PossibilityBoundedComplexity(QueryFragment fragment) {
  switch (fragment) {
    case QueryFragment::kPositiveExistential:
      return ComplexityClass::kPTime;  // Thm 5.2(1)
    case QueryFragment::kFirstOrder:
    case QueryFragment::kDatalog:
      return ComplexityClass::kNp;  // Thm 5.2(2,3)
  }
  return ComplexityClass::kNp;
}

ComplexityClass CertaintyComplexity(QueryFragment fragment, RepKind rep) {
  if (fragment == QueryFragment::kDatalog ||
      fragment == QueryFragment::kPositiveExistential) {
    if (rep != RepKind::kCTable && rep != RepKind::kView) {
      return ComplexityClass::kPTime;  // Thm 5.3(1)
    }
  }
  return ComplexityClass::kCoNp;  // Thm 5.3(2,3) + Prop 2.1(5)
}

}  // namespace pw
