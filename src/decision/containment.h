// The containment problem CONT(q0, q) — Theorems 4.1, 4.2 and Fig. 2.
//
//   input: c-databases for the candidate-subset worlds (lhs) and the
//          candidate-superset worlds (rhs); queries q0 (lhs) and q (rhs)
//   question: q0(rep(lhs)) subseteq q(rep(rhs))?
//
// Upper bounds reproduced here:
//   - lhs g-tables, rhs Codd-tables : PTIME, by freezing (Thm 4.1(3))
//   - lhs g-tables, rhs e-tables    : NP, freezing + NP membership (4.1(2))
//   - any lhs view, rhs Codd-tables : coNP, forall-valuation loop with a
//                                     PTIME membership inside (Thm 4.1(1))
//   - general                       : Pi-2-p, forall-valuation loop with an
//                                     NP membership inside (Prop. 2.1(1))

#ifndef PW_DECISION_CONTAINMENT_H_
#define PW_DECISION_CONTAINMENT_H_

#include <optional>

#include "decision/view.h"
#include "tables/ctable.h"

namespace pw {

/// Freezing (the Claim in Theorem 4.1): replaces every variable of the
/// normalized lhs by a distinct fresh constant, yielding the canonical
/// instance K0 with K0 in rep(lhs). `avoid` lists additional constants the
/// fresh ones must not collide with.
Instance Freeze(const CDatabase& database, const std::vector<ConstId>& avoid);

/// PTIME containment: lhs a g-table database, rhs a Codd-table database
/// (identity queries both sides). rep(lhs) subseteq rep(rhs) iff
/// Freeze(lhs) in rep(rhs), decided by bipartite matching. Returns
/// std::nullopt if the inputs are outside this fragment.
std::optional<bool> ContGTablesInCoddTables(const CDatabase& lhs,
                                            const CDatabase& rhs);

/// NP containment: lhs a g-table database, rhs an e-table database
/// (identity queries). Freezing plus exact membership search. Returns
/// std::nullopt if the inputs are outside this fragment.
std::optional<bool> ContGTablesInETables(const CDatabase& lhs,
                                         const CDatabase& rhs);

/// coNP containment: any view of any lhs c-database, rhs a Codd-table
/// database with the identity query. Enumerates lhs valuations; each
/// membership test inside is the PTIME matching algorithm. Returns
/// std::nullopt if rhs is not a Codd-table database.
std::optional<bool> ContViewInCoddTables(const View& lhs_view,
                                         const CDatabase& lhs,
                                         const CDatabase& rhs);

/// The general Pi-2-p procedure: for every valuation of the lhs (up to
/// fresh-constant renaming), test membership of the lhs image in the rhs
/// view. Exponential in both input sizes in the worst case — as the
/// Pi-2-p-completeness results of Theorem 4.2 require.
bool ContainmentSearch(const View& lhs_view, const CDatabase& lhs,
                       const View& rhs_view, const CDatabase& rhs);

/// Dispatcher: picks the cheapest applicable procedure above.
bool Containment(const View& lhs_view, const CDatabase& lhs,
                 const View& rhs_view, const CDatabase& rhs);

}  // namespace pw

#endif  // PW_DECISION_CONTAINMENT_H_
