#include "decision/possibility.h"

#include <functional>
#include <map>
#include <set>

#include "condition/binding_env.h"
#include "condition/interner.h"
#include "datalog/magic.h"
#include "ilalgebra/ctable_eval.h"
#include "ilalgebra/datalog_ctable.h"
#include "ra/properties.h"
#include "solvers/bipartite_matching.h"
#include "tables/world_enum.h"

namespace pw {

namespace {

bool IsCoddDatabase(const CDatabase& database) {
  return database.Kind() == TableKind::kCoddTable;
}

std::vector<ConstId> PatternConstants(const std::vector<LocatedFact>& pattern) {
  std::set<ConstId> seen;
  for (const LocatedFact& lf : pattern) {
    seen.insert(lf.fact.begin(), lf.fact.end());
  }
  return {seen.begin(), seen.end()};
}

/// Backtracking over pattern facts: assign each to a row of the image
/// c-table whose tuple can unify with it, consistently.
bool AssignPattern(const CDatabase& image, const Conjunction& global,
                   const std::vector<LocatedFact>& pattern) {
  ConditionInterner& interner = ConditionInterner::Global();
  if (!interner.CachedSatisfiable(global)) return false;  // rep empty

  BindingEnv env;
  env.Assert(global);

  std::function<bool(size_t)> go = [&](size_t i) {
    if (i == pattern.size()) return true;
    const LocatedFact& lf = pattern[i];
    if (lf.relation >= image.num_tables()) return false;
    const CTable& table = image.table(lf.relation);
    if (static_cast<size_t>(table.arity()) != lf.fact.size()) return false;
    for (const CRow& row : table.rows()) {
      if (!Unifiable(row.tuple, lf.fact)) continue;
      // Memoized fast reject: a row whose local can never hold at all need
      // not be tried against the environment (the verdict rides on the row's
      // cached interned id).
      if (!interner.Satisfiable(row.LocalId(interner))) continue;
      size_t mark = env.Mark();
      bool ok = true;
      for (size_t p = 0; p < lf.fact.size(); ++p) {
        if (!env.AssertEqual(row.tuple[p], Term::Const(lf.fact[p]))) {
          ok = false;
          break;
        }
      }
      if (ok && env.Assert(row.local()) && go(i + 1)) return true;
      env.Revert(mark);
    }
    return false;
  };
  return go(0);
}

}  // namespace

std::vector<LocatedFact> ToLocatedFacts(const Instance& pattern) {
  std::vector<LocatedFact> out;
  for (size_t p = 0; p < pattern.num_relations(); ++p) {
    for (const Fact& f : pattern.relation(p)) out.push_back({p, f});
  }
  return out;
}

std::optional<bool> PossUnboundedCoddTables(const CDatabase& database,
                                            const Instance& pattern) {
  if (!IsCoddDatabase(database)) return std::nullopt;
  if (pattern.num_relations() > database.num_tables()) return false;
  for (size_t k = 0; k < pattern.num_relations(); ++k) {
    const Relation& rel = pattern.relation(k);
    if (rel.empty()) continue;
    const CTable& table = database.table(k);
    if (table.arity() != rel.arity()) return false;
    std::vector<Fact> facts = rel.ToVector();
    int n = static_cast<int>(facts.size());
    BipartiteGraph g(n, static_cast<int>(table.num_rows()));
    for (int i = 0; i < n; ++i) {
      for (size_t j = 0; j < table.num_rows(); ++j) {
        if (Unifiable(table.row(j).tuple, facts[i])) {
          g.AddEdge(i, static_cast<int>(j));
        }
      }
    }
    if (MaxBipartiteMatching(g).size != n) return false;
  }
  return true;
}

std::optional<bool> PossDatalogDemand(const View& view,
                                      const CDatabase& database,
                                      const std::vector<LocatedFact>& pattern) {
  if (!view.is_datalog()) return std::nullopt;
  ConditionInterner& interner = ConditionInterner::Global();
  ConjId global_id = database.CombinedGlobalId(interner);
  if (!interner.Satisfiable(global_id)) return false;  // rep empty

  const DatalogProgram& program = view.datalog();
  // One demand query per pattern fact: all positions bound, so each
  // restricted row's condition says exactly when the fact is in the view.
  // Conditioned fixpoints can grow exponentially even under demand (the
  // paper's lower bounds), so each query runs under a derivation budget;
  // exhaustion returns nullopt and the dispatcher falls back to the
  // per-world search.
  size_t edb_rows = 0;
  for (size_t k = 0; k < database.num_tables(); ++k) {
    edb_rows += database.table(k).num_rows();
  }
  DatalogCTableOptions options;
  options.max_derived_rows = 1024 + 16 * edb_rows;
  std::vector<std::vector<ConjId>> alternatives;
  // Static gate, cached per goal predicate (the adornment structure depends
  // only on the all-bound binding pattern, not on the pattern constants):
  // if some demanded predicate ends up with an all-free binding pattern,
  // demand for it degenerates to the full fixpoint (the SAT gadget's shape
  // — its recursive body atoms receive no bindings), so the demand path
  // buys nothing and the search is the better bet. DemandStaysBound runs
  // only the adornment discovery, not the full rewrite.
  std::map<int, bool> gate_by_goal;
  // Repeated (goal, fact) pairs reuse the first query's condition list
  // instead of re-running the demand fixpoint.
  std::map<std::pair<int, Fact>, std::vector<ConjId>> conds_by_fact;
  for (const LocatedFact& lf : pattern) {
    if (lf.relation >= view.output_preds().size()) return false;
    int goal = view.output_preds()[lf.relation];
    if (static_cast<size_t>(program.arity(goal)) != lf.fact.size()) {
      return false;
    }
    std::vector<std::optional<ConstId>> bindings(lf.fact.begin(),
                                                 lf.fact.end());
    auto [gate, inserted] = gate_by_goal.try_emplace(goal, true);
    if (inserted) {
      gate->second = DemandStaysBound(program, {goal, bindings});
    }
    if (!gate->second) return std::nullopt;
    auto [cached, fresh] = conds_by_fact.try_emplace({goal, lf.fact});
    if (fresh) {
      ConditionedFixpointStats stats;
      CTable restricted =
          DatalogQueryOnCTables(program, database, goal, bindings, &stats,
                                options);
      if (stats.budget_exhausted) return std::nullopt;
      for (const CRow& row : restricted.rows()) {
        cached->second.push_back(row.LocalId(interner));
      }
    }
    alternatives.push_back(cached->second);
    if (alternatives.back().empty()) {
      return false;  // this fact is in no world's view
    }
  }
  // Backtracking over one condition per fact; the partial conjunction is an
  // interned id, so dead prefixes are cut on an O(1) satisfiability check.
  std::function<bool(size_t, ConjId)> go = [&](size_t i, ConjId acc) {
    if (i == alternatives.size()) return true;
    for (ConjId cond : alternatives[i]) {
      ConjId next = interner.And(acc, cond);
      if (interner.Satisfiable(next) && go(i + 1, next)) return true;
    }
    return false;
  };
  return go(0, global_id);
}

std::optional<bool> PossBoundedPosExistential(
    const RaQuery& query, const CDatabase& database,
    const std::vector<LocatedFact>& pattern) {
  if (!IsPositiveExistential(query, /*allow_neq=*/true)) return std::nullopt;
  auto image = EvalQueryOnCTables(query, database);
  if (!image) return std::nullopt;
  return AssignPattern(*image, database.CombinedGlobal(), pattern);
}

bool PossibilitySearch(const View& view, const CDatabase& database,
                       const std::vector<LocatedFact>& pattern) {
  bool possible = false;
  WorldEnumOptions options;
  options.extra_constants = PatternConstants(pattern);
  for (ConstId c : view.Constants()) options.extra_constants.push_back(c);
  ForEachWorld(database, options,
               [&view, &pattern, &possible](const Instance& world,
                                            const Valuation&) {
                 if (ContainsAll(view.Eval(world), pattern)) {
                   possible = true;
                   return false;  // witness found
                 }
                 return true;
               });
  return possible;
}

bool Possibility(const View& view, const CDatabase& database,
                 const std::vector<LocatedFact>& pattern) {
  if (view.is_identity()) {
    RaQuery identity;
    for (size_t k = 0; k < database.num_tables(); ++k) {
      identity.push_back(RaExpr::Rel(k, database.table(k).arity()));
    }
    if (auto fast = PossBoundedPosExistential(identity, database, pattern)) {
      return *fast;
    }
  } else if (view.is_ra()) {
    if (auto fast = PossBoundedPosExistential(view.ra(), database, pattern)) {
      return *fast;
    }
  } else if (view.is_datalog()) {
    // Goal-shaped: each pattern fact is a fully bound goal, answered through
    // the magic-set demand path instead of enumerating worlds.
    if (auto fast = PossDatalogDemand(view, database, pattern)) {
      return *fast;
    }
  }
  return PossibilitySearch(view, database, pattern);
}

bool PossibilityUnbounded(const View& view, const CDatabase& database,
                          const Instance& pattern) {
  if (view.is_identity()) {
    if (auto fast = PossUnboundedCoddTables(database, pattern)) return *fast;
  }
  std::vector<LocatedFact> flat = ToLocatedFacts(pattern);
  // The c-table assignment search (identity/RA) and the DATALOG demand path
  // are exact for any pattern size (polynomial only for bounded patterns,
  // but correct for all), so the bounded dispatcher covers this too.
  return Possibility(view, database, flat);
}

}  // namespace pw
