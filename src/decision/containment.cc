#include "decision/containment.h"

#include <set>

#include "decision/membership.h"
#include "tables/world_enum.h"

namespace pw {

namespace {

bool IsGTableDatabase(const CDatabase& database) {
  return database.Kind() <= TableKind::kGTable;
}

bool IsCoddDatabase(const CDatabase& database) {
  // CDatabase::Kind accounts for cross-table variable sharing.
  return database.Kind() == TableKind::kCoddTable;
}

bool IsETableDatabase(const CDatabase& database) {
  return database.Kind() <= TableKind::kETable;
}

/// Runs the forall-side loop: true iff every world of lhs_view(rep(lhs))
/// passes `member_test`.
bool ForallWorlds(const View& lhs_view, const CDatabase& lhs,
                  const std::vector<ConstId>& rhs_constants,
                  const std::function<bool(const Instance&)>& member_test) {
  bool contained = true;
  WorldEnumOptions options;
  options.extra_constants = rhs_constants;
  for (ConstId c : lhs_view.Constants()) options.extra_constants.push_back(c);
  ForEachWorld(lhs, options,
               [&lhs_view, &member_test, &contained](const Instance& world,
                                                     const Valuation&) {
                 if (!member_test(lhs_view.Eval(world))) {
                   contained = false;
                   return false;  // counterexample world found
                 }
                 return true;
               });
  return contained;
}

}  // namespace

Instance Freeze(const CDatabase& database,
                const std::vector<ConstId>& avoid) {
  // Normalize member tables against the combined global condition, then map
  // every remaining variable to a distinct fresh constant.
  Conjunction global = database.CombinedGlobal();
  auto canon = global.CanonicalSubstitution();

  std::vector<VarId> vars = database.Variables();
  std::vector<ConstId> fresh = FreshConstants(database, avoid, vars.size());
  std::unordered_map<VarId, Term> freeze;
  size_t next = 0;
  for (VarId v : vars) {
    Term t = Term::Var(v);
    auto it = canon.find(v);
    if (it != canon.end()) t = it->second;
    if (t.is_constant()) {
      freeze.emplace(v, t);
    } else {
      auto seen = freeze.find(t.variable());
      if (seen != freeze.end() && seen->first != v) {
        freeze.emplace(v, seen->second);
      } else if (t.variable() == v) {
        freeze.emplace(v, Term::Const(fresh[next++]));
      } else {
        // Class representative not yet frozen (cannot happen with sorted
        // iteration, but stay safe): freeze both now.
        Term c = Term::Const(fresh[next++]);
        freeze.emplace(t.variable(), c);
        freeze.emplace(v, c);
      }
    }
  }

  std::vector<Relation> rels;
  rels.reserve(database.num_tables());
  for (size_t k = 0; k < database.num_tables(); ++k) {
    CTable grounded = database.table(k).Substitute(freeze);
    Relation r(grounded.arity());
    for (const CRow& row : grounded.rows()) r.Insert(ToFact(row.tuple));
    rels.push_back(std::move(r));
  }
  return Instance(std::move(rels));
}

std::optional<bool> ContGTablesInCoddTables(const CDatabase& lhs,
                                            const CDatabase& rhs) {
  if (!IsGTableDatabase(lhs) || !IsCoddDatabase(rhs)) return std::nullopt;
  if (RepIsEmpty(lhs)) return true;
  Instance k0 = Freeze(lhs, rhs.Constants());
  return MembershipCoddTables(rhs, k0);
}

std::optional<bool> ContGTablesInETables(const CDatabase& lhs,
                                         const CDatabase& rhs) {
  if (!IsGTableDatabase(lhs) || !IsETableDatabase(rhs)) return std::nullopt;
  if (RepIsEmpty(lhs)) return true;
  Instance k0 = Freeze(lhs, rhs.Constants());
  return MembershipSearch(rhs, k0);
}

std::optional<bool> ContViewInCoddTables(const View& lhs_view,
                                         const CDatabase& lhs,
                                         const CDatabase& rhs) {
  if (!IsCoddDatabase(rhs)) return std::nullopt;
  return ForallWorlds(lhs_view, lhs, rhs.Constants(),
                      [&rhs](const Instance& image) {
                        auto member = MembershipCoddTables(rhs, image);
                        return member.has_value() && *member;
                      });
}

bool ContainmentSearch(const View& lhs_view, const CDatabase& lhs,
                       const View& rhs_view, const CDatabase& rhs) {
  std::vector<ConstId> rhs_constants = rhs.Constants();
  for (ConstId c : rhs_view.Constants()) rhs_constants.push_back(c);
  return ForallWorlds(lhs_view, lhs, rhs_constants,
                      [&rhs_view, &rhs](const Instance& image) {
                        return MembershipInView(rhs_view, rhs, image);
                      });
}

bool Containment(const View& lhs_view, const CDatabase& lhs,
                 const View& rhs_view, const CDatabase& rhs) {
  if (rhs_view.is_identity()) {
    if (lhs_view.is_identity()) {
      if (auto fast = ContGTablesInCoddTables(lhs, rhs)) return *fast;
      if (auto fast = ContGTablesInETables(lhs, rhs)) return *fast;
    }
    if (auto fast = ContViewInCoddTables(lhs_view, lhs, rhs)) return *fast;
  }
  return ContainmentSearch(lhs_view, lhs, rhs_view, rhs);
}

}  // namespace pw
