#include "decision/answer_sets.h"

#include <functional>
#include <set>

#include "condition/binding_env.h"
#include "decision/world_csp.h"
#include "ilalgebra/ctable_eval.h"
#include "ilalgebra/datalog_ctable.h"
#include "tables/world_enum.h"

namespace pw {

namespace {

std::vector<ConstId> Domain(const View& view, const CDatabase& database) {
  std::set<ConstId> dom;
  for (ConstId c : database.Constants()) dom.insert(c);
  for (ConstId c : view.Constants()) dom.insert(c);
  return {dom.begin(), dom.end()};
}

/// Ground instantiations of `row` over `domain` whose conditions are
/// satisfiable together with `global`, inserted into `out`.
void CollectPossibleFromRow(const CRow& row, const Conjunction& global,
                            const std::vector<ConstId>& domain,
                            Relation& out) {
  std::vector<int> var_positions;
  for (size_t i = 0; i < row.tuple.size(); ++i) {
    if (row.tuple[i].is_variable()) {
      var_positions.push_back(static_cast<int>(i));
    }
  }
  Fact fact(row.tuple.size(), 0);
  for (size_t i = 0; i < row.tuple.size(); ++i) {
    if (row.tuple[i].is_constant()) fact[i] = row.tuple[i].constant();
  }
  BindingEnv env;
  if (!env.Assert(global) || !env.Assert(row.local())) return;

  std::function<void(size_t)> go = [&](size_t vp) {
    if (vp == var_positions.size()) {
      out.Insert(fact);
      return;
    }
    int pos = var_positions[vp];
    for (ConstId c : domain) {
      size_t mark = env.Mark();
      if (env.AssertEqual(row.tuple[pos], Term::Const(c))) {
        fact[pos] = c;
        go(vp + 1);
      }
      env.Revert(mark);
    }
  };
  go(0);
}

/// Possible ground answers of a c-database image (per table).
Instance PossibleFromImage(const CDatabase& image,
                           const std::vector<ConstId>& domain) {
  Conjunction global = image.CombinedGlobal();
  std::vector<Relation> out;
  for (size_t p = 0; p < image.num_tables(); ++p) {
    Relation r(image.table(p).arity());
    for (const CRow& row : image.table(p).rows()) {
      CollectPossibleFromRow(row, global, domain, r);
    }
    out.push_back(std::move(r));
  }
  return Instance(std::move(out));
}

/// Enumeration fallback, for first order views: union of view images over
/// worlds, filtered to the ground domain.
Instance PossibleByEnumeration(const View& view, const CDatabase& database,
                               const std::vector<ConstId>& domain) {
  std::set<ConstId> dom(domain.begin(), domain.end());
  std::vector<Relation> acc;
  bool first = true;
  WorldEnumOptions options;
  options.extra_constants = domain;
  ForEachWorld(database, options,
               [&](const Instance& world, const Valuation&) {
                 Instance image = view.Eval(world);
                 if (first) {
                   acc.assign(image.num_relations(), Relation());
                   for (size_t p = 0; p < image.num_relations(); ++p) {
                     acc[p] = Relation(image.relation(p).arity());
                   }
                   first = false;
                 }
                 for (size_t p = 0; p < image.num_relations(); ++p) {
                   for (const Fact& f : image.relation(p)) {
                     bool ground = true;
                     for (ConstId c : f) {
                       if (dom.count(c) == 0) {
                         ground = false;
                         break;
                       }
                     }
                     if (ground) acc[p].Insert(f);
                   }
                 }
                 return true;
               });
  return Instance(std::move(acc));
}

/// The image c-database of a view, when one is computable exactly.
std::optional<CDatabase> ImageOf(const View& view,
                                 const CDatabase& database) {
  if (view.is_identity()) {
    CDatabase image = database;  // carries its own globals
    return image;
  }
  if (view.is_ra() && view.IsPositiveExistential(/*allow_neq=*/true)) {
    return EvalQueryOnCTables(view.ra(), database);
  }
  if (view.is_datalog()) {
    CDatabase fixpoint = DatalogOnCTables(view.datalog(), database);
    CDatabase image;
    for (size_t i = 0; i < view.output_preds().size(); ++i) {
      CTable t = fixpoint.table(view.output_preds()[i]);
      if (i == 0) t.SetGlobal(fixpoint.CombinedGlobal());
      image.AddTable(std::move(t));
    }
    return image;
  }
  return std::nullopt;
}

}  // namespace

Instance PossibleAnswers(const View& view, const CDatabase& database) {
  std::vector<ConstId> domain = Domain(view, database);
  if (auto image = ImageOf(view, database)) {
    return PossibleFromImage(*image, domain);
  }
  return PossibleByEnumeration(view, database, domain);
}

Instance CertainAnswers(const View& view, const CDatabase& database) {
  std::vector<ConstId> domain = Domain(view, database);
  Instance candidates = PossibleAnswers(view, database);
  if (auto image = ImageOf(view, database)) {
    std::vector<Relation> out;
    for (size_t p = 0; p < candidates.num_relations(); ++p) {
      Relation r(candidates.relation(p).arity());
      for (const Fact& f : candidates.relation(p)) {
        if (!ExistsWorldMissingFact(*image, p, f)) r.Insert(f);
      }
      out.push_back(std::move(r));
    }
    return Instance(std::move(out));
  }
  // Enumeration fallback: intersect images.
  std::vector<Relation> acc;
  for (size_t p = 0; p < candidates.num_relations(); ++p) {
    acc.push_back(candidates.relation(p));
  }
  WorldEnumOptions options;
  options.extra_constants = domain;
  ForEachWorld(database, options,
               [&](const Instance& world, const Valuation&) {
                 Instance image = view.Eval(world);
                 for (size_t p = 0; p < acc.size(); ++p) {
                   Relation kept(acc[p].arity());
                   for (const Fact& f : acc[p]) {
                     if (image.relation(p).Contains(f)) kept.Insert(f);
                   }
                   acc[p] = std::move(kept);
                 }
                 return true;
               });
  return Instance(std::move(acc));
}

}  // namespace pw
