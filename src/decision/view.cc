#include "decision/view.h"

#include <set>

#include "datalog/eval.h"
#include "ra/eval.h"
#include "ra/properties.h"

namespace pw {

namespace {

void CollectConstants(const RaExpr& expr, std::set<ConstId>& out) {
  switch (expr.op()) {
    case RaOp::kRel:
      return;
    case RaOp::kConstRel:
      for (ConstId c : expr.const_relation().Constants()) out.insert(c);
      return;
    case RaOp::kProject:
      for (const ColOrConst& o : expr.outputs()) {
        if (!o.is_column) out.insert(o.constant);
      }
      CollectConstants(expr.input(), out);
      return;
    case RaOp::kSelect:
      for (const SelectAtom& a : expr.atoms()) {
        if (!a.lhs.is_column) out.insert(a.lhs.constant);
        if (!a.rhs.is_column) out.insert(a.rhs.constant);
      }
      CollectConstants(expr.input(), out);
      return;
    case RaOp::kProduct:
    case RaOp::kUnion:
    case RaOp::kDiff:
      CollectConstants(expr.left(), out);
      CollectConstants(expr.right(), out);
      return;
  }
}

}  // namespace

View View::Identity() { return View(); }

View View::Ra(RaQuery query) {
  View v;
  v.kind_ = Kind::kRa;
  v.ra_ = std::move(query);
  return v;
}

View View::Datalog(DatalogProgram program, std::vector<int> output_preds) {
  View v;
  v.kind_ = Kind::kDatalog;
  v.datalog_ = std::move(program);
  v.output_preds_ = std::move(output_preds);
  return v;
}

Instance View::Eval(const Instance& input) const {
  switch (kind_) {
    case Kind::kIdentity:
      return input;
    case Kind::kRa:
      return EvalQuery(ra_, input);
    case Kind::kDatalog: {
      Instance fixpoint = SemiNaiveEval(datalog_, input);
      std::vector<Relation> out;
      out.reserve(output_preds_.size());
      for (int p : output_preds_) out.push_back(fixpoint.relation(p));
      return Instance(std::move(out));
    }
  }
  return input;
}

bool View::IsPositiveExistential(bool allow_neq) const {
  switch (kind_) {
    case Kind::kIdentity:
      return true;
    case Kind::kRa:
      return pw::IsPositiveExistential(ra_, allow_neq);
    case Kind::kDatalog:
      return false;  // recursion is a separate fragment in the paper
  }
  return false;
}

std::vector<ConstId> View::Constants() const {
  std::set<ConstId> out;
  switch (kind_) {
    case Kind::kIdentity:
      break;
    case Kind::kRa:
      for (const RaExpr& e : ra_) CollectConstants(e, out);
      break;
    case Kind::kDatalog:
      for (const DatalogRule& rule : datalog_.rules()) {
        for (const Term& t : rule.head.args) {
          if (t.is_constant()) out.insert(t.constant());
        }
        for (const DatalogAtom& atom : rule.body) {
          for (const Term& t : atom.args) {
            if (t.is_constant()) out.insert(t.constant());
          }
        }
      }
      break;
  }
  return {out.begin(), out.end()};
}

std::string View::ToString() const {
  switch (kind_) {
    case Kind::kIdentity:
      return "identity";
    case Kind::kRa: {
      std::string out = "ra[";
      for (size_t i = 0; i < ra_.size(); ++i) {
        if (i > 0) out += "; ";
        out += ra_[i].ToString();
      }
      return out + "]";
    }
    case Kind::kDatalog:
      return "datalog[" + std::to_string(datalog_.rules().size()) + " rules]";
  }
  return "?";
}

}  // namespace pw
