// The certainty problems CERT(k, q) and CERT(*, q) — Theorem 5.3.
//
//   input: c-database; query q; a set of facts P
//   question: is P subseteq q(I) for every world I of rep(database)?
//
// Complexity landscape reproduced here:
//   - CERT(*, q) for DATALOG q on g-tables: PTIME (Thm 5.3(1), after [10,17])
//     by evaluating the fixpoint on the matrix as if complete
//   - CERT(1, q) for a first order q on a table: coNP-complete (Thm 5.3(2));
//     exact valuation enumeration
//   - CERT(*, q) is PTIME-equivalent to CERT(1, q) (Prop. 2.1(6)):
//     CertaintyFactwise demonstrates the reduction.

#ifndef PW_DECISION_CERTAINTY_H_
#define PW_DECISION_CERTAINTY_H_

#include <optional>
#include <vector>

#include "condition/backend.h"
#include "core/instance.h"
#include "decision/view.h"
#include "tables/ctable.h"

namespace pw {

/// True iff `fact` is present in every world of `table` under `global_id`:
/// decides the tautology  global -> OR over rows (row condition AND
/// row tuple = fact)  through `backend`, without enumerating worlds or
/// expanding a DNF — the DD backend answers with one Not/And/Satisfiable
/// pass, the conjunctive backend with the exact backtracking disjunction
/// check. Exact for any c-table (an unsatisfiable global makes everything
/// vacuously certain, matching rep-emptiness). The decision-procedure
/// baseline ExistsWorldMissingFact (decision/world_csp.h) cross-checks it.
bool CertainFactInTable(const CTable& table, const Fact& fact, ConjId global_id,
                        ConditionBackend& backend);

/// PTIME certainty for DATALOG views of g-table databases. If rep(database)
/// is empty the answer is vacuously true. Returns std::nullopt when the view
/// is not a DATALOG (or identity) query or the database has local
/// conditions.
std::optional<bool> CertDatalogGTables(const View& view,
                                       const CDatabase& database,
                                       const std::vector<LocatedFact>& pattern);

/// Exact certainty for arbitrary views of c-databases: enumerate satisfying
/// valuations and require P subseteq view(world) in all of them. coNP in
/// general.
bool CertaintySearch(const View& view, const CDatabase& database,
                     const std::vector<LocatedFact>& pattern);

/// Dispatcher: PTIME special case when applicable, else search.
bool Certainty(const View& view, const CDatabase& database,
               const std::vector<LocatedFact>& pattern);

/// The Proposition 2.1(6) reduction: answers CERT(k, q) by k rounds of
/// CERT(1, q). Semantically identical to Certainty; exists to demonstrate
/// (and test) the equivalence.
bool CertaintyFactwise(const View& view, const CDatabase& database,
                       const std::vector<LocatedFact>& pattern);

}  // namespace pw

#endif  // PW_DECISION_CERTAINTY_H_
